/**
 * @file
 * Network planner: choosing an interconnect for a large software-
 * coherent machine.
 *
 * A designer who has ruled out a bus (it saturates; see
 * examples/design_space) still has to pick the fabric: circuit or
 * packet switching, switch dimension, and whether directory hardware
 * is worth it. This example walks those choices with the library's
 * network models for a 256-processor machine.
 */

#include <iostream>

#include "core/swcc.hh"

int
main()
{
    using namespace swcc;

    constexpr unsigned kProcessors = 256;
    const WorkloadParams params = middleParams();

    std::cout << "=== Interconnect planning for " << kProcessors
              << " processors (medium workload) ===\n\n";

    // 1. Circuit vs packet switching per coherence scheme.
    std::cout << "1. Switching discipline:\n\n";
    TextTable discipline({"scheme", "circuit power", "packet power",
                          "gain"});
    for (Scheme scheme : {Scheme::Base, Scheme::SoftwareFlush,
                          Scheme::NoCache}) {
        const unsigned stages = stagesForProcessors(kProcessors);
        const double circuit =
            evaluateNetwork(scheme, params, stages).processingPower;
        const double packet =
            solvePacketNetwork(scheme, params, stages).processingPower;
        discipline.addRow({std::string(schemeName(scheme)),
                           formatNumber(circuit, 1),
                           formatNumber(packet, 1),
                           formatNumber(packet / circuit, 2) + "x"});
    }
    discipline.print(std::cout);
    std::cout << "\nPacket switching pays off most for No-Cache (many "
                 "tiny messages), exactly\nas the paper conjectured.\n\n";

    // 2. Switch dimension for the circuit-switched fabric.
    std::cout << "2. Crossbar dimension (circuit-switched, "
                 "Software-Flush operating point):\n\n";
    const NetworkCostModel two_by_two(
        stagesForProcessors(kProcessors));
    const PerInstructionCost sf_cost = perInstructionCost(
        operationFrequencies(Scheme::SoftwareFlush, params),
        two_by_two);
    TextTable dimension({"switch", "stages", "compute fraction U"});
    for (unsigned k : {2u, 4u, 8u, 16u}) {
        const unsigned stages = stagesForProcessorsK(kProcessors, k);
        dimension.addRow(
            {std::to_string(k) + "x" + std::to_string(k),
             formatNumber(stages, 0),
             formatNumber(
                 solveComputeFractionK(1.0 / sf_cost.thinkTime(),
                                       sf_cost.channel, stages, k),
                 3)});
    }
    dimension.print(std::cout);
    std::cout << "\n(The per-message cost also shrinks with fewer "
                 "stages; this table holds the\nmessage length fixed "
                 "to isolate the blocking effect.)\n\n";

    // 3. Is directory hardware worth it over Software-Flush?
    std::cout << "3. Directory hardware vs compiler-flushed caches, "
                 "by achievable apl:\n\n";
    TextTable hw({"apl the compiler achieves", "Software-Flush",
                  "Directory", "winner"});
    for (double apl : {2.0, 4.0, 8.0, 32.0, 128.0}) {
        WorkloadParams p = params;
        p.apl = apl;
        const unsigned stages = stagesForProcessors(kProcessors);
        const double swf =
            evaluateNetwork(Scheme::SoftwareFlush, p, stages)
                .processingPower;
        const double dir =
            evaluateDirectoryNetwork(p, stages).processingPower;
        hw.addRow({formatNumber(apl, 0), formatNumber(swf, 1),
                   formatNumber(dir, 1),
                   swf > dir ? "Software-Flush" : "Directory"});
    }
    hw.print(std::cout);

    std::cout << "\nBottom line: with packet switching and a capable "
                 "compiler (apl >= ~8),\nsoftware coherence is a "
                 "credible large-machine design — the paper's thesis,\n"
                 "sharpened with the extension models.\n";
    return 0;
}
