/**
 * @file
 * Design-space explorer: which coherence scheme should a machine
 * designer pick for a given expected workload?
 *
 * Sweeps sharing level and apl and prints, for each (shd, apl) cell,
 * the scheme with the highest processing power — reproducing the
 * paper's conclusion that software schemes win only in favourable
 * workload regions while snoopy hardware is robust everywhere.
 */

#include <iostream>

#include "core/swcc.hh"

namespace
{

using namespace swcc;

char
bestSchemeLetter(const WorkloadParams &params, unsigned cpus,
                 bool software_only)
{
    double best_power = -1.0;
    Scheme best = Scheme::Base;
    for (Scheme scheme : {Scheme::Dragon, Scheme::SoftwareFlush,
                          Scheme::NoCache}) {
        if (software_only && scheme == Scheme::Dragon) {
            continue;
        }
        const double power =
            evaluateBus(scheme, params, cpus).processingPower;
        if (power > best_power) {
            best_power = power;
            best = scheme;
        }
    }
    switch (best) {
      case Scheme::Dragon:        return 'D';
      case Scheme::SoftwareFlush: return 'S';
      case Scheme::NoCache:       return 'N';
      default:                    return '?';
    }
}

void
winnerMap(unsigned cpus, bool software_only)
{
    std::cout << (software_only
                      ? "Best *software* scheme"
                      : "Best scheme (D=Dragon, S=Software-Flush, "
                        "N=No-Cache)")
              << " on a " << cpus << "-processor bus:\n\n";
    const std::vector<double> shds = {0.02, 0.05, 0.1, 0.2, 0.3, 0.42};
    const std::vector<double> apls = {1, 2, 4, 8, 16, 32, 128};

    TextTable table([&] {
        std::vector<std::string> headers{"shd \\ apl"};
        for (double apl : apls) {
            headers.push_back(formatNumber(apl, 0));
        }
        return headers;
    }());
    for (double shd : shds) {
        std::vector<std::string> row{formatNumber(shd, 2)};
        for (double apl : apls) {
            WorkloadParams params = middleParams();
            params.shd = shd;
            params.apl = apl;
            row.push_back(std::string(
                1, bestSchemeLetter(params, cpus, software_only)));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
hardwareWorthIt()
{
    std::cout << "How much performance does hardware coherence buy "
                 "over the best software\nscheme? (16 CPUs, ratio "
                 "Dragon / best-software)\n\n";
    TextTable table({"shd", "apl=2", "apl=8", "apl=32", "apl=128"});
    for (double shd : {0.05, 0.15, 0.25, 0.42}) {
        std::vector<std::string> row{formatNumber(shd, 2)};
        for (double apl : {2.0, 8.0, 32.0, 128.0}) {
            WorkloadParams params = middleParams();
            params.shd = shd;
            params.apl = apl;
            const double dragon =
                evaluateBus(Scheme::Dragon, params, 16).processingPower;
            const double swf =
                evaluateBus(Scheme::SoftwareFlush, params, 16)
                    .processingPower;
            const double nc =
                evaluateBus(Scheme::NoCache, params, 16).processingPower;
            row.push_back(
                formatNumber(dragon / std::max(swf, nc), 2) + "x");
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "=== Coherence design-space explorer ===\n\n";
    winnerMap(16, false);
    winnerMap(16, true);
    hardwareWorthIt();
    std::cout
        << "Reading the maps: Dragon dominates almost everywhere on a "
           "bus; Software-Flush\nonly matches it when blocks are "
           "referenced many times between flushes and\nsharing is "
           "light; No-Cache beats Software-Flush when apl is ~1 (every "
           "reference\nwould flush anyway). A designer who cannot "
           "guarantee high apl from the\ncompiler should budget for "
           "hardware coherence — the paper's bottom line.\n";
    return 0;
}
