/**
 * @file
 * Quickstart: evaluate the four coherence schemes on a bus-based
 * multiprocessor at the paper's middle operating point.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/swcc.hh"

int
main()
{
    using namespace swcc;

    // 1. Describe the workload. middleParams() is the paper's middle
    //    operating point (Table 7); tweak any field directly.
    WorkloadParams params = middleParams();
    params.shd = 0.2;  // 20% of data references touch shared data.
    params.apl = 10.0; // 10 references per shared block between flushes.

    // 2. Evaluate each scheme on an 8-processor bus.
    std::cout << "8-processor bus, shd=0.2, apl=10:\n\n";
    TextTable table({"scheme", "cycles/instr", "bus cycles/instr",
                     "waiting", "utilization", "processing power"});
    for (Scheme scheme : kAllSchemes) {
        const BusSolution sol = evaluateBus(scheme, params, 8);
        table.addRow({std::string(schemeName(scheme)),
                      formatNumber(sol.cpu, 3),
                      formatNumber(sol.bus, 3),
                      formatNumber(sol.waiting, 3),
                      formatNumber(sol.processorUtilization, 3),
                      formatNumber(sol.processingPower, 2)});
    }
    table.print(std::cout);

    // 3. Where do Software-Flush's cycles actually go?
    std::cout << "\nSoftware-Flush cost breakdown (per instruction):"
              << "\n\n";
    printBreakdown(costBreakdown(Scheme::SoftwareFlush, params),
                   std::cout);

    // 4. The software schemes also run on a multistage network, where
    //    the bus's bandwidth wall disappears.
    std::cout << "\n256-processor multistage network:\n\n";
    TextTable net({"scheme", "compute fraction", "cycles/instr",
                   "processing power"});
    for (Scheme scheme : {Scheme::Base, Scheme::SoftwareFlush,
                          Scheme::NoCache}) {
        const NetworkSolution sol = evaluateNetwork(scheme, params, 8);
        net.addRow({std::string(schemeName(scheme)),
                    formatNumber(sol.computeFraction, 3),
                    formatNumber(sol.cyclesPerInstruction, 2),
                    formatNumber(sol.processingPower, 1)});
    }
    net.print(std::cout);

    std::cout << "\nNext: examples/design_space explores when each "
                 "scheme wins; examples/trace_workbench\nruns the full "
                 "trace->simulate->extract->model validation loop.\n";
    return 0;
}
