/**
 * @file
 * Trace workbench: the full experimental loop on one synthetic
 * application — generate a multiprocessor trace, measure its workload
 * parameters, simulate every scheme on it, predict each scheme with
 * the analytical model, and compare. Also writes the trace to disk
 * and reads it back, exercising the trace I/O path.
 */

#include <cstdio>
#include <iostream>

#include "core/swcc.hh"
#include "sim/mp/param_extractor.hh"
#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"
#include "sim/trace/trace_io.hh"

int
main()
{
    using namespace swcc;

    // 1. Generate a 4-processor pops-like trace with flush
    //    instructions (so the Software-Flush scheme is exercisable).
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PopsLike, 4, 100'000, 2026, true);
    std::cout << "Generating " << workload.name << " trace ("
              << workload.numCpus << " CPUs, "
              << workload.instructionsPerCpu
              << " instructions/CPU)...\n";
    const TraceBuffer trace = generateTrace(workload);
    std::cout << "  " << trace.size() << " events\n\n";

    // 2. Round-trip through the binary trace format.
    const std::string path = "/tmp/swcc_workbench_trace.swcc";
    saveTrace(trace, path);
    const TraceBuffer loaded = loadTrace(path);
    std::cout << "Saved and reloaded " << path << " ("
              << loaded.size() << " events)\n\n";
    std::remove(path.c_str());

    // 3. Measure the workload parameters the model needs.
    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;
    const SharedClassifier shared = workload.sharedClassifier();
    const ExtractedParams extracted =
        extractParams(loaded, cache, shared);

    std::cout << "Measured workload parameters (paper Table 2):\n\n";
    TextTable params_table({"parameter", "value"});
    for (ParamId id : kAllParams) {
        params_table.addRow(
            {std::string(paramName(id)),
             formatNumber(getParam(extracted.params, id), 4)});
    }
    params_table.print(std::cout);

    // 4. Simulate every scheme and compare with the model prediction.
    std::cout << "\nSimulation vs model (4 CPUs, 64KB caches):\n\n";
    TextTable result({"scheme", "sim power", "model power", "error %",
                      "sim bus util"});
    for (Scheme scheme : kAllSchemes) {
        MultiprocessorSystem system(scheme, cache, 4, shared);
        const SimStats stats = system.run(loaded);
        const BusSolution model =
            evaluateBus(scheme, extracted.params, 4);
        const double sim_power = stats.processingPower();
        result.addRow(
            {std::string(schemeName(scheme)),
             formatNumber(sim_power, 3),
             formatNumber(model.processingPower, 3),
             formatNumber(
                 100.0 * (model.processingPower - sim_power) / sim_power,
                 1),
             formatNumber(stats.busUtilization(), 3)});
    }
    result.print(std::cout);

    std::cout << "\nThe model consumes eleven numbers measured from "
                 "the trace and reproduces the\nsimulator's scheme "
                 "ranking (and near-absolute power) in microseconds "
                 "rather\nthan seconds — the paper's core "
                 "methodological point.\n";
    return 0;
}
