/**
 * @file
 * Migration study: what does process migration do to cache
 * coherence?
 *
 * The paper's traces contained no process migration; this example
 * uses the generator's migration model to quantify what they missed:
 * migrated "private" data becomes dynamically shared, which hardware
 * coherence absorbs as extra misses but which software schemes cannot
 * even see (the compiler's shared marking no longer covers all the
 * sharing).
 */

#include <iostream>

#include "core/swcc.hh"
#include "sim/mp/param_extractor.hh"
#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"

int
main()
{
    using namespace swcc;

    std::cout << "=== Process migration study (pops-like, 4 CPUs, "
                 "64KB caches) ===\n\n";

    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;

    TextTable table({"migration interval", "dynamic shd",
                     "hidden shd (private)", "Dragon power",
                     "Base power", "coherence cost %"});

    for (std::size_t interval :
         {std::size_t{0}, std::size_t{50'000}, std::size_t{20'000},
          std::size_t{8'000}}) {
        SyntheticWorkloadConfig workload =
            profileConfig(AppProfile::PopsLike, 4, 80'000, 7, false);
        workload.migrationIntervalInstrs = interval;
        const TraceBuffer trace = generateTrace(workload);

        // Sharing as hardware sees it vs as the compiler marked it.
        const TraceStatistics dynamic = analyzeTrace(trace, 16);
        TraceBuffer private_only;
        for (const TraceEvent &event : trace) {
            if (event.addr < SyntheticWorkloadConfig::kSharedBase) {
                private_only.append(event);
            }
        }
        const TraceStatistics hidden = analyzeTrace(private_only, 16);

        MultiprocessorSystem dragon_system(Scheme::Dragon, cache, 4);
        const SimStats dragon = dragon_system.run(trace);
        const SimStats base = simulateTrace(Scheme::Base, trace, cache);

        table.addRow(
            {interval == 0
                 ? "off (the paper's regime)"
                 : formatNumber(static_cast<double>(interval), 0),
             formatNumber(dynamic.shd, 3),
             formatNumber(hidden.shd, 3),
             formatNumber(dragon.processingPower(), 3),
             formatNumber(base.processingPower(), 3),
             formatNumber(100.0 * (base.processingPower() -
                                   dragon.processingPower()) /
                              base.processingPower(),
                          1)});
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: migration inflates sharing and miss "
           "rates for everyone\n(compare Base power), and creates "
           "'hidden' sharing in the private segments\nthat no "
           "compiler marking covers. A software-coherent OS must "
           "flush the whole\ncache on every context switch to stay "
           "correct; hardware pays only the\n'coherence cost' "
           "column. This is why migration-heavy multiprogrammed\n"
           "systems (the C.mmp/Elxsi use case) restricted software "
           "schemes to\nmessage-passing-style workloads.\n";
    return 0;
}
