/**
 * @file
 * Compiler advisor: how good does flush placement need to be?
 *
 * The paper's conclusion hangs on apl — the number of references to a
 * shared block between flushes, which compiler flush-placement
 * determines. This example answers the compiler writer's questions:
 *
 *  - What apl must I achieve before Software-Flush beats No-Cache?
 *  - What apl before it comes within 10% of snoopy hardware?
 *  - How do those thresholds move with the sharing level and with
 *    machine size?
 */

#include <cmath>
#include <iostream>
#include <optional>

#include "core/swcc.hh"

namespace
{

using namespace swcc;

/** Smallest apl at which Software-Flush reaches @p target power. */
std::optional<double>
aplThreshold(WorkloadParams params, unsigned cpus, double target)
{
    double lo = 1.0, hi = 1e6;
    auto power_at = [&](double apl) {
        params.apl = apl;
        return evaluateBus(Scheme::SoftwareFlush, params, cpus)
            .processingPower;
    };
    if (power_at(hi) < target) {
        return std::nullopt;
    }
    if (power_at(lo) >= target) {
        return lo;
    }
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = std::sqrt(lo * hi); // Geometric bisection.
        (power_at(mid) >= target ? hi : lo) = mid;
    }
    return hi;
}

std::string
cell(std::optional<double> threshold)
{
    return threshold ? formatNumber(*threshold, 1) : "unreachable";
}

} // namespace

int
main()
{
    std::cout << "=== Compiler advisor: required flush quality (apl) "
                 "===\n\n";

    std::cout << "apl needed for Software-Flush to beat No-Cache:\n\n";
    TextTable beat_nc({"shd", "4 CPUs", "8 CPUs", "16 CPUs"});
    for (double shd : {0.08, 0.15, 0.25, 0.42}) {
        std::vector<std::string> row{formatNumber(shd, 2)};
        for (unsigned cpus : {4u, 8u, 16u}) {
            WorkloadParams params = middleParams();
            params.shd = shd;
            const double target =
                evaluateBus(Scheme::NoCache, params, cpus)
                    .processingPower;
            row.push_back(cell(aplThreshold(params, cpus, target)));
        }
        beat_nc.addRow(std::move(row));
    }
    beat_nc.print(std::cout);

    std::cout << "\napl needed to come within 10% of Dragon:\n\n";
    TextTable near_dragon({"shd", "4 CPUs", "8 CPUs", "16 CPUs"});
    for (double shd : {0.08, 0.15, 0.25, 0.42}) {
        std::vector<std::string> row{formatNumber(shd, 2)};
        for (unsigned cpus : {4u, 8u, 16u}) {
            WorkloadParams params = middleParams();
            params.shd = shd;
            const double target =
                0.9 * evaluateBus(Scheme::Dragon, params, cpus)
                          .processingPower;
            row.push_back(cell(aplThreshold(params, cpus, target)));
        }
        near_dragon.addRow(std::move(row));
    }
    near_dragon.print(std::cout);

    std::cout << "\nThe ping-pong floor: a shared variable alternately "
                 "written by two processors\nhas apl ~= 2 no matter how "
                 "clever the compiler (paper Section 7). Workloads\n"
                 "whose thresholds above exceed ~2-4 therefore *cannot* "
                 "reach software-coherence\nparity through compiler "
                 "improvements alone.\n";
    return 0;
}
