/**
 * @file
 * Unit tests for the swcc command-line tool.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/commands.hh"
#include "core/campaign/faults.hh"
#include "core/parallel.hh"
#include "core/workload.hh"
#include "cli/options.hh"

namespace swcc::cli
{
namespace
{

int
runCli(std::initializer_list<std::string> args, std::string *output)
{
    std::ostringstream out;
    const int code = run(std::vector<std::string>(args), out);
    if (output != nullptr) {
        *output = out.str();
    }
    return code;
}

TEST(OptionsTest, ParsesValuesFlagsAndPositionals)
{
    const Options options = Options::parse(
        {"trace.swcc", "--scheme", "dragon", "--network", "--cpus",
         "16"});
    EXPECT_EQ(options.positional().size(), 1u);
    EXPECT_EQ(options.positional().front(), "trace.swcc");
    EXPECT_EQ(options.valueOr("scheme", ""), "dragon");
    EXPECT_TRUE(options.has("network"));
    EXPECT_FALSE(options.value("network").has_value());
    EXPECT_EQ(options.unsignedOr("cpus", 0), 16u);
    EXPECT_EQ(options.unsignedOr("missing", 7), 7u);
}

TEST(OptionsTest, NumberParsingIsStrict)
{
    const Options options = Options::parse({"--x", "abc", "--y", "1.5"});
    EXPECT_THROW(options.numberOr("x", 0.0), std::invalid_argument);
    EXPECT_DOUBLE_EQ(options.numberOr("y", 0.0), 1.5);
    EXPECT_THROW(options.unsignedOr("y", 0), std::invalid_argument);
}

TEST(OptionsTest, UnsignedRejectsValuesAboveUintMax)
{
    // Casting a double above UINT_MAX to unsigned is UB; the parser
    // must range-check first and report a clear error.
    const Options options = Options::parse(
        {"--events", "5e9", "--edge", "4294967295", "--over",
         "4294967296", "--neg", "-3", "--inf", "inf"});
    EXPECT_THROW(options.unsignedOr("events", 0),
                 std::invalid_argument);
    EXPECT_EQ(options.unsignedOr("edge", 0), 4294967295u);
    EXPECT_THROW(options.unsignedOr("over", 0), std::invalid_argument);
    EXPECT_THROW(options.unsignedOr("neg", 0), std::invalid_argument);
    EXPECT_THROW(options.unsignedOr("inf", 0), std::invalid_argument);
    try {
        options.unsignedOr("events", 0);
        FAIL() << "expected an out-of-range error";
    } catch (const std::invalid_argument &error) {
        EXPECT_NE(std::string(error.what()).find("out of range"),
                  std::string::npos)
            << error.what();
    }
}

TEST(OptionsTest, RejectsEmptyAndUnknownOptions)
{
    EXPECT_THROW(Options::parse({"--"}), std::invalid_argument);
    const Options options = Options::parse({"--known", "1", "--oops"});
    EXPECT_THROW(options.requireKnown({"known"}), std::invalid_argument);
    EXPECT_NO_THROW(options.requireKnown({"known", "oops"}));
}

TEST(CliTest, NoArgsPrintsUsage)
{
    std::string output;
    EXPECT_EQ(runCli({}, &output), 2);
    EXPECT_NE(output.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds)
{
    std::string output;
    EXPECT_EQ(runCli({"help"}, &output), 0);
    EXPECT_NE(output.find("commands:"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails)
{
    std::string output;
    EXPECT_EQ(runCli({"frobnicate"}, &output), 2);
    EXPECT_NE(output.find("unknown command"), std::string::npos);
}

TEST(CliTest, ThreadsOptionIsAcceptedEverywhereAndDeterministic)
{
    std::string serial, parallel;
    EXPECT_EQ(runCli({"sensitivity", "--cpus", "8", "--threads", "1"},
                     &serial),
              0);
    EXPECT_EQ(runCli({"sensitivity", "--cpus", "8", "--threads", "4"},
                     &parallel),
              0);
    // The determinism guarantee, observed end to end: identical bytes.
    EXPECT_EQ(serial, parallel);

    std::string output;
    EXPECT_EQ(runCli({"eval", "--cpus", "4", "--threads", "2"},
                     &output),
              0);

    EXPECT_EQ(runCli({"eval", "--threads", "0"}, &output), 2);
    EXPECT_NE(output.find("positive"), std::string::npos);

    setThreadCount(0); // Back to the default for the other tests.
}

TEST(CliTest, EvalBusPrintsEveryScheme)
{
    std::string output;
    ASSERT_EQ(runCli({"eval", "--cpus", "8", "--shd", "0.2"}, &output),
              0);
    EXPECT_NE(output.find("Base"), std::string::npos);
    EXPECT_NE(output.find("Dragon"), std::string::npos);
    EXPECT_NE(output.find("Software-Flush"), std::string::npos);
    EXPECT_NE(output.find("No-Cache"), std::string::npos);
    EXPECT_NE(output.find("MESI"), std::string::npos);
    EXPECT_NE(output.find("MESIF"), std::string::npos);
    EXPECT_NE(output.find("MOESI"), std::string::npos);
    EXPECT_NE(output.find("Adaptive-Hybrid"), std::string::npos);
}

TEST(CliTest, SimParsesEveryProtocolFamilyScheme)
{
    const std::string path = ::testing::TempDir() + "/cli_family.swcc";
    std::string output;
    ASSERT_EQ(runCli({"gen", "--profile", "pops-like", "--cpus", "2",
                      "--instructions", "5000", "--out", path},
                     &output),
              0);
    for (const char *scheme :
         {"mesi", "mesif", "moesi", "adaptive-hybrid"}) {
        ASSERT_EQ(runCli({"sim", path, "--scheme", scheme}, &output),
                  0)
            << scheme;
        EXPECT_NE(output.find("processing power"), std::string::npos)
            << scheme;
    }
    std::remove(path.c_str());
}

TEST(CliTest, EvalNetworkIncludesDirectoryExtension)
{
    std::string output;
    ASSERT_EQ(runCli({"eval", "--network", "--stages", "8"}, &output),
              0);
    EXPECT_NE(output.find("Directory"), std::string::npos);
    EXPECT_EQ(output.find("Dragon"), std::string::npos);
}

TEST(CliTest, EvalRejectsBadParameterValue)
{
    std::string output;
    EXPECT_EQ(runCli({"eval", "--shd", "1.7"}, &output), 2);
    EXPECT_NE(output.find("error:"), std::string::npos);
}

TEST(CliTest, EvalRejectsUnknownOption)
{
    std::string output;
    EXPECT_EQ(runCli({"eval", "--nonsense", "1"}, &output), 2);
    EXPECT_NE(output.find("unknown option"), std::string::npos);
}

TEST(CliTest, GenStatSimRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/cli_trace.swcc";

    std::string output;
    ASSERT_EQ(runCli({"gen", "--profile", "pops-like", "--cpus", "2",
                      "--instructions", "20000", "--flushes", "--out",
                      path},
                     &output),
              0);
    EXPECT_NE(output.find("wrote"), std::string::npos);

    ASSERT_EQ(runCli({"stat", path}, &output), 0);
    EXPECT_NE(output.find("ls"), std::string::npos);
    EXPECT_NE(output.find("apl"), std::string::npos);

    ASSERT_EQ(runCli({"sim", path, "--scheme", "software-flush"},
                     &output),
              0);
    EXPECT_NE(output.find("processing power"), std::string::npos);

    std::remove(path.c_str());
}

TEST(CliTest, StatWithoutFileFails)
{
    std::string output;
    EXPECT_EQ(runCli({"stat"}, &output), 2);
    EXPECT_NE(output.find("trace file"), std::string::npos);
}

TEST(CliTest, SimUnknownSchemeFails)
{
    std::string output;
    EXPECT_EQ(runCli({"sim", "x.swcc", "--scheme", "mosi"}, &output), 2);
    EXPECT_NE(output.find("unknown scheme"), std::string::npos);
}

TEST(CliTest, ValidateRunsEndToEnd)
{
    std::string output;
    ASSERT_EQ(runCli({"validate", "--profile", "thor-like", "--scheme",
                      "base", "--cpus", "2", "--instructions",
                      "20000"},
                     &output),
              0);
    EXPECT_NE(output.find("model power"), std::string::npos);
    EXPECT_NE(output.find("error %"), std::string::npos);
}

TEST(CliTest, SweepProducesRequestedPoints)
{
    std::string output;
    ASSERT_EQ(runCli({"sweep", "--param", "shd", "--from", "0.1",
                      "--to", "0.3", "--points", "3", "--cpus", "8"},
                     &output),
              0);
    EXPECT_NE(output.find("0.1"), std::string::npos);
    EXPECT_NE(output.find("0.3"), std::string::npos);
}

TEST(CliTest, SweepAplUsesAplAxis)
{
    std::string output;
    ASSERT_EQ(runCli({"sweep", "--param", "apl", "--from", "1", "--to",
                      "64", "--points", "4"},
                     &output),
              0);
    EXPECT_NE(output.find("apl"), std::string::npos);
    EXPECT_NE(output.find("64"), std::string::npos);
}

TEST(CliTest, NetworkComparesDisciplines)
{
    std::string output;
    ASSERT_EQ(runCli({"network", "--stages", "6"}, &output), 0);
    EXPECT_NE(output.find("circuit power"), std::string::npos);
    EXPECT_NE(output.find("packet power"), std::string::npos);
    EXPECT_NE(output.find("Directory"), std::string::npos);
}

TEST(CliTest, NetworkWithWideSwitches)
{
    std::string output;
    ASSERT_EQ(runCli({"network", "--stages", "8", "--switch", "4"},
                     &output),
              0);
    EXPECT_NE(output.find("4x4"), std::string::npos);
    EXPECT_EQ(runCli({"network", "--switch", "1"}, &output), 2);
}

TEST(CliTest, SensitivityPrintsEveryParameter)
{
    std::string output;
    ASSERT_EQ(runCli({"sensitivity", "--cpus", "8"}, &output), 0);
    for (ParamId id : kAllParams) {
        EXPECT_NE(output.find(std::string(paramName(id))),
                  std::string::npos)
            << paramName(id);
    }
}

TEST(CliTest, SweepNeedsParam)
{
    std::string output;
    EXPECT_EQ(runCli({"sweep", "--from", "0", "--to", "1"}, &output), 2);
    EXPECT_NE(output.find("--param"), std::string::npos);
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(CliCampaignTest, ResumeNeedsJournal)
{
    std::string output;
    EXPECT_EQ(runCli({"sweep", "--param", "shd", "--resume"}, &output),
              2);
    EXPECT_NE(output.find("--journal"), std::string::npos);
}

TEST(CliCampaignTest, InterruptedSweepResumesByteIdentically)
{
    const std::string dir = ::testing::TempDir();
    const std::string journal = dir + "/cli_sweep.journal";
    const std::string fresh_csv = dir + "/cli_fresh.csv";
    const std::string resumed_csv = dir + "/cli_resumed.csv";
    std::remove(journal.c_str());
    std::remove(fresh_csv.c_str());
    std::remove(resumed_csv.c_str());

    // Reference: one uninterrupted run.
    std::string output;
    ASSERT_EQ(runCli({"sweep", "--param", "shd", "--points", "7",
                      "--cpus", "8", "--csv-out", fresh_csv},
                     &output),
              0);

    // The same sweep killed mid-campaign by an injected task kill:
    // exit code 3, a journal with the completed cells, and no CSV.
    const std::string partial_csv = dir + "/cli_partial.csv";
    std::remove(partial_csv.c_str());
    ASSERT_EQ(runCli({"sweep", "--param", "shd", "--points", "7",
                      "--cpus", "8", "--journal", journal,
                      "--csv-out", partial_csv, "--fault-inject",
                      "task-kill:1@2"},
                     &output),
              3);
    EXPECT_NE(output.find("--resume"), std::string::npos);
    EXPECT_FALSE(std::ifstream(partial_csv).good())
        << "an interrupted campaign must not leave a CSV artifact";

    // Resume: recomputes only the missing cells; the CSV (and stdout
    // table) must be byte-identical to the uninterrupted run.
    campaign::clearFaults(); // The "new process" would start clean.
    std::string fresh_stdout;
    ASSERT_EQ(runCli({"sweep", "--param", "shd", "--points", "7",
                      "--cpus", "8"},
                     &fresh_stdout),
              0);
    std::string resumed_stdout;
    ASSERT_EQ(runCli({"sweep", "--param", "shd", "--points", "7",
                      "--cpus", "8", "--journal", journal, "--resume",
                      "--csv-out", resumed_csv},
                     &resumed_stdout),
              0);
    EXPECT_EQ(resumed_stdout, fresh_stdout);
    EXPECT_EQ(readFile(resumed_csv), readFile(fresh_csv));
    EXPECT_FALSE(readFile(resumed_csv).empty());

    std::remove(journal.c_str());
    std::remove(fresh_csv.c_str());
    std::remove(resumed_csv.c_str());
}

TEST(CliCampaignTest, FaultySolverIsRetriedToSuccess)
{
    campaign::clearFaults();
    const std::string dir = ::testing::TempDir();
    const std::string journal = dir + "/cli_retry.journal";
    std::remove(journal.c_str());

    std::string faulty;
    ASSERT_EQ(runCli({"sweep", "--param", "shd", "--points", "5",
                      "--cpus", "8", "--journal", journal,
                      "--fault-inject", "solver-bus:2"},
                     &faulty),
              0);
    campaign::clearFaults();
    std::string clean;
    ASSERT_EQ(runCli({"sweep", "--param", "shd", "--points", "5",
                      "--cpus", "8"},
                     &clean),
              0);
    // Two injected solver failures, both absorbed by retries: the
    // output table is unaffected.
    EXPECT_EQ(faulty, clean);
    std::remove(journal.c_str());
}

} // namespace
} // namespace swcc::cli
