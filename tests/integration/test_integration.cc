/**
 * @file
 * End-to-end checks of the paper's headline evaluation claims
 * (Sections 5 and 6) against the full model stack.
 */

#include <gtest/gtest.h>

#include "core/swcc.hh"

namespace swcc
{
namespace
{

// ---------------------------------------------------------------------
// Figures 4-6: scheme comparison at low/medium/high ls+shd.
// ---------------------------------------------------------------------

TEST(Figure4Test, LowSharingMakesEverySchemeViable)
{
    // Paper: "At low values of ls and shd, Base, Dragon, and
    // Software-Flush perform well ... Even No-Cache performs well for
    // a moderate number of processors."
    const WorkloadParams params = sharingScenario(Level::Low);
    for (Scheme scheme : {Scheme::Base, Scheme::Dragon,
                          Scheme::SoftwareFlush}) {
        const BusSolution sol = evaluateBus(scheme, params, 8);
        EXPECT_GT(sol.processingPower, 6.0) << schemeName(scheme);
    }
    EXPECT_GT(evaluateBus(Scheme::NoCache, params, 4).processingPower,
              3.0);
}

TEST(Figure5Test, MediumSharingSeparatesTheSchemes)
{
    const WorkloadParams params = sharingScenario(Level::Middle);
    // Dragon performs very well even with 16 processors.
    const BusSolution dragon = evaluateBus(Scheme::Dragon, params, 16);
    EXPECT_GT(dragon.processingPower, 12.0);

    // No-Cache is acceptable only for a few processors; its bus
    // saturates well below 16 processors' worth of power.
    const BusSolution nocache =
        evaluateBus(Scheme::NoCache, params, 16);
    EXPECT_LT(nocache.processingPower, 8.0);

    // Software-Flush with medium apl does well to 8-10 processors,
    // then adding processors helps only slightly.
    const BusSolution swf8 =
        evaluateBus(Scheme::SoftwareFlush, params, 8);
    const BusSolution swf16 =
        evaluateBus(Scheme::SoftwareFlush, params, 16);
    EXPECT_GT(swf8.processingPower, 6.0);
    EXPECT_LT(swf16.processingPower - swf8.processingPower, 3.0);
}

TEST(Figure6Test, HighSharingSaturatesTheSoftwareSchemes)
{
    const WorkloadParams params = sharingScenario(Level::High);

    // Paper: No-Cache "saturates the bus with a processing power less
    // than 2".
    const double nocache_limit =
        busSaturationPower(perInstructionCost(
            operationFrequencies(Scheme::NoCache, params),
            BusCostModel()));
    EXPECT_LT(nocache_limit, 2.0);

    // Paper: Software-Flush "saturates the bus with processing power
    // less than 5" (medium apl).
    const double swf_limit =
        busSaturationPower(perInstructionCost(
            operationFrequencies(Scheme::SoftwareFlush, params),
            BusCostModel()));
    EXPECT_LT(swf_limit, 5.0);

    // Dragon still gives good performance.
    EXPECT_GT(evaluateBus(Scheme::Dragon, params, 16).processingPower,
              10.0);
}

// ---------------------------------------------------------------------
// Figure 7-9: the apl dependence of Software-Flush.
// ---------------------------------------------------------------------

TEST(Figure7Test, AplOneIsWorseThanNoCacheEverywhere)
{
    WorkloadParams params = middleParams();
    params.apl = 1.0;
    for (unsigned cpus : {2u, 4u, 8u, 16u}) {
        EXPECT_LT(
            evaluateBus(Scheme::SoftwareFlush, params, cpus)
                .processingPower,
            evaluateBus(Scheme::NoCache, params, cpus).processingPower)
            << cpus;
    }
}

TEST(Figure7Test, HugeAplWithCleanFlushesRivalsDragon)
{
    WorkloadParams params = middleParams();
    params.apl = 500.0;
    params.mdshd = 0.0;
    EXPECT_GT(
        evaluateBus(Scheme::SoftwareFlush, params, 16).processingPower,
        evaluateBus(Scheme::Dragon, params, 16).processingPower * 0.98);
}

TEST(Figure8Test, LowSharingSaturatesAplBenefitQuickly)
{
    // Paper: "With low sharing, performance is very sensitive to apl
    // at low values, but quickly reaches its maximum."
    WorkloadParams params = middleParams();
    setParam(params, ParamId::Shd,
             paramLevelValue(ParamId::Shd, Level::Low));

    auto power_at = [&params](double apl) {
        WorkloadParams p = params;
        p.apl = apl;
        return evaluateBus(Scheme::SoftwareFlush, p, 16)
            .processingPower;
    };
    const double gain_early = power_at(4.0) - power_at(1.0);
    const double gain_late = power_at(64.0) - power_at(16.0);
    EXPECT_GT(gain_early, 4.0 * gain_late);
    // By apl = 16 it is already within 10% of the apl = 256 ceiling.
    EXPECT_GT(power_at(16.0), 0.9 * power_at(256.0));
}

TEST(Figure9Test, MediumSharingStaysSensitiveToHighApl)
{
    // Paper: "With medium sharing levels, performance is sensitive to
    // variations in apl even at relatively high values."
    WorkloadParams params = middleParams();
    auto power_at = [&params](double apl) {
        WorkloadParams p = params;
        p.apl = apl;
        return evaluateBus(Scheme::SoftwareFlush, p, 16)
            .processingPower;
    };
    EXPECT_LT(power_at(16.0), 0.9 * power_at(256.0));
}

// ---------------------------------------------------------------------
// Figure 10: buses versus networks in the small scale.
// ---------------------------------------------------------------------

TEST(Figure10Test, NetworksOvertakeTheBusOnceItSaturates)
{
    const WorkloadParams params = middleParams();
    for (Scheme scheme : {Scheme::SoftwareFlush, Scheme::NoCache}) {
        const double bus32 =
            evaluateBus(scheme, params, 32).processingPower;
        const double net32 =
            evaluateNetwork(scheme, params, 5).processingPower;
        EXPECT_GT(net32, bus32) << schemeName(scheme);
    }
}

TEST(Figure10Test, BusWinsInTheVerySmallScale)
{
    // Network transactions pay the 2n path setup, so at 2 processors
    // the bus is the better medium.
    const WorkloadParams params = middleParams();
    for (Scheme scheme : {Scheme::Base, Scheme::SoftwareFlush,
                          Scheme::NoCache}) {
        const double bus2 =
            evaluateBus(scheme, params, 2).processingPower;
        const double net2 =
            evaluateNetwork(scheme, params, 1).processingPower;
        EXPECT_GT(bus2, net2) << schemeName(scheme);
    }
}

TEST(Figure10Test, SoftwareSchemesScaleOnTheNetwork)
{
    const WorkloadParams params = middleParams();
    for (Scheme scheme : {Scheme::SoftwareFlush, Scheme::NoCache}) {
        const auto curve = networkPowerCurve(scheme, params, 8);
        // Power keeps growing through 256 processors...
        for (std::size_t i = 1; i < curve.size(); ++i) {
            EXPECT_GT(curve[i].processingPower,
                      curve[i - 1].processingPower)
                << schemeName(scheme);
        }
    }
    // ...while the bus versions flatline long before.
    const double bus_ceiling = busSaturationPower(perInstructionCost(
        operationFrequencies(Scheme::SoftwareFlush, params),
        BusCostModel()));
    const double net256 =
        evaluateNetwork(Scheme::SoftwareFlush, params, 8)
            .processingPower;
    EXPECT_GT(net256, 3.0 * bus_ceiling);
}

// ---------------------------------------------------------------------
// Figure 11: the 256-processor network operating points.
// ---------------------------------------------------------------------

TEST(Figure11Test, ReferenceRateMattersMoreThanMessageSize)
{
    // Paper: "In a circuit-switched network, a change in the reference
    // rate impacts system performance more than a proportional change
    // in the blocksize" — because of the fixed 2n path cost.
    const unsigned stages = 8;
    const double base_u = solveComputeFraction(0.01, 4.0 + 16.0, stages);
    const double double_rate =
        solveComputeFraction(0.02, 4.0 + 16.0, stages);
    const double double_size =
        solveComputeFraction(0.01, 8.0 + 16.0, stages);
    EXPECT_LT(double_rate, double_size);
    EXPECT_LT(double_size, base_u);
}

TEST(Figure11Test, ThreePercentMissRateHalvesUtilization)
{
    // Paper: "Even for a cache-miss rate as low as 3% in the
    // 256-processor system and a message size of 4 words ... the
    // processor utilization is halved."
    const double u = solveComputeFraction(0.03, 20.0, 8);
    EXPECT_LT(u, 0.60);
    EXPECT_GT(u, 0.30);
}

TEST(Figure11Test, SchemePointsFallIntoTwoPerformanceClasses)
{
    // Paper: Base (all ranges), Software-Flush (low/middle) and
    // No-Cache (low) are reasonable; the rest are much poorer.
    const unsigned stages = 8;
    auto utilization = [stages](Scheme scheme, Level level) {
        WorkloadParams params = paramsAtLevel(level);
        if (level == Level::High) {
            // nshd's high value only matters to Dragon; keep the rest.
            params.nshd = 1.0;
        }
        return evaluateNetwork(scheme, params, stages)
            .processorUtilization;
    };

    const double good_class = 0.35;
    EXPECT_GT(utilization(Scheme::Base, Level::Low), good_class);
    EXPECT_GT(utilization(Scheme::Base, Level::Middle), good_class);
    EXPECT_GT(utilization(Scheme::Base, Level::High), good_class);
    EXPECT_GT(utilization(Scheme::SoftwareFlush, Level::Low),
              good_class);
    EXPECT_GT(utilization(Scheme::SoftwareFlush, Level::Middle),
              good_class);
    EXPECT_GT(utilization(Scheme::NoCache, Level::Low), good_class);

    EXPECT_LT(utilization(Scheme::SoftwareFlush, Level::High),
              good_class);
    EXPECT_LT(utilization(Scheme::NoCache, Level::Middle), good_class);
    EXPECT_LT(utilization(Scheme::NoCache, Level::High), good_class);
}

} // namespace
} // namespace swcc
