/**
 * @file
 * Unit tests for workload parameters and their Table 7 ranges.
 */

#include <gtest/gtest.h>

#include "core/workload.hh"

namespace swcc
{
namespace
{

TEST(WorkloadParamsTest, DefaultsAreValid)
{
    EXPECT_NO_THROW(WorkloadParams{}.validate());
}

TEST(WorkloadParamsTest, RejectsOutOfRangeProbabilities)
{
    WorkloadParams params;
    params.ls = 1.5;
    EXPECT_THROW(params.validate(), std::invalid_argument);

    params = WorkloadParams{};
    params.shd = -0.1;
    EXPECT_THROW(params.validate(), std::invalid_argument);

    params = WorkloadParams{};
    params.oclean = 2.0;
    EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(WorkloadParamsTest, RejectsAplBelowOne)
{
    WorkloadParams params;
    params.apl = 0.5;
    EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(WorkloadParamsTest, RejectsNegativeNshd)
{
    WorkloadParams params;
    params.nshd = -1.0;
    EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(ParamIdTest, GetSetRoundTripsEveryParameter)
{
    for (ParamId id : kAllParams) {
        WorkloadParams params = middleParams();
        const double value = getParam(params, id);
        setParam(params, id, value);
        EXPECT_NEAR(getParam(params, id), value, 1e-12)
            << paramName(id);
    }
}

TEST(ParamIdTest, InvAplMapsToApl)
{
    WorkloadParams params;
    setParam(params, ParamId::InvApl, 0.25);
    EXPECT_DOUBLE_EQ(params.apl, 4.0);
    EXPECT_DOUBLE_EQ(getParam(params, ParamId::InvApl), 0.25);
}

TEST(ParamIdTest, InvAplRejectsNonPositive)
{
    WorkloadParams params;
    EXPECT_THROW(setParam(params, ParamId::InvApl, 0.0),
                 std::invalid_argument);
}

TEST(ParamIdTest, NamesAreThePaperNotation)
{
    EXPECT_EQ(paramName(ParamId::Ls), "ls");
    EXPECT_EQ(paramName(ParamId::Msdat), "msdat");
    EXPECT_EQ(paramName(ParamId::Mains), "mains");
    EXPECT_EQ(paramName(ParamId::Md), "md");
    EXPECT_EQ(paramName(ParamId::Shd), "shd");
    EXPECT_EQ(paramName(ParamId::Wr), "wr");
    EXPECT_EQ(paramName(ParamId::InvApl), "1/apl");
    EXPECT_EQ(paramName(ParamId::Mdshd), "mdshd");
    EXPECT_EQ(paramName(ParamId::Oclean), "oclean");
    EXPECT_EQ(paramName(ParamId::Opres), "opres");
    EXPECT_EQ(paramName(ParamId::Nshd), "nshd");
}

TEST(ParamRangeTest, MatchesPaperTable7)
{
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Ls, Level::Low), 0.2);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Ls, Level::Middle), 0.3);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Ls, Level::High), 0.4);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Msdat, Level::Low), 0.004);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Msdat, Level::Middle),
                     0.014);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Msdat, Level::High), 0.024);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Mains, Level::Low), 0.0014);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Mains, Level::Middle),
                     0.0022);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Mains, Level::High),
                     0.0034);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Md, Level::Low), 0.14);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Md, Level::Middle), 0.20);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Md, Level::High), 0.50);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Shd, Level::Low), 0.08);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Shd, Level::Middle), 0.25);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Shd, Level::High), 0.42);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Wr, Level::Low), 0.10);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Wr, Level::Middle), 0.25);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Wr, Level::High), 0.40);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::InvApl, Level::Low), 0.04);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::InvApl, Level::Middle),
                     0.13);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::InvApl, Level::High), 1.0);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Mdshd, Level::Low), 0.0);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Mdshd, Level::Middle),
                     0.25);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Mdshd, Level::High), 0.5);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Oclean, Level::Low), 0.60);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Oclean, Level::Middle),
                     0.84);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Oclean, Level::High),
                     0.976);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Opres, Level::Low), 0.63);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Opres, Level::Middle),
                     0.79);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Opres, Level::High), 0.94);

    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Nshd, Level::Low), 1.0);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Nshd, Level::Middle), 1.0);
    EXPECT_DOUBLE_EQ(paramLevelValue(ParamId::Nshd, Level::High), 7.0);
}

/** Every level of every parameter yields a valid parameter set. */
class ParamLevelTest : public ::testing::TestWithParam<Level>
{
};

TEST_P(ParamLevelTest, ParamsAtLevelAreValid)
{
    const WorkloadParams params = paramsAtLevel(GetParam());
    EXPECT_NO_THROW(params.validate());
}

TEST_P(ParamLevelTest, SingleParameterExcursionsStayValid)
{
    for (ParamId id : kAllParams) {
        WorkloadParams params = middleParams();
        setParam(params, id, paramLevelValue(id, GetParam()));
        EXPECT_NO_THROW(params.validate()) << paramName(id);
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, ParamLevelTest,
                         ::testing::Values(Level::Low, Level::Middle,
                                           Level::High));

TEST(ScenarioTest, MiddleParamsMatchTable7Middles)
{
    const WorkloadParams params = middleParams();
    EXPECT_DOUBLE_EQ(params.ls, 0.3);
    EXPECT_DOUBLE_EQ(params.msdat, 0.014);
    EXPECT_DOUBLE_EQ(params.shd, 0.25);
    EXPECT_NEAR(params.apl, 1.0 / 0.13, 1e-9);
}

TEST(ScenarioTest, SharingScenarioOnlyMovesLsAndShd)
{
    const WorkloadParams mid = middleParams();
    const WorkloadParams high = sharingScenario(Level::High);
    EXPECT_DOUBLE_EQ(high.ls, 0.4);
    EXPECT_DOUBLE_EQ(high.shd, 0.42);
    EXPECT_DOUBLE_EQ(high.msdat, mid.msdat);
    EXPECT_DOUBLE_EQ(high.wr, mid.wr);
    EXPECT_DOUBLE_EQ(high.apl, mid.apl);
}

TEST(ScenarioTest, LevelNames)
{
    EXPECT_EQ(levelName(Level::Low), "low");
    EXPECT_EQ(levelName(Level::Middle), "middle");
    EXPECT_EQ(levelName(Level::High), "high");
}

} // namespace
} // namespace swcc
