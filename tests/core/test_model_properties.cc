/**
 * @file
 * Cross-cutting property tests of the analytical model: monotonicity
 * and scaling laws that must hold across the whole Table 7 parameter
 * space, for every scheme.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/scheme_evaluator.hh"

namespace swcc
{
namespace
{

double
power(Scheme scheme, const WorkloadParams &params, unsigned cpus = 16)
{
    return evaluateBus(scheme, params, cpus).processingPower;
}

/**
 * Direction of a parameter's effect: increasing any pure-cost
 * parameter can never *increase* processing power, for any scheme it
 * affects. (wr is excluded: it trades read-throughs for cheaper
 * write-throughs in No-Cache.)
 */
class CostMonotonicityTest
    : public ::testing::TestWithParam<std::tuple<Scheme, ParamId>>
{
};

TEST_P(CostMonotonicityTest, MorePressureNeverHelps)
{
    const auto [scheme, param] = GetParam();
    WorkloadParams params = middleParams();
    setParam(params, param, paramLevelValue(param, Level::Low));

    double previous = power(scheme, params);
    for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
        const double low = paramLevelValue(param, Level::Low);
        const double high = paramLevelValue(param, Level::High);
        setParam(params, param, low + fraction * (high - low));
        const double current = power(scheme, params);
        EXPECT_LE(current, previous + 1e-9)
            << schemeName(scheme) << " " << paramName(param) << " at "
            << fraction;
        previous = current;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemeParams, CostMonotonicityTest,
    ::testing::Values(
        std::tuple{Scheme::Base, ParamId::Msdat},
        std::tuple{Scheme::Base, ParamId::Mains},
        std::tuple{Scheme::Base, ParamId::Md},
        std::tuple{Scheme::Base, ParamId::Ls},
        std::tuple{Scheme::NoCache, ParamId::Msdat},
        std::tuple{Scheme::NoCache, ParamId::Shd},
        std::tuple{Scheme::NoCache, ParamId::Ls},
        std::tuple{Scheme::SoftwareFlush, ParamId::Msdat},
        std::tuple{Scheme::SoftwareFlush, ParamId::Shd},
        std::tuple{Scheme::SoftwareFlush, ParamId::InvApl},
        std::tuple{Scheme::SoftwareFlush, ParamId::Mdshd},
        std::tuple{Scheme::SoftwareFlush, ParamId::Ls},
        std::tuple{Scheme::Dragon, ParamId::Msdat},
        std::tuple{Scheme::Dragon, ParamId::Shd},
        std::tuple{Scheme::Dragon, ParamId::Nshd},
        std::tuple{Scheme::Dragon, ParamId::Opres},
        std::tuple{Scheme::Mesi, ParamId::Msdat},
        std::tuple{Scheme::Mesi, ParamId::Shd},
        std::tuple{Scheme::Mesi, ParamId::Opres},
        std::tuple{Scheme::Mesi, ParamId::Nshd},
        std::tuple{Scheme::Mesi, ParamId::InvApl},
        std::tuple{Scheme::Mesif, ParamId::Msdat},
        std::tuple{Scheme::Mesif, ParamId::Shd},
        std::tuple{Scheme::Moesi, ParamId::Msdat},
        std::tuple{Scheme::Moesi, ParamId::Nshd},
        std::tuple{Scheme::Hybrid, ParamId::Msdat},
        std::tuple{Scheme::Hybrid, ParamId::Shd}));

/** Base dominates every scheme at every Table 7 corner. */
class DominanceTest : public ::testing::TestWithParam<Level>
{
};

TEST_P(DominanceTest, BaseIsAnUpperBoundEverywhere)
{
    const WorkloadParams params = paramsAtLevel(GetParam());
    const double base = power(Scheme::Base, params);
    for (Scheme scheme : {Scheme::NoCache, Scheme::SoftwareFlush,
                          Scheme::Dragon, Scheme::Mesi, Scheme::Mesif,
                          Scheme::Moesi, Scheme::Hybrid}) {
        EXPECT_LE(power(scheme, params), base + 1e-9)
            << schemeName(scheme) << " at " << levelName(GetParam());
    }
}

TEST_P(DominanceTest, MesifForwarderNeverHurts)
{
    // The forwarder only converts memory-supplied misses into cheaper
    // cache-supplied ones, so MESIF weakly dominates MESI.
    const WorkloadParams params = paramsAtLevel(GetParam());
    EXPECT_GE(power(Scheme::Mesif, params),
              power(Scheme::Mesi, params) - 1e-9)
        << levelName(GetParam());
}

TEST_P(DominanceTest, MoesiDeferredWritebacksNeverHelp)
{
    // Under the Table 1 costs the Illinois owner supply updates memory
    // for free, so deferring the write-back (raising the dirty-victim
    // fraction) can only cost; MESI weakly dominates MOESI.
    const WorkloadParams params = paramsAtLevel(GetParam());
    EXPECT_LE(power(Scheme::Moesi, params),
              power(Scheme::Mesi, params) + 1e-9)
        << levelName(GetParam());
}

TEST_P(DominanceTest, HybridMatchesOnePurePolicy)
{
    // The hybrid table is, by construction, exactly the cheaper of the
    // Dragon and MESI tables — never a third thing.
    const WorkloadParams params = paramsAtLevel(GetParam());
    const FrequencyVector hybrid =
        operationFrequencies(Scheme::Hybrid, params);
    const FrequencyVector dragon =
        operationFrequencies(Scheme::Dragon, params);
    const FrequencyVector mesi =
        operationFrequencies(Scheme::Mesi, params);
    bool is_dragon = true;
    bool is_mesi = true;
    for (Operation op : kAllOperations) {
        is_dragon = is_dragon && hybrid.of(op) == dragon.of(op);
        is_mesi = is_mesi && hybrid.of(op) == mesi.of(op);
    }
    EXPECT_TRUE(is_dragon || is_mesi) << levelName(GetParam());
}

TEST_P(DominanceTest, BusAndNetworkAgreeOnSchemeOrdering)
{
    // At 256 processors the software-scheme ranking (Base >= SF >=
    // NoCache at a medium apl) holds on both media. At apl = 1
    // Software-Flush legitimately falls below No-Cache (paper Fig. 7),
    // so apl stays pinned at its middle value here.
    WorkloadParams params = paramsAtLevel(GetParam());
    setParam(params, ParamId::InvApl,
             paramLevelValue(ParamId::InvApl, Level::Middle));
    params.nshd = 1.0; // High nshd only affects Dragon, not used here.
    const auto net = [&params](Scheme scheme) {
        return evaluateNetwork(scheme, params, 8).processingPower;
    };
    EXPECT_GE(net(Scheme::Base), net(Scheme::SoftwareFlush) - 1e-9);
    EXPECT_GE(net(Scheme::SoftwareFlush), net(Scheme::NoCache) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Levels, DominanceTest,
                         ::testing::ValuesIn(kAllLevels));

TEST(HybridPolicyTest, CrossoverFollowsRunLength)
{
    // Short runs (apl small): almost every shared write opens a run,
    // invalidation buys nothing and costs coherence misses, so the
    // hybrid keeps the Dragon table. Long runs: one invalidation
    // amortizes over many now-free writes and the MESI table wins.
    const auto matches = [](double apl, Scheme pure) {
        WorkloadParams params = middleParams();
        params.apl = apl;
        const FrequencyVector hybrid =
            operationFrequencies(Scheme::Hybrid, params);
        const FrequencyVector expected =
            operationFrequencies(pure, params);
        for (Operation op : kAllOperations) {
            if (hybrid.of(op) != expected.of(op)) {
                return false;
            }
        }
        return true;
    };
    EXPECT_TRUE(matches(1.0, Scheme::Dragon));
    EXPECT_TRUE(matches(4.0, Scheme::Dragon));
    EXPECT_TRUE(matches(16.0, Scheme::Mesi));
    EXPECT_TRUE(matches(64.0, Scheme::Mesi));
}

TEST(InvalidateFamilyModelTest, SchemesCollapseToBaseWithoutSharing)
{
    // With shd = 0 no invalidations, coherence misses, or forwarder
    // supplies exist; every family member prices exactly like Base.
    WorkloadParams params = middleParams();
    params.shd = 0.0;
    const double base = power(Scheme::Base, params);
    for (Scheme scheme : {Scheme::Mesi, Scheme::Mesif, Scheme::Moesi,
                          Scheme::Hybrid}) {
        EXPECT_NEAR(power(scheme, params), base, 1e-9)
            << schemeName(scheme);
    }
}

TEST(InvalidateFamilyModelTest, FirstWriteFractionShapesInvalidations)
{
    // Table check: invalidations fire once per write run —
    // ls*shd*wr*opres/(wr*apl) of instructions when runs hold more
    // than one write — and each steals nshd snoop cycles.
    WorkloadParams p = middleParams();
    p.apl = 32.0;
    const FrequencyVector f = operationFrequencies(Scheme::Mesi, p);
    const double inval =
        p.ls * p.shd * p.wr * p.opres / (p.wr * p.apl);
    EXPECT_NEAR(f.of(Operation::WriteBroadcast), inval, 1e-12);
    EXPECT_NEAR(f.of(Operation::CycleSteal), inval * p.nshd, 1e-12);
    // Coherence misses land in the cache-supplied miss classes on top
    // of the Dragon-style shared-miss split.
    const double coherence = inval * p.nshd * p.opres;
    const double from_cache = p.shd * (1.0 - p.oclean);
    EXPECT_NEAR(f.totalMisses(),
                p.ls * p.msdat + p.mains + coherence, 1e-12);
    EXPECT_NEAR(f.of(Operation::CleanMissCache) +
                    f.of(Operation::DirtyMissCache),
                p.ls * p.msdat * from_cache + coherence, 1e-12);
}

TEST(ScalingTest, PowerPerProcessorNeverImproves)
{
    // Marginal utility of processors is non-increasing on a bus.
    const WorkloadParams params = middleParams();
    for (Scheme scheme : kAllSchemes) {
        double prev_util = 1.0;
        for (unsigned n = 1; n <= 32; n *= 2) {
            const double util =
                evaluateBus(scheme, params, n).processorUtilization;
            EXPECT_LE(util, prev_util + 1e-12) << schemeName(scheme);
            prev_util = util;
        }
    }
}

TEST(ScalingTest, FrequenciesAreLinearInLsAtFixedMix)
{
    // Every ls-proportional term doubles when ls doubles (Base has
    // only the data-miss term plus the constant mains).
    WorkloadParams params = middleParams();
    params.ls = 0.15;
    const FrequencyVector f1 =
        operationFrequencies(Scheme::NoCache, params);
    params.ls = 0.30;
    const FrequencyVector f2 =
        operationFrequencies(Scheme::NoCache, params);
    EXPECT_NEAR(f2.of(Operation::ReadThrough),
                2.0 * f1.of(Operation::ReadThrough), 1e-12);
    EXPECT_NEAR(f2.of(Operation::WriteThrough),
                2.0 * f1.of(Operation::WriteThrough), 1e-12);
}

TEST(ScalingTest, ExecutionTimeDecomposesAsCpuPlusWaiting)
{
    for (Scheme scheme : kAllSchemes) {
        for (Level level : kAllLevels) {
            const BusSolution sol =
                evaluateBus(scheme, paramsAtLevel(level), 12);
            EXPECT_NEAR(1.0 / sol.processorUtilization,
                        sol.cpu + sol.waiting, 1e-9)
                << schemeName(scheme);
            EXPECT_NEAR(sol.processingPower,
                        12.0 * sol.processorUtilization, 1e-9);
        }
    }
}

TEST(ConsistencyTest, SaturationBoundsAreNeverViolatedOnTheGrid)
{
    for (Scheme scheme : kAllSchemes) {
        for (Level level : kAllLevels) {
            const WorkloadParams params = paramsAtLevel(level);
            const PerInstructionCost cost = perInstructionCost(
                operationFrequencies(scheme, params), BusCostModel());
            for (unsigned n : {1u, 4u, 16u, 64u}) {
                const double p = power(scheme, params, n);
                EXPECT_LE(p, busSaturationPower(cost) + 1e-9)
                    << schemeName(scheme);
                EXPECT_LE(p, n / cost.cpu + 1e-9) << schemeName(scheme);
            }
        }
    }
}

} // namespace
} // namespace swcc
