/**
 * @file
 * Cross-cutting property tests of the analytical model: monotonicity
 * and scaling laws that must hold across the whole Table 7 parameter
 * space, for every scheme.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/scheme_evaluator.hh"

namespace swcc
{
namespace
{

double
power(Scheme scheme, const WorkloadParams &params, unsigned cpus = 16)
{
    return evaluateBus(scheme, params, cpus).processingPower;
}

/**
 * Direction of a parameter's effect: increasing any pure-cost
 * parameter can never *increase* processing power, for any scheme it
 * affects. (wr is excluded: it trades read-throughs for cheaper
 * write-throughs in No-Cache.)
 */
class CostMonotonicityTest
    : public ::testing::TestWithParam<std::tuple<Scheme, ParamId>>
{
};

TEST_P(CostMonotonicityTest, MorePressureNeverHelps)
{
    const auto [scheme, param] = GetParam();
    WorkloadParams params = middleParams();
    setParam(params, param, paramLevelValue(param, Level::Low));

    double previous = power(scheme, params);
    for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
        const double low = paramLevelValue(param, Level::Low);
        const double high = paramLevelValue(param, Level::High);
        setParam(params, param, low + fraction * (high - low));
        const double current = power(scheme, params);
        EXPECT_LE(current, previous + 1e-9)
            << schemeName(scheme) << " " << paramName(param) << " at "
            << fraction;
        previous = current;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemeParams, CostMonotonicityTest,
    ::testing::Values(
        std::tuple{Scheme::Base, ParamId::Msdat},
        std::tuple{Scheme::Base, ParamId::Mains},
        std::tuple{Scheme::Base, ParamId::Md},
        std::tuple{Scheme::Base, ParamId::Ls},
        std::tuple{Scheme::NoCache, ParamId::Msdat},
        std::tuple{Scheme::NoCache, ParamId::Shd},
        std::tuple{Scheme::NoCache, ParamId::Ls},
        std::tuple{Scheme::SoftwareFlush, ParamId::Msdat},
        std::tuple{Scheme::SoftwareFlush, ParamId::Shd},
        std::tuple{Scheme::SoftwareFlush, ParamId::InvApl},
        std::tuple{Scheme::SoftwareFlush, ParamId::Mdshd},
        std::tuple{Scheme::SoftwareFlush, ParamId::Ls},
        std::tuple{Scheme::Dragon, ParamId::Msdat},
        std::tuple{Scheme::Dragon, ParamId::Shd},
        std::tuple{Scheme::Dragon, ParamId::Nshd},
        std::tuple{Scheme::Dragon, ParamId::Opres}));

/** Base dominates every scheme at every Table 7 corner. */
class DominanceTest : public ::testing::TestWithParam<Level>
{
};

TEST_P(DominanceTest, BaseIsAnUpperBoundEverywhere)
{
    const WorkloadParams params = paramsAtLevel(GetParam());
    const double base = power(Scheme::Base, params);
    for (Scheme scheme : {Scheme::NoCache, Scheme::SoftwareFlush,
                          Scheme::Dragon}) {
        EXPECT_LE(power(scheme, params), base + 1e-9)
            << schemeName(scheme) << " at " << levelName(GetParam());
    }
}

TEST_P(DominanceTest, BusAndNetworkAgreeOnSchemeOrdering)
{
    // At 256 processors the software-scheme ranking (Base >= SF >=
    // NoCache at a medium apl) holds on both media. At apl = 1
    // Software-Flush legitimately falls below No-Cache (paper Fig. 7),
    // so apl stays pinned at its middle value here.
    WorkloadParams params = paramsAtLevel(GetParam());
    setParam(params, ParamId::InvApl,
             paramLevelValue(ParamId::InvApl, Level::Middle));
    params.nshd = 1.0; // High nshd only affects Dragon, not used here.
    const auto net = [&params](Scheme scheme) {
        return evaluateNetwork(scheme, params, 8).processingPower;
    };
    EXPECT_GE(net(Scheme::Base), net(Scheme::SoftwareFlush) - 1e-9);
    EXPECT_GE(net(Scheme::SoftwareFlush), net(Scheme::NoCache) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Levels, DominanceTest,
                         ::testing::ValuesIn(kAllLevels));

TEST(ScalingTest, PowerPerProcessorNeverImproves)
{
    // Marginal utility of processors is non-increasing on a bus.
    const WorkloadParams params = middleParams();
    for (Scheme scheme : kAllSchemes) {
        double prev_util = 1.0;
        for (unsigned n = 1; n <= 32; n *= 2) {
            const double util =
                evaluateBus(scheme, params, n).processorUtilization;
            EXPECT_LE(util, prev_util + 1e-12) << schemeName(scheme);
            prev_util = util;
        }
    }
}

TEST(ScalingTest, FrequenciesAreLinearInLsAtFixedMix)
{
    // Every ls-proportional term doubles when ls doubles (Base has
    // only the data-miss term plus the constant mains).
    WorkloadParams params = middleParams();
    params.ls = 0.15;
    const FrequencyVector f1 =
        operationFrequencies(Scheme::NoCache, params);
    params.ls = 0.30;
    const FrequencyVector f2 =
        operationFrequencies(Scheme::NoCache, params);
    EXPECT_NEAR(f2.of(Operation::ReadThrough),
                2.0 * f1.of(Operation::ReadThrough), 1e-12);
    EXPECT_NEAR(f2.of(Operation::WriteThrough),
                2.0 * f1.of(Operation::WriteThrough), 1e-12);
}

TEST(ScalingTest, ExecutionTimeDecomposesAsCpuPlusWaiting)
{
    for (Scheme scheme : kAllSchemes) {
        for (Level level : kAllLevels) {
            const BusSolution sol =
                evaluateBus(scheme, paramsAtLevel(level), 12);
            EXPECT_NEAR(1.0 / sol.processorUtilization,
                        sol.cpu + sol.waiting, 1e-9)
                << schemeName(scheme);
            EXPECT_NEAR(sol.processingPower,
                        12.0 * sol.processorUtilization, 1e-9);
        }
    }
}

TEST(ConsistencyTest, SaturationBoundsAreNeverViolatedOnTheGrid)
{
    for (Scheme scheme : kAllSchemes) {
        for (Level level : kAllLevels) {
            const WorkloadParams params = paramsAtLevel(level);
            const PerInstructionCost cost = perInstructionCost(
                operationFrequencies(scheme, params), BusCostModel());
            for (unsigned n : {1u, 4u, 16u, 64u}) {
                const double p = power(scheme, params, n);
                EXPECT_LE(p, busSaturationPower(cost) + 1e-9)
                    << schemeName(scheme);
                EXPECT_LE(p, n / cost.cpu + 1e-9) << schemeName(scheme);
            }
        }
    }
}

} // namespace
} // namespace swcc
