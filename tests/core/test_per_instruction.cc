/**
 * @file
 * Unit tests for per-instruction cost aggregation (Equations 1-2).
 */

#include <gtest/gtest.h>

#include "core/per_instruction.hh"

namespace swcc
{
namespace
{

TEST(PerInstructionTest, ZeroActivityCostsOneCpuCycle)
{
    WorkloadParams p = middleParams();
    p.msdat = 0.0;
    p.mains = 0.0;
    p.ls = 0.0;
    const BusCostModel costs;
    const PerInstructionCost cost = perInstructionCost(
        operationFrequencies(Scheme::Base, p), costs);
    EXPECT_DOUBLE_EQ(cost.cpu, 1.0);
    EXPECT_DOUBLE_EQ(cost.channel, 0.0);
    EXPECT_DOUBLE_EQ(cost.thinkTime(), 1.0);
}

TEST(PerInstructionTest, BaseHandComputed)
{
    WorkloadParams p = middleParams();
    p.ls = 0.3;
    p.msdat = 0.01;
    p.mains = 0.002;
    p.md = 0.2;
    const BusCostModel costs;
    const PerInstructionCost cost = perInstructionCost(
        operationFrequencies(Scheme::Base, p), costs);

    const double miss = 0.3 * 0.01 + 0.002; // 0.005
    const double expected_cpu = 1.0 + miss * 0.8 * 10 + miss * 0.2 * 14;
    const double expected_bus = miss * 0.8 * 7 + miss * 0.2 * 11;
    EXPECT_NEAR(cost.cpu, expected_cpu, 1e-12);
    EXPECT_NEAR(cost.channel, expected_bus, 1e-12);
}

TEST(PerInstructionTest, NoCacheHandComputed)
{
    WorkloadParams p = middleParams();
    p.ls = 0.4;
    p.shd = 0.5;
    p.wr = 0.25;
    p.msdat = 0.0;
    p.mains = 0.0;
    const BusCostModel costs;
    const PerInstructionCost cost = perInstructionCost(
        operationFrequencies(Scheme::NoCache, p), costs);

    // 0.4*0.5 = 0.2 shared refs: 0.15 read-through (5/4), 0.05
    // write-through (2/1).
    EXPECT_NEAR(cost.cpu, 1.0 + 0.15 * 5 + 0.05 * 2, 1e-12);
    EXPECT_NEAR(cost.channel, 0.15 * 4 + 0.05 * 1, 1e-12);
}

TEST(PerInstructionTest, CpuAlwaysCoversChannel)
{
    const BusCostModel costs;
    for (Scheme scheme : kAllSchemes) {
        for (Level level : kAllLevels) {
            const PerInstructionCost cost = perInstructionCost(
                operationFrequencies(scheme, paramsAtLevel(level)),
                costs);
            EXPECT_GE(cost.cpu, 1.0) << schemeName(scheme);
            EXPECT_GE(cost.thinkTime(), 1.0) << schemeName(scheme);
            EXPECT_GE(cost.channel, 0.0) << schemeName(scheme);
        }
    }
}

TEST(PerInstructionTest, DragonOnNetworkIsRejected)
{
    const NetworkCostModel costs(4);
    const FrequencyVector freqs =
        operationFrequencies(Scheme::Dragon, middleParams());
    EXPECT_THROW(perInstructionCost(freqs, costs), std::invalid_argument);
}

TEST(PerInstructionTest, SoftwareSchemesWorkOnNetwork)
{
    const NetworkCostModel costs(4);
    for (Scheme scheme : {Scheme::Base, Scheme::NoCache,
                          Scheme::SoftwareFlush}) {
        EXPECT_NO_THROW(perInstructionCost(
            operationFrequencies(scheme, middleParams()), costs))
            << schemeName(scheme);
    }
}

TEST(PerInstructionTest, NetworkCostsGrowWithStages)
{
    const FrequencyVector freqs =
        operationFrequencies(Scheme::SoftwareFlush, middleParams());
    double prev_cpu = 0.0;
    for (unsigned stages : {1u, 2u, 4u, 8u}) {
        const NetworkCostModel costs(stages);
        const PerInstructionCost cost = perInstructionCost(freqs, costs);
        EXPECT_GT(cost.cpu, prev_cpu);
        prev_cpu = cost.cpu;
    }
}

} // namespace
} // namespace swcc
