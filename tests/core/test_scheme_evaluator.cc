/**
 * @file
 * Unit tests for the high-level evaluation API and the paper's
 * scheme-ordering claims.
 */

#include <gtest/gtest.h>

#include "core/scheme_evaluator.hh"

namespace swcc
{
namespace
{

TEST(EvaluateBusTest, BaseIsTheUpperBoundWheneverSharingExists)
{
    // Paper Section 5.1: "Base performs best as long as ls > 0".
    for (Level level : kAllLevels) {
        const WorkloadParams params = sharingScenario(level);
        const double base =
            evaluateBus(Scheme::Base, params, 8).processingPower;
        for (Scheme scheme : {Scheme::NoCache, Scheme::SoftwareFlush,
                              Scheme::Dragon}) {
            EXPECT_GE(base + 1e-9,
                      evaluateBus(scheme, params, 8).processingPower)
                << schemeName(scheme) << " at " << levelName(level);
        }
    }
}

TEST(EvaluateBusTest, DragonStaysCloseToBaseAtMediumWorkload)
{
    // Paper: "In most cases Dragon's performance is close to Base."
    const WorkloadParams params = middleParams();
    const double base =
        evaluateBus(Scheme::Base, params, 16).processingPower;
    const double dragon =
        evaluateBus(Scheme::Dragon, params, 16).processingPower;
    EXPECT_GT(dragon, 0.9 * base);
}

TEST(EvaluateBusTest, NoCacheIsMuchCostlierThanDragon)
{
    const WorkloadParams params = middleParams();
    const double dragon =
        evaluateBus(Scheme::Dragon, params, 16).processingPower;
    const double nocache =
        evaluateBus(Scheme::NoCache, params, 16).processingPower;
    EXPECT_LT(nocache, 0.6 * dragon);
}

TEST(EvaluateBusTest, SoftwareFlushSitsBetweenDragonAndNoCache)
{
    // Paper Section 5.1 with medium apl.
    const WorkloadParams params = middleParams();
    const double dragon =
        evaluateBus(Scheme::Dragon, params, 12).processingPower;
    const double swf =
        evaluateBus(Scheme::SoftwareFlush, params, 12).processingPower;
    const double nocache =
        evaluateBus(Scheme::NoCache, params, 12).processingPower;
    EXPECT_LT(swf, dragon);
    EXPECT_GT(swf, nocache);
}

TEST(EvaluateBusTest, SoftwareFlushBeatsNoCacheOnlyWithDecentApl)
{
    // Paper Figure 7: at apl = 1 Software-Flush is the worst scheme;
    // at high apl it can beat Dragon.
    WorkloadParams params = middleParams();

    params.apl = 1.0;
    const double swf_apl1 =
        evaluateBus(Scheme::SoftwareFlush, params, 8).processingPower;
    const double nocache =
        evaluateBus(Scheme::NoCache, params, 8).processingPower;
    EXPECT_LT(swf_apl1, nocache);

    params.apl = 1e6;
    params.mdshd = 0.0;
    const double swf_high =
        evaluateBus(Scheme::SoftwareFlush, params, 8).processingPower;
    const double dragon =
        evaluateBus(Scheme::Dragon, params, 8).processingPower;
    EXPECT_GT(swf_high, dragon);
}

TEST(EvaluateBusTest, SchemesCoincideWithoutDataReferences)
{
    // Paper: "If ls = 0 the schemes are identical."
    WorkloadParams params = middleParams();
    params.ls = 0.0;
    const double base =
        evaluateBus(Scheme::Base, params, 8).processingPower;
    for (Scheme scheme : kAllSchemes) {
        EXPECT_NEAR(evaluateBus(scheme, params, 8).processingPower, base,
                    1e-9)
            << schemeName(scheme);
    }
}

TEST(EvaluateBusTest, CustomCostModelIsHonoured)
{
    BusCostModel costs;
    costs.setCost(Operation::ReadThrough, {50.0, 49.0});
    const WorkloadParams params = middleParams();
    const double slow =
        evaluateBus(Scheme::NoCache, params, 4, costs).processingPower;
    const double normal =
        evaluateBus(Scheme::NoCache, params, 4).processingPower;
    EXPECT_LT(slow, normal);
}

TEST(EvaluateNetworkTest, DragonIsRejected)
{
    EXPECT_THROW(evaluateNetwork(Scheme::Dragon, middleParams(), 4),
                 std::invalid_argument);
}

TEST(EvaluateNetworkTest, SoftwareSchemesScaleWithProcessors)
{
    // Paper Section 6.3: both software schemes scale on the network.
    for (Scheme scheme : {Scheme::SoftwareFlush, Scheme::NoCache}) {
        double prev = 0.0;
        for (unsigned stages = 1; stages <= 8; ++stages) {
            const NetworkSolution sol =
                evaluateNetwork(scheme, middleParams(), stages);
            EXPECT_GT(sol.processingPower, prev) << schemeName(scheme);
            prev = sol.processingPower;
        }
    }
}

TEST(EvaluateNetworkTest, SoftwareFlushBeatsNoCacheOnTheNetwork)
{
    // Paper: Software-Flush is clearly more efficient because of its
    // lower request rate, despite longer messages.
    const NetworkSolution swf =
        evaluateNetwork(Scheme::SoftwareFlush, middleParams(), 8);
    const NetworkSolution nc =
        evaluateNetwork(Scheme::NoCache, middleParams(), 8);
    EXPECT_GT(swf.processingPower, nc.processingPower);
}

TEST(CurveTest, BusPowerCurveHasOnePointPerProcessorCount)
{
    const auto curve =
        busPowerCurve(Scheme::Dragon, middleParams(), 16);
    ASSERT_EQ(curve.size(), 16u);
    for (unsigned i = 0; i < curve.size(); ++i) {
        EXPECT_EQ(curve[i].processors, i + 1);
    }
}

TEST(CurveTest, NetworkPowerCurveDoublesProcessors)
{
    const auto curve =
        networkPowerCurve(Scheme::Base, middleParams(), 6);
    ASSERT_EQ(curve.size(), 6u);
    for (unsigned i = 0; i < curve.size(); ++i) {
        EXPECT_EQ(curve[i].processors, 2u << i);
    }
}

} // namespace
} // namespace swcc
