/**
 * @file
 * Unit tests for the sweep utilities.
 */

#include <gtest/gtest.h>

#include "core/sweep.hh"

namespace swcc
{
namespace
{

TEST(LinspaceTest, EndpointsAndSpacing)
{
    const auto values = linspace(0.0, 1.0, 5);
    ASSERT_EQ(values.size(), 5u);
    EXPECT_DOUBLE_EQ(values.front(), 0.0);
    EXPECT_DOUBLE_EQ(values.back(), 1.0);
    EXPECT_DOUBLE_EQ(values[2], 0.5);
}

TEST(LinspaceTest, DegenerateCounts)
{
    EXPECT_TRUE(linspace(0.0, 1.0, 0).empty());
    const auto one = linspace(3.0, 9.0, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one.front(), 3.0);
}

TEST(LogspaceTest, GeometricSpacing)
{
    const auto values = logspace(1.0, 100.0, 3);
    ASSERT_EQ(values.size(), 3u);
    EXPECT_NEAR(values[0], 1.0, 1e-9);
    EXPECT_NEAR(values[1], 10.0, 1e-9);
    EXPECT_NEAR(values[2], 100.0, 1e-9);
}

TEST(LogspaceTest, RejectsNonPositiveBounds)
{
    EXPECT_THROW(logspace(0.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(logspace(1.0, -2.0, 4), std::invalid_argument);
}

TEST(SeriesTest, MaxAndFinalY)
{
    Series series;
    series.points = {{1.0, 2.0}, {2.0, 5.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(series.maxY(), 5.0);
    EXPECT_DOUBLE_EQ(series.finalY(), 4.0);
    EXPECT_DOUBLE_EQ(Series{}.maxY(), 0.0);
    EXPECT_DOUBLE_EQ(Series{}.finalY(), 0.0);
}

TEST(SeriesTest, MaxYOfAllNegativeSeriesIsTheLargestValue)
{
    // Seeding the max with 0.0 used to report 0 for delta/error series
    // whose values are all negative.
    Series series;
    series.points = {{1.0, -3.0}, {2.0, -1.5}, {3.0, -4.0}};
    EXPECT_DOUBLE_EQ(series.maxY(), -1.5);

    Series single;
    single.points = {{1.0, -7.0}};
    EXPECT_DOUBLE_EQ(single.maxY(), -7.0);
}

TEST(BusPowerSeriesTest, LabelsAndXAxis)
{
    const Series series =
        busPowerSeries(Scheme::Dragon, middleParams(), 8);
    EXPECT_EQ(series.label, "Dragon");
    ASSERT_EQ(series.points.size(), 8u);
    EXPECT_DOUBLE_EQ(series.points.front().x, 1.0);
    EXPECT_DOUBLE_EQ(series.points.back().x, 8.0);
    EXPECT_GT(series.points.back().y, series.points.front().y);
}

TEST(IdealPowerSeriesTest, IsTheDiagonal)
{
    const Series ideal = idealPowerSeries(4);
    ASSERT_EQ(ideal.points.size(), 4u);
    for (const SeriesPoint &p : ideal.points) {
        EXPECT_DOUBLE_EQ(p.x, p.y);
    }
}

TEST(AplPowerSeriesTest, PowerGrowsWithApl)
{
    const std::vector<double> apls = {1.0, 2.0, 4.0, 8.0, 32.0, 128.0};
    const Series series = aplPowerSeries(Scheme::SoftwareFlush,
                                         middleParams(), apls, 8);
    ASSERT_EQ(series.points.size(), apls.size());
    for (std::size_t i = 1; i < series.points.size(); ++i) {
        EXPECT_GT(series.points[i].y, series.points[i - 1].y);
    }
}

TEST(NetworkPowerSeriesTest, ScalesThroughStages)
{
    const Series series =
        networkPowerSeries(Scheme::SoftwareFlush, middleParams(), 6);
    ASSERT_EQ(series.points.size(), 6u);
    EXPECT_DOUBLE_EQ(series.points.front().x, 2.0);
    EXPECT_DOUBLE_EQ(series.points.back().x, 64.0);
}

TEST(NetworkUtilizationSeriesTest, FallsWithRequestRate)
{
    const Series series = networkUtilizationSeries(
        8, 4.0, {0.001, 0.005, 0.01, 0.02, 0.04});
    ASSERT_EQ(series.points.size(), 5u);
    for (std::size_t i = 1; i < series.points.size(); ++i) {
        EXPECT_LT(series.points[i].y, series.points[i - 1].y);
    }
}

TEST(NetworkUtilizationSeriesTest, SkipsNonPositiveRates)
{
    const Series series =
        networkUtilizationSeries(4, 4.0, {0.0, 0.01});
    EXPECT_EQ(series.points.size(), 1u);
}

} // namespace
} // namespace swcc
