/**
 * @file
 * Unit tests for the per-operation cost breakdown.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/breakdown.hh"
#include "core/per_instruction.hh"

namespace swcc
{
namespace
{

TEST(BreakdownTest, TotalsMatchPerInstructionCost)
{
    const BusCostModel costs;
    for (Scheme scheme : kAllSchemes) {
        const FrequencyVector freqs =
            operationFrequencies(scheme, middleParams());
        const CostBreakdown breakdown = costBreakdown(freqs, costs);
        const PerInstructionCost cost = perInstructionCost(freqs, costs);
        EXPECT_NEAR(breakdown.totalCpu, cost.cpu, 1e-12)
            << schemeName(scheme);
        EXPECT_NEAR(breakdown.totalChannel, cost.channel, 1e-12)
            << schemeName(scheme);
    }
}

TEST(BreakdownTest, SharesSumToOne)
{
    const CostBreakdown breakdown =
        costBreakdown(Scheme::SoftwareFlush, middleParams());
    double cpu_share = 0.0;
    double channel_share = 0.0;
    for (const CostContribution &item : breakdown.items) {
        cpu_share += item.cpuShare;
        channel_share += item.channelShare;
    }
    EXPECT_NEAR(cpu_share, 1.0, 1e-12);
    EXPECT_NEAR(channel_share, 1.0, 1e-12);
}

TEST(BreakdownTest, SortedByCpuCycles)
{
    const CostBreakdown breakdown =
        costBreakdown(Scheme::Dragon, middleParams());
    for (std::size_t i = 1; i < breakdown.items.size(); ++i) {
        EXPECT_GE(breakdown.items[i - 1].cpuCycles,
                  breakdown.items[i].cpuCycles);
    }
}

TEST(BreakdownTest, InstructionExecutionDominatesAtLowOverhead)
{
    // With medium parameters, useful execution is still the largest
    // single CPU item for every scheme.
    for (Scheme scheme : kAllSchemes) {
        const CostBreakdown breakdown =
            costBreakdown(scheme, middleParams());
        EXPECT_EQ(breakdown.items.front().op, Operation::InstrExec)
            << schemeName(scheme);
        EXPECT_GT(breakdown.usefulShare(), 0.5) << schemeName(scheme);
    }
}

TEST(BreakdownTest, NoCacheBusGoesToReadThroughs)
{
    const CostBreakdown breakdown =
        costBreakdown(Scheme::NoCache, middleParams());
    // Read-throughs dominate the shared-channel demand (4 cycles per
    // read, three reads per write at wr = 0.25).
    const CostContribution reads =
        breakdown.of(Operation::ReadThrough);
    EXPECT_GT(reads.channelShare, 0.5);
}

TEST(BreakdownTest, OfReturnsZerosForAbsentOperations)
{
    const CostBreakdown breakdown =
        costBreakdown(Scheme::Base, middleParams());
    const CostContribution flush =
        breakdown.of(Operation::DirtyFlush);
    EXPECT_DOUBLE_EQ(flush.frequency, 0.0);
    EXPECT_DOUBLE_EQ(flush.cpuCycles, 0.0);
}

TEST(BreakdownTest, PrintsAnAlignedTable)
{
    const CostBreakdown breakdown =
        costBreakdown(Scheme::SoftwareFlush, middleParams());
    std::ostringstream os;
    printBreakdown(breakdown, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("Instruction execution"), std::string::npos);
    EXPECT_NE(text.find("total (c, b)"), std::string::npos);
    EXPECT_NE(text.find("Clean flush"), std::string::npos);
}

TEST(BreakdownTest, RejectsUnsupportedOperations)
{
    const NetworkCostModel costs(4);
    const FrequencyVector freqs =
        operationFrequencies(Scheme::Dragon, middleParams());
    EXPECT_THROW(costBreakdown(freqs, costs), std::invalid_argument);
}

} // namespace
} // namespace swcc
