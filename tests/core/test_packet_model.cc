/**
 * @file
 * Unit tests for the buffered packet-switched network model.
 */

#include <gtest/gtest.h>

#include "core/packet_network_model.hh"
#include "core/scheme_evaluator.hh"

namespace swcc
{
namespace
{

TEST(KruskalSnirTest, ClosedForm)
{
    EXPECT_DOUBLE_EQ(kruskalSnirWait(0.0), 0.0);
    EXPECT_DOUBLE_EQ(kruskalSnirWait(0.5), 0.25);
    EXPECT_DOUBLE_EQ(kruskalSnirWait(0.8), 1.0);
    EXPECT_THROW(kruskalSnirWait(1.0), std::invalid_argument);
    EXPECT_THROW(kruskalSnirWait(-0.1), std::invalid_argument);
}

TEST(PacketTrafficModelTest, DefaultShapesMatchTable9Payloads)
{
    const PacketTrafficModel traffic;
    EXPECT_DOUBLE_EQ(traffic.shape(Operation::CleanMissMem).requestWords,
                     1.0);
    EXPECT_DOUBLE_EQ(
        traffic.shape(Operation::CleanMissMem).responseWords, 4.0);
    EXPECT_DOUBLE_EQ(traffic.shape(Operation::DirtyMissMem).requestWords,
                     6.0);
    EXPECT_DOUBLE_EQ(traffic.shape(Operation::ReadThrough).responseWords,
                     1.0);
    EXPECT_DOUBLE_EQ(
        traffic.shape(Operation::WriteThrough).responseWords, 0.0);
    EXPECT_DOUBLE_EQ(traffic.shape(Operation::DirtyFlush).requestWords,
                     5.0);
}

TEST(PacketTrafficModelTest, SnoopingOperationsUnsupported)
{
    const PacketTrafficModel traffic;
    for (Operation op : {Operation::WriteBroadcast,
                         Operation::CleanMissCache,
                         Operation::DirtyMissCache,
                         Operation::CycleSteal}) {
        EXPECT_FALSE(traffic.supports(op)) << operationName(op);
        EXPECT_THROW(traffic.shape(op), std::invalid_argument);
    }
}

TEST(PacketTrafficModelTest, SetShapeOverrides)
{
    PacketTrafficModel traffic;
    traffic.setShape(Operation::ReadThrough, {2.0, 2.0});
    EXPECT_DOUBLE_EQ(traffic.shape(Operation::ReadThrough).requestWords,
                     2.0);
    EXPECT_THROW(traffic.setShape(Operation::ReadThrough, {-1.0, 0.0}),
                 std::invalid_argument);
}

TEST(RawPacketPointTest, UncontendedLatencyIsClosedForm)
{
    // Huge think time: latency -> 2n + mem + (req-1) + (resp-1).
    const RawPacketSolution sol =
        solveRawPacketPoint(1e7, 1.0, 4.0, 6, 2.0);
    EXPECT_NEAR(sol.latency, 12.0 + 2.0 + 0.0 + 3.0, 1e-3);
    EXPECT_NEAR(sol.computeFraction, 1.0, 1e-4);
}

TEST(RawPacketPointTest, PostedTransactionsOnlySerialise)
{
    const RawPacketSolution sol =
        solveRawPacketPoint(50.0, 5.0, 0.0, 6, 2.0);
    EXPECT_NEAR(sol.latency, 5.0, 1e-9);
    EXPECT_NEAR(sol.cyclesPerTransaction, 55.0, 1e-9);
}

TEST(RawPacketPointTest, SatisfiesTheFixedPointEquation)
{
    const RawPacketSolution sol =
        solveRawPacketPoint(20.0, 1.0, 4.0, 8, 2.0);
    const double wait = kruskalSnirWait(sol.linkLoad);
    const double latency = 16.0 * (1.0 + wait) + 2.0 + 3.0;
    EXPECT_NEAR(sol.cyclesPerTransaction, 20.0 + latency, 1e-6);
    EXPECT_LT(sol.linkLoad, 1.0);
}

TEST(RawPacketPointTest, LoadRisesAsThinkFalls)
{
    double prev_load = 0.0;
    for (double think : {200.0, 50.0, 20.0, 10.0, 5.0}) {
        const RawPacketSolution sol =
            solveRawPacketPoint(think, 1.0, 4.0, 6);
        EXPECT_GT(sol.linkLoad, prev_load);
        EXPECT_LT(sol.linkLoad, 1.0);
        prev_load = sol.linkLoad;
    }
}

TEST(RawPacketPointTest, NeverSaturatesPastUnitLoad)
{
    // Even with zero think time the fixed point stays stable: the
    // sources self-throttle on latency.
    const RawPacketSolution sol =
        solveRawPacketPoint(0.0, 1.0, 8.0, 4);
    EXPECT_LT(sol.linkLoad, 1.0);
    // The latency floor (2n + mem + words - 1 = 17 cycles for 8
    // return words) caps the load near 8/17.
    EXPECT_GT(sol.linkLoad, 0.40);
    EXPECT_NEAR(sol.computeFraction, 0.0, 1e-12);
}

TEST(RawPacketPointTest, RejectsBadArguments)
{
    EXPECT_THROW(solveRawPacketPoint(10.0, 0.5, 4.0, 4),
                 std::invalid_argument);
    EXPECT_THROW(solveRawPacketPoint(-1.0, 1.0, 4.0, 4),
                 std::invalid_argument);
    EXPECT_THROW(solveRawPacketPoint(10.0, 1.0, -1.0, 4),
                 std::invalid_argument);
    EXPECT_THROW(solveRawPacketPoint(10.0, 1.0, 4.0, 0),
                 std::invalid_argument);
}

TEST(PacketSchemeTest, RejectsDragonAndZeroStages)
{
    EXPECT_THROW(solvePacketNetwork(Scheme::Dragon, middleParams(), 4),
                 std::invalid_argument);
    EXPECT_THROW(solvePacketNetwork(Scheme::Base, middleParams(), 0),
                 std::invalid_argument);
}

TEST(PacketSchemeTest, NoTrafficDegeneratesToLocalCpu)
{
    WorkloadParams params = middleParams();
    params.ls = 0.0;
    params.msdat = 0.0;
    params.mains = 0.0;
    const PacketNetworkSolution sol =
        solvePacketNetwork(Scheme::Base, params, 6);
    EXPECT_DOUBLE_EQ(sol.cyclesPerInstruction, 1.0);
    EXPECT_DOUBLE_EQ(sol.processingPower, 64.0);
}

TEST(PacketSchemeTest, PacketSwitchingFavoursNoCacheMost)
{
    // The paper's conjecture: "Use of packet-switching would be more
    // favorable to No-Cache." Measure the packet/circuit speedup per
    // scheme; No-Cache should gain the most, Base the least.
    const WorkloadParams params = middleParams();
    auto speedup = [&params](Scheme scheme) {
        const double circuit =
            evaluateNetwork(scheme, params, 8).processingPower;
        const double packet =
            solvePacketNetwork(scheme, params, 8).processingPower;
        return packet / circuit;
    };
    const double base = speedup(Scheme::Base);
    const double swf = speedup(Scheme::SoftwareFlush);
    const double nocache = speedup(Scheme::NoCache);
    EXPECT_GT(nocache, swf);
    EXPECT_GT(swf, base);
    EXPECT_GT(nocache, 1.5);
}

TEST(PacketSchemeTest, SoftwareFlushStillBeatsNoCache)
{
    const WorkloadParams params = middleParams();
    EXPECT_GT(
        solvePacketNetwork(Scheme::SoftwareFlush, params, 8)
            .processingPower,
        solvePacketNetwork(Scheme::NoCache, params, 8).processingPower);
}

TEST(PacketSchemeTest, SolutionFieldsAreConsistent)
{
    const PacketNetworkSolution sol =
        solvePacketNetwork(Scheme::SoftwareFlush, middleParams(), 6);
    EXPECT_EQ(sol.processors, 64u);
    EXPECT_NEAR(sol.cyclesPerInstruction,
                sol.cpuPerInstruction + sol.networkStall, 1e-9);
    EXPECT_NEAR(sol.linkLoad,
                sol.wordsPerInstruction / sol.cyclesPerInstruction,
                1e-9);
    EXPECT_NEAR(sol.processingPower,
                64.0 * sol.processorUtilization, 1e-9);
    EXPECT_GE(sol.networkStall, 0.0);
}

} // namespace
} // namespace swcc
