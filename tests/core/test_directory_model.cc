/**
 * @file
 * Unit tests for the directory-scheme analytical model extension.
 */

#include <gtest/gtest.h>

#include "core/directory_model.hh"
#include "core/scheme_evaluator.hh"

namespace swcc
{
namespace
{

TEST(DirectoryModelTest, ConfigValidation)
{
    DirectoryModelConfig config;
    config.rerefFraction = 1.5;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    EXPECT_THROW(directoryFrequencies(middleParams(), config),
                 std::invalid_argument);
}

TEST(DirectoryModelTest, NoSharingCollapsesToBase)
{
    WorkloadParams params = middleParams();
    params.shd = 0.0;
    const FrequencyVector dir = directoryFrequencies(params);
    const FrequencyVector base =
        operationFrequencies(Scheme::Base, params);
    for (Operation op : kAllOperations) {
        EXPECT_NEAR(dir.of(op), base.of(op), 1e-12)
            << operationName(op);
    }
}

TEST(DirectoryModelTest, FrequenciesDecompose)
{
    const WorkloadParams p = middleParams();
    DirectoryModelConfig config;
    config.rerefFraction = 0.5;
    const FrequencyVector f = directoryFrequencies(p, config);

    const double ownership = p.ls * p.shd * p.wr * p.opres;
    EXPECT_DOUBLE_EQ(f.of(Operation::WriteThrough), ownership);

    const double coherence = ownership * p.nshd * 0.5;
    const double miss = p.ls * p.msdat + p.mains + coherence;
    EXPECT_NEAR(f.totalMisses(), miss, 1e-12);

    const double shared_miss = p.ls * p.msdat * p.shd + coherence;
    EXPECT_NEAR(f.of(Operation::ReadThrough),
                shared_miss * (1.0 - p.oclean), 1e-12);
}

TEST(DirectoryModelTest, RerefFractionAddsCoherenceMisses)
{
    const WorkloadParams params = middleParams();
    DirectoryModelConfig optimistic;
    optimistic.rerefFraction = 0.0;
    DirectoryModelConfig pessimistic;
    pessimistic.rerefFraction = 1.0;
    EXPECT_LT(directoryFrequencies(params, optimistic).totalMisses(),
              directoryFrequencies(params, pessimistic).totalMisses());
}

TEST(DirectoryModelTest, BeatsNoCacheOnTheNetwork)
{
    // Caching shared data with directory coherence should easily beat
    // not caching it at all.
    const WorkloadParams params = middleParams();
    EXPECT_GT(evaluateDirectoryNetwork(params, 8).processingPower,
              evaluateNetwork(Scheme::NoCache, params, 8)
                  .processingPower);
}

TEST(DirectoryModelTest, LowRangeSoftwareFlushApproximatesDirectory)
{
    // Paper Section 6.3: "The performance of the Software-Flush scheme
    // for the low range approximates the performance of hardware-based
    // directory schemes."
    const WorkloadParams params = paramsAtLevel(Level::Low);
    const double swf =
        evaluateNetwork(Scheme::SoftwareFlush, params, 8)
            .processingPower;
    const double directory =
        evaluateDirectoryNetwork(params, 8).processingPower;
    EXPECT_NEAR(swf, directory, 0.1 * directory);
}

TEST(DirectoryModelTest, DirectoryBeatsSoftwareFlushAtLowApl)
{
    // Software-Flush lives and dies by apl; the directory scheme does
    // not depend on it at all. At apl = 2 (the ping-pong floor) the
    // flush+refetch traffic sinks Software-Flush below the directory.
    WorkloadParams params = middleParams();
    params.apl = 2.0;
    EXPECT_GT(evaluateDirectoryNetwork(params, 8).processingPower,
              evaluateNetwork(Scheme::SoftwareFlush, params, 8)
                  .processingPower);
}

TEST(DirectoryModelTest, DirectoryIsInsensitiveToApl)
{
    WorkloadParams a = middleParams();
    WorkloadParams b = middleParams();
    a.apl = 1.0;
    b.apl = 1000.0;
    EXPECT_DOUBLE_EQ(evaluateDirectoryNetwork(a, 8).processingPower,
                     evaluateDirectoryNetwork(b, 8).processingPower);
}

TEST(DirectoryModelTest, SitsBetweenNoCacheAndBase)
{
    const WorkloadParams params = middleParams();
    const double power =
        evaluateDirectoryNetwork(params, 8).processingPower;
    EXPECT_GT(power,
              evaluateNetwork(Scheme::NoCache, params, 8)
                  .processingPower);
    EXPECT_LT(power,
              evaluateNetwork(Scheme::Base, params, 8).processingPower);
}

TEST(DirectoryModelTest, ScalesWithProcessors)
{
    const WorkloadParams params = middleParams();
    double prev = 0.0;
    for (unsigned stages = 1; stages <= 9; ++stages) {
        const double power =
            evaluateDirectoryNetwork(params, stages).processingPower;
        EXPECT_GT(power, prev);
        prev = power;
    }
}

} // namespace
} // namespace swcc
