/**
 * @file
 * Bitwise-identity tests for the vector solver kernels: the batched
 * bisection sweep and the bus-curve derive pass must produce results
 * bit-for-bit identical to the scalar solvers in every gate mode
 * (SIMD on/off x warm-bracket on/off), across batch sizes straddling
 * the vector lane width and the sweep window, for degenerate inputs,
 * and under concurrent use.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/bus_model.hh"
#include "core/network_model.hh"
#include "core/simd.hh"

namespace swcc
{
namespace
{

/** Forces both solver gates for one test, restoring defaults after. */
class GateGuard
{
  public:
    GateGuard(bool simd, bool warm)
    {
        simd::setSimdEnabled(simd);
        setWarmBracketEnabled(warm);
    }
    ~GateGuard()
    {
        simd::setSimdEnabled(true);
        setWarmBracketEnabled(true);
    }
};

/** A batch of operating points exercising mixed stage counts. */
struct Batch
{
    std::vector<double> rates;
    std::vector<double> sizes;
    std::vector<unsigned> stages;

    std::size_t count() const { return rates.size(); }
};

Batch
makeBatch(std::size_t count)
{
    Batch b;
    for (std::size_t i = 0; i < count; ++i) {
        b.rates.push_back(0.005 + 0.002 * static_cast<double>(i % 29));
        b.sizes.push_back(8.0 + 0.5 * static_cast<double>(i % 13));
        b.stages.push_back(1 + static_cast<unsigned>(i % 13));
    }
    return b;
}

std::vector<double>
solveBatch(const Batch &b, bool simd, bool warm)
{
    const GateGuard guard(simd, warm);
    std::vector<double> out(b.count());
    solveComputeFractionBatch(b.rates.data(), b.sizes.data(),
                              b.stages.data(), b.count(), out.data());
    return out;
}

/** Bit-level equality: distinguishes -0.0/+0.0 and compares NaNs. */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectSameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(sameBits(a[i], b[i]))
            << "cell " << i << ": " << a[i] << " vs " << b[i];
    }
}

TEST(SimdTest, DispatchReportsAConsistentIsa)
{
    const simd::Isa isa = simd::activeIsa();
    EXPECT_EQ(simd::laneWidth(), simd::laneWidth(isa));
    EXPECT_NE(simd::isaName(isa), nullptr);
    switch (isa) {
    case simd::Isa::Scalar:
        EXPECT_EQ(simd::laneWidth(isa), 1u);
        break;
    case simd::Isa::Neon:
        EXPECT_EQ(simd::laneWidth(isa), 2u);
        break;
    case simd::Isa::Avx2:
        EXPECT_EQ(simd::laneWidth(isa), 4u);
        break;
    }
}

TEST(SimdTest, SetterForcesScalarDispatch)
{
    simd::setSimdEnabled(false);
    EXPECT_EQ(simd::activeIsa(), simd::Isa::Scalar);
    EXPECT_FALSE(simd::simdEnabled());
    simd::setSimdEnabled(true);
    // With the gate open the ISA is whatever the CPU supports; the
    // call must simply not be stuck at Scalar on vector hardware.
    EXPECT_EQ(simd::simdEnabled(),
              simd::activeIsa() != simd::Isa::Scalar);
}

TEST(SimdTest, BatchMatchesScalarSolverAcrossLaneBoundaries)
{
    // Sizes straddling the 4-lane groups and the 16-lane window.
    for (std::size_t count :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
          std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{15},
          std::size_t{16}, std::size_t{17}, std::size_t{31},
          std::size_t{33}, std::size_t{40}}) {
        const Batch b = makeBatch(count);
        const std::vector<double> vec = solveBatch(b, true, true);
        const GateGuard guard(false, false);
        for (std::size_t i = 0; i < count; ++i) {
            const double ref =
                solveComputeFraction(b.rates[i], b.sizes[i], b.stages[i]);
            EXPECT_TRUE(sameBits(vec[i], ref))
                << "count " << count << " cell " << i;
        }
    }
}

TEST(SimdTest, AllGateModesAgreeBitwise)
{
    for (std::size_t count : {std::size_t{6}, std::size_t{19},
                              std::size_t{48}}) {
        const Batch b = makeBatch(count);
        const std::vector<double> base = solveBatch(b, false, false);
        expectSameBits(solveBatch(b, true, false), base);
        expectSameBits(solveBatch(b, false, true), base);
        expectSameBits(solveBatch(b, true, true), base);
    }
}

TEST(SimdTest, UniformStageBatchesTakeTheFastPathIdentically)
{
    // All cells at one machine size: every 4-lane group is uniform,
    // exercising the no-mask kernel path.
    for (unsigned stages : {1u, 4u, 8u, 12u}) {
        Batch b = makeBatch(24);
        for (auto &s : b.stages) {
            s = stages;
        }
        const std::vector<double> base = solveBatch(b, false, false);
        expectSameBits(solveBatch(b, true, true), base);
    }
}

TEST(SimdTest, DegenerateBracketsAgreeBitwise)
{
    // Extreme demands drive the fixed point against the bracket ends:
    // tiny demand pushes U toward 1, huge demand toward 0.
    Batch b;
    for (double rate : {1e-12, 1e-6, 0.02, 0.5, 1.0, 1e6}) {
        for (double size : {1e-9, 1.0, 12.0, 1e9}) {
            b.rates.push_back(rate);
            b.sizes.push_back(size);
            b.stages.push_back(
                1 + static_cast<unsigned>(b.rates.size() % 12));
        }
    }
    const std::vector<double> base = solveBatch(b, false, false);
    expectSameBits(solveBatch(b, true, false), base);
    expectSameBits(solveBatch(b, true, true), base);
}

TEST(SimdTest, NanDemandConvergesIdenticallyInEveryMode)
{
    // A NaN rate passes the <= 0 validation (the comparison is false)
    // and every residual comparison routes to the else-branch, so the
    // bisection deterministically collapses to the low end. The vector
    // kernels' ordered-quiet compares must reproduce that exactly.
    Batch b = makeBatch(9);
    b.rates[3] = std::numeric_limits<double>::quiet_NaN();
    b.rates[7] = std::numeric_limits<double>::quiet_NaN();
    const std::vector<double> base = solveBatch(b, false, false);
    expectSameBits(solveBatch(b, true, false), base);
    expectSameBits(solveBatch(b, true, true), base);
    const GateGuard guard(false, false);
    EXPECT_TRUE(sameBits(
        base[3], solveComputeFraction(b.rates[3], b.sizes[3], b.stages[3])));
}

TEST(SimdTest, InvalidCellsThrowInEveryMode)
{
    Batch b = makeBatch(5);
    b.rates[2] = 0.0;
    for (const bool simd : {false, true}) {
        EXPECT_THROW(solveBatch(b, simd, true), std::invalid_argument);
    }
    Batch c = makeBatch(5);
    c.stages[4] = 0;
    for (const bool simd : {false, true}) {
        EXPECT_THROW(solveBatch(c, simd, true), std::invalid_argument);
    }
}

TEST(SimdTest, BusCurveMatchesScalarAcrossLaneBoundaries)
{
    const PerInstructionCost cost{4.0, 0.75};
    for (unsigned max : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 32u, 33u,
                         63u, 64u, 65u, 256u}) {
        simd::setSimdEnabled(false);
        const std::vector<BusSolution> scalar = solveBusCurve(cost, max);
        simd::setSimdEnabled(true);
        const std::vector<BusSolution> vec = solveBusCurve(cost, max);
        ASSERT_EQ(scalar.size(), vec.size());
        for (std::size_t i = 0; i < scalar.size(); ++i) {
            EXPECT_TRUE(sameBits(scalar[i].waiting, vec[i].waiting));
            EXPECT_TRUE(
                sameBits(scalar[i].busUtilization, vec[i].busUtilization));
            EXPECT_TRUE(sameBits(scalar[i].processorUtilization,
                                 vec[i].processorUtilization));
            EXPECT_TRUE(
                sameBits(scalar[i].processingPower, vec[i].processingPower));
            EXPECT_TRUE(
                sameBits(scalar[i].busQueueLength, vec[i].busQueueLength));
        }
    }
}

TEST(ParallelSimdTest, ConcurrentBatchesStayBitIdentical)
{
    // Several threads hammer the batched solver while the gates stay
    // fixed; every thread must reproduce the single-threaded result
    // bit for bit (the sweep has no shared mutable state beyond the
    // observability counters).
    const Batch b = makeBatch(37);
    const std::vector<double> expected = solveBatch(b, true, true);
    const GateGuard guard(true, true);
    constexpr unsigned kThreads = 8;
    constexpr unsigned kRounds = 25;
    std::vector<int> mismatches(kThreads, 0);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t]() {
            std::vector<double> out(b.count());
            for (unsigned round = 0; round < kRounds; ++round) {
                solveComputeFractionBatch(b.rates.data(), b.sizes.data(),
                                          b.stages.data(), b.count(),
                                          out.data());
                for (std::size_t i = 0; i < out.size(); ++i) {
                    if (!sameBits(out[i], expected[i])) {
                        ++mismatches[t];
                    }
                }
            }
        });
    }
    for (auto &w : workers) {
        w.join();
    }
    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(mismatches[t], 0) << "thread " << t;
    }
}

} // namespace
} // namespace swcc
