/**
 * @file
 * Tests for the solver memo cache and the batched curve kernels:
 * cold-vs-warm bitwise identity, curve-vs-per-point bitwise identity,
 * race-free concurrent insertion (the suite name starts with
 * "Parallel" so the tsan preset picks it up), the disable gate, and
 * the fault-injection bypass.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/bus_model.hh"
#include "core/campaign/faults.hh"
#include "core/network_model.hh"
#include "core/per_instruction.hh"
#include "core/scheme_evaluator.hh"
#include "core/solver_cache.hh"
#include "core/workload.hh"

namespace swcc
{
namespace
{

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectIdentical(const BusSolution &a, const BusSolution &b)
{
    EXPECT_EQ(a.processors, b.processors);
    EXPECT_TRUE(sameBits(a.cpu, b.cpu));
    EXPECT_TRUE(sameBits(a.bus, b.bus));
    EXPECT_TRUE(sameBits(a.waiting, b.waiting));
    EXPECT_TRUE(sameBits(a.busUtilization, b.busUtilization));
    EXPECT_TRUE(sameBits(a.busQueueLength, b.busQueueLength));
    EXPECT_TRUE(
        sameBits(a.processorUtilization, b.processorUtilization));
    EXPECT_TRUE(sameBits(a.processingPower, b.processingPower));
}

void
expectIdentical(const NetworkSolution &a, const NetworkSolution &b)
{
    EXPECT_EQ(a.stages, b.stages);
    EXPECT_EQ(a.processors, b.processors);
    EXPECT_TRUE(sameBits(a.cpu, b.cpu));
    EXPECT_TRUE(sameBits(a.network, b.network));
    EXPECT_TRUE(sameBits(a.transactionRate, b.transactionRate));
    EXPECT_TRUE(sameBits(a.unitRequestRate, b.unitRequestRate));
    EXPECT_TRUE(sameBits(a.computeFraction, b.computeFraction));
    EXPECT_TRUE(sameBits(a.inputLoad, b.inputLoad));
    EXPECT_TRUE(sameBits(a.acceptance, b.acceptance));
    EXPECT_TRUE(
        sameBits(a.cyclesPerInstruction, b.cyclesPerInstruction));
    EXPECT_TRUE(sameBits(a.waiting, b.waiting));
    EXPECT_TRUE(
        sameBits(a.processorUtilization, b.processorUtilization));
    EXPECT_TRUE(sameBits(a.processingPower, b.processingPower));
}

class ParallelSolverCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        campaign::clearFaults();
        setSolverCacheEnabled(true);
        clearSolverCache();
    }

    void
    TearDown() override
    {
        campaign::clearFaults();
        clearSolverCache();
        setSolverCacheEnabled(true);
    }
};

TEST_F(ParallelSolverCacheTest, ColdAndWarmResultsAreBitIdentical)
{
    const WorkloadParams params = middleParams();
    for (Scheme scheme : kAllSchemes) {
        for (unsigned n : {1u, 7u, 32u}) {
            const BusSolution cold = evaluateBus(scheme, params, n);
            const BusSolution warm = evaluateBus(scheme, params, n);
            expectIdentical(cold, warm);
        }
    }
    const NetworkSolution cold =
        evaluateNetwork(Scheme::SoftwareFlush, params, 6);
    const NetworkSolution warm =
        evaluateNetwork(Scheme::SoftwareFlush, params, 6);
    expectIdentical(cold, warm);
}

TEST_F(ParallelSolverCacheTest, WarmLookupsCountAsHits)
{
    const WorkloadParams params = middleParams();
    evaluateBus(Scheme::Dragon, params, 12);
    const SolverCacheStats before = solverCacheStats();
    evaluateBus(Scheme::Dragon, params, 12);
    const SolverCacheStats after = solverCacheStats();
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_EQ(after.misses, before.misses);
}

TEST_F(ParallelSolverCacheTest, CachedValuesMatchUncachedSolves)
{
    const WorkloadParams params = middleParams();
    // Warm the cache, then compare each warm value against a solve
    // with the cache disabled entirely.
    for (Scheme scheme : kAllSchemes) {
        evaluateBus(scheme, params, 16);
    }
    for (Scheme scheme : kAllSchemes) {
        const BusSolution warm = evaluateBus(scheme, params, 16);
        setSolverCacheEnabled(false);
        const BusSolution direct = evaluateBus(scheme, params, 16);
        setSolverCacheEnabled(true);
        expectIdentical(warm, direct);
    }
}

TEST_F(ParallelSolverCacheTest, BusCurveMatchesPerPointSolvesBitwise)
{
    const WorkloadParams params = middleParams();
    const BusCostModel costs;
    const PerInstructionCost cost = perInstructionCost(
        operationFrequencies(Scheme::SoftwareFlush, params), costs);
    const auto curve = solveBusCurve(cost, 48);
    ASSERT_EQ(curve.size(), 48u);
    for (unsigned n = 1; n <= 48; ++n) {
        expectIdentical(curve[n - 1], solveBus(cost, n));
    }
}

TEST_F(ParallelSolverCacheTest, EvaluatedBusCurveSeedsThePointMemo)
{
    const WorkloadParams params = middleParams();
    const auto curve = evaluateBusCurve(Scheme::Base, params, 24);
    const SolverCacheStats before = solverCacheStats();
    const BusSolution point = evaluateBus(Scheme::Base, params, 17);
    const SolverCacheStats after = solverCacheStats();
    EXPECT_EQ(after.hits, before.hits + 1);
    expectIdentical(curve[16], point);
}

TEST_F(ParallelSolverCacheTest,
       NetworkCurveMatchesPerPointSolvesBitwise)
{
    const WorkloadParams params = middleParams();
    // Compare computed values, not cached copies: disable the memo so
    // both sides really solve.
    setSolverCacheEnabled(false);
    const auto curve =
        evaluateNetworkCurve(Scheme::SoftwareFlush, params, 10);
    ASSERT_EQ(curve.size(), 10u);
    for (unsigned stages = 1; stages <= 10; ++stages) {
        expectIdentical(
            curve[stages - 1],
            evaluateNetwork(Scheme::SoftwareFlush, params, stages));
    }
    setSolverCacheEnabled(true);
}

TEST_F(ParallelSolverCacheTest,
       BatchedFixedPointMatchesScalarBitwise)
{
    const std::vector<double> rates = {0.01, 0.03, 0.08, 0.2};
    const std::vector<double> sizes = {4.0, 12.0, 7.5, 2.0};
    const std::vector<unsigned> stages = {2, 6, 9, 12};
    std::vector<double> batched(rates.size());
    solveComputeFractionBatch(rates.data(), sizes.data(),
                              stages.data(), rates.size(),
                              batched.data());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        EXPECT_TRUE(sameBits(
            batched[i],
            solveComputeFraction(rates[i], sizes[i], stages[i])))
            << "point " << i;
    }
}

TEST_F(ParallelSolverCacheTest, DisabledCacheComputesEveryTime)
{
    const WorkloadParams params = middleParams();
    setSolverCacheEnabled(false);
    const SolverCacheStats before = solverCacheStats();
    const BusSolution a = evaluateBus(Scheme::Base, params, 9);
    const BusSolution b = evaluateBus(Scheme::Base, params, 9);
    const SolverCacheStats after = solverCacheStats();
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);
    expectIdentical(a, b);
    setSolverCacheEnabled(true);
}

TEST_F(ParallelSolverCacheTest, ShardOverflowCountsEvictions)
{
    // Drive one private memo shard past its bound: the overflow clear
    // must add the dropped entry count to the process-wide eviction
    // total. clear() calls, by contrast, are not evictions.
    SolverMemo<int> memo;
    const SolverCacheStats before = solverCacheStats();
    // Keys land on shards by hi % 16; pushing 16 * (4096 + 1)
    // distinct keys guarantees at least one shard overflows.
    for (std::uint64_t i = 0; i < 16 * 4097; ++i) {
        memo.insert(SolverKeyBuilder("evict-test").add(i).key(),
                    static_cast<int>(i));
    }
    const SolverCacheStats after = solverCacheStats();
    EXPECT_GT(after.evictions, before.evictions);
    EXPECT_GE(after.evictions - before.evictions, 4096u);

    memo.clear();
    EXPECT_EQ(solverCacheStats().evictions, after.evictions);
}

TEST_F(ParallelSolverCacheTest, ArmedFaultInjectionBypassesTheMemo)
{
    const WorkloadParams params = middleParams();
    // Warm the exact point the fault should hit...
    evaluateBus(Scheme::Base, params, 8);
    // ...then arm a first-solve fault. A memo hit would swallow it.
    campaign::configureFaults("solver-bus:1", 1);
    EXPECT_THROW(evaluateBus(Scheme::Base, params, 8),
                 campaign::SolverNonConvergence);
    campaign::clearFaults();
}

TEST_F(ParallelSolverCacheTest, ConcurrentMixedLookupsAreRaceFree)
{
    // Raw std::threads hammer overlapping operating points through
    // the memo: every thread inserts and hits the same shards. Run
    // under tsan, this is the data-race gate for the cache; in any
    // build it checks cross-thread results equal the serial ones.
    const WorkloadParams params = middleParams();
    std::vector<BusSolution> serial;
    setSolverCacheEnabled(false);
    for (unsigned n = 1; n <= 16; ++n) {
        serial.push_back(evaluateBus(Scheme::Dragon, params, n));
    }
    setSolverCacheEnabled(true);

    constexpr unsigned kThreads = 4;
    std::vector<std::vector<BusSolution>> got(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < 3; ++round) {
                got[t].clear();
                for (unsigned n = 1; n <= 16; ++n) {
                    got[t].push_back(
                        evaluateBus(Scheme::Dragon, params, n));
                }
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    for (unsigned t = 0; t < kThreads; ++t) {
        ASSERT_EQ(got[t].size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            expectIdentical(got[t][i], serial[i]);
        }
    }
}

} // namespace
} // namespace swcc
