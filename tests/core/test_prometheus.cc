/**
 * @file
 * Unit tests for the Prometheus text-exposition renderer
 * (src/core/obs/prometheus.hh): name sanitization, label escaping,
 * counter `_total` suffixing, histogram expansion to cumulative
 * buckets with the mandatory `+Inf`, and the registry export path.
 * The renderer is pure string formatting, so everything here holds
 * under both SWCC_OBS=ON and SWCC_OBS=OFF (registry counts just read
 * zero when recording compiles away).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/obs/metrics.hh"
#include "core/obs/obs.hh"
#include "core/obs/prometheus.hh"

namespace swcc
{
namespace
{

TEST(PrometheusTest, MetricNameSanitization)
{
    EXPECT_EQ(obs::promMetricName("service.queue_wait_us"),
              "service_queue_wait_us");
    EXPECT_EQ(obs::promMetricName("solver_cache.hits"),
              "solver_cache_hits");
    EXPECT_EQ(obs::promMetricName("already_legal:name"),
              "already_legal:name");
    EXPECT_EQ(obs::promMetricName("spaces and-dashes"),
              "spaces_and_dashes");
    EXPECT_EQ(obs::promMetricName("9starts_with_digit"),
              "_9starts_with_digit");
    EXPECT_EQ(obs::promMetricName(""), "_");
}

TEST(PrometheusTest, LabelEscaping)
{
    EXPECT_EQ(obs::promEscapeLabel("plain"), "plain");
    EXPECT_EQ(obs::promEscapeLabel("say \"hi\""),
              "say \\\"hi\\\"");
    EXPECT_EQ(obs::promEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::promEscapeLabel("line\nbreak"), "line\\nbreak");
}

TEST(PrometheusTest, CounterGainsTotalSuffixExactlyOnce)
{
    obs::MetricSnapshot snap;
    snap.name = "service.queries";
    snap.kind = obs::MetricSnapshot::Kind::Counter;
    snap.value = 42.0;
    EXPECT_EQ(obs::promFamilyName(snap), "service_queries_total");

    std::string out;
    obs::appendPrometheus(out, snap);
    EXPECT_NE(out.find("# TYPE service_queries_total counter\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("service_queries_total 42\n"),
              std::string::npos)
        << out;

    // A name already ending in _total is not double-suffixed.
    snap.name = "service.queries_total";
    EXPECT_EQ(obs::promFamilyName(snap), "service_queries_total");
}

TEST(PrometheusTest, GaugeKeepsItsName)
{
    obs::MetricSnapshot snap;
    snap.name = "service.inflight";
    snap.kind = obs::MetricSnapshot::Kind::Gauge;
    snap.value = 3.0;
    EXPECT_EQ(obs::promFamilyName(snap), "service_inflight");
    std::string out;
    obs::appendPrometheus(out, snap);
    EXPECT_EQ(out,
              "# TYPE service_inflight gauge\n"
              "service_inflight 3\n");
}

TEST(PrometheusTest, HistogramIsCumulativeWithInfBucket)
{
    // Registry snapshots carry per-bucket (non-cumulative) counts
    // with an implicit overflow bucket; the exposition format wants
    // cumulative counts and an explicit +Inf.
    obs::MetricSnapshot snap;
    snap.name = "service.request_us";
    snap.kind = obs::MetricSnapshot::Kind::Histogram;
    snap.bounds = {10.0, 100.0, 1000.0};
    snap.counts = {3, 2, 1, 4}; // last entry: > 1000 (overflow)
    snap.count = 10;
    snap.sum = 5432.5;

    std::string out;
    obs::appendPrometheus(out, snap);
    EXPECT_EQ(out,
              "# TYPE service_request_us histogram\n"
              "service_request_us_bucket{le=\"10\"} 3\n"
              "service_request_us_bucket{le=\"100\"} 5\n"
              "service_request_us_bucket{le=\"1000\"} 6\n"
              "service_request_us_bucket{le=\"+Inf\"} 10\n"
              "service_request_us_sum 5432.5\n"
              "service_request_us_count 10\n");
}

TEST(PrometheusTest, RenderConcatenatesFamilies)
{
    obs::MetricSnapshot counter;
    counter.name = "a.hits";
    counter.kind = obs::MetricSnapshot::Kind::Counter;
    counter.value = 1.0;
    obs::MetricSnapshot gauge;
    gauge.name = "b.depth";
    gauge.kind = obs::MetricSnapshot::Kind::Gauge;
    gauge.value = 2.0;
    const std::string out = obs::renderPrometheus({counter, gauge});
    EXPECT_NE(out.find("a_hits_total 1\n"), std::string::npos) << out;
    EXPECT_NE(out.find("b_depth 2\n"), std::string::npos) << out;
    EXPECT_LT(out.find("a_hits_total"), out.find("b_depth"));
}

TEST(PrometheusTest, RegistryExportRendersEveryKind)
{
    obs::metrics().resetForTest();
    obs::metrics().counter("test.prom.events").add(5);
    obs::metrics().gauge("test.prom.level").set(1.5);
    obs::metrics()
        .histogram("test.prom.lat_us", {1.0, 10.0})
        .observe(4.0);

    std::ostringstream os;
    obs::writeMetricsPrometheus(os);
    const std::string out = os.str();

    EXPECT_NE(out.find("# TYPE test_prom_events_total counter\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("# TYPE test_prom_lat_us histogram\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("test_prom_lat_us_bucket{le=\"+Inf\"} "),
              std::string::npos)
        << out;
    if (obs::compiledIn()) {
        EXPECT_NE(out.find("test_prom_events_total 5\n"),
                  std::string::npos)
            << out;
        EXPECT_NE(out.find("test_prom_level 1.5\n"),
                  std::string::npos)
            << out;
        EXPECT_NE(out.find("test_prom_lat_us_bucket{le=\"10\"} 1\n"),
                  std::string::npos)
            << out;
    } else {
        EXPECT_NE(out.find("test_prom_events_total 0\n"),
                  std::string::npos)
            << out;
    }
    // No raw dots may leak into metric names: every line must start
    // with a legal name or a comment.
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#') {
            continue;
        }
        const std::string name = line.substr(0, line.find_first_of(" {"));
        EXPECT_EQ(name.find('.'), std::string::npos) << line;
    }
}

} // namespace
} // namespace swcc
