/**
 * @file
 * Unit tests for the reporting helpers.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.hh"

namespace swcc
{
namespace
{

TEST(TextTableTest, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "12345"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("12345"), std::string::npos);
    EXPECT_NE(text.find("-----"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTableTest, CsvOutput)
{
    TextTable table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTableTest, RejectsMismatchedRows)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), std::invalid_argument);
    EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(FormatNumberTest, TrimsTrailingZeros)
{
    EXPECT_EQ(formatNumber(3.14), "3.14");
    EXPECT_EQ(formatNumber(5.0), "5");
    EXPECT_EQ(formatNumber(0.5), "0.5");
    EXPECT_EQ(formatNumber(2.6, 0), "3");
    EXPECT_EQ(formatNumber(-0.0001, 2), "0");
    EXPECT_EQ(formatNumber(1234.5678, 2), "1234.57");
}

TEST(ExportCsvTest, WritesTheFileAndReturnsItsPath)
{
    TextTable table({"x", "y"});
    table.addRow({"1", "2"});
    const std::string dir = ::testing::TempDir() + "/swcc_csv_test";
    const std::string path = exportCsv(table, "sample", dir);
    EXPECT_EQ(path, dir + "/sample.csv");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::filesystem::remove_all(dir);
}

TEST(ExportCsvTest, UnwritableDirectoryThrows)
{
    TextTable table({"x"});
    EXPECT_THROW(exportCsv(table, "nope", "/proc/definitely/not/here"),
                 std::exception);
}

TEST(AsciiChartTest, RendersMarkersAndLegend)
{
    Series a;
    a.label = "Dragon";
    a.points = {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
    Series b;
    b.label = "No-Cache";
    b.points = {{1.0, 0.5}, {2.0, 0.7}, {3.0, 0.8}};

    AsciiChart chart(40, 10);
    chart.addSeries(a);
    chart.addSeries(b);
    chart.setAxisTitles("processors", "power");
    std::ostringstream os;
    chart.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find('D'), std::string::npos);
    EXPECT_NE(text.find('N'), std::string::npos);
    EXPECT_NE(text.find("legend:"), std::string::npos);
    EXPECT_NE(text.find("processors"), std::string::npos);
    EXPECT_NE(text.find("power"), std::string::npos);
}

TEST(AsciiChartTest, DisambiguatesCollidingMarkers)
{
    Series a;
    a.label = "Base";
    a.points = {{0.0, 1.0}};
    Series b;
    b.label = "Base-variant";
    b.points = {{0.0, 2.0}};
    AsciiChart chart;
    chart.addSeries(a);
    chart.addSeries(b);
    std::ostringstream os;
    chart.print(os);
    // The second series falls back to a digit marker.
    EXPECT_NE(os.str().find("2 = Base-variant"), std::string::npos);
}

TEST(AsciiChartTest, EmptyChartDoesNotCrash)
{
    AsciiChart chart;
    std::ostringstream os;
    chart.print(os);
    EXPECT_EQ(os.str(), "(empty chart)\n");
}

TEST(AsciiChartTest, HonoursExplicitYRange)
{
    Series a;
    a.label = "s";
    a.points = {{0.0, 5.0}, {1.0, 15.0}};
    AsciiChart chart(32, 8);
    chart.addSeries(a);
    chart.setYRange(0.0, 10.0);
    std::ostringstream os;
    chart.print(os);
    // The out-of-range point is clipped, the in-range one drawn.
    EXPECT_NE(os.str().find('s'), std::string::npos);
    EXPECT_THROW(chart.setYRange(1.0, 1.0), std::invalid_argument);
}

} // namespace
} // namespace swcc
