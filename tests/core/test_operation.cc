/**
 * @file
 * Unit tests for the operation enumeration.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/operation.hh"
#include "core/types.hh"

namespace swcc
{
namespace
{

TEST(OperationTest, AllOperationsListsEveryEnumeratorOnce)
{
    std::set<Operation> seen(kAllOperations.begin(), kAllOperations.end());
    EXPECT_EQ(seen.size(), kNumOperations);
}

TEST(OperationTest, IndicesAreDenseAndStable)
{
    for (std::size_t i = 0; i < kAllOperations.size(); ++i) {
        EXPECT_EQ(operationIndex(kAllOperations[i]), i);
    }
}

TEST(OperationTest, NamesMatchPaperTable1)
{
    EXPECT_EQ(operationName(Operation::InstrExec),
              "Instruction execution");
    EXPECT_EQ(operationName(Operation::CleanMissMem), "Clean miss (mem)");
    EXPECT_EQ(operationName(Operation::DirtyMissMem), "Dirty miss (mem)");
    EXPECT_EQ(operationName(Operation::ReadThrough), "Read through");
    EXPECT_EQ(operationName(Operation::WriteThrough), "Write through");
    EXPECT_EQ(operationName(Operation::CleanFlush), "Clean flush");
    EXPECT_EQ(operationName(Operation::DirtyFlush), "Dirty flush");
    EXPECT_EQ(operationName(Operation::WriteBroadcast), "Write broadcast");
    EXPECT_EQ(operationName(Operation::CleanMissCache),
              "Clean miss (cache)");
    EXPECT_EQ(operationName(Operation::DirtyMissCache),
              "Dirty miss (cache)");
    EXPECT_EQ(operationName(Operation::CycleSteal), "Cycle stealing");
}

TEST(OperationTest, NamesAreUnique)
{
    std::set<std::string_view> names;
    for (Operation op : kAllOperations) {
        names.insert(operationName(op));
    }
    EXPECT_EQ(names.size(), kNumOperations);
}

TEST(SchemeTest, NamesMatchPaper)
{
    EXPECT_EQ(schemeName(Scheme::Base), "Base");
    EXPECT_EQ(schemeName(Scheme::NoCache), "No-Cache");
    EXPECT_EQ(schemeName(Scheme::SoftwareFlush), "Software-Flush");
    EXPECT_EQ(schemeName(Scheme::Dragon), "Dragon");
    EXPECT_EQ(schemeName(Scheme::Mesi), "MESI");
    EXPECT_EQ(schemeName(Scheme::Mesif), "MESIF");
    EXPECT_EQ(schemeName(Scheme::Moesi), "MOESI");
    EXPECT_EQ(schemeName(Scheme::Hybrid), "Adaptive-Hybrid");
}

TEST(SchemeTest, OnlySnoopySchemesNeedABus)
{
    EXPECT_TRUE(schemeWorksOnNetwork(Scheme::Base));
    EXPECT_TRUE(schemeWorksOnNetwork(Scheme::NoCache));
    EXPECT_TRUE(schemeWorksOnNetwork(Scheme::SoftwareFlush));
    EXPECT_FALSE(schemeWorksOnNetwork(Scheme::Dragon));
    EXPECT_FALSE(schemeWorksOnNetwork(Scheme::Mesi));
    EXPECT_FALSE(schemeWorksOnNetwork(Scheme::Mesif));
    EXPECT_FALSE(schemeWorksOnNetwork(Scheme::Moesi));
    EXPECT_FALSE(schemeWorksOnNetwork(Scheme::Hybrid));
}

TEST(SchemeTest, PaperSchemesAreTheFirstFour)
{
    ASSERT_EQ(kPaperSchemes.size(), kNumPaperSchemes);
    for (std::size_t i = 0; i < kNumPaperSchemes; ++i) {
        EXPECT_EQ(kPaperSchemes[i], kAllSchemes[i]);
    }
}

TEST(SchemeTest, AllSchemesListsEveryEnumeratorOnce)
{
    std::set<Scheme> seen(kAllSchemes.begin(), kAllSchemes.end());
    EXPECT_EQ(seen.size(), kNumSchemes);
}

} // namespace
} // namespace swcc
