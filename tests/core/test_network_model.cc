/**
 * @file
 * Unit tests for the Patel multistage-network contention model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/network_model.hh"

namespace swcc
{
namespace
{

PerInstructionCost
cost(double cpu, double net)
{
    PerInstructionCost c;
    c.cpu = cpu;
    c.channel = net;
    return c;
}

TEST(PatelRecursionTest, StageStepMatchesClosedForm)
{
    // m' = 1 - (1 - m/2)^2 = m - m^2/4.
    for (double m : {0.0, 0.1, 0.5, 0.9, 1.0}) {
        EXPECT_NEAR(patelStageStep(m), m - m * m / 4.0, 1e-12);
    }
}

TEST(PatelRecursionTest, LoadNeverIncreasesThroughAStage)
{
    for (double m = 0.0; m <= 1.0; m += 0.05) {
        const double out = patelStageStep(m);
        EXPECT_LE(out, m + 1e-12);
        EXPECT_GE(out, 0.0);
    }
}

TEST(PatelRecursionTest, StageLoadsAreMonotoneDecreasing)
{
    const std::vector<double> loads = patelStageLoads(0.8, 8);
    ASSERT_EQ(loads.size(), 9u);
    EXPECT_DOUBLE_EQ(loads.front(), 0.8);
    for (std::size_t i = 1; i < loads.size(); ++i) {
        EXPECT_LT(loads[i], loads[i - 1]);
    }
}

TEST(PatelRecursionTest, OutputMatchesIteratedStep)
{
    double m = 0.6;
    for (int i = 0; i < 5; ++i) {
        m = patelStageStep(m);
    }
    EXPECT_NEAR(patelNetworkOutput(0.6, 5), m, 1e-12);
}

TEST(FixedPointTest, LowLoadApproachesOneOverOnePlusDemand)
{
    // With negligible blocking, U -> 1/(1 + m*t).
    const double u = solveComputeFraction(0.0001, 10.0, 4);
    EXPECT_NEAR(u, 1.0 / 1.001, 1e-3);
}

TEST(FixedPointTest, NeverExceedsTheBlockingFreeBound)
{
    for (double rate : {0.01, 0.05, 0.2}) {
        for (double size : {2.0, 10.0, 24.0}) {
            const double u = solveComputeFraction(rate, size, 6);
            EXPECT_LE(u, 1.0 / (1.0 + rate * size) + 1e-9);
            EXPECT_GT(u, 0.0);
        }
    }
}

TEST(FixedPointTest, UtilizationFallsWithLoadAndStages)
{
    double prev = 1.0;
    for (double rate : {0.01, 0.02, 0.04, 0.08}) {
        const double u = solveComputeFraction(rate, 12.0, 6);
        EXPECT_LT(u, prev);
        prev = u;
    }
    prev = 1.0;
    for (unsigned stages : {2u, 4u, 6u, 8u}) {
        const double u = solveComputeFraction(0.04, 12.0, stages);
        EXPECT_LT(u, prev);
        prev = u;
    }
}

TEST(FixedPointTest, SolvesTheFixedPointEquation)
{
    const double rate = 0.03;
    const double size = 14.0;
    const unsigned stages = 8;
    const double u = solveComputeFraction(rate, size, stages);
    EXPECT_NEAR(u, patelNetworkOutput(1.0 - u, stages) / (rate * size),
                1e-9);
}

TEST(FixedPointTest, RejectsBadArguments)
{
    EXPECT_THROW(solveComputeFraction(0.0, 1.0, 4),
                 std::invalid_argument);
    EXPECT_THROW(solveComputeFraction(0.1, 0.0, 4),
                 std::invalid_argument);
    EXPECT_THROW(solveComputeFraction(0.1, 1.0, 0),
                 std::invalid_argument);
}

TEST(NetworkSolutionTest, NoTrafficDegeneratesToPureCpu)
{
    const NetworkSolution sol = solveNetwork(cost(1.4, 0.0), 5);
    EXPECT_DOUBLE_EQ(sol.computeFraction, 1.0);
    EXPECT_DOUBLE_EQ(sol.cyclesPerInstruction, 1.4);
    EXPECT_DOUBLE_EQ(sol.waiting, 0.0);
    EXPECT_EQ(sol.processors, 32u);
    EXPECT_NEAR(sol.processingPower, 32.0 / 1.4, 1e-12);
}

TEST(NetworkSolutionTest, LightTrafficCostsAlmostNothing)
{
    // b = 0.01 cycles/instruction on a small network.
    const NetworkSolution sol = solveNetwork(cost(1.2, 0.01), 3);
    EXPECT_NEAR(sol.cyclesPerInstruction, 1.2, 0.01);
    EXPECT_GE(sol.cyclesPerInstruction, 1.2 - 1e-9);
}

TEST(NetworkSolutionTest, WaitingIsNonNegative)
{
    for (double net : {0.05, 0.2, 0.5, 1.0}) {
        const NetworkSolution sol = solveNetwork(cost(2.0, net), 8);
        EXPECT_GE(sol.waiting, -1e-9) << "b=" << net;
        EXPECT_LE(sol.processorUtilization, 1.0 / 2.0);
    }
}

TEST(NetworkSolutionTest, DerivedQuantitiesAreConsistent)
{
    const NetworkSolution sol = solveNetwork(cost(2.5, 0.4), 6);
    EXPECT_NEAR(sol.transactionRate, 1.0 / 2.1, 1e-12);
    EXPECT_NEAR(sol.unitRequestRate, sol.transactionRate * 0.4, 1e-12);
    EXPECT_NEAR(sol.inputLoad, 1.0 - sol.computeFraction, 1e-12);
    EXPECT_NEAR(sol.cyclesPerInstruction,
                2.1 / sol.computeFraction, 1e-9);
    EXPECT_NEAR(sol.processingPower,
                64.0 * sol.processorUtilization, 1e-12);
    EXPECT_GT(sol.acceptance, 0.0);
    EXPECT_LE(sol.acceptance, 1.0);
}

TEST(NetworkSolutionTest, RejectsBadArguments)
{
    EXPECT_THROW(solveNetwork(cost(1.0, 1.0), 4), std::invalid_argument);
    EXPECT_THROW(solveNetwork(cost(2.0, 0.4), 0), std::invalid_argument);
}

TEST(KbyKSwitchTest, KTwoMatchesTheBaseRecursion)
{
    for (double m : {0.1, 0.5, 0.9}) {
        EXPECT_NEAR(patelStageStepK(m, 2), patelStageStep(m), 1e-12);
    }
    EXPECT_NEAR(solveComputeFractionK(0.03, 14.0, 8, 2),
                solveComputeFraction(0.03, 14.0, 8), 1e-9);
}

TEST(KbyKSwitchTest, PerStageThroughputConvergesFromAbove)
{
    // Per stage, a wider crossbar passes slightly *less* (more inputs
    // compete for each output): m' falls with k toward the Poisson
    // limit 1 - e^-m. The whole-network win comes from needing
    // log_k(N) instead of log_2(N) stages.
    for (double m : {0.2, 0.5, 0.8}) {
        double prev = 1.0;
        for (unsigned k : {2u, 4u, 8u, 16u}) {
            const double out = patelStageStepK(m, k);
            EXPECT_LT(out, prev) << "m=" << m << " k=" << k;
            EXPECT_GT(out, 1.0 - std::exp(-m)) << "m=" << m;
            EXPECT_LE(out, m + 1e-12);
            prev = out;
        }
    }
}

TEST(KbyKSwitchTest, SameMachineFewerStagesMoreUtilization)
{
    // 256 processors as 8 stages of 2x2 or 4 stages of 4x4: the wider
    // switches give a better compute fraction at equal load.
    const double u2 = solveComputeFractionK(0.03, 20.0, 8, 2);
    const double u4 = solveComputeFractionK(0.03, 20.0, 4, 4);
    EXPECT_GT(u4, u2);
}

TEST(KbyKSwitchTest, StageCounts)
{
    EXPECT_EQ(stagesForProcessorsK(256, 2), 8u);
    EXPECT_EQ(stagesForProcessorsK(256, 4), 4u);
    EXPECT_EQ(stagesForProcessorsK(256, 16), 2u);
    EXPECT_EQ(stagesForProcessorsK(257, 4), 5u);
    EXPECT_EQ(stagesForProcessorsK(1, 4), 1u);
}

TEST(KbyKSwitchTest, RejectsBadDimensions)
{
    EXPECT_THROW(patelStageStepK(0.5, 1), std::invalid_argument);
    EXPECT_THROW(solveComputeFractionK(0.03, 10.0, 4, 1),
                 std::invalid_argument);
    EXPECT_THROW(stagesForProcessorsK(16, 0), std::invalid_argument);
}

TEST(StagesForProcessorsTest, CeilLog2WithMinimumOne)
{
    EXPECT_EQ(stagesForProcessors(1), 1u);
    EXPECT_EQ(stagesForProcessors(2), 1u);
    EXPECT_EQ(stagesForProcessors(3), 2u);
    EXPECT_EQ(stagesForProcessors(4), 2u);
    EXPECT_EQ(stagesForProcessors(5), 3u);
    EXPECT_EQ(stagesForProcessors(256), 8u);
    EXPECT_EQ(stagesForProcessors(257), 9u);
}

} // namespace
} // namespace swcc
