/**
 * @file
 * Unit tests for the bus contention model (exact MVA).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/bus_model.hh"

namespace swcc
{
namespace
{

/**
 * Independent closed-form solution of the machine-repairman model
 * (N exponential thinkers of mean Z, one exponential server of mean S)
 * via its stationary distribution: pi_k proportional to
 * N!/(N-k)! * (S/Z)^k, k customers at the server.
 */
double
repairmanWaiting(double think, double service, unsigned customers)
{
    const double rho = service / think;
    std::vector<double> pi(customers + 1);
    double weight = 1.0;
    pi[0] = 1.0;
    for (unsigned k = 1; k <= customers; ++k) {
        weight *= static_cast<double>(customers - k + 1) * rho;
        pi[k] = weight;
    }
    double total = 0.0;
    for (double w : pi) {
        total += w;
    }
    double queue = 0.0;
    for (unsigned k = 0; k <= customers; ++k) {
        queue += k * pi[k] / total;
    }
    const double idle = pi[0] / total;
    const double throughput = (1.0 - idle) / service;
    const double response = queue / throughput; // Little's law.
    return response - service;
}

PerInstructionCost
cost(double cpu, double bus)
{
    PerInstructionCost c;
    c.cpu = cpu;
    c.channel = bus;
    return c;
}

TEST(BusModelTest, SingleProcessorHasNoContention)
{
    const BusSolution sol = solveBus(cost(2.0, 0.5), 1);
    EXPECT_NEAR(sol.waiting, 0.0, 1e-12);
    EXPECT_NEAR(sol.processorUtilization, 0.5, 1e-12);
    EXPECT_NEAR(sol.processingPower, 0.5, 1e-12);
}

TEST(BusModelTest, ZeroBusDemandMeansNoQueueing)
{
    const BusSolution sol = solveBus(cost(1.5, 0.0), 64);
    EXPECT_DOUBLE_EQ(sol.waiting, 0.0);
    EXPECT_DOUBLE_EQ(sol.busUtilization, 0.0);
    EXPECT_NEAR(sol.processingPower, 64.0 / 1.5, 1e-12);
}

/** MVA must agree with the stationary-distribution solution exactly. */
class RepairmanAgreementTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RepairmanAgreementTest, MvaMatchesClosedForm)
{
    const unsigned n = GetParam();
    for (const auto &[cpu, bus] :
         std::vector<std::pair<double, double>>{
             {1.2, 0.1}, {2.0, 0.7}, {5.0, 3.0}, {1.05, 0.05}}) {
        const BusSolution sol = solveBus(cost(cpu, bus), n);
        const double expected = repairmanWaiting(cpu - bus, bus, n);
        EXPECT_NEAR(sol.waiting, expected, 1e-9)
            << "c=" << cpu << " b=" << bus << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Populations, RepairmanAgreementTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u, 32u));

TEST(BusModelTest, WaitingGrowsWithProcessors)
{
    double prev = -1.0;
    for (unsigned n = 1; n <= 32; ++n) {
        const BusSolution sol = solveBus(cost(2.0, 0.5), n);
        EXPECT_GT(sol.waiting, prev);
        prev = sol.waiting;
    }
}

TEST(BusModelTest, ProcessingPowerIsMonotoneInProcessors)
{
    // Adding a processor never reduces total processing power in a
    // work-conserving queue.
    double prev = 0.0;
    for (unsigned n = 1; n <= 64; ++n) {
        const BusSolution sol = solveBus(cost(1.6, 0.4), n);
        EXPECT_GE(sol.processingPower, prev - 1e-12);
        prev = sol.processingPower;
    }
}

TEST(BusModelTest, PowerRespectsBothAsymptoticBounds)
{
    const PerInstructionCost c = cost(1.6, 0.4);
    for (unsigned n = 1; n <= 64; n *= 2) {
        const BusSolution sol = solveBus(c, n);
        EXPECT_LE(sol.processingPower, n / c.cpu + 1e-12);
        EXPECT_LE(sol.processingPower, busSaturationPower(c) + 1e-12);
    }
}

TEST(BusModelTest, SaturatedBusApproachesBandwidthBound)
{
    const PerInstructionCost c = cost(1.5, 0.5);
    const BusSolution sol = solveBus(c, 128);
    EXPECT_NEAR(sol.processingPower, 1.0 / 0.5, 0.01);
    EXPECT_NEAR(sol.busUtilization, 1.0, 0.01);
}

TEST(BusModelTest, BusUtilizationIsConsistentWithThroughput)
{
    const BusSolution sol = solveBus(cost(2.0, 0.6), 8);
    // Throughput per processor is U instructions/cycle, each holding
    // the bus for b cycles.
    EXPECT_NEAR(sol.busUtilization,
                sol.processingPower * sol.bus, 1e-9);
}

TEST(BusModelTest, SaturationEstimates)
{
    const PerInstructionCost c = cost(2.0, 0.5);
    EXPECT_DOUBLE_EQ(busSaturationPower(c), 2.0);
    EXPECT_DOUBLE_EQ(busSaturationProcessors(c), 4.0);
    EXPECT_TRUE(std::isinf(busSaturationPower(cost(2.0, 0.0))));
}

TEST(GeneralServiceTest, ExponentialScvRecoversExactMva)
{
    const PerInstructionCost c = cost(1.8, 0.45);
    for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const BusSolution exact = solveBus(c, n);
        const BusSolution approx = solveBusGeneralService(c, n, 1.0);
        EXPECT_NEAR(approx.waiting, exact.waiting, 1e-9) << n;
        EXPECT_NEAR(approx.processingPower, exact.processingPower,
                    1e-9)
            << n;
    }
}

TEST(GeneralServiceTest, DeterministicServiceWaitsLess)
{
    const PerInstructionCost c = cost(1.6, 0.4);
    for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
        const BusSolution exp = solveBusGeneralService(c, n, 1.0);
        const BusSolution det = solveBusGeneralService(c, n, 0.0);
        EXPECT_LT(det.waiting, exp.waiting) << n;
        EXPECT_GT(det.processingPower, exp.processingPower) << n;
    }
}

TEST(GeneralServiceTest, WaitingIsMonotoneInVariability)
{
    const PerInstructionCost c = cost(1.5, 0.5);
    double prev = -1.0;
    for (double scv : {0.0, 0.25, 0.5, 1.0, 2.0}) {
        const BusSolution sol = solveBusGeneralService(c, 12, scv);
        EXPECT_GT(sol.waiting, prev) << scv;
        prev = sol.waiting;
    }
}

TEST(GeneralServiceTest, SingleProcessorNeverQueues)
{
    const BusSolution sol =
        solveBusGeneralService(cost(2.0, 0.5), 1, 0.0);
    EXPECT_NEAR(sol.waiting, 0.0, 1e-12);
}

TEST(GeneralServiceTest, DeterministicStillSaturatesTheBus)
{
    const PerInstructionCost c = cost(1.5, 0.5);
    const BusSolution sol = solveBusGeneralService(c, 128, 0.0);
    // Approximate MVA may overshoot the asymptote slightly; the power
    // must still land essentially on the bandwidth bound.
    EXPECT_LT(sol.processingPower, 1.02 * busSaturationPower(c));
    EXPECT_GT(sol.processingPower, 0.95 * busSaturationPower(c));
}

TEST(GeneralServiceTest, RejectsNegativeScv)
{
    EXPECT_THROW(solveBusGeneralService(cost(2.0, 0.5), 4, -0.1),
                 std::invalid_argument);
    EXPECT_THROW(solveBusGeneralService(cost(2.0, 0.5), 0, 0.5),
                 std::invalid_argument);
}

TEST(BusModelTest, RejectsBadArguments)
{
    EXPECT_THROW(solveBus(cost(2.0, 0.5), 0), std::invalid_argument);
    EXPECT_THROW(solveBus(cost(0.4, 0.5), 4), std::invalid_argument);
    EXPECT_THROW(solveBus(cost(1.0, -0.1), 4), std::invalid_argument);
}

TEST(BusModelTest, ReportsItsInputs)
{
    const BusSolution sol = solveBus(cost(2.5, 0.75), 6);
    EXPECT_EQ(sol.processors, 6u);
    EXPECT_DOUBLE_EQ(sol.cpu, 2.5);
    EXPECT_DOUBLE_EQ(sol.bus, 0.75);
    EXPECT_DOUBLE_EQ(sol.cyclesPerInstruction(), 2.5 + sol.waiting);
}

} // namespace
} // namespace swcc
