/**
 * @file
 * Unit tests for the workload model (paper Tables 3-6).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/frequency_model.hh"

namespace swcc
{
namespace
{

WorkloadParams
referenceParams()
{
    WorkloadParams p;
    p.ls = 0.3;
    p.msdat = 0.02;
    p.mains = 0.003;
    p.md = 0.25;
    p.shd = 0.2;
    p.wr = 0.3;
    p.apl = 8.0;
    p.mdshd = 0.4;
    p.oclean = 0.8;
    p.opres = 0.75;
    p.nshd = 2.0;
    return p;
}

TEST(BaseFrequenciesTest, MatchesTable3)
{
    const WorkloadParams p = referenceParams();
    const FrequencyVector f = operationFrequencies(Scheme::Base, p);

    const double miss = p.ls * p.msdat + p.mains; // 0.009
    EXPECT_DOUBLE_EQ(f.of(Operation::InstrExec), 1.0);
    EXPECT_DOUBLE_EQ(f.of(Operation::CleanMissMem), miss * (1 - p.md));
    EXPECT_DOUBLE_EQ(f.of(Operation::DirtyMissMem), miss * p.md);
    EXPECT_DOUBLE_EQ(f.of(Operation::ReadThrough), 0.0);
    EXPECT_DOUBLE_EQ(f.of(Operation::WriteBroadcast), 0.0);
    EXPECT_DOUBLE_EQ(f.of(Operation::CleanFlush), 0.0);
}

TEST(NoCacheFrequenciesTest, MatchesTable4)
{
    const WorkloadParams p = referenceParams();
    const FrequencyVector f = operationFrequencies(Scheme::NoCache, p);

    const double miss = p.ls * p.msdat * (1 - p.shd) + p.mains;
    EXPECT_DOUBLE_EQ(f.of(Operation::CleanMissMem), miss * (1 - p.md));
    EXPECT_DOUBLE_EQ(f.of(Operation::DirtyMissMem), miss * p.md);
    EXPECT_DOUBLE_EQ(f.of(Operation::ReadThrough),
                     p.ls * p.shd * (1 - p.wr));
    EXPECT_DOUBLE_EQ(f.of(Operation::WriteThrough), p.ls * p.shd * p.wr);
    EXPECT_DOUBLE_EQ(f.of(Operation::CleanFlush), 0.0);
    EXPECT_DOUBLE_EQ(f.of(Operation::WriteBroadcast), 0.0);
}

TEST(SoftwareFlushFrequenciesTest, MatchesTable5)
{
    const WorkloadParams p = referenceParams();
    const FrequencyVector f =
        operationFrequencies(Scheme::SoftwareFlush, p);

    const double flush = p.ls * p.shd / p.apl; // 0.0075
    EXPECT_DOUBLE_EQ(flushFrequency(p), flush);

    const double miss =
        p.ls * p.msdat * (1 - p.shd) + p.mains * (1 + flush);
    // Unshared misses plus one clean refetch miss per flush.
    EXPECT_DOUBLE_EQ(f.of(Operation::CleanMissMem),
                     miss * (1 - p.md) + flush);
    EXPECT_DOUBLE_EQ(f.of(Operation::DirtyMissMem), miss * p.md);
    EXPECT_DOUBLE_EQ(f.of(Operation::CleanFlush),
                     flush * (1 - p.mdshd));
    EXPECT_DOUBLE_EQ(f.of(Operation::DirtyFlush), flush * p.mdshd);
    EXPECT_DOUBLE_EQ(f.of(Operation::ReadThrough), 0.0);
}

TEST(SoftwareFlushFrequenciesTest, FlushCostVanishesAsAplGrows)
{
    WorkloadParams p = referenceParams();
    p.apl = 1e9;
    const FrequencyVector sf =
        operationFrequencies(Scheme::SoftwareFlush, p);
    const FrequencyVector base = operationFrequencies(Scheme::Base, p);

    EXPECT_NEAR(sf.of(Operation::CleanFlush), 0.0, 1e-9);
    EXPECT_NEAR(sf.of(Operation::DirtyFlush), 0.0, 1e-9);
    // Only the unshared-miss split differs from Base in the limit; the
    // totals converge except for the shd factor on msdat.
    EXPECT_NEAR(sf.of(Operation::CleanMissMem),
                base.of(Operation::CleanMissMem) -
                    p.ls * p.msdat * p.shd * (1 - p.md),
                1e-9);
}

TEST(SoftwareFlushFrequenciesTest, AplOfOneFlushesEveryReference)
{
    WorkloadParams p = referenceParams();
    p.apl = 1.0;
    const FrequencyVector f =
        operationFrequencies(Scheme::SoftwareFlush, p);
    const double flush = p.ls * p.shd;
    EXPECT_DOUBLE_EQ(f.of(Operation::CleanFlush) +
                         f.of(Operation::DirtyFlush),
                     flush);
}

TEST(DragonFrequenciesTest, MatchesTable6)
{
    const WorkloadParams p = referenceParams();
    const FrequencyVector f = operationFrequencies(Scheme::Dragon, p);

    const double from_cache = p.shd * (1 - p.oclean);
    const double mem_miss = p.ls * p.msdat * (1 - from_cache) + p.mains;
    const double cache_miss = p.ls * p.msdat * from_cache;
    const double broadcast = p.ls * p.shd * p.wr * p.opres;

    EXPECT_DOUBLE_EQ(f.of(Operation::CleanMissMem),
                     mem_miss * (1 - p.md));
    EXPECT_DOUBLE_EQ(f.of(Operation::DirtyMissMem), mem_miss * p.md);
    EXPECT_DOUBLE_EQ(f.of(Operation::CleanMissCache),
                     cache_miss * (1 - p.md));
    EXPECT_DOUBLE_EQ(f.of(Operation::DirtyMissCache), cache_miss * p.md);
    EXPECT_DOUBLE_EQ(f.of(Operation::WriteBroadcast), broadcast);
    EXPECT_DOUBLE_EQ(f.of(Operation::CycleSteal), broadcast * p.nshd);
}

TEST(DragonFrequenciesTest, TotalMissesMatchBase)
{
    // Dragon redirects misses between memory and caches but the total
    // miss rate is the Base rate.
    const WorkloadParams p = referenceParams();
    const FrequencyVector dragon =
        operationFrequencies(Scheme::Dragon, p);
    const FrequencyVector base = operationFrequencies(Scheme::Base, p);
    EXPECT_NEAR(dragon.totalMisses(), base.totalMisses(), 1e-12);
}

TEST(FrequencyVectorTest, HelpersSumTheRightOperations)
{
    FrequencyVector f;
    f.set(Operation::CleanMissMem, 0.1);
    f.set(Operation::DirtyMissCache, 0.2);
    f.set(Operation::WriteThrough, 0.3);
    f.set(Operation::CycleSteal, 5.0);
    f.set(Operation::InstrExec, 1.0);
    EXPECT_DOUBLE_EQ(f.totalMisses(), 0.3);
    // Channel operations exclude instruction execution and stealing.
    EXPECT_DOUBLE_EQ(f.totalChannelOperations(), 0.6);
    f.add(Operation::CleanMissMem, 0.05);
    EXPECT_DOUBLE_EQ(f.of(Operation::CleanMissMem), 0.15);
}

TEST(FrequencyModelTest, RejectsInvalidParams)
{
    WorkloadParams p = referenceParams();
    p.shd = 1.5;
    EXPECT_THROW(operationFrequencies(Scheme::Base, p),
                 std::invalid_argument);
}

/** Property sweep: frequencies stay sane over the Table 7 grid. */
class FrequencyGridTest
    : public ::testing::TestWithParam<std::tuple<Scheme, Level, Level>>
{
};

TEST_P(FrequencyGridTest, FrequenciesAreNonNegativeAndBounded)
{
    const auto [scheme, miss_level, share_level] = GetParam();
    WorkloadParams p = middleParams();
    setParam(p, ParamId::Msdat,
             paramLevelValue(ParamId::Msdat, miss_level));
    setParam(p, ParamId::Shd, paramLevelValue(ParamId::Shd, share_level));
    setParam(p, ParamId::InvApl,
             paramLevelValue(ParamId::InvApl, share_level));

    const FrequencyVector f = operationFrequencies(scheme, p);
    for (Operation op : kAllOperations) {
        EXPECT_GE(f.of(op), 0.0) << operationName(op);
        EXPECT_LE(f.of(op), 8.0) << operationName(op);
    }
    EXPECT_DOUBLE_EQ(f.of(Operation::InstrExec), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FrequencyGridTest,
    ::testing::Combine(
        ::testing::ValuesIn(kAllSchemes),
        ::testing::Values(Level::Low, Level::Middle, Level::High),
        ::testing::Values(Level::Low, Level::Middle, Level::High)));

} // namespace
} // namespace swcc
