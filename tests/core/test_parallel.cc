/**
 * @file
 * Unit tests for the thread pool and the determinism guarantee of the
 * parallel experiment engine: serial and multi-threaded runs must
 * produce bit-identical results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/parallel.hh"
#include "core/scheme_evaluator.hh"
#include "core/sensitivity.hh"
#include "core/workload.hh"
#include "sim/mp/validation.hh"

namespace swcc
{
namespace
{

/** Forces a lane count for one test, restoring the default after. */
class ThreadCountGuard
{
  public:
    explicit ThreadCountGuard(unsigned threads)
    {
        setThreadCount(threads);
    }
    ~ThreadCountGuard() { setThreadCount(0); }
};

TEST(ParallelPoolTest, ShutdownIsCleanWhenIdle)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    // Destructor joins workers that never received a job.
}

TEST(ParallelPoolTest, ShutdownIsCleanAfterWork)
{
    std::atomic<int> hits{0};
    {
        ThreadPool pool(3);
        pool.forEach(100, [&](std::size_t) { ++hits; });
    }
    EXPECT_EQ(hits.load(), 100);
}

TEST(ParallelPoolTest, ZeroLanesMeansSerial)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    int hits = 0;
    pool.forEach(7, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits, 7);
}

TEST(ParallelPoolTest, ReusableAcrossManyJobs)
{
    ThreadPool pool(4);
    for (int job = 0; job < 50; ++job) {
        std::vector<int> slots(37, -1);
        pool.forEach(slots.size(), [&](std::size_t i) {
            slots[i] = static_cast<int>(i);
        });
        for (std::size_t i = 0; i < slots.size(); ++i) {
            ASSERT_EQ(slots[i], static_cast<int>(i));
        }
    }
}

TEST(ParallelPoolTest, StatsAccountForEveryTaskSubmitted)
{
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    pool.forEach(1000, [&](std::size_t) { ++hits; });
    pool.forEach(37, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 1037);

    const PoolStats stats = pool.stats();
    ASSERT_EQ(stats.lanes.size(), 4u);
    EXPECT_EQ(stats.jobs, 2u);
    const WorkerStats totals = stats.totals();
    // Every submitted index ran exactly once, wherever it was stolen.
    EXPECT_EQ(totals.tasksExecuted, 1037u);
    EXPECT_GE(totals.chunksStolen, 2u);
}

TEST(ParallelPoolTest, StatsWorkOnTheSerialPath)
{
    ThreadPool pool(0);
    pool.forEach(50, [](std::size_t) {});
    const PoolStats stats = pool.stats();
    ASSERT_EQ(stats.lanes.size(), 1u);
    EXPECT_EQ(stats.jobs, 1u);
    EXPECT_EQ(stats.totals().tasksExecuted, 50u);
}

TEST(ParallelPoolTest, StatsCountTasksUpToAFailure)
{
    ThreadPool pool(2);
    try {
        pool.forEach(8, [](std::size_t i) {
            if (i == 3) {
                throw std::runtime_error("boom");
            }
        });
        FAIL() << "expected the job's exception";
    } catch (const std::runtime_error &) {
    }
    // Execution stops early, but the accounting never loses a task
    // that did run: at least the failing chunk's predecessors.
    const PoolStats stats = pool.stats();
    EXPECT_GE(stats.totals().chunksStolen, 1u);
    EXPECT_LE(stats.totals().tasksExecuted, 7u);
}

TEST(ParallelForTest, RunsZeroOneAndManyItems)
{
    ThreadCountGuard guard(4);

    int zero_calls = 0;
    parallelFor(0, [&](std::size_t) { ++zero_calls; });
    EXPECT_EQ(zero_calls, 0);

    std::vector<std::size_t> one;
    parallelFor(1, [&](std::size_t i) { one.push_back(i); });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one.front(), 0u);

    std::vector<int> many(1000, 0);
    parallelFor(many.size(), [&](std::size_t i) {
        many[i] = static_cast<int>(i) * 2;
    });
    for (std::size_t i = 0; i < many.size(); ++i) {
        ASSERT_EQ(many[i], static_cast<int>(i) * 2);
    }
}

TEST(ParallelForTest, PropagatesTheFirstException)
{
    ThreadCountGuard guard(4);
    EXPECT_THROW(
        parallelFor(64,
                    [&](std::size_t i) {
                        if (i == 13) {
                            throw std::runtime_error("cell 13 failed");
                        }
                    }),
        std::runtime_error);

    // The pool survives a failed job.
    std::atomic<int> hits{0};
    parallelFor(32, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 32);
}

TEST(ParallelForTest, NestedLoopsFlattenInsteadOfDeadlocking)
{
    ThreadCountGuard guard(4);
    std::vector<std::vector<int>> grid(8, std::vector<int>(8, 0));
    parallelFor(8, [&](std::size_t outer) {
        parallelFor(8, [&](std::size_t inner) {
            grid[outer][inner] = static_cast<int>(outer * 8 + inner);
        });
    });
    for (std::size_t outer = 0; outer < 8; ++outer) {
        for (std::size_t inner = 0; inner < 8; ++inner) {
            ASSERT_EQ(grid[outer][inner],
                      static_cast<int>(outer * 8 + inner));
        }
    }
}

TEST(ParallelMapTest, SlotsMatchIndices)
{
    ThreadCountGuard guard(4);
    const std::vector<std::size_t> squares =
        parallelMap(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i) {
        ASSERT_EQ(squares[i], i * i);
    }
}

TEST(ParallelConfigTest, OverrideBeatsDefaults)
{
    EXPECT_GE(hardwareThreads(), 1u);
    setThreadCount(3);
    EXPECT_EQ(configuredThreads(), 3u);
    setThreadCount(0);
    EXPECT_GE(configuredThreads(), 1u);
}

// --- Determinism: the acceptance criterion of the parallel engine. ---

TEST(ParallelDeterminismTest, SensitivityTableIsBitIdentical)
{
    SensitivityConfig config;
    config.processors = 16;
    config.averageOverGrid = true;

    setThreadCount(1);
    const auto serial = sensitivityTable(config);
    setThreadCount(4);
    const auto parallel = sensitivityTable(config);
    setThreadCount(0);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].scheme, parallel[i].scheme);
        EXPECT_EQ(serial[i].param, parallel[i].param);
        // Exact equality on purpose: bit-identical, not "close".
        EXPECT_EQ(serial[i].timeLow, parallel[i].timeLow);
        EXPECT_EQ(serial[i].timeHigh, parallel[i].timeHigh);
        EXPECT_EQ(serial[i].percentChange, parallel[i].percentChange);
    }
}

TEST(ParallelDeterminismTest, ValidationMatrixIsBitIdentical)
{
    ValidationConfig config;
    config.scheme = Scheme::Dragon;
    config.maxCpus = 3;
    config.instructionsPerCpu = 20'000;
    config.seed = 7;

    setThreadCount(1);
    const auto serial = validate(config);
    setThreadCount(4);
    const auto parallel = validate(config);
    setThreadCount(0);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].cpus, parallel[i].cpus);
        EXPECT_EQ(serial[i].simPower, parallel[i].simPower);
        EXPECT_EQ(serial[i].modelPower, parallel[i].modelPower);
        EXPECT_EQ(serial[i].sim.makespan, parallel[i].sim.makespan);
    }
}

TEST(ParallelDeterminismTest, PowerCurveIsBitIdenticalAndOrdered)
{
    const WorkloadParams params = middleParams();

    setThreadCount(1);
    const auto serial = busPowerCurve(Scheme::SoftwareFlush, params, 32);
    setThreadCount(4);
    const auto parallel =
        busPowerCurve(Scheme::SoftwareFlush, params, 32);
    setThreadCount(0);

    ASSERT_EQ(serial.size(), 32u);
    ASSERT_EQ(parallel.size(), 32u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].processors, parallel[i].processors);
        EXPECT_EQ(serial[i].processingPower,
                  parallel[i].processingPower);
    }
}

} // namespace
} // namespace swcc
