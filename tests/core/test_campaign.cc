/**
 * @file
 * Unit tests for the resilient campaign engine: cell hashing, atomic
 * artifact writes, the checksummed journal, fault injection, and the
 * retry / poison / resume machinery of runCells(). Every suite name
 * starts with "Campaign" so the tsan preset's test filter picks the
 * whole file up.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "core/campaign/atomic_file.hh"
#include "core/campaign/campaign.hh"
#include "core/campaign/cell_hash.hh"
#include "core/campaign/faults.hh"
#include "core/campaign/journal.hh"
#include "core/sensitivity.hh"
#include "core/sweep.hh"
#include "core/workload.hh"
#include "sim/trace/trace_io.hh"

namespace swcc
{
namespace
{

namespace fs = std::filesystem;

std::string
freshPath(const std::string &name)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    fs::remove(path);
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

bool
sameBits(double a, double b)
{
    std::uint64_t ua = 0, ub = 0;
    std::memcpy(&ua, &a, sizeof(ua));
    std::memcpy(&ub, &b, sizeof(ub));
    return ua == ub;
}

// ---------------------------------------------------------------------
// Cell identity hashing.

TEST(CampaignCellKeyTest, SameFieldsSameHash)
{
    const std::uint64_t a = campaign::CellKey("sweep")
        .add("shd").add(0.25).add(std::uint64_t{16}).hash();
    const std::uint64_t b = campaign::CellKey("sweep")
        .add("shd").add(0.25).add(std::uint64_t{16}).hash();
    EXPECT_EQ(a, b);
}

TEST(CampaignCellKeyTest, FieldOrderAndValuesMatter)
{
    const std::uint64_t base = campaign::CellKey("sweep")
        .add("shd").add(0.25).hash();
    EXPECT_NE(base,
              campaign::CellKey("sweep").add(0.25).add("shd").hash());
    EXPECT_NE(base,
              campaign::CellKey("sweep").add("shd").add(0.26).hash());
    EXPECT_NE(base,
              campaign::CellKey("other").add("shd").add(0.25).hash());
    // Field framing: ("ab", "c") must not collide with ("a", "bc").
    EXPECT_NE(campaign::CellKey("d").add("ab").add("c").hash(),
              campaign::CellKey("d").add("a").add("bc").hash());
}

TEST(CampaignCellKeyTest, DoublesAreCanonicalised)
{
    // -0.0 and +0.0 compare equal, so they must hash equal; any NaN
    // collapses to one canonical bit pattern.
    EXPECT_EQ(campaign::CellKey("k").add(-0.0).hash(),
              campaign::CellKey("k").add(0.0).hash());
    const double nan1 = std::numeric_limits<double>::quiet_NaN();
    const double nan2 = std::nan("0x5");
    EXPECT_EQ(campaign::CellKey("k").add(nan1).hash(),
              campaign::CellKey("k").add(nan2).hash());
}

TEST(CampaignCellKeyTest, WorkloadParamsChangeTheHash)
{
    WorkloadParams a = middleParams();
    WorkloadParams b = middleParams();
    EXPECT_EQ(campaign::CellKey("k").add(a).hash(),
              campaign::CellKey("k").add(b).hash());
    b.shd += 0.01;
    EXPECT_NE(campaign::CellKey("k").add(a).hash(),
              campaign::CellKey("k").add(b).hash());
}

// ---------------------------------------------------------------------
// Atomic artifact writes.

TEST(CampaignAtomicFileTest, WritesContentAndLeavesNoTempFiles)
{
    const std::string path = freshPath("atomic_basic.txt");
    campaign::atomicWriteFile(
        path, [](std::ostream &os) { os << "hello\nworld\n"; });
    EXPECT_EQ(slurp(path), "hello\nworld\n");
    // Only look for temporaries of *this* destination: the shared
    // temp directory can transiently hold another test's in-flight
    // .tmp. file when ctest runs suites in parallel.
    for (const auto &entry :
         fs::directory_iterator(fs::path(path).parent_path())) {
        EXPECT_EQ(entry.path().string().find("atomic_basic.txt.tmp."),
                  std::string::npos)
            << "leftover temporary: " << entry.path();
    }
}

TEST(CampaignAtomicFileTest, CreatesMissingParentDirectories)
{
    const std::string root = freshPath("atomic_tree");
    fs::remove_all(root);
    const std::string path = root + "/a/b/c/nested.txt";
    campaign::atomicWriteFile(
        path, [](std::ostream &os) { os << "deep\n"; });
    EXPECT_EQ(slurp(path), "deep\n");
    // A second write through the now-existing tree also works.
    campaign::atomicWriteFile(
        path, [](std::ostream &os) { os << "deeper\n"; });
    EXPECT_EQ(slurp(path), "deeper\n");
    fs::remove_all(root);
}

TEST(CampaignAtomicFileTest, FailedWriteLeavesDestinationUntouched)
{
    const std::string path = freshPath("atomic_fail.txt");
    campaign::atomicWriteFile(path,
                              [](std::ostream &os) { os << "v1"; });
    EXPECT_THROW(campaign::atomicWriteFile(
                     path,
                     [](std::ostream &os) {
                         os << "partial v2";
                         throw std::runtime_error("writer died");
                     }),
                 std::runtime_error);
    EXPECT_EQ(slurp(path), "v1");
}

// ---------------------------------------------------------------------
// Journal round trips.

TEST(CampaignJournalTest, RoundTripsExactDoubleBits)
{
    const std::string path = freshPath("journal_roundtrip.journal");
    const std::vector<double> values = {
        1.0,
        -0.0,
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::denorm_min(),
        -123.456789012345678,
    };
    {
        campaign::Journal journal(path, false);
        journal.append(0xdeadbeefu, values);
    }
    const auto loaded = campaign::Journal::load(path);
    ASSERT_EQ(loaded.size(), 1u);
    const auto it = loaded.find(0xdeadbeefu);
    ASSERT_NE(it, loaded.end());
    ASSERT_EQ(it->second.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_TRUE(sameBits(it->second[i], values[i]))
            << "value " << i << " changed bits across the journal";
    }
}

TEST(CampaignJournalTest, LastRecordWinsForDuplicateKeys)
{
    const std::string path = freshPath("journal_dup.journal");
    {
        campaign::Journal journal(path, false);
        journal.append(7, {1.0});
        journal.append(7, {2.0});
    }
    const auto loaded = campaign::Journal::load(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.at(7).front(), 2.0);
}

TEST(CampaignJournalTest, TornTailRecordIsDropped)
{
    const std::string path = freshPath("journal_torn.journal");
    {
        campaign::Journal journal(path, false);
        journal.append(1, {1.0});
        journal.append(2, {2.0});
    }
    {
        // Simulate a crash mid-append: half a record at the tail.
        std::ofstream os(path, std::ios::app | std::ios::binary);
        os << "00000000000000c8 2 3ff00000000";
    }
    const auto loaded = campaign::Journal::load(path);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_TRUE(loaded.count(1));
    EXPECT_TRUE(loaded.count(2));
}

TEST(CampaignJournalTest, CorruptionStopsTheScan)
{
    const std::string path = freshPath("journal_corrupt.journal");
    {
        campaign::Journal journal(path, false);
        journal.append(1, {1.0});
        journal.append(2, {2.0});
        journal.append(3, {3.0});
    }
    std::string text = slurp(path);
    // Flip one hex digit inside the second record's value field.
    const std::size_t second = text.find('\n', text.find('\n') + 1) + 1;
    const std::size_t digit = text.find(' ', second) + 3;
    text[digit] = text[digit] == 'f' ? '0' : 'f';
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << text;
    }
    // Everything before the damage survives; nothing after is trusted.
    const auto loaded = campaign::Journal::load(path);
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.count(1));
}

TEST(CampaignJournalTest, MissingFileLoadsEmpty)
{
    EXPECT_TRUE(
        campaign::Journal::load(freshPath("journal_missing.journal"))
            .empty());
}

// ---------------------------------------------------------------------
// Fault injection.

class CampaignFaultsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        campaign::clearFaults();
    }

    void
    TearDown() override
    {
        campaign::clearFaults();
    }
};

TEST_F(CampaignFaultsTest, BadSpecsAreRejected)
{
    EXPECT_THROW(campaign::configureFaults("bogus-site:1", 1),
                 std::invalid_argument);
    EXPECT_THROW(campaign::configureFaults("solver-bus", 1),
                 std::invalid_argument);
    EXPECT_THROW(campaign::configureFaults("solver-bus:abc", 1),
                 std::invalid_argument);
    EXPECT_THROW(campaign::configureFaults("solver-bus:150%", 1),
                 std::invalid_argument);
}

TEST_F(CampaignFaultsTest, CountModeFiresAnExactWindow)
{
    campaign::configureFaults("solver-net:2@3", 1);
    const std::uint64_t before =
        campaign::injectedCount(campaign::FaultSite::SolverNet);
    std::vector<bool> fired;
    for (int i = 0; i < 10; ++i) {
        bool threw = false;
        try {
            campaign::checkFault(campaign::FaultSite::SolverNet);
        } catch (const campaign::SolverNonConvergence &) {
            threw = true;
        }
        fired.push_back(threw);
    }
    const std::vector<bool> expected = {
        false, false, false, true, true,
        false, false, false, false, false,
    };
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(campaign::injectedCount(campaign::FaultSite::SolverNet),
              before + 2);
}

TEST_F(CampaignFaultsTest, ProbabilityModeIsSeedDeterministic)
{
    auto pattern = [](std::uint64_t seed) {
        campaign::clearFaults();
        campaign::configureFaults("solver-bus:50%", seed);
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i) {
            bool threw = false;
            try {
                campaign::checkFault(campaign::FaultSite::SolverBus);
            } catch (const campaign::SolverNonConvergence &) {
                threw = true;
            }
            fired.push_back(threw);
        }
        return fired;
    };
    EXPECT_EQ(pattern(42), pattern(42));
}

TEST_F(CampaignFaultsTest, SitesThrowTheirCharacteristicExceptions)
{
    campaign::configureFaults(
        "trace-io:1,task-kill:1,task-timeout:1", 1);
    EXPECT_THROW(campaign::checkFault(campaign::FaultSite::TraceIo),
                 campaign::InjectedIoFailure);
    EXPECT_THROW(campaign::checkFault(campaign::FaultSite::TaskKill),
                 campaign::TaskKilled);
    EXPECT_THROW(campaign::checkFault(campaign::FaultSite::TaskTimeout),
                 TaskTimeoutError);
}

TEST_F(CampaignFaultsTest, TraceLoadHonoursInjectedIoFailure)
{
    const std::string path = freshPath("faulty_trace.txt");
    TraceBuffer trace;
    trace.append({0x100, 0, RefType::Load});
    saveTrace(trace, path);

    campaign::configureFaults("trace-io:1", 1);
    EXPECT_THROW(loadTrace(path), campaign::InjectedIoFailure);
    // The injection window is spent; the retry succeeds.
    const TraceBuffer reloaded = loadTrace(path);
    EXPECT_EQ(reloaded.size(), 1u);
}

// ---------------------------------------------------------------------
// runCells: retry, poison, resume.

class CampaignRunCellsTest : public CampaignFaultsTest
{
  protected:
    /** Deterministic two-wide cell payload. */
    static std::vector<double>
    payload(std::size_t i)
    {
        const double x = static_cast<double>(i);
        return {x * 1.5 + 0.25, std::sqrt(x + 1.0)};
    }

    static std::uint64_t
    keyOf(std::size_t i)
    {
        return campaign::CellKey("test")
            .add(static_cast<std::uint64_t>(i))
            .hash();
    }
};

TEST_F(CampaignRunCellsTest, ComputesEveryCellWithoutJournal)
{
    campaign::CampaignReport report;
    const auto results = campaign::runCells(
        8, 2, keyOf, [](std::size_t i) { return payload(i); },
        campaign::CampaignOptions{}, &report);
    ASSERT_EQ(results.size(), 8u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i], payload(i));
    }
    EXPECT_EQ(report.cells, 8u);
    EXPECT_EQ(report.executed, 8u);
    EXPECT_EQ(report.fromJournal, 0u);
    EXPECT_EQ(report.retries, 0u);
}

TEST_F(CampaignRunCellsTest, ResumeUsesTheJournalInsteadOfEval)
{
    campaign::CampaignOptions options;
    options.journalPath = freshPath("runcells_resume.journal");
    const auto first = campaign::runCells(
        6, 2, keyOf, [](std::size_t i) { return payload(i); }, options);

    options.resume = true;
    campaign::CampaignReport report;
    const auto second = campaign::runCells(
        6, 2, keyOf,
        [](std::size_t i) -> std::vector<double> {
            ADD_FAILURE() << "cell " << i
                          << " recomputed despite a full journal";
            return payload(i);
        },
        options, &report);
    EXPECT_EQ(report.fromJournal, 6u);
    EXPECT_EQ(report.executed, 0u);
    for (std::size_t i = 0; i < 6; ++i) {
        ASSERT_EQ(second[i].size(), first[i].size());
        for (std::size_t j = 0; j < first[i].size(); ++j) {
            EXPECT_TRUE(sameBits(second[i][j], first[i][j]));
        }
    }
}

TEST_F(CampaignRunCellsTest, KillThenResumeIsByteIdentical)
{
    const auto baseline = campaign::runCells(
        10, 2, keyOf, [](std::size_t i) { return payload(i); },
        campaign::CampaignOptions{});

    campaign::CampaignOptions options;
    options.journalPath = freshPath("runcells_kill.journal");
    options.faultSpec = "task-kill:1@4"; // Kill the 5th task started.
    EXPECT_THROW(campaign::runCells(
                     10, 2, keyOf,
                     [](std::size_t i) { return payload(i); }, options),
                 FatalTaskError);

    // "New process": fault config gone, resume from the journal.
    campaign::clearFaults();
    options.faultSpec.clear();
    options.resume = true;
    campaign::CampaignReport report;
    const auto resumed = campaign::runCells(
        10, 2, keyOf, [](std::size_t i) { return payload(i); },
        options, &report);

    EXPECT_GT(report.fromJournal, 0u);
    EXPECT_EQ(report.fromJournal + report.executed, 10u);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        ASSERT_EQ(resumed[i].size(), baseline[i].size());
        for (std::size_t j = 0; j < baseline[i].size(); ++j) {
            EXPECT_TRUE(sameBits(resumed[i][j], baseline[i][j]))
                << "cell " << i << " value " << j
                << " differs after resume";
        }
    }
}

TEST_F(CampaignRunCellsTest, RetriesRecoverInjectedSolverFaults)
{
    const std::uint64_t before =
        campaign::injectedCount(campaign::FaultSite::SolverBus);
    campaign::CampaignOptions options;
    options.faultSpec = "solver-bus:2";
    campaign::CampaignReport report;
    const auto results = campaign::runCells(
        4, 2, keyOf,
        [](std::size_t i) {
            campaign::checkFault(campaign::FaultSite::SolverBus);
            return payload(i);
        },
        options, &report);
    // Exactly two injections, both recovered by retries: no poison,
    // every cell correct.
    EXPECT_EQ(campaign::injectedCount(campaign::FaultSite::SolverBus),
              before + 2);
    EXPECT_EQ(report.retries, 2u);
    EXPECT_EQ(report.poisoned, 0u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i], payload(i));
    }
}

TEST_F(CampaignRunCellsTest, ExhaustedRetriesPoisonTheCell)
{
    campaign::CampaignOptions options;
    options.faultSpec = "solver-bus:1000";
    options.policy.maxRetries = 1;
    options.journalPath = freshPath("runcells_poison.journal");
    campaign::CampaignReport report;
    const auto results = campaign::runCells(
        3, 2, keyOf,
        [](std::size_t i) {
            campaign::checkFault(campaign::FaultSite::SolverBus);
            return payload(i);
        },
        options, &report);
    EXPECT_EQ(report.poisoned, 3u);
    EXPECT_EQ(report.retries, 3u); // One retry per cell, then poison.
    for (const auto &row : results) {
        ASSERT_EQ(row.size(), 2u);
        EXPECT_TRUE(std::isnan(row[0]));
        EXPECT_TRUE(std::isnan(row[1]));
    }

    // Poisoned cells are journaled, so a resumed run reproduces the
    // same NaN rows without re-running the failing cells.
    campaign::clearFaults();
    options.faultSpec.clear();
    options.resume = true;
    campaign::CampaignReport resumed_report;
    const auto resumed = campaign::runCells(
        3, 2, keyOf,
        [](std::size_t i) -> std::vector<double> {
            ADD_FAILURE() << "poisoned cell " << i << " recomputed";
            return payload(i);
        },
        options, &resumed_report);
    EXPECT_EQ(resumed_report.fromJournal, 3u);
    for (const auto &row : resumed) {
        EXPECT_TRUE(std::isnan(row[0]));
    }
}

TEST_F(CampaignRunCellsTest, InjectedTimeoutIsRetriedAndCounted)
{
    campaign::CampaignOptions options;
    options.faultSpec = "task-timeout:1";
    campaign::CampaignReport report;
    const auto results = campaign::runCells(
        2, 2, keyOf, [](std::size_t i) { return payload(i); },
        options, &report);
    EXPECT_EQ(report.timeouts, 1u);
    EXPECT_EQ(report.retries, 1u);
    EXPECT_EQ(report.poisoned, 0u);
    EXPECT_EQ(results[0], payload(0));
    EXPECT_EQ(results[1], payload(1));
}

TEST_F(CampaignRunCellsTest, MeasuredOverrunPoisonsTheCell)
{
    campaign::CampaignOptions options;
    options.policy.timeoutMs = 1;
    options.policy.maxRetries = 0;
    campaign::CampaignReport report;
    const auto results = campaign::runCells(
        1, 1,
        [](std::size_t) { return std::uint64_t{99}; },
        [](std::size_t) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(30));
            return std::vector<double>{1.0};
        },
        options, &report);
    EXPECT_EQ(report.timeouts, 1u);
    EXPECT_EQ(report.poisoned, 1u);
    EXPECT_TRUE(std::isnan(results[0][0]));
}

// ---------------------------------------------------------------------
// The real drivers on top of runCells.

// ---------------------------------------------------------------------
// Group-commit journal + batched cells.

TEST(CampaignJournalTest, SyncMakesEarlierAppendsDurable)
{
    const std::string path = freshPath("journal_sync.journal");
    campaign::Journal journal(path, false);
    for (std::uint64_t k = 0; k < 200; ++k) {
        journal.append(k, {static_cast<double>(k) * 0.125, -1.5});
    }
    journal.sync();
    // The journal is still open: sync() alone must have made every
    // earlier append visible to a reader (or a post-crash load).
    const auto loaded = campaign::Journal::load(path);
    ASSERT_EQ(loaded.size(), 200u);
    for (std::uint64_t k = 0; k < 200; ++k) {
        ASSERT_TRUE(loaded.count(k)) << "record " << k << " missing";
        EXPECT_TRUE(sameBits(loaded.at(k)[0],
                             static_cast<double>(k) * 0.125));
    }
}

TEST_F(CampaignRunCellsTest, BatchedCellsKillThenResumeIsByteIdentical)
{
    const auto baseline = campaign::runCells(
        32, 2, keyOf, [](std::size_t i) { return payload(i); },
        campaign::CampaignOptions{});

    campaign::CampaignOptions options;
    options.journalPath = freshPath("runcells_batched_kill.journal");
    options.cellsPerTask = 5; // Several cells share each task.
    options.faultSpec = "task-kill:1@11";
    EXPECT_THROW(campaign::runCells(
                     32, 2, keyOf,
                     [](std::size_t i) { return payload(i); }, options),
                 FatalTaskError);

    // Cells that completed before the kill — including ones queued in
    // the committer at unwind time — must be durable in the journal.
    campaign::clearFaults();
    options.faultSpec.clear();
    options.resume = true;
    campaign::CampaignReport report;
    const auto resumed = campaign::runCells(
        32, 2, keyOf, [](std::size_t i) { return payload(i); },
        options, &report);
    EXPECT_GT(report.fromJournal, 0u);
    EXPECT_EQ(report.fromJournal + report.executed, 32u);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        for (std::size_t j = 0; j < baseline[i].size(); ++j) {
            EXPECT_TRUE(sameBits(resumed[i][j], baseline[i][j]))
                << "cell " << i << " value " << j
                << " differs after batched resume";
        }
    }
}

TEST_F(CampaignRunCellsTest, BatchedCellsKeepPerCellRetryAccounting)
{
    const std::uint64_t before =
        campaign::injectedCount(campaign::FaultSite::SolverBus);
    campaign::CampaignOptions options;
    options.cellsPerTask = 4;
    options.faultSpec = "solver-bus:2";
    campaign::CampaignReport report;
    const auto results = campaign::runCells(
        10, 2, keyOf,
        [](std::size_t i) {
            campaign::checkFault(campaign::FaultSite::SolverBus);
            return payload(i);
        },
        options, &report);
    // A failing cell inside a batch retries alone; its batch-mates
    // complete normally and exactly once.
    EXPECT_EQ(campaign::injectedCount(campaign::FaultSite::SolverBus),
              before + 2);
    EXPECT_EQ(report.retries, 2u);
    EXPECT_EQ(report.poisoned, 0u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i], payload(i));
    }
}

TEST_F(CampaignRunCellsTest, CellsPerTaskEnvKnobIsParsed)
{
    ::setenv("SWCC_CELLS_PER_TASK", "7", 1);
    const auto options = campaign::envCampaignOptions("env_knob");
    ::unsetenv("SWCC_CELLS_PER_TASK");
    EXPECT_EQ(options.cellsPerTask, 7u);
}

TEST_F(CampaignRunCellsTest, SweepGridKillThenResumeIsByteIdentical)
{
    const std::vector<Scheme> schemes = {
        Scheme::Base, Scheme::Dragon, Scheme::SoftwareFlush,
        Scheme::NoCache,
    };
    const std::vector<double> values = linspace(0.05, 0.5, 7);
    const WorkloadParams base = middleParams();

    const auto baseline =
        sweepPowerGrid(ParamId::Shd, false, values, base, 16, schemes,
                       campaign::CampaignOptions{});

    campaign::CampaignOptions options;
    options.journalPath = freshPath("sweep_kill.journal");
    options.faultSpec = "task-kill:1@3";
    EXPECT_THROW(sweepPowerGrid(ParamId::Shd, false, values, base, 16,
                                schemes, options),
                 FatalTaskError);

    campaign::clearFaults();
    options.faultSpec.clear();
    options.resume = true;
    campaign::CampaignReport report;
    const auto resumed = sweepPowerGrid(ParamId::Shd, false, values,
                                        base, 16, schemes, options,
                                        &report);
    EXPECT_GT(report.fromJournal, 0u);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_TRUE(sameBits(resumed[i].value, baseline[i].value));
        ASSERT_EQ(resumed[i].power.size(), baseline[i].power.size());
        for (std::size_t s = 0; s < baseline[i].power.size(); ++s) {
            EXPECT_TRUE(
                sameBits(resumed[i].power[s], baseline[i].power[s]))
                << "row " << i << " scheme " << s;
        }
    }
}

TEST_F(CampaignRunCellsTest, SensitivityResumeMatchesBaseline)
{
    SensitivityConfig config;
    config.processors = 8;

    const auto baseline = sensitivityTable(config);

    campaign::CampaignOptions options;
    options.journalPath = freshPath("sensitivity_kill.journal");
    options.faultSpec = "task-kill:1@10";
    EXPECT_THROW(sensitivityTable(config, options), FatalTaskError);

    campaign::clearFaults();
    options.faultSpec.clear();
    options.resume = true;
    campaign::CampaignReport report;
    const auto resumed = sensitivityTable(config, options, &report);
    EXPECT_GT(report.fromJournal, 0u);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(resumed[i].param, baseline[i].param);
        EXPECT_EQ(resumed[i].scheme, baseline[i].scheme);
        EXPECT_TRUE(
            sameBits(resumed[i].timeLow, baseline[i].timeLow));
        EXPECT_TRUE(
            sameBits(resumed[i].timeHigh, baseline[i].timeHigh));
        EXPECT_TRUE(sameBits(resumed[i].percentChange,
                             baseline[i].percentChange));
    }
}

} // namespace
} // namespace swcc
