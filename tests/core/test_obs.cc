/**
 * @file
 * Unit tests for the observability layer: metrics registry shard
 * merging, the leveled logger, the JSON parser / Chrome-trace
 * validator, the span recorder, and the progress reporter.
 *
 * Every test must pass under both SWCC_OBS=ON and SWCC_OBS=OFF; where
 * recording compiles away, the expected values switch on
 * obs::compiledIn() (exports stay valid, they just read zero/empty).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/obs/obs.hh"

namespace swcc
{
namespace
{

/** Snapshot entry by name; fails the test if absent. */
obs::MetricSnapshot
findMetric(const std::string &name)
{
    for (const obs::MetricSnapshot &snap : obs::metrics().snapshot()) {
        if (snap.name == name) {
            return snap;
        }
    }
    ADD_FAILURE() << "metric '" << name << "' not in snapshot";
    return {};
}

/** Restores the default log sink and level on scope exit. */
struct LogCaptureGuard
{
    std::ostringstream captured;
    obs::LogLevel saved = obs::logLevel();

    LogCaptureGuard() { obs::setLogSink(&captured); }
    ~LogCaptureGuard()
    {
        obs::setLogSink(nullptr);
        obs::setLogLevel(saved);
    }
};

TEST(MetricsTest, CountersSumAcrossThreads)
{
    obs::metrics().resetForTest();
    obs::Counter &hits = obs::metrics().counter("test.obs.hits");

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 750; ++i) {
                hits.add();
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }

    const obs::MetricSnapshot snap = findMetric("test.obs.hits");
    EXPECT_EQ(snap.kind, obs::MetricSnapshot::Kind::Counter);
    EXPECT_EQ(snap.value, obs::compiledIn() ? 3000.0 : 0.0);
}

TEST(MetricsTest, RegistrationIsIdempotentAndKindChecked)
{
    obs::Counter &a = obs::metrics().counter("test.obs.idem");
    obs::Counter &b = obs::metrics().counter("test.obs.idem");
    EXPECT_EQ(&a, &b);
    EXPECT_THROW(obs::metrics().gauge("test.obs.idem"),
                 std::logic_error);
    EXPECT_THROW(obs::metrics().histogram("test.obs.idem", {1.0}),
                 std::logic_error);
}

TEST(MetricsTest, HistogramBucketsAndSum)
{
    obs::metrics().resetForTest();
    obs::Histogram &widths =
        obs::metrics().histogram("test.obs.widths", {1.0, 10.0, 100.0});
    widths.observe(0.5);   // bucket 0 (<= 1)
    widths.observe(5.0);   // bucket 1 (<= 10)
    widths.observe(50.0);  // bucket 2 (<= 100)
    widths.observe(500.0); // bucket 3 (+inf)
    widths.observe(500.0); // bucket 3 (+inf)

    const obs::MetricSnapshot snap = findMetric("test.obs.widths");
    EXPECT_EQ(snap.kind, obs::MetricSnapshot::Kind::Histogram);
    ASSERT_EQ(snap.bounds.size(), 3u);
    ASSERT_EQ(snap.counts.size(), 4u);
    if (obs::compiledIn()) {
        EXPECT_EQ(snap.counts[0], 1u);
        EXPECT_EQ(snap.counts[1], 1u);
        EXPECT_EQ(snap.counts[2], 1u);
        EXPECT_EQ(snap.counts[3], 2u);
        EXPECT_EQ(snap.count, 5u);
        EXPECT_DOUBLE_EQ(snap.sum, 1055.5);
    } else {
        EXPECT_EQ(snap.count, 0u);
    }
}

TEST(MetricsTest, HistogramRejectsBadBounds)
{
    EXPECT_THROW(obs::metrics().histogram("test.obs.empty", {}),
                 std::logic_error);
    EXPECT_THROW(
        obs::metrics().histogram("test.obs.unsorted", {2.0, 1.0}),
        std::logic_error);
}

TEST(MetricsTest, JsonExportParses)
{
    obs::metrics().counter("test.obs.export\"quoted").add(7);
    std::ostringstream os;
    obs::writeMetricsJson(os);
    const obs::JsonValue doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.isObject());
    const obs::JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->isArray());
    bool found = false;
    for (const obs::JsonValue &entry : metrics->array) {
        const obs::JsonValue *name = entry.find("name");
        ASSERT_NE(name, nullptr);
        if (name->string == "test.obs.export\"quoted") {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(MetricsTest, CsvExportQuotesHostileNames)
{
    // RFC-4180 round trip: a name containing the separator, quotes,
    // and a newline must come back intact from the CSV export.
    const std::string hostile = "test.obs,csv\"quoted\"\nname";
    obs::metrics().counter(hostile).add(3);
    std::ostringstream os;
    obs::writeMetricsCsv(os);
    const std::string text = os.str();

    // The quoted form: field wrapped in quotes, inner quotes doubled.
    const std::string quoted = "\"test.obs,csv\"\"quoted\"\"\nname\"";
    const std::size_t at = text.find(quoted);
    ASSERT_NE(at, std::string::npos) << text;

    // Un-quote the field by hand (the round trip): scan from the
    // opening quote to the closing one, collapsing doubled quotes.
    std::string decoded;
    std::size_t i = at + 1;
    while (i < text.size()) {
        if (text[i] == '"') {
            if (i + 1 < text.size() && text[i + 1] == '"') {
                decoded += '"';
                i += 2;
                continue;
            }
            break;
        }
        decoded += text[i++];
    }
    EXPECT_EQ(decoded, hostile);
    // The rest of the row is ordinary fields.
    EXPECT_EQ(text.compare(at + quoted.size(), 9, ",counter,"), 0)
        << text.substr(at);
}

TEST(LogTest, LevelsFilterAndCaptureCallSite)
{
    LogCaptureGuard guard;
    obs::setLogLevel(obs::LogLevel::Warn);
    SWCC_LOG_DEBUG("invisible");
    SWCC_LOG_WARN("something fell back");
    const std::string text = guard.captured.str();
    EXPECT_EQ(text.find("invisible"), std::string::npos);
    EXPECT_NE(text.find("[warn]"), std::string::npos);
    EXPECT_NE(text.find("test_obs.cc:"), std::string::npos);
    EXPECT_NE(text.find("something fell back"), std::string::npos);
}

TEST(LogTest, LazyMessageIsNotEvaluatedBelowLevel)
{
    LogCaptureGuard guard;
    obs::setLogLevel(obs::LogLevel::Error);
    int evaluations = 0;
    const auto expensive = [&] {
        ++evaluations;
        return std::string("built");
    };
    SWCC_LOG_WARN(expensive());
    EXPECT_EQ(evaluations, 0);
    SWCC_LOG_ERROR(expensive());
    EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, ParseLogLevelRoundTrips)
{
    for (obs::LogLevel level :
         {obs::LogLevel::Trace, obs::LogLevel::Debug,
          obs::LogLevel::Info, obs::LogLevel::Warn,
          obs::LogLevel::Error, obs::LogLevel::Off}) {
        const auto parsed =
            obs::parseLogLevel(obs::logLevelName(level));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, level);
    }
    EXPECT_FALSE(obs::parseLogLevel("verbose").has_value());
}

TEST(JsonTest, ParsesTheWholeLanguage)
{
    const obs::JsonValue doc = obs::parseJson(
        R"({"a": [1, -2.5e3, "x\n\"yA"], "b": {"c": true},)"
        R"( "d": null})");
    ASSERT_TRUE(doc.isObject());
    const obs::JsonValue *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[1].number, -2500.0);
    EXPECT_EQ(a->array[2].string, "x\n\"yA");
    const obs::JsonValue *c = doc.find("b")->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->boolean);
    EXPECT_TRUE(doc.find("d")->isNull());
}

TEST(JsonTest, RejectsMalformedDocuments)
{
    EXPECT_THROW(obs::parseJson(""), std::runtime_error);
    EXPECT_THROW(obs::parseJson("{"), std::runtime_error);
    EXPECT_THROW(obs::parseJson("[1,]"), std::runtime_error);
    EXPECT_THROW(obs::parseJson("{} trailing"), std::runtime_error);
    EXPECT_THROW(obs::parseJson("\"unterminated"), std::runtime_error);
}

TEST(JsonTest, ChromeValidatorCatchesViolations)
{
    std::string error;

    const obs::JsonValue good = obs::parseJson(R"({"traceEvents": [
        {"name":"p","ph":"B","ts":1,"pid":1,"tid":1},
        {"ph":"E","ts":5,"pid":1,"tid":1},
        {"name":"x","ph":"X","ts":6,"dur":2,"pid":1,"tid":1}]})");
    EXPECT_TRUE(obs::validateChromeTrace(good, &error)) << error;

    const obs::JsonValue decreasing = obs::parseJson(R"({"traceEvents": [
        {"name":"a","ph":"X","ts":9,"dur":1,"pid":1,"tid":1},
        {"name":"b","ph":"X","ts":3,"dur":1,"pid":1,"tid":1}]})");
    EXPECT_FALSE(obs::validateChromeTrace(decreasing, nullptr));

    const obs::JsonValue unbalanced = obs::parseJson(R"({"traceEvents": [
        {"name":"p","ph":"B","ts":1,"pid":1,"tid":1}]})");
    EXPECT_FALSE(obs::validateChromeTrace(unbalanced, nullptr));

    const obs::JsonValue orphan_end = obs::parseJson(R"({"traceEvents": [
        {"ph":"E","ts":1,"pid":1,"tid":1}]})");
    EXPECT_FALSE(obs::validateChromeTrace(orphan_end, nullptr));

    const obs::JsonValue negative_dur = obs::parseJson(R"({"traceEvents": [
        {"name":"x","ph":"X","ts":1,"dur":-2,"pid":1,"tid":1}]})");
    EXPECT_FALSE(obs::validateChromeTrace(negative_dur, nullptr));
}

TEST(TraceRecorderTest, EmitsValidChromeTrace)
{
    obs::TraceRecorder &trc = obs::tracer();
    trc.clearForTest();
    trc.setEnabled(true);
    const std::uint32_t work = trc.intern("work");
    const std::uint32_t mark = trc.intern("mark");
    const std::uint32_t load = trc.intern("load");
    if (trc.enabled()) {
        // Out-of-order appends on one stream: emission must sort.
        trc.recordComplete(work, 2, 0, 50.0, 10.0);
        trc.recordComplete(work, 2, 0, 10.0, 5.0);
        trc.recordInstant(mark, 2, 1, 30.0);
        trc.recordCounter(load, 2, 1, 40.0, 0.75);
        trc.recordBegin(work, obs::TraceRecorder::kWallPid,
                        trc.callerTid(), 1.0);
        trc.recordEnd(obs::TraceRecorder::kWallPid, trc.callerTid(),
                      2.0);
        trc.setProcessName(2, "sim");
        trc.setThreadName(2, 0, "cpu 0");
    }
    std::ostringstream os;
    trc.writeChromeTrace(os);
    trc.setEnabled(false);

    std::string error;
    const obs::JsonValue doc = obs::parseJson(os.str());
    EXPECT_TRUE(obs::validateChromeTrace(doc, &error)) << error;

    const obs::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t spans = 0;
    for (const obs::JsonValue &event : events->array) {
        const obs::JsonValue *ph = event.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "X") {
            ++spans;
        }
    }
    EXPECT_EQ(spans, obs::compiledIn() ? 2u : 0u);
}

TEST(TraceRecorderTest, FlowAndAsyncEventsValidate)
{
    // The daemon's per-query chain: an X span per stage, flow events
    // binding them across threads, and an async begin/end pair for the
    // queue residency. The Chrome validator must accept all of it.
    obs::TraceRecorder &trc = obs::tracer();
    trc.clearForTest();
    trc.setEnabled(true);
    const std::uint32_t decode = trc.intern("svc.decode");
    const std::uint32_t solve = trc.intern("svc.solve");
    const std::uint32_t queue = trc.intern("svc.queue");
    const std::uint32_t flow = trc.intern("svc.query");
    if (trc.enabled()) {
        trc.recordComplete(decode, 3, 1, 10.0, 4.0);
        trc.recordFlowStart(flow, 3, 1, 12.0, 77);
        trc.recordAsyncBegin(queue, 3, 1, 14.0, 77);
        trc.recordAsyncEnd(queue, 3, 2, 20.0, 77);
        trc.recordComplete(solve, 3, 2, 20.0, 6.0);
        trc.recordFlowStep(flow, 3, 2, 23.0, 77);
        trc.recordFlowEnd(flow, 3, 1, 30.0, 77);
    }
    std::ostringstream os;
    trc.writeChromeTrace(os);
    trc.setEnabled(false);

    std::string error;
    const obs::JsonValue doc = obs::parseJson(os.str());
    EXPECT_TRUE(obs::validateChromeTrace(doc, &error)) << error;

    const obs::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t flows = 0, asyncs = 0;
    for (const obs::JsonValue &event : events->array) {
        const std::string &ph = event.find("ph")->string;
        if (ph == "s" || ph == "t" || ph == "f") {
            ++flows;
            const obs::JsonValue *id = event.find("id");
            ASSERT_NE(id, nullptr);
            EXPECT_DOUBLE_EQ(id->number, 77.0);
        } else if (ph == "b" || ph == "e") {
            ++asyncs;
        }
    }
    EXPECT_EQ(flows, obs::compiledIn() ? 3u : 0u);
    EXPECT_EQ(asyncs, obs::compiledIn() ? 2u : 0u);
}

TEST(TraceRecorderTest, RingWrapDropsOldestButStaysValid)
{
    obs::TraceRecorder &trc = obs::tracer();
    trc.clearForTest();
    trc.setEnabled(true);
    const std::uint32_t name = trc.intern("wrap");
    if (trc.enabled()) {
        for (int i = 0; i < 500; ++i) {
            trc.recordComplete(name, 2, 7, static_cast<double>(i),
                               0.5);
        }
    }
    std::ostringstream os;
    trc.writeChromeTrace(os);
    trc.setEnabled(false);

    std::string error;
    EXPECT_TRUE(obs::validateChromeTrace(obs::parseJson(os.str()),
                                         &error))
        << error;
    // The default ring holds far more than 500 records, so nothing
    // dropped here; the accounting itself is what we pin.
    EXPECT_EQ(trc.droppedRecords(), 0u);
}

TEST(ProgressTest, ReportsRateAndFinish)
{
    std::ostringstream captured;
    obs::setProgressSink(&captured);
    obs::setProgressEnabled(true);
    {
        obs::ProgressReporter progress("unit", 4);
        progress.tick(4);
        progress.finish();
    }
    obs::setProgressEnabled(false);
    obs::setProgressSink(nullptr);
    const std::string text = captured.str();
    EXPECT_NE(text.find("unit: 4/4"), std::string::npos) << text;
    EXPECT_NE(text.find("100.0%"), std::string::npos) << text;
}

TEST(ProgressTest, DisabledReporterIsSilent)
{
    std::ostringstream captured;
    obs::setProgressSink(&captured);
    obs::setProgressEnabled(false);
    {
        obs::ProgressReporter progress("quiet", 10);
        progress.tick(10);
        progress.finish();
    }
    obs::setProgressSink(nullptr);
    EXPECT_TRUE(captured.str().empty());
}

TEST(CliConfigTest, ConsumeArgsStripsObsFlags)
{
    LogCaptureGuard guard; // restores the level set by --log-level
    std::vector<std::string> storage = {
        "bench", "--log-level=error", "--positional", "--progress",
        "--metrics-out", "", // empty path: nothing pending to write
    };
    std::vector<char *> argv;
    for (std::string &arg : storage) {
        argv.push_back(arg.data());
    }
    argv.push_back(nullptr);
    int argc = static_cast<int>(storage.size());

    obs::consumeArgs(argc, argv.data());
    obs::setProgressEnabled(false);

    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "--positional");
    EXPECT_EQ(argv[2], nullptr);
    EXPECT_EQ(obs::logLevel(), obs::LogLevel::Error);
}

TEST(CliConfigTest, ApplyCliRejectsUnknownLogLevel)
{
    obs::CliConfig config;
    config.logLevel = "shout";
    EXPECT_THROW(obs::applyCli(config), std::invalid_argument);
}

} // namespace
} // namespace swcc
