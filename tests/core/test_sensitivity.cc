/**
 * @file
 * Unit tests for the sensitivity analysis (paper Section 4 / Table 8).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/sensitivity.hh"

namespace swcc
{
namespace
{

double
changeOf(const std::vector<SensitivityEntry> &table, Scheme scheme,
         ParamId param)
{
    for (const SensitivityEntry &entry : table) {
        if (entry.scheme == scheme && entry.param == param) {
            return entry.percentChange;
        }
    }
    ADD_FAILURE() << "missing entry";
    return 0.0;
}

class SensitivityTableTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SensitivityConfig config;
        table_ = new std::vector<SensitivityEntry>(
            sensitivityTable(config));
    }

    static void
    TearDownTestSuite()
    {
        delete table_;
        table_ = nullptr;
    }

    static std::vector<SensitivityEntry> *table_;
};

std::vector<SensitivityEntry> *SensitivityTableTest::table_ = nullptr;

TEST_F(SensitivityTableTest, HasEverySchemeParameterPair)
{
    EXPECT_EQ(table_->size(), kNumParams * kNumPaperSchemes);
}

TEST_F(SensitivityTableTest, AplDominatesSoftwareFlush)
{
    // Paper: "For the Software-Flush scheme, apl has a huge effect."
    const double apl =
        changeOf(*table_, Scheme::SoftwareFlush, ParamId::InvApl);
    for (ParamId other : kAllParams) {
        if (other == ParamId::InvApl) {
            continue;
        }
        EXPECT_GT(std::abs(apl),
                  std::abs(changeOf(*table_, Scheme::SoftwareFlush,
                                    other)))
            << paramName(other);
    }
}

TEST_F(SensitivityTableTest, ShdIsSecondForSoftwareFlush)
{
    const auto ranked = rankedSensitivities(*table_,
                                            Scheme::SoftwareFlush);
    ASSERT_GE(ranked.size(), 2u);
    EXPECT_EQ(ranked[0].param, ParamId::InvApl);
    EXPECT_EQ(ranked[1].param, ParamId::Shd);
}

TEST_F(SensitivityTableTest, LsIsSignificantForSoftwareSchemes)
{
    for (Scheme scheme : {Scheme::SoftwareFlush, Scheme::NoCache}) {
        EXPECT_GT(std::abs(changeOf(*table_, scheme, ParamId::Ls)), 10.0)
            << schemeName(scheme);
    }
}

TEST_F(SensitivityTableTest, AplIsIrrelevantOutsideSoftwareFlush)
{
    for (Scheme scheme : {Scheme::Base, Scheme::NoCache,
                          Scheme::Dragon}) {
        EXPECT_NEAR(changeOf(*table_, scheme, ParamId::InvApl), 0.0,
                    1e-9)
            << schemeName(scheme);
    }
}

TEST_F(SensitivityTableTest, SharingParametersDoNotTouchBase)
{
    for (ParamId param : {ParamId::Shd, ParamId::Wr, ParamId::Mdshd,
                          ParamId::Oclean, ParamId::Opres,
                          ParamId::Nshd}) {
        EXPECT_NEAR(changeOf(*table_, Scheme::Base, param), 0.0, 1e-9)
            << paramName(param);
    }
}

TEST_F(SensitivityTableTest, DragonCaresMoreAboutMissRateThanSharing)
{
    // Paper: "In the Dragon scheme, the overall hit rate is more
    // important than the level of sharing."
    const double miss =
        std::abs(changeOf(*table_, Scheme::Dragon, ParamId::Msdat));
    const double shd =
        std::abs(changeOf(*table_, Scheme::Dragon, ParamId::Shd));
    EXPECT_GT(miss, shd);
}

TEST_F(SensitivityTableTest, WrIsUnimportantEverywhere)
{
    // Paper: "wr was unimportant even with a wide range." In a
    // contended 16-processor system every bus-demand knob moves the
    // execution time somewhat, so the faithful check is relative: wr
    // never ranks among a scheme's top-two parameters.
    for (Scheme scheme : kPaperSchemes) {
        const auto ranked = rankedSensitivities(*table_, scheme);
        for (std::size_t i = 0; i < 2 && i < ranked.size(); ++i) {
            EXPECT_NE(ranked[i].param, ParamId::Wr)
                << schemeName(scheme) << " rank " << i;
        }
    }
}

TEST_F(SensitivityTableTest, SoftwareSchemesAreMoreSensitiveThanDragon)
{
    // The paper's core finding: software schemes react far more
    // strongly to ls and shd than the snoopy scheme does.
    for (ParamId param : {ParamId::Ls, ParamId::Shd}) {
        const double dragon =
            std::abs(changeOf(*table_, Scheme::Dragon, param));
        EXPECT_GT(std::abs(changeOf(*table_, Scheme::NoCache, param)),
                  dragon)
            << paramName(param);
        EXPECT_GT(
            std::abs(changeOf(*table_, Scheme::SoftwareFlush, param)),
            dragon)
            << paramName(param);
    }
}

TEST_F(SensitivityTableTest, EntriesRecordConsistentTimes)
{
    for (const SensitivityEntry &entry : *table_) {
        EXPECT_GT(entry.timeLow, 0.0);
        EXPECT_GT(entry.timeHigh, 0.0);
        const double recomputed =
            100.0 * (entry.timeHigh - entry.timeLow) / entry.timeLow;
        EXPECT_NEAR(entry.percentChange, recomputed, 1e-9);
    }
}

TEST(SensitivityGridTest, GridAveragingRunsAndKeepsSigns)
{
    SensitivityConfig config;
    config.averageOverGrid = true;
    const SensitivityEntry pinned = parameterSensitivity(
        Scheme::SoftwareFlush, ParamId::Shd, SensitivityConfig{});
    const SensitivityEntry averaged = parameterSensitivity(
        Scheme::SoftwareFlush, ParamId::Shd, config);
    EXPECT_GT(pinned.percentChange, 0.0);
    EXPECT_GT(averaged.percentChange, 0.0);
}

TEST(SensitivityRankingTest, RankedListIsSortedByMagnitude)
{
    const auto table = sensitivityTable(SensitivityConfig{});
    const auto ranked = rankedSensitivities(table, Scheme::NoCache);
    ASSERT_EQ(ranked.size(), kNumParams);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_GE(std::abs(ranked[i - 1].percentChange),
                  std::abs(ranked[i].percentChange));
    }
}

} // namespace
} // namespace swcc
