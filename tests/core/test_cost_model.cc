/**
 * @file
 * Unit tests for the system model cost tables (paper Tables 1 and 9).
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"

namespace swcc
{
namespace
{

TEST(BusCostModelTest, MatchesPaperTable1)
{
    const BusCostModel costs;
    const struct
    {
        Operation op;
        double cpu;
        double bus;
    } expected[] = {
        {Operation::InstrExec, 1, 0},
        {Operation::CleanMissMem, 10, 7},
        {Operation::DirtyMissMem, 14, 11},
        {Operation::ReadThrough, 5, 4},
        {Operation::WriteThrough, 2, 1},
        {Operation::CleanFlush, 1, 0},
        {Operation::DirtyFlush, 6, 4},
        {Operation::WriteBroadcast, 2, 1},
        {Operation::CleanMissCache, 9, 6},
        {Operation::DirtyMissCache, 13, 10},
        {Operation::CycleSteal, 1, 0},
    };
    for (const auto &row : expected) {
        const OpCost cost = costs.cost(row.op);
        EXPECT_DOUBLE_EQ(cost.cpu, row.cpu) << operationName(row.op);
        EXPECT_DOUBLE_EQ(cost.channel, row.bus) << operationName(row.op);
    }
}

TEST(BusCostModelTest, SupportsEveryOperation)
{
    const BusCostModel costs;
    for (Operation op : kAllOperations) {
        EXPECT_TRUE(costs.supports(op)) << operationName(op);
    }
}

TEST(BusCostModelTest, ChannelTimeNeverExceedsCpuTime)
{
    const BusCostModel costs;
    for (Operation op : kAllOperations) {
        const OpCost cost = costs.cost(op);
        EXPECT_LE(cost.channel, cost.cpu) << operationName(op);
        EXPECT_GE(cost.channel, 0.0) << operationName(op);
    }
}

TEST(BusCostModelTest, SetCostOverridesForAblations)
{
    BusCostModel costs;
    costs.setCost(Operation::WriteBroadcast, {4.0, 2.0});
    EXPECT_DOUBLE_EQ(costs.cost(Operation::WriteBroadcast).cpu, 4.0);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::WriteBroadcast).channel, 2.0);
}

TEST(BusCostModelTest, SetCostRejectsMalformedCosts)
{
    BusCostModel costs;
    EXPECT_THROW(costs.setCost(Operation::InstrExec, {-1.0, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW(costs.setCost(Operation::InstrExec, {1.0, 2.0}),
                 std::invalid_argument);
}

/** Network costs follow the closed forms of Table 9 for any n. */
class NetworkCostModelTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(NetworkCostModelTest, MatchesPaperTable9)
{
    const unsigned n = GetParam();
    const NetworkCostModel costs(n);
    const double two_n = 2.0 * n;

    EXPECT_DOUBLE_EQ(costs.cost(Operation::InstrExec).cpu, 1.0);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::InstrExec).channel, 0.0);

    EXPECT_DOUBLE_EQ(costs.cost(Operation::CleanMissMem).cpu, 9 + two_n);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::CleanMissMem).channel,
                     6 + two_n);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::DirtyMissMem).cpu, 12 + two_n);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::DirtyMissMem).channel,
                     9 + two_n);

    EXPECT_DOUBLE_EQ(costs.cost(Operation::CleanFlush).cpu, 1.0);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::CleanFlush).channel, 0.0);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::DirtyFlush).cpu, 7 + two_n);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::DirtyFlush).channel,
                     5 + two_n);

    EXPECT_DOUBLE_EQ(costs.cost(Operation::WriteThrough).cpu, 3 + two_n);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::WriteThrough).channel,
                     2 + two_n);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::ReadThrough).cpu, 4 + two_n);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::ReadThrough).channel,
                     3 + two_n);
}

TEST_P(NetworkCostModelTest, SnoopingOperationsAreUnsupported)
{
    const NetworkCostModel costs(GetParam());
    for (Operation op : {Operation::WriteBroadcast,
                         Operation::CleanMissCache,
                         Operation::DirtyMissCache,
                         Operation::CycleSteal}) {
        EXPECT_FALSE(costs.supports(op)) << operationName(op);
        EXPECT_THROW(costs.cost(op), std::invalid_argument)
            << operationName(op);
    }
}

TEST_P(NetworkCostModelTest, ChannelTimeNeverExceedsCpuTime)
{
    const NetworkCostModel costs(GetParam());
    for (Operation op : kAllOperations) {
        if (!costs.supports(op)) {
            continue;
        }
        const OpCost cost = costs.cost(op);
        EXPECT_LE(cost.channel, cost.cpu) << operationName(op);
    }
}

INSTANTIATE_TEST_SUITE_P(Stages, NetworkCostModelTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 10u));

TEST(MachineParamsTest, DefaultsReproduceTable1)
{
    const BusCostModel derived = makeBusCostModel(MachineParams{});
    const BusCostModel table1;
    for (Operation op : kAllOperations) {
        EXPECT_DOUBLE_EQ(derived.cost(op).cpu, table1.cost(op).cpu)
            << operationName(op);
        EXPECT_DOUBLE_EQ(derived.cost(op).channel,
                         table1.cost(op).channel)
            << operationName(op);
    }
}

TEST(MachineParamsTest, DefaultsReproduceTable9)
{
    for (unsigned stages : {1u, 4u, 8u}) {
        const NetworkCostModel derived =
            makeNetworkCostModel(stages, MachineParams{});
        const NetworkCostModel table9(stages);
        for (Operation op : kAllOperations) {
            ASSERT_EQ(derived.supports(op), table9.supports(op))
                << operationName(op);
            if (!derived.supports(op)) {
                continue;
            }
            EXPECT_DOUBLE_EQ(derived.cost(op).cpu,
                             table9.cost(op).cpu)
                << operationName(op) << " n=" << stages;
            EXPECT_DOUBLE_EQ(derived.cost(op).channel,
                             table9.cost(op).channel)
                << operationName(op) << " n=" << stages;
        }
    }
}

TEST(MachineParamsTest, LargerBlocksCostMoreBusTime)
{
    MachineParams big;
    big.blockWords = 8;
    const BusCostModel costs = makeBusCostModel(big);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::CleanMissMem).channel, 11.0);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::DirtyMissMem).channel, 19.0);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::DirtyFlush).channel, 8.0);
    // Word-granularity operations are unaffected.
    EXPECT_DOUBLE_EQ(costs.cost(Operation::ReadThrough).channel, 4.0);
}

TEST(MachineParamsTest, SlowerMemoryStretchesEveryAccess)
{
    MachineParams slow;
    slow.memoryCycles = 10;
    const BusCostModel costs = makeBusCostModel(slow);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::CleanMissMem).channel, 15.0);
    EXPECT_DOUBLE_EQ(costs.cost(Operation::ReadThrough).channel, 12.0);
    // Posted writes do not wait on memory.
    EXPECT_DOUBLE_EQ(costs.cost(Operation::WriteThrough).channel, 1.0);
}

TEST(MachineParamsTest, Validation)
{
    MachineParams bad;
    bad.blockWords = 0;
    EXPECT_THROW(makeBusCostModel(bad), std::invalid_argument);
    bad = MachineParams{};
    bad.memoryCycles = 0;
    EXPECT_THROW(makeNetworkCostModel(4, bad), std::invalid_argument);
}

TEST(NetworkCostModelTest, SetCostMarksSupported)
{
    NetworkCostModel costs(4);
    EXPECT_FALSE(costs.supports(Operation::WriteBroadcast));
    costs.setCost(Operation::WriteBroadcast, {3.0, 2.0});
    EXPECT_TRUE(costs.supports(Operation::WriteBroadcast));
    EXPECT_DOUBLE_EQ(costs.cost(Operation::WriteBroadcast).cpu, 3.0);
}

TEST(NetworkCostModelTest, RejectsZeroStages)
{
    EXPECT_THROW(NetworkCostModel(0), std::invalid_argument);
}

TEST(NetworkCostModelTest, ReportsItsStageCount)
{
    EXPECT_EQ(NetworkCostModel(8).stages(), 8u);
}

} // namespace
} // namespace swcc
