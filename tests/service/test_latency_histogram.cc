/**
 * @file
 * Bucket-boundary and merge tests for the HdrHistogram-style
 * LatencyHistogram (src/service/latency_histogram.hh). The scrape
 * endpoint renders merged per-worker histograms, so merge() must be
 * lossless: merging per-worker histograms has to equal one histogram
 * fed the union of the samples, bucket for bucket.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "service/latency_histogram.hh"

namespace swcc::service
{
namespace
{

/** The bucket index a value lands in, recovered via the public API. */
std::size_t
indexOf(std::uint64_t value)
{
    LatencyHistogram hist;
    hist.record(value);
    const std::vector<std::uint64_t> &buckets = hist.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] != 0) {
            return i;
        }
    }
    ADD_FAILURE() << "record(" << value << ") hit no bucket";
    return 0;
}

TEST(LatencyHistogramTest, SmallValuesAreExact)
{
    // The first 64 buckets are unit-width: the upper bound IS the
    // value, so quantiles of sub-64ns samples are exact.
    for (std::uint64_t v : {0ull, 1ull, 7ull, 63ull}) {
        LatencyHistogram hist;
        hist.record(v);
        EXPECT_EQ(hist.valueAtQuantile(0.5), v);
        EXPECT_EQ(LatencyHistogram::bucketUpperBound(indexOf(v)), v);
    }
}

TEST(LatencyHistogramTest, BucketUpperBoundMapsToItsOwnBucket)
{
    // An upper bound is *inclusive*: recording exactly the bound of
    // bucket i must land in bucket i, and recording bound+1 must not.
    // Walk bounds across several log2 groups.
    for (std::size_t i : {0u, 63u, 64u, 95u, 96u, 200u, 500u, 900u}) {
        const std::uint64_t bound =
            LatencyHistogram::bucketUpperBound(i);
        EXPECT_EQ(indexOf(bound), i) << "bound " << bound;
        EXPECT_EQ(indexOf(bound + 1), i + 1) << "bound " << bound;
    }
}

TEST(LatencyHistogramTest, BoundsAreStrictlyIncreasing)
{
    std::uint64_t prev = LatencyHistogram::bucketUpperBound(0);
    LatencyHistogram probe;
    for (std::size_t i = 1; i < probe.buckets().size(); ++i) {
        const std::uint64_t bound =
            LatencyHistogram::bucketUpperBound(i);
        EXPECT_GT(bound, prev) << "bucket " << i;
        prev = bound;
    }
}

TEST(LatencyHistogramTest, QuantileAtExactBucketEdges)
{
    // Ten observations in ten distinct buckets: quantile q resolves
    // to the ceil(q*10)-th observation's bucket bound, so each edge
    // 0.1, 0.2, ... lands exactly on the next sample's bound.
    std::vector<std::uint64_t> bounds;
    LatencyHistogram hist;
    for (std::size_t i = 100; i < 110; ++i) {
        const std::uint64_t bound =
            LatencyHistogram::bucketUpperBound(i);
        bounds.push_back(bound);
        hist.record(bound);
    }
    ASSERT_EQ(hist.count(), 10u);
    for (int k = 1; k <= 10; ++k) {
        const double q = static_cast<double>(k) / 10.0;
        EXPECT_EQ(hist.valueAtQuantile(q),
                  bounds[static_cast<std::size_t>(k) - 1])
            << "q=" << q;
        // Just past the previous edge, still the k-th sample.
        EXPECT_EQ(hist.valueAtQuantile(q - 0.05),
                  bounds[static_cast<std::size_t>(k) - 1])
            << "q=" << q - 0.05;
    }
    EXPECT_EQ(hist.valueAtQuantile(0.0), bounds.front());
    EXPECT_EQ(hist.valueAtQuantile(1.0), bounds.back());
}

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero)
{
    const LatencyHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.sum(), 0u);
    EXPECT_EQ(hist.mean(), 0.0);
    EXPECT_EQ(hist.minValue(), 0u);
    EXPECT_EQ(hist.maxValue(), 0u);
    EXPECT_EQ(hist.valueAtQuantile(0.99), 0u);
}

TEST(LatencyHistogramTest, MergeOfPartsEqualsUnion)
{
    // Split one sample stream across three "workers"; merging the
    // three must be indistinguishable from one histogram that saw
    // everything — the invariant buildScrape() relies on.
    std::vector<std::uint64_t> samples;
    std::uint64_t v = 3;
    for (int i = 0; i < 400; ++i) {
        samples.push_back(v);
        v = v * 2654435761u % 50000000u; // spread over ~26 log2 groups
    }
    LatencyHistogram whole;
    LatencyHistogram parts[3];
    for (std::size_t i = 0; i < samples.size(); ++i) {
        whole.record(samples[i]);
        parts[i % 3].record(samples[i]);
    }
    LatencyHistogram merged;
    for (const LatencyHistogram &part : parts) {
        merged.merge(part);
    }
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.sum(), whole.sum());
    EXPECT_EQ(merged.minValue(), whole.minValue());
    EXPECT_EQ(merged.maxValue(), whole.maxValue());
    EXPECT_EQ(merged.buckets(), whole.buckets());
    for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        EXPECT_EQ(merged.valueAtQuantile(q), whole.valueAtQuantile(q))
            << "q=" << q;
    }
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity)
{
    LatencyHistogram hist;
    hist.record(100);
    hist.record(200000);
    const std::uint64_t count = hist.count();
    const std::uint64_t sum = hist.sum();

    LatencyHistogram empty;
    hist.merge(empty); // no-op
    EXPECT_EQ(hist.count(), count);
    EXPECT_EQ(hist.sum(), sum);
    EXPECT_EQ(hist.minValue(), 100u);

    empty.merge(hist); // adopt min/max from the non-empty side
    EXPECT_EQ(empty.count(), count);
    EXPECT_EQ(empty.minValue(), 100u);
    EXPECT_EQ(empty.maxValue(), 200000u);
}

} // namespace
} // namespace swcc::service
