/**
 * @file
 * Tests for the ServiceKernel facade and the swccd wire protocol:
 * validation, batch coalescing bitwise identity (including the
 * memo-canonicalized curve length), binary/JSON frame round trips,
 * and the robustness contract (truncated frames, oversized length
 * prefixes, NaN/Inf fields, garbage input).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/scheme_evaluator.hh"
#include "core/solver_cache.hh"
#include "core/types.hh"
#include "core/workload.hh"
#include "service/protocol.hh"
#include "service/service_kernel.hh"

namespace swcc::service
{
namespace
{

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectIdentical(const BusSolution &a, const BusSolution &b)
{
    EXPECT_EQ(a.processors, b.processors);
    EXPECT_TRUE(sameBits(a.cpu, b.cpu));
    EXPECT_TRUE(sameBits(a.bus, b.bus));
    EXPECT_TRUE(sameBits(a.waiting, b.waiting));
    EXPECT_TRUE(sameBits(a.busUtilization, b.busUtilization));
    EXPECT_TRUE(sameBits(a.busQueueLength, b.busQueueLength));
    EXPECT_TRUE(
        sameBits(a.processorUtilization, b.processorUtilization));
    EXPECT_TRUE(sameBits(a.processingPower, b.processingPower));
}

void
expectIdentical(const NetworkSolution &a, const NetworkSolution &b)
{
    EXPECT_EQ(a.stages, b.stages);
    EXPECT_EQ(a.processors, b.processors);
    EXPECT_TRUE(sameBits(a.cpu, b.cpu));
    EXPECT_TRUE(sameBits(a.network, b.network));
    EXPECT_TRUE(sameBits(a.transactionRate, b.transactionRate));
    EXPECT_TRUE(sameBits(a.unitRequestRate, b.unitRequestRate));
    EXPECT_TRUE(sameBits(a.computeFraction, b.computeFraction));
    EXPECT_TRUE(sameBits(a.inputLoad, b.inputLoad));
    EXPECT_TRUE(sameBits(a.acceptance, b.acceptance));
    EXPECT_TRUE(
        sameBits(a.cyclesPerInstruction, b.cyclesPerInstruction));
    EXPECT_TRUE(sameBits(a.waiting, b.waiting));
    EXPECT_TRUE(
        sameBits(a.processorUtilization, b.processorUtilization));
    EXPECT_TRUE(sameBits(a.processingPower, b.processingPower));
}

void
expectIdentical(const QueryResult &a, const QueryResult &b)
{
    ASSERT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.domain, b.domain);
    if (!a.ok) {
        return;
    }
    if (a.domain == QueryDomain::Bus) {
        expectIdentical(a.bus, b.bus);
    } else {
        expectIdentical(a.network, b.network);
    }
}

Query
busQuery(Scheme scheme, unsigned cpus,
         const WorkloadParams &params = middleParams())
{
    Query query;
    query.domain = QueryDomain::Bus;
    query.scheme = scheme;
    query.size = cpus;
    query.params = params;
    return query;
}

Query
networkQuery(Scheme scheme, unsigned stages,
             const WorkloadParams &params = middleParams())
{
    Query query;
    query.domain = QueryDomain::Network;
    query.scheme = scheme;
    query.size = stages;
    query.params = params;
    return query;
}

class ServiceKernelTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setSolverCacheEnabled(true);
        clearSolverCache();
    }

    void
    TearDown() override
    {
        clearSolverCache();
        setSolverCacheEnabled(true);
    }

    ServiceKernel kernel_;
};

TEST_F(ServiceKernelTest, AcceptsAdmissibleQueries)
{
    EXPECT_TRUE(kernel_.validate(busQuery(Scheme::Base, 1)).empty());
    EXPECT_TRUE(
        kernel_.validate(busQuery(Scheme::Dragon, 1024)).empty());
    EXPECT_TRUE(
        kernel_.validate(networkQuery(Scheme::SoftwareFlush, 10))
            .empty());
    EXPECT_TRUE(
        kernel_.validate(networkQuery(Scheme::NoCache, 24)).empty());
}

TEST_F(ServiceKernelTest, RejectsOutOfRangeSizes)
{
    EXPECT_FALSE(kernel_.validate(busQuery(Scheme::Base, 0)).empty());
    EXPECT_FALSE(
        kernel_.validate(busQuery(Scheme::Base, 1025)).empty());
    EXPECT_FALSE(
        kernel_.validate(networkQuery(Scheme::SoftwareFlush, 25))
            .empty());

    const ServiceKernel small(ServiceKernel::Limits{8, 4});
    EXPECT_TRUE(small.validate(busQuery(Scheme::Base, 8)).empty());
    EXPECT_FALSE(small.validate(busQuery(Scheme::Base, 9)).empty());
}

TEST_F(ServiceKernelTest, RejectsSnoopySchemesOnTheNetwork)
{
    // Dragon needs a broadcast bus (paper §6), and the invalidate
    // family and the hybrid snoop the same bus; Base and the software
    // schemes work with any processor-memory interconnect.
    for (Scheme scheme : {Scheme::Dragon, Scheme::Mesi, Scheme::Mesif,
                          Scheme::Moesi, Scheme::Hybrid}) {
        EXPECT_FALSE(
            kernel_.validate(networkQuery(scheme, 6)).empty())
            << schemeName(scheme);
        EXPECT_TRUE(kernel_.validate(busQuery(scheme, 6)).empty())
            << schemeName(scheme);
    }
    EXPECT_TRUE(
        kernel_.validate(networkQuery(Scheme::Base, 6)).empty());
    EXPECT_TRUE(
        kernel_.validate(networkQuery(Scheme::SoftwareFlush, 6))
            .empty());
}

TEST_F(ServiceKernelTest, RejectsNonFiniteAndOutOfDomainParams)
{
    Query query = busQuery(Scheme::Base, 4);
    query.params.shd = std::numeric_limits<double>::quiet_NaN();
    EXPECT_NE(kernel_.validate(query).find("shd"), std::string::npos);

    query = busQuery(Scheme::Base, 4);
    query.params.wr = std::numeric_limits<double>::infinity();
    EXPECT_NE(kernel_.validate(query).find("wr"), std::string::npos);

    query = busQuery(Scheme::Base, 4);
    query.params.md = -0.25;
    EXPECT_FALSE(kernel_.validate(query).empty());
}

TEST_F(ServiceKernelTest, EvaluateMatchesTheDirectSolverBitwise)
{
    for (Scheme scheme : kAllSchemes) {
        const Query query = busQuery(scheme, 12);
        const QueryResult got = kernel_.evaluate(query);
        ASSERT_TRUE(got.ok) << got.error;
        expectIdentical(got.bus,
                        evaluateBus(scheme, query.params, 12));
    }
    const Query query = networkQuery(Scheme::SoftwareFlush, 8);
    const QueryResult got = kernel_.evaluate(query);
    ASSERT_TRUE(got.ok) << got.error;
    expectIdentical(
        got.network,
        evaluateNetwork(Scheme::SoftwareFlush, query.params, 8));
}

TEST_F(ServiceKernelTest, EvaluateReportsInvalidQueriesWithoutThrowing)
{
    const QueryResult got =
        kernel_.evaluate(busQuery(Scheme::Base, 0));
    EXPECT_FALSE(got.ok);
    EXPECT_FALSE(got.error.empty());
}

TEST_F(ServiceKernelTest, BatchIsBitwiseIdenticalToPointEvaluation)
{
    // A mixed batch: several coalescible groups (same workload,
    // different sizes), duplicates within a group, two domains, and
    // distinct workloads that must not be merged.
    std::vector<Query> queries;
    for (unsigned n : {3u, 9u, 17u, 9u, 64u}) {
        queries.push_back(busQuery(Scheme::Dragon, n));
    }
    for (unsigned n : {2u, 11u, 30u}) {
        queries.push_back(
            busQuery(Scheme::Base, n, paramsAtLevel(Level::High)));
    }
    for (unsigned stages : {2u, 5u, 5u, 9u}) {
        queries.push_back(networkQuery(Scheme::SoftwareFlush, stages));
    }
    queries.push_back(busQuery(Scheme::NoCache, 7));

    std::vector<QueryResult> batched(queries.size());
    kernel_.evaluateBatch(queries.data(), queries.size(),
                          batched.data());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        expectIdentical(batched[i], kernel_.evaluate(queries[i]));
    }
}

TEST_F(ServiceKernelTest,
       CanonicalizedCurveLengthStaysBitwiseIdentical)
{
    // With the memo on, a multi-size group solves a curve of length
    // bit_ceil(max) rather than max. The curve prefix contract makes
    // that invisible; compare against memo-DISABLED point solves so
    // nothing is answered from a cache.
    std::vector<Query> queries;
    for (unsigned n : {5u, 23u, 41u}) { // bit_ceil(41) = 64
        queries.push_back(busQuery(Scheme::SoftwareFlush, n));
    }
    std::vector<QueryResult> batched(queries.size());
    kernel_.evaluateBatch(queries.data(), queries.size(),
                          batched.data());

    setSolverCacheEnabled(false);
    for (std::size_t i = 0; i < queries.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        expectIdentical(batched[i], kernel_.evaluate(queries[i]));
    }
    setSolverCacheEnabled(true);
}

TEST_F(ServiceKernelTest, BatchRejectsInvalidMembersIndividually)
{
    std::vector<Query> queries = {
        busQuery(Scheme::Base, 4),
        busQuery(Scheme::Base, 0),    // invalid: zero size
        networkQuery(Scheme::Dragon, 4), // invalid: snoopy on net
        busQuery(Scheme::Base, 16),
    };
    queries.emplace_back(busQuery(Scheme::Base, 8));
    queries.back().params.apl =
        std::numeric_limits<double>::quiet_NaN();

    std::vector<QueryResult> results(queries.size());
    kernel_.evaluateBatch(queries.data(), queries.size(),
                          results.data());
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_FALSE(results[2].ok);
    EXPECT_TRUE(results[3].ok);
    EXPECT_FALSE(results[4].ok);
    expectIdentical(results[0].bus,
                    evaluateBus(Scheme::Base, queries[0].params, 4));
    expectIdentical(results[3].bus,
                    evaluateBus(Scheme::Base, queries[3].params, 16));
}

class ServiceProtocolTest : public ::testing::Test
{
  protected:
    /** Decodes one request, asserting a complete frame came out. */
    RequestFrame
    decodeOne(const std::vector<std::uint8_t> &bytes)
    {
        RequestFrame frame;
        std::string error;
        std::size_t consumed = 0;
        const DecodeStatus status = decodeRequest(
            bytes.data(), bytes.size(), consumed, frame, error);
        EXPECT_EQ(status, DecodeStatus::Frame) << error;
        EXPECT_EQ(consumed, bytes.size());
        return frame;
    }

    std::vector<std::uint8_t>
    toBytes(std::string_view text)
    {
        return std::vector<std::uint8_t>(text.begin(), text.end());
    }
};

TEST_F(ServiceProtocolTest, BinaryQueryRoundTripsBitwise)
{
    Query query = busQuery(Scheme::Dragon, 37,
                           paramsAtLevel(Level::High));
    query.params.apl = 3.7000000000000002; // not representable exactly
    std::vector<std::uint8_t> bytes;
    appendQueryRequest(bytes, query);

    const RequestFrame frame = decodeOne(bytes);
    EXPECT_TRUE(frame.fieldError.empty()) << frame.fieldError;
    EXPECT_FALSE(frame.json);
    EXPECT_EQ(frame.kind, RequestKind::Query);
    EXPECT_EQ(frame.query.domain, query.domain);
    EXPECT_EQ(frame.query.scheme, query.scheme);
    EXPECT_EQ(frame.query.size, query.size);
    EXPECT_TRUE(sameBits(frame.query.params.apl, query.params.apl));
    EXPECT_TRUE(sameBits(frame.query.params.shd, query.params.shd));
    EXPECT_TRUE(sameBits(frame.query.params.nshd, query.params.nshd));
}

TEST_F(ServiceProtocolTest, JsonQueryRoundTripsBitwise)
{
    // formatDouble() emits shortest round-trip decimals, so parsing
    // the JSON form must land on the exact same bits.
    Query query = networkQuery(Scheme::SoftwareFlush, 9,
                               paramsAtLevel(Level::Low));
    query.params.msdat = 0.1; // classic non-dyadic decimal
    const std::vector<std::uint8_t> bytes =
        toBytes(queryToJson(query) + "\n");

    const RequestFrame frame = decodeOne(bytes);
    EXPECT_TRUE(frame.fieldError.empty()) << frame.fieldError;
    EXPECT_TRUE(frame.json);
    EXPECT_EQ(frame.query.domain, query.domain);
    EXPECT_EQ(frame.query.scheme, query.scheme);
    EXPECT_EQ(frame.query.size, query.size);
    EXPECT_TRUE(
        sameBits(frame.query.params.msdat, query.params.msdat));
    EXPECT_TRUE(sameBits(frame.query.params.ls, query.params.ls));
    EXPECT_TRUE(
        sameBits(frame.query.params.oclean, query.params.oclean));
}

TEST_F(ServiceProtocolTest, BusResponseRoundTripsBitwise)
{
    QueryResult result;
    result.ok = true;
    result.domain = QueryDomain::Bus;
    result.bus = evaluateBus(Scheme::Base, middleParams(), 13);
    for (const bool json : {false, true}) {
        SCOPED_TRACE(json ? "json" : "binary");
        std::vector<std::uint8_t> bytes;
        appendQueryResponse(bytes, result, json);
        ResponseFrame frame;
        std::string error;
        std::size_t consumed = 0;
        ASSERT_EQ(decodeResponse(bytes.data(), bytes.size(), consumed,
                                 frame, error),
                  DecodeStatus::Frame)
            << error;
        EXPECT_EQ(consumed, bytes.size());
        ASSERT_TRUE(frame.isQueryResult);
        EXPECT_EQ(frame.status, ResponseStatus::Ok);
        expectIdentical(frame.bus, result.bus);
    }
}

TEST_F(ServiceProtocolTest, NetworkResponseRoundTripsBitwise)
{
    QueryResult result;
    result.ok = true;
    result.domain = QueryDomain::Network;
    result.network =
        evaluateNetwork(Scheme::SoftwareFlush, middleParams(), 7);
    for (const bool json : {false, true}) {
        SCOPED_TRACE(json ? "json" : "binary");
        std::vector<std::uint8_t> bytes;
        appendQueryResponse(bytes, result, json);
        ResponseFrame frame;
        std::string error;
        std::size_t consumed = 0;
        ASSERT_EQ(decodeResponse(bytes.data(), bytes.size(), consumed,
                                 frame, error),
                  DecodeStatus::Frame)
            << error;
        ASSERT_TRUE(frame.isQueryResult);
        expectIdentical(frame.network, result.network);
    }
}

TEST_F(ServiceProtocolTest, ErrorResponseRoundTrips)
{
    QueryResult result;
    result.error = "machine size must be at least 1";
    for (const bool json : {false, true}) {
        SCOPED_TRACE(json ? "json" : "binary");
        std::vector<std::uint8_t> bytes;
        appendQueryResponse(bytes, result, json);
        ResponseFrame frame;
        std::string error;
        std::size_t consumed = 0;
        ASSERT_EQ(decodeResponse(bytes.data(), bytes.size(), consumed,
                                 frame, error),
                  DecodeStatus::Frame)
            << error;
        EXPECT_FALSE(frame.isQueryResult);
        EXPECT_EQ(frame.status, ResponseStatus::BadRequest);
        EXPECT_EQ(frame.text, result.error);
    }
}

TEST_F(ServiceProtocolTest, ControlRequestsRoundTrip)
{
    for (const RequestKind kind :
         {RequestKind::Stats, RequestKind::Ping}) {
        std::vector<std::uint8_t> bytes;
        appendControlRequest(bytes, kind);
        const RequestFrame frame = decodeOne(bytes);
        EXPECT_EQ(frame.kind, kind);
        EXPECT_TRUE(frame.fieldError.empty());
    }
}

TEST_F(ServiceProtocolTest, EverySchemeRoundTripsOnBothEncodings)
{
    // Binary frames carry the enum value, JSON frames the name token;
    // both must survive the round trip for every scheme, including
    // the invalidate family and the hybrid.
    for (Scheme scheme : kAllSchemes) {
        std::vector<std::uint8_t> bytes;
        appendQueryRequest(bytes, busQuery(scheme, 8));
        EXPECT_EQ(decodeOne(bytes).query.scheme, scheme)
            << "binary " << schemeName(scheme);

        const RequestFrame frame = decodeOne(
            toBytes(queryToJson(busQuery(scheme, 8)) + "\n"));
        EXPECT_TRUE(frame.fieldError.empty()) << frame.fieldError;
        EXPECT_EQ(frame.query.scheme, scheme)
            << "json " << schemeName(scheme);
    }
}

TEST_F(ServiceProtocolTest, UnknownSchemeTokenIsAFieldError)
{
    const RequestFrame frame = decodeOne(toBytes(
        "{\"domain\":\"bus\",\"scheme\":\"mosi\",\"cpus\":4}\n"));
    EXPECT_NE(frame.fieldError.find("unknown scheme"),
              std::string::npos);
}

TEST_F(ServiceProtocolTest, TruncatedFramesAskForMoreBytes)
{
    std::vector<std::uint8_t> bytes;
    appendQueryRequest(bytes, busQuery(Scheme::Base, 4));
    // Every proper prefix must decode to NeedMore, never a frame and
    // never an error (a slow sender is not a protocol violation).
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        RequestFrame frame;
        std::string error;
        std::size_t consumed = 0;
        EXPECT_EQ(decodeRequest(bytes.data(), cut, consumed, frame,
                                error),
                  DecodeStatus::NeedMore)
            << "prefix of " << cut << " bytes";
    }
}

TEST_F(ServiceProtocolTest, OversizedLengthPrefixIsAFramingError)
{
    // Header claims a 2 GiB payload: must be rejected from the header
    // alone, without waiting for (or allocating) the claimed bytes.
    std::vector<std::uint8_t> bytes = {kRequestMagic,
                                       kProtocolVersion,
                                       0,
                                       0,
                                       0x00,
                                       0x00,
                                       0x00,
                                       0x80};
    RequestFrame frame;
    std::string error;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeRequest(bytes.data(), bytes.size(), consumed,
                            frame, error),
              DecodeStatus::BadFrame);
    EXPECT_NE(error.find("length prefix"), std::string::npos);
}

TEST_F(ServiceProtocolTest, BadMagicAndBadVersionAreFramingErrors)
{
    RequestFrame frame;
    std::string error;
    std::size_t consumed = 0;
    const std::vector<std::uint8_t> garbage =
        toBytes("GET / HTTP/1.1\r\n");
    EXPECT_EQ(decodeRequest(garbage.data(), garbage.size(), consumed,
                            frame, error),
              DecodeStatus::BadFrame);

    std::vector<std::uint8_t> bytes;
    appendQueryRequest(bytes, busQuery(Scheme::Base, 4));
    bytes[1] = 99; // future protocol version
    EXPECT_EQ(decodeRequest(bytes.data(), bytes.size(), consumed,
                            frame, error),
              DecodeStatus::BadFrame);
    EXPECT_NE(error.find("version"), std::string::npos);
}

TEST_F(ServiceProtocolTest, WrongPayloadSizeIsARecoverableFieldError)
{
    // Framing intact (honest length prefix) but the query payload is
    // short: the connection survives, the request gets an error.
    std::vector<std::uint8_t> bytes = {
        kRequestMagic, kProtocolVersion, 0, 0, 16, 0, 0, 0};
    bytes.resize(bytes.size() + 16, 0);
    const RequestFrame frame = decodeOne(bytes);
    EXPECT_NE(frame.fieldError.find("96 bytes"), std::string::npos);
}

TEST_F(ServiceProtocolTest, UnknownEnumBytesAreRecoverableFieldErrors)
{
    std::vector<std::uint8_t> bytes;
    appendQueryRequest(bytes, busQuery(Scheme::Base, 4));
    bytes[kFrameHeader + 0] = 7; // domain byte
    EXPECT_EQ(decodeOne(bytes).fieldError, "unknown query domain");

    bytes.clear();
    appendQueryRequest(bytes, busQuery(Scheme::Base, 4));
    bytes[kFrameHeader + 1] = 250; // scheme byte
    EXPECT_EQ(decodeOne(bytes).fieldError, "unknown scheme");
}

TEST_F(ServiceProtocolTest, NaNAndInfParamsAreCaughtByValidation)
{
    // The wire accepts any IEEE-754 bit pattern; admission control is
    // the kernel's job. The decoded query must carry the exact NaN
    // payload through so validate() can name the offending field.
    Query query = busQuery(Scheme::Base, 4);
    query.params.oclean = std::numeric_limits<double>::quiet_NaN();
    query.params.opres = -std::numeric_limits<double>::infinity();
    std::vector<std::uint8_t> bytes;
    appendQueryRequest(bytes, query);

    const RequestFrame frame = decodeOne(bytes);
    EXPECT_TRUE(frame.fieldError.empty());
    EXPECT_TRUE(std::isnan(frame.query.params.oclean));
    EXPECT_TRUE(std::isinf(frame.query.params.opres));
    const ServiceKernel kernel;
    EXPECT_NE(kernel.validate(frame.query).find("oclean"),
              std::string::npos);
}

TEST_F(ServiceProtocolTest, MalformedJsonIsARecoverableFieldError)
{
    for (const char *line :
         {"{not json at all\n", "{\"domain\":\"warp\",\"cpus\":4}\n",
          "{\"cpus\":true}\n", "{\"bogus\":1,\"cpus\":4}\n",
          "{\"domain\":\"bus\"}\n",
          "{\"params\":{\"zz\":1},\"cpus\":4}\n"}) {
        SCOPED_TRACE(line);
        const std::vector<std::uint8_t> bytes = toBytes(line);
        const RequestFrame frame = decodeOne(bytes);
        EXPECT_TRUE(frame.json);
        EXPECT_FALSE(frame.fieldError.empty());
    }
}

TEST_F(ServiceProtocolTest, OverlongJsonLineIsAFramingError)
{
    std::string line = "{\"cpus\":4,\"pad\":\"";
    line.append(kMaxJsonLine, 'x'); // no newline in the first 8 KiB
    const std::vector<std::uint8_t> bytes = toBytes(line);
    RequestFrame frame;
    std::string error;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeRequest(bytes.data(), bytes.size(), consumed,
                            frame, error),
              DecodeStatus::BadFrame);
    EXPECT_NE(error.find("exceeds"), std::string::npos);
}

TEST_F(ServiceProtocolTest, PipelinedFramesDecodeOneAtATime)
{
    std::vector<std::uint8_t> bytes;
    appendQueryRequest(bytes, busQuery(Scheme::Base, 4));
    const std::string line = "{\"cpus\":8,\"scheme\":\"dragon\"}\n";
    bytes.insert(bytes.end(), line.begin(), line.end());
    appendControlRequest(bytes, RequestKind::Ping);

    std::size_t offset = 0;
    std::vector<RequestFrame> frames;
    while (offset < bytes.size()) {
        RequestFrame frame;
        std::string error;
        std::size_t consumed = 0;
        ASSERT_EQ(decodeRequest(bytes.data() + offset,
                                bytes.size() - offset, consumed,
                                frame, error),
                  DecodeStatus::Frame)
            << error;
        offset += consumed;
        frames.push_back(frame);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].kind, RequestKind::Query);
    EXPECT_FALSE(frames[0].json);
    EXPECT_EQ(frames[1].query.scheme, Scheme::Dragon);
    EXPECT_TRUE(frames[1].json);
    EXPECT_EQ(frames[2].kind, RequestKind::Ping);
}

} // namespace
} // namespace swcc::service
