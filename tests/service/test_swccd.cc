/**
 * @file
 * End-to-end tests for the swccd daemon: lifecycle, the stats
 * endpoint, graceful drain of in-flight requests, protocol
 * robustness against hostile clients (oversized length prefixes,
 * truncated frames, mid-request disconnects, garbage bytes), and the
 * concurrent-client gate — N client threads hammering one daemon must
 * each get answers bitwise identical to a direct ServiceKernel
 * evaluation (the suite name starts with "ServiceParallel" so the
 * tsan preset exercises the full acceptor/worker/connection weave).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/solver_cache.hh"
#include "core/types.hh"
#include "core/workload.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/service_kernel.hh"

namespace swcc::service
{
namespace
{

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectIdentical(const QueryResult &got, const QueryResult &want)
{
    ASSERT_EQ(got.ok, want.ok) << got.error;
    if (!got.ok) {
        EXPECT_EQ(got.error, want.error);
        return;
    }
    ASSERT_EQ(got.domain, want.domain);
    if (got.domain == QueryDomain::Bus) {
        EXPECT_EQ(got.bus.processors, want.bus.processors);
        EXPECT_TRUE(sameBits(got.bus.cpu, want.bus.cpu));
        EXPECT_TRUE(sameBits(got.bus.bus, want.bus.bus));
        EXPECT_TRUE(sameBits(got.bus.waiting, want.bus.waiting));
        EXPECT_TRUE(sameBits(got.bus.busUtilization,
                             want.bus.busUtilization));
        EXPECT_TRUE(sameBits(got.bus.busQueueLength,
                             want.bus.busQueueLength));
        EXPECT_TRUE(sameBits(got.bus.processorUtilization,
                             want.bus.processorUtilization));
        EXPECT_TRUE(sameBits(got.bus.processingPower,
                             want.bus.processingPower));
    } else {
        EXPECT_EQ(got.network.stages, want.network.stages);
        EXPECT_EQ(got.network.processors, want.network.processors);
        EXPECT_TRUE(sameBits(got.network.cpu, want.network.cpu));
        EXPECT_TRUE(
            sameBits(got.network.network, want.network.network));
        EXPECT_TRUE(sameBits(got.network.acceptance,
                             want.network.acceptance));
        EXPECT_TRUE(sameBits(got.network.cyclesPerInstruction,
                             want.network.cyclesPerInstruction));
        EXPECT_TRUE(sameBits(got.network.processingPower,
                             want.network.processingPower));
    }
}

Query
busQuery(Scheme scheme, unsigned cpus,
         const WorkloadParams &params = middleParams())
{
    Query query;
    query.domain = QueryDomain::Bus;
    query.scheme = scheme;
    query.size = cpus;
    query.params = params;
    return query;
}

Query
networkQuery(Scheme scheme, unsigned stages)
{
    Query query;
    query.domain = QueryDomain::Network;
    query.scheme = scheme;
    query.size = stages;
    query.params = middleParams();
    return query;
}

/** One daemon on a unique socket path, torn down with the test. */
class DaemonFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setSolverCacheEnabled(true);
        clearSolverCache();
        static std::atomic<unsigned> counter{0};
        socket_ = "/tmp/swccd-test-" + std::to_string(::getpid()) +
            "-" + std::to_string(counter.fetch_add(1)) + ".sock";
    }

    void
    TearDown() override
    {
        daemon_.reset();
        clearSolverCache();
    }

    void
    startDaemon(unsigned workers = 2, unsigned batchMax = 16)
    {
        DaemonConfig config;
        config.socketPath = socket_;
        config.workers = workers;
        config.batchMax = batchMax;
        daemon_ = std::make_unique<ServiceDaemon>(config);
        daemon_->start();
        ASSERT_TRUE(ServiceClient::waitForServer(socket_, 5000));
    }

    std::string socket_;
    std::unique_ptr<ServiceDaemon> daemon_;
};

using ServiceDaemonTest = DaemonFixture;

TEST_F(ServiceDaemonTest, StartsServesAndStopsCleanly)
{
    startDaemon();
    EXPECT_TRUE(daemon_->running());
    {
        ServiceClient client;
        client.connect(socket_);
        EXPECT_EQ(client.ping(), "pong");
    }
    daemon_->stop();
    EXPECT_FALSE(daemon_->running());
    // The socket file is unlinked on shutdown.
    EXPECT_NE(::access(socket_.c_str(), F_OK), 0);
}

TEST_F(ServiceDaemonTest, AnswersQueriesBitwiseIdenticalToTheKernel)
{
    startDaemon();
    const ServiceKernel kernel;
    ServiceClient client;
    client.connect(socket_);
    for (Scheme scheme : kAllSchemes) {
        const Query query = busQuery(scheme, 24);
        expectIdentical(client.query(query), kernel.evaluate(query));
    }
    const Query query = networkQuery(Scheme::SoftwareFlush, 6);
    expectIdentical(client.query(query), kernel.evaluate(query));
}

TEST_F(ServiceDaemonTest, JsonDialectIsBitwiseIdenticalToo)
{
    startDaemon();
    const ServiceKernel kernel;
    ServiceClient client;
    client.connect(socket_);
    client.useJson(true);
    EXPECT_EQ(client.ping(), "{\"ok\":true,\"pong\":true}");
    const Query query = busQuery(Scheme::Dragon, 17);
    expectIdentical(client.query(query), kernel.evaluate(query));
}

TEST_F(ServiceDaemonTest, StatsEndpointReportsCountersAndSolverCache)
{
    startDaemon();
    ServiceClient client;
    client.connect(socket_);
    (void)client.query(busQuery(Scheme::Base, 4));
    (void)client.query(busQuery(Scheme::Base, 4)); // memo hit

    const std::string stats = client.stats();
    EXPECT_NE(stats.find("\"ok\":true"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"queries\":"), std::string::npos);
    EXPECT_NE(stats.find("\"batches\":"), std::string::npos);
    EXPECT_NE(stats.find("\"connections_accepted\":"),
              std::string::npos);
    EXPECT_NE(stats.find("\"solver_cache\""), std::string::npos);
    EXPECT_NE(stats.find("\"hits\":"), std::string::npos);
    EXPECT_NE(stats.find("\"misses\":"), std::string::npos);
    EXPECT_NE(stats.find("\"evictions\":"), std::string::npos);

    const DaemonStats totals = daemon_->stats();
    EXPECT_EQ(totals.queries, 2u);
    // waitForServer() probes with a bare connect, which the acceptor
    // may or may not have picked up before it closed again.
    EXPECT_GE(totals.connectionsAccepted, 1u);
    EXPECT_EQ(totals.protocolErrors, 0u);
}

TEST_F(ServiceDaemonTest, ValidationErrorsKeepTheConnectionAlive)
{
    startDaemon();
    ServiceClient client;
    client.connect(socket_);

    const QueryResult bad = client.query(busQuery(Scheme::Base, 0));
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());

    const QueryResult oversized =
        client.query(busQuery(Scheme::Base, 100000));
    EXPECT_FALSE(oversized.ok);
    EXPECT_NE(oversized.error.find("exceeds limit"),
              std::string::npos);

    // Same connection still answers good queries afterwards.
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
    EXPECT_GE(daemon_->stats().validationErrors, 2u);
}

TEST_F(ServiceDaemonTest, DrainAnswersEveryInFlightRequest)
{
    startDaemon(2, 8);
    ServiceClient client;
    client.connect(socket_);
    // connect() only queues us in the listen backlog; the drain
    // contract covers *accepted* requests, so prove the connection
    // thread is live before racing the pipeline against the stop.
    ASSERT_EQ(client.ping(), "pong");
    constexpr unsigned kInFlight = 64;
    for (unsigned i = 0; i < kInFlight; ++i) {
        client.sendQuery(busQuery(Scheme::Dragon, 1 + i % 96));
    }
    // Stop with the pipeline full: every accepted request must still
    // be answered, in order, before the daemon tears down.
    daemon_->requestStop();
    const ServiceKernel kernel;
    for (unsigned i = 0; i < kInFlight; ++i) {
        const QueryResult got = client.recvResult();
        expectIdentical(got,
                        kernel.evaluate(
                            busQuery(Scheme::Dragon, 1 + i % 96)));
    }
    daemon_->stop();
}

TEST_F(ServiceDaemonTest, OversizedLengthPrefixGetsErrorThenClose)
{
    startDaemon();
    ServiceClient attacker;
    attacker.connect(socket_);
    // Claims a 512 MiB payload; the daemon must answer with a framing
    // error and close, never waiting for the claimed bytes.
    const std::uint8_t evil[8] = {kRequestMagic, kProtocolVersion,
                                  0,             0,
                                  0x00,          0x00,
                                  0x00,          0x20};
    attacker.sendRaw(evil, sizeof evil);
    const ResponseFrame frame = attacker.recvResponse();
    EXPECT_EQ(frame.status, ResponseStatus::BadRequest);
    EXPECT_NE(frame.text.find("length prefix"), std::string::npos);
    // The daemon closed the connection after the error.
    EXPECT_THROW((void)attacker.recvResponse(), std::runtime_error);

    // And it keeps serving everyone else.
    ServiceClient client;
    client.connect(socket_);
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
    EXPECT_GE(daemon_->stats().protocolErrors, 1u);
}

TEST_F(ServiceDaemonTest, GarbageBytesGetErrorThenClose)
{
    startDaemon();
    ServiceClient attacker;
    attacker.connect(socket_);
    const char garbage[] = "GET / HTTP/1.1\r\nHost: swccd\r\n\r\n";
    attacker.sendRaw(garbage, sizeof garbage - 1);
    const ResponseFrame frame = attacker.recvResponse();
    EXPECT_EQ(frame.status, ResponseStatus::BadRequest);
    EXPECT_THROW((void)attacker.recvResponse(), std::runtime_error);

    ServiceClient client;
    client.connect(socket_);
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
}

TEST_F(ServiceDaemonTest, MidFrameDisconnectDoesNotWedgeTheDaemon)
{
    startDaemon();
    {
        // Send half a query frame, then vanish.
        ServiceClient half;
        half.connect(socket_);
        std::vector<std::uint8_t> bytes;
        appendQueryRequest(bytes, busQuery(Scheme::Base, 4));
        half.sendRaw(bytes.data(), bytes.size() / 2);
    }
    {
        // Send a valid pipelined burst and vanish without reading the
        // responses; the daemon must absorb the EPIPE quietly.
        ServiceClient rude;
        rude.connect(socket_);
        for (int i = 0; i < 8; ++i) {
            rude.sendQuery(busQuery(Scheme::Dragon, 32));
        }
    }
    ServiceClient client;
    client.connect(socket_);
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
    daemon_->stop();
}

TEST_F(ServiceDaemonTest, RecoverableFieldErrorsKeepTheConnection)
{
    startDaemon();
    ServiceClient client;
    client.connect(socket_);
    // An intact frame with an unknown scheme byte: answered with an
    // error, connection stays.
    std::vector<std::uint8_t> bytes;
    appendQueryRequest(bytes, busQuery(Scheme::Base, 4));
    bytes[8 + 1] = 200; // scheme byte inside the payload
    client.sendRaw(bytes.data(), bytes.size());
    const ResponseFrame frame = client.recvResponse();
    EXPECT_EQ(frame.status, ResponseStatus::BadRequest);
    EXPECT_EQ(frame.text, "unknown scheme");
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
}

using ServiceParallelTest = DaemonFixture;

TEST_F(ServiceParallelTest, ConcurrentClientsGetBitwiseIdenticalResults)
{
    // The concurrency gate: N client threads × M pipelined queries
    // against one daemon, interleaving bus and network work across
    // schemes and sizes so the workers continually re-batch different
    // mixes. Every answer must be bitwise identical to a direct
    // ServiceKernel evaluation of the same query.
    startDaemon(4, 16);
    const ServiceKernel kernel;
    constexpr unsigned kThreads = 6;
    constexpr unsigned kQueriesPerThread = 120;

    std::vector<Query> plan;
    plan.reserve(kThreads * kQueriesPerThread);
    for (unsigned t = 0; t < kThreads; ++t) {
        for (unsigned i = 0; i < kQueriesPerThread; ++i) {
            const unsigned pick = t * 31 + i * 7;
            if (pick % 5 == 0) {
                plan.push_back(networkQuery(
                    pick % 2 == 0 ? Scheme::SoftwareFlush
                                  : Scheme::NoCache,
                    1 + pick % 12));
            } else {
                plan.push_back(busQuery(
                    kAllSchemes[pick % kNumSchemes], 1 + pick % 128,
                    paramsAtLevel(
                        kAllLevels[pick % kAllLevels.size()])));
            }
        }
    }
    std::vector<QueryResult> expected(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        expected[i] = kernel.evaluate(plan[i]);
    }

    std::atomic<unsigned> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ServiceClient client;
            client.connect(socket_);
            client.useJson(t % 3 == 2); // every third thread: JSON
            const std::size_t base = t * kQueriesPerThread;
            // Pipeline in bursts of 8 to keep batches forming.
            for (unsigned i = 0; i < kQueriesPerThread; i += 8) {
                const unsigned n =
                    std::min(8u, kQueriesPerThread - i);
                for (unsigned j = 0; j < n; ++j) {
                    client.sendQuery(plan[base + i + j]);
                }
                for (unsigned j = 0; j < n; ++j) {
                    const QueryResult got = client.recvResult();
                    const QueryResult &want = expected[base + i + j];
                    if (got.ok != want.ok ||
                        (got.ok &&
                         !sameBits(got.domain == QueryDomain::Bus
                                       ? got.bus.processingPower
                                       : got.network.processingPower,
                                   want.domain == QueryDomain::Bus
                                       ? want.bus.processingPower
                                       : want.network
                                             .processingPower))) {
                        mismatches.fetch_add(1);
                    }
                }
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    EXPECT_EQ(mismatches.load(), 0u);

    // Full-width bitwise audit on one thread's slice (the in-thread
    // check above compares the headline double only).
    ServiceClient audit;
    audit.connect(socket_);
    for (unsigned i = 0; i < 16; ++i) {
        expectIdentical(audit.query(plan[i]), expected[i]);
    }

    const DaemonStats totals = daemon_->stats();
    EXPECT_GE(totals.queries, kThreads * kQueriesPerThread);
    EXPECT_GE(totals.batches, 1u);
    daemon_->stop();
}

TEST_F(ServiceParallelTest, StopWhileClientsAreMidBurstIsClean)
{
    startDaemon(2, 8);
    std::atomic<bool> go{true};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 3; ++t) {
        threads.emplace_back([&] {
            try {
                ServiceClient client;
                client.connect(socket_);
                while (go.load()) {
                    (void)client.query(busQuery(Scheme::Base, 16));
                }
            } catch (const std::exception &) {
                // Connection torn down by the stop: expected.
            }
        });
    }
    // Let the clients get into a rhythm, then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    daemon_->stop();
    go.store(false);
    for (std::thread &thread : threads) {
        thread.join();
    }
    EXPECT_FALSE(daemon_->running());
}

} // namespace
} // namespace swcc::service
