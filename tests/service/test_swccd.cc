/**
 * @file
 * End-to-end tests for the swccd daemon: lifecycle, the stats
 * endpoint, graceful drain of in-flight requests, protocol
 * robustness against hostile clients (oversized length prefixes,
 * truncated frames, mid-request disconnects, garbage bytes), and the
 * concurrent-client gate — N client threads hammering one daemon must
 * each get answers bitwise identical to a direct ServiceKernel
 * evaluation (the suite name starts with "ServiceParallel" so the
 * tsan preset exercises the full acceptor/worker/connection weave).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/obs/obs.hh"
#include "core/solver_cache.hh"
#include "core/types.hh"
#include "core/workload.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/service_kernel.hh"

namespace swcc::service
{
namespace
{

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectIdentical(const QueryResult &got, const QueryResult &want)
{
    ASSERT_EQ(got.ok, want.ok) << got.error;
    if (!got.ok) {
        EXPECT_EQ(got.error, want.error);
        return;
    }
    ASSERT_EQ(got.domain, want.domain);
    if (got.domain == QueryDomain::Bus) {
        EXPECT_EQ(got.bus.processors, want.bus.processors);
        EXPECT_TRUE(sameBits(got.bus.cpu, want.bus.cpu));
        EXPECT_TRUE(sameBits(got.bus.bus, want.bus.bus));
        EXPECT_TRUE(sameBits(got.bus.waiting, want.bus.waiting));
        EXPECT_TRUE(sameBits(got.bus.busUtilization,
                             want.bus.busUtilization));
        EXPECT_TRUE(sameBits(got.bus.busQueueLength,
                             want.bus.busQueueLength));
        EXPECT_TRUE(sameBits(got.bus.processorUtilization,
                             want.bus.processorUtilization));
        EXPECT_TRUE(sameBits(got.bus.processingPower,
                             want.bus.processingPower));
    } else {
        EXPECT_EQ(got.network.stages, want.network.stages);
        EXPECT_EQ(got.network.processors, want.network.processors);
        EXPECT_TRUE(sameBits(got.network.cpu, want.network.cpu));
        EXPECT_TRUE(
            sameBits(got.network.network, want.network.network));
        EXPECT_TRUE(sameBits(got.network.acceptance,
                             want.network.acceptance));
        EXPECT_TRUE(sameBits(got.network.cyclesPerInstruction,
                             want.network.cyclesPerInstruction));
        EXPECT_TRUE(sameBits(got.network.processingPower,
                             want.network.processingPower));
    }
}

Query
busQuery(Scheme scheme, unsigned cpus,
         const WorkloadParams &params = middleParams())
{
    Query query;
    query.domain = QueryDomain::Bus;
    query.scheme = scheme;
    query.size = cpus;
    query.params = params;
    return query;
}

Query
networkQuery(Scheme scheme, unsigned stages)
{
    Query query;
    query.domain = QueryDomain::Network;
    query.scheme = scheme;
    query.size = stages;
    query.params = middleParams();
    return query;
}

/** One daemon on a unique socket path, torn down with the test. */
class DaemonFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setSolverCacheEnabled(true);
        clearSolverCache();
        static std::atomic<unsigned> counter{0};
        socket_ = "/tmp/swccd-test-" + std::to_string(::getpid()) +
            "-" + std::to_string(counter.fetch_add(1)) + ".sock";
    }

    void
    TearDown() override
    {
        daemon_.reset();
        clearSolverCache();
    }

    void
    startDaemon(unsigned workers = 2, unsigned batchMax = 16)
    {
        DaemonConfig config;
        config.socketPath = socket_;
        config.workers = workers;
        config.batchMax = batchMax;
        daemon_ = std::make_unique<ServiceDaemon>(config);
        daemon_->start();
        ASSERT_TRUE(ServiceClient::waitForServer(socket_, 5000));
    }

    std::string socket_;
    std::unique_ptr<ServiceDaemon> daemon_;
};

using ServiceDaemonTest = DaemonFixture;

TEST_F(ServiceDaemonTest, StartsServesAndStopsCleanly)
{
    startDaemon();
    EXPECT_TRUE(daemon_->running());
    {
        ServiceClient client;
        client.connect(socket_);
        EXPECT_EQ(client.ping(), "pong");
    }
    daemon_->stop();
    EXPECT_FALSE(daemon_->running());
    // The socket file is unlinked on shutdown.
    EXPECT_NE(::access(socket_.c_str(), F_OK), 0);
}

TEST_F(ServiceDaemonTest, AnswersQueriesBitwiseIdenticalToTheKernel)
{
    startDaemon();
    const ServiceKernel kernel;
    ServiceClient client;
    client.connect(socket_);
    for (Scheme scheme : kAllSchemes) {
        const Query query = busQuery(scheme, 24);
        expectIdentical(client.query(query), kernel.evaluate(query));
    }
    const Query query = networkQuery(Scheme::SoftwareFlush, 6);
    expectIdentical(client.query(query), kernel.evaluate(query));
}

TEST_F(ServiceDaemonTest, JsonDialectIsBitwiseIdenticalToo)
{
    startDaemon();
    const ServiceKernel kernel;
    ServiceClient client;
    client.connect(socket_);
    client.useJson(true);
    EXPECT_EQ(client.ping(), "{\"ok\":true,\"pong\":true}");
    const Query query = busQuery(Scheme::Dragon, 17);
    expectIdentical(client.query(query), kernel.evaluate(query));
}

TEST_F(ServiceDaemonTest, StatsEndpointReportsCountersAndSolverCache)
{
    startDaemon();
    ServiceClient client;
    client.connect(socket_);
    (void)client.query(busQuery(Scheme::Base, 4));
    (void)client.query(busQuery(Scheme::Base, 4)); // memo hit

    const std::string stats = client.stats();
    EXPECT_NE(stats.find("\"ok\":true"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"queries\":"), std::string::npos);
    EXPECT_NE(stats.find("\"batches\":"), std::string::npos);
    EXPECT_NE(stats.find("\"connections_accepted\":"),
              std::string::npos);
    EXPECT_NE(stats.find("\"solver_cache\""), std::string::npos);
    EXPECT_NE(stats.find("\"hits\":"), std::string::npos);
    EXPECT_NE(stats.find("\"misses\":"), std::string::npos);
    EXPECT_NE(stats.find("\"evictions\":"), std::string::npos);

    const DaemonStats totals = daemon_->stats();
    EXPECT_EQ(totals.queries, 2u);
    // waitForServer() probes with a bare connect, which the acceptor
    // may or may not have picked up before it closed again.
    EXPECT_GE(totals.connectionsAccepted, 1u);
    EXPECT_EQ(totals.protocolErrors, 0u);
}

TEST_F(ServiceDaemonTest, ValidationErrorsKeepTheConnectionAlive)
{
    startDaemon();
    ServiceClient client;
    client.connect(socket_);

    const QueryResult bad = client.query(busQuery(Scheme::Base, 0));
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());

    const QueryResult oversized =
        client.query(busQuery(Scheme::Base, 100000));
    EXPECT_FALSE(oversized.ok);
    EXPECT_NE(oversized.error.find("exceeds limit"),
              std::string::npos);

    // Same connection still answers good queries afterwards.
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
    EXPECT_GE(daemon_->stats().validationErrors, 2u);
}

TEST_F(ServiceDaemonTest, DrainAnswersEveryInFlightRequest)
{
    startDaemon(2, 8);
    ServiceClient client;
    client.connect(socket_);
    // connect() only queues us in the listen backlog; the drain
    // contract covers *accepted* requests, so prove the connection
    // thread is live before racing the pipeline against the stop.
    ASSERT_EQ(client.ping(), "pong");
    constexpr unsigned kInFlight = 64;
    for (unsigned i = 0; i < kInFlight; ++i) {
        client.sendQuery(busQuery(Scheme::Dragon, 1 + i % 96));
    }
    // Stop with the pipeline full: every accepted request must still
    // be answered, in order, before the daemon tears down.
    daemon_->requestStop();
    const ServiceKernel kernel;
    for (unsigned i = 0; i < kInFlight; ++i) {
        const QueryResult got = client.recvResult();
        expectIdentical(got,
                        kernel.evaluate(
                            busQuery(Scheme::Dragon, 1 + i % 96)));
    }
    daemon_->stop();
}

TEST_F(ServiceDaemonTest, OversizedLengthPrefixGetsErrorThenClose)
{
    startDaemon();
    ServiceClient attacker;
    attacker.connect(socket_);
    // Claims a 512 MiB payload; the daemon must answer with a framing
    // error and close, never waiting for the claimed bytes.
    const std::uint8_t evil[8] = {kRequestMagic, kProtocolVersion,
                                  0,             0,
                                  0x00,          0x00,
                                  0x00,          0x20};
    attacker.sendRaw(evil, sizeof evil);
    const ResponseFrame frame = attacker.recvResponse();
    EXPECT_EQ(frame.status, ResponseStatus::BadRequest);
    EXPECT_NE(frame.text.find("length prefix"), std::string::npos);
    // The daemon closed the connection after the error.
    EXPECT_THROW((void)attacker.recvResponse(), std::runtime_error);

    // And it keeps serving everyone else.
    ServiceClient client;
    client.connect(socket_);
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
    EXPECT_GE(daemon_->stats().protocolErrors, 1u);
}

TEST_F(ServiceDaemonTest, GarbageBytesGetErrorThenClose)
{
    startDaemon();
    ServiceClient attacker;
    attacker.connect(socket_);
    const char garbage[] = "GET / HTTP/1.1\r\nHost: swccd\r\n\r\n";
    attacker.sendRaw(garbage, sizeof garbage - 1);
    const ResponseFrame frame = attacker.recvResponse();
    EXPECT_EQ(frame.status, ResponseStatus::BadRequest);
    EXPECT_THROW((void)attacker.recvResponse(), std::runtime_error);

    ServiceClient client;
    client.connect(socket_);
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
}

TEST_F(ServiceDaemonTest, MidFrameDisconnectDoesNotWedgeTheDaemon)
{
    startDaemon();
    {
        // Send half a query frame, then vanish.
        ServiceClient half;
        half.connect(socket_);
        std::vector<std::uint8_t> bytes;
        appendQueryRequest(bytes, busQuery(Scheme::Base, 4));
        half.sendRaw(bytes.data(), bytes.size() / 2);
    }
    {
        // Send a valid pipelined burst and vanish without reading the
        // responses; the daemon must absorb the EPIPE quietly.
        ServiceClient rude;
        rude.connect(socket_);
        for (int i = 0; i < 8; ++i) {
            rude.sendQuery(busQuery(Scheme::Dragon, 32));
        }
    }
    ServiceClient client;
    client.connect(socket_);
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
    daemon_->stop();
}

TEST_F(ServiceDaemonTest, RecoverableFieldErrorsKeepTheConnection)
{
    startDaemon();
    ServiceClient client;
    client.connect(socket_);
    // An intact frame with an unknown scheme byte: answered with an
    // error, connection stays.
    std::vector<std::uint8_t> bytes;
    appendQueryRequest(bytes, busQuery(Scheme::Base, 4));
    bytes[8 + 1] = 200; // scheme byte inside the payload
    client.sendRaw(bytes.data(), bytes.size());
    const ResponseFrame frame = client.recvResponse();
    EXPECT_EQ(frame.status, ResponseStatus::BadRequest);
    EXPECT_EQ(frame.text, "unknown scheme");
    EXPECT_TRUE(client.query(busQuery(Scheme::Base, 4)).ok);
}

/** The value of the sample line `<name> <value>` in exposition text. */
double
promValue(const std::string &text, const std::string &name)
{
    const std::string padded = "\n" + text;
    const std::string needle = "\n" + name + " ";
    const std::size_t at = padded.find(needle);
    if (at == std::string::npos) {
        ADD_FAILURE() << "sample '" << name << "' not in scrape:\n"
                      << text;
        return -1.0;
    }
    return std::stod(padded.substr(at + needle.size()));
}

/**
 * Workers record telemetry *after* flushing completions (off the
 * latency path), so a scrape racing the response can read stale
 * counts. Polls until @p name reaches @p target (or ~2s pass) and
 * returns the last scrape; the caller's assertions then report any
 * real discrepancy.
 */
std::string
scrapeUntilAtLeast(ServiceClient &client, const std::string &name,
                   double target)
{
    std::string scrape;
    for (int i = 0; i < 400; ++i) {
        scrape = client.scrape();
        const std::string padded = "\n" + scrape;
        const std::string needle = "\n" + name + " ";
        const std::size_t at = padded.find(needle);
        if (at != std::string::npos &&
            std::stod(padded.substr(at + needle.size())) >= target) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return scrape;
}

#if SWCC_OBS_ENABLED
/** Registry snapshot entry by name; fails the test if absent. */
obs::MetricSnapshot
findMetric(const std::string &name)
{
    for (const obs::MetricSnapshot &snap : obs::metrics().snapshot()) {
        if (snap.name == name) {
            return snap;
        }
    }
    ADD_FAILURE() << "metric '" << name << "' not in snapshot";
    return {};
}
#endif

TEST_F(ServiceDaemonTest, ScrapeEndpointServesPrometheusText)
{
    startDaemon();
    ServiceClient client;
    client.connect(socket_);
    for (unsigned i = 0; i < 8; ++i) {
        client.sendQuery(busQuery(Scheme::Base, 4 + i));
    }
    for (unsigned i = 0; i < 8; ++i) {
        ASSERT_TRUE(client.recvResult().ok);
    }

    const std::string scrape =
        scrapeUntilAtLeast(client, "service_request_us_count", 8.0);
    EXPECT_NE(scrape.find("# TYPE service_queries_total counter\n"),
              std::string::npos)
        << scrape;
    EXPECT_NE(scrape.find("# TYPE service_inflight gauge\n"),
              std::string::npos);
    EXPECT_NE(scrape.find("# TYPE service_request_us histogram\n"),
              std::string::npos);
    EXPECT_GE(promValue(scrape, "service_queries_total"), 8.0);
    EXPECT_GE(promValue(scrape, "solver_cache_hits_total"), 0.0);
    EXPECT_GE(promValue(scrape, "solver_cache_misses_total"), 1.0);
    EXPECT_GE(promValue(scrape, "service_request_us_count"), 8.0);
    EXPECT_GE(promValue(scrape, "service_batch_size_count"), 1.0);
    EXPECT_GE(promValue(scrape, "service_connections_active"), 1.0);
    EXPECT_EQ(promValue(scrape, "service_queue_depth"), 0.0);

    // The JSON dialect unwraps to the same exposition text.
    ServiceClient jsonClient;
    jsonClient.connect(socket_);
    jsonClient.useJson(true);
    const std::string viaJson = jsonClient.scrape();
    EXPECT_NE(viaJson.find("# TYPE service_inflight gauge\n"),
              std::string::npos)
        << viaJson;
    EXPECT_GE(promValue(viaJson, "service_queries_total"), 8.0);
}

TEST_F(ServiceDaemonTest, QueueWaitIsVisibleOnlyThroughTheDaemon)
{
    startDaemon(2, 16);
#if SWCC_OBS_ENABLED
    obs::metrics().resetForTest();
#endif
    // Direct kernel evaluation never queues: whatever happens here
    // must leave the service.queue_wait_us registry histogram empty.
    const ServiceKernel kernel;
    for (unsigned i = 0; i < 8; ++i) {
        (void)kernel.evaluate(busQuery(Scheme::Base, 4 + i));
    }
#if SWCC_OBS_ENABLED
    EXPECT_EQ(findMetric("service.queue_wait_us").count, 0u);
#endif

    // A pipelined burst through the daemon rides the MPMC queue, so
    // every query accrues a measurable (nonzero-count) queue wait.
    ServiceClient client;
    client.connect(socket_);
    for (unsigned i = 0; i < 32; ++i) {
        client.sendQuery(busQuery(Scheme::Dragon, 1 + i % 64));
    }
    for (unsigned i = 0; i < 32; ++i) {
        ASSERT_TRUE(client.recvResult().ok);
    }
    const std::string scrape = scrapeUntilAtLeast(
        client, "service_queue_wait_us_count", 32.0);
    EXPECT_GE(promValue(scrape, "service_queue_wait_us_count"), 32.0);
#if SWCC_OBS_ENABLED
    // The registry observe trails the telemetry mutex; poll it too.
    for (int i = 0;
         i < 400 && findMetric("service.queue_wait_us").count < 32;
         ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(findMetric("service.queue_wait_us").count, 32u);
#endif
}

TEST_F(ServiceDaemonTest, FlightRecorderDumpIsValidJson)
{
    startDaemon();
    ServiceClient client;
    client.connect(socket_);
    (void)client.query(busQuery(Scheme::Base, 4));
    (void)client.query(networkQuery(Scheme::SoftwareFlush, 6));
    // Flight records land after the responses are flushed; wait for
    // the sampled gauge to show both before dumping.
    (void)scrapeUntilAtLeast(client, "service_flight_records", 2.0);

    const std::string path = daemon_->dumpFlightRecorder();
    EXPECT_EQ(path, socket_ + ".flight.json");
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();

    const obs::JsonValue doc = obs::parseJson(text.str());
    ASSERT_TRUE(doc.isObject());
    const obs::JsonValue *recorder = doc.find("flight_recorder");
    ASSERT_NE(recorder, nullptr);
    EXPECT_GE(recorder->find("capacity")->number, 16.0);
    EXPECT_GE(recorder->find("total_recorded")->number, 2.0);
    const obs::JsonValue *records = recorder->find("records");
    ASSERT_NE(records, nullptr);
    ASSERT_TRUE(records->isArray());
    ASSERT_GE(records->array.size(), 2u);
    for (const obs::JsonValue &record : records->array) {
        EXPECT_GE(record.find("trace_id")->number, 1.0);
        EXPECT_GE(record.find("total_ns")->number, 0.0);
        EXPECT_GE(record.find("batch_size")->number, 1.0);
        EXPECT_FALSE(record.find("scheme")->string.empty());
        EXPECT_TRUE(record.find("ok")->boolean);
    }
    ::unlink(path.c_str());
}

TEST_F(ServiceDaemonTest, SlowQueryLogEmitsParseableJson)
{
    // Threshold of 1 µs: every completed query counts as slow.
    DaemonConfig config;
    config.socketPath = socket_;
    config.workers = 1;
    config.batchMax = 4;
    config.slowQueryUs = 1;
    daemon_ = std::make_unique<ServiceDaemon>(config);
    daemon_->start();
    ASSERT_TRUE(ServiceClient::waitForServer(socket_, 5000));

    std::ostringstream captured;
    const obs::LogLevel saved = obs::logLevel();
    obs::setLogSink(&captured);
    obs::setLogLevel(obs::LogLevel::Warn);
    {
        ServiceClient client;
        client.connect(socket_);
        ASSERT_TRUE(client.query(busQuery(Scheme::Dragon, 24)).ok);
    }
    // The worker logs after completion is flushed; stopping joins the
    // workers, so the capture below cannot race their writes.
    daemon_->stop();
    obs::setLogSink(nullptr);
    obs::setLogLevel(saved);

    const std::string text = captured.str();
    const std::size_t at = text.find("{\"slow_query\"");
    ASSERT_NE(at, std::string::npos) << text;
    const std::size_t end = text.find('\n', at);
    const obs::JsonValue doc =
        obs::parseJson(text.substr(at, end - at));
    const obs::JsonValue *entry = doc.find("slow_query");
    ASSERT_NE(entry, nullptr);
    EXPECT_GE(entry->find("trace_id")->number, 1.0);
    EXPECT_EQ(entry->find("domain")->string, "bus");
    EXPECT_EQ(entry->find("scheme")->string, "Dragon");
    EXPECT_EQ(entry->find("size")->number, 24.0);
    EXPECT_GE(entry->find("queue_wait_us")->number, 0.0);
    EXPECT_GE(entry->find("solve_us")->number, 0.0);
    EXPECT_GE(entry->find("total_us")->number, 1.0);
    EXPECT_GE(entry->find("batch_size")->number, 1.0);
    EXPECT_GE(entry->find("cache_misses")->number, 0.0);
}

TEST_F(ServiceDaemonTest, TracedRunEmitsConnectedFlowAcrossThreads)
{
    if (!obs::compiledIn()) {
        GTEST_SKIP() << "tracing compiles out under SWCC_OBS=OFF";
    }
    obs::TraceRecorder &trc = obs::tracer();
    trc.clearForTest();
    trc.setEnabled(true);
    startDaemon(2, 8);
    {
        ServiceClient client;
        client.connect(socket_);
        for (unsigned i = 0; i < 16; ++i) {
            client.sendQuery(busQuery(Scheme::Base, 1 + i % 32));
        }
        for (unsigned i = 0; i < 16; ++i) {
            ASSERT_TRUE(client.recvResult().ok);
        }
    }
    daemon_->stop();
    trc.setEnabled(false);
    std::ostringstream os;
    trc.writeChromeTrace(os);

    std::string error;
    const obs::JsonValue doc = obs::parseJson(os.str());
    ASSERT_TRUE(obs::validateChromeTrace(doc, &error)) << error;

    // Collect flow events by trace id: a connected chain has a start
    // ('s') and an end ('f'), and its events span >= 2 threads (the
    // connection thread and a batching worker).
    struct Flow
    {
        bool start = false, end = false;
        std::vector<double> tids;
    };
    std::map<double, Flow> flows;
    std::set<std::string> spanNames;
    for (const obs::JsonValue &event :
         doc.find("traceEvents")->array) {
        const std::string &ph = event.find("ph")->string;
        if (ph == "X") {
            spanNames.insert(event.find("name")->string);
        }
        if (ph != "s" && ph != "t" && ph != "f") {
            continue;
        }
        Flow &flow = flows[event.find("id")->number];
        flow.start |= ph == "s";
        flow.end |= ph == "f";
        flow.tids.push_back(event.find("tid")->number);
    }
    for (const char *name :
         {"svc.decode", "svc.batch", "svc.solve", "svc.send"}) {
        EXPECT_TRUE(spanNames.count(name)) << name;
    }
    std::size_t connected = 0;
    for (const auto &[id, flow] : flows) {
        std::set<double> distinct(flow.tids.begin(),
                                  flow.tids.end());
        if (flow.start && flow.end && distinct.size() >= 2) {
            ++connected;
        }
    }
    EXPECT_GE(connected, 1u) << "no flow chain crossed threads";
}

using ServiceParallelTest = DaemonFixture;

TEST_F(ServiceParallelTest, ConcurrentClientsGetBitwiseIdenticalResults)
{
    // The concurrency gate: N client threads × M pipelined queries
    // against one daemon, interleaving bus and network work across
    // schemes and sizes so the workers continually re-batch different
    // mixes. Every answer must be bitwise identical to a direct
    // ServiceKernel evaluation of the same query.
    startDaemon(4, 16);
    const ServiceKernel kernel;
    constexpr unsigned kThreads = 6;
    constexpr unsigned kQueriesPerThread = 120;

    std::vector<Query> plan;
    plan.reserve(kThreads * kQueriesPerThread);
    for (unsigned t = 0; t < kThreads; ++t) {
        for (unsigned i = 0; i < kQueriesPerThread; ++i) {
            const unsigned pick = t * 31 + i * 7;
            if (pick % 5 == 0) {
                plan.push_back(networkQuery(
                    pick % 2 == 0 ? Scheme::SoftwareFlush
                                  : Scheme::NoCache,
                    1 + pick % 12));
            } else {
                plan.push_back(busQuery(
                    kAllSchemes[pick % kNumSchemes], 1 + pick % 128,
                    paramsAtLevel(
                        kAllLevels[pick % kAllLevels.size()])));
            }
        }
    }
    std::vector<QueryResult> expected(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        expected[i] = kernel.evaluate(plan[i]);
    }

    std::atomic<unsigned> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ServiceClient client;
            client.connect(socket_);
            client.useJson(t % 3 == 2); // every third thread: JSON
            const std::size_t base = t * kQueriesPerThread;
            // Pipeline in bursts of 8 to keep batches forming.
            for (unsigned i = 0; i < kQueriesPerThread; i += 8) {
                const unsigned n =
                    std::min(8u, kQueriesPerThread - i);
                for (unsigned j = 0; j < n; ++j) {
                    client.sendQuery(plan[base + i + j]);
                }
                for (unsigned j = 0; j < n; ++j) {
                    const QueryResult got = client.recvResult();
                    const QueryResult &want = expected[base + i + j];
                    if (got.ok != want.ok ||
                        (got.ok &&
                         !sameBits(got.domain == QueryDomain::Bus
                                       ? got.bus.processingPower
                                       : got.network.processingPower,
                                   want.domain == QueryDomain::Bus
                                       ? want.bus.processingPower
                                       : want.network
                                             .processingPower))) {
                        mismatches.fetch_add(1);
                    }
                }
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    EXPECT_EQ(mismatches.load(), 0u);

    // Full-width bitwise audit on one thread's slice (the in-thread
    // check above compares the headline double only).
    ServiceClient audit;
    audit.connect(socket_);
    for (unsigned i = 0; i < 16; ++i) {
        expectIdentical(audit.query(plan[i]), expected[i]);
    }

    const DaemonStats totals = daemon_->stats();
    EXPECT_GE(totals.queries, kThreads * kQueriesPerThread);
    EXPECT_GE(totals.batches, 1u);
    daemon_->stop();
}

TEST_F(ServiceParallelTest, StopWhileClientsAreMidBurstIsClean)
{
    startDaemon(2, 8);
    std::atomic<bool> go{true};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 3; ++t) {
        threads.emplace_back([&] {
            try {
                ServiceClient client;
                client.connect(socket_);
                while (go.load()) {
                    (void)client.query(busQuery(Scheme::Base, 16));
                }
            } catch (const std::exception &) {
                // Connection torn down by the stop: expected.
            }
        });
    }
    // Let the clients get into a rhythm, then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    daemon_->stop();
    go.store(false);
    for (std::thread &thread : threads) {
        thread.join();
    }
    EXPECT_FALSE(daemon_->running());
}

} // namespace
} // namespace swcc::service
