/**
 * @file
 * Unit tests for trace buffers and serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace/trace_buffer.hh"
#include "sim/trace/trace_io.hh"

namespace swcc
{
namespace
{

TraceBuffer
sampleTrace()
{
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, 0x1000);
    trace.append(0, RefType::Load, 0x8000'0010);
    trace.append(1, RefType::IFetch, 0x2000);
    trace.append(1, RefType::Store, 0x8000'0010);
    trace.append(2, RefType::IFetch, 0x3000);
    trace.append(0, RefType::Flush, 0x8000'0010);
    return trace;
}

TEST(TraceBufferTest, TracksSizeAndCpus)
{
    const TraceBuffer trace = sampleTrace();
    EXPECT_EQ(trace.size(), 6u);
    EXPECT_EQ(trace.numCpus(), 3u);
    EXPECT_FALSE(trace.empty());
}

TEST(TraceBufferTest, CountsByType)
{
    const TraceBuffer trace = sampleTrace();
    EXPECT_EQ(trace.countType(RefType::IFetch), 3u);
    EXPECT_EQ(trace.countType(RefType::Load), 1u);
    EXPECT_EQ(trace.countType(RefType::Store), 1u);
    EXPECT_EQ(trace.countType(RefType::Flush), 1u);
}

TEST(TraceBufferTest, RestrictionKeepsOrderAndDropsOtherCpus)
{
    const TraceBuffer restricted = sampleTrace().restrictedToCpus(2);
    EXPECT_EQ(restricted.size(), 5u);
    EXPECT_EQ(restricted.numCpus(), 2u);
    for (const TraceEvent &event : restricted) {
        EXPECT_LT(event.cpu, 2);
    }
}

TEST(TraceBufferTest, ClearResets)
{
    TraceBuffer trace = sampleTrace();
    trace.clear();
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.numCpus(), 0u);
}

TEST(TraceIoTest, BinaryRoundTrip)
{
    const TraceBuffer original = sampleTrace();
    std::stringstream stream;
    writeBinaryTrace(original, stream);
    const TraceBuffer loaded = readBinaryTrace(stream);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i], original[i]) << "event " << i;
    }
}

TEST(TraceIoTest, TextRoundTrip)
{
    const TraceBuffer original = sampleTrace();
    std::stringstream stream;
    writeTextTrace(original, stream);
    const TraceBuffer loaded = readTextTrace(stream);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i], original[i]) << "event " << i;
    }
}

TEST(TraceIoTest, BinaryRejectsBadMagic)
{
    std::stringstream stream;
    stream << "NOTATRACE-AT-ALL";
    EXPECT_THROW(readBinaryTrace(stream), std::runtime_error);
}

TEST(TraceIoTest, TextRejectsMalformedLines)
{
    std::stringstream stream("0 x 1000\n");
    EXPECT_THROW(readTextTrace(stream), std::runtime_error);

    std::stringstream missing("0\n");
    EXPECT_THROW(readTextTrace(missing), std::runtime_error);
}

TEST(TraceIoTest, TextSkipsCommentsAndBlankLines)
{
    std::stringstream stream("# header\n\n0 i 1f00\n");
    const TraceBuffer trace = readTextTrace(stream);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].addr, 0x1f00u);
    EXPECT_EQ(trace[0].type, RefType::IFetch);
}

TEST(TraceIoTest, FileRoundTripBothFormats)
{
    const TraceBuffer original = sampleTrace();
    const std::string binary_path =
        ::testing::TempDir() + "/trace_roundtrip.swcc";
    const std::string text_path =
        ::testing::TempDir() + "/trace_roundtrip.txt";
    saveTrace(original, binary_path);
    saveTrace(original, text_path);
    EXPECT_EQ(loadTrace(binary_path).size(), original.size());
    EXPECT_EQ(loadTrace(text_path).size(), original.size());
}

TEST(TraceIoTest, MissingFileThrows)
{
    EXPECT_THROW(loadTrace("/nonexistent/path/trace.swcc"),
                 std::runtime_error);
}

TEST(RefTypeTest, Helpers)
{
    EXPECT_TRUE(isData(RefType::Load));
    EXPECT_TRUE(isData(RefType::Store));
    EXPECT_FALSE(isData(RefType::IFetch));
    EXPECT_FALSE(isData(RefType::Flush));
    EXPECT_EQ(refTypeName(RefType::Flush), "flush");
}

} // namespace
} // namespace swcc
