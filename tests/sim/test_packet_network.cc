/**
 * @file
 * Unit and validation tests for the buffered packet-switched omega
 * network simulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/net/net_experiment.hh"
#include "sim/net/packet_network.hh"

namespace swcc
{
namespace
{

PacketNetConfig
config(unsigned stages, double think, unsigned req, unsigned resp,
       std::uint64_t seed = 1)
{
    PacketNetConfig c;
    c.stages = stages;
    c.meanThink = think;
    c.requestWords = req;
    c.responseWords = resp;
    c.seed = seed;
    return c;
}

TEST(PacketNetConfigTest, Validation)
{
    EXPECT_NO_THROW(config(4, 10.0, 1, 4).validate());
    EXPECT_THROW(config(0, 10.0, 1, 4).validate(),
                 std::invalid_argument);
    EXPECT_THROW(config(15, 10.0, 1, 4).validate(),
                 std::invalid_argument);
    EXPECT_THROW(config(4, -1.0, 1, 4).validate(),
                 std::invalid_argument);
    EXPECT_THROW(config(4, 10.0, 0, 4).validate(),
                 std::invalid_argument);
}

TEST(PacketNetworkTest, RunsAndCompletesTransactions)
{
    PacketOmegaNetwork network(config(4, 30.0, 1, 4));
    const PacketNetStats stats = network.run(20'000);
    EXPECT_EQ(stats.cycles, 20'000u);
    EXPECT_GT(stats.transactions, 1'000u);
    EXPECT_GT(stats.computeFraction, 0.0);
    EXPECT_LT(stats.computeFraction, 1.0);
    EXPECT_GT(stats.meanLatency, 2.0 * 4.0); // At least the transit.
    EXPECT_GT(stats.maxQueueDepth, 0u);
}

TEST(PacketNetworkTest, DeterministicPerSeed)
{
    PacketOmegaNetwork a(config(4, 20.0, 1, 4, 7));
    PacketOmegaNetwork b(config(4, 20.0, 1, 4, 7));
    const PacketNetStats sa = a.run(5'000);
    const PacketNetStats sb = b.run(5'000);
    EXPECT_EQ(sa.transactions, sb.transactions);
    EXPECT_DOUBLE_EQ(sa.meanLatency, sb.meanLatency);
}

TEST(PacketNetworkTest, UncontendedLatencyMatchesTransitTime)
{
    // One lonely transaction at a time: latency ~ 2n + mem + resp - 1
    // (+ small accounting constants).
    PacketOmegaNetwork network(config(4, 5'000.0, 1, 4, 3));
    const PacketNetStats stats = network.run(200'000);
    ASSERT_GT(stats.transactions, 100u);
    const double ideal = 2.0 * 4.0 + 2.0 + 3.0;
    EXPECT_NEAR(stats.meanLatency, ideal, 2.5);
}

TEST(PacketNetworkTest, LoadAndBlockingGrowAsThinkShrinks)
{
    const PacketNetStats light =
        PacketOmegaNetwork(config(4, 200.0, 1, 4)).run(30'000);
    const PacketNetStats heavy =
        PacketOmegaNetwork(config(4, 10.0, 1, 4)).run(30'000);
    EXPECT_GT(heavy.linkLoad, light.linkLoad);
    EXPECT_LT(heavy.computeFraction, light.computeFraction);
    EXPECT_GT(heavy.meanLatency, light.meanLatency);
}

TEST(PacketNetworkTest, NoPacketLoss)
{
    // Buffered network: throughput equals offered load below
    // saturation. Transactions * words must equal delivered words;
    // verify indirectly through link-load conservation: measured load
    // ~= transactions * max(req, resp) / (cycles * ports).
    PacketNetConfig c = config(5, 40.0, 1, 4, 11);
    PacketOmegaNetwork network(c);
    const PacketNetStats stats = network.run(60'000);
    const double expected_load =
        static_cast<double>(stats.transactions) * 4.0 /
        (static_cast<double>(stats.cycles) * 32.0);
    EXPECT_NEAR(stats.linkLoad, expected_load, 0.01);
}

TEST(PacketNetworkTest, PostedTransactionsNeverBlockOnResponses)
{
    PacketOmegaNetwork network(config(4, 20.0, 2, 0, 5));
    const PacketNetStats stats = network.run(20'000);
    EXPECT_GT(stats.transactions, 5'000u);
    // Sources only spend the 2 injection cycles blocked.
    EXPECT_NEAR(stats.computeFraction,
                20.0 / 22.0, 0.05);
    EXPECT_NEAR(stats.meanLatency, 2.0, 0.1);
}

TEST(PacketNetworkTest, UnboundedBuffersNeverBackpressure)
{
    PacketOmegaNetwork network(config(4, 15.0, 1, 4, 3));
    const PacketNetStats stats = network.run(20'000);
    EXPECT_EQ(stats.backpressureStalls, 0u);
}

TEST(PacketNetworkTest, FiniteBuffersBoundQueueDepth)
{
    PacketNetConfig bounded = config(4, 12.0, 1, 4, 3);
    bounded.bufferWords = 2;
    PacketOmegaNetwork network(bounded);
    const PacketNetStats stats = network.run(30'000);
    EXPECT_LE(stats.maxQueueDepth, 2u);
    EXPECT_GT(stats.backpressureStalls, 0u);
    EXPECT_GT(stats.transactions, 1'000u);
}

TEST(PacketNetworkTest, TightBuffersCostThroughput)
{
    PacketNetConfig roomy = config(5, 10.0, 1, 4, 9);
    PacketNetConfig tight = roomy;
    tight.bufferWords = 1;
    const PacketNetStats free_flow =
        PacketOmegaNetwork(roomy).run(40'000);
    const PacketNetStats squeezed =
        PacketOmegaNetwork(tight).run(40'000);
    EXPECT_LT(squeezed.transactions, free_flow.transactions);
    EXPECT_LT(squeezed.computeFraction, free_flow.computeFraction);
}

TEST(PacketNetworkTest, ModestBuffersRecoverUnboundedThroughput)
{
    // A few words of buffering per port suffice at moderate load —
    // the Kruskal-Snir infinite-buffer model remains usable for real
    // (finite) switches.
    PacketNetConfig unbounded = config(4, 25.0, 1, 4, 5);
    PacketNetConfig eight = unbounded;
    eight.bufferWords = 8;
    const PacketNetStats a = PacketOmegaNetwork(unbounded).run(40'000);
    const PacketNetStats b = PacketOmegaNetwork(eight).run(40'000);
    EXPECT_NEAR(static_cast<double>(b.transactions),
                static_cast<double>(a.transactions),
                0.02 * static_cast<double>(a.transactions));
}

/** Model-vs-simulation across loads (the X3 validation, as tests). */
class PacketValidationTest : public ::testing::TestWithParam<double>
{
};

TEST_P(PacketValidationTest, KruskalSnirModelTracksTheSimulator)
{
    const PacketValidationPoint point =
        validatePacketPoint(GetParam(), 1, 4, 6, 120'000, 13);
    EXPECT_LT(std::abs(point.computeErrorPercent()), 6.0)
        << "think=" << GetParam() << " sim=" << point.simCompute
        << " model=" << point.modelCompute;
    EXPECT_NEAR(point.simLinkLoad, point.modelLinkLoad, 0.02);
    // The model's latency omits injection/ejection accounting (~1-2
    // cycles); require agreement within 15%.
    EXPECT_NEAR(point.simLatency, point.modelLatency,
                0.15 * point.simLatency);
}

INSTANTIATE_TEST_SUITE_P(Loads, PacketValidationTest,
                         ::testing::Values(100.0, 50.0, 30.0, 20.0,
                                           15.0));

} // namespace
} // namespace swcc
