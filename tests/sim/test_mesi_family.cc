/**
 * @file
 * Unit tests for the MESI / MESIF / MOESI protocol family driver.
 *
 * The family shares one Illinois skeleton, so the MESI variant is
 * cross-checked against the standalone InvalidateProtocol as an
 * independent oracle; MESIF's forwarder slot and MOESI's Owned state
 * are pinned with targeted transition tests.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache/invalidate_protocol.hh"
#include "sim/cache/mesi_family_protocol.hh"
#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/rng.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{
namespace
{

constexpr Addr kBlockA = 0x8000'0000;

CacheConfig
config()
{
    CacheConfig c;
    c.sizeBytes = 1024;
    c.blockBytes = 16;
    c.associativity = 2;
    return c;
}

LineState
stateOf(const MesiFamilyProtocol &protocol, CpuId cpu, Addr addr)
{
    const CacheLine *line = protocol.cache(cpu).find(addr);
    return line != nullptr ? line->state : LineState::Invalid;
}

std::vector<Operation>
opsOf(const AccessResult &result)
{
    return {result.ops.begin(), result.ops.begin() + result.numOps};
}

class MesiFamilyTest : public ::testing::TestWithParam<MesiVariant>
{
};

TEST_P(MesiFamilyTest, ReadSharingDemotesExclusiveToShared)
{
    MesiFamilyProtocol protocol(GetParam(), config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Exclusive);
    protocol.access(1, RefType::Load, kBlockA, result);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedClean);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
}

TEST_P(MesiFamilyTest, WriteToSharedInvalidatesEveryRemoteCopy)
{
    MesiFamilyProtocol protocol(GetParam(), config(), 3);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    protocol.access(2, RefType::Load, kBlockA, result);

    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::WriteBroadcast});
    EXPECT_EQ(result.steals.size(), 2u);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::Invalid);
    EXPECT_EQ(stateOf(protocol, 2, kBlockA), LineState::Invalid);
    EXPECT_EQ(protocol.measurements().invalidations, 1u);
    EXPECT_EQ(protocol.measurements().copiesInvalidated, 2u);
}

TEST_P(MesiFamilyTest, RepeatWritesAfterTheInvalidationAreFree)
{
    MesiFamilyProtocol protocol(GetParam(), config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    protocol.access(0, RefType::Store, kBlockA, result);
    ASSERT_EQ(result.numOps, 1u);
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(result.numOps, 0u);
    EXPECT_EQ(protocol.measurements().invalidations, 1u);
}

TEST_P(MesiFamilyTest, ReReferenceAfterInvalidationIsACoherenceMiss)
{
    MesiFamilyProtocol protocol(GetParam(), config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    protocol.access(0, RefType::Store, kBlockA, result); // Kills 1's.

    protocol.access(1, RefType::Load, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissCache});
    EXPECT_EQ(protocol.measurements().coherenceMisses, 1u);
    EXPECT_EQ(protocol.measurements().ownerSupplies, 1u);
}

TEST_P(MesiFamilyTest, FlushesAreNoOps)
{
    MesiFamilyProtocol protocol(GetParam(), config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    protocol.access(0, RefType::Flush, kBlockA, result);
    EXPECT_EQ(result.numOps, 0u);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
}

TEST_P(MesiFamilyTest, InvariantsHoldUnderRandomTraffic)
{
    MesiFamilyProtocol protocol(GetParam(), config(), 4);
    Rng rng(99);
    AccessResult result;
    for (int i = 0; i < 20'000; ++i) {
        const CpuId cpu = static_cast<CpuId>(rng.below(4));
        const Addr addr = kBlockA + 16 * rng.below(24);
        protocol.access(cpu,
                        rng.chance(0.3) ? RefType::Store : RefType::Load,
                        addr, result);
        if (i % 1000 == 0) {
            ASSERT_NO_THROW(checkCoherenceInvariants(protocol));
        }
    }
    EXPECT_NO_THROW(checkCoherenceInvariants(protocol));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, MesiFamilyTest,
    ::testing::Values(MesiVariant::Mesi, MesiVariant::Mesif,
                      MesiVariant::Moesi),
    [](const auto &param_info) {
        return std::string(
            schemeName(mesiVariantScheme(param_info.param)));
    });

TEST(MesiTest, VariantNamesMatchTheirSchemes)
{
    EXPECT_EQ(MesiFamilyProtocol(MesiVariant::Mesi, config(), 2).name(),
              "MESI");
    EXPECT_EQ(
        MesiFamilyProtocol(MesiVariant::Mesif, config(), 2).name(),
        "MESIF");
    EXPECT_EQ(
        MesiFamilyProtocol(MesiVariant::Moesi, config(), 2).name(),
        "MOESI");
}

TEST(MesifTest, NewestSharerTakesTheForwarderSlot)
{
    MesiFamilyProtocol protocol(MesiVariant::Mesif, config(), 3);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    // Sole (Exclusive) copy: no forwarder needed.
    EXPECT_EQ(protocol.forwarderOf(kBlockA), -1);

    protocol.access(1, RefType::Load, kBlockA, result);
    EXPECT_EQ(protocol.forwarderOf(kBlockA), 1);
    protocol.access(2, RefType::Load, kBlockA, result);
    EXPECT_EQ(protocol.forwarderOf(kBlockA), 2);
}

TEST(MesifTest, ForwarderSuppliesCleanSharedMisses)
{
    MesiFamilyProtocol protocol(MesiVariant::Mesif, config(), 3);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);

    // CPU 1 holds the forwarder slot, so CPU 2's miss is supplied
    // cache-to-cache — under plain MESI this would go to memory.
    protocol.access(2, RefType::Load, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissCache});
    EXPECT_EQ(protocol.measurements().forwardSupplies, 1u);

    MesiFamilyProtocol mesi(MesiVariant::Mesi, config(), 3);
    mesi.access(0, RefType::Load, kBlockA, result);
    mesi.access(1, RefType::Load, kBlockA, result);
    mesi.access(2, RefType::Load, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
    EXPECT_EQ(mesi.measurements().forwardSupplies, 0u);
}

TEST(MesifTest, InvalidationClearsTheForwarderSlot)
{
    MesiFamilyProtocol protocol(MesiVariant::Mesif, config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    ASSERT_EQ(protocol.forwarderOf(kBlockA), 1);

    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(protocol.forwarderOf(kBlockA), -1);
}

TEST(MesifTest, EvictedForwarderDropsTheSlot)
{
    // Fill CPU 1's set containing kBlockA until its forwarder copy is
    // evicted; the slot must not dangle on the evicted CPU.
    MesiFamilyProtocol protocol(MesiVariant::Mesif, config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    ASSERT_EQ(protocol.forwarderOf(kBlockA), 1);

    // 1 KiB, 16 B blocks, 2-way: 32 sets; addresses 512 B apart map to
    // the same set. Two conflicting fills evict kBlockA from CPU 1.
    protocol.access(1, RefType::Load, kBlockA + 512, result);
    protocol.access(1, RefType::Load, kBlockA + 1024, result);
    ASSERT_EQ(stateOf(protocol, 1, kBlockA), LineState::Invalid);
    EXPECT_EQ(protocol.forwarderOf(kBlockA), -1);
}

TEST(MoesiTest, OwnerSuppliesAndKeepsOwnership)
{
    MesiFamilyProtocol protocol(MesiVariant::Moesi, config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    ASSERT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);

    protocol.access(1, RefType::Load, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissCache});
    // MOESI: the supplier moves to Owned (SharedDirty), memory stays
    // stale; MESI/MESIF would demote the supplier to SharedClean.
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedDirty);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
    EXPECT_EQ(protocol.measurements().ownerSupplies, 1u);

    MesiFamilyProtocol mesi(MesiVariant::Mesi, config(), 2);
    mesi.access(0, RefType::Store, kBlockA, result);
    mesi.access(1, RefType::Load, kBlockA, result);
    EXPECT_EQ(stateOf(mesi, 0, kBlockA), LineState::SharedClean);
}

TEST(MoesiTest, OwnerUpgradeInvalidatesTheSharers)
{
    MesiFamilyProtocol protocol(MesiVariant::Moesi, config(), 3);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    protocol.access(2, RefType::Load, kBlockA, result);
    ASSERT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedDirty);

    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::WriteBroadcast});
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::Invalid);
    EXPECT_EQ(stateOf(protocol, 2, kBlockA), LineState::Invalid);
}

TEST(MoesiTest, EvictingAnOwnedLineWritesBack)
{
    MesiFamilyProtocol protocol(MesiVariant::Moesi, config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result); // 0 → Owned.
    ASSERT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedDirty);

    // Conflict CPU 0's set: the Owned victim carries the deferred
    // write-back, so the evicting miss is a dirty miss.
    protocol.access(0, RefType::Load, kBlockA + 512, result);
    protocol.access(0, RefType::Load, kBlockA + 1024, result);
    ASSERT_EQ(stateOf(protocol, 0, kBlockA), LineState::Invalid);
    EXPECT_TRUE(result.hasDirtyMiss());
}

TEST(MesiOracleTest, MesiMatchesTheStandaloneInvalidateProtocol)
{
    // MESI and the standalone InvalidateProtocol implement the same
    // Illinois protocol independently; on any trace the two must
    // produce identical operation streams and timing. (SimStats
    // serializations differ only in the protocol name.)
    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;
    for (AppProfile profile : kAllProfiles) {
        const TraceBuffer trace = generateTrace(
            profileConfig(profile, 4, 10'000, 23, false));

        MultiprocessorSystem mesi(
            std::make_unique<MesiFamilyProtocol>(MesiVariant::Mesi,
                                                 cache, 4));
        MultiprocessorSystem oracle(
            std::make_unique<InvalidateProtocol>(cache, 4));
        const SimStats a = mesi.run(trace);
        const SimStats b = oracle.run(trace);

        EXPECT_EQ(a.opCounts, b.opCounts)
            << "profile " << profileName(profile);
        EXPECT_EQ(a.makespan, b.makespan)
            << "profile " << profileName(profile);
        EXPECT_EQ(a.busBusyCycles, b.busBusyCycles)
            << "profile " << profileName(profile);
        EXPECT_EQ(a.busTransactions, b.busTransactions)
            << "profile " << profileName(profile);
        EXPECT_EQ(a.dirtyMisses, b.dirtyMisses)
            << "profile " << profileName(profile);
    }
}

TEST(MesiFamilySystemTest, EverySchemeRunsUnderTheTimingSimulator)
{
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PopsLike, 4, 20'000, 17, false);
    const TraceBuffer trace = generateTrace(workload);

    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;
    for (Scheme scheme :
         {Scheme::Mesi, Scheme::Mesif, Scheme::Moesi}) {
        MultiprocessorSystem system(scheme, cache, 4,
                                    workload.sharedClassifier());
        const SimStats stats = system.run(trace);
        EXPECT_EQ(stats.scheme, scheme);
        EXPECT_EQ(stats.protocolName, schemeName(scheme));
        EXPECT_GT(stats.processingPower(), 1.0) << schemeName(scheme);
        EXPECT_GT(stats.opCount(Operation::WriteBroadcast), 0u)
            << schemeName(scheme);
    }
}

TEST(MesiFamilySystemTest, MesifOnlyReclassifiesMisses)
{
    // On an identical access stream the forwarder changes *where*
    // misses are supplied from, never whether they happen: MESIF's
    // cache state transitions are exactly MESI's, so the two tallies
    // differ only by memory-supplied → cache-supplied reclassification
    // (the forwarder count). The timing simulator would perturb the
    // interleave, so the protocols are driven directly in trace order.
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PeroLike, 4, 20'000, 31, false);
    const TraceBuffer trace = generateTrace(workload);

    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;
    MesiFamilyProtocol mesi(MesiVariant::Mesi, cache, 4);
    MesiFamilyProtocol mesif(MesiVariant::Mesif, cache, 4);

    std::array<std::uint64_t, kNumOperations> mesi_ops{};
    std::array<std::uint64_t, kNumOperations> mesif_ops{};
    AccessResult result;
    for (const TraceEvent &event : trace) {
        mesi.access(event.cpu, event.type, event.addr, result);
        for (std::uint8_t i = 0; i < result.numOps; ++i) {
            ++mesi_ops[operationIndex(result.ops[i])];
        }
        mesif.access(event.cpu, event.type, event.addr, result);
        for (std::uint8_t i = 0; i < result.numOps; ++i) {
            ++mesif_ops[operationIndex(result.ops[i])];
        }
    }

    const auto count = [](const auto &ops, Operation op) {
        return ops[operationIndex(op)];
    };
    const auto supplied_by_cache = [&count](const auto &ops) {
        return count(ops, Operation::CleanMissCache) +
            count(ops, Operation::DirtyMissCache);
    };
    const auto supplied_by_mem = [&count](const auto &ops) {
        return count(ops, Operation::CleanMissMem) +
            count(ops, Operation::DirtyMissMem);
    };
    const std::uint64_t forwarded =
        mesif.measurements().forwardSupplies;
    EXPECT_GT(forwarded, 0u);
    EXPECT_EQ(supplied_by_cache(mesif_ops),
              supplied_by_cache(mesi_ops) + forwarded);
    EXPECT_EQ(supplied_by_mem(mesif_ops) + forwarded,
              supplied_by_mem(mesi_ops));
    // Victim dirtiness is state-determined, hence identical too.
    EXPECT_EQ(count(mesif_ops, Operation::CleanMissCache) +
                  count(mesif_ops, Operation::CleanMissMem),
              count(mesi_ops, Operation::CleanMissCache) +
                  count(mesi_ops, Operation::CleanMissMem));
    EXPECT_EQ(count(mesif_ops, Operation::WriteBroadcast),
              count(mesi_ops, Operation::WriteBroadcast));
    EXPECT_EQ(mesif.measurements().coherenceMisses,
              mesi.measurements().coherenceMisses);
}

} // namespace
} // namespace swcc
