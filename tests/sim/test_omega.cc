/**
 * @file
 * Unit tests for the omega-network simulator.
 */

#include <gtest/gtest.h>

#include "sim/net/omega_network.hh"

namespace swcc
{
namespace
{

OmegaConfig
config(unsigned stages, double think, double msg,
       NetMode mode = NetMode::UnitRequest, std::uint64_t seed = 1)
{
    OmegaConfig c;
    c.stages = stages;
    c.meanThink = think;
    c.messageCycles = msg;
    c.mode = mode;
    c.seed = seed;
    return c;
}

TEST(OmegaConfigTest, Validation)
{
    EXPECT_NO_THROW(config(4, 10.0, 8.0).validate());
    EXPECT_THROW(config(0, 10.0, 8.0).validate(),
                 std::invalid_argument);
    EXPECT_THROW(config(17, 10.0, 8.0).validate(),
                 std::invalid_argument);
    EXPECT_THROW(config(4, -1.0, 8.0).validate(),
                 std::invalid_argument);
    EXPECT_THROW(config(4, 10.0, 0.5).validate(),
                 std::invalid_argument);
}

TEST(OmegaNetworkTest, PortCountIsTwoToTheStages)
{
    EXPECT_EQ(OmegaNetwork(config(3, 10.0, 4.0)).ports(), 8u);
    EXPECT_EQ(OmegaNetwork(config(8, 10.0, 4.0)).ports(), 256u);
}

TEST(OmegaNetworkTest, RunsAndProducesConsistentStats)
{
    OmegaNetwork network(config(4, 30.0, 10.0));
    const OmegaStats stats = network.run(20'000);

    EXPECT_EQ(stats.cycles, 20'000u);
    EXPECT_GT(stats.transactions, 0u);
    EXPECT_GT(stats.attempts, stats.accepted);
    EXPECT_GT(stats.acceptance, 0.0);
    EXPECT_LE(stats.acceptance, 1.0);
    EXPECT_GT(stats.computeFraction, 0.0);
    EXPECT_LT(stats.computeFraction, 1.0);
    ASSERT_EQ(stats.stageLoads.size(), 5u);
}

TEST(OmegaNetworkTest, StageLoadsDecreaseMonotonically)
{
    OmegaNetwork network(config(6, 10.0, 16.0));
    const OmegaStats stats = network.run(30'000);
    for (std::size_t i = 1; i < stats.stageLoads.size(); ++i) {
        EXPECT_LE(stats.stageLoads[i], stats.stageLoads[i - 1] + 1e-9)
            << "stage " << i;
    }
}

TEST(OmegaNetworkTest, DeterministicPerSeed)
{
    OmegaNetwork a(config(4, 20.0, 8.0, NetMode::UnitRequest, 5));
    OmegaNetwork b(config(4, 20.0, 8.0, NetMode::UnitRequest, 5));
    const OmegaStats sa = a.run(5'000);
    const OmegaStats sb = b.run(5'000);
    EXPECT_EQ(sa.accepted, sb.accepted);
    EXPECT_EQ(sa.transactions, sb.transactions);
}

TEST(OmegaNetworkTest, LighterLoadMeansMoreComputing)
{
    const OmegaStats heavy =
        OmegaNetwork(config(4, 5.0, 12.0)).run(20'000);
    const OmegaStats light =
        OmegaNetwork(config(4, 200.0, 12.0)).run(20'000);
    EXPECT_GT(light.computeFraction, heavy.computeFraction);
    EXPECT_GT(light.acceptance, heavy.acceptance);
}

TEST(OmegaNetworkTest, CircuitModeHoldsPathsLonger)
{
    // With the same offered load, circuit switching admits fewer
    // setups per cycle than unit requests (each setup claims the path
    // for the whole message), so stage-0 acceptance per attempt drops.
    const OmegaStats unit =
        OmegaNetwork(config(4, 20.0, 12.0, NetMode::UnitRequest))
            .run(30'000);
    const OmegaStats circuit =
        OmegaNetwork(config(4, 20.0, 12.0, NetMode::Circuit))
            .run(30'000);
    EXPECT_LT(circuit.acceptance, unit.acceptance);
    EXPECT_GT(circuit.transactions, 0u);
}

TEST(OmegaNetworkTest, SingleStageNetworkWorks)
{
    OmegaNetwork network(config(1, 10.0, 3.0));
    const OmegaStats stats = network.run(10'000);
    EXPECT_GT(stats.transactions, 0u);
    ASSERT_EQ(stats.stageLoads.size(), 2u);
}

TEST(OmegaKaryTest, WideSwitchNetworkRuns)
{
    OmegaConfig c = config(3, 20.0, 10.0);
    c.switchDim = 4; // 64 ports in 3 stages.
    OmegaNetwork network(c);
    EXPECT_EQ(network.ports(), 64u);
    const OmegaStats stats = network.run(20'000);
    EXPECT_GT(stats.transactions, 1'000u);
    ASSERT_EQ(stats.stageLoads.size(), 4u);
    for (std::size_t i = 1; i < stats.stageLoads.size(); ++i) {
        EXPECT_LE(stats.stageLoads[i], stats.stageLoads[i - 1] + 1e-9);
    }
}

TEST(OmegaKaryTest, FewerWideStagesBeatManyNarrowOnes)
{
    // 64 ports as 6 stages of 2x2 vs 3 stages of 4x4, same message
    // time: the wide build computes more.
    OmegaConfig narrow = config(6, 15.0, 12.0, NetMode::Circuit, 3);
    OmegaConfig wide = config(3, 15.0, 12.0, NetMode::Circuit, 3);
    wide.switchDim = 4;
    const OmegaStats narrow_stats = OmegaNetwork(narrow).run(40'000);
    const OmegaStats wide_stats = OmegaNetwork(wide).run(40'000);
    EXPECT_GT(wide_stats.computeFraction, narrow_stats.computeFraction);
}

TEST(OmegaKaryTest, RejectsBadDimensionsAndOversizedNetworks)
{
    OmegaConfig c = config(4, 10.0, 8.0);
    c.switchDim = 1;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c.switchDim = 16;
    c.stages = 8; // 16^8 ports: far too large.
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(NetSourceTest, LifecycleAndCounters)
{
    Rng rng(1);
    NetSource source(5.0, 3.0, 16);
    // First tick leaves thinking for requesting.
    source.tick(rng);
    EXPECT_EQ(source.state(), NetSource::State::Requesting);
    EXPECT_LT(source.dest(), 16u);

    source.unitAccepted(rng);
    source.unitAccepted(rng);
    source.unitAccepted(rng);
    EXPECT_EQ(source.state(), NetSource::State::Thinking);
    EXPECT_EQ(source.transactions(), 1u);
}

TEST(NetSourceTest, HoldingLifecycle)
{
    Rng rng(2);
    NetSource source(5.0, 4.0, 16);
    source.tick(rng);
    ASSERT_EQ(source.state(), NetSource::State::Requesting);
    source.startHolding(2.0);
    EXPECT_EQ(source.state(), NetSource::State::Holding);
    source.tick(rng);
    EXPECT_EQ(source.state(), NetSource::State::Holding);
    source.tick(rng);
    EXPECT_EQ(source.state(), NetSource::State::Thinking);
    EXPECT_EQ(source.transactions(), 1u);
}

TEST(NetSourceTest, StateMachineGuards)
{
    Rng rng(3);
    NetSource source(5.0, 2.0, 8);
    EXPECT_THROW(source.unitAccepted(rng), std::logic_error);
    EXPECT_THROW(source.startHolding(4.0), std::logic_error);
    EXPECT_THROW(NetSource(-1.0, 2.0, 8), std::invalid_argument);
    EXPECT_THROW(NetSource(5.0, 0.5, 8), std::invalid_argument);
    EXPECT_THROW(NetSource(5.0, 2.0, 0), std::invalid_argument);
}

} // namespace
} // namespace swcc
