/**
 * @file
 * Unit tests for workload-parameter extraction.
 */

#include <gtest/gtest.h>

#include "sim/mp/param_extractor.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{
namespace
{

CacheConfig
cache64k()
{
    CacheConfig c;
    c.sizeBytes = 64 * 1024;
    c.blockBytes = 16;
    return c;
}

class ExtractorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload_ = new SyntheticWorkloadConfig(
            profileConfig(AppProfile::PopsLike, 4, 60'000, 33, true));
        trace_ = new TraceBuffer(generateTrace(*workload_));
        extracted_ = new ExtractedParams(extractParams(
            *trace_, cache64k(), workload_->sharedClassifier()));
    }

    static void
    TearDownTestSuite()
    {
        delete extracted_;
        delete trace_;
        delete workload_;
    }

    static SyntheticWorkloadConfig *workload_;
    static TraceBuffer *trace_;
    static ExtractedParams *extracted_;
};

SyntheticWorkloadConfig *ExtractorTest::workload_ = nullptr;
TraceBuffer *ExtractorTest::trace_ = nullptr;
ExtractedParams *ExtractorTest::extracted_ = nullptr;

TEST_F(ExtractorTest, ExtractedParametersAreValid)
{
    EXPECT_NO_THROW(extracted_->params.validate());
}

TEST_F(ExtractorTest, DirectCountsComeFromTheTrace)
{
    EXPECT_DOUBLE_EQ(extracted_->params.ls, extracted_->traceStats.ls);
    EXPECT_DOUBLE_EQ(extracted_->params.shd,
                     extracted_->traceStats.shd);
    EXPECT_DOUBLE_EQ(extracted_->params.wr, extracted_->traceStats.wr);
    EXPECT_NEAR(extracted_->params.ls, workload_->ls, 0.03);
    EXPECT_NEAR(extracted_->params.shd, workload_->shd, 0.05);
}

TEST_F(ExtractorTest, MissRatesComeFromTheBaseSimulation)
{
    EXPECT_DOUBLE_EQ(extracted_->params.msdat,
                     extracted_->baseStats.dataMissRate());
    EXPECT_DOUBLE_EQ(extracted_->params.mains,
                     extracted_->baseStats.instrMissRate());
    EXPECT_DOUBLE_EQ(extracted_->params.md,
                     extracted_->baseStats.dirtyMissFraction());
    EXPECT_GT(extracted_->params.msdat, 0.0);
    EXPECT_LT(extracted_->params.msdat, 0.2);
    EXPECT_GT(extracted_->params.mains, 0.0);
    EXPECT_LT(extracted_->params.mains, 0.1);
}

TEST_F(ExtractorTest, SharingParametersComeFromTheDragonRun)
{
    const DragonMeasurements &m = extracted_->dragonMeasurements;
    EXPECT_GT(m.sharedMisses, 0u);
    EXPECT_GT(m.sharedWrites, 0u);
    EXPECT_DOUBLE_EQ(extracted_->params.oclean, m.oclean());
    EXPECT_DOUBLE_EQ(extracted_->params.opres, m.opres());
    EXPECT_GE(extracted_->params.oclean, 0.0);
    EXPECT_LE(extracted_->params.oclean, 1.0);
    EXPECT_GE(extracted_->params.nshd, 0.0);
}

TEST_F(ExtractorTest, FlushBearingTraceYieldsMeasuredMdshd)
{
    ASSERT_TRUE(extracted_->traceStats.mdshd.has_value());
    EXPECT_DOUBLE_EQ(extracted_->params.mdshd,
                     *extracted_->traceStats.mdshd);
}

TEST(ExtractorDefaultsTest, HardwareTraceFallsBackForMdshd)
{
    // A trace without flushes cannot expose mdshd; the Table 7 middle
    // value stands in.
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::ThorLike, 2, 10'000, 7, false);
    const TraceBuffer trace = generateTrace(workload);
    const ExtractedParams extracted =
        extractParams(trace, cache64k(), workload.sharedClassifier());
    EXPECT_FALSE(extracted.traceStats.mdshd.has_value());
    EXPECT_DOUBLE_EQ(extracted.params.mdshd, 0.25);
}

TEST(ExtractorDefaultsTest, DynamicSharingWorksWithoutClassifier)
{
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PopsLike, 4, 20'000, 13, false);
    const TraceBuffer trace = generateTrace(workload);
    const ExtractedParams extracted = extractParams(trace, cache64k());
    EXPECT_NO_THROW(extracted.params.validate());
    EXPECT_GT(extracted.params.shd, 0.0);
    // Dynamic sharing is a subset of the marked region.
    const ExtractedParams marked = extractParams(
        trace, cache64k(), workload.sharedClassifier());
    EXPECT_LE(extracted.params.shd, marked.params.shd + 1e-12);
}

TEST(ExtractorDefaultsTest, SingleCpuTraceHasNoSharing)
{
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PopsLike, 1, 10'000, 3, false);
    const TraceBuffer trace = generateTrace(workload);
    const ExtractedParams extracted = extractParams(trace, cache64k());
    EXPECT_DOUBLE_EQ(extracted.params.shd, 0.0);
}

} // namespace
} // namespace swcc
