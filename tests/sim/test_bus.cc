/**
 * @file
 * Unit tests for the cycle-level bus.
 */

#include <gtest/gtest.h>

#include "sim/bus/bus.hh"

namespace swcc
{
namespace
{

TEST(BusTest, ImmediateGrantWhenIdle)
{
    Bus bus;
    const Bus::Grant grant = bus.acquire(10.0, 4.0);
    EXPECT_DOUBLE_EQ(grant.start, 10.0);
    EXPECT_DOUBLE_EQ(grant.waited, 0.0);
    EXPECT_DOUBLE_EQ(bus.freeAt(), 14.0);
}

TEST(BusTest, BackToBackRequestsQueueFcfs)
{
    Bus bus;
    bus.acquire(0.0, 7.0);
    const Bus::Grant second = bus.acquire(3.0, 4.0);
    EXPECT_DOUBLE_EQ(second.start, 7.0);
    EXPECT_DOUBLE_EQ(second.waited, 4.0);
    const Bus::Grant third = bus.acquire(20.0, 1.0);
    EXPECT_DOUBLE_EQ(third.start, 20.0);
    EXPECT_DOUBLE_EQ(third.waited, 0.0);
}

TEST(BusTest, StatisticsAccumulate)
{
    Bus bus;
    bus.acquire(0.0, 7.0);
    bus.acquire(0.0, 11.0);
    EXPECT_DOUBLE_EQ(bus.busyCycles(), 18.0);
    EXPECT_DOUBLE_EQ(bus.totalWaited(), 7.0);
    EXPECT_EQ(bus.transactions(), 2u);
}

TEST(BusTest, ResetClearsEverything)
{
    Bus bus;
    bus.acquire(5.0, 3.0);
    bus.reset();
    EXPECT_DOUBLE_EQ(bus.freeAt(), 0.0);
    EXPECT_DOUBLE_EQ(bus.busyCycles(), 0.0);
    EXPECT_DOUBLE_EQ(bus.totalWaited(), 0.0);
    EXPECT_EQ(bus.transactions(), 0u);
}

TEST(BusTest, RejectsNonPositiveDurations)
{
    Bus bus;
    EXPECT_THROW(bus.acquire(0.0, 0.0), std::invalid_argument);
    EXPECT_THROW(bus.acquire(0.0, -1.0), std::invalid_argument);
}

} // namespace
} // namespace swcc
