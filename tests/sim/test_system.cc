/**
 * @file
 * Unit tests for the multiprocessor system timing layer.
 */

#include <gtest/gtest.h>

#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{
namespace
{

constexpr Addr kCode = 0x0100'0000;
constexpr Addr kShared = 0x8000'0000;

CacheConfig
config()
{
    CacheConfig c;
    c.sizeBytes = 4096;
    c.blockBytes = 16;
    c.associativity = 2;
    return c;
}

SharedClassifier
classifier()
{
    return [](Addr block) { return block >= kShared; };
}

TEST(SystemTimingTest, SingleInstructionColdMiss)
{
    // One ifetch with a cold clean miss: 1 execute + 3 local miss
    // handling + 7 bus = 11 cycles.
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, kCode);

    MultiprocessorSystem system(Scheme::Base, config(), 1);
    const SimStats stats = system.run(trace);
    EXPECT_DOUBLE_EQ(stats.makespan, 11.0);
    EXPECT_EQ(stats.instrMisses, 1u);
    EXPECT_EQ(stats.totalInstructions(), 1u);
    EXPECT_NEAR(stats.processingPower(), 1.0 / 11.0, 1e-12);
}

TEST(SystemTimingTest, CachedInstructionTakesOneCycle)
{
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, kCode);
    trace.append(0, RefType::IFetch, kCode + 4);

    const SimStats stats =
        simulateTrace(Scheme::Base, trace, config());
    EXPECT_DOUBLE_EQ(stats.makespan, 12.0);
    EXPECT_EQ(stats.instrMisses, 1u);
}

TEST(SystemTimingTest, DataMissesAreChargedSeparately)
{
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, kCode);
    trace.append(0, RefType::Load, 0x4000'0000);

    const SimStats stats =
        simulateTrace(Scheme::Base, trace, config());
    // 11 for the instruction, 10 for the data miss (3 local + 7 bus).
    EXPECT_DOUBLE_EQ(stats.makespan, 21.0);
    EXPECT_EQ(stats.dataMisses, 1u);
    EXPECT_EQ(stats.instrMisses, 1u);
}

TEST(SystemTimingTest, BusContentionSerializesMisses)
{
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, kCode);
    trace.append(1, RefType::IFetch, kCode + 0x0010'0000);

    MultiprocessorSystem system(Scheme::Base, config(), 2);
    const SimStats stats = system.run(trace);
    // First processor: 1 + 3, bus 4..11, done 11. Second: local work
    // overlaps, but its bus grant waits until 11, finishing at 18.
    EXPECT_DOUBLE_EQ(stats.perCpu[0].finishTime, 11.0);
    EXPECT_DOUBLE_EQ(stats.perCpu[1].finishTime, 18.0);
    EXPECT_DOUBLE_EQ(stats.perCpu[1].busWaiting, 7.0);
    EXPECT_EQ(stats.busTransactions, 2u);
    EXPECT_DOUBLE_EQ(stats.busBusyCycles, 14.0);
}

TEST(SystemTimingTest, FlushInstructionCostsItsFlushOperation)
{
    // ifetch(hit-after-miss) + flush of a clean cached block: the
    // flush instruction's execution is the 1-cycle clean flush, not an
    // extra instruction cycle.
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, kCode);          // 11 cycles.
    trace.append(0, RefType::Load, kShared);          // 10 cycles.
    trace.append(0, RefType::IFetch, kCode + 4);      // hit: fetch of flush
    trace.append(0, RefType::Flush, kShared);         // 1 cycle.

    const SimStats stats =
        simulateTrace(Scheme::SoftwareFlush, trace, config());
    EXPECT_DOUBLE_EQ(stats.makespan, 22.0);
    EXPECT_EQ(stats.totalInstructions(), 2u);
    EXPECT_EQ(stats.totalUsefulInstructions(), 1u);
    EXPECT_EQ(stats.opCount(Operation::CleanFlush), 1u);
}

TEST(SystemTimingTest, DirtyFlushPaysBusTime)
{
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, kCode);
    trace.append(0, RefType::Store, kShared);
    trace.append(0, RefType::IFetch, kCode + 4);
    trace.append(0, RefType::Flush, kShared);

    const SimStats stats =
        simulateTrace(Scheme::SoftwareFlush, trace, config());
    // 11 + 10 + 0 (fetch of flush, hit, no execute cycle) + 6 = 27.
    EXPECT_DOUBLE_EQ(stats.makespan, 27.0);
    EXPECT_EQ(stats.opCount(Operation::DirtyFlush), 1u);
}

TEST(SystemTimingTest, DragonStealsShowUpInTheVictimsClock)
{
    TraceBuffer trace;
    trace.append(0, RefType::Load, kShared);
    trace.append(1, RefType::Load, kShared);
    trace.append(0, RefType::Store, kShared); // Broadcast; steals 1.

    MultiprocessorSystem system(Scheme::Dragon, config(), 2);
    const SimStats stats = system.run(trace);
    EXPECT_DOUBLE_EQ(stats.perCpu[1].stolen, 1.0);
    EXPECT_EQ(stats.opCount(Operation::WriteBroadcast), 1u);
}

TEST(SystemTimingTest, StolenCyclesReachARetiredVictimsFinishTime)
{
    // cpu1 retires after a single load; cpu0 then broadcasts N stores,
    // each stealing a cycle from cpu1's still-resident copy. Those
    // post-retirement steals must land in cpu1's finish time (and
    // hence the makespan) — they used to vanish, because only a later
    // step() of the victim folded readyAt back into finishTime.
    constexpr int kStores = 50;
    const auto makeTrace = [](int stores) {
        TraceBuffer trace;
        trace.append(1, RefType::Load, kShared);
        trace.append(0, RefType::Load, kShared);
        for (int i = 0; i < stores; ++i) {
            trace.append(0, RefType::Store, kShared);
        }
        return trace;
    };

    MultiprocessorSystem quiet(Scheme::Dragon, config(), 2);
    const SimStats without = quiet.run(makeTrace(0));
    MultiprocessorSystem noisy(Scheme::Dragon, config(), 2);
    const SimStats with = noisy.run(makeTrace(kStores));

    // cpu1's own work is identical in both runs; every broadcast
    // steals exactly one cycle from it.
    EXPECT_DOUBLE_EQ(with.perCpu[1].stolen,
                     static_cast<double>(kStores));
    EXPECT_DOUBLE_EQ(with.perCpu[1].finishTime,
                     without.perCpu[1].finishTime + kStores);
    EXPECT_GE(with.makespan, with.perCpu[1].finishTime);
}

TEST(SystemTimingTest, ReadThroughAndWriteThroughTimings)
{
    TraceBuffer trace;
    trace.append(0, RefType::Load, kShared);  // Read-through: 5.
    trace.append(0, RefType::Store, kShared); // Write-through: 2.

    MultiprocessorSystem system(Scheme::NoCache, config(), 1,
                                classifier());
    const SimStats stats = system.run(trace);
    EXPECT_DOUBLE_EQ(stats.makespan, 7.0);
    EXPECT_EQ(stats.opCount(Operation::ReadThrough), 1u);
    EXPECT_EQ(stats.opCount(Operation::WriteThrough), 1u);
}

TEST(SystemTest, RejectsTracesWithTooManyCpus)
{
    TraceBuffer trace;
    trace.append(3, RefType::IFetch, kCode);
    MultiprocessorSystem system(Scheme::Base, config(), 2);
    EXPECT_THROW(system.run(trace), std::invalid_argument);
}

TEST(SystemTest, SchemeOrderingOnARealisticTrace)
{
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PopsLike, 4, 40'000, 21, false);
    const TraceBuffer trace = generateTrace(workload);
    const SharedClassifier shared = workload.sharedClassifier();

    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;

    auto power = [&](Scheme scheme) {
        MultiprocessorSystem system(scheme, cache, 4, shared);
        return system.run(trace).processingPower();
    };

    const double base = power(Scheme::Base);
    const double dragon = power(Scheme::Dragon);
    const double nocache = power(Scheme::NoCache);

    EXPECT_GE(base, dragon);
    EXPECT_GT(dragon, nocache);
}

TEST(SystemTest, InvariantCheckingCanRunInline)
{
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PeroLike, 4, 5'000, 5, false);
    const TraceBuffer trace = generateTrace(workload);

    CacheConfig cache;
    cache.sizeBytes = 16 * 1024;
    cache.blockBytes = 16;
    MultiprocessorSystem system(Scheme::Dragon, cache, 4);
    system.setInvariantCheckInterval(1'000);
    EXPECT_NO_THROW(system.run(trace));
}

TEST(SystemTest, StatsDerivedQuantitiesAreConsistent)
{
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::ThorLike, 2, 20'000, 9, false);
    const TraceBuffer trace = generateTrace(workload);

    const SimStats stats = simulateTrace(Scheme::Base, trace, config());
    EXPECT_EQ(stats.cpus, 2u);
    EXPECT_GT(stats.makespan, 0.0);
    EXPECT_GT(stats.busUtilization(), 0.0);
    EXPECT_LE(stats.busUtilization(), 1.0);
    EXPECT_GT(stats.dataMissRate(), 0.0);
    EXPECT_LT(stats.dataMissRate(), 1.0);
    EXPECT_GT(stats.instrMissRate(), 0.0);
    EXPECT_LT(stats.instrMissRate(), 1.0);
    EXPECT_GE(stats.dirtyMissFraction(), 0.0);
    EXPECT_LE(stats.dirtyMissFraction(), 1.0);
    EXPECT_NEAR(stats.avgUtilization() * 2.0, stats.processingPower(),
                1e-12);
}

} // namespace
} // namespace swcc
