/**
 * @file
 * Golden tests for the observability determinism contract: turning
 * tracing on must not change a single simulator statistic, and the
 * trace the simulator emits must be a valid Chrome trace-event
 * document (non-decreasing timestamps per thread, balanced B/E
 * pairs). Both tests also pass under SWCC_OBS=OFF, where the emitted
 * document is empty but still valid.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/obs/obs.hh"
#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{
namespace
{

CacheConfig
cache64k()
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.blockBytes = 16;
    return config;
}

/** Serialized stats of one cold run with tracing set to @p tracing. */
std::string
runWithTracing(Scheme scheme, const TraceBuffer &trace,
               const SharedClassifier &shared, bool tracing)
{
    obs::tracer().setEnabled(tracing);
    MultiprocessorSystem system(scheme, cache64k(), 4, shared);
    const std::string serialized = system.run(trace).serialize();
    obs::tracer().setEnabled(false);
    return serialized;
}

TEST(ObsGoldenTest, StatsAreByteIdenticalWithTracingOnAndOff)
{
    obs::tracer().clearForTest();
    for (Scheme scheme : kAllSchemes) {
        const bool software = scheme == Scheme::SoftwareFlush;
        const SyntheticWorkloadConfig workload = profileConfig(
            AppProfile::PeroLike, 4, 8'000, 23, software);
        const TraceBuffer trace = generateTrace(workload);
        const SharedClassifier shared = workload.sharedClassifier();

        EXPECT_EQ(runWithTracing(scheme, trace, shared, false),
                  runWithTracing(scheme, trace, shared, true))
            << "scheme " << schemeName(scheme);
    }
}

TEST(ObsGoldenTest, SimulatorTraceIsValidChromeJson)
{
    obs::TraceRecorder &trc = obs::tracer();
    trc.clearForTest();

    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PeroLike, 4, 8'000, 23, false);
    const TraceBuffer trace = generateTrace(workload);
    runWithTracing(Scheme::Dragon, trace, workload.sharedClassifier(),
                   true);

    std::ostringstream os;
    trc.writeChromeTrace(os);

    std::string error;
    const obs::JsonValue doc = obs::parseJson(os.str());
    ASSERT_TRUE(obs::validateChromeTrace(doc, &error)) << error;

    // The simulated-time pid carries per-CPU retire spans (X) and
    // bus-grant spans; count them and pin that every X sits on a
    // numeric pid/tid with a non-negative duration (the validator
    // checked ts ordering and B/E balance already).
    const obs::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t sim_spans = 0;
    for (const obs::JsonValue &event : events->array) {
        const obs::JsonValue *ph = event.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string != "X") {
            continue;
        }
        const obs::JsonValue *pid = event.find("pid");
        ASSERT_NE(pid, nullptr);
        if (pid->number >= 2.0) {
            ++sim_spans;
        }
    }
    if (obs::compiledIn()) {
        EXPECT_GT(sim_spans, 0u);
    } else {
        EXPECT_EQ(events->array.size(), 0u);
    }
}

} // namespace
} // namespace swcc
