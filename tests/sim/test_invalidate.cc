/**
 * @file
 * Unit tests for the write-invalidate protocol (simulator) and its
 * analytical model.
 */

#include <gtest/gtest.h>

#include "core/invalidate_model.hh"
#include "core/scheme_evaluator.hh"
#include "sim/cache/dragon_protocol.hh"
#include "sim/cache/invalidate_protocol.hh"
#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/rng.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{
namespace
{

constexpr Addr kBlockA = 0x8000'0000;

CacheConfig
config()
{
    CacheConfig c;
    c.sizeBytes = 1024;
    c.blockBytes = 16;
    c.associativity = 2;
    return c;
}

LineState
stateOf(const InvalidateProtocol &protocol, CpuId cpu, Addr addr)
{
    const CacheLine *line = protocol.cache(cpu).find(addr);
    return line != nullptr ? line->state : LineState::Invalid;
}

std::vector<Operation>
opsOf(const AccessResult &result)
{
    return {result.ops.begin(), result.ops.begin() + result.numOps};
}

TEST(InvalidateProtocolTest, ReadSharingWorksLikeMesi)
{
    InvalidateProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Exclusive);
    protocol.access(1, RefType::Load, kBlockA, result);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedClean);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
}

TEST(InvalidateProtocolTest, WriteToSharedInvalidatesRemotes)
{
    InvalidateProtocol protocol(config(), 3);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    protocol.access(2, RefType::Load, kBlockA, result);

    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::WriteBroadcast});
    EXPECT_EQ(result.steals.size(), 2u);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::Invalid);
    EXPECT_EQ(stateOf(protocol, 2, kBlockA), LineState::Invalid);
    EXPECT_EQ(protocol.measurements().invalidations, 1u);
    EXPECT_EQ(protocol.measurements().copiesInvalidated, 2u);
}

TEST(InvalidateProtocolTest, RepeatWritesAreFree)
{
    // The key difference from Dragon: after the first invalidation the
    // line is exclusive and further writes cost nothing.
    InvalidateProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    protocol.access(0, RefType::Store, kBlockA, result);
    ASSERT_EQ(result.numOps, 1u);
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(result.numOps, 0u);
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(result.numOps, 0u);
    EXPECT_EQ(protocol.measurements().invalidations, 1u);
}

TEST(InvalidateProtocolTest, ReReferenceIsACoherenceMiss)
{
    InvalidateProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    protocol.access(0, RefType::Store, kBlockA, result); // Kills 1's.

    protocol.access(1, RefType::Load, kBlockA, result);
    // Supplied by the dirty owner (Illinois), who reverts to shared.
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissCache});
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedClean);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
    EXPECT_EQ(protocol.measurements().coherenceMisses, 1u);
    EXPECT_DOUBLE_EQ(protocol.measurements().rerefFraction(), 1.0);
}

TEST(InvalidateProtocolTest, WriteMissIsReadForOwnership)
{
    InvalidateProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              (std::vector<Operation>{Operation::CleanMissMem,
                                      Operation::WriteBroadcast}));
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::Dirty);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Invalid);
}

TEST(InvalidateProtocolTest, ColdWriteMissNeedsNoInvalidation)
{
    InvalidateProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
}

TEST(InvalidateProtocolTest, InvariantsHoldUnderRandomTraffic)
{
    InvalidateProtocol protocol(config(), 4);
    Rng rng(99);
    AccessResult result;
    for (int i = 0; i < 20'000; ++i) {
        const CpuId cpu = static_cast<CpuId>(rng.below(4));
        const Addr addr = kBlockA + 16 * rng.below(24);
        protocol.access(cpu,
                        rng.chance(0.3) ? RefType::Store : RefType::Load,
                        addr, result);
        if (i % 1000 == 0) {
            ASSERT_NO_THROW(checkCoherenceInvariants(protocol));
        }
    }
    // Stronger MESI invariant: a valid copy in two caches is never
    // dirty anywhere.
    EXPECT_NO_THROW(checkCoherenceInvariants(protocol));
}

TEST(InvalidateSystemTest, RunsUnderTheTimingSimulator)
{
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PopsLike, 4, 20'000, 17, false);
    const TraceBuffer trace = generateTrace(workload);

    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;
    MultiprocessorSystem system(
        std::make_unique<InvalidateProtocol>(cache, 4));
    const SimStats stats = system.run(trace);
    EXPECT_EQ(stats.protocolName, "Write-Invalidate");
    EXPECT_GT(stats.processingPower(), 1.0);
    EXPECT_GT(stats.opCount(Operation::WriteBroadcast), 0u);
}

TEST(InvalidateSystemTest, FewerBusOpsThanDragonOnWriteRuns)
{
    // A workload of long write runs: invalidate pays once per run,
    // Dragon once per write.
    TraceBuffer trace;
    trace.append(0, RefType::Load, kBlockA);
    trace.append(1, RefType::Load, kBlockA);
    for (int i = 0; i < 10; ++i) {
        trace.append(0, RefType::Store, kBlockA + 4);
    }

    MultiprocessorSystem inval_system(
        std::make_unique<InvalidateProtocol>(config(), 2));
    const SimStats inval = inval_system.run(trace);

    MultiprocessorSystem dragon_system(Scheme::Dragon, config(), 2);
    const SimStats dragon = dragon_system.run(trace);

    EXPECT_EQ(inval.opCount(Operation::WriteBroadcast), 1u);
    EXPECT_EQ(dragon.opCount(Operation::WriteBroadcast), 10u);
}

TEST(InvalidateModelTest, ConfigValidationAndDerivation)
{
    InvalidateModelConfig config;
    config.rerefFraction = -0.1;
    EXPECT_THROW(config.validate(), std::invalid_argument);

    WorkloadParams params = middleParams();
    params.wr = 0.25;
    params.apl = 8.0;
    EXPECT_NEAR(InvalidateModelConfig::firstWriteFromRun(params),
                1.0 / 2.0, 1e-12);
    params.apl = 2.0;
    EXPECT_DOUBLE_EQ(InvalidateModelConfig::firstWriteFromRun(params),
                     1.0);
}

TEST(InvalidateModelTest, FrequenciesDecompose)
{
    const WorkloadParams p = middleParams();
    InvalidateModelConfig config;
    config.rerefFraction = 0.4;
    config.firstWriteFraction = 0.5;
    const FrequencyVector f = invalidateFrequencies(p, config);

    const double inval = p.ls * p.shd * p.wr * p.opres * 0.5;
    EXPECT_DOUBLE_EQ(f.of(Operation::WriteBroadcast), inval);
    EXPECT_DOUBLE_EQ(f.of(Operation::CycleSteal), inval * p.nshd);
    const double coherence = inval * p.nshd * 0.4;
    EXPECT_NEAR(f.totalMisses(),
                p.ls * p.msdat + p.mains + coherence, 1e-12);
}

TEST(InvalidateModelTest, TradeoffFollowsRunLength)
{
    // Short write runs (ping-pong): Dragon's cheap updates win. Long
    // runs with rare re-reads: invalidation wins.
    WorkloadParams ping = middleParams();
    ping.apl = 2.0;
    InvalidateModelConfig ping_config;
    ping_config.firstWriteFraction =
        InvalidateModelConfig::firstWriteFromRun(ping);
    ping_config.rerefFraction = 1.0; // Victim always comes back.
    EXPECT_GT(evaluateBus(Scheme::Dragon, ping, 16).processingPower,
              evaluateInvalidateBus(ping, 16, ping_config)
                  .processingPower);

    WorkloadParams runs = middleParams();
    runs.apl = 64.0;
    runs.wr = 0.4;
    InvalidateModelConfig runs_config;
    runs_config.firstWriteFraction =
        InvalidateModelConfig::firstWriteFromRun(runs);
    runs_config.rerefFraction = 0.2;
    EXPECT_LT(evaluateBus(Scheme::Dragon, runs, 16).processingPower,
              evaluateInvalidateBus(runs, 16, runs_config)
                  .processingPower);
}

TEST(InvalidateModelTest, NoSharingMatchesDragonAndBase)
{
    WorkloadParams params = middleParams();
    params.shd = 0.0;
    const double inval =
        evaluateInvalidateBus(params, 8).processingPower;
    EXPECT_NEAR(inval,
                evaluateBus(Scheme::Base, params, 8).processingPower,
                1e-9);
}

} // namespace
} // namespace swcc
