/**
 * @file
 * Unit tests for the flat block→holder-bitset map backing the sharer
 * index.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>

#include "sim/cache/holder_map.hh"

namespace swcc
{
namespace
{

TEST(HolderMapTest, DefaultConstructedMapIsEmpty)
{
    HolderMap map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.mask(0), 0u);
    EXPECT_EQ(map.mask(0xdead'0000), 0u);
    map.clearBit(0xdead'0000, 3); // No-op, not a crash.
}

TEST(HolderMapTest, SetAndClearSingleBlock)
{
    HolderMap map(64);
    map.setBit(0x1000, 2);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.mask(0x1000), 0b100u);

    map.setBit(0x1000, 0);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.mask(0x1000), 0b101u);

    map.clearBit(0x1000, 2);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.mask(0x1000), 0b001u);

    map.clearBit(0x1000, 0);
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.mask(0x1000), 0u);
}

TEST(HolderMapTest, BlockAddressZeroIsAValidKey)
{
    HolderMap map(16);
    map.setBit(0, 5);
    EXPECT_EQ(map.mask(0), std::uint64_t{1} << 5);
    map.clearBit(0, 5);
    EXPECT_EQ(map.mask(0), 0u);
    EXPECT_EQ(map.size(), 0u);
}

TEST(HolderMapTest, ClearingAbsentBlockOrUnsetBitIsANoOp)
{
    HolderMap map(16);
    map.setBit(0x40, 1);
    map.clearBit(0x80, 1); // Absent block.
    map.clearBit(0x40, 3); // Unset bit of a present block.
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.mask(0x40), 0b010u);
}

TEST(HolderMapTest, SurvivesDenseChurnWithCollisions)
{
    // Half-full map of sequential block addresses: collisions are
    // certain, so lookups after interleaved erases exercise the
    // backward-shift deletion keeping probe chains intact.
    constexpr std::size_t kBlocks = 1024;
    HolderMap map(kBlocks);
    for (std::size_t i = 0; i < kBlocks; ++i) {
        map.setBit(static_cast<Addr>(i * 16),
                   static_cast<CpuId>(i % 64));
        map.setBit(static_cast<Addr>(i * 16),
                   static_cast<CpuId>((i + 7) % 64));
    }
    EXPECT_EQ(map.size(), kBlocks);

    // Erase every third block completely.
    for (std::size_t i = 0; i < kBlocks; i += 3) {
        map.clearBit(static_cast<Addr>(i * 16),
                     static_cast<CpuId>(i % 64));
        map.clearBit(static_cast<Addr>(i * 16),
                     static_cast<CpuId>((i + 7) % 64));
    }
    for (std::size_t i = 0; i < kBlocks; ++i) {
        const auto mask = map.mask(static_cast<Addr>(i * 16));
        if (i % 3 == 0) {
            EXPECT_EQ(mask, 0u) << "block " << i;
        } else {
            const auto expected =
                (std::uint64_t{1} << (i % 64)) |
                (std::uint64_t{1} << ((i + 7) % 64));
            EXPECT_EQ(mask, expected) << "block " << i;
        }
    }

    // Refill the holes with new keys; chains must still resolve.
    for (std::size_t i = 0; i < kBlocks; i += 3) {
        map.setBit(static_cast<Addr>(0x9000'0000 + i * 16), 9);
    }
    for (std::size_t i = 0; i < kBlocks; i += 3) {
        EXPECT_EQ(map.mask(static_cast<Addr>(0x9000'0000 + i * 16)),
                  std::uint64_t{1} << 9);
    }
}

TEST(HolderMapTest, ThrowsWhenOverfilledPastItsSizingContract)
{
    HolderMap map(8); // Capacity 16, sized for at most 8 blocks.
    for (std::size_t i = 0; i < 8; ++i) {
        map.setBit(static_cast<Addr>(i * 16), 0);
    }
    EXPECT_THROW(map.setBit(0xffff'0000, 0), std::logic_error);
}

TEST(HolderMapTest, DirtyBitsTrackHoldersIndependently)
{
    HolderMap map(64);
    map.setBit(0x2000, 1);             // Clean insert.
    EXPECT_EQ(map.dirtyMask(0x2000), 0u);

    map.setBit(0x2000, 3, true);       // Dirty holder joins.
    EXPECT_EQ(map.mask(0x2000), 0b1010u);
    EXPECT_EQ(map.dirtyMask(0x2000), 0b1000u);

    map.setDirty(0x2000, 1, true);     // Clean holder turns dirty.
    EXPECT_EQ(map.dirtyMask(0x2000), 0b1010u);

    map.setDirty(0x2000, 3, false);    // Write-back cleans one copy.
    EXPECT_EQ(map.dirtyMask(0x2000), 0b0010u);
    EXPECT_EQ(map.mask(0x2000), 0b1010u);
}

TEST(HolderMapTest, DirtyInsertMarksOnlyTheInsertingCpu)
{
    HolderMap map(16);
    map.setBit(0x3000, 4, true);
    EXPECT_EQ(map.mask(0x3000), 0b1'0000u);
    EXPECT_EQ(map.dirtyMask(0x3000), 0b1'0000u);

    // Re-setting the same holder clean clears its dirty bit.
    map.setBit(0x3000, 4, false);
    EXPECT_EQ(map.mask(0x3000), 0b1'0000u);
    EXPECT_EQ(map.dirtyMask(0x3000), 0u);
}

TEST(HolderMapTest, ClearBitAlsoClearsTheDirtyBit)
{
    HolderMap map(16);
    map.setBit(0x4000, 2, true);
    map.setBit(0x4000, 5, true);
    map.clearBit(0x4000, 2);
    EXPECT_EQ(map.dirtyMask(0x4000), 0b10'0000u);
    map.clearBit(0x4000, 5);
    EXPECT_EQ(map.mask(0x4000), 0u);
    EXPECT_EQ(map.dirtyMask(0x4000), 0u);
    EXPECT_EQ(map.size(), 0u);

    // Re-inserting the erased block starts with a clean slate even
    // after backward-shift deletion recycled the slot.
    map.setBit(0x4000, 2);
    EXPECT_EQ(map.dirtyMask(0x4000), 0u);
}

TEST(HolderMapTest, SetDirtyOnAbsentBlockOrNonHolderIsANoOp)
{
    HolderMap map(16);
    map.setDirty(0x5000, 1, true); // Absent block: no-op.
    EXPECT_EQ(map.mask(0x5000), 0u);
    EXPECT_EQ(map.dirtyMask(0x5000), 0u);

    map.setBit(0x5000, 1);
    map.setDirty(0x5000, 2, true); // CPU 2 holds nothing here.
    EXPECT_EQ(map.dirtyMask(0x5000), 0u);
}

TEST(HolderMapTest, DirtyBitsSurviveChurnAndBackwardShift)
{
    constexpr std::size_t kBlocks = 512;
    HolderMap map(kBlocks);
    for (std::size_t i = 0; i < kBlocks; ++i) {
        map.setBit(static_cast<Addr>(i * 32),
                   static_cast<CpuId>(i % 64), i % 2 == 0);
    }
    // Erase every fourth block so backward-shift deletion moves
    // surviving slots; their dirty masks must move with them.
    for (std::size_t i = 0; i < kBlocks; i += 4) {
        map.clearBit(static_cast<Addr>(i * 32),
                     static_cast<CpuId>(i % 64));
    }
    for (std::size_t i = 0; i < kBlocks; ++i) {
        const Addr block = static_cast<Addr>(i * 32);
        if (i % 4 == 0) {
            EXPECT_EQ(map.mask(block), 0u) << "block " << i;
            EXPECT_EQ(map.dirtyMask(block), 0u) << "block " << i;
        } else {
            const auto bit = std::uint64_t{1} << (i % 64);
            EXPECT_EQ(map.mask(block), bit) << "block " << i;
            EXPECT_EQ(map.dirtyMask(block), i % 2 == 0 ? bit : 0u)
                << "block " << i;
        }
    }
}

} // namespace
} // namespace swcc
