/**
 * @file
 * Unit tests for workload-parameter measurement from traces.
 */

#include <gtest/gtest.h>

#include "sim/trace/trace_stats.hh"

namespace swcc
{
namespace
{

constexpr Addr kShared = 0x8000'0000;
constexpr Addr kPrivateA = 0x4000'0000;
constexpr Addr kPrivateB = 0x4100'0000;

TEST(TraceStatsTest, CountsLsExactly)
{
    TraceBuffer trace;
    for (int i = 0; i < 10; ++i) {
        trace.append(0, RefType::IFetch, 0x1000 + 4u * static_cast<unsigned>(i));
    }
    trace.append(0, RefType::Load, kPrivateA);
    trace.append(0, RefType::Store, kPrivateA + 4);
    trace.append(0, RefType::Load, kPrivateA + 8);

    const TraceStatistics stats = analyzeTrace(trace, 16);
    EXPECT_EQ(stats.instructions, 10u);
    EXPECT_EQ(stats.loads, 2u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_DOUBLE_EQ(stats.ls, 0.3);
    EXPECT_DOUBLE_EQ(stats.shd, 0.0);
}

TEST(TraceStatsTest, DynamicSharingNeedsTwoProcessors)
{
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, 0x1000);
    trace.append(0, RefType::Load, kShared);
    trace.append(1, RefType::IFetch, 0x2000);
    trace.append(1, RefType::Load, kShared + 4); // Same 16B block.
    trace.append(0, RefType::Load, kPrivateA);   // Only cpu 0.

    const TraceStatistics stats = analyzeTrace(trace, 16);
    EXPECT_EQ(stats.sharedBlocks, 1u);
    EXPECT_EQ(stats.sharedRefs, 2u);
    EXPECT_DOUBLE_EQ(stats.shd, 2.0 / 3.0);
}

TEST(TraceStatsTest, ClassifierOverridesDynamicDetection)
{
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, 0x1000);
    trace.append(0, RefType::Load, kShared);     // Only cpu 0 touches it
    trace.append(0, RefType::Load, kPrivateA);

    const SharedClassifier classifier = [](Addr block) {
        return block >= kShared;
    };
    const TraceStatistics stats = analyzeTrace(trace, 16, classifier);
    EXPECT_EQ(stats.sharedRefs, 1u);
    EXPECT_DOUBLE_EQ(stats.shd, 0.5);
}

TEST(TraceStatsTest, WrCountsSharedStoresOnly)
{
    const SharedClassifier classifier = [](Addr block) {
        return block >= kShared;
    };
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, 0x1000);
    trace.append(0, RefType::Load, kShared);
    trace.append(0, RefType::Store, kShared);
    trace.append(0, RefType::Store, kShared + 16);
    trace.append(0, RefType::Store, kPrivateA); // Private store ignored.

    const TraceStatistics stats = analyzeTrace(trace, 16, classifier);
    EXPECT_EQ(stats.sharedWrites, 2u);
    EXPECT_DOUBLE_EQ(stats.wr, 2.0 / 3.0);
}

TEST(TraceStatsTest, AplMeasuresWriteRunsBetweenProcessors)
{
    const SharedClassifier classifier = [](Addr block) {
        return block >= kShared;
    };
    TraceBuffer trace;
    // cpu0: 3 references (one write) to the block, then cpu1 takes it.
    trace.append(0, RefType::Load, kShared);
    trace.append(0, RefType::Store, kShared + 4);
    trace.append(0, RefType::Load, kShared + 8);
    // cpu1: 2 references with a write, then cpu0 again.
    trace.append(1, RefType::Store, kShared);
    trace.append(1, RefType::Load, kShared + 4);
    // cpu0 trailing run: never terminated, not counted.
    trace.append(0, RefType::Store, kShared);

    const TraceStatistics stats = analyzeTrace(trace, 16, classifier);
    ASSERT_TRUE(stats.apl.has_value());
    EXPECT_EQ(stats.aplRuns, 2u);
    EXPECT_EQ(stats.aplRunRefs, 5u);
    EXPECT_DOUBLE_EQ(*stats.apl, 2.5);
}

TEST(TraceStatsTest, ReadOnlyRunsAreNotCountedForApl)
{
    const SharedClassifier classifier = [](Addr block) {
        return block >= kShared;
    };
    TraceBuffer trace;
    trace.append(0, RefType::Load, kShared);
    trace.append(0, RefType::Load, kShared + 4);
    trace.append(1, RefType::Load, kShared); // Terminates a read run.
    trace.append(0, RefType::Load, kShared);

    const TraceStatistics stats = analyzeTrace(trace, 16, classifier);
    EXPECT_EQ(stats.aplRuns, 0u);
    EXPECT_FALSE(stats.apl.has_value());
}

TEST(TraceStatsTest, MdshdNeedsFlushEvents)
{
    const SharedClassifier classifier = [](Addr block) {
        return block >= kShared;
    };
    TraceBuffer no_flush;
    no_flush.append(0, RefType::Store, kShared);
    EXPECT_FALSE(analyzeTrace(no_flush, 16, classifier)
                     .mdshd.has_value());

    TraceBuffer with_flush;
    with_flush.append(0, RefType::Store, kShared);       // Dirties.
    with_flush.append(0, RefType::Flush, kShared);       // Dirty flush.
    with_flush.append(0, RefType::Load, kShared + 16);
    with_flush.append(0, RefType::Flush, kShared + 16);  // Clean flush.
    const TraceStatistics stats = analyzeTrace(with_flush, 16,
                                               classifier);
    ASSERT_TRUE(stats.mdshd.has_value());
    EXPECT_DOUBLE_EQ(*stats.mdshd, 0.5);
    ASSERT_TRUE(stats.aplPerFlush.has_value());
    EXPECT_DOUBLE_EQ(*stats.aplPerFlush, 1.0);
}

TEST(TraceStatsTest, FlushClearsDirtiness)
{
    const SharedClassifier classifier = [](Addr block) {
        return block >= kShared;
    };
    TraceBuffer trace;
    trace.append(0, RefType::Store, kShared);
    trace.append(0, RefType::Flush, kShared); // Dirty.
    trace.append(0, RefType::Flush, kShared); // Now clean.
    const TraceStatistics stats = analyzeTrace(trace, 16, classifier);
    EXPECT_EQ(stats.dirtyFlushes, 1u);
    EXPECT_EQ(stats.flushes, 2u);
}

TEST(TraceStatsTest, BlockGranularityGroupsAddresses)
{
    TraceBuffer trace;
    trace.append(0, RefType::Load, kPrivateA);
    trace.append(0, RefType::Load, kPrivateA + 8);   // Same 16B block.
    trace.append(0, RefType::Load, kPrivateA + 16);  // Next block.
    const TraceStatistics stats = analyzeTrace(trace, 16);
    EXPECT_EQ(stats.dataBlocks, 2u);

    const TraceStatistics stats32 = analyzeTrace(trace, 32);
    EXPECT_EQ(stats32.dataBlocks, 1u);
}

TEST(TraceStatsTest, RejectsNonPowerOfTwoBlocks)
{
    EXPECT_THROW(analyzeTrace(TraceBuffer{}, 24), std::invalid_argument);
    EXPECT_THROW(analyzeTrace(TraceBuffer{}, 0), std::invalid_argument);
}

TEST(TraceStatsTest, DistinctPrivateBlocksPerCpuAreUnshared)
{
    TraceBuffer trace;
    trace.append(0, RefType::Load, kPrivateA);
    trace.append(1, RefType::Load, kPrivateB);
    const TraceStatistics stats = analyzeTrace(trace, 16);
    EXPECT_EQ(stats.sharedBlocks, 0u);
    EXPECT_DOUBLE_EQ(stats.shd, 0.0);
}

} // namespace
} // namespace swcc
