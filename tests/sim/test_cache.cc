/**
 * @file
 * Unit tests for the set-associative cache structure.
 */

#include <gtest/gtest.h>

#include "sim/cache/cache.hh"

namespace swcc
{
namespace
{

CacheConfig
tinyConfig(std::size_t size = 256, std::size_t block = 16,
           std::size_t ways = 2)
{
    CacheConfig config;
    config.sizeBytes = size;
    config.blockBytes = block;
    config.associativity = ways;
    return config;
}

TEST(CacheConfigTest, GeometryDerivation)
{
    const CacheConfig config = tinyConfig(64 * 1024, 16, 2);
    EXPECT_EQ(config.numSets(), 2048u);
    EXPECT_EQ(config.numLines(), 4096u);
    EXPECT_NO_THROW(config.validate());
}

TEST(CacheConfigTest, RejectsBadGeometry)
{
    EXPECT_THROW(tinyConfig(100, 16, 1).validate(),
                 std::invalid_argument);
    EXPECT_THROW(tinyConfig(256, 24, 1).validate(),
                 std::invalid_argument);
    EXPECT_THROW(tinyConfig(256, 16, 0).validate(),
                 std::invalid_argument);
    EXPECT_THROW(tinyConfig(256, 16, 3).validate(),
                 std::invalid_argument);
    // More ways than lines.
    EXPECT_THROW(tinyConfig(32, 16, 4).validate(),
                 std::invalid_argument);
}

TEST(CacheTest, MissThenHit)
{
    Cache cache(tinyConfig());
    EXPECT_EQ(cache.find(0x1000), nullptr);
    CacheLine &victim = cache.victimFor(0x1000);
    cache.fill(victim, 0x1004, LineState::Exclusive);
    CacheLine *line = cache.find(0x1008); // Same block as 0x1004.
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->blockAddr, 0x1000u);
    EXPECT_EQ(line->state, LineState::Exclusive);
}

TEST(CacheTest, BlockAlignment)
{
    Cache cache(tinyConfig());
    EXPECT_EQ(cache.blockAddr(0x1234), 0x1230u);
    EXPECT_EQ(cache.blockAddr(0x1230), 0x1230u);
}

TEST(CacheTest, LruEvictsTheColdestWay)
{
    // 256 B, 16 B blocks, 2-way: 8 sets; addresses 128 bytes apart
    // share a set.
    Cache cache(tinyConfig());
    const Addr a = 0x0000, b = 0x0080, c = 0x0100;

    cache.fill(cache.victimFor(a), a, LineState::Exclusive);
    cache.fill(cache.victimFor(b), b, LineState::Exclusive);
    // Touch a so that b is LRU.
    cache.touch(*cache.find(a));
    cache.fill(cache.victimFor(c), c, LineState::Exclusive);

    EXPECT_NE(cache.find(a), nullptr);
    EXPECT_EQ(cache.find(b), nullptr);
    EXPECT_NE(cache.find(c), nullptr);
}

TEST(CacheTest, VictimPrefersInvalidLines)
{
    Cache cache(tinyConfig());
    cache.fill(cache.victimFor(0x0000), 0x0000, LineState::Dirty);
    CacheLine &victim = cache.victimFor(0x0080);
    EXPECT_EQ(victim.state, LineState::Invalid);
}

TEST(CacheTest, InvalidateFreesTheLine)
{
    Cache cache(tinyConfig());
    cache.fill(cache.victimFor(0x40), 0x40, LineState::Dirty);
    EXPECT_EQ(cache.validLines(), 1u);
    cache.invalidate(*cache.find(0x40));
    EXPECT_EQ(cache.find(0x40), nullptr);
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(CacheTest, DistinctSetsDoNotConflict)
{
    Cache cache(tinyConfig());
    for (Addr addr = 0; addr < 256; addr += 16) {
        cache.fill(cache.victimFor(addr), addr, LineState::Exclusive);
    }
    EXPECT_EQ(cache.validLines(), 16u);
    for (Addr addr = 0; addr < 256; addr += 16) {
        EXPECT_NE(cache.find(addr), nullptr) << addr;
    }
}

TEST(CacheStateTest, DirtyAndValidHelpers)
{
    EXPECT_TRUE(isDirtyState(LineState::Dirty));
    EXPECT_TRUE(isDirtyState(LineState::SharedDirty));
    EXPECT_FALSE(isDirtyState(LineState::Exclusive));
    EXPECT_FALSE(isDirtyState(LineState::SharedClean));
    EXPECT_FALSE(isDirtyState(LineState::Invalid));

    EXPECT_FALSE(isValidState(LineState::Invalid));
    EXPECT_TRUE(isValidState(LineState::Exclusive));
    EXPECT_TRUE(isValidState(LineState::SharedDirty));
}

TEST(CacheTest, DirectMappedConflicts)
{
    Cache cache(tinyConfig(256, 16, 1)); // 16 sets, 1 way.
    cache.fill(cache.victimFor(0x0000), 0x0000, LineState::Exclusive);
    cache.fill(cache.victimFor(0x0100), 0x0100, LineState::Exclusive);
    EXPECT_EQ(cache.find(0x0000), nullptr);
    EXPECT_NE(cache.find(0x0100), nullptr);
}

} // namespace
} // namespace swcc
