/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/synth/rng.hh"

namespace swcc
{
namespace
{

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformStaysInHalfOpenUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += rng.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowRespectsBound)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(rng.below(bound), bound);
        }
    }
    EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(RngTest, BelowCoversTheRange)
{
    Rng rng(5);
    std::array<int, 8> counts{};
    for (int i = 0; i < 8000; ++i) {
        ++counts[rng.below(8)];
    }
    for (int c : counts) {
        EXPECT_GT(c, 800);
        EXPECT_LT(c, 1200);
    }
}

TEST(RngTest, BetweenIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(rng.between(5, 3), std::invalid_argument);
}

TEST(RngTest, ChanceHandlesDegenerateProbabilities)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        hits += rng.chance(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GeometricMeanIsOneOverP)
{
    Rng rng(19);
    for (double p : {0.5, 0.1, 0.02}) {
        double sum = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i) {
            sum += static_cast<double>(rng.geometric(p));
        }
        EXPECT_NEAR(sum / n, 1.0 / p, 0.05 / p) << "p=" << p;
    }
}

TEST(RngTest, GeometricSupportStartsAtOne)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GE(rng.geometric(0.9), 1u);
    }
    EXPECT_EQ(rng.geometric(1.0), 1u);
    EXPECT_THROW(rng.geometric(0.0), std::invalid_argument);
    EXPECT_THROW(rng.geometric(1.5), std::invalid_argument);
}

TEST(RngTest, ZipfStaysInRangeAndSkews)
{
    Rng rng(29);
    const std::uint64_t n = 100;
    std::uint64_t low_half = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const std::uint64_t v = rng.zipf(n, 1.0);
        EXPECT_LT(v, n);
        low_half += v < n / 2 ? 1 : 0;
    }
    // With positive skew, the lower ranks get well over half the mass.
    EXPECT_GT(static_cast<double>(low_half) / trials, 0.6);
    EXPECT_THROW(rng.zipf(0, 1.0), std::invalid_argument);
}

TEST(RngTest, SplitIsDeterministicPerIndex)
{
    const Rng parent(42);
    Rng a = parent.split(3);
    Rng b = parent.split(3);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(RngTest, SplitStreamsAreDecorrelated)
{
    const Rng parent(42);
    // Adjacent cell indices, and the parent itself, must all diverge.
    Rng streams[3] = {parent.split(0), parent.split(1), Rng(42)};
    int collisions = 0;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t a = streams[0].next();
        const std::uint64_t b = streams[1].next();
        const std::uint64_t c = streams[2].next();
        collisions += (a == b || a == c || b == c) ? 1 : 0;
    }
    EXPECT_EQ(collisions, 0);
}

TEST(RngTest, SplitDoesNotAdvanceTheParent)
{
    Rng with_split(7);
    Rng plain(7);
    (void)with_split.split(5);
    (void)with_split.split(6);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(with_split.next(), plain.next());
    }
}

TEST(RngTest, SplitDependsOnParentState)
{
    // Streams derived from different parents must differ too.
    Rng a = Rng(1).split(0);
    Rng b = Rng(2).split(0);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        same += a.next() == b.next() ? 1 : 0;
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, ZipfZeroSkewIsUniform)
{
    Rng rng(31);
    std::uint64_t low_half = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        low_half += rng.zipf(100, 0.0) < 50 ? 1u : 0u;
    }
    EXPECT_NEAR(static_cast<double>(low_half) / trials, 0.5, 0.02);
}

} // namespace
} // namespace swcc
