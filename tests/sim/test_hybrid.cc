/**
 * @file
 * Unit tests for the adaptive update/invalidate hybrid protocol: the
 * per-block wasted-broadcast counter, the policy switch in both
 * directions, and the system-level payoff against pure Dragon.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/cache/hybrid_protocol.hh"
#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/rng.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{
namespace
{

constexpr Addr kBlockA = 0x8000'0000;

CacheConfig
config()
{
    CacheConfig c;
    c.sizeBytes = 1024;
    c.blockBytes = 16;
    c.associativity = 2;
    return c;
}

LineState
stateOf(const HybridProtocol &protocol, CpuId cpu, Addr addr)
{
    const CacheLine *line = protocol.cache(cpu).find(addr);
    return line != nullptr ? line->state : LineState::Invalid;
}

std::vector<Operation>
opsOf(const AccessResult &result)
{
    return {result.ops.begin(), result.ops.begin() + result.numOps};
}

/** Two CPUs sharing kBlockA, ready for CPU 0 to store. */
void
shareBlock(HybridProtocol &protocol)
{
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
}

TEST(HybridProtocolTest, BlocksStartInUpdateMode)
{
    HybridProtocol protocol(config(), 2);
    EXPECT_FALSE(protocol.inInvalidateMode(kBlockA));

    shareBlock(protocol);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    // Dragon semantics: the broadcast updates CPU 1's copy in place.
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::WriteBroadcast});
    EXPECT_EQ(result.steals, std::vector<CpuId>{1});
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedDirty);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
    EXPECT_EQ(protocol.measurements().updateBroadcasts, 1u);
    EXPECT_FALSE(protocol.inInvalidateMode(kBlockA));
}

TEST(HybridProtocolTest, UnreadBroadcastsFlipTheBlockToInvalidate)
{
    HybridProtocol protocol(config(), 2);
    shareBlock(protocol);
    AccessResult result;

    // First store after a remote read is useful; each further store by
    // the same writer with no intervening remote touch is wasted. The
    // block flips once the counter reaches kSwitchThreshold.
    const unsigned stores = 1u + HybridProtocol::kSwitchThreshold;
    for (unsigned i = 0; i < stores; ++i) {
        ASSERT_FALSE(protocol.inInvalidateMode(kBlockA)) << i;
        protocol.access(0, RefType::Store, kBlockA, result);
    }
    EXPECT_TRUE(protocol.inInvalidateMode(kBlockA));
    EXPECT_EQ(protocol.measurements().updateBroadcasts, stores);
    EXPECT_EQ(protocol.measurements().wastedBroadcasts,
              HybridProtocol::kSwitchThreshold);
    EXPECT_EQ(protocol.measurements().switchesToInvalidate, 1u);

    // The next store invalidates instead of updating; after that the
    // line is exclusive and further stores are free.
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::WriteBroadcast});
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::Invalid);
    EXPECT_EQ(protocol.measurements().invalidations, 1u);
    EXPECT_EQ(protocol.measurements().copiesInvalidated, 1u);
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(result.numOps, 0u);
}

TEST(HybridProtocolTest, RemoteReadsKeepTheBlockInUpdateMode)
{
    HybridProtocol protocol(config(), 2);
    shareBlock(protocol);
    AccessResult result;

    // Producer/consumer ping-pong: every broadcast is read before the
    // next one, so no broadcast is ever wasted.
    for (unsigned i = 0; i < 4 * HybridProtocol::kSwitchThreshold;
         ++i) {
        protocol.access(0, RefType::Store, kBlockA, result);
        protocol.access(1, RefType::Load, kBlockA, result);
    }
    EXPECT_FALSE(protocol.inInvalidateMode(kBlockA));
    EXPECT_EQ(protocol.measurements().wastedBroadcasts, 0u);
    EXPECT_EQ(protocol.measurements().switchesToInvalidate, 0u);
}

TEST(HybridProtocolTest, CoherenceMissesFlipTheBlockBackToUpdate)
{
    HybridProtocol protocol(config(), 2);
    shareBlock(protocol);
    AccessResult result;

    for (unsigned i = 0; i < 1u + HybridProtocol::kSwitchThreshold;
         ++i) {
        protocol.access(0, RefType::Store, kBlockA, result);
    }
    ASSERT_TRUE(protocol.inInvalidateMode(kBlockA));
    protocol.access(0, RefType::Store, kBlockA, result); // Invalidates.

    // The victim re-references its lost copy: a coherence miss, which
    // decays the wasted counter below the threshold and flips the
    // block back to update mode.
    protocol.access(1, RefType::Load, kBlockA, result);
    EXPECT_EQ(protocol.measurements().coherenceMisses, 1u);
    EXPECT_FALSE(protocol.inInvalidateMode(kBlockA));
    EXPECT_EQ(protocol.measurements().switchesToUpdate, 1u);
}

TEST(HybridProtocolTest, DirtyOwnerSuppliesMissesCacheToCache)
{
    HybridProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    ASSERT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);

    protocol.access(1, RefType::Load, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissCache});
    // Dragon-style supply: the owner keeps ownership.
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedDirty);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
}

TEST(HybridProtocolTest, StoreMissToASharedBlockBroadcasts)
{
    HybridProtocol protocol(config(), 3);
    AccessResult result;
    protocol.access(1, RefType::Load, kBlockA, result);
    protocol.access(2, RefType::Load, kBlockA, result);

    // CPU 0's store miss fills shared and continues into the shared-
    // store path: a miss op plus the update broadcast.
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              (std::vector<Operation>{Operation::CleanMissMem,
                                      Operation::WriteBroadcast}));
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedDirty);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
    EXPECT_EQ(stateOf(protocol, 2, kBlockA), LineState::SharedClean);
}

TEST(HybridProtocolTest, FlushesAreNoOps)
{
    HybridProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    protocol.access(0, RefType::Flush, kBlockA, result);
    EXPECT_EQ(result.numOps, 0u);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
}

TEST(HybridProtocolTest, InvariantsHoldUnderRandomTraffic)
{
    HybridProtocol protocol(config(), 4);
    Rng rng(1234);
    AccessResult result;
    for (int i = 0; i < 20'000; ++i) {
        const CpuId cpu = static_cast<CpuId>(rng.below(4));
        const Addr addr = kBlockA + 16 * rng.below(24);
        protocol.access(cpu,
                        rng.chance(0.4) ? RefType::Store : RefType::Load,
                        addr, result);
        if (i % 1000 == 0) {
            ASSERT_NO_THROW(checkCoherenceInvariants(protocol));
        }
    }
    EXPECT_NO_THROW(checkCoherenceInvariants(protocol));
}

TEST(HybridSystemTest, RunsUnderTheTimingSimulator)
{
    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PopsLike, 4, 20'000, 17, false);
    const TraceBuffer trace = generateTrace(workload);

    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;
    MultiprocessorSystem system(Scheme::Hybrid, cache, 4,
                                workload.sharedClassifier());
    const SimStats stats = system.run(trace);
    EXPECT_EQ(stats.scheme, Scheme::Hybrid);
    EXPECT_EQ(stats.protocolName, "Adaptive-Hybrid");
    EXPECT_GT(stats.processingPower(), 1.0);
}

TEST(HybridSystemTest, FewerBroadcastsThanDragonOnLongWriteRuns)
{
    // A single writer hammering a shared block: Dragon pays one
    // broadcast per store forever; the hybrid flips the block to
    // invalidate mode and the run becomes free.
    TraceBuffer trace;
    trace.append(0, RefType::Load, kBlockA);
    trace.append(1, RefType::Load, kBlockA);
    for (int i = 0; i < 20; ++i) {
        trace.append(0, RefType::Store, kBlockA + 4);
    }

    MultiprocessorSystem hybrid_system(Scheme::Hybrid, config(), 2);
    const SimStats hybrid = hybrid_system.run(trace);

    MultiprocessorSystem dragon_system(Scheme::Dragon, config(), 2);
    const SimStats dragon = dragon_system.run(trace);

    EXPECT_EQ(dragon.opCount(Operation::WriteBroadcast), 20u);
    EXPECT_LT(hybrid.opCount(Operation::WriteBroadcast), 20u);
    EXPECT_LE(hybrid.makespan, dragon.makespan);
}

} // namespace
} // namespace swcc
