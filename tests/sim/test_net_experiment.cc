/**
 * @file
 * Integration tests: the Patel model against the omega simulator
 * (the paper's stated future-work validation).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/net/net_experiment.hh"

namespace swcc
{
namespace
{

TEST(NetValidationTest, UnitRequestModeMatchesTheModelAtLightLoad)
{
    const NetworkValidationPoint point = validateNetworkPoint(
        0.01, 12.0, 4, NetMode::UnitRequest, 150'000, 7);
    EXPECT_LT(std::abs(point.computeErrorPercent()), 5.0)
        << "sim=" << point.simCompute << " model=" << point.modelCompute;
}

TEST(NetValidationTest, CircuitModeMatchesTheModelClosely)
{
    // Patel's unit-request approximation was designed to predict
    // circuit-switched behaviour; our simulator confirms it.
    for (double rate : {0.01, 0.03, 0.05}) {
        const NetworkValidationPoint point = validateNetworkPoint(
            rate, 12.0, 4, NetMode::Circuit, 150'000, 7);
        EXPECT_LT(std::abs(point.computeErrorPercent()), 5.0)
            << "rate=" << rate;
    }
}

TEST(NetValidationTest, ErrorsStayModerateIntoHeavyLoad)
{
    const NetworkValidationPoint point = validateNetworkPoint(
        0.08, 12.0, 4, NetMode::UnitRequest, 150'000, 7);
    EXPECT_LT(std::abs(point.computeErrorPercent()), 20.0);
}

TEST(NetValidationTest, StageLoadRecursionMatchesSimulation)
{
    const NetworkValidationPoint point = validateNetworkPoint(
        0.04, 12.0, 6, NetMode::UnitRequest, 150'000, 11);
    ASSERT_EQ(point.simStageLoads.size(), 7u);
    ASSERT_EQ(point.modelStageLoads.size(), 7u);
    // Seeded with the simulator's own m_0, the recursion should track
    // each stage within a few percent of the port load.
    for (std::size_t i = 0; i < point.simStageLoads.size(); ++i) {
        EXPECT_NEAR(point.modelStageLoads[i], point.simStageLoads[i],
                    0.05)
            << "stage " << i;
    }
}

TEST(NetValidationTest, SweepCoversAllRates)
{
    const auto points = networkValidationSweep(
        {0.01, 0.02, 0.04}, 10.0, 3, NetMode::UnitRequest, 30'000, 3);
    ASSERT_EQ(points.size(), 3u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LT(points[i].simCompute, points[i - 1].simCompute);
        EXPECT_LT(points[i].modelCompute, points[i - 1].modelCompute);
    }
}

TEST(NetValidationTest, KaryModelMatchesKarySimulation)
{
    // 64 processors as 3 stages of 4x4 switches, circuit mode.
    for (double rate : {0.02, 0.05}) {
        const NetworkValidationPoint point = validateNetworkPoint(
            rate, 10.0, 3, NetMode::Circuit, 120'000, 19, 4);
        EXPECT_LT(std::abs(point.computeErrorPercent()), 6.0)
            << "rate=" << rate << " sim=" << point.simCompute
            << " model=" << point.modelCompute;
    }
}

TEST(NetValidationTest, RejectsNonPositiveRate)
{
    EXPECT_THROW(
        validateNetworkPoint(0.0, 8.0, 4, NetMode::UnitRequest, 1'000),
        std::invalid_argument);
}

} // namespace
} // namespace swcc
