/**
 * @file
 * Property tests for the cache structure: every geometry must agree
 * with a reference (oracle) model of per-set LRU behaviour under
 * random reference strings.
 */

#include <gtest/gtest.h>

#include <list>
#include <tuple>
#include <unordered_map>

#include "sim/cache/cache.hh"
#include "sim/synth/rng.hh"

namespace swcc
{
namespace
{

/**
 * Oracle: per-set LRU lists built from first principles (a list per
 * set, most recent at the front, capacity = associativity).
 */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const CacheConfig &config) : config_(config)
    {
    }

    /** Returns true on hit; updates LRU state either way. */
    bool
    access(Addr addr)
    {
        const Addr block =
            addr & ~static_cast<Addr>(config_.blockBytes - 1);
        const std::size_t set = static_cast<std::size_t>(
            (addr / config_.blockBytes) % config_.numSets());
        auto &lru = sets_[set];
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == block) {
                lru.erase(it);
                lru.push_front(block);
                return true;
            }
        }
        lru.push_front(block);
        if (lru.size() > config_.associativity) {
            lru.pop_back();
        }
        return false;
    }

  private:
    CacheConfig config_;
    std::unordered_map<std::size_t, std::list<Addr>> sets_;
};

using Geometry = std::tuple<std::size_t, std::size_t, std::size_t>;

class CacheSweepTest : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheSweepTest, AgreesWithTheLruOracle)
{
    const auto [size, block, ways] = GetParam();
    CacheConfig config;
    config.sizeBytes = size;
    config.blockBytes = block;
    config.associativity = ways;

    Cache cache(config);
    ReferenceCache oracle(config);
    Rng rng(static_cast<std::uint64_t>(size + block * 131 + ways));

    for (int i = 0; i < 30'000; ++i) {
        // Addresses concentrated enough to exercise reuse and
        // conflicts: 4x the cache size.
        const Addr addr = rng.below(4 * size);
        const bool oracle_hit = oracle.access(addr);

        CacheLine *line = cache.find(addr);
        const bool cache_hit = line != nullptr;
        ASSERT_EQ(cache_hit, oracle_hit)
            << "ref " << i << " addr " << addr;

        if (cache_hit) {
            cache.touch(*line);
        } else {
            CacheLine &victim = cache.victimFor(addr);
            if (isValidState(victim.state)) {
                cache.invalidate(victim);
            }
            cache.fill(victim, addr, LineState::Exclusive);
        }
    }
}

TEST_P(CacheSweepTest, NeverExceedsCapacity)
{
    const auto [size, block, ways] = GetParam();
    CacheConfig config;
    config.sizeBytes = size;
    config.blockBytes = block;
    config.associativity = ways;

    Cache cache(config);
    Rng rng(7);
    for (int i = 0; i < 5'000; ++i) {
        const Addr addr = rng.below(16 * size);
        if (cache.find(addr) == nullptr) {
            CacheLine &victim = cache.victimFor(addr);
            if (isValidState(victim.state)) {
                cache.invalidate(victim);
            }
            cache.fill(victim, addr, LineState::Dirty);
        }
    }
    EXPECT_LE(cache.validLines(), config.numLines());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweepTest,
    ::testing::Values(Geometry{512, 16, 1}, Geometry{512, 16, 2},
                      Geometry{1024, 16, 4}, Geometry{1024, 32, 1},
                      Geometry{2048, 32, 2}, Geometry{4096, 16, 8},
                      Geometry{4096, 64, 4},
                      // Fully associative corner.
                      Geometry{512, 16, 32}));

} // namespace
} // namespace swcc
