/**
 * @file
 * Robustness tests for trace serialization: malformed, truncated, and
 * adversarial inputs must fail cleanly, never crash or mis-parse.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace/trace_io.hh"

namespace swcc
{
namespace
{

std::string
binaryBytes(const TraceBuffer &trace)
{
    std::ostringstream os;
    writeBinaryTrace(trace, os);
    return os.str();
}

TraceBuffer
sampleTrace()
{
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, 0x1000);
    trace.append(1, RefType::Load, 0x8000'0000);
    trace.append(2, RefType::Store, 0x8000'0010);
    trace.append(0, RefType::Flush, 0x8000'0000);
    return trace;
}

TEST(TraceRobustnessTest, TruncationAtEveryPrefixFailsCleanly)
{
    const std::string bytes = binaryBytes(sampleTrace());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        std::istringstream is(bytes.substr(0, cut));
        EXPECT_THROW(readBinaryTrace(is), std::runtime_error)
            << "cut at " << cut;
    }
    // The complete stream still parses.
    std::istringstream whole(bytes);
    EXPECT_EQ(readBinaryTrace(whole).size(), sampleTrace().size());
}

TEST(TraceRobustnessTest, CorruptTypeBitsAreRejected)
{
    std::string bytes = binaryBytes(sampleTrace());
    // The first event's meta word starts at offset 8 (magic) + 8
    // (count) + 8 (addr); its third byte holds the type.
    bytes[8 + 8 + 8 + 2] = '\x7f';
    std::istringstream is(bytes);
    EXPECT_THROW(readBinaryTrace(is), std::runtime_error);
}

TEST(TraceRobustnessTest, DishonestCountIsATruncationError)
{
    std::string bytes = binaryBytes(sampleTrace());
    // Inflate the little-endian count at offset 8.
    bytes[8] = '\x7f';
    std::istringstream is(bytes);
    EXPECT_THROW(readBinaryTrace(is), std::runtime_error);
}

TEST(TraceRobustnessTest, EmptyTraceRoundTrips)
{
    const TraceBuffer empty;
    std::stringstream binary;
    writeBinaryTrace(empty, binary);
    EXPECT_EQ(readBinaryTrace(binary).size(), 0u);

    std::stringstream text;
    writeTextTrace(empty, text);
    EXPECT_EQ(readTextTrace(text).size(), 0u);
}

TEST(TraceRobustnessTest, ExtremeFieldValuesSurvive)
{
    TraceBuffer trace;
    trace.append(TraceEvent{~0ull, 65'000, RefType::Store});
    trace.append(TraceEvent{0, 0, RefType::IFetch});

    std::stringstream binary;
    writeBinaryTrace(trace, binary);
    const TraceBuffer loaded = readBinaryTrace(binary);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].addr, ~0ull);
    EXPECT_EQ(loaded[0].cpu, 65'000);

    std::stringstream text;
    writeTextTrace(trace, text);
    const TraceBuffer from_text = readTextTrace(text);
    ASSERT_EQ(from_text.size(), 2u);
    EXPECT_EQ(from_text[0].addr, ~0ull);
}

TEST(TraceRobustnessTest, TextTrailingGarbageOnLineIsIgnoredFields)
{
    // istream-based parsing stops at whitespace; extra columns after
    // the triple are tolerated (forward compatibility), but garbage in
    // place of required fields is not.
    std::stringstream ok("0 l 10 extra-column\n");
    EXPECT_EQ(readTextTrace(ok).size(), 1u);

    std::stringstream missing_addr("0 l\n");
    EXPECT_THROW(readTextTrace(missing_addr), std::runtime_error);

    std::stringstream long_type("0 load 10\n");
    EXPECT_THROW(readTextTrace(long_type), std::runtime_error);
}

TEST(TraceRobustnessTest, TextLineNumbersAppearInErrors)
{
    std::stringstream is("# fine\n0 i 10\n0 q 10\n");
    try {
        readTextTrace(is);
        FAIL() << "expected a parse error";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("3"),
                  std::string::npos)
            << error.what();
    }
}

} // namespace
} // namespace swcc
