/**
 * @file
 * Robustness tests for trace serialization: malformed, truncated, and
 * adversarial inputs must fail cleanly, never crash or mis-parse.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace/trace_io.hh"

namespace swcc
{
namespace
{

std::string
binaryBytes(const TraceBuffer &trace)
{
    std::ostringstream os;
    writeBinaryTrace(trace, os);
    return os.str();
}

TraceBuffer
sampleTrace()
{
    TraceBuffer trace;
    trace.append(0, RefType::IFetch, 0x1000);
    trace.append(1, RefType::Load, 0x8000'0000);
    trace.append(2, RefType::Store, 0x8000'0010);
    trace.append(0, RefType::Flush, 0x8000'0000);
    return trace;
}

TEST(TraceRobustnessTest, TruncationAtEveryPrefixFailsCleanly)
{
    const std::string bytes = binaryBytes(sampleTrace());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        std::istringstream is(bytes.substr(0, cut));
        EXPECT_THROW(readBinaryTrace(is), std::runtime_error)
            << "cut at " << cut;
    }
    // The complete stream still parses.
    std::istringstream whole(bytes);
    EXPECT_EQ(readBinaryTrace(whole).size(), sampleTrace().size());
}

TEST(TraceRobustnessTest, CorruptTypeBitsAreRejected)
{
    std::string bytes = binaryBytes(sampleTrace());
    // The first event's meta word starts at offset 8 (magic) + 8
    // (count) + 8 (addr); its third byte holds the type.
    bytes[8 + 8 + 8 + 2] = '\x7f';
    std::istringstream is(bytes);
    EXPECT_THROW(readBinaryTrace(is), std::runtime_error);
}

TEST(TraceRobustnessTest, DishonestCountIsATruncationError)
{
    std::string bytes = binaryBytes(sampleTrace());
    // Inflate the little-endian count at offset 8.
    bytes[8] = '\x7f';
    std::istringstream is(bytes);
    EXPECT_THROW(readBinaryTrace(is), std::runtime_error);
}

TEST(TraceRobustnessTest, EmptyTraceRoundTrips)
{
    const TraceBuffer empty;
    std::stringstream binary;
    writeBinaryTrace(empty, binary);
    EXPECT_EQ(readBinaryTrace(binary).size(), 0u);

    std::stringstream text;
    writeTextTrace(empty, text);
    EXPECT_EQ(readTextTrace(text).size(), 0u);
}

TEST(TraceRobustnessTest, ExtremeFieldValuesSurvive)
{
    TraceBuffer trace;
    trace.append(TraceEvent{~0ull, 65'000, RefType::Store});
    trace.append(TraceEvent{0, 0, RefType::IFetch});

    std::stringstream binary;
    writeBinaryTrace(trace, binary);
    const TraceBuffer loaded = readBinaryTrace(binary);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].addr, ~0ull);
    EXPECT_EQ(loaded[0].cpu, 65'000);

    std::stringstream text;
    writeTextTrace(trace, text);
    const TraceBuffer from_text = readTextTrace(text);
    ASSERT_EQ(from_text.size(), 2u);
    EXPECT_EQ(from_text[0].addr, ~0ull);
}

TEST(TraceRobustnessTest, TextTrailingGarbageOnLineIsIgnoredFields)
{
    // istream-based parsing stops at whitespace; extra columns after
    // the triple are tolerated (forward compatibility), but garbage in
    // place of required fields is not.
    std::stringstream ok("0 l 10 extra-column\n");
    EXPECT_EQ(readTextTrace(ok).size(), 1u);

    std::stringstream missing_addr("0 l\n");
    EXPECT_THROW(readTextTrace(missing_addr), std::runtime_error);

    std::stringstream long_type("0 load 10\n");
    EXPECT_THROW(readTextTrace(long_type), std::runtime_error);
}

TEST(TraceRobustnessTest, AddressWithTrailingGarbageIsRejected)
{
    // std::stoull would silently parse "1f2zz" as 0x1f2; the full
    // token must be valid hex.
    std::stringstream is("0 l 1f2zz\n");
    EXPECT_THROW(readTextTrace(is), std::runtime_error);
}

TEST(TraceRobustnessTest, NegativeAddressIsRejected)
{
    // std::stoull would wrap "-1" to 2^64-1.
    std::stringstream is("0 l -1\n");
    EXPECT_THROW(readTextTrace(is), std::runtime_error);
}

TEST(TraceRobustnessTest, BadAddressErrorsCarryTheLineNumber)
{
    for (const char *body : {"0 l zz\n", "0 l 1f2zz\n", "0 l -1\n"}) {
        std::stringstream is(std::string("# header\n0 i 10\n") + body);
        try {
            readTextTrace(is);
            FAIL() << "expected a parse error for " << body;
        } catch (const std::runtime_error &error) {
            EXPECT_NE(std::string(error.what()).find("line 3"),
                      std::string::npos)
                << error.what();
        }
    }
}

TEST(TraceRobustnessTest, HexPrefixedAddressesStillParse)
{
    std::stringstream is("0 l 0x1f\n1 s 0X20\n");
    const TraceBuffer trace = readTextTrace(is);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].addr, 0x1fu);
    EXPECT_EQ(trace[1].addr, 0x20u);
    std::stringstream bare_prefix("0 l 0x\n");
    EXPECT_THROW(readTextTrace(bare_prefix), std::runtime_error);
}

TEST(TraceRobustnessTest, HugeHeaderCountFailsFastWithoutAllocating)
{
    // A corrupt count must hit the truncation error before reserve():
    // previously 2^56 events meant a multi-GB allocation attempt.
    std::string bytes = "SWCCTRC1";
    for (int i = 0; i < 7; ++i) {
        bytes.push_back('\0');
    }
    bytes.push_back('\x7f'); // count = 0x7f00'0000'0000'0000
    std::istringstream is(bytes);
    try {
        readBinaryTrace(is);
        FAIL() << "expected a truncation error";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("truncated"),
                  std::string::npos)
            << error.what();
    }
}

TEST(TraceRobustnessTest, TextLineNumbersAppearInErrors)
{
    std::stringstream is("# fine\n0 i 10\n0 q 10\n");
    try {
        readTextTrace(is);
        FAIL() << "expected a parse error";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("3"),
                  std::string::npos)
            << error.what();
    }
}

} // namespace
} // namespace swcc
