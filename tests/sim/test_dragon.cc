/**
 * @file
 * Unit and property tests for the Dragon write-broadcast protocol.
 */

#include <gtest/gtest.h>

#include "sim/cache/dragon_protocol.hh"
#include "sim/synth/rng.hh"

namespace swcc
{
namespace
{

constexpr Addr kBlockA = 0x8000'0000;
constexpr Addr kBlockB = 0x8000'0010;

CacheConfig
config()
{
    CacheConfig c;
    c.sizeBytes = 1024;
    c.blockBytes = 16;
    c.associativity = 2;
    return c;
}

LineState
stateOf(const DragonProtocol &protocol, CpuId cpu, Addr addr)
{
    const CacheLine *line = protocol.cache(cpu).find(addr);
    return line != nullptr ? line->state : LineState::Invalid;
}

std::vector<Operation>
opsOf(const AccessResult &result)
{
    return {result.ops.begin(), result.ops.begin() + result.numOps};
}

TEST(DragonTest, ColdReadMissInstallsExclusive)
{
    DragonProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Exclusive);
}

TEST(DragonTest, SecondReaderMakesBothSharedClean)
{
    DragonProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    // Memory supplies (no dirty copy); processor 0 snoops the fill.
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedClean);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
}

TEST(DragonTest, WriteToExclusiveIsSilent)
{
    DragonProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(result.numOps, 0u);
    EXPECT_TRUE(result.steals.empty());
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
}

TEST(DragonTest, DirtyCopyIsSuppliedByTheOwningCache)
{
    DragonProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result); // Dirty in 0.
    protocol.access(1, RefType::Load, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissCache});
    // The owner keeps ownership as SharedDirty; the reader is clean.
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedDirty);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
}

TEST(DragonTest, WriteToSharedBroadcastsAndStealsCycles)
{
    DragonProtocol protocol(config(), 3);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result);
    protocol.access(2, RefType::Load, kBlockA, result);

    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::WriteBroadcast});
    EXPECT_EQ(result.steals.size(), 2u);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedDirty);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedClean);
    EXPECT_EQ(stateOf(protocol, 2, kBlockA), LineState::SharedClean);
}

TEST(DragonTest, OwnershipMovesToTheLatestWriter)
{
    DragonProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result); // 0 owns.
    protocol.access(1, RefType::Load, kBlockA, result);  // 0 Sd, 1 Sc.
    protocol.access(1, RefType::Store, kBlockA, result); // Broadcast.
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::WriteBroadcast});
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedClean);
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedDirty);
}

TEST(DragonTest, BroadcastToVanishedSharersUpgradesToDirty)
{
    DragonProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Load, kBlockA, result); // Both Sc.

    // Evict the copy in cache 1 by filling its set (2-way).
    protocol.access(1, RefType::Load, kBlockA + 512, result);
    protocol.access(1, RefType::Load, kBlockA + 1024, result);
    ASSERT_EQ(stateOf(protocol, 1, kBlockA), LineState::Invalid);

    // Cache 0 still believes the block is shared, so it broadcasts —
    // and learns from the (unasserted) shared line that it is alone.
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::WriteBroadcast});
    EXPECT_TRUE(result.steals.empty());
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
}

TEST(DragonTest, WriteMissFetchesThenBroadcasts)
{
    DragonProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Load, kBlockA, result);
    protocol.access(1, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              (std::vector<Operation>{Operation::CleanMissMem,
                                      Operation::WriteBroadcast}));
    EXPECT_EQ(stateOf(protocol, 1, kBlockA), LineState::SharedDirty);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::SharedClean);
}

TEST(DragonTest, ColdWriteMissGoesStraightToDirty)
{
    DragonProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
}

TEST(DragonTest, EvictingTheOwnerWritesBack)
{
    DragonProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result); // Dirty.
    protocol.access(0, RefType::Load, kBlockA + 512, result);
    protocol.access(0, RefType::Load, kBlockA + 1024, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::DirtyMissMem});
}

TEST(DragonTest, FlushEventsAreIgnored)
{
    DragonProtocol protocol(config(), 1);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result);
    protocol.access(0, RefType::Flush, kBlockA, result);
    EXPECT_EQ(result.numOps, 0u);
    EXPECT_EQ(stateOf(protocol, 0, kBlockA), LineState::Dirty);
}

TEST(DragonTest, MeasurementsCountSharingInteractions)
{
    const SharedClassifier everything = [](Addr) { return true; };
    DragonProtocol protocol(config(), 2, everything);
    AccessResult result;
    protocol.access(0, RefType::Store, kBlockA, result); // Shared miss.
    protocol.access(1, RefType::Load, kBlockA, result);  // Dirty miss.
    protocol.access(1, RefType::Store, kBlockB, result); // Clean miss.
    protocol.access(1, RefType::Store, kBlockA, result); // Broadcast.

    const DragonMeasurements &m = protocol.measurements();
    EXPECT_EQ(m.sharedMisses, 3u);
    EXPECT_EQ(m.sharedMissesClean, 2u);
    EXPECT_NEAR(m.oclean(), 2.0 / 3.0, 1e-12);
    EXPECT_EQ(m.sharedWrites, 3u);
    EXPECT_EQ(m.sharedWritesPresent, 1u);
    EXPECT_EQ(m.broadcasts, 1u);
    EXPECT_EQ(m.broadcastCopies, 1u);
    EXPECT_DOUBLE_EQ(m.nshd(), 1.0);
}

TEST(DragonMeasurementsTest, FallbacksWhenNothingObserved)
{
    const DragonMeasurements empty;
    EXPECT_DOUBLE_EQ(empty.oclean(0.84), 0.84);
    EXPECT_DOUBLE_EQ(empty.opres(0.79), 0.79);
    EXPECT_DOUBLE_EQ(empty.nshd(1.0), 1.0);
}

/** Randomised stress: the cross-cache invariants always hold. */
class DragonStressTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DragonStressTest, InvariantsHoldUnderRandomTraffic)
{
    DragonProtocol protocol(config(), 4);
    Rng rng(GetParam());
    AccessResult result;
    for (int i = 0; i < 20'000; ++i) {
        const CpuId cpu = static_cast<CpuId>(rng.below(4));
        const Addr addr = kBlockA + 16 * rng.below(24);
        const RefType type = rng.chance(0.35) ? RefType::Store
                                              : RefType::Load;
        protocol.access(cpu, type, addr, result);
        if (i % 500 == 0) {
            ASSERT_NO_THROW(checkCoherenceInvariants(protocol));
        }
    }
    EXPECT_NO_THROW(checkCoherenceInvariants(protocol));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DragonStressTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

} // namespace
} // namespace swcc
