/**
 * @file
 * Unit and property tests for the synthetic trace generator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"
#include "sim/trace/trace_stats.hh"

namespace swcc
{
namespace
{

SyntheticWorkloadConfig
smallConfig()
{
    SyntheticWorkloadConfig config;
    config.numCpus = 4;
    config.instructionsPerCpu = 30'000;
    config.seed = 123;
    return config;
}

TEST(GeneratorTest, ProducesRequestedCpus)
{
    const TraceBuffer trace = generateTrace(smallConfig());
    EXPECT_EQ(trace.numCpus(), 4u);
}

TEST(GeneratorTest, RetiresAtLeastTheRequestedInstructions)
{
    const SyntheticWorkloadConfig config = smallConfig();
    const TraceBuffer trace = generateTrace(config);
    std::vector<std::size_t> ifetches(config.numCpus, 0);
    for (const TraceEvent &event : trace) {
        if (event.type == RefType::IFetch) {
            ++ifetches[event.cpu];
        }
    }
    for (std::size_t count : ifetches) {
        EXPECT_GE(count, config.instructionsPerCpu);
        // Some slack for lock and flush instructions.
        EXPECT_LT(count, config.instructionsPerCpu * 11 / 10);
    }
}

TEST(GeneratorTest, DeterministicPerSeed)
{
    const TraceBuffer a = generateTrace(smallConfig());
    const TraceBuffer b = generateTrace(smallConfig());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 997) {
        EXPECT_EQ(a[i], b[i]);
    }

    SyntheticWorkloadConfig other = smallConfig();
    other.seed = 999;
    const TraceBuffer c = generateTrace(other);
    EXPECT_NE(a.size(), c.size());
}

TEST(GeneratorTest, NoFlushesUnlessRequested)
{
    EXPECT_EQ(generateTrace(smallConfig()).countType(RefType::Flush), 0u);

    SyntheticWorkloadConfig config = smallConfig();
    config.emitFlushes = true;
    EXPECT_GT(generateTrace(config).countType(RefType::Flush), 0u);
}

TEST(GeneratorTest, MeasuredParametersTrackConfiguration)
{
    SyntheticWorkloadConfig config = smallConfig();
    config.ls = 0.35;
    config.shd = 0.2;
    const TraceBuffer trace = generateTrace(config);
    const TraceStatistics stats =
        analyzeTrace(trace, config.blockBytes, config.sharedClassifier());

    EXPECT_NEAR(stats.ls, 0.35, 0.02);
    EXPECT_NEAR(stats.shd, 0.2, 0.04);
}

TEST(GeneratorTest, SegmentsStayInTheirAddressRanges)
{
    SyntheticWorkloadConfig config = smallConfig();
    config.emitFlushes = true;
    const TraceBuffer trace = generateTrace(config);
    for (const TraceEvent &event : trace) {
        switch (event.type) {
          case RefType::IFetch:
            EXPECT_GE(event.addr, config.codeBase(event.cpu));
            EXPECT_LT(event.addr,
                      config.codeBase(event.cpu) + config.codeBytes);
            break;
          case RefType::Load:
          case RefType::Store:
          case RefType::Flush:
            if (event.addr >= SyntheticWorkloadConfig::kSharedBase) {
                EXPECT_LT(event.addr,
                          SyntheticWorkloadConfig::kSharedBase +
                              config.sharedBytes);
            } else {
                EXPECT_GE(event.addr, config.privateBase(event.cpu));
                EXPECT_LT(event.addr, config.privateBase(event.cpu) +
                                          config.privateBytes);
            }
            break;
        }
    }
}

TEST(GeneratorTest, FlushesTargetOnlySharedBlocks)
{
    SyntheticWorkloadConfig config = smallConfig();
    config.emitFlushes = true;
    const TraceBuffer trace = generateTrace(config);
    const SharedClassifier shared = config.sharedClassifier();
    for (const TraceEvent &event : trace) {
        if (event.type == RefType::Flush) {
            EXPECT_TRUE(shared(event.addr & ~static_cast<Addr>(15)));
        }
    }
}

TEST(GeneratorTest, ZeroSharingNeverTouchesSharedSegment)
{
    SyntheticWorkloadConfig config = smallConfig();
    config.shd = 0.0;
    const TraceBuffer trace = generateTrace(config);
    for (const TraceEvent &event : trace) {
        EXPECT_LT(event.addr, SyntheticWorkloadConfig::kSharedBase);
    }
}

TEST(GeneratorTest, RejectsInvalidConfig)
{
    SyntheticWorkloadConfig config = smallConfig();
    config.numCpus = 0;
    EXPECT_THROW(generateTrace(config), std::invalid_argument);

    config = smallConfig();
    config.ls = 1.4;
    EXPECT_THROW(generateTrace(config), std::invalid_argument);

    config = smallConfig();
    config.blockBytes = 12;
    EXPECT_THROW(generateTrace(config), std::invalid_argument);

    config = smallConfig();
    config.regionBlocks = 0;
    EXPECT_THROW(generateTrace(config), std::invalid_argument);
}

TEST(MigrationTest, OffByDefaultKeepsPrivateDataPrivate)
{
    SyntheticWorkloadConfig config = smallConfig();
    config.shd = 0.0; // Only private data; sharing can come only from
                      // migration.
    const TraceBuffer trace = generateTrace(config);
    const TraceStatistics stats = analyzeTrace(trace, 16);
    EXPECT_DOUBLE_EQ(stats.shd, 0.0);
}

TEST(MigrationTest, MigrationMakesPrivateDataDynamicallyShared)
{
    SyntheticWorkloadConfig config = smallConfig();
    config.shd = 0.0;
    config.migrationIntervalInstrs = 3'000;
    const TraceBuffer trace = generateTrace(config);
    // Dynamic detection: migrated segments are touched by two cpus.
    const TraceStatistics stats = analyzeTrace(trace, 16);
    EXPECT_GT(stats.shd, 0.015);
    // The software interpretation (marked region) is unchanged: no
    // flush or bypass would protect this data.
    const TraceStatistics marked =
        analyzeTrace(trace, 16, config.sharedClassifier());
    EXPECT_DOUBLE_EQ(marked.shd, 0.0);
}

TEST(MigrationTest, MigrationRaisesMissRates)
{
    SyntheticWorkloadConfig config = smallConfig();
    SyntheticWorkloadConfig migratory = config;
    migratory.migrationIntervalInstrs = 5'000;

    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;
    auto miss_rate = [&cache](const SyntheticWorkloadConfig &c) {
        return simulateTrace(Scheme::Base, generateTrace(c), cache)
            .dataMissRate();
    };
    // The cold restarts after each migration inflate the miss rate.
    EXPECT_GT(miss_rate(migratory), 1.2 * miss_rate(config));
}

TEST(MigrationTest, SingleCpuMachineCannotMigrate)
{
    SyntheticWorkloadConfig config = smallConfig();
    config.numCpus = 1;
    config.migrationIntervalInstrs = 1'000;
    EXPECT_NO_THROW(generateTrace(config));
}

/** Profile sweep: measured parameters land in paper Table 7's ranges. */
class ProfileTest : public ::testing::TestWithParam<AppProfile>
{
};

TEST_P(ProfileTest, MeasuredParametersAreInStudiedRanges)
{
    const SyntheticWorkloadConfig config =
        profileConfig(GetParam(), 4, 60'000, 11, true);
    const TraceBuffer trace = generateTrace(config);
    const TraceStatistics stats =
        analyzeTrace(trace, config.blockBytes, config.sharedClassifier());

    EXPECT_GE(stats.ls, 0.15);
    EXPECT_LE(stats.ls, 0.45);
    EXPECT_GE(stats.shd, 0.02);
    EXPECT_LE(stats.shd, 0.45);
    EXPECT_GE(stats.wr, 0.05);
    EXPECT_LE(stats.wr, 0.45);
    ASSERT_TRUE(stats.apl.has_value());
    EXPECT_GE(*stats.apl, 1.0);
    EXPECT_LE(*stats.apl, 30.0);
    ASSERT_TRUE(stats.mdshd.has_value());
    EXPECT_GE(*stats.mdshd, 0.1);
    EXPECT_LE(*stats.mdshd, 0.8);
}

TEST_P(ProfileTest, ProfilesAreDistinct)
{
    const SyntheticWorkloadConfig config =
        profileConfig(GetParam(), 2, 1'000, 1, false);
    EXPECT_EQ(config.name, profileName(GetParam()));
    EXPECT_NO_THROW(config.validate());
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileTest,
                         ::testing::ValuesIn(kAllProfiles));

TEST(ProfileTest, SharingLevelsOrderAsDocumented)
{
    // thor-like < pops-like < pero-like in sharing.
    auto shd_of = [](AppProfile profile) {
        const SyntheticWorkloadConfig config =
            profileConfig(profile, 4, 40'000, 3, false);
        return analyzeTrace(generateTrace(config), config.blockBytes,
                            config.sharedClassifier())
            .shd;
    };
    const double thor = shd_of(AppProfile::ThorLike);
    const double pops = shd_of(AppProfile::PopsLike);
    const double pero = shd_of(AppProfile::PeroLike);
    EXPECT_LT(thor, pops);
    EXPECT_LT(pops, pero);
}

} // namespace
} // namespace swcc
