/**
 * @file
 * Integration tests: the analytical model agrees with the simulator
 * (the paper's Section 3 validation, as tests).
 */

#include <gtest/gtest.h>

#include <cmath>

#include <tuple>

#include "sim/mp/validation.hh"

namespace swcc
{
namespace
{

ValidationConfig
baseConfig(Scheme scheme,
           AppProfile profile = AppProfile::PopsLike)
{
    ValidationConfig config;
    config.profile = profile;
    config.scheme = scheme;
    config.maxCpus = 4;
    config.instructionsPerCpu = 60'000;
    config.seed = 101;
    return config;
}

class SchemeValidationTest
    : public ::testing::TestWithParam<std::tuple<Scheme, AppProfile>>
{
};

TEST_P(SchemeValidationTest, ModelTracksSimulationWithinTolerance)
{
    const auto [scheme, profile] = GetParam();
    const auto points = validate(baseConfig(scheme, profile));
    ASSERT_EQ(points.size(), 4u);
    for (const ValidationPoint &point : points) {
        EXPECT_LT(std::abs(point.errorPercent()), 16.0)
            << schemeName(scheme) << '/' << profileName(profile)
            << " cpus=" << point.cpus << " sim=" << point.simPower
            << " model=" << point.modelPower;
    }
}

TEST_P(SchemeValidationTest, PowerGrowsWithProcessors)
{
    const auto [scheme, profile] = GetParam();
    const auto points = validate(baseConfig(scheme, profile));
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].simPower, points[i - 1].simPower);
        EXPECT_GT(points[i].modelPower, points[i - 1].modelPower);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesByProfile, SchemeValidationTest,
    ::testing::Combine(
        ::testing::Values(Scheme::Base, Scheme::Dragon,
                          Scheme::SoftwareFlush, Scheme::NoCache),
        ::testing::ValuesIn(kAllProfiles)));

TEST(ValidationBiasTest, ModelOverestimatesContentionOnAverage)
{
    // Paper Section 3: the model "consistently overestimates bus
    // contention" because it assumes exponential rather than fixed bus
    // service times. Overestimated contention means underestimated
    // power, so the mean signed error is negative at multi-processor
    // points.
    double total_error = 0.0;
    int points_counted = 0;
    for (Scheme scheme : {Scheme::Base, Scheme::Dragon}) {
        for (const ValidationPoint &point :
             validate(baseConfig(scheme))) {
            if (point.cpus >= 2) {
                total_error += point.errorPercent();
                ++points_counted;
            }
        }
    }
    ASSERT_GT(points_counted, 0);
    EXPECT_LT(total_error / points_counted, 0.0);
}

TEST(ValidationBiasTest, SingleProcessorNeedsNoContentionModel)
{
    // With one processor there is no contention to misestimate, so the
    // model should be near-exact (measured inputs, measured service).
    for (Scheme scheme : {Scheme::Base, Scheme::Dragon}) {
        const auto points = validate(baseConfig(scheme));
        EXPECT_LT(std::abs(points.front().errorPercent()), 2.0)
            << schemeName(scheme);
    }
}

TEST(ValidationRelativeTest, ModelPreservesTheBaseDragonGap)
{
    // Paper: "the model exactly captures the relative difference
    // between the performance of Base and Dragon schemes".
    const auto base = validate(baseConfig(Scheme::Base));
    const auto dragon = validate(baseConfig(Scheme::Dragon));
    for (std::size_t i = 1; i < base.size(); ++i) {
        const double sim_gap = base[i].simPower / dragon[i].simPower;
        const double model_gap =
            base[i].modelPower / dragon[i].modelPower;
        EXPECT_NEAR(sim_gap, model_gap, 0.05 * sim_gap);
    }
}

TEST(ValidationPointTest, ErrorPercentIsSigned)
{
    ValidationPoint point;
    point.simPower = 2.0;
    point.modelPower = 1.8;
    EXPECT_NEAR(point.errorPercent(), -10.0, 1e-12);
    point.modelPower = 2.2;
    EXPECT_NEAR(point.errorPercent(), 10.0, 1e-12);
    point.simPower = 0.0;
    EXPECT_DOUBLE_EQ(point.errorPercent(), 0.0);
}

} // namespace
} // namespace swcc
