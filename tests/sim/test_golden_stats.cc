/**
 * @file
 * Golden-statistics tests for the simulator's optimized hot path.
 *
 * The sharer-index directory, shift/mask cache addressing, and the
 * tournament-tree event loop are licensed by one invariant: they speed
 * the simulator up without changing a single statistic. These tests
 * pin that invariant with SimStats::serialize() byte-equality — the
 * optimized directory snoop path against the retained reference scan,
 * for every protocol and application profile, and parallel sweeps
 * against serial ones across thread counts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/obs/metrics.hh"
#include "core/parallel.hh"
#include "sim/cache/invalidate_protocol.hh"
#include "sim/mp/system.hh"
#include "sim/mp/validation.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{
namespace
{

CacheConfig
cache64k()
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.blockBytes = 16;
    return config;
}

/** Serialized statistics of one cold run on the given snoop path. */
std::string
runOn(MultiprocessorSystem &system, const TraceBuffer &trace,
      SnoopPath path)
{
    system.setSnoopPath(path);
    return system.run(trace).serialize();
}

TEST(GoldenStatsTest, PaperSchemesMatchReferenceScanOnEveryProfile)
{
    for (AppProfile profile : kAllProfiles) {
        for (Scheme scheme : kAllSchemes) {
            const bool software = scheme == Scheme::SoftwareFlush;
            const SyntheticWorkloadConfig workload =
                profileConfig(profile, 4, 8'000, 11, software);
            const TraceBuffer trace = generateTrace(workload);
            const SharedClassifier shared =
                workload.sharedClassifier();

            MultiprocessorSystem reference(scheme, cache64k(), 4,
                                           shared);
            MultiprocessorSystem directory(scheme, cache64k(), 4,
                                           shared);
            EXPECT_EQ(
                runOn(reference, trace, SnoopPath::ReferenceScan),
                runOn(directory, trace, SnoopPath::Directory))
                << "scheme " << schemeName(scheme) << " profile "
                << profileName(profile);
        }
    }
}

TEST(GoldenStatsTest, InvalidateProtocolMatchesReferenceScan)
{
    for (AppProfile profile : kAllProfiles) {
        const TraceBuffer trace = generateTrace(
            profileConfig(profile, 4, 8'000, 13, false));

        MultiprocessorSystem reference(
            std::make_unique<InvalidateProtocol>(cache64k(), 4));
        MultiprocessorSystem directory(
            std::make_unique<InvalidateProtocol>(cache64k(), 4));
        EXPECT_EQ(runOn(reference, trace, SnoopPath::ReferenceScan),
                  runOn(directory, trace, SnoopPath::Directory))
            << "profile " << profileName(profile);
    }
}

TEST(GoldenStatsTest, UpdateSchemesMatchReferenceScanAtLargeCpuCounts)
{
    // The dirty-holder bitset lets update-based schemes service bus
    // writes from the directory instead of scanning every cache; at
    // 32-48 CPUs on a sharing-heavy profile that path carries real
    // traffic (many holders, mixed clean/dirty copies), so byte-equal
    // statistics here pin the whole off-Base directory fast path.
    for (const CpuId cpus : {CpuId{32}, CpuId{48}}) {
        const SyntheticWorkloadConfig workload =
            profileConfig(AppProfile::PeroLike, cpus, 3'000, 17, false);
        const TraceBuffer trace = generateTrace(workload);
        const SharedClassifier shared = workload.sharedClassifier();

        MultiprocessorSystem dragon_ref(Scheme::Dragon, cache64k(),
                                        cpus, shared);
        MultiprocessorSystem dragon_dir(Scheme::Dragon, cache64k(),
                                        cpus, shared);
        EXPECT_EQ(runOn(dragon_ref, trace, SnoopPath::ReferenceScan),
                  runOn(dragon_dir, trace, SnoopPath::Directory))
            << "dragon, " << unsigned{cpus} << " cpus";

        MultiprocessorSystem inv_ref(
            std::make_unique<InvalidateProtocol>(cache64k(), cpus));
        MultiprocessorSystem inv_dir(
            std::make_unique<InvalidateProtocol>(cache64k(), cpus));
        EXPECT_EQ(runOn(inv_ref, trace, SnoopPath::ReferenceScan),
                  runOn(inv_dir, trace, SnoopPath::Directory))
            << "invalidate, " << unsigned{cpus} << " cpus";
    }
}

TEST(GoldenStatsTest, NewProtocolsMatchReferenceScanAtLargeCpuCounts)
{
    // Same contract for the invalidate family and the hybrid: the
    // sharer-index fast path (including the dirty-holder bitset the
    // MOESI Owned state and the hybrid's Dragon fills lean on) must
    // not change a single statistic versus the reference scan.
    for (const CpuId cpus : {CpuId{32}, CpuId{48}}) {
        const SyntheticWorkloadConfig workload =
            profileConfig(AppProfile::PeroLike, cpus, 3'000, 17, false);
        const TraceBuffer trace = generateTrace(workload);
        const SharedClassifier shared = workload.sharedClassifier();

        for (Scheme scheme : {Scheme::Mesi, Scheme::Mesif,
                              Scheme::Moesi, Scheme::Hybrid}) {
            MultiprocessorSystem reference(scheme, cache64k(), cpus,
                                           shared);
            MultiprocessorSystem directory(scheme, cache64k(), cpus,
                                           shared);
            EXPECT_EQ(
                runOn(reference, trace, SnoopPath::ReferenceScan),
                runOn(directory, trace, SnoopPath::Directory))
                << schemeName(scheme) << ", " << unsigned{cpus}
                << " cpus";
        }
    }
}

TEST(GoldenStatsTest, SweepStatisticsAreThreadCountInvariant)
{
    ValidationConfig config;
    config.profile = AppProfile::PeroLike;
    config.scheme = Scheme::Dragon;
    config.maxCpus = 3;
    config.instructionsPerCpu = 6'000;
    config.seed = 7;

    const auto serialized = [&] {
        std::vector<std::string> result;
        for (const ValidationPoint &point : validate(config)) {
            result.push_back(point.sim.serialize());
        }
        return result;
    };

    setThreadCount(1);
    const std::vector<std::string> serial = serialized();
    setThreadCount(4);
    const std::vector<std::string> parallel = serialized();
    setThreadCount(0);

    EXPECT_EQ(serial, parallel);
}

TEST(GoldenStatsTest, DirectoryFallsBackBeyondSixtyFourCpus)
{
    constexpr CpuId kCpus = 68;
    CacheConfig small;
    small.sizeBytes = 4096;
    small.blockBytes = 16;
    small.associativity = 2;

    TraceBuffer trace;
    for (CpuId cpu = 0; cpu < kCpus; ++cpu) {
        trace.append(cpu, RefType::Load, 0x8000'0000);
        trace.append(cpu, RefType::Store, 0x8000'0000);
    }

    MultiprocessorSystem requested(Scheme::Dragon, small, kCpus);
    requested.setSnoopPath(SnoopPath::Directory);
    EXPECT_EQ(requested.protocol().snoopPath(),
              SnoopPath::ReferenceScan);

    MultiprocessorSystem scan(Scheme::Dragon, small, kCpus);
    scan.setSnoopPath(SnoopPath::ReferenceScan);
    EXPECT_EQ(requested.run(trace).serialize(),
              scan.run(trace).serialize());
}

TEST(GoldenStatsTest, NewProtocolsFallBackBeyondSixtyFourCpus)
{
    // The warn-once fallback must degrade every extension protocol to
    // the reference scan cleanly, with identical statistics to an
    // explicitly requested scan.
    constexpr CpuId kCpus = 68;
    CacheConfig small;
    small.sizeBytes = 4096;
    small.blockBytes = 16;
    small.associativity = 2;

    TraceBuffer trace;
    for (CpuId cpu = 0; cpu < kCpus; ++cpu) {
        trace.append(cpu, RefType::Load, 0x8000'0000);
        trace.append(cpu, RefType::Store, 0x8000'0000);
    }

    for (Scheme scheme : {Scheme::Mesi, Scheme::Mesif, Scheme::Moesi,
                          Scheme::Hybrid}) {
        MultiprocessorSystem requested(scheme, small, kCpus);
        requested.setSnoopPath(SnoopPath::Directory);
        EXPECT_EQ(requested.protocol().snoopPath(),
                  SnoopPath::ReferenceScan)
            << schemeName(scheme);

        MultiprocessorSystem scan(scheme, small, kCpus);
        scan.setSnoopPath(SnoopPath::ReferenceScan);
        EXPECT_EQ(requested.run(trace).serialize(),
                  scan.run(trace).serialize())
            << schemeName(scheme);
    }
}

#if SWCC_OBS_ENABLED
TEST(GoldenStatsTest, SnoopPathGaugeTracksTheEffectivePath)
{
    // sim.snoop_path.directory is a last-write-wins gauge published at
    // construction and on every setSnoopPath(); it must report the
    // effective path — including the silent >64-CPU fallback — for
    // the new protocols too.
    obs::Gauge &gauge =
        obs::metrics().gauge("sim.snoop_path.directory");

    for (Scheme scheme : {Scheme::Mesi, Scheme::Mesif, Scheme::Moesi,
                          Scheme::Hybrid}) {
        MultiprocessorSystem system(scheme, cache64k(), 4);
        EXPECT_DOUBLE_EQ(gauge.value(), 1.0) << schemeName(scheme);
        system.setSnoopPath(SnoopPath::ReferenceScan);
        EXPECT_DOUBLE_EQ(gauge.value(), 0.0) << schemeName(scheme);
        system.setSnoopPath(SnoopPath::Directory);
        EXPECT_DOUBLE_EQ(gauge.value(), 1.0) << schemeName(scheme);

        CacheConfig small;
        small.sizeBytes = 4096;
        small.blockBytes = 16;
        small.associativity = 2;
        MultiprocessorSystem large(scheme, small, 68);
        EXPECT_DOUBLE_EQ(gauge.value(), 0.0) << schemeName(scheme);
        large.setSnoopPath(SnoopPath::Directory); // Falls back.
        EXPECT_DOUBLE_EQ(gauge.value(), 0.0) << schemeName(scheme);
    }
}
#endif

TEST(GoldenStatsTest, SnoopPathCannotChangeOnAWarmSystem)
{
    TraceBuffer trace;
    trace.append(0, RefType::Load, 0x8000'0000);

    MultiprocessorSystem system(Scheme::Dragon, cache64k(), 2);
    system.run(trace);
    EXPECT_THROW(system.setSnoopPath(SnoopPath::ReferenceScan),
                 std::logic_error);
}

} // namespace
} // namespace swcc
