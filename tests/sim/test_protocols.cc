/**
 * @file
 * Unit tests for the Base, No-Cache and Software-Flush protocols.
 */

#include <gtest/gtest.h>

#include "sim/cache/base_protocol.hh"
#include "sim/cache/nocache_protocol.hh"
#include "sim/cache/swflush_protocol.hh"

namespace swcc
{
namespace
{

constexpr Addr kShared = 0x8000'0000;
constexpr Addr kPrivate = 0x4000'0000;

CacheConfig
config()
{
    CacheConfig c;
    c.sizeBytes = 1024;
    c.blockBytes = 16;
    c.associativity = 2;
    return c;
}

SharedClassifier
classifier()
{
    return [](Addr block) { return block >= kShared; };
}

std::vector<Operation>
opsOf(const AccessResult &result)
{
    return {result.ops.begin(), result.ops.begin() + result.numOps};
}

TEST(BaseProtocolTest, ColdMissThenHit)
{
    BaseProtocol protocol(config(), 1);
    AccessResult result;

    protocol.access(0, RefType::Load, kPrivate, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});

    protocol.access(0, RefType::Load, kPrivate + 4, result);
    EXPECT_EQ(result.numOps, 0u);
}

TEST(BaseProtocolTest, StoreDirtiesAndEvictionWritesBack)
{
    BaseProtocol protocol(config(), 1);
    AccessResult result;

    protocol.access(0, RefType::Store, kPrivate, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
    EXPECT_EQ(protocol.cache(0).find(kPrivate)->state, LineState::Dirty);

    // Two more blocks in the same set evict the dirty one (2-way).
    protocol.access(0, RefType::Load, kPrivate + 512, result);
    protocol.access(0, RefType::Load, kPrivate + 1024, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::DirtyMissMem});
}

TEST(BaseProtocolTest, IgnoresFlushes)
{
    BaseProtocol protocol(config(), 1);
    AccessResult result;
    protocol.access(0, RefType::Store, kShared, result);
    protocol.access(0, RefType::Flush, kShared, result);
    EXPECT_EQ(result.numOps, 0u);
    EXPECT_NE(protocol.cache(0).find(kShared), nullptr);
}

TEST(BaseProtocolTest, CachesAreFullyPrivate)
{
    BaseProtocol protocol(config(), 2);
    AccessResult result;
    protocol.access(0, RefType::Store, kShared, result);
    // Processor 1 misses even though processor 0 has the block dirty;
    // Base performs no coherence actions (and is thus incorrect but
    // fast, as the paper intends).
    protocol.access(1, RefType::Load, kShared, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
    EXPECT_EQ(protocol.cache(0).find(kShared)->state, LineState::Dirty);
}

TEST(NoCacheProtocolTest, SharedReferencesBypassTheCache)
{
    NoCacheProtocol protocol(config(), 1, classifier());
    AccessResult result;

    protocol.access(0, RefType::Load, kShared, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::ReadThrough});
    EXPECT_EQ(protocol.cache(0).find(kShared), nullptr);

    protocol.access(0, RefType::Store, kShared, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::WriteThrough});
    EXPECT_EQ(protocol.cache(0).validLines(), 0u);
}

TEST(NoCacheProtocolTest, PrivateDataIsCachedNormally)
{
    NoCacheProtocol protocol(config(), 1, classifier());
    AccessResult result;
    protocol.access(0, RefType::Load, kPrivate, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
    protocol.access(0, RefType::Load, kPrivate, result);
    EXPECT_EQ(result.numOps, 0u);
}

TEST(NoCacheProtocolTest, InstructionsAreCachedEvenInSharedRange)
{
    // Only data references bypass; instruction fetches always cache.
    NoCacheProtocol protocol(config(), 1, classifier());
    AccessResult result;
    protocol.access(0, RefType::IFetch, kShared, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
}

TEST(NoCacheProtocolTest, RequiresClassifier)
{
    EXPECT_THROW(NoCacheProtocol(config(), 1, nullptr),
                 std::invalid_argument);
}

TEST(SwFlushProtocolTest, FlushInvalidatesCleanBlockCheaply)
{
    SwFlushProtocol protocol(config(), 1);
    AccessResult result;
    protocol.access(0, RefType::Load, kShared, result);
    protocol.access(0, RefType::Flush, kShared, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanFlush});
    EXPECT_EQ(protocol.cache(0).find(kShared), nullptr);
    EXPECT_EQ(protocol.measurements().flushes, 1u);
    EXPECT_EQ(protocol.measurements().dirtyFlushes, 0u);
}

TEST(SwFlushProtocolTest, FlushWritesBackDirtyBlock)
{
    SwFlushProtocol protocol(config(), 1);
    AccessResult result;
    protocol.access(0, RefType::Store, kShared, result);
    protocol.access(0, RefType::Flush, kShared, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::DirtyFlush});
    EXPECT_EQ(protocol.measurements().dirtyFlushes, 1u);
}

TEST(SwFlushProtocolTest, FlushOfAbsentBlockStillExecutes)
{
    SwFlushProtocol protocol(config(), 1);
    AccessResult result;
    protocol.access(0, RefType::Flush, kShared, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanFlush});
    EXPECT_EQ(protocol.measurements().missedFlushes, 1u);
}

TEST(SwFlushProtocolTest, RefetchAfterFlushMissesCleanly)
{
    SwFlushProtocol protocol(config(), 1);
    AccessResult result;
    protocol.access(0, RefType::Store, kShared, result);
    protocol.access(0, RefType::Flush, kShared, result);
    // The refetch is a clean miss: the flush freed the frame (the
    // model's Table 5 approximation, exact here).
    protocol.access(0, RefType::Load, kShared, result);
    EXPECT_EQ(opsOf(result),
              std::vector<Operation>{Operation::CleanMissMem});
}

TEST(ProtocolBaseTest, RejectsZeroCpus)
{
    EXPECT_THROW(BaseProtocol(config(), 0), std::invalid_argument);
}

TEST(AccessResultTest, OpAccountingHelpers)
{
    AccessResult result;
    result.addOp(Operation::DirtyMissCache);
    EXPECT_TRUE(result.hasMiss());
    EXPECT_TRUE(result.hasDirtyMiss());
    result.reset();
    EXPECT_FALSE(result.hasMiss());
    result.addOp(Operation::WriteBroadcast);
    EXPECT_FALSE(result.hasMiss());
    result.addOp(Operation::CleanMissMem);
    EXPECT_TRUE(result.hasMiss());
    EXPECT_FALSE(result.hasDirtyMiss());
    result.addOp(Operation::CycleSteal);
    EXPECT_THROW(result.addOp(Operation::InstrExec), std::logic_error);
}

} // namespace
} // namespace swcc
