#!/usr/bin/env python3
"""Gate a `swcc validate` CSV against its checked-in golden.

Usage: check_validation.py GOLDEN_CSV ACTUAL_CSV [TOLERANCE]

Both files are `cpus,sim power,model power,error %` tables written by
`swcc validate --csv-out`. The gate fails when the two runs cover
different CPU counts or when any row's model-vs-simulator error drifts
by more than TOLERANCE percentage points (default 2.0) from the golden
run — i.e. the analytical tables and the trace simulator moved apart.
Exact FP equality is deliberately not required: different compilers may
round the last digit differently, and the golden is a regression bound,
not a bit-for-bit artifact.
"""

import csv
import sys


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        sys.exit(f"{path}: no data rows")
    try:
        return {int(r["cpus"]): float(r["error %"]) for r in rows}
    except (KeyError, ValueError) as err:
        sys.exit(f"{path}: not a validate CSV ({err})")


def main(argv):
    if len(argv) not in (3, 4):
        sys.exit(__doc__)
    golden = load(argv[1])
    actual = load(argv[2])
    tolerance = float(argv[3]) if len(argv) == 4 else 2.0

    if golden.keys() != actual.keys():
        sys.exit(
            f"CPU counts differ: golden {sorted(golden)} "
            f"vs actual {sorted(actual)}"
        )

    failures = []
    for cpus in sorted(golden):
        drift = abs(actual[cpus] - golden[cpus])
        status = "ok  " if drift <= tolerance else "FAIL"
        print(
            f"{status} cpus={cpus:3d} golden={golden[cpus]:+6.1f}% "
            f"actual={actual[cpus]:+6.1f}% drift={drift:.1f}"
        )
        if drift > tolerance:
            failures.append(cpus)

    if failures:
        sys.exit(
            f"validation error drifted past ±{tolerance} points at "
            f"cpus={failures}"
        )
    print(f"all rows within ±{tolerance} points of golden")


if __name__ == "__main__":
    main(sys.argv)
