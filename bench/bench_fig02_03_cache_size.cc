/**
 * @file
 * Reproduces Figures 2 and 3: impact of cache size (16K/64K/256K, 16B
 * blocks) on the Dragon scheme, model versus simulation, for four or
 * fewer processors (Figure 2) and eight or fewer (Figure 3).
 */

#include <array>
#include <iostream>
#include <vector>

#include "core/parallel.hh"
#include "core/swcc.hh"
#include "sim/mp/validation.hh"

namespace
{

using namespace swcc;

void
runFigure(const char *title, AppProfile profile, CpuId max_cpus,
          std::size_t instructions)
{
    std::cout << "=== " << title << " (" << profileName(profile)
              << ") ===\n\n";
    TextTable table({"cache", "cpus", "sim power", "model power",
                     "error %", "msdat", "mains"});
    AsciiChart chart(56, 14);

    // Cache-size rows take very different times (256K simulates the
    // same trace against 4x the sets of 64K), so flatten the size x
    // cpus grid into one index space and let the pool balance it.
    constexpr std::array kCacheKb{16u, 64u, 256u};
    const std::vector<ValidationPoint> points = parallelMapGrid(
        kCacheKb.size(), max_cpus,
        [&](std::size_t row, std::size_t col) {
            ValidationConfig config;
            config.profile = profile;
            config.scheme = Scheme::Dragon;
            config.cacheBytes = kCacheKb[row] * std::size_t{1024};
            config.maxCpus = max_cpus;
            config.instructionsPerCpu = instructions;
            config.seed = 23;
            return validatePoint(config, static_cast<CpuId>(col + 1));
        });

    for (std::size_t row = 0; row < kCacheKb.size(); ++row) {
        const unsigned cache_kb = kCacheKb[row];
        Series sim_series;
        sim_series.label = std::to_string(cache_kb) + "K sim";
        Series model_series;
        model_series.label = std::to_string(cache_kb) + "K model";

        for (CpuId cpus = 1; cpus <= max_cpus; ++cpus) {
            const ValidationPoint &point =
                points[row * max_cpus + cpus - 1];
            table.addRow(
                {std::to_string(cache_kb) + "K",
                 formatNumber(point.cpus, 0),
                 formatNumber(point.simPower, 3),
                 formatNumber(point.modelPower, 3),
                 formatNumber(point.errorPercent(), 1),
                 formatNumber(point.sim.dataMissRate(), 4),
                 formatNumber(point.sim.instrMissRate(), 4)});
            sim_series.points.push_back(
                {static_cast<double>(point.cpus), point.simPower});
            model_series.points.push_back(
                {static_cast<double>(point.cpus), point.modelPower});
        }
        chart.addSeries(sim_series);
        chart.addSeries(model_series);
    }
    table.print(std::cout);
    exportCsv(table, std::string("fig02_03_cache_size_") +
                         std::string(profileName(profile)));
    chart.setAxisTitles("processors", "processing power");
    chart.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    runFigure("Figure 2: cache size impact on Dragon, <= 4 CPUs",
              AppProfile::PopsLike, 4, 120'000);
    runFigure("Figure 3: cache size impact on Dragon, <= 8 CPUs",
              AppProfile::PeroLike, 8, 90'000);
    std::cout << "Expected shape: larger caches lower miss rates and "
                 "raise processing power;\n"
                 "the model tracks each cache size's simulation "
                 "closely.\n";
    return 0;
}
