/**
 * @file
 * Reproduces the paper's definitional tables: Table 1 (bus system
 * model), Table 2 (workload parameters), Tables 3-6 (per-scheme
 * operation frequencies, evaluated at the middle operating point),
 * Table 7 (parameter ranges), and Table 9 (network system model).
 */

#include <iostream>

#include "core/swcc.hh"

namespace
{

using namespace swcc;

void
printTable1()
{
    std::cout << "Table 1: System model: CPU and bus time for hardware "
                 "operations\n\n";
    const BusCostModel costs;
    TextTable table({"Operation", "CPU Time", "Bus Time"});
    for (Operation op : kAllOperations) {
        const OpCost cost = costs.cost(op);
        table.addRow({std::string(operationName(op)),
                      formatNumber(cost.cpu, 0),
                      formatNumber(cost.channel, 0)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
printTable2()
{
    std::cout << "Table 2: Parameters for the Workload Model\n\n";
    TextTable table({"Parameter", "Description"});
    for (ParamId id : kAllParams) {
        table.addRow({std::string(paramName(id)),
                      std::string(paramDescription(id))});
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
printFrequencyTable(Scheme scheme, const char *title)
{
    std::cout << title << " (evaluated at the middle operating point)\n\n";
    const WorkloadParams params = middleParams();
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    TextTable table({"Operation", "Frequency per instruction"});
    for (Operation op : kAllOperations) {
        if (op == Operation::InstrExec || freqs.of(op) == 0.0) {
            continue;
        }
        table.addRow({std::string(operationName(op)),
                      formatNumber(freqs.of(op), 6)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
printTable7()
{
    std::cout << "Table 7: Parameter ranges\n\n";
    TextTable table({"Parameter", "Low", "Middle", "High"});
    for (ParamId id : kAllParams) {
        table.addRow({std::string(paramName(id)),
                      formatNumber(paramLevelValue(id, Level::Low), 4),
                      formatNumber(paramLevelValue(id, Level::Middle), 4),
                      formatNumber(paramLevelValue(id, Level::High), 4)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

void
printTable9()
{
    std::cout << "Table 9: System model for a network with n stages\n\n";
    TextTable table({"Operation", "CPU Time", "Network Time",
                     "CPU (n=4)", "Net (n=4)"});
    const NetworkCostModel costs(4);
    const struct
    {
        Operation op;
        const char *cpu_formula;
        const char *net_formula;
    } rows[] = {
        {Operation::InstrExec, "1", "0"},
        {Operation::CleanMissMem, "9 + 2n", "6 + 2n"},
        {Operation::DirtyMissMem, "12 + 2n", "9 + 2n"},
        {Operation::CleanFlush, "1", "0"},
        {Operation::DirtyFlush, "7 + 2n", "5 + 2n"},
        {Operation::WriteThrough, "3 + 2n", "2 + 2n"},
        {Operation::ReadThrough, "4 + 2n", "3 + 2n"},
    };
    for (const auto &row : rows) {
        const OpCost cost = costs.cost(row.op);
        table.addRow({std::string(operationName(row.op)),
                      row.cpu_formula, row.net_formula,
                      formatNumber(cost.cpu, 0),
                      formatNumber(cost.channel, 0)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "=== Owicki-Agarwal model definition tables ===\n\n";
    printTable1();
    printTable2();
    printFrequencyTable(Scheme::Base, "Table 3: Workload model: Base");
    printFrequencyTable(Scheme::NoCache,
                        "Table 4: Workload model: No-Cache");
    printFrequencyTable(Scheme::SoftwareFlush,
                        "Table 5: Workload model: Software-Flush");
    printFrequencyTable(Scheme::Dragon,
                        "Table 6: Workload model: Dragon");
    printTable7();
    printTable9();
    return 0;
}
