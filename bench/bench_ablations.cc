/**
 * @file
 * Ablation studies for the modelling choices called out in DESIGN.md:
 *
 *  A1. Dragon's minor effects: the paper notes cache-supplied misses
 *      and cycle stealing "are small and could have been omitted".
 *      We quantify both by zeroing them.
 *  A2. The Software-Flush refetch-miss term: drop the "one clean miss
 *      per flush" effect and show the model becomes wildly optimistic.
 *  A3. Exponential-service bias: compare the MVA waiting time with a
 *      deterministic-service (M/D/1-style) correction to explain the
 *      model's systematic contention overestimate.
 */

#include <iostream>

#include "core/swcc.hh"
#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"

namespace
{

using namespace swcc;

void
ablationDragonEffects()
{
    std::cout << "--- A1: Dragon minor effects (16 CPUs, medium "
                 "parameters) ---\n\n";
    const WorkloadParams params = middleParams();
    const double full =
        evaluateBus(Scheme::Dragon, params, 16).processingPower;

    // Zero cache-supplied misses: pretend every miss hits memory.
    WorkloadParams no_cache_supply = params;
    no_cache_supply.oclean = 1.0;
    const double without_supply =
        evaluateBus(Scheme::Dragon, no_cache_supply, 16)
            .processingPower;

    // Zero cycle stealing.
    WorkloadParams no_steal = params;
    no_steal.nshd = 0.0;
    const double without_steal =
        evaluateBus(Scheme::Dragon, no_steal, 16).processingPower;

    TextTable table({"variant", "power", "delta %"});
    auto delta = [full](double v) {
        return formatNumber(100.0 * (v - full) / full, 2);
    };
    table.addRow({"full model", formatNumber(full, 3), "0"});
    table.addRow({"no cache-supplied misses",
                  formatNumber(without_supply, 3),
                  delta(without_supply)});
    table.addRow({"no cycle stealing", formatNumber(without_steal, 3),
                  delta(without_steal)});
    table.print(std::cout);
    std::cout << "\nBoth effects move processing power well under 1%, "
                 "confirming the paper's\nremark that they could have "
                 "been omitted.\n\n";
}

void
ablationRefetchMiss()
{
    std::cout << "--- A2: Software-Flush refetch-miss term (16 CPUs) "
                 "---\n\n";
    const WorkloadParams params = middleParams();
    const FrequencyVector full_freqs =
        operationFrequencies(Scheme::SoftwareFlush, params);

    // Rebuild the frequency vector without the refetch misses.
    FrequencyVector no_refetch = full_freqs;
    const double flush = flushFrequency(params);
    no_refetch.set(Operation::CleanMissMem,
                   full_freqs.of(Operation::CleanMissMem) - flush);

    const BusCostModel costs;
    const BusSolution with_term =
        solveBus(perInstructionCost(full_freqs, costs), 16);
    const BusSolution without_term =
        solveBus(perInstructionCost(no_refetch, costs), 16);

    TextTable table({"variant", "c", "b", "power"});
    table.addRow({"with refetch misses (paper)",
                  formatNumber(with_term.cpu, 3),
                  formatNumber(with_term.bus, 3),
                  formatNumber(with_term.processingPower, 2)});
    table.addRow({"without refetch misses",
                  formatNumber(without_term.cpu, 3),
                  formatNumber(without_term.bus, 3),
                  formatNumber(without_term.processingPower, 2)});
    table.print(std::cout);
    std::cout << "\nDropping the refetch term hides most of the "
                 "flushing cost: each flushed block\nmust be fetched "
                 "again, and that miss dominates the 1-cycle flush "
                 "itself.\n\n";
}

void
ablationServiceDistribution()
{
    std::cout << "--- A3: exponential vs deterministic bus service "
                 "(general-service MVA) ---\n\n";
    // The paper's model assumes exponential bus service while the
    // simulator (and real buses) use fixed times; Reiser's
    // residual-service correction quantifies the gap.
    const WorkloadParams params = middleParams();
    TextTable table({"scheme", "wait (scv=1)", "wait (scv=0)",
                     "power (exp)", "power (det)", "gap %"});
    for (Scheme scheme : kAllSchemes) {
        const PerInstructionCost cost = perInstructionCost(
            operationFrequencies(scheme, params), BusCostModel());
        const BusSolution exp_sol =
            solveBusGeneralService(cost, 16, 1.0);
        const BusSolution det_sol =
            solveBusGeneralService(cost, 16, 0.0);
        table.addRow(
            {std::string(schemeName(scheme)),
             formatNumber(exp_sol.waiting, 3),
             formatNumber(det_sol.waiting, 3),
             formatNumber(exp_sol.processingPower, 2),
             formatNumber(det_sol.processingPower, 2),
             formatNumber(100.0 *
                              (det_sol.processingPower -
                               exp_sol.processingPower) /
                              exp_sol.processingPower,
                          1)});
    }
    table.print(std::cout);
    std::cout << "\nDeterministic service waits less than exponential "
                 "at equal load — the reason\nthe analytical model "
                 "consistently overestimates contention versus the\n"
                 "fixed-service simulator (paper Section 3).\n\n";
}

void
ablationBlockSize()
{
    std::cout << "--- A4: block size (the paper fixes 4-word blocks) "
                 "---\n\n";
    // Bigger blocks move more bus cycles per miss. The *miss rate*
    // would also change in reality; holding it fixed isolates the
    // transfer-cost effect of the Table 1 derivation.
    const WorkloadParams params = middleParams();
    TextTable table({"block words", "Base power", "Dragon power",
                     "SW-Flush power", "No-Cache power"});
    for (unsigned words : {1u, 2u, 4u, 8u, 16u}) {
        MachineParams machine;
        machine.blockWords = words;
        const BusCostModel costs = makeBusCostModel(machine);
        std::vector<std::string> row{formatNumber(words, 0)};
        for (Scheme scheme : {Scheme::Base, Scheme::Dragon,
                              Scheme::SoftwareFlush,
                              Scheme::NoCache}) {
            row.push_back(formatNumber(
                evaluateBus(scheme, params, 16, costs).processingPower,
                2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nNo-Cache is immune to block size (it moves single "
                 "words), so large blocks\nnarrow its gap — at fixed "
                 "miss rate.\n\n";
}

void
ablationSwitchWidth()
{
    std::cout << "--- A5: crossbar dimension for a 256-processor "
                 "network ---\n\n";
    // The paper: "The analysis can be extended easily to ... crossbar
    // switches with a larger dimension."
    TextTable table({"switch", "stages", "U at m=0.01", "U at m=0.03",
                     "U at m=0.08"});
    for (unsigned k : {2u, 4u, 16u}) {
        const unsigned stages = stagesForProcessorsK(256, k);
        std::vector<std::string> row{
            std::to_string(k) + "x" + std::to_string(k),
            formatNumber(stages, 0)};
        for (double rate : {0.01, 0.03, 0.08}) {
            const double size = 4.0 + 2.0 * stages;
            row.push_back(formatNumber(
                solveComputeFractionK(rate, size, stages, k), 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nWider switches shorten the path (and each "
                 "message), raising utilization at\nevery load — the "
                 "\"faster network\" lever the paper mentions for "
                 "software\nschemes.\n";
}

void
ablationMigration()
{
    std::cout << "\n--- A6: process migration (the paper's traces had "
                 "none) ---\n\n";
    TextTable table({"migration interval", "dynamic shd",
                     "unprotected shd", "Base miss rate",
                     "Dragon power (4 cpus)"});
    for (std::size_t interval : {std::size_t{0}, std::size_t{20'000},
                                 std::size_t{5'000}}) {
        SyntheticWorkloadConfig workload =
            profileConfig(AppProfile::PopsLike, 4, 60'000, 31, false);
        workload.migrationIntervalInstrs = interval;
        const TraceBuffer trace = generateTrace(workload);

        const TraceStatistics dynamic = analyzeTrace(trace, 16);

        // Sharing invisible to the compiler: dynamic sharing within
        // the *private* segments only.
        TraceBuffer private_only;
        for (const TraceEvent &event : trace) {
            if (event.addr < SyntheticWorkloadConfig::kSharedBase) {
                private_only.append(event);
            }
        }
        const TraceStatistics unprotected =
            analyzeTrace(private_only, 16);

        CacheConfig cache;
        cache.sizeBytes = 64 * 1024;
        cache.blockBytes = 16;
        const SimStats base = simulateTrace(Scheme::Base, trace, cache);
        MultiprocessorSystem dragon_system(Scheme::Dragon, cache, 4);
        const SimStats dragon = dragon_system.run(trace);

        table.addRow(
            {interval == 0 ? "off" : formatNumber(
                 static_cast<double>(interval), 0),
             formatNumber(dynamic.shd, 3),
             formatNumber(unprotected.shd, 3),
             formatNumber(base.dataMissRate(), 4),
             formatNumber(dragon.processingPower(), 3)});
    }
    table.print(std::cout);
    std::cout << "\n\"Unprotected shd\" is sharing that exists "
                 "dynamically but is invisible to the\ncompiler's "
                 "marked region: under migration the software schemes "
                 "would simply be\n*incorrect* unless the OS flushes "
                 "the whole cache on every switch — a cost no\n"
                 "workload parameter in the paper's model captures. "
                 "Hardware coherence just\npays some extra misses.\n";
}

} // namespace

int
main()
{
    std::cout << "=== Ablation studies ===\n\n";
    ablationDragonEffects();
    ablationRefetchMiss();
    ablationServiceDistribution();
    ablationBlockSize();
    ablationSwitchWidth();
    ablationMigration();
    return 0;
}
