/**
 * @file
 * Reproduces Figures 7-9: the dependence of Software-Flush on apl
 * (references to a shared block before it is flushed).
 *
 * Figure 7: scheme comparison with apl at its extremes; Figures 8-9:
 * processing power versus apl at low and medium sharing.
 */

#include <iostream>

#include "core/swcc.hh"

namespace
{

using namespace swcc;

void
figure7()
{
    std::cout << "=== Figure 7: effect of varying apl (16 CPUs, other "
                 "parameters medium) ===\n\n";
    const WorkloadParams params = middleParams();
    TextTable table({"apl", "Software-Flush", "No-Cache", "Dragon",
                     "Base"});
    for (double apl : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1024.0}) {
        WorkloadParams p = params;
        p.apl = apl;
        table.addRow(
            {formatNumber(apl, 0),
             formatNumber(evaluateBus(Scheme::SoftwareFlush, p, 16)
                              .processingPower,
                          2),
             formatNumber(
                 evaluateBus(Scheme::NoCache, p, 16).processingPower, 2),
             formatNumber(
                 evaluateBus(Scheme::Dragon, p, 16).processingPower, 2),
             formatNumber(
                 evaluateBus(Scheme::Base, p, 16).processingPower, 2)});
    }
    table.print(std::cout);
    exportCsv(table, "fig07_apl_schemes");
    std::cout << "\nAt apl = 1 every shared reference flushes and "
                 "refetches: Software-Flush is\n"
                 "worse than No-Cache. At very high apl (especially "
                 "with low mdshd) it can\n"
                 "approach or beat Dragon.\n\n";
}

void
aplSweep(const char *title, Level sharing, unsigned cpus)
{
    WorkloadParams params = middleParams();
    setParam(params, ParamId::Shd, paramLevelValue(ParamId::Shd, sharing));
    std::cout << "=== " << title
              << " (shd=" << formatNumber(params.shd, 2) << ", " << cpus
              << " CPUs) ===\n\n";

    const std::vector<double> apls = logspace(1.0, 512.0, 10);
    const Series series =
        aplPowerSeries(Scheme::SoftwareFlush, params, apls, cpus);

    TextTable table({"apl", "Software-Flush power", "fraction of Dragon"});
    const double dragon =
        evaluateBus(Scheme::Dragon, params, cpus).processingPower;
    for (const SeriesPoint &point : series.points) {
        table.addRow({formatNumber(point.x, 1),
                      formatNumber(point.y, 2),
                      formatNumber(point.y / dragon, 2)});
    }
    table.print(std::cout);
    exportCsv(table, std::string("fig08_09_apl_") +
                         std::string(levelName(sharing)));

    AsciiChart chart(56, 12);
    chart.addSeries(series);
    chart.setAxisTitles("apl", "processing power");
    chart.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    figure7();
    aplSweep("Figure 8: effect of apl with low sharing", Level::Low, 16);
    aplSweep("Figure 9: effect of apl with medium sharing",
             Level::Middle, 16);
    std::cout
        << "Paper's claims: with low sharing the benefit of apl "
           "saturates quickly; with\n"
           "medium sharing performance remains sensitive to apl even "
           "at high values.\n";
    return 0;
}
