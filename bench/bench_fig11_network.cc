/**
 * @file
 * Reproduces Figure 11: processor utilization in a 256-processor
 * (8-stage) circuit-switched network versus transaction request rate,
 * for average message sizes of 1, 2, 4, 8 and 16 words (network time
 * per message = size + 2n), with the nine Base/Software-Flush/No-Cache
 * low/middle/high operating points marked.
 */

#include <iostream>

#include "core/swcc.hh"

int
main()
{
    using namespace swcc;

    constexpr unsigned kStages = 8;

    std::cout << "=== Figure 11: 256-processor network utilization vs "
                 "request rate ===\n\n";

    // Raw curves: compute fraction vs transaction rate per message size.
    const std::vector<double> rates = logspace(0.001, 0.2, 14);
    TextTable table({"rate", "msg=1w", "msg=2w", "msg=4w", "msg=8w",
                     "msg=16w"});
    std::vector<Series> curves;
    for (double words : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        curves.push_back(
            networkUtilizationSeries(kStages, words, rates));
    }
    for (std::size_t i = 0; i < rates.size(); ++i) {
        std::vector<std::string> row{formatNumber(rates[i], 4)};
        for (const Series &curve : curves) {
            row.push_back(formatNumber(curve.points[i].y, 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    exportCsv(table, "fig11_network_curves");

    AsciiChart chart(56, 14);
    for (const Series &curve : curves) {
        chart.addSeries(curve);
    }
    chart.setAxisTitles("transactions per computing cycle",
                        "compute fraction U");
    chart.print(std::cout);

    // The paper's spot check: 3% miss rate, 4-word messages.
    std::cout << "\nSpot check (paper): miss rate 3%, message 4 words "
                 "-> unit-request rate "
              << formatNumber(0.03 * (16 + 4), 2) << ", utilization "
              << formatNumber(solveComputeFraction(0.03, 20.0, kStages),
                              3)
              << " (the paper reports roughly one half).\n\n";

    // Nine scheme operating points: Bl..Nh.
    std::cout << "Scheme operating points (256 processors):\n\n";
    TextTable points({"point", "scheme", "range", "m (trans/cycle)",
                      "t (cycles)", "U (compute)", "cycles/instr",
                      "power"});
    for (Scheme scheme : {Scheme::Base, Scheme::SoftwareFlush,
                          Scheme::NoCache}) {
        for (Level level : kAllLevels) {
            WorkloadParams params = paramsAtLevel(level);
            const NetworkSolution sol =
                evaluateNetwork(scheme, params, kStages);
            const char scheme_letter =
                scheme == Scheme::Base
                    ? 'B'
                    : scheme == Scheme::SoftwareFlush ? 'S' : 'N';
            const char level_letter = level == Level::Low
                ? 'l'
                : level == Level::Middle ? 'm' : 'h';
            points.addRow(
                {std::string{scheme_letter, level_letter},
                 std::string(schemeName(scheme)),
                 std::string(levelName(level)),
                 formatNumber(sol.transactionRate, 4),
                 formatNumber(sol.network, 2),
                 formatNumber(sol.computeFraction, 3),
                 formatNumber(sol.cyclesPerInstruction, 2),
                 formatNumber(sol.processingPower, 1)});
        }
    }
    points.print(std::cout);
    exportCsv(points, "fig11_scheme_points");

    std::cout
        << "\nPaper's claims: the nine points fall into two classes - "
           "B in all ranges,\n"
           "S low/middle and N low are reasonable; the others are much "
           "poorer. Keeping\n"
           "the network reference rate low matters more than message "
           "size.\n";
    return 0;
}
