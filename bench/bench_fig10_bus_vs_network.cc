/**
 * @file
 * Reproduces Figure 10: buses versus multistage networks in the small
 * scale (medium workload parameters).
 */

#include <iostream>

#include "core/swcc.hh"

int
main()
{
    using namespace swcc;

    const WorkloadParams params = middleParams();

    std::cout << "=== Figure 10: buses versus networks in the small "
                 "scale (medium parameters) ===\n\n";

    TextTable table({"cpus", "Base bus", "Base net", "SW-Flush bus",
                     "SW-Flush net", "No-Cache bus", "No-Cache net",
                     "Dragon bus"});
    for (unsigned stages = 1; stages <= 5; ++stages) {
        const unsigned cpus = 1u << stages;
        auto bus = [&](Scheme scheme) {
            return formatNumber(
                evaluateBus(scheme, params, cpus).processingPower, 2);
        };
        auto net = [&](Scheme scheme) {
            return formatNumber(
                evaluateNetwork(scheme, params, stages).processingPower,
                2);
        };
        table.addRow({formatNumber(cpus, 0), bus(Scheme::Base),
                      net(Scheme::Base), bus(Scheme::SoftwareFlush),
                      net(Scheme::SoftwareFlush), bus(Scheme::NoCache),
                      net(Scheme::NoCache), bus(Scheme::Dragon)});
    }
    table.print(std::cout);
    exportCsv(table, "fig10_bus_vs_network");

    AsciiChart chart(56, 16);
    for (Scheme scheme : {Scheme::Base, Scheme::SoftwareFlush,
                          Scheme::NoCache}) {
        Series bus_series = busPowerSeries(scheme, params, 32);
        bus_series.label = std::string(schemeName(scheme)) + "/bus";
        chart.addSeries(bus_series);
        chart.addSeries(networkPowerSeries(scheme, params, 5));
    }
    chart.setAxisTitles("processors", "processing power");
    chart.print(std::cout);

    std::cout
        << "\nPaper's claims: Dragon attains near-perfect bus "
           "performance below 16 CPUs;\n"
           "Software-Flush and No-Cache saturate the bus around 8 and "
           "4 CPUs; once the bus\n"
           "saturates the network (whose bandwidth grows with "
           "processors) wins; No-Cache\n"
           "is poorer than Software-Flush on the network despite "
           "smaller messages because\n"
           "its request *rate* is higher, which dominates in a "
           "circuit-switched network.\n";
    return 0;
}
