/**
 * @file
 * Reproduces Figures 4-6: processing power of the four coherence
 * schemes versus number of processors on a bus, at low, medium, and
 * high settings of ls and shd (all other parameters at middle values).
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/swcc.hh"

namespace
{

using namespace swcc;

void
runFigure(const char *title, Level level, unsigned max_cpus)
{
    const WorkloadParams params = sharingScenario(level);
    std::cout << "=== " << title << " (ls=" << formatNumber(params.ls, 2)
              << ", shd=" << formatNumber(params.shd, 2) << ") ===\n\n";

    std::vector<std::string> headers{"cpus", "Ideal"};
    for (Scheme scheme : kAllSchemes) {
        headers.emplace_back(schemeName(scheme));
    }
    TextTable table(headers);
    for (unsigned n = 1; n <= max_cpus; ++n) {
        std::vector<std::string> row{formatNumber(n, 0),
                                     formatNumber(n, 0)};
        for (Scheme scheme : kAllSchemes) {
            row.push_back(formatNumber(
                evaluateBus(scheme, params, n).processingPower, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    exportCsv(table, std::string("fig04_05_06_schemes_") +
                         std::string(levelName(level)));

    AsciiChart chart(56, 16);
    chart.addSeries(idealPowerSeries(max_cpus));
    for (Scheme scheme : kAllSchemes) {
        chart.addSeries(busPowerSeries(scheme, params, max_cpus));
    }
    chart.setAxisTitles("processors", "processing power");
    chart.print(std::cout);

    std::cout << "bus-bandwidth ceilings (1/b):";
    for (Scheme scheme : kAllSchemes) {
        const PerInstructionCost cost = perInstructionCost(
            operationFrequencies(scheme, params), BusCostModel());
        std::cout << "  " << schemeName(scheme) << "="
                  << formatNumber(busSaturationPower(cost), 1);
    }
    std::cout << "\n\n";
}

} // namespace

int
main()
{
    runFigure("Figure 4: low sharing scenario", Level::Low, 16);
    runFigure("Figure 5: medium sharing scenario", Level::Middle, 16);
    runFigure("Figure 6: high sharing scenario", Level::High, 16);

    std::cout
        << "Paper's claims: Base best whenever ls > 0; Dragon close to "
           "Base throughout;\n"
           "No-Cache viable only at low sharing (saturates below power "
           "2 at high sharing);\n"
           "Software-Flush (medium apl) good to ~8-10 CPUs at medium "
           "sharing, saturates\n"
           "below power 5 at high sharing.\n";
    return 0;
}
