/**
 * @file
 * google-benchmark timings for the trace generator, the
 * multiprocessor simulator, and the omega-network simulator.
 */

#include <benchmark/benchmark.h>

#include "core/swcc.hh"
#include "sim/mp/param_extractor.hh"
#include "sim/mp/system.hh"
#include "sim/net/omega_network.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"

namespace
{

using namespace swcc;

const TraceBuffer &
sharedTrace()
{
    static const TraceBuffer trace = generateTrace(
        profileConfig(AppProfile::PopsLike, 4, 50'000, 3, true));
    return trace;
}

CacheConfig
cache64k()
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.blockBytes = 16;
    return config;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto cpus = static_cast<unsigned>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state) {
        const TraceBuffer trace = generateTrace(
            profileConfig(AppProfile::PopsLike, cpus, 20'000, 5, false));
        events += trace.size();
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceGeneration)->Arg(2)->Arg(4)->Arg(8);

void
BM_Simulation(benchmark::State &state)
{
    const Scheme scheme = static_cast<Scheme>(state.range(0));
    const TraceBuffer &trace = sharedTrace();
    const SharedClassifier shared =
        profileConfig(AppProfile::PopsLike, 4, 1, 1, false)
            .sharedClassifier();
    std::uint64_t events = 0;
    for (auto _ : state) {
        MultiprocessorSystem system(scheme, cache64k(), 4, shared);
        benchmark::DoNotOptimize(system.run(trace).makespan);
        events += trace.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.SetLabel(std::string(schemeName(scheme)));
}
BENCHMARK(BM_Simulation)->DenseRange(0, 3);

void
BM_ParameterExtraction(benchmark::State &state)
{
    const TraceBuffer &trace = sharedTrace();
    const SharedClassifier shared =
        profileConfig(AppProfile::PopsLike, 4, 1, 1, false)
            .sharedClassifier();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            extractParams(trace, cache64k(), shared).params.ls);
    }
}
BENCHMARK(BM_ParameterExtraction);

void
BM_OmegaNetwork(benchmark::State &state)
{
    const unsigned stages = static_cast<unsigned>(state.range(0));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        OmegaConfig config;
        config.stages = stages;
        config.meanThink = 25.0;
        config.messageCycles = 12.0;
        OmegaNetwork network(config);
        benchmark::DoNotOptimize(network.run(5'000).accepted);
        cycles += 5'000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_OmegaNetwork)->Arg(4)->Arg(6)->Arg(8);

} // namespace
