/**
 * @file
 * Before/after performance harness for the trace-driven simulator.
 *
 * Section 1 times every coherence protocol on a sharing-heavy
 * pero-like 16-CPU workload twice — once forced onto the retained
 * pre-optimisation reference snoop path (O(P) scans over all caches)
 * and once on the sharer-index directory path — asserting that the two
 * runs produce byte-identical SimStats before reporting events/sec and
 * the speedup. Section 2 times a Dragon validation sweep at one thread
 * versus all hardware threads, asserting the per-point statistics are
 * byte-identical across thread counts.
 *
 * The per-scheme table lands in bench_results/perf_simulator_speedup.csv.
 * Any statistics divergence makes the process exit non-zero, which is
 * how the `--smoke` ctest target (a scaled-down run of the same
 * checks) turns a snoop-path or determinism regression into a test
 * failure.
 */

#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/obs/obs.hh"
#include "core/parallel.hh"
#include "core/swcc.hh"
#include "sim/cache/invalidate_protocol.hh"
#include "sim/mp/system.hh"
#include "sim/mp/validation.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"

namespace
{

using namespace swcc;

/** Scaled-down --smoke run for ctest; full run for reporting. */
struct HarnessConfig
{
    std::size_t instructionsPerCpu = 40'000;
    CpuId cpus = 16;
    int reps = 3;
    CpuId sweepMaxCpus = 6;
    std::size_t sweepInstructions = 30'000;
    // Wide-machine rows: many holders per block, so the dirty-holder
    // bitset path (update-based schemes on the directory) is loaded.
    CpuId bigCpus = 48;
    std::size_t bigInstructionsPerCpu = 20'000;
};

/** Wall-clock seconds of @p body, best of @p reps runs. */
template <typename Body>
double
bestOf(int reps, Body &&body)
{
    using clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto start = clock::now();
        body();
        const std::chrono::duration<double> elapsed =
            clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

/** One protocol under test; factory builds a cold system per run. */
struct SchemeCase
{
    std::string name;
    CpuId cpus = 0;
    const TraceBuffer *trace = nullptr;
    std::function<std::unique_ptr<MultiprocessorSystem>()> make;
};

/** Statistics and best-of timing of one (scheme, snoop path) cell. */
struct PathResult
{
    std::string serialized;
    double seconds = 0.0;
};

PathResult
runPath(const SchemeCase &scheme_case, SnoopPath path, int reps)
{
    PathResult result;
    // Every reference (including the timed ones) constructs a fresh
    // system: caches must be cold, and construction cost is noise next
    // to replaying the trace.
    result.serialized = [&] {
        auto system = scheme_case.make();
        system->setSnoopPath(path);
        return system->run(*scheme_case.trace).serialize();
    }();
    result.seconds = bestOf(reps, [&] {
        auto system = scheme_case.make();
        system->setSnoopPath(path);
        system->run(*scheme_case.trace);
    });
    return result;
}

/** Per-scheme reference-vs-directory table; true if all stats match. */
bool
reportSnoopPathSpeedup(const HarnessConfig &config)
{
    std::cout << "=== Simulator snoop path: reference scan vs "
                 "sharer-index directory ===\n"
              << "(pero-like workload, "
              << static_cast<unsigned>(config.cpus) << " CPUs, "
              << config.instructionsPerCpu
              << " instructions per CPU, 64KB caches)\n\n";

    // The sharing-heavy pero-like profile stresses the snoop paths the
    // hardest: broadcasts and coherence misses dominate, so every
    // event used to pay O(P) cache scans.
    const SyntheticWorkloadConfig hw_workload =
        profileConfig(AppProfile::PeroLike, config.cpus,
                      config.instructionsPerCpu, 55, false);
    const TraceBuffer hw_trace = generateTrace(hw_workload);
    const SharedClassifier shared = hw_workload.sharedClassifier();
    const TraceBuffer sw_trace = generateTrace(
        profileConfig(AppProfile::PeroLike, config.cpus,
                      config.instructionsPerCpu, 55, true));

    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;

    // Wide-machine workload: same sharing-heavy profile at bigCpus so
    // blocks accumulate many holders and bus writes under the
    // update-based schemes exercise the dirty-holder bitset.
    const SyntheticWorkloadConfig big_workload =
        profileConfig(AppProfile::PeroLike, config.bigCpus,
                      config.bigInstructionsPerCpu, 55, false);
    const TraceBuffer big_trace = generateTrace(big_workload);
    const SharedClassifier big_shared = big_workload.sharedClassifier();

    const auto paper = [&](Scheme scheme, const TraceBuffer &trace) {
        return SchemeCase{
            std::string(schemeName(scheme)), config.cpus, &trace,
            [&, scheme] {
                return std::make_unique<MultiprocessorSystem>(
                    scheme, cache, config.cpus, shared);
            }};
    };
    const std::vector<SchemeCase> cases{
        paper(Scheme::Base, hw_trace),
        paper(Scheme::NoCache, hw_trace),
        paper(Scheme::SoftwareFlush, sw_trace),
        paper(Scheme::Dragon, hw_trace),
        SchemeCase{"invalidate", config.cpus, &hw_trace, [&] {
            return std::make_unique<MultiprocessorSystem>(
                std::make_unique<InvalidateProtocol>(cache,
                                                     config.cpus));
        }},
        SchemeCase{"dragon", config.bigCpus, &big_trace, [&] {
            return std::make_unique<MultiprocessorSystem>(
                Scheme::Dragon, cache, config.bigCpus, big_shared);
        }},
        SchemeCase{"invalidate", config.bigCpus, &big_trace, [&] {
            return std::make_unique<MultiprocessorSystem>(
                std::make_unique<InvalidateProtocol>(cache,
                                                     config.bigCpus));
        }},
    };

    TextTable table({"scheme", "cpus", "events", "reference ms",
                     "directory ms", "ref Mev/s", "dir Mev/s", "speedup",
                     "identical"});
    bool all_identical = true;
    for (const SchemeCase &scheme_case : cases) {
        const PathResult reference =
            runPath(scheme_case, SnoopPath::ReferenceScan, config.reps);
        const PathResult directory =
            runPath(scheme_case, SnoopPath::Directory, config.reps);
        const bool identical =
            reference.serialized == directory.serialized;
        all_identical = all_identical && identical;

        const auto events =
            static_cast<double>(scheme_case.trace->size());
        table.addRow(
            {scheme_case.name,
             std::to_string(unsigned{scheme_case.cpus}),
             formatNumber(events, 0),
             formatNumber(reference.seconds * 1e3, 1),
             formatNumber(directory.seconds * 1e3, 1),
             formatNumber(events / reference.seconds / 1e6, 2),
             formatNumber(events / directory.seconds / 1e6, 2),
             formatNumber(reference.seconds / directory.seconds, 2) +
                 "x",
             identical ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << '\n' << exportCsv(table, "perf_simulator_speedup")
              << " written\n";
    return all_identical;
}

/** Serial-vs-parallel sweep timing; true if stats thread-invariant. */
bool
reportSweepSpeedup(const HarnessConfig &config)
{
    const unsigned parallel_threads = std::max(4u, hardwareThreads());
    std::cout << "\n=== Simulation sweep: 1 thread vs "
              << parallel_threads << " threads ===\n"
              << "(Dragon validation sweep, 1.."
              << static_cast<unsigned>(config.sweepMaxCpus)
              << " CPUs)\n\n";

    ValidationConfig sweep;
    sweep.profile = AppProfile::PeroLike;
    sweep.scheme = Scheme::Dragon;
    sweep.maxCpus = config.sweepMaxCpus;
    sweep.instructionsPerCpu = config.sweepInstructions;
    sweep.seed = 1989;

    const auto serialized_sweep = [&] {
        std::vector<std::string> result;
        for (const ValidationPoint &point : validate(sweep)) {
            result.push_back(point.sim.serialize());
        }
        return result;
    };

    setThreadCount(1);
    const std::vector<std::string> serial_stats = serialized_sweep();
    const double serial = bestOf(config.reps, [&] { validate(sweep); });
    setThreadCount(parallel_threads);
    const std::vector<std::string> parallel_stats = serialized_sweep();
    const double parallel =
        bestOf(config.reps, [&] { validate(sweep); });
    setThreadCount(0);

    const bool identical = serial_stats == parallel_stats;
    TextTable table({"serial ms", "parallel ms", "speedup", "threads",
                     "identical"});
    table.addRow({formatNumber(serial * 1e3, 1),
                  formatNumber(parallel * 1e3, 1),
                  formatNumber(serial / parallel, 2) + "x",
                  std::to_string(parallel_threads),
                  identical ? "yes" : "NO"});
    table.print(std::cout);
    return identical;
}

/**
 * Observability overhead: Dragon run with the tracer disabled (the
 * default one-branch-on-null path) versus enabled, asserting the
 * simulator statistics are byte-identical either way. The disabled
 * throughput is the number the ≤2% regression budget is judged on.
 */
bool
reportObservabilityOverhead(const HarnessConfig &config)
{
    std::cout << "\n=== Observability: tracer disabled vs enabled ===\n"
              << "(Dragon, pero-like, "
              << static_cast<unsigned>(config.cpus) << " CPUs; "
              << "instrumentation "
              << (obs::compiledIn() ? "compiled in" : "compiled out")
              << ")\n\n";

    const SyntheticWorkloadConfig workload =
        profileConfig(AppProfile::PeroLike, config.cpus,
                      config.instructionsPerCpu, 55, false);
    const TraceBuffer trace = generateTrace(workload);
    const SharedClassifier shared = workload.sharedClassifier();
    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;

    const auto timed_run = [&](bool tracing) {
        obs::tracer().setEnabled(tracing);
        PathResult result;
        result.serialized = [&] {
            MultiprocessorSystem system(Scheme::Dragon, cache,
                                        config.cpus, shared);
            return system.run(trace).serialize();
        }();
        result.seconds = bestOf(config.reps, [&] {
            MultiprocessorSystem system(Scheme::Dragon, cache,
                                        config.cpus, shared);
            system.run(trace);
        });
        obs::tracer().setEnabled(false);
        return result;
    };

    const PathResult off = timed_run(false);
    const PathResult on = timed_run(true);
    const bool identical = off.serialized == on.serialized;

    const auto events = static_cast<double>(trace.size());
    TextTable table({"tracing", "ms", "Mev/s", "identical"});
    table.addRow({"off", formatNumber(off.seconds * 1e3, 1),
                  formatNumber(events / off.seconds / 1e6, 2),
                  identical ? "yes" : "NO"});
    table.addRow({"on", formatNumber(on.seconds * 1e3, 1),
                  formatNumber(events / on.seconds / 1e6, 2),
                  identical ? "yes" : "NO"});
    table.print(std::cout);
    std::cout << "tracing overhead: "
              << formatNumber(
                     100.0 * (on.seconds - off.seconds) / off.seconds, 1)
              << "%\n";
    return identical;
}

} // namespace

int
main(int argc, char **argv)
{
    swcc::obs::consumeArgs(argc, argv);
    HarnessConfig config;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            config.instructionsPerCpu = 3'000;
            config.cpus = 8;
            config.reps = 1;
            config.sweepMaxCpus = 4;
            config.sweepInstructions = 5'000;
            config.bigCpus = 24;
            config.bigInstructionsPerCpu = 1'500;
        } else {
            std::cerr << "usage: bench_perf_simulator [--smoke]\n";
            return 1;
        }
    }

    const bool paths_ok = reportSnoopPathSpeedup(config);
    const bool sweep_ok = reportSweepSpeedup(config);
    const bool obs_ok = reportObservabilityOverhead(config);
    if (!paths_ok || !sweep_ok || !obs_ok) {
        std::cerr << "\nFAIL: statistics diverged between snoop paths, "
                     "thread counts, or tracing modes\n";
        return 1;
    }
    std::cout << "\nAll statistics byte-identical across snoop paths, "
                 "thread counts, and tracing modes.\n";
    swcc::obs::finalize();
    return 0;
}
