/**
 * @file
 * Extension X1: validates the Patel analytical network model against
 * the cycle-level omega-network simulator — the validation the paper
 * lists as future work ("we are not aware of any validation of this
 * model against multiprocessor traces").
 */

#include <iostream>

#include "core/swcc.hh"
#include "sim/net/net_experiment.hh"

int
main()
{
    using namespace swcc;

    std::cout << "=== X1: Patel model vs omega-network simulation ===\n\n";

    for (const auto &[stages, size] :
         std::vector<std::pair<unsigned, double>>{{4, 12.0}, {6, 16.0},
                                                  {8, 20.0}}) {
        std::cout << "--- " << (1u << stages) << " processors, message "
                  << formatNumber(size, 0) << " cycles ---\n";
        TextTable table({"rate", "mode", "sim U", "model U", "error %",
                         "sim accept", "model accept"});
        for (double rate : {0.005, 0.01, 0.02, 0.04, 0.08}) {
            for (NetMode mode : {NetMode::UnitRequest,
                                 NetMode::Circuit}) {
                const NetworkValidationPoint point =
                    validateNetworkPoint(rate, size, stages, mode,
                                         120'000, 42);
                table.addRow(
                    {formatNumber(rate, 3),
                     mode == NetMode::UnitRequest ? "unit" : "circuit",
                     formatNumber(point.simCompute, 3),
                     formatNumber(point.modelCompute, 3),
                     formatNumber(point.computeErrorPercent(), 1),
                     formatNumber(point.simAcceptance, 3),
                     formatNumber(point.modelAcceptance, 3)});
            }
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // Per-stage load recursion check at one operating point.
    const NetworkValidationPoint point = validateNetworkPoint(
        0.04, 16.0, 6, NetMode::UnitRequest, 120'000, 42);
    std::cout << "Per-stage loads m_i at rate 0.04, 64 processors "
                 "(recursion seeded with the\nsimulator's m_0):\n\n";
    TextTable loads({"stage", "sim m_i", "model m_i"});
    for (std::size_t i = 0; i < point.simStageLoads.size(); ++i) {
        loads.addRow({formatNumber(static_cast<double>(i), 0),
                      formatNumber(point.simStageLoads[i], 4),
                      formatNumber(point.modelStageLoads[i], 4)});
    }
    loads.print(std::cout);

    // Wider crossbars: the paper's "larger dimension" extension,
    // model vs simulation.
    std::cout << "\n64 processors from 4x4 switches (3 stages), "
                 "circuit mode:\n\n";
    TextTable kary({"rate", "sim U", "model U", "error %"});
    for (double rate : {0.01, 0.02, 0.05}) {
        const NetworkValidationPoint wide = validateNetworkPoint(
            rate, 10.0, 3, NetMode::Circuit, 120'000, 42, 4);
        kary.addRow({formatNumber(rate, 3),
                     formatNumber(wide.simCompute, 3),
                     formatNumber(wide.modelCompute, 3),
                     formatNumber(wide.computeErrorPercent(), 1)});
    }
    kary.print(std::cout);

    std::cout << "\nFinding: the fixed point tracks the simulator "
                 "within a few percent in both\nmodes across light to "
                 "heavy load — and for wider crossbars — supporting "
                 "the\npaper's use of Patel's model.\n";
    return 0;
}
