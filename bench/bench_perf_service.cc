/**
 * @file
 * Load-generator harness for swccd, the model-as-a-service daemon.
 *
 * Spins the daemon up in-process (or targets an external one via
 * --socket), drives it with closed- and open-loop client threads over
 * a mixed bus/network query stream, and reports throughput plus
 * p50/p95/p99/p999 latency from HdrHistogram-style log-bucketed
 * per-thread histograms. The full matrix (threads x batch limit x
 * cache warmth) lands in bench_results/perf_service_qps.csv.
 *
 * Open-loop rows are coordinated-omission-free: each request's
 * latency is measured from its *scheduled* send time, so a stalled
 * daemon inflates the tail instead of silently slowing the load.
 *
 * Modes:
 *   (default)            full matrix + CSV export
 *   --smoke              correctness gate, no CSV — verifies daemon
 *                        responses are bitwise identical to direct
 *                        ServiceKernel evaluation (binary and JSON)
 *   --assert-batch-speedup X
 *                        exit nonzero unless batching (batch limit 64
 *                        vs 1) yields >= X throughput at 4 client
 *                        threads, measured memo-cold so the batched
 *                        curve kernels do real work; self-gates on
 *                        hosts with fewer than 4 hardware threads
 *   --assert-min-qps N   exit nonzero unless the best closed-loop
 *                        configuration sustains at least N queries/s
 *   --socket PATH        drive an external daemon instead (loadgen
 *                        mode; cache-warmth rows are skipped since
 *                        the memo gate is process-local)
 *   --duration-ms N, --threads N, --pipeline N, --rate QPS
 */

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/report.hh"
#include "core/solver_cache.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/latency_histogram.hh"
#include "service/service_kernel.hh"
#include "sim/synth/rng.hh"

namespace
{

using namespace swcc;
using namespace swcc::service;
using Clock = std::chrono::steady_clock;

struct BenchConfig
{
    bool smoke = false;
    double assertBatchSpeedup = 0.0;
    double assertMinQps = 0.0;
    std::string externalSocket;
    unsigned durationMs = 400;
    unsigned pipeline = 16;
    std::optional<unsigned> loadgenThreads;
    double openLoopRate = 20000.0;
};

/**
 * The query mix: a handful of workload scenarios spread over many
 * machine sizes, i.e. the shape the kernel's group-coalescing turns
 * into batched curve solves. Deterministic per (thread, index).
 */
Query
mixedQuery(Rng &rng, unsigned scenarios = 4)
{
    Query query;
    const std::uint64_t scenario = rng.below(scenarios);
    query.params = paramsAtLevel(
        scenario == 0 ? Level::Low
                      : scenario == 3 ? Level::High : Level::Middle);
    if (rng.below(8) == 0) {
        query.domain = QueryDomain::Network;
        query.scheme =
            scenario == 1 ? Scheme::SoftwareFlush : Scheme::Base;
        query.size = 1 + static_cast<unsigned>(rng.below(8));
    } else {
        query.domain = QueryDomain::Bus;
        query.scheme = scenario == 1
            ? Scheme::SoftwareFlush
            : scenario == 2 ? Scheme::Dragon : Scheme::Base;
        // A wide size range is what group-coalescing feeds on: a
        // 64-query batch of one scenario collapses into a single
        // O(max) curve solve where point solves cost O(size) each.
        query.size = 1 + static_cast<unsigned>(rng.below(1024));
    }
    return query;
}

std::uint64_t
nanosSince(Clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - start)
            .count());
}

struct LoadResult
{
    std::uint64_t requests = 0;
    double seconds = 0.0;
    LatencyHistogram latency;

    double
    qps() const
    {
        return seconds > 0.0
            ? static_cast<double>(requests) / seconds
            : 0.0;
    }
};

/**
 * Closed loop: each thread keeps @p pipeline requests in flight on
 * one connection; latency is send-to-receive per request (responses
 * arrive in request order, so a deque of send stamps suffices).
 */
LoadResult
runClosedLoop(const std::string &socket, unsigned threads,
              unsigned pipeline, unsigned duration_ms,
              unsigned scenarios = 4)
{
    std::vector<LatencyHistogram> histograms(threads);
    std::vector<std::uint64_t> counts(threads, 0);
    std::vector<std::thread> clients;
    std::atomic<bool> stop{false};
    const auto start = Clock::now();
    for (unsigned t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            Rng rng(0x5ecc5eedULL + t);
            ServiceClient client;
            client.connect(socket);
            std::vector<std::uint64_t> sent; // ring of send stamps
            sent.resize(pipeline);
            std::size_t head = 0, tail = 0, inflight = 0;
            std::vector<std::uint8_t> burst;
            // Sends ride in bursts of one write() — the client-side
            // mirror of the daemon's batched flush, so loadgen
            // syscalls don't drown the daemon-side signal.
            const auto sendBurst = [&](std::size_t n) {
                burst.clear();
                for (std::size_t i = 0; i < n; ++i) {
                    sent[tail] = nanosSince(start);
                    tail = (tail + 1) % pipeline;
                    ++inflight;
                    appendQueryRequest(burst,
                                       mixedQuery(rng, scenarios));
                }
                client.sendRaw(burst.data(), burst.size());
            };
            const auto recvOne = [&] {
                (void)client.recvResult();
                histograms[t].record(nanosSince(start) - sent[head]);
                head = (head + 1) % pipeline;
                --inflight;
                ++counts[t];
            };
            sendBurst(pipeline);
            while (!stop.load(std::memory_order_relaxed)) {
                // One blocking receive, then drain what already
                // arrived; refill the window with one burst.
                recvOne();
                while (inflight > 0 && client.pollReadable(0)) {
                    recvOne();
                }
                sendBurst(pipeline - inflight);
            }
            while (inflight > 0) {
                recvOne();
            }
        });
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(duration_ms));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &client : clients) {
        client.join();
    }
    LoadResult result;
    result.seconds = static_cast<double>(nanosSince(start)) * 1e-9;
    for (unsigned t = 0; t < threads; ++t) {
        result.requests += counts[t];
        result.latency.merge(histograms[t]);
    }
    return result;
}

/**
 * Open loop: each thread sends on a fixed schedule (rate/threads) and
 * drains responses opportunistically; latency runs from the scheduled
 * send time, so queueing delay in the daemon (or the sender falling
 * behind) is charged to the tail rather than hidden.
 */
LoadResult
runOpenLoop(const std::string &socket, unsigned threads, double rate,
            unsigned duration_ms)
{
    std::vector<LatencyHistogram> histograms(threads);
    std::vector<std::uint64_t> counts(threads, 0);
    std::vector<std::thread> clients;
    const auto start = Clock::now();
    for (unsigned t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            Rng rng(0x09e7100bULL + t);
            ServiceClient client;
            client.connect(socket);
            const double interval_ns =
                1e9 * static_cast<double>(threads) / rate;
            const std::uint64_t horizon =
                static_cast<std::uint64_t>(duration_ms) * 1000000ull;
            std::vector<std::uint64_t> scheduled;
            std::size_t head = 0;
            double next = 0.0;
            try {
                for (;;) {
                    const std::uint64_t due =
                        static_cast<std::uint64_t>(next);
                    if (due >= horizon) {
                        break;
                    }
                    while (nanosSince(start) < due) {
                        // Drain while waiting for the next tick.
                        if (head < scheduled.size() &&
                            client.pollReadable(0)) {
                            (void)client.recvResult();
                            histograms[t].record(nanosSince(start) -
                                                 scheduled[head]);
                            ++head;
                            ++counts[t];
                        } else {
                            std::this_thread::yield();
                        }
                    }
                    scheduled.push_back(due);
                    next += interval_ns;
                    client.sendQuery(mixedQuery(rng));
                }
                while (head < scheduled.size()) {
                    (void)client.recvResult();
                    histograms[t].record(nanosSince(start) -
                                         scheduled[head]);
                    ++head;
                    ++counts[t];
                }
            } catch (const std::exception &) {
                // The daemon went away mid-run. Charge every request
                // that was sent but never answered — and every tick
                // that came due but was never sent — its full elapsed
                // wait, so an early exit inflates the tail instead of
                // silently truncating it. None of these count toward
                // QPS: no response arrived.
                const std::uint64_t now = nanosSince(start);
                for (; head < scheduled.size(); ++head) {
                    histograms[t].record(now - scheduled[head]);
                }
                for (double tick = next;; tick += interval_ns) {
                    const std::uint64_t due =
                        static_cast<std::uint64_t>(tick);
                    if (due >= horizon || due > now) {
                        break;
                    }
                    histograms[t].record(now - due);
                }
            }
        });
    }
    for (std::thread &client : clients) {
        client.join();
    }
    LoadResult result;
    result.seconds = static_cast<double>(nanosSince(start)) * 1e-9;
    for (unsigned t = 0; t < threads; ++t) {
        result.requests += counts[t];
        result.latency.merge(histograms[t]);
    }
    return result;
}

std::string
micros(const LatencyHistogram &hist, double quantile)
{
    return formatNumber(
        static_cast<double>(hist.valueAtQuantile(quantile)) * 1e-3, 1);
}

void
addRow(TextTable &table, const std::string &mode, unsigned threads,
       unsigned batch_max, const std::string &warmth,
       const LoadResult &result)
{
    table.addRow({mode, std::to_string(threads),
                  std::to_string(batch_max), warmth,
                  std::to_string(result.requests),
                  formatNumber(result.qps(), 0),
                  micros(result.latency, 0.50),
                  micros(result.latency, 0.95),
                  micros(result.latency, 0.99),
                  micros(result.latency, 0.999),
                  formatNumber(
                      static_cast<double>(result.latency.maxValue()) *
                          1e-3,
                      1)});
}

/** An in-process daemon bound to a unique socket under /tmp. */
class LocalDaemon
{
  public:
    LocalDaemon(unsigned workers, unsigned batch_max)
    {
        DaemonConfig config;
        config.socketPath = "/tmp/swccd-bench-" +
            std::to_string(::getpid()) + "-" +
            std::to_string(++instances_) + ".sock";
        config.workers = workers;
        config.batchMax = batch_max;
        daemon_ = std::make_unique<ServiceDaemon>(std::move(config));
        daemon_->start();
    }

    ~LocalDaemon() { daemon_->stop(); }

    const std::string &
    socket() const
    {
        return daemon_->config().socketPath;
    }

  private:
    static inline unsigned instances_ = 0;
    std::unique_ptr<ServiceDaemon> daemon_;
};

bool
bitwiseEqual(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
        std::bit_cast<std::uint64_t>(b);
}

bool
sameResult(const QueryResult &got, const QueryResult &want)
{
    if (got.ok != want.ok) {
        return false;
    }
    if (!want.ok) {
        return got.error == want.error;
    }
    if (want.domain == QueryDomain::Bus) {
        return got.bus.processors == want.bus.processors &&
            bitwiseEqual(got.bus.cpu, want.bus.cpu) &&
            bitwiseEqual(got.bus.bus, want.bus.bus) &&
            bitwiseEqual(got.bus.waiting, want.bus.waiting) &&
            bitwiseEqual(got.bus.busUtilization,
                         want.bus.busUtilization) &&
            bitwiseEqual(got.bus.busQueueLength,
                         want.bus.busQueueLength) &&
            bitwiseEqual(got.bus.processorUtilization,
                         want.bus.processorUtilization) &&
            bitwiseEqual(got.bus.processingPower,
                         want.bus.processingPower);
    }
    return got.network.stages == want.network.stages &&
        got.network.processors == want.network.processors &&
        bitwiseEqual(got.network.cpu, want.network.cpu) &&
        bitwiseEqual(got.network.network, want.network.network) &&
        bitwiseEqual(got.network.transactionRate,
                     want.network.transactionRate) &&
        bitwiseEqual(got.network.waiting, want.network.waiting) &&
        bitwiseEqual(got.network.processorUtilization,
                     want.network.processorUtilization) &&
        bitwiseEqual(got.network.processingPower,
                     want.network.processingPower);
}

/**
 * The --smoke gate: daemon responses (binary and JSON dialects) must
 * be bitwise identical to direct ServiceKernel evaluation.
 */
int
runSmoke()
{
    LocalDaemon daemon(2, 8);
    ServiceKernel kernel;
    Rng rng(0xbe7c4ULL);
    unsigned mismatches = 0;
    for (const bool json : {false, true}) {
        ServiceClient client;
        client.connect(daemon.socket());
        client.useJson(json);
        for (int i = 0; i < 200; ++i) {
            const Query query = mixedQuery(rng);
            const QueryResult got = client.query(query);
            const QueryResult want = kernel.evaluate(query);
            if (!sameResult(got, want)) {
                std::cerr << "MISMATCH ("
                          << (json ? "json" : "binary") << ") "
                          << domainName(query.domain) << "/"
                          << schemeName(query.scheme) << " n="
                          << query.size << "\n";
                ++mismatches;
            }
        }
    }
    const LoadResult quick =
        runClosedLoop(daemon.socket(), 2, 4, 100);
    std::cout << "smoke: 400 queries bitwise-checked, "
              << quick.requests << " closed-loop requests at "
              << formatNumber(quick.qps(), 0) << " q/s, p99 "
              << micros(quick.latency, 0.99) << " us\n";
    if (mismatches > 0 || quick.requests == 0) {
        std::cerr << "smoke FAILED (" << mismatches
                  << " mismatches)\n";
        return 1;
    }
    std::cout << "smoke OK\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchConfig bench;
    bool open_loop_only = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            bench.smoke = true;
        } else if (arg == "--assert-batch-speedup" && i + 1 < argc) {
            bench.assertBatchSpeedup = std::atof(argv[++i]);
        } else if (arg == "--assert-min-qps" && i + 1 < argc) {
            bench.assertMinQps = std::atof(argv[++i]);
        } else if (arg == "--socket" && i + 1 < argc) {
            bench.externalSocket = argv[++i];
        } else if (arg == "--duration-ms" && i + 1 < argc) {
            bench.durationMs =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--pipeline" && i + 1 < argc) {
            bench.pipeline =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--threads" && i + 1 < argc) {
            bench.loadgenThreads =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--rate" && i + 1 < argc) {
            bench.openLoopRate = std::atof(argv[++i]);
        } else if (arg == "--open-loop") {
            open_loop_only = true;
        } else {
            std::cerr
                << "usage: bench_perf_service [--smoke]\n"
                   "  [--assert-batch-speedup X] [--assert-min-qps "
                   "N]\n"
                   "  [--socket PATH] [--threads N] [--pipeline N]\n"
                   "  [--duration-ms N] [--rate QPS] [--open-loop]\n";
            return 2;
        }
    }

    if (bench.smoke) {
        return runSmoke();
    }

    TextTable table({"mode", "threads", "batch_max", "warmth",
                     "requests", "qps", "p50_us", "p95_us", "p99_us",
                     "p999_us", "max_us"});

    if (!bench.externalSocket.empty()) {
        // Loadgen mode against an external daemon (batch limit and
        // warmth are the server's business; report them as "-").
        const unsigned threads = bench.loadgenThreads.value_or(4);
        const LoadResult result = open_loop_only
            ? runOpenLoop(bench.externalSocket, threads,
                          bench.openLoopRate, bench.durationMs)
            : runClosedLoop(bench.externalSocket, threads,
                            bench.pipeline, bench.durationMs);
        addRow(table, open_loop_only ? "open" : "closed", threads, 0,
               "-", result);
        table.print(std::cout);
        if (bench.assertMinQps > 0.0 &&
            result.qps() < bench.assertMinQps) {
            std::cerr << "min-qps assertion FAILED: "
                      << formatNumber(result.qps(), 0) << " < "
                      << formatNumber(bench.assertMinQps, 0) << "\n";
            return 1;
        }
        return 0;
    }

    const unsigned hw = std::thread::hardware_concurrency();
    const std::vector<unsigned> thread_counts =
        bench.loadgenThreads
        ? std::vector<unsigned>{*bench.loadgenThreads}
        : std::vector<unsigned>{1, 2, 4};
    double best_qps = 0.0;
    double qps_batched_4t = 0.0;
    double qps_unbatched_4t = 0.0;

    for (const unsigned batch_max : {1u, 64u}) {
        for (const bool warm : {false, true}) {
            // Memo-cold rows disable the process-wide solver cache so
            // every query exercises the solvers; warm rows leave it
            // on, the cross-client production configuration.
            setSolverCacheEnabled(warm);
            clearSolverCache();
            LocalDaemon daemon(4, batch_max);
            for (const unsigned threads : thread_counts) {
                const LoadResult result =
                    runClosedLoop(daemon.socket(), threads,
                                  bench.pipeline, bench.durationMs);
                addRow(table, "closed", threads, batch_max,
                       warm ? "warm" : "cold", result);
                best_qps = std::max(best_qps, result.qps());
                if (threads == 4 && !warm) {
                    (batch_max > 1 ? qps_batched_4t
                                   : qps_unbatched_4t) =
                        result.qps();
                }
            }
        }
    }
    {
        // Open-loop tail-latency rows at a fixed offered rate.
        setSolverCacheEnabled(true);
        clearSolverCache();
        LocalDaemon daemon(4, 64);
        for (const unsigned threads : {2u}) {
            const LoadResult result =
                runOpenLoop(daemon.socket(), threads,
                            bench.openLoopRate, bench.durationMs);
            addRow(table, "open", threads, 64, "warm", result);
        }
    }
    setSolverCacheEnabled(true);

    table.print(std::cout);
    const std::string csv = exportCsv(table, "perf_service_qps");
    std::cout << "csv: " << csv << "\n";

    int failures = 0;
    if (bench.assertBatchSpeedup > 0.0) {
        if (hw < 4) {
            std::cout << "batch speedup assertion skipped: only "
                      << hw << " hardware threads\n";
        } else {
            // Dedicated head-to-head, best of 3 per configuration:
            // memo-cold, 4 client threads, a deep pipeline, and a
            // 2-scenario mix (the campaign curve-sweep shape the
            // kernel's group-coalescing exists for). The matrix rows
            // above stay informational.
            (void)qps_batched_4t;
            (void)qps_unbatched_4t;
            const auto headToHead = [&](unsigned batch_max) {
                setSolverCacheEnabled(false);
                clearSolverCache();
                LocalDaemon daemon(4, batch_max);
                double best = 0.0;
                for (int rep = 0; rep < 3; ++rep) {
                    best = std::max(
                        best,
                        runClosedLoop(daemon.socket(), 4, 32,
                                      bench.durationMs, 2)
                            .qps());
                }
                return best;
            };
            const double unbatched = headToHead(1);
            const double batched = headToHead(64);
            setSolverCacheEnabled(true);
            const double speedup =
                unbatched > 0.0 ? batched / unbatched : 0.0;
            std::cout << "batched vs unbatched at 4 threads: "
                      << formatNumber(batched, 0) << " vs "
                      << formatNumber(unbatched, 0) << " q/s = "
                      << formatNumber(speedup, 2) << "x (required "
                      << formatNumber(bench.assertBatchSpeedup, 2)
                      << "x)\n";
            if (speedup < bench.assertBatchSpeedup) {
                ++failures;
            }
        }
    }
    if (bench.assertMinQps > 0.0) {
        std::cout << "best closed-loop qps: "
                  << formatNumber(best_qps, 0) << " (required "
                  << formatNumber(bench.assertMinQps, 0) << ")\n";
        if (best_qps < bench.assertMinQps) {
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}
