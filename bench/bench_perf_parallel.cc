/**
 * @file
 * Thread-scaling harness for the campaign engine: times the Table 8
 * sensitivity grid and a trace-driven validation matrix at 1/2/4/8
 * threads, each with journaling off and on, checks every configuration
 * produces bit-identical results, and writes the measured matrix to
 * bench_results/perf_parallel_speedup.csv. A solver-memo section
 * times the analytical evaluators cache-cold vs cache-warm.
 *
 * Modes:
 *   (default)              full measurement + CSV export
 *   --smoke                small workloads, no CSV — the ctest gate
 *   --assert-speedup X     exit nonzero unless the sensitivity grid
 *                          speeds up by at least X at 4 threads; the
 *                          check self-gates (skips) on hosts with
 *                          fewer than 4 hardware threads, where a
 *                          wall-clock speedup is physically
 *                          unmeasurable.
 *   --assert-simd-speedup X  exit nonzero unless the batched network
 *                          sweep speeds up by at least X with the
 *                          vector kernels on; self-gates on hosts
 *                          whose vector lane width is below 4 (no
 *                          AVX2), where the scalar sweep is the only
 *                          implementation.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/network_model.hh"
#include "core/simd.hh"
#include "core/swcc.hh"
#include "sim/mp/validation.hh"
#include "sim/synth/rng.hh"

namespace
{

using namespace swcc;

struct BenchConfig
{
    bool smoke = false;
    double assertSpeedup = 0.0;
    int reps = 3;
    std::vector<unsigned> threads{1, 2, 4, 8};
};

/** Wall-clock seconds of @p body, best of @p reps runs. */
template <typename Body>
double
bestOf(int reps, Body &&body)
{
    using clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto start = clock::now();
        body();
        const std::chrono::duration<double> elapsed =
            clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

/** The grid-averaged Table 8 (108 cells x 27-point companion grids). */
std::vector<SensitivityEntry>
sensitivityWork(const BenchConfig &bench,
                const campaign::CampaignOptions &options)
{
    SensitivityConfig config;
    config.averageOverGrid = !bench.smoke;
    return sensitivityTable(config, options);
}

/**
 * A small validation matrix: one trace-driven simulator instance per
 * (scheme, cpus) cell, every cell seeded from its index via Rng::split
 * so the matrix is identical however the cells are scheduled.
 */
std::vector<ValidationPoint>
validationWork(const BenchConfig &bench,
               const campaign::CampaignOptions &options)
{
    const Rng seeder(1989);
    std::vector<ValidationPoint> matrix;
    std::uint64_t cell = 0;
    for (Scheme scheme : {Scheme::Base, Scheme::Dragon}) {
        ValidationConfig config;
        config.scheme = scheme;
        config.maxCpus = bench.smoke ? 2 : 4;
        config.instructionsPerCpu = bench.smoke ? 20'000 : 40'000;
        config.seed = seeder.split(cell++).next();
        const auto points = validate(config, options);
        matrix.insert(matrix.end(), points.begin(), points.end());
    }
    return matrix;
}

bool
identicalSensitivity(const std::vector<SensitivityEntry> &a,
                     const std::vector<SensitivityEntry> &b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].timeLow != b[i].timeLow ||
            a[i].timeHigh != b[i].timeHigh ||
            a[i].percentChange != b[i].percentChange) {
            return false;
        }
    }
    return true;
}

bool
identicalValidation(const std::vector<ValidationPoint> &a,
                    const std::vector<ValidationPoint> &b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].simPower != b[i].simPower ||
            a[i].modelPower != b[i].modelPower) {
            return false;
        }
    }
    return true;
}

/** Journal path for one timed configuration; removed before use. */
std::string
journalPath(const std::string &tag)
{
    const auto path = std::filesystem::temp_directory_path() /
        ("swcc_bench_parallel_" + tag + ".journal");
    std::filesystem::remove(path);
    return path.string();
}

/**
 * Times @p work at every thread count with journaling off and on,
 * verifying each configuration reproduces the 1-thread no-journal
 * result bit for bit. Returns the best no-journal speedup measured at
 * @p assert_threads (0.0 when that count was not run).
 */
template <typename Work, typename Identical>
double
sweepConfigurations(TextTable &table, const BenchConfig &bench,
                    const std::string &name, Work &&work,
                    Identical &&identical, unsigned assert_threads,
                    bool &all_identical)
{
    // The engine-scaling rows time the solvers cache-cold every run:
    // a warm memo would collapse the sensitivity grid to map lookups
    // and hide the scheduling behaviour this bench exists to watch.
    setSolverCacheEnabled(false);

    campaign::CampaignOptions plain;
    setThreadCount(1);
    const auto reference = work(plain);
    const double serial = bestOf(bench.reps, [&] { work(plain); });

    double at_assert_threads = 0.0;
    for (unsigned threads : bench.threads) {
        setThreadCount(threads);

        const auto no_journal_result = work(plain);
        const double no_journal =
            bestOf(bench.reps, [&] { work(plain); });

        campaign::CampaignOptions journaled;
        journaled.journalPath =
            journalPath(name + "_t" + std::to_string(threads));
        const auto journal_result = work(journaled);
        const double journal = bestOf(bench.reps, [&] {
            std::filesystem::remove(journaled.journalPath);
            work(journaled);
        });
        std::filesystem::remove(journaled.journalPath);

        const bool ok = identical(reference, no_journal_result) &&
            identical(reference, journal_result);
        all_identical = all_identical && ok;

        const double speedup = serial / no_journal;
        if (threads == assert_threads) {
            at_assert_threads = speedup;
        }
        table.addRow({name, std::to_string(threads),
                      formatNumber(no_journal * 1e3, 1),
                      formatNumber(journal * 1e3, 1),
                      formatNumber(speedup, 2) + "x",
                      ok ? "yes" : "NO"});
    }
    setThreadCount(0);
    setSolverCacheEnabled(true);
    return at_assert_threads;
}

/**
 * Times the analytical evaluators cache-cold vs cache-warm: the same
 * power curves and sensitivity solves a campaign re-issues, keyed into
 * the solver memo. Appends two rows; returns the warm speedup.
 */
double
memoRows(TextTable &table, const BenchConfig &bench,
         bool &all_identical)
{
    const unsigned max_cpus = bench.smoke ? 16 : 64;
    const auto curves = [&] {
        std::vector<BusSolution> last;
        for (Scheme scheme : kAllSchemes) {
            last = busPowerCurve(scheme, middleParams(), max_cpus);
        }
        return last;
    };

    setThreadCount(1);
    setSolverCacheEnabled(true);
    clearSolverCache();
    const auto cold_result = curves();
    const double cold = bestOf(bench.reps, [&] {
        clearSolverCache();
        curves();
    });
    const auto warm_result = curves();
    const double warm = bestOf(bench.reps, [&] { curves(); });
    setThreadCount(0);

    bool ok = cold_result.size() == warm_result.size();
    for (std::size_t i = 0; ok && i < cold_result.size(); ++i) {
        ok = cold_result[i].processingPower ==
            warm_result[i].processingPower;
    }
    all_identical = all_identical && ok;

    const double speedup = cold / warm;
    table.addRow({"solver memo (cold)", "1",
                  formatNumber(cold * 1e3, 3), "-", "1.00x",
                  ok ? "yes" : "NO"});
    table.addRow({"solver memo (warm)", "1",
                  formatNumber(warm * 1e3, 3), "-",
                  formatNumber(speedup, 2) + "x",
                  ok ? "yes" : "NO"});
    return speedup;
}

/**
 * Times the batched network fixed-point sweep with the vector kernels
 * off and on — the campaign sweep shape: many operating points at one
 * machine size. Verifies the two modes agree bit for bit, appends two
 * rows, and returns the vector speedup (1.0 on scalar-only hosts).
 */
double
simdRows(TextTable &table, const BenchConfig &bench,
         bool &all_identical)
{
    const std::size_t count = bench.smoke ? 64 : 512;
    std::vector<double> rates(count);
    std::vector<double> sizes(count);
    std::vector<unsigned> stages(count, 8);
    for (std::size_t i = 0; i < count; ++i) {
        rates[i] = 0.01 + 0.0005 * static_cast<double>(i % 97);
        sizes[i] = 10.0 + 0.125 * static_cast<double>(i % 33);
    }
    const int rounds = bench.smoke ? 20 : 200;
    std::vector<double> out(count);
    const auto sweep = [&] {
        for (int r = 0; r < rounds; ++r) {
            solveComputeFractionBatch(rates.data(), sizes.data(),
                                      stages.data(), count, out.data());
        }
    };

    simd::setSimdEnabled(false);
    sweep();
    const std::vector<double> scalar_result = out;
    const double scalar = bestOf(bench.reps, sweep);

    simd::setSimdEnabled(true);
    sweep();
    const std::vector<double> vector_result = out;
    const double vector = bestOf(bench.reps, sweep);

    const bool ok =
        std::memcmp(scalar_result.data(), vector_result.data(),
                    count * sizeof(double)) == 0;
    all_identical = all_identical && ok;

    const double speedup = scalar / vector;
    table.addRow({"network sweep (simd off)", "1",
                  formatNumber(scalar * 1e3, 3), "-", "1.00x",
                  ok ? "yes" : "NO"});
    table.addRow({"network sweep (simd on)", "1",
                  formatNumber(vector * 1e3, 3), "-",
                  formatNumber(speedup, 2) + "x",
                  ok ? "yes" : "NO"});
    return speedup;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchConfig bench;
    double assert_simd = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            bench.smoke = true;
            bench.reps = 1;
            bench.threads = {1, 2};
        } else if (arg == "--assert-speedup" && i + 1 < argc) {
            bench.assertSpeedup = std::atof(argv[++i]);
        } else if (arg == "--assert-simd-speedup" && i + 1 < argc) {
            assert_simd = std::atof(argv[++i]);
        } else {
            std::cerr << "usage: bench_perf_parallel [--smoke] "
                         "[--assert-speedup X] "
                         "[--assert-simd-speedup X]\n";
            return 2;
        }
    }

    std::cout << "=== Campaign engine thread scaling ("
              << hardwareThreads() << " hardware threads) ===\n\n";

    TextTable table({"experiment", "threads", "no journal ms",
                     "journal ms", "speedup", "identical"});
    bool all_identical = true;

    const double sensitivity_speedup = sweepConfigurations(
        table, bench, "sensitivity grid (Table 8)",
        [&](const campaign::CampaignOptions &options) {
            return sensitivityWork(bench, options);
        },
        identicalSensitivity, 4, all_identical);
    sweepConfigurations(
        table, bench, "validation matrix",
        [&](const campaign::CampaignOptions &options) {
            return validationWork(bench, options);
        },
        identicalValidation, 4, all_identical);
    memoRows(table, bench, all_identical);
    const double simd_speedup = simdRows(table, bench, all_identical);

    table.print(std::cout);

    if (!all_identical) {
        std::cout << "\nFAIL: a configuration changed the results\n";
        return 1;
    }
    std::cout << "\nall configurations bit-identical\n";

    if (!bench.smoke) {
        std::cout << exportCsv(table, "perf_parallel_speedup")
                  << " written\n";
    }

    if (bench.assertSpeedup > 0.0) {
        if (hardwareThreads() < 4) {
            std::cout << "speedup assertion skipped: only "
                      << hardwareThreads()
                      << " hardware threads (need 4)\n";
            return 0;
        }
        std::cout << "sensitivity grid at 4 threads: "
                  << formatNumber(sensitivity_speedup, 2)
                  << "x (required " << bench.assertSpeedup << "x)\n";
        if (sensitivity_speedup < bench.assertSpeedup) {
            std::cout << "FAIL: below required speedup\n";
            return 1;
        }
    }

    if (assert_simd > 0.0) {
        if (simd::laneWidth() < 4) {
            std::cout << "simd speedup assertion skipped: lane width "
                      << simd::laneWidth() << " (need 4)\n";
            return 0;
        }
        std::cout << "network sweep with vector kernels: "
                  << formatNumber(simd_speedup, 2) << "x (required "
                  << assert_simd << "x)\n";
        if (simd_speedup < assert_simd) {
            std::cout << "FAIL: below required simd speedup\n";
            return 1;
        }
    }
    return 0;
}
