/**
 * @file
 * Extension X5: write-update (Dragon) versus write-invalidate
 * (Illinois/MESI-style) — reproducing the Archibald & Baer comparison
 * that led the paper to adopt Dragon, on this repository's traces and
 * in its analytical formalism.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "core/parallel.hh"
#include "core/swcc.hh"
#include "sim/cache/invalidate_protocol.hh"
#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"

namespace
{

/** Every protocol simulated on one profile's trace. */
struct ProfileComparison
{
    swcc::SimStats dragon;
    swcc::SimStats inval;
    swcc::SimStats mesi;
    swcc::SimStats mesif;
    swcc::SimStats moesi;
    swcc::SimStats hybrid;
    swcc::InvalidateMeasurements measured;
};

} // namespace

int
main()
{
    using namespace swcc;

    std::cout << "=== X5: Dragon (write-update) vs write-invalidate "
                 "snooping ===\n\n";

    std::cout << "Simulator, 4 CPUs, 64KB caches:\n\n";

    // Each profile's Dragon + Invalidate pair shares a trace, so the
    // profile is the natural parallel unit; slots come back in
    // kAllProfiles order regardless of which finishes first.
    const std::vector<ProfileComparison> comparisons = parallelMap(
        kAllProfiles.size(), [&](std::size_t i) {
            const SyntheticWorkloadConfig workload =
                profileConfig(kAllProfiles[i], 4, 120'000, 55, false);
            const TraceBuffer trace = generateTrace(workload);

            CacheConfig cache;
            cache.sizeBytes = 64 * 1024;
            cache.blockBytes = 16;

            ProfileComparison result;
            MultiprocessorSystem dragon_system(Scheme::Dragon, cache,
                                               4);
            result.dragon = dragon_system.run(trace);

            auto protocol =
                std::make_unique<InvalidateProtocol>(cache, 4);
            const InvalidateProtocol &inval_protocol = *protocol;
            MultiprocessorSystem inval_system(std::move(protocol));
            result.inval = inval_system.run(trace);
            result.measured = inval_protocol.measurements();

            const auto run_scheme = [&](Scheme scheme) {
                MultiprocessorSystem system(scheme, cache, 4);
                return system.run(trace);
            };
            result.mesi = run_scheme(Scheme::Mesi);
            result.mesif = run_scheme(Scheme::Mesif);
            result.moesi = run_scheme(Scheme::Moesi);
            result.hybrid = run_scheme(Scheme::Hybrid);
            return result;
        });

    TextTable sim_table({"profile", "Dragon power", "Invalidate power",
                         "Dragon bus ops", "Invalidate bus ops",
                         "coherence misses", "measured reref"});
    for (std::size_t i = 0; i < kAllProfiles.size(); ++i) {
        const ProfileComparison &result = comparisons[i];
        sim_table.addRow(
            {std::string(profileName(kAllProfiles[i])),
             formatNumber(result.dragon.processingPower(), 3),
             formatNumber(result.inval.processingPower(), 3),
             formatNumber(static_cast<double>(
                 result.dragon.opCount(Operation::WriteBroadcast)), 0),
             formatNumber(static_cast<double>(
                 result.inval.opCount(Operation::WriteBroadcast)), 0),
             formatNumber(static_cast<double>(
                 result.measured.coherenceMisses), 0),
             formatNumber(result.measured.rerefFraction(), 3)});
    }
    sim_table.print(std::cout);

    std::cout << "\nInvalidate-family variants on the same traces:\n\n";
    TextTable family_table({"profile", "MESI", "MESIF", "MOESI",
                            "Adaptive-Hybrid", "MESI cache-fills",
                            "MESIF cache-fills", "MOESI cache-fills"});
    const auto cache_fills = [](const SimStats &stats) {
        return formatNumber(
            static_cast<double>(
                stats.opCount(Operation::CleanMissCache) +
                stats.opCount(Operation::DirtyMissCache)),
            0);
    };
    for (std::size_t i = 0; i < kAllProfiles.size(); ++i) {
        const ProfileComparison &result = comparisons[i];
        family_table.addRow(
            {std::string(profileName(kAllProfiles[i])),
             formatNumber(result.mesi.processingPower(), 3),
             formatNumber(result.mesif.processingPower(), 3),
             formatNumber(result.moesi.processingPower(), 3),
             formatNumber(result.hybrid.processingPower(), 3),
             cache_fills(result.mesi), cache_fills(result.mesif),
             cache_fills(result.moesi)});
    }
    family_table.print(std::cout);

    std::cout << "\nAnalytical model, 16 CPUs, medium parameters, "
                 "sweeping the write-run length:\n\n";
    TextTable model_table({"apl", "firstWrite", "Dragon", "Invalidate "
                           "(reref .2)", "Invalidate (reref .8)",
                           "MESI", "MESIF", "MOESI", "Hybrid"});
    for (double apl : {2.0, 4.0, 8.0, 16.0, 64.0}) {
        WorkloadParams params = middleParams();
        params.apl = apl;
        const double first =
            InvalidateModelConfig::firstWriteFromRun(params);
        auto inval_power = [&](double reref) {
            InvalidateModelConfig config;
            config.firstWriteFraction = first;
            config.rerefFraction = reref;
            return evaluateInvalidateBus(params, 16, config)
                .processingPower;
        };
        auto scheme_power = [&](Scheme scheme) {
            return formatNumber(
                evaluateBus(scheme, params, 16).processingPower, 2);
        };
        model_table.addRow(
            {formatNumber(apl, 0), formatNumber(first, 2),
             scheme_power(Scheme::Dragon),
             formatNumber(inval_power(0.2), 2),
             formatNumber(inval_power(0.8), 2),
             scheme_power(Scheme::Mesi), scheme_power(Scheme::Mesif),
             scheme_power(Scheme::Moesi),
             scheme_power(Scheme::Hybrid)});
    }
    model_table.print(std::cout);

    std::cout
        << "\nFindings: on fine-grain critical-section workloads the "
           "protocols are close,\nwith Dragon ahead when invalidated "
           "copies are promptly re-read (high reref)\nand invalidation "
           "ahead on long private write runs (low firstWrite, low\n"
           "reref) — the classic update-vs-invalidate trade-off behind "
           "the paper's choice\nof Dragon as its hardware yardstick.\n";
    return 0;
}
