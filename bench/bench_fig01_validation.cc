/**
 * @file
 * Reproduces Figure 1: analytical model versus trace-driven
 * simulation for the Base and Dragon schemes with 64K-byte caches.
 *
 * The paper used ATUM-2 traces (POPS, THOR, PERO) of a 4-CPU VAX 8350;
 * we use the synthetic application profiles documented in DESIGN.md.
 * Model parameters are extracted from the very trace being simulated,
 * exactly as in the paper.
 */

#include <array>
#include <iostream>
#include <vector>

#include "core/campaign/campaign.hh"
#include "core/obs/obs.hh"
#include "core/parallel.hh"
#include "core/swcc.hh"
#include "sim/mp/validation.hh"

int
main(int argc, char **argv)
{
    using namespace swcc;
    obs::consumeArgs(argc, argv);

    std::cout << "=== Figure 1: model vs simulation, Base & Dragon, "
                 "64KB caches ===\n\n";

    constexpr std::array kSchemes{Scheme::Base, Scheme::Dragon};
    constexpr CpuId kMaxCpus = 4;

    // Journaled + resumable when SWCC_JOURNAL_DIR is set: every
    // (profile, scheme, cpus) cell lands in one shared journal, so a
    // killed figure run picks up where it left off.
    const campaign::CampaignOptions campaign_options =
        campaign::envCampaignOptions("fig01");
    campaign::CampaignReport report;

    for (AppProfile profile : kAllProfiles) {
        // Each scheme's 1..kMaxCpus cells are independent simulations
        // fanned across the pool by validate(); render serially.
        std::vector<ValidationPoint> points;
        for (Scheme scheme : kSchemes) {
            ValidationConfig config;
            config.profile = profile;
            config.scheme = scheme;
            config.cacheBytes = 64 * 1024;
            config.maxCpus = kMaxCpus;
            config.instructionsPerCpu = 120'000;
            config.seed = 1989;
            campaign::CampaignReport scheme_report;
            const std::vector<ValidationPoint> scheme_points =
                validate(config, campaign_options, &scheme_report);
            points.insert(points.end(), scheme_points.begin(),
                          scheme_points.end());
            report.merge(scheme_report);
        }

        TextTable table({"scheme", "cpus", "sim power", "model power",
                         "error %"});
        AsciiChart chart(56, 14);
        for (std::size_t row = 0; row < kSchemes.size(); ++row) {
            const Scheme scheme = kSchemes[row];
            Series sim_series, model_series;
            sim_series.label =
                std::string(schemeName(scheme)) + " sim";
            model_series.label =
                std::string(schemeName(scheme)) + " model";

            for (CpuId cpus = 1; cpus <= kMaxCpus; ++cpus) {
                const ValidationPoint &point =
                    points[row * kMaxCpus + cpus - 1];
                table.addRow({std::string(schemeName(scheme)),
                              formatNumber(point.cpus, 0),
                              formatNumber(point.simPower, 3),
                              formatNumber(point.modelPower, 3),
                              formatNumber(point.errorPercent(), 1)});
                sim_series.points.push_back(
                    {static_cast<double>(point.cpus), point.simPower});
                model_series.points.push_back(
                    {static_cast<double>(point.cpus),
                     point.modelPower});
            }
            chart.addSeries(sim_series);
            chart.addSeries(model_series);
        }
        std::cout << "--- " << profileName(profile) << " ---\n";
        table.print(std::cout);
        exportCsv(table, "fig01_validation_" +
                             std::string(profileName(profile)));
        chart.setAxisTitles("processors", "processing power");
        chart.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "Paper's observation: the model captures the "
                 "Base/Dragon gap exactly but\n"
                 "consistently overestimates contention (exponential "
                 "vs fixed bus service),\n"
                 "so model power sits slightly below simulation at "
                 "higher processor counts.\n";
    if (report.fromJournal + report.retries + report.poisoned > 0) {
        std::cerr << "campaign: " << report.summary() << '\n';
    }
    obs::finalize();
    return 0;
}
