/**
 * @file
 * Reproduces Figure 1: analytical model versus trace-driven
 * simulation for the Base and Dragon schemes with 64K-byte caches.
 *
 * The paper used ATUM-2 traces (POPS, THOR, PERO) of a 4-CPU VAX 8350;
 * we use the synthetic application profiles documented in DESIGN.md.
 * Model parameters are extracted from the very trace being simulated,
 * exactly as in the paper.
 */

#include <iostream>

#include "core/swcc.hh"
#include "sim/mp/validation.hh"

int
main()
{
    using namespace swcc;

    std::cout << "=== Figure 1: model vs simulation, Base & Dragon, "
                 "64KB caches ===\n\n";

    for (AppProfile profile : kAllProfiles) {
        TextTable table({"scheme", "cpus", "sim power", "model power",
                         "error %"});
        AsciiChart chart(56, 14);
        for (Scheme scheme : {Scheme::Base, Scheme::Dragon}) {
            ValidationConfig config;
            config.profile = profile;
            config.scheme = scheme;
            config.cacheBytes = 64 * 1024;
            config.maxCpus = 4;
            config.instructionsPerCpu = 120'000;
            config.seed = 1989;

            Series sim_series, model_series;
            sim_series.label =
                std::string(schemeName(scheme)) + " sim";
            model_series.label =
                std::string(schemeName(scheme)) + " model";

            for (const ValidationPoint &point : validate(config)) {
                table.addRow({std::string(schemeName(scheme)),
                              formatNumber(point.cpus, 0),
                              formatNumber(point.simPower, 3),
                              formatNumber(point.modelPower, 3),
                              formatNumber(point.errorPercent(), 1)});
                sim_series.points.push_back(
                    {static_cast<double>(point.cpus), point.simPower});
                model_series.points.push_back(
                    {static_cast<double>(point.cpus),
                     point.modelPower});
            }
            chart.addSeries(sim_series);
            chart.addSeries(model_series);
        }
        std::cout << "--- " << profileName(profile) << " ---\n";
        table.print(std::cout);
        exportCsv(table, "fig01_validation_" +
                             std::string(profileName(profile)));
        chart.setAxisTitles("processors", "processing power");
        chart.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "Paper's observation: the model captures the "
                 "Base/Dragon gap exactly but\n"
                 "consistently overestimates contention (exponential "
                 "vs fixed bus service),\n"
                 "so model power sits slightly below simulation at "
                 "higher processor counts.\n";
    return 0;
}
