/**
 * @file
 * google-benchmark timings for the analytical solvers, plus a
 * serial-vs-parallel comparison of the experiment engine. The paper's
 * argument for an analytical model over simulation is evaluation
 * speed; these benchmarks quantify it (full model evaluations run in
 * microseconds, versus seconds for a trace-driven simulation), and the
 * parallel section quantifies what the thread pool buys on top —
 * writing the measured speedups to bench_results/ and checking that
 * the parallel results are bit-identical to the serial ones.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/swcc.hh"
#include "sim/mp/validation.hh"
#include "sim/synth/rng.hh"

namespace
{

using namespace swcc;

void
BM_OperationFrequencies(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    const Scheme scheme = static_cast<Scheme>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(operationFrequencies(scheme, params));
    }
}
BENCHMARK(BM_OperationFrequencies)->DenseRange(0, 3);

void
BM_BusSolve(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    const BusCostModel costs;
    const PerInstructionCost cost = perInstructionCost(
        operationFrequencies(Scheme::SoftwareFlush, params), costs);
    const unsigned processors = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(solveBus(cost, processors));
    }
}
BENCHMARK(BM_BusSolve)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_NetworkFixedPoint(benchmark::State &state)
{
    const unsigned stages = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            solveComputeFraction(0.03, 12.0, stages));
    }
}
BENCHMARK(BM_NetworkFixedPoint)->Arg(2)->Arg(8)->Arg(12);

void
BM_FullBusEvaluation(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    for (auto _ : state) {
        for (Scheme scheme : kAllSchemes) {
            benchmark::DoNotOptimize(evaluateBus(scheme, params, 16));
        }
    }
}
BENCHMARK(BM_FullBusEvaluation);

void
BM_FullNetworkEvaluation(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateNetwork(Scheme::SoftwareFlush, params, 8));
    }
}
BENCHMARK(BM_FullNetworkEvaluation);

void
BM_SensitivityTable(benchmark::State &state)
{
    SensitivityConfig config;
    config.averageOverGrid = true;
    setThreadCount(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensitivityTable(config));
    }
    setThreadCount(0);
}
BENCHMARK(BM_SensitivityTable)->Arg(1)->Arg(0);

/** Wall-clock seconds of @p body, best of @p reps runs. */
template <typename Body>
double
bestOf(int reps, Body &&body)
{
    using clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        const auto start = clock::now();
        body();
        const std::chrono::duration<double> elapsed =
            clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

/** The grid-averaged Table 8 (108 cells x 27-point companion grids). */
std::vector<SensitivityEntry>
sensitivityWork()
{
    SensitivityConfig config;
    config.averageOverGrid = true;
    return sensitivityTable(config);
}

/**
 * A small validation matrix: one trace-driven simulator instance per
 * (scheme, cpus) cell, every cell seeded from its index via Rng::split
 * so the matrix is identical however the cells are scheduled.
 */
std::vector<ValidationPoint>
validationWork()
{
    const Rng seeder(1989);
    std::vector<ValidationPoint> matrix;
    std::uint64_t cell = 0;
    for (Scheme scheme : {Scheme::Base, Scheme::Dragon}) {
        ValidationConfig config;
        config.scheme = scheme;
        config.maxCpus = 4;
        config.instructionsPerCpu = 40'000;
        config.seed = seeder.split(cell++).next();
        const auto points = validate(config);
        matrix.insert(matrix.end(), points.begin(), points.end());
    }
    return matrix;
}

bool
identicalSensitivity(const std::vector<SensitivityEntry> &a,
                     const std::vector<SensitivityEntry> &b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].timeLow != b[i].timeLow ||
            a[i].timeHigh != b[i].timeHigh ||
            a[i].percentChange != b[i].percentChange) {
            return false;
        }
    }
    return true;
}

bool
identicalValidation(const std::vector<ValidationPoint> &a,
                    const std::vector<ValidationPoint> &b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].simPower != b[i].simPower ||
            a[i].modelPower != b[i].modelPower) {
            return false;
        }
    }
    return true;
}

/**
 * Times the experiment engine serial vs parallel, verifies the results
 * are bit-identical, and leaves the numbers in
 * bench_results/perf_parallel_speedup.csv.
 */
void
reportParallelSpeedup()
{
    const unsigned parallel_threads = std::max(4u, hardwareThreads());

    std::cout << "\n=== Parallel experiment engine: serial vs "
              << parallel_threads << " threads ("
              << hardwareThreads() << " hardware) ===\n\n";

    TextTable table({"experiment", "serial ms", "parallel ms",
                     "speedup", "threads", "identical"});

    const auto report = [&](const std::string &name, auto work,
                            auto identical) {
        setThreadCount(1);
        const auto serial_result = work();
        const double serial = bestOf(3, [&] {
            benchmark::DoNotOptimize(work());
        });
        setThreadCount(parallel_threads);
        const auto parallel_result = work();
        const double parallel = bestOf(3, [&] {
            benchmark::DoNotOptimize(work());
        });
        setThreadCount(0);
        table.addRow({name, formatNumber(serial * 1e3, 1),
                      formatNumber(parallel * 1e3, 1),
                      formatNumber(serial / parallel, 2) + "x",
                      std::to_string(parallel_threads),
                      identical(serial_result, parallel_result)
                          ? "yes" : "NO"});
    };

    report("sensitivity grid (Table 8)", sensitivityWork,
           identicalSensitivity);
    report("validation matrix (2 schemes x 4 cpus)", validationWork,
           identicalValidation);

    table.print(std::cout);
    std::cout << '\n' << exportCsv(table, "perf_parallel_speedup")
              << " written (speedup tracks physical cores; results "
                 "are bit-identical by construction)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    reportParallelSpeedup();
    return 0;
}
