/**
 * @file
 * google-benchmark timings for the analytical solvers. The paper's
 * argument for an analytical model over simulation is evaluation
 * speed; these benchmarks quantify it (full model evaluations run in
 * microseconds, versus seconds for a trace-driven simulation).
 */

#include <benchmark/benchmark.h>

#include "core/swcc.hh"

namespace
{

using namespace swcc;

void
BM_OperationFrequencies(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    const Scheme scheme = static_cast<Scheme>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(operationFrequencies(scheme, params));
    }
}
BENCHMARK(BM_OperationFrequencies)->DenseRange(0, 3);

void
BM_BusSolve(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    const BusCostModel costs;
    const PerInstructionCost cost = perInstructionCost(
        operationFrequencies(Scheme::SoftwareFlush, params), costs);
    const unsigned processors = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(solveBus(cost, processors));
    }
}
BENCHMARK(BM_BusSolve)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_NetworkFixedPoint(benchmark::State &state)
{
    const unsigned stages = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            solveComputeFraction(0.03, 12.0, stages));
    }
}
BENCHMARK(BM_NetworkFixedPoint)->Arg(2)->Arg(8)->Arg(12);

void
BM_FullBusEvaluation(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    for (auto _ : state) {
        for (Scheme scheme : kAllSchemes) {
            benchmark::DoNotOptimize(evaluateBus(scheme, params, 16));
        }
    }
}
BENCHMARK(BM_FullBusEvaluation);

void
BM_FullNetworkEvaluation(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateNetwork(Scheme::SoftwareFlush, params, 8));
    }
}
BENCHMARK(BM_FullNetworkEvaluation);

void
BM_SensitivityTable(benchmark::State &state)
{
    SensitivityConfig config;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensitivityTable(config));
    }
}
BENCHMARK(BM_SensitivityTable);

} // namespace
