/**
 * @file
 * google-benchmark timings for the analytical solvers. The paper's
 * argument for an analytical model over simulation is evaluation
 * speed; these benchmarks quantify it (full model evaluations run in
 * microseconds, versus seconds for a trace-driven simulation). The
 * curve and memo benchmarks measure the batched solver kernels: one
 * MVA pass per power curve and memoized re-evaluation of repeated
 * operating points. Thread scaling of the campaign engine lives in
 * bench_perf_parallel.
 */

#include <benchmark/benchmark.h>

#include "core/swcc.hh"

namespace
{

using namespace swcc;

void
BM_OperationFrequencies(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    const Scheme scheme = static_cast<Scheme>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(operationFrequencies(scheme, params));
    }
}
BENCHMARK(BM_OperationFrequencies)->DenseRange(0, 3);

void
BM_BusSolve(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    const BusCostModel costs;
    const PerInstructionCost cost = perInstructionCost(
        operationFrequencies(Scheme::SoftwareFlush, params), costs);
    const unsigned processors = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(solveBus(cost, processors));
    }
}
BENCHMARK(BM_BusSolve)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_BusSolveCurvePerPoint(benchmark::State &state)
{
    // The old per-point curve: N independent MVA recursions, O(N^2)
    // recursion steps for an N-processor power curve.
    const WorkloadParams params = middleParams();
    const BusCostModel costs;
    const PerInstructionCost cost = perInstructionCost(
        operationFrequencies(Scheme::SoftwareFlush, params), costs);
    const unsigned max = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        for (unsigned n = 1; n <= max; ++n) {
            benchmark::DoNotOptimize(solveBus(cost, n));
        }
    }
}
BENCHMARK(BM_BusSolveCurvePerPoint)->Arg(32)->Arg(256);

void
BM_BusSolveCurve(benchmark::State &state)
{
    // The batched curve kernel: one O(N) recursion for the same curve.
    const WorkloadParams params = middleParams();
    const BusCostModel costs;
    const PerInstructionCost cost = perInstructionCost(
        operationFrequencies(Scheme::SoftwareFlush, params), costs);
    const unsigned max = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(solveBusCurve(cost, max));
    }
}
BENCHMARK(BM_BusSolveCurve)->Arg(32)->Arg(256);

void
BM_NetworkFixedPoint(benchmark::State &state)
{
    const unsigned stages = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            solveComputeFraction(0.03, 12.0, stages));
    }
}
BENCHMARK(BM_NetworkFixedPoint)->Arg(2)->Arg(8)->Arg(12);

void
BM_NetworkCurve(benchmark::State &state)
{
    // Batched bisection across a whole machine-size curve.
    const WorkloadParams params = middleParams();
    const unsigned max_stages = static_cast<unsigned>(state.range(0));
    setSolverCacheEnabled(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluateNetworkCurve(
            Scheme::SoftwareFlush, params, max_stages));
    }
    setSolverCacheEnabled(true);
}
BENCHMARK(BM_NetworkCurve)->Arg(8)->Arg(12);

void
BM_NetworkBatch(benchmark::State &state)
{
    // The campaign sweep shape: many operating points on one machine
    // size (uniform stage count), varying workload intensity. This is
    // the throughput-bound case the vector sweep targets — every
    // 4-lane group takes the no-mask fast path.
    const std::size_t count = static_cast<std::size_t>(state.range(0));
    std::vector<double> rates(count);
    std::vector<double> sizes(count);
    std::vector<unsigned> stages(count, 8);
    std::vector<double> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        rates[i] = 0.01 + 0.0005 * static_cast<double>(i % 97);
        sizes[i] = 10.0 + 0.125 * static_cast<double>(i % 33);
    }
    for (auto _ : state) {
        solveComputeFractionBatch(rates.data(), sizes.data(),
                                  stages.data(), count, out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(count));
}
BENCHMARK(BM_NetworkBatch)->Arg(16)->Arg(64)->Arg(256);

void
BM_FullBusEvaluation(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    setSolverCacheEnabled(false);
    for (auto _ : state) {
        for (Scheme scheme : kAllSchemes) {
            benchmark::DoNotOptimize(evaluateBus(scheme, params, 16));
        }
    }
    setSolverCacheEnabled(true);
}
BENCHMARK(BM_FullBusEvaluation);

void
BM_FullBusEvaluationMemoWarm(benchmark::State &state)
{
    // The same evaluations served from the solver memo: what a
    // campaign pays when it revisits an operating point.
    const WorkloadParams params = middleParams();
    setSolverCacheEnabled(true);
    clearSolverCache();
    for (Scheme scheme : kAllSchemes) {
        benchmark::DoNotOptimize(evaluateBus(scheme, params, 16));
    }
    for (auto _ : state) {
        for (Scheme scheme : kAllSchemes) {
            benchmark::DoNotOptimize(evaluateBus(scheme, params, 16));
        }
    }
}
BENCHMARK(BM_FullBusEvaluationMemoWarm);

void
BM_FullNetworkEvaluation(benchmark::State &state)
{
    const WorkloadParams params = middleParams();
    setSolverCacheEnabled(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            evaluateNetwork(Scheme::SoftwareFlush, params, 8));
    }
    setSolverCacheEnabled(true);
}
BENCHMARK(BM_FullNetworkEvaluation);

void
BM_SensitivityTable(benchmark::State &state)
{
    SensitivityConfig config;
    config.averageOverGrid = true;
    setThreadCount(static_cast<unsigned>(state.range(0)));
    setSolverCacheEnabled(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensitivityTable(config));
    }
    setSolverCacheEnabled(true);
    setThreadCount(0);
}
BENCHMARK(BM_SensitivityTable)->Arg(1)->Arg(0);

} // namespace

BENCHMARK_MAIN();
