/**
 * @file
 * Extension X3: packet switching. The paper's conclusion conjectures
 * "Use of packet-switching would be more favorable to No-Cache"; this
 * experiment (a) validates the buffered packet-network model against
 * the cycle-level packet simulator and (b) quantifies the conjecture
 * by re-running the scheme comparison under packet switching.
 */

#include <iostream>

#include "core/swcc.hh"
#include "sim/net/net_experiment.hh"

int
main()
{
    using namespace swcc;

    std::cout << "=== X3a: Kruskal-Snir packet model vs packet "
                 "simulator (64 ports) ===\n\n";
    TextTable val({"think", "sim U", "model U", "error %", "sim lat",
                   "model lat", "sim load", "model load"});
    for (double think : {100.0, 50.0, 30.0, 20.0, 15.0, 12.0}) {
        const PacketValidationPoint p =
            validatePacketPoint(think, 1, 4, 6, 120'000, 13);
        val.addRow({formatNumber(think, 0),
                    formatNumber(p.simCompute, 3),
                    formatNumber(p.modelCompute, 3),
                    formatNumber(p.computeErrorPercent(), 1),
                    formatNumber(p.simLatency, 1),
                    formatNumber(p.modelLatency, 1),
                    formatNumber(p.simLinkLoad, 3),
                    formatNumber(p.modelLinkLoad, 3)});
    }
    val.print(std::cout);

    std::cout << "\n=== X3b: circuit vs packet switching, 256 "
                 "processors ===\n\n";
    for (Level level : kAllLevels) {
        const WorkloadParams params = paramsAtLevel(level);
        std::cout << "--- " << levelName(level)
                  << " parameter range ---\n";
        TextTable table({"scheme", "circuit power", "packet power",
                         "packet/circuit"});
        for (Scheme scheme : {Scheme::Base, Scheme::SoftwareFlush,
                              Scheme::NoCache}) {
            const double circuit =
                evaluateNetwork(scheme, params, 8).processingPower;
            const double packet =
                solvePacketNetwork(scheme, params, 8).processingPower;
            table.addRow({std::string(schemeName(scheme)),
                          formatNumber(circuit, 1),
                          formatNumber(packet, 1),
                          formatNumber(packet / circuit, 2) + "x"});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "=== X3c: how much buffering do the switches need? "
                 "(64 ports, think 15) ===\n\n";
    TextTable buffers({"buffer words/port", "transactions",
                       "compute U", "max queue", "backpressure "
                       "stalls"});
    for (unsigned depth : {1u, 2u, 4u, 8u, 0u}) {
        PacketNetConfig config;
        config.stages = 6;
        config.meanThink = 15.0;
        config.requestWords = 1;
        config.responseWords = 4;
        config.bufferWords = depth;
        config.seed = 77;
        PacketOmegaNetwork network(config);
        const PacketNetStats stats = network.run(60'000);
        buffers.addRow(
            {depth == 0 ? "unbounded" : formatNumber(depth, 0),
             formatNumber(static_cast<double>(stats.transactions), 0),
             formatNumber(stats.computeFraction, 3),
             formatNumber(static_cast<double>(stats.maxQueueDepth), 0),
             formatNumber(static_cast<double>(stats.backpressureStalls),
                          0)});
    }
    buffers.print(std::cout);
    std::cout << "\nA handful of words per port already matches the "
                 "infinite-buffer model the\nanalysis assumes.\n\n";

    std::cout
        << "Finding: packet switching removes the per-message 2n "
           "circuit-setup cost, which\nis exactly what punishes "
           "No-Cache's many small messages — its speedup is the\n"
           "largest of the three schemes at every parameter range, "
           "confirming the paper's\nconjecture quantitatively.\n";
    return 0;
}
