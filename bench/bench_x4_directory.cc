/**
 * @file
 * Extension X4: directory-based hardware coherence on the network.
 * The paper remarks that "the performance of the Software-Flush
 * scheme for the low range approximates the performance of
 * hardware-based directory schemes"; this experiment quantifies that
 * claim and maps where the directory pulls ahead.
 */

#include <iostream>

#include "core/swcc.hh"

int
main()
{
    using namespace swcc;

    constexpr unsigned kStages = 8;

    std::cout << "=== X4: directory scheme vs software schemes, 256 "
                 "processors ===\n\n";

    TextTable table({"range", "Base", "Directory", "Software-Flush",
                     "No-Cache"});
    for (Level level : kAllLevels) {
        const WorkloadParams params = paramsAtLevel(level);
        table.addRow(
            {std::string(levelName(level)),
             formatNumber(evaluateNetwork(Scheme::Base, params, kStages)
                              .processingPower,
                          1),
             formatNumber(evaluateDirectoryNetwork(params, kStages)
                              .processingPower,
                          1),
             formatNumber(
                 evaluateNetwork(Scheme::SoftwareFlush, params, kStages)
                     .processingPower,
                 1),
             formatNumber(
                 evaluateNetwork(Scheme::NoCache, params, kStages)
                     .processingPower,
                 1)});
    }
    table.print(std::cout);

    std::cout << "\nSoftware-Flush vs directory as apl varies (medium "
                 "range otherwise):\n\n";
    TextTable apl_table({"apl", "Software-Flush", "Directory",
                         "SF/Dir"});
    for (double apl : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0}) {
        WorkloadParams params = middleParams();
        params.apl = apl;
        const double swf =
            evaluateNetwork(Scheme::SoftwareFlush, params, kStages)
                .processingPower;
        const double dir =
            evaluateDirectoryNetwork(params, kStages).processingPower;
        apl_table.addRow({formatNumber(apl, 0), formatNumber(swf, 1),
                          formatNumber(dir, 1),
                          formatNumber(swf / dir, 2)});
    }
    apl_table.print(std::cout);

    std::cout << "\nDirectory sensitivity to the re-reference fraction "
                 "(coherence misses):\n\n";
    TextTable reref_table({"rerefFraction", "power (middle range)"});
    for (double reref : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        DirectoryModelConfig config;
        config.rerefFraction = reref;
        reref_table.addRow(
            {formatNumber(reref, 2),
             formatNumber(evaluateDirectoryNetwork(middleParams(),
                                                   kStages, config)
                              .processingPower,
                          1)});
    }
    reref_table.print(std::cout);

    std::cout
        << "\nFindings: at the low range Software-Flush and the "
           "directory agree within ~5%\n(the paper's remark); the "
           "directory's advantage opens as apl falls toward the\n"
           "ping-pong floor, and it needs no compiler support — at "
           "the cost of directory\nstorage and protocol hardware.\n";
    return 0;
}
