/**
 * @file
 * Extension X6: the adaptive update/invalidate hybrid's crossover.
 *
 * The update-vs-invalidate trade-off pivots on the write-run length:
 * short runs with prompt remote re-reads favour Dragon's in-place
 * updates, long private runs favour invalidation (one miss instead of
 * a broadcast per store). The hybrid tracks wasted broadcasts per
 * block and switches policy at a threshold, so it should hug whichever
 * pure protocol wins at each run length — analytically (sweeping apl)
 * and in the trace simulator (a writer/reader microbenchmark with a
 * controlled run length).
 */

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/swcc.hh"
#include "sim/cache/dragon_protocol.hh"
#include "sim/cache/hybrid_protocol.hh"
#include "sim/cache/mesi_family_protocol.hh"
#include "sim/trace/trace_buffer.hh"

namespace
{

using namespace swcc;

/** Shared block hammered by the microbenchmark. */
constexpr Addr kSharedBlock = 0x8000'0000;

/**
 * A writer/reader ping-pong with @p run stores per hand-off: CPU 0
 * writes the shared block @p run times, then CPU 1 reads it once,
 * repeated for @p cycles rounds.
 */
TraceBuffer
pingPongTrace(unsigned run, unsigned cycles)
{
    TraceBuffer trace;
    trace.append(0, RefType::Load, kSharedBlock);
    trace.append(1, RefType::Load, kSharedBlock);
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        for (unsigned i = 0; i < run; ++i) {
            trace.append(0, RefType::Store, kSharedBlock + 4);
        }
        trace.append(1, RefType::Load, kSharedBlock + 4);
    }
    return trace;
}

/**
 * Replays @p trace through @p protocol in interleaved trace order (the
 * hand-off pattern is the experiment, so the timing simulator's
 * per-processor scheduling must not reorder it) and counts bus work.
 */
struct ReplayTally
{
    std::uint64_t broadcasts = 0;
    std::uint64_t misses = 0;
};

ReplayTally
replay(CoherenceProtocol &protocol, const TraceBuffer &trace)
{
    ReplayTally tally;
    for (const TraceEvent &event : trace) {
        AccessResult result;
        protocol.access(event.cpu, event.type, event.addr, result);
        for (std::size_t i = 0; i < result.numOps; ++i) {
            switch (result.ops[i]) {
              case Operation::WriteBroadcast:
                ++tally.broadcasts;
                break;
              case Operation::CleanMissMem:
              case Operation::DirtyMissMem:
              case Operation::CleanMissCache:
              case Operation::DirtyMissCache:
                ++tally.misses;
                break;
              default:
                break;
            }
        }
    }
    return tally;
}

} // namespace

int
main()
{
    std::cout << "=== X6: adaptive hybrid crossover between update and "
                 "invalidate ===\n\n";

    std::cout << "Analytical model, 16 CPUs, middle parameters, "
                 "sweeping the write-run length:\n\n";
    TextTable model_table({"apl", "Dragon", "MESI", "Hybrid",
                           "hybrid policy"});
    for (double apl : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
        WorkloadParams params = middleParams();
        params.apl = apl;
        const double dragon =
            evaluateBus(Scheme::Dragon, params, 16).processingPower;
        const double mesi =
            evaluateBus(Scheme::Mesi, params, 16).processingPower;
        const double hybrid =
            evaluateBus(Scheme::Hybrid, params, 16).processingPower;
        const char *policy =
            std::abs(hybrid - dragon) <= std::abs(hybrid - mesi)
                ? "update (Dragon)"
                : "invalidate (MESI)";
        model_table.addRow({formatNumber(apl, 0),
                            formatNumber(dragon, 2),
                            formatNumber(mesi, 2),
                            formatNumber(hybrid, 2), policy});
    }
    model_table.print(std::cout);
    exportCsv(model_table, "x6_hybrid_crossover_model");

    std::cout << "\nProtocol replay, 2 CPUs, writer/reader ping-pong, "
                 "200 hand-offs per run length:\n\n";
    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;

    TextTable sim_table({"stores/hand-off", "Dragon broadcasts",
                         "Dragon misses", "MESI broadcasts",
                         "MESI misses", "Hybrid broadcasts",
                         "Hybrid misses"});
    for (unsigned run : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const TraceBuffer trace = pingPongTrace(run, 200);

        DragonProtocol dragon_protocol(cache, 2);
        const ReplayTally dragon = replay(dragon_protocol, trace);
        MesiFamilyProtocol mesi_protocol(MesiVariant::Mesi, cache, 2);
        const ReplayTally mesi = replay(mesi_protocol, trace);
        HybridProtocol hybrid_protocol(cache, 2);
        const ReplayTally hybrid = replay(hybrid_protocol, trace);

        sim_table.addRow(
            {formatNumber(run, 0),
             formatNumber(static_cast<double>(dragon.broadcasts), 0),
             formatNumber(static_cast<double>(dragon.misses), 0),
             formatNumber(static_cast<double>(mesi.broadcasts), 0),
             formatNumber(static_cast<double>(mesi.misses), 0),
             formatNumber(static_cast<double>(hybrid.broadcasts), 0),
             formatNumber(static_cast<double>(hybrid.misses), 0)});
    }
    sim_table.print(std::cout);
    exportCsv(sim_table, "x6_hybrid_crossover_sim");

    std::cout
        << "\nFindings: at one store per hand-off every broadcast is "
           "useful and the hybrid\nstays in update mode, matching "
           "Dragon's broadcast count without MESI's per-hand-off\n"
           "coherence miss; as the run lengthens the wasted-broadcast "
           "counter trips, blocks\nflip to invalidate mode, and the "
           "hybrid's broadcast count collapses to MESI's\none-per-run. "
           "The analytical table shows the same crossover in apl: the "
           "hybrid\ntracks the better pure policy at every point.\n";
    return 0;
}
