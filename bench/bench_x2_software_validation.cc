/**
 * @file
 * Extension X2: model-vs-simulation validation of the *software*
 * schemes. The paper could not validate these ("the traces are from a
 * multiprocessor that used hardware for cache coherence"); our
 * synthetic traces carry flush instructions and a marked shared
 * region, so the Software-Flush and No-Cache models can be checked
 * the same way as Base and Dragon.
 */

#include <array>
#include <iostream>
#include <vector>

#include "core/campaign/campaign.hh"
#include "core/obs/obs.hh"
#include "core/parallel.hh"
#include "core/swcc.hh"
#include "sim/mp/validation.hh"

int
main(int argc, char **argv)
{
    using namespace swcc;
    obs::consumeArgs(argc, argv);

    std::cout << "=== X2: software-scheme validation (64KB caches) "
                 "===\n\n";

    constexpr std::array kSchemes{Scheme::SoftwareFlush,
                                  Scheme::NoCache};
    constexpr CpuId kMaxCpus = 4;

    // Journaled + resumable when SWCC_JOURNAL_DIR is set.
    const campaign::CampaignOptions campaign_options =
        campaign::envCampaignOptions("x2");

    for (AppProfile profile :
         {AppProfile::PopsLike, AppProfile::PeroLike}) {
        // Each scheme's 1..kMaxCpus cells fan across the pool inside
        // validate(); render in row order.
        std::vector<ValidationPoint> points;
        for (Scheme scheme : kSchemes) {
            ValidationConfig config;
            config.profile = profile;
            config.scheme = scheme;
            config.cacheBytes = 64 * 1024;
            config.maxCpus = kMaxCpus;
            config.instructionsPerCpu = 120'000;
            config.seed = 77;
            const std::vector<ValidationPoint> scheme_points =
                validate(config, campaign_options);
            points.insert(points.end(), scheme_points.begin(),
                          scheme_points.end());
        }

        std::cout << "--- " << profileName(profile) << " ---\n";
        TextTable table({"scheme", "cpus", "sim power", "model power",
                         "error %"});
        for (const ValidationPoint &point : points) {
            table.addRow({std::string(schemeName(point.scheme)),
                          formatNumber(point.cpus, 0),
                          formatNumber(point.simPower, 3),
                          formatNumber(point.modelPower, 3),
                          formatNumber(point.errorPercent(), 1)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // Side experiment: how good is the model's "one clean refetch miss
    // per flush" approximation? Compare flush counts against refetch
    // misses measured by the Software-Flush simulator.
    std::cout << "Flush bookkeeping (pops-like, 4 CPUs):\n\n";
    ValidationConfig config;
    config.profile = AppProfile::PopsLike;
    config.scheme = Scheme::SoftwareFlush;
    config.maxCpus = 4;
    config.instructionsPerCpu = 120'000;
    config.seed = 77;
    const ValidationPoint point = validatePoint(config, config.maxCpus);
    const SimStats &stats = point.sim;
    TextTable flush_table({"quantity", "value"});
    flush_table.addRow(
        {"flush instructions",
         formatNumber(static_cast<double>(
             stats.opCount(Operation::CleanFlush) +
             stats.opCount(Operation::DirtyFlush)), 0)});
    flush_table.addRow(
        {"dirty flushes", formatNumber(static_cast<double>(
             stats.opCount(Operation::DirtyFlush)), 0)});
    flush_table.addRow(
        {"data misses", formatNumber(static_cast<double>(
             stats.dataMisses), 0)});
    flush_table.print(std::cout);

    std::cout << "\nFinding: extracted-parameter model predictions "
                 "track the simulated software\nschemes about as well "
                 "as the hardware schemes, extending the paper's "
                 "validation.\n";
    obs::finalize();
    return 0;
}
