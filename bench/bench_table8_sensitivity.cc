/**
 * @file
 * Reproduces Table 8: per-parameter sensitivity of execution time,
 * reported as the percent change when a parameter moves from its low
 * to its high value with every other parameter held at its middle
 * value (16-processor bus system).
 */

#include <iostream>

#include "core/campaign/campaign.hh"
#include "core/obs/obs.hh"
#include "core/swcc.hh"

int
main(int argc, char **argv)
{
    using namespace swcc;
    obs::consumeArgs(argc, argv);

    SensitivityConfig config;
    config.processors = 16;
    // Journaled + resumable when SWCC_JOURNAL_DIR is set (see
    // campaign.hh); the default is a plain uncheckpointed run.
    campaign::CampaignReport report;
    const auto table = sensitivityTable(
        config, campaign::envCampaignOptions("table8"), &report);

    std::cout << "Table 8: Sensitivity to parameter variation "
                 "(% change in execution time, low -> high,\n"
                 "all other parameters at middle values; "
              << config.processors << "-processor bus)\n\n";

    TextTable out({"Parameter", "Software-Flush", "No-Cache", "Dragon",
                   "Base"});
    for (ParamId param : kAllParams) {
        std::vector<std::string> row{std::string(paramName(param))};
        for (Scheme scheme : {Scheme::SoftwareFlush, Scheme::NoCache,
                              Scheme::Dragon, Scheme::Base}) {
            for (const SensitivityEntry &entry : table) {
                if (entry.param == param && entry.scheme == scheme) {
                    row.push_back(formatNumber(entry.percentChange, 1));
                }
            }
        }
        out.addRow(std::move(row));
    }
    out.print(std::cout);
    exportCsv(out, "table8_sensitivity");

    std::cout << "\nRanking by |% change| per scheme:\n";
    for (Scheme scheme : {Scheme::SoftwareFlush, Scheme::NoCache,
                          Scheme::Dragon, Scheme::Base}) {
        std::cout << "  " << schemeName(scheme) << ":";
        for (const SensitivityEntry &entry :
             rankedSensitivities(table, scheme)) {
            if (std::abs(entry.percentChange) < 0.5) {
                continue;
            }
            std::cout << ' ' << paramName(entry.param) << " ("
                      << formatNumber(entry.percentChange, 0) << "%)";
        }
        std::cout << '\n';
    }

    std::cout << "\nPaper's qualitative claims to compare against:\n"
                 "  - Software-Flush: apl has a huge effect, shd almost "
                 "as great, ls significant,\n"
                 "    miss rates noticeably smaller, others minor.\n"
                 "  - No-Cache: same picture minus apl.\n"
                 "  - Dragon: overall hit rate beats sharing level.\n"
                 "  - wr unimportant everywhere.\n";
    if (report.fromJournal + report.retries + report.poisoned > 0) {
        std::cerr << "campaign: " << report.summary() << '\n';
    }
    obs::finalize();
    return 0;
}
