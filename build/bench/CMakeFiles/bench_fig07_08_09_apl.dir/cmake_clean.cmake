file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_08_09_apl.dir/bench_fig07_08_09_apl.cc.o"
  "CMakeFiles/bench_fig07_08_09_apl.dir/bench_fig07_08_09_apl.cc.o.d"
  "bench_fig07_08_09_apl"
  "bench_fig07_08_09_apl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_08_09_apl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
