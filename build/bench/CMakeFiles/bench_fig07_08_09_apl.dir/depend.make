# Empty dependencies file for bench_fig07_08_09_apl.
# This may be replaced when dependencies are built.
