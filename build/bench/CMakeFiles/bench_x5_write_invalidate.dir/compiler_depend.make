# Empty compiler generated dependencies file for bench_x5_write_invalidate.
# This may be replaced when dependencies are built.
