file(REMOVE_RECURSE
  "CMakeFiles/bench_x5_write_invalidate.dir/bench_x5_write_invalidate.cc.o"
  "CMakeFiles/bench_x5_write_invalidate.dir/bench_x5_write_invalidate.cc.o.d"
  "bench_x5_write_invalidate"
  "bench_x5_write_invalidate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x5_write_invalidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
