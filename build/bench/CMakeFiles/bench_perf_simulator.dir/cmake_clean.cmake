file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_simulator.dir/bench_perf_simulator.cc.o"
  "CMakeFiles/bench_perf_simulator.dir/bench_perf_simulator.cc.o.d"
  "bench_perf_simulator"
  "bench_perf_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
