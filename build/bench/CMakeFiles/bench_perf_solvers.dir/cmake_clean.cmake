file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_solvers.dir/bench_perf_solvers.cc.o"
  "CMakeFiles/bench_perf_solvers.dir/bench_perf_solvers.cc.o.d"
  "bench_perf_solvers"
  "bench_perf_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
