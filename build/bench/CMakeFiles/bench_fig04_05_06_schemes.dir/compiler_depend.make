# Empty compiler generated dependencies file for bench_fig04_05_06_schemes.
# This may be replaced when dependencies are built.
