file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_05_06_schemes.dir/bench_fig04_05_06_schemes.cc.o"
  "CMakeFiles/bench_fig04_05_06_schemes.dir/bench_fig04_05_06_schemes.cc.o.d"
  "bench_fig04_05_06_schemes"
  "bench_fig04_05_06_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_05_06_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
