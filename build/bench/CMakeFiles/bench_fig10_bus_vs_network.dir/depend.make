# Empty dependencies file for bench_fig10_bus_vs_network.
# This may be replaced when dependencies are built.
