# Empty dependencies file for bench_x4_directory.
# This may be replaced when dependencies are built.
