file(REMOVE_RECURSE
  "CMakeFiles/bench_x4_directory.dir/bench_x4_directory.cc.o"
  "CMakeFiles/bench_x4_directory.dir/bench_x4_directory.cc.o.d"
  "bench_x4_directory"
  "bench_x4_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x4_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
