file(REMOVE_RECURSE
  "CMakeFiles/bench_x3_packet_switching.dir/bench_x3_packet_switching.cc.o"
  "CMakeFiles/bench_x3_packet_switching.dir/bench_x3_packet_switching.cc.o.d"
  "bench_x3_packet_switching"
  "bench_x3_packet_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x3_packet_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
