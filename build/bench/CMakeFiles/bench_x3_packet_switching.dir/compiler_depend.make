# Empty compiler generated dependencies file for bench_x3_packet_switching.
# This may be replaced when dependencies are built.
