file(REMOVE_RECURSE
  "CMakeFiles/bench_x2_software_validation.dir/bench_x2_software_validation.cc.o"
  "CMakeFiles/bench_x2_software_validation.dir/bench_x2_software_validation.cc.o.d"
  "bench_x2_software_validation"
  "bench_x2_software_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x2_software_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
