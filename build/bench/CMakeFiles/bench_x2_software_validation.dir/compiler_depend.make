# Empty compiler generated dependencies file for bench_x2_software_validation.
# This may be replaced when dependencies are built.
