file(REMOVE_RECURSE
  "CMakeFiles/bench_x1_network_validation.dir/bench_x1_network_validation.cc.o"
  "CMakeFiles/bench_x1_network_validation.dir/bench_x1_network_validation.cc.o.d"
  "bench_x1_network_validation"
  "bench_x1_network_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x1_network_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
