# Empty dependencies file for bench_x1_network_validation.
# This may be replaced when dependencies are built.
