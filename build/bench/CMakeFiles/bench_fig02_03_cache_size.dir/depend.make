# Empty dependencies file for bench_fig02_03_cache_size.
# This may be replaced when dependencies are built.
