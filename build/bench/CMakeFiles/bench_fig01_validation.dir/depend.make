# Empty dependencies file for bench_fig01_validation.
# This may be replaced when dependencies are built.
