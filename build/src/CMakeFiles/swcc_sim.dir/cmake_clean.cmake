file(REMOVE_RECURSE
  "CMakeFiles/swcc_sim.dir/sim/bus/bus.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/bus/bus.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/cache/base_protocol.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/cache/base_protocol.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/cache/cache.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/cache/cache.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/cache/coherence.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/cache/coherence.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/cache/dragon_protocol.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/cache/dragon_protocol.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/cache/invalidate_protocol.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/cache/invalidate_protocol.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/cache/nocache_protocol.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/cache/nocache_protocol.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/cache/swflush_protocol.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/cache/swflush_protocol.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/mp/param_extractor.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/mp/param_extractor.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/mp/sim_stats.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/mp/sim_stats.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/mp/system.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/mp/system.cc.o.d"
  "CMakeFiles/swcc_sim.dir/sim/mp/validation.cc.o"
  "CMakeFiles/swcc_sim.dir/sim/mp/validation.cc.o.d"
  "libswcc_sim.a"
  "libswcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
