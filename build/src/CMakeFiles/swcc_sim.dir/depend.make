# Empty dependencies file for swcc_sim.
# This may be replaced when dependencies are built.
