
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bus/bus.cc" "src/CMakeFiles/swcc_sim.dir/sim/bus/bus.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/bus/bus.cc.o.d"
  "/root/repo/src/sim/cache/base_protocol.cc" "src/CMakeFiles/swcc_sim.dir/sim/cache/base_protocol.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/cache/base_protocol.cc.o.d"
  "/root/repo/src/sim/cache/cache.cc" "src/CMakeFiles/swcc_sim.dir/sim/cache/cache.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/cache/cache.cc.o.d"
  "/root/repo/src/sim/cache/coherence.cc" "src/CMakeFiles/swcc_sim.dir/sim/cache/coherence.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/cache/coherence.cc.o.d"
  "/root/repo/src/sim/cache/dragon_protocol.cc" "src/CMakeFiles/swcc_sim.dir/sim/cache/dragon_protocol.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/cache/dragon_protocol.cc.o.d"
  "/root/repo/src/sim/cache/invalidate_protocol.cc" "src/CMakeFiles/swcc_sim.dir/sim/cache/invalidate_protocol.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/cache/invalidate_protocol.cc.o.d"
  "/root/repo/src/sim/cache/nocache_protocol.cc" "src/CMakeFiles/swcc_sim.dir/sim/cache/nocache_protocol.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/cache/nocache_protocol.cc.o.d"
  "/root/repo/src/sim/cache/swflush_protocol.cc" "src/CMakeFiles/swcc_sim.dir/sim/cache/swflush_protocol.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/cache/swflush_protocol.cc.o.d"
  "/root/repo/src/sim/mp/param_extractor.cc" "src/CMakeFiles/swcc_sim.dir/sim/mp/param_extractor.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/mp/param_extractor.cc.o.d"
  "/root/repo/src/sim/mp/sim_stats.cc" "src/CMakeFiles/swcc_sim.dir/sim/mp/sim_stats.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/mp/sim_stats.cc.o.d"
  "/root/repo/src/sim/mp/system.cc" "src/CMakeFiles/swcc_sim.dir/sim/mp/system.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/mp/system.cc.o.d"
  "/root/repo/src/sim/mp/validation.cc" "src/CMakeFiles/swcc_sim.dir/sim/mp/validation.cc.o" "gcc" "src/CMakeFiles/swcc_sim.dir/sim/mp/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swcc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swcc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
