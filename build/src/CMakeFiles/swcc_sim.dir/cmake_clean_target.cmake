file(REMOVE_RECURSE
  "libswcc_sim.a"
)
