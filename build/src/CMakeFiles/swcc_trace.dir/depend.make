# Empty dependencies file for swcc_trace.
# This may be replaced when dependencies are built.
