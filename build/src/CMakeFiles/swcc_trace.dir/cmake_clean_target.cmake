file(REMOVE_RECURSE
  "libswcc_trace.a"
)
