file(REMOVE_RECURSE
  "CMakeFiles/swcc_trace.dir/sim/synth/app_profiles.cc.o"
  "CMakeFiles/swcc_trace.dir/sim/synth/app_profiles.cc.o.d"
  "CMakeFiles/swcc_trace.dir/sim/synth/rng.cc.o"
  "CMakeFiles/swcc_trace.dir/sim/synth/rng.cc.o.d"
  "CMakeFiles/swcc_trace.dir/sim/synth/trace_generator.cc.o"
  "CMakeFiles/swcc_trace.dir/sim/synth/trace_generator.cc.o.d"
  "CMakeFiles/swcc_trace.dir/sim/synth/workload_config.cc.o"
  "CMakeFiles/swcc_trace.dir/sim/synth/workload_config.cc.o.d"
  "CMakeFiles/swcc_trace.dir/sim/trace/trace_buffer.cc.o"
  "CMakeFiles/swcc_trace.dir/sim/trace/trace_buffer.cc.o.d"
  "CMakeFiles/swcc_trace.dir/sim/trace/trace_io.cc.o"
  "CMakeFiles/swcc_trace.dir/sim/trace/trace_io.cc.o.d"
  "CMakeFiles/swcc_trace.dir/sim/trace/trace_stats.cc.o"
  "CMakeFiles/swcc_trace.dir/sim/trace/trace_stats.cc.o.d"
  "libswcc_trace.a"
  "libswcc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
