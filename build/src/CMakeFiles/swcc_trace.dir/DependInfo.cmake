
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/synth/app_profiles.cc" "src/CMakeFiles/swcc_trace.dir/sim/synth/app_profiles.cc.o" "gcc" "src/CMakeFiles/swcc_trace.dir/sim/synth/app_profiles.cc.o.d"
  "/root/repo/src/sim/synth/rng.cc" "src/CMakeFiles/swcc_trace.dir/sim/synth/rng.cc.o" "gcc" "src/CMakeFiles/swcc_trace.dir/sim/synth/rng.cc.o.d"
  "/root/repo/src/sim/synth/trace_generator.cc" "src/CMakeFiles/swcc_trace.dir/sim/synth/trace_generator.cc.o" "gcc" "src/CMakeFiles/swcc_trace.dir/sim/synth/trace_generator.cc.o.d"
  "/root/repo/src/sim/synth/workload_config.cc" "src/CMakeFiles/swcc_trace.dir/sim/synth/workload_config.cc.o" "gcc" "src/CMakeFiles/swcc_trace.dir/sim/synth/workload_config.cc.o.d"
  "/root/repo/src/sim/trace/trace_buffer.cc" "src/CMakeFiles/swcc_trace.dir/sim/trace/trace_buffer.cc.o" "gcc" "src/CMakeFiles/swcc_trace.dir/sim/trace/trace_buffer.cc.o.d"
  "/root/repo/src/sim/trace/trace_io.cc" "src/CMakeFiles/swcc_trace.dir/sim/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/swcc_trace.dir/sim/trace/trace_io.cc.o.d"
  "/root/repo/src/sim/trace/trace_stats.cc" "src/CMakeFiles/swcc_trace.dir/sim/trace/trace_stats.cc.o" "gcc" "src/CMakeFiles/swcc_trace.dir/sim/trace/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swcc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
