# Empty dependencies file for swcc_core.
# This may be replaced when dependencies are built.
