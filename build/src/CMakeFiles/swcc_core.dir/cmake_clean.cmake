file(REMOVE_RECURSE
  "CMakeFiles/swcc_core.dir/core/breakdown.cc.o"
  "CMakeFiles/swcc_core.dir/core/breakdown.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/bus_model.cc.o"
  "CMakeFiles/swcc_core.dir/core/bus_model.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/cost_model.cc.o"
  "CMakeFiles/swcc_core.dir/core/cost_model.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/directory_model.cc.o"
  "CMakeFiles/swcc_core.dir/core/directory_model.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/frequency_model.cc.o"
  "CMakeFiles/swcc_core.dir/core/frequency_model.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/invalidate_model.cc.o"
  "CMakeFiles/swcc_core.dir/core/invalidate_model.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/network_model.cc.o"
  "CMakeFiles/swcc_core.dir/core/network_model.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/operation.cc.o"
  "CMakeFiles/swcc_core.dir/core/operation.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/packet_network_model.cc.o"
  "CMakeFiles/swcc_core.dir/core/packet_network_model.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/per_instruction.cc.o"
  "CMakeFiles/swcc_core.dir/core/per_instruction.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/report.cc.o"
  "CMakeFiles/swcc_core.dir/core/report.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/scheme_evaluator.cc.o"
  "CMakeFiles/swcc_core.dir/core/scheme_evaluator.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/sensitivity.cc.o"
  "CMakeFiles/swcc_core.dir/core/sensitivity.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/sweep.cc.o"
  "CMakeFiles/swcc_core.dir/core/sweep.cc.o.d"
  "CMakeFiles/swcc_core.dir/core/workload.cc.o"
  "CMakeFiles/swcc_core.dir/core/workload.cc.o.d"
  "libswcc_core.a"
  "libswcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
