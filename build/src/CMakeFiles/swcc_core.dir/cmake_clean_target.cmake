file(REMOVE_RECURSE
  "libswcc_core.a"
)
