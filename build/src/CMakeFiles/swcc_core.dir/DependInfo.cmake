
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/breakdown.cc" "src/CMakeFiles/swcc_core.dir/core/breakdown.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/breakdown.cc.o.d"
  "/root/repo/src/core/bus_model.cc" "src/CMakeFiles/swcc_core.dir/core/bus_model.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/bus_model.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/swcc_core.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/directory_model.cc" "src/CMakeFiles/swcc_core.dir/core/directory_model.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/directory_model.cc.o.d"
  "/root/repo/src/core/frequency_model.cc" "src/CMakeFiles/swcc_core.dir/core/frequency_model.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/frequency_model.cc.o.d"
  "/root/repo/src/core/invalidate_model.cc" "src/CMakeFiles/swcc_core.dir/core/invalidate_model.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/invalidate_model.cc.o.d"
  "/root/repo/src/core/network_model.cc" "src/CMakeFiles/swcc_core.dir/core/network_model.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/network_model.cc.o.d"
  "/root/repo/src/core/operation.cc" "src/CMakeFiles/swcc_core.dir/core/operation.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/operation.cc.o.d"
  "/root/repo/src/core/packet_network_model.cc" "src/CMakeFiles/swcc_core.dir/core/packet_network_model.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/packet_network_model.cc.o.d"
  "/root/repo/src/core/per_instruction.cc" "src/CMakeFiles/swcc_core.dir/core/per_instruction.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/per_instruction.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/swcc_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/scheme_evaluator.cc" "src/CMakeFiles/swcc_core.dir/core/scheme_evaluator.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/scheme_evaluator.cc.o.d"
  "/root/repo/src/core/sensitivity.cc" "src/CMakeFiles/swcc_core.dir/core/sensitivity.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/sensitivity.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/CMakeFiles/swcc_core.dir/core/sweep.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/sweep.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/CMakeFiles/swcc_core.dir/core/workload.cc.o" "gcc" "src/CMakeFiles/swcc_core.dir/core/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
