# Empty dependencies file for swcc_net.
# This may be replaced when dependencies are built.
