file(REMOVE_RECURSE
  "CMakeFiles/swcc_net.dir/sim/net/net_experiment.cc.o"
  "CMakeFiles/swcc_net.dir/sim/net/net_experiment.cc.o.d"
  "CMakeFiles/swcc_net.dir/sim/net/net_source.cc.o"
  "CMakeFiles/swcc_net.dir/sim/net/net_source.cc.o.d"
  "CMakeFiles/swcc_net.dir/sim/net/omega_network.cc.o"
  "CMakeFiles/swcc_net.dir/sim/net/omega_network.cc.o.d"
  "CMakeFiles/swcc_net.dir/sim/net/packet_network.cc.o"
  "CMakeFiles/swcc_net.dir/sim/net/packet_network.cc.o.d"
  "libswcc_net.a"
  "libswcc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
