
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/net/net_experiment.cc" "src/CMakeFiles/swcc_net.dir/sim/net/net_experiment.cc.o" "gcc" "src/CMakeFiles/swcc_net.dir/sim/net/net_experiment.cc.o.d"
  "/root/repo/src/sim/net/net_source.cc" "src/CMakeFiles/swcc_net.dir/sim/net/net_source.cc.o" "gcc" "src/CMakeFiles/swcc_net.dir/sim/net/net_source.cc.o.d"
  "/root/repo/src/sim/net/omega_network.cc" "src/CMakeFiles/swcc_net.dir/sim/net/omega_network.cc.o" "gcc" "src/CMakeFiles/swcc_net.dir/sim/net/omega_network.cc.o.d"
  "/root/repo/src/sim/net/packet_network.cc" "src/CMakeFiles/swcc_net.dir/sim/net/packet_network.cc.o" "gcc" "src/CMakeFiles/swcc_net.dir/sim/net/packet_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swcc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
