file(REMOVE_RECURSE
  "libswcc_net.a"
)
