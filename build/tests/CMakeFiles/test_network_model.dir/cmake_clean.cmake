file(REMOVE_RECURSE
  "CMakeFiles/test_network_model.dir/core/test_network_model.cc.o"
  "CMakeFiles/test_network_model.dir/core/test_network_model.cc.o.d"
  "test_network_model"
  "test_network_model.pdb"
  "test_network_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
