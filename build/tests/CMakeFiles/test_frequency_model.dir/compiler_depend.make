# Empty compiler generated dependencies file for test_frequency_model.
# This may be replaced when dependencies are built.
