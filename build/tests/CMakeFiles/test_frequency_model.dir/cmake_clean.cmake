file(REMOVE_RECURSE
  "CMakeFiles/test_frequency_model.dir/core/test_frequency_model.cc.o"
  "CMakeFiles/test_frequency_model.dir/core/test_frequency_model.cc.o.d"
  "test_frequency_model"
  "test_frequency_model.pdb"
  "test_frequency_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequency_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
