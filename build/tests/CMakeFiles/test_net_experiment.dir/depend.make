# Empty dependencies file for test_net_experiment.
# This may be replaced when dependencies are built.
