file(REMOVE_RECURSE
  "CMakeFiles/test_net_experiment.dir/sim/test_net_experiment.cc.o"
  "CMakeFiles/test_net_experiment.dir/sim/test_net_experiment.cc.o.d"
  "test_net_experiment"
  "test_net_experiment.pdb"
  "test_net_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
