file(REMOVE_RECURSE
  "CMakeFiles/test_packet_network.dir/sim/test_packet_network.cc.o"
  "CMakeFiles/test_packet_network.dir/sim/test_packet_network.cc.o.d"
  "test_packet_network"
  "test_packet_network.pdb"
  "test_packet_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
