# Empty dependencies file for test_packet_network.
# This may be replaced when dependencies are built.
