file(REMOVE_RECURSE
  "CMakeFiles/test_per_instruction.dir/core/test_per_instruction.cc.o"
  "CMakeFiles/test_per_instruction.dir/core/test_per_instruction.cc.o.d"
  "test_per_instruction"
  "test_per_instruction.pdb"
  "test_per_instruction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_per_instruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
