# Empty dependencies file for test_per_instruction.
# This may be replaced when dependencies are built.
