file(REMOVE_RECURSE
  "CMakeFiles/test_scheme_evaluator.dir/core/test_scheme_evaluator.cc.o"
  "CMakeFiles/test_scheme_evaluator.dir/core/test_scheme_evaluator.cc.o.d"
  "test_scheme_evaluator"
  "test_scheme_evaluator.pdb"
  "test_scheme_evaluator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheme_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
