# Empty compiler generated dependencies file for test_scheme_evaluator.
# This may be replaced when dependencies are built.
