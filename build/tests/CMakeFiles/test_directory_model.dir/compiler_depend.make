# Empty compiler generated dependencies file for test_directory_model.
# This may be replaced when dependencies are built.
