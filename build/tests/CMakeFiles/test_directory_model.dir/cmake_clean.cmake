file(REMOVE_RECURSE
  "CMakeFiles/test_directory_model.dir/core/test_directory_model.cc.o"
  "CMakeFiles/test_directory_model.dir/core/test_directory_model.cc.o.d"
  "test_directory_model"
  "test_directory_model.pdb"
  "test_directory_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directory_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
