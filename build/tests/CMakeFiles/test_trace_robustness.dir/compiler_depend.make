# Empty compiler generated dependencies file for test_trace_robustness.
# This may be replaced when dependencies are built.
