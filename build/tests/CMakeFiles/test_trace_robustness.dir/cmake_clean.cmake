file(REMOVE_RECURSE
  "CMakeFiles/test_trace_robustness.dir/sim/test_trace_robustness.cc.o"
  "CMakeFiles/test_trace_robustness.dir/sim/test_trace_robustness.cc.o.d"
  "test_trace_robustness"
  "test_trace_robustness.pdb"
  "test_trace_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
