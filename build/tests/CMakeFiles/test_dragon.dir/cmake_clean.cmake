file(REMOVE_RECURSE
  "CMakeFiles/test_dragon.dir/sim/test_dragon.cc.o"
  "CMakeFiles/test_dragon.dir/sim/test_dragon.cc.o.d"
  "test_dragon"
  "test_dragon.pdb"
  "test_dragon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dragon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
