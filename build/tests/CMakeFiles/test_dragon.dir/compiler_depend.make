# Empty compiler generated dependencies file for test_dragon.
# This may be replaced when dependencies are built.
