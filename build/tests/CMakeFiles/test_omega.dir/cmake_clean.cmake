file(REMOVE_RECURSE
  "CMakeFiles/test_omega.dir/sim/test_omega.cc.o"
  "CMakeFiles/test_omega.dir/sim/test_omega.cc.o.d"
  "test_omega"
  "test_omega.pdb"
  "test_omega[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
