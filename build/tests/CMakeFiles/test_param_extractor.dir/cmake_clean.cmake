file(REMOVE_RECURSE
  "CMakeFiles/test_param_extractor.dir/sim/test_param_extractor.cc.o"
  "CMakeFiles/test_param_extractor.dir/sim/test_param_extractor.cc.o.d"
  "test_param_extractor"
  "test_param_extractor.pdb"
  "test_param_extractor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
