file(REMOVE_RECURSE
  "CMakeFiles/test_cache_sweep.dir/sim/test_cache_sweep.cc.o"
  "CMakeFiles/test_cache_sweep.dir/sim/test_cache_sweep.cc.o.d"
  "test_cache_sweep"
  "test_cache_sweep.pdb"
  "test_cache_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
