file(REMOVE_RECURSE
  "CMakeFiles/test_operation.dir/core/test_operation.cc.o"
  "CMakeFiles/test_operation.dir/core/test_operation.cc.o.d"
  "test_operation"
  "test_operation.pdb"
  "test_operation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
