file(REMOVE_RECURSE
  "CMakeFiles/test_invalidate.dir/sim/test_invalidate.cc.o"
  "CMakeFiles/test_invalidate.dir/sim/test_invalidate.cc.o.d"
  "test_invalidate"
  "test_invalidate.pdb"
  "test_invalidate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_invalidate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
