file(REMOVE_RECURSE
  "CMakeFiles/compiler_advisor.dir/compiler_advisor.cc.o"
  "CMakeFiles/compiler_advisor.dir/compiler_advisor.cc.o.d"
  "compiler_advisor"
  "compiler_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
