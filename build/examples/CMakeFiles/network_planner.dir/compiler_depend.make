# Empty compiler generated dependencies file for network_planner.
# This may be replaced when dependencies are built.
