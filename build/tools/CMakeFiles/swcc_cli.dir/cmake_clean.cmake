file(REMOVE_RECURSE
  "CMakeFiles/swcc_cli.dir/cli/commands.cc.o"
  "CMakeFiles/swcc_cli.dir/cli/commands.cc.o.d"
  "CMakeFiles/swcc_cli.dir/cli/options.cc.o"
  "CMakeFiles/swcc_cli.dir/cli/options.cc.o.d"
  "libswcc_cli.a"
  "libswcc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
