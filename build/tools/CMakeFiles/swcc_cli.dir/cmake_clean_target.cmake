file(REMOVE_RECURSE
  "libswcc_cli.a"
)
