# Empty dependencies file for swcc_cli.
# This may be replaced when dependencies are built.
