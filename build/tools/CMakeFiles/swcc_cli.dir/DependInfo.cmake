
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cli/commands.cc" "tools/CMakeFiles/swcc_cli.dir/cli/commands.cc.o" "gcc" "tools/CMakeFiles/swcc_cli.dir/cli/commands.cc.o.d"
  "/root/repo/tools/cli/options.cc" "tools/CMakeFiles/swcc_cli.dir/cli/options.cc.o" "gcc" "tools/CMakeFiles/swcc_cli.dir/cli/options.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/swcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swcc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swcc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
