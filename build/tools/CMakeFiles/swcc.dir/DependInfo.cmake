
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cli/main.cc" "tools/CMakeFiles/swcc.dir/cli/main.cc.o" "gcc" "tools/CMakeFiles/swcc.dir/cli/main.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tools/CMakeFiles/swcc_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swcc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swcc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/swcc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
