# Empty dependencies file for swcc.
# This may be replaced when dependencies are built.
