file(REMOVE_RECURSE
  "CMakeFiles/swcc.dir/cli/main.cc.o"
  "CMakeFiles/swcc.dir/cli/main.cc.o.d"
  "swcc"
  "swcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
