/**
 * @file
 * proto_check: protocol-conformance checker for the CI matrix.
 *
 * Replays one trace — synthetic by default, or a file given with
 * --trace — under two coherence schemes and checks the invariants that
 * must hold between any pair of protocols on the same reference
 * stream:
 *
 *  - snoop-path identity: for each scheme, the optimized directory
 *    path and the retained reference scan produce byte-identical
 *    serialized statistics;
 *  - stream identity: both schemes execute the same per-processor
 *    instruction and data-reference counts (protocols decide costs,
 *    never what the program does);
 *  - miss accounting versus Base: an update-based protocol (Dragon)
 *    never invalidates, so its miss counts equal Base's exactly; an
 *    invalidate-based protocol (MESI family, hybrid) can only add
 *    coherence misses on top of Base's;
 *  - cross-cache coherence invariants hold in the final cache state
 *    (single owner, exclusivity, sharer-index consistency).
 *
 * Exits 0 when every check passes, 1 on any violation, 2 on usage
 * errors — so a CI job can run scheme pairs and gate on the result.
 */

#include <cctype>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/cache/coherence.hh"
#include "sim/mp/system.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"
#include "sim/trace/trace_io.hh"

namespace
{

using namespace swcc;

struct CheckOptions
{
    Scheme schemeA = Scheme::Dragon;
    Scheme schemeB = Scheme::Mesi;
    std::string tracePath;
    AppProfile profile = AppProfile::PeroLike;
    unsigned cpus = 8;
    unsigned instructions = 20'000;
    unsigned seed = 17;
};

Scheme
schemeFromName(const std::string &name)
{
    for (Scheme scheme : kAllSchemes) {
        std::string candidate(schemeName(scheme));
        for (char &c : candidate) {
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        }
        if (candidate == name) {
            return scheme;
        }
    }
    throw std::invalid_argument(
        "unknown scheme '" + name +
        "' (expected base, no-cache, software-flush, dragon, mesi, "
        "mesif, moesi, or adaptive-hybrid)");
}

AppProfile
profileFromName(const std::string &name)
{
    for (AppProfile profile : kAllProfiles) {
        if (name == profileName(profile)) {
            return profile;
        }
    }
    throw std::invalid_argument(
        "unknown profile '" + name +
        "' (expected pops-like, thor-like, or pero-like)");
}

/**
 * True for protocols that keep caches consistent in hardware; only
 * these satisfy checkCoherenceInvariants. The software schemes (Base,
 * Software-Flush, No-Cache) tolerate stale copies by design.
 */
bool
hardwareCoherent(Scheme scheme)
{
    return scheme == Scheme::Dragon || scheme == Scheme::Mesi ||
        scheme == Scheme::Mesif || scheme == Scheme::Moesi ||
        scheme == Scheme::Hybrid;
}

/** True for protocols that invalidate copies (can add misses). */
bool
invalidatesCopies(Scheme scheme)
{
    return scheme == Scheme::Mesi || scheme == Scheme::Mesif ||
        scheme == Scheme::Moesi || scheme == Scheme::Hybrid;
}

/**
 * True for schemes whose cache residency matches Base's on any trace:
 * fills on miss, never invalidates, never bypasses the cache.
 */
bool
missesMatchBase(Scheme scheme)
{
    return scheme == Scheme::Base || scheme == Scheme::Dragon;
}

int
usage(std::ostream &os)
{
    os << "usage: proto_check --scheme-a A --scheme-b B [options]\n"
          "  --trace FILE         replay FILE (.swcc binary or text)\n"
          "  --profile NAME       synthetic profile "
          "(default pero-like)\n"
          "  --cpus N             processors (default 8)\n"
          "  --instructions N     per-cpu instructions "
          "(default 20000)\n"
          "  --seed S             generator seed (default 17)\n";
    return 2;
}

CheckOptions
parseArgs(int argc, char **argv)
{
    CheckOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw std::invalid_argument(arg + " needs a value");
            }
            return argv[++i];
        };
        if (arg == "--scheme-a") {
            options.schemeA = schemeFromName(value());
        } else if (arg == "--scheme-b") {
            options.schemeB = schemeFromName(value());
        } else if (arg == "--trace") {
            options.tracePath = value();
        } else if (arg == "--profile") {
            options.profile = profileFromName(value());
        } else if (arg == "--cpus") {
            options.cpus = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--instructions") {
            options.instructions =
                static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--seed") {
            options.seed = static_cast<unsigned>(std::stoul(value()));
        } else {
            throw std::invalid_argument("unknown option " + arg);
        }
    }
    if (options.cpus == 0) {
        throw std::invalid_argument("--cpus must be positive");
    }
    return options;
}

class Checker
{
  public:
    bool
    check(const std::string &label, bool ok, const std::string &detail)
    {
        std::cout << (ok ? "ok   " : "FAIL ") << label;
        if (!ok && !detail.empty()) {
            std::cout << ": " << detail;
        }
        std::cout << '\n';
        allOk_ = allOk_ && ok;
        return ok;
    }

    bool allOk() const { return allOk_; }

  private:
    bool allOk_ = true;
};

/** Runs @p scheme on @p path; returns stats after an invariant check. */
SimStats
runScheme(Scheme scheme, const TraceBuffer &trace,
          const CacheConfig &cache, const SharedClassifier &shared,
          SnoopPath path, Checker &checker)
{
    MultiprocessorSystem system(scheme, cache, trace.numCpus(), shared);
    system.setSnoopPath(path);
    const SimStats stats = system.run(trace);
    if (hardwareCoherent(scheme)) {
        const std::string label = std::string(schemeName(scheme)) +
            ": final coherence invariants (" +
            (system.protocol().snoopPath() == SnoopPath::Directory
                 ? "directory"
                 : "reference-scan") +
            ")";
        try {
            checkCoherenceInvariants(system.protocol());
            checker.check(label, true, "");
        } catch (const std::exception &error) {
            checker.check(label, false, error.what());
        }
    }
    return stats;
}

std::uint64_t
totalMissOps(const SimStats &stats)
{
    return stats.opCount(Operation::CleanMissMem) +
        stats.opCount(Operation::DirtyMissMem) +
        stats.opCount(Operation::CleanMissCache) +
        stats.opCount(Operation::DirtyMissCache);
}

} // namespace

int
main(int argc, char **argv)
{
    CheckOptions options;
    try {
        options = parseArgs(argc, argv);
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n\n";
        return usage(std::cerr);
    }

    TraceBuffer trace;
    SharedClassifier shared;
    try {
        if (!options.tracePath.empty()) {
            trace = loadTrace(options.tracePath);
            shared = [](Addr addr) {
                return addr >= SyntheticWorkloadConfig::kSharedBase;
            };
        } else {
            const SyntheticWorkloadConfig workload = profileConfig(
                options.profile, options.cpus, options.instructions,
                options.seed, false);
            trace = generateTrace(workload);
            shared = workload.sharedClassifier();
        }
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 2;
    }

    CacheConfig cache;
    cache.sizeBytes = 64 * 1024;
    cache.blockBytes = 16;

    Checker checker;
    std::cout << "proto_check: " << schemeName(options.schemeA)
              << " vs " << schemeName(options.schemeB) << " on "
              << trace.size() << " events, "
              << unsigned{trace.numCpus()} << " cpus\n";

    // Snoop-path identity per scheme, on the reference-scan stats.
    SimStats statsA;
    SimStats statsB;
    for (const Scheme scheme : {options.schemeA, options.schemeB}) {
        const SimStats scan = runScheme(scheme, trace, cache, shared,
                                        SnoopPath::ReferenceScan,
                                        checker);
        const SimStats directory = runScheme(scheme, trace, cache,
                                             shared,
                                             SnoopPath::Directory,
                                             checker);
        checker.check(
            std::string(schemeName(scheme)) +
                ": directory and reference-scan stats byte-identical",
            scan.serialize() == directory.serialize(),
            "serialized statistics differ between snoop paths");
        (scheme == options.schemeA ? statsA : statsB) = scan;
    }

    // Stream identity: what the program did is protocol-independent.
    bool streams_equal = statsA.perCpu.size() == statsB.perCpu.size();
    std::string stream_detail;
    for (std::size_t cpu = 0;
         streams_equal && cpu < statsA.perCpu.size(); ++cpu) {
        const CpuStats &a = statsA.perCpu[cpu];
        const CpuStats &b = statsB.perCpu[cpu];
        if (a.instructions != b.instructions ||
            a.dataRefs != b.dataRefs || a.flushes != b.flushes) {
            streams_equal = false;
            stream_detail = "cpu " + std::to_string(cpu) +
                " executed a different stream";
        }
    }
    checker.check("per-cpu instruction/data-reference counts match",
                  streams_equal, stream_detail);

    // Miss accounting versus Base on the same trace.
    const SimStats base = [&] {
        MultiprocessorSystem system(Scheme::Base, cache,
                                    trace.numCpus(), shared);
        return system.run(trace);
    }();
    for (const SimStats *stats : {&statsA, &statsB}) {
        const Scheme scheme = stats->scheme;
        const std::string name(stats->protocolName);
        if (missesMatchBase(scheme)) {
            checker.check(
                name + ": miss counts equal Base's (never "
                       "invalidates)",
                stats->dataMisses == base.dataMisses &&
                    stats->instrMisses == base.instrMisses,
                "data " + std::to_string(stats->dataMisses) + " vs " +
                    std::to_string(base.dataMisses) + ", instr " +
                    std::to_string(stats->instrMisses) + " vs " +
                    std::to_string(base.instrMisses));
        } else if (invalidatesCopies(scheme)) {
            checker.check(
                name + ": misses only ever added versus Base "
                       "(coherence misses)",
                totalMissOps(*stats) >= totalMissOps(base),
                std::to_string(totalMissOps(*stats)) + " < " +
                    std::to_string(totalMissOps(base)));
        }
    }

    if (!checker.allOk()) {
        std::cout << "proto_check: FAILED\n";
        return 1;
    }
    std::cout << "proto_check: all invariants hold\n";
    return 0;
}
