/**
 * @file
 * Subcommands of the swcc command-line tool.
 *
 * Each command takes parsed options and writes its report to a
 * stream, so the whole tool is unit-testable without a process
 * boundary.
 */

#ifndef SWCC_TOOLS_CLI_COMMANDS_HH
#define SWCC_TOOLS_CLI_COMMANDS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "cli/options.hh"

namespace swcc::cli
{

/**
 * Dispatches one invocation.
 *
 * @param args argv-style tokens *excluding* the program name; the
 *        first token selects the subcommand.
 * @param out Stream for normal output.
 * @return Process exit code (0 on success).
 *
 * Unknown commands and malformed options print usage to @p out and
 * return 2.
 */
int run(const std::vector<std::string> &args, std::ostream &out);

/** `swcc eval`: evaluate schemes analytically (bus or network). */
int cmdEval(const Options &options, std::ostream &out);

/** `swcc gen`: generate a synthetic trace file. */
int cmdGen(const Options &options, std::ostream &out);

/** `swcc stat`: measure workload parameters of a trace file. */
int cmdStat(const Options &options, std::ostream &out);

/** `swcc sim`: simulate a trace under a coherence scheme. */
int cmdSim(const Options &options, std::ostream &out);

/** `swcc validate`: model-vs-simulation on a synthetic profile. */
int cmdValidate(const Options &options, std::ostream &out);

/** `swcc sweep`: sweep one workload parameter for every scheme. */
int cmdSweep(const Options &options, std::ostream &out);

/** `swcc network`: compare network disciplines for one workload. */
int cmdNetwork(const Options &options, std::ostream &out);

/** `swcc sensitivity`: print the Table 8 sensitivity analysis. */
int cmdSensitivity(const Options &options, std::ostream &out);

/** Prints the global usage text. */
void printUsage(std::ostream &out);

} // namespace swcc::cli

#endif // SWCC_TOOLS_CLI_COMMANDS_HH
