/**
 * @file
 * Minimal command-line option parser for the swcc tool.
 */

#ifndef SWCC_TOOLS_CLI_OPTIONS_HH
#define SWCC_TOOLS_CLI_OPTIONS_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace swcc::cli
{

/**
 * Parsed command line: `--key value` and `--flag` options plus bare
 * positional arguments.
 */
class Options
{
  public:
    /**
     * Parses tokens. A token starting with "--" becomes an option;
     * if the next token does not start with "--" it is taken as the
     * option's value, otherwise the option is a boolean flag.
     *
     * @throws std::invalid_argument on an empty option name.
     */
    static Options parse(const std::vector<std::string> &tokens);

    /** Value of `--name`, if present with a value. */
    std::optional<std::string> value(const std::string &name) const;

    /** Value of `--name` or @p fallback. */
    std::string valueOr(const std::string &name,
                        const std::string &fallback) const;

    /** Numeric value of `--name` or @p fallback.
     *  @throws std::invalid_argument if present but not numeric. */
    double numberOr(const std::string &name, double fallback) const;

    /** Unsigned value of `--name` or @p fallback. */
    unsigned unsignedOr(const std::string &name, unsigned fallback) const;

    /** Whether `--name` appeared (with or without a value). */
    bool has(const std::string &name) const;

    /** Bare positional arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /**
     * Ensures every supplied option is in @p known.
     *
     * @throws std::invalid_argument naming the first unknown option.
     */
    void requireKnown(const std::vector<std::string> &known) const;

  private:
    std::map<std::string, std::optional<std::string>> options_;
    std::vector<std::string> positional_;
};

} // namespace swcc::cli

#endif // SWCC_TOOLS_CLI_OPTIONS_HH
