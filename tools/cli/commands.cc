#include "cli/commands.hh"

#include <iostream>
#include <ostream>
#include <stdexcept>

#include "core/campaign/atomic_file.hh"
#include "core/campaign/campaign.hh"
#include "core/obs/obs.hh"
#include "core/parallel.hh"
#include "core/swcc.hh"
#include "sim/mp/param_extractor.hh"
#include "sim/mp/system.hh"
#include "sim/mp/validation.hh"
#include "sim/synth/app_profiles.hh"
#include "sim/synth/trace_generator.hh"
#include "sim/trace/trace_io.hh"

namespace swcc::cli
{

namespace
{

Scheme
schemeFromName(const std::string &name)
{
    for (Scheme scheme : kAllSchemes) {
        std::string candidate(schemeName(scheme));
        for (char &c : candidate) {
            c = static_cast<char>(std::tolower(c));
        }
        if (candidate == name) {
            return scheme;
        }
    }
    if (name == "sw-flush" || name == "swflush" || name == "flush") {
        return Scheme::SoftwareFlush;
    }
    if (name == "nocache") {
        return Scheme::NoCache;
    }
    throw std::invalid_argument(
        "unknown scheme '" + name +
        "' (expected base, no-cache, software-flush, dragon, mesi, "
        "mesif, moesi, or adaptive-hybrid)");
}

AppProfile
profileFromName(const std::string &name)
{
    for (AppProfile profile : kAllProfiles) {
        if (name == profileName(profile)) {
            return profile;
        }
    }
    if (name == "pops") {
        return AppProfile::PopsLike;
    }
    if (name == "thor") {
        return AppProfile::ThorLike;
    }
    if (name == "pero") {
        return AppProfile::PeroLike;
    }
    throw std::invalid_argument(
        "unknown profile '" + name +
        "' (expected pops-like, thor-like, or pero-like)");
}

ParamId
paramFromName(const std::string &name)
{
    for (ParamId id : kAllParams) {
        if (name == paramName(id)) {
            return id;
        }
    }
    if (name == "apl") {
        return ParamId::InvApl; // Callers sweep 1/apl transparently.
    }
    throw std::invalid_argument("unknown parameter '" + name + "'");
}

/** Applies every recognised `--<param> value` override. */
WorkloadParams
workloadFromOptions(const Options &options)
{
    WorkloadParams params = middleParams();
    for (ParamId id : kAllParams) {
        const std::string name(paramName(id));
        if (name == "1/apl") {
            continue; // Awkward on a command line; use --apl.
        }
        if (const auto text = options.value(name)) {
            setParam(params, id, options.numberOr(name, 0.0));
        }
    }
    if (options.has("apl")) {
        params.apl = options.numberOr("apl", params.apl);
    }
    params.validate();
    return params;
}

std::vector<std::string>
workloadOptionNames()
{
    std::vector<std::string> names;
    for (ParamId id : kAllParams) {
        const std::string name(paramName(id));
        if (name != "1/apl") {
            names.push_back(name);
        }
    }
    names.push_back("apl");
    return names;
}

std::vector<std::string>
withWorkload(std::vector<std::string> extra)
{
    std::vector<std::string> names = workloadOptionNames();
    names.insert(names.end(), extra.begin(), extra.end());
    return names;
}

/** Options every command accepts (threading + observability). */
std::vector<std::string>
withGlobals(std::vector<std::string> extra)
{
    static const std::vector<std::string> kGlobalOptions = {
        "threads", "metrics-out", "trace-json", "progress",
        "log-level",
    };
    extra.insert(extra.end(), kGlobalOptions.begin(),
                 kGlobalOptions.end());
    return extra;
}

/** Extra options of the campaign commands (sweep/sensitivity/validate). */
std::vector<std::string>
withCampaign(std::vector<std::string> extra)
{
    static const std::vector<std::string> kCampaignOptions = {
        "journal", "resume", "csv-out", "task-retries",
        "task-timeout-ms", "backoff-ms", "fault-inject",
        "campaign-seed",
    };
    extra.insert(extra.end(), kCampaignOptions.begin(),
                 kCampaignOptions.end());
    return extra;
}

/** Builds the campaign configuration from the command line. */
campaign::CampaignOptions
campaignFromOptions(const Options &options)
{
    campaign::CampaignOptions campaign;
    campaign.journalPath = options.valueOr("journal", "");
    campaign.resume = options.has("resume");
    if (campaign.resume && campaign.journalPath.empty()) {
        throw std::invalid_argument("--resume needs --journal FILE");
    }
    campaign.policy.maxRetries = options.unsignedOr(
        "task-retries", campaign.policy.maxRetries);
    campaign.policy.timeoutMs =
        options.unsignedOr("task-timeout-ms", 0);
    campaign.policy.backoffBaseMs = options.unsignedOr(
        "backoff-ms",
        static_cast<unsigned>(campaign.policy.backoffBaseMs));
    campaign.seed = options.unsignedOr("campaign-seed", 1);
    campaign.faultSpec = options.valueOr("fault-inject", "");
    return campaign;
}

/**
 * Post-campaign bookkeeping shared by the campaign commands: the
 * optional CSV artifact (atomic, so an interrupted write never leaves
 * a plausible-looking truncated file) and the resilience summary. The
 * summary goes to stderr — stdout and the CSV must stay byte-identical
 * between a fresh run and a resumed one, and "N from journal" differs.
 */
void
finishCampaign(const Options &options, const TextTable &table,
               const campaign::CampaignOptions &campaign,
               const campaign::CampaignReport &report)
{
    if (const auto path = options.value("csv-out")) {
        campaign::atomicWriteFile(
            *path, [&](std::ostream &os) { table.printCsv(os); });
    }
    if (!campaign.journalPath.empty()) {
        std::cerr << "campaign: " << report.summary()
                  << " (journal: " << campaign.journalPath << ")\n";
    }
}

} // namespace

void
printUsage(std::ostream &out)
{
    out <<
        "swcc — Owicki-Agarwal software cache coherence toolkit\n"
        "\n"
        "usage: swcc <command> [options]\n"
        "\n"
        "commands:\n"
        "  eval      evaluate the schemes analytically\n"
        "            --cpus N (8) --network --stages N\n"
        "            --<param> value (any Table 2 name, plus --apl)\n"
        "  gen       generate a synthetic trace\n"
        "            --profile pops-like|thor-like|pero-like\n"
        "            --cpus N (4) --instructions N (100000)\n"
        "            --seed N (1) --flushes --out FILE\n"
        "  stat      measure a trace's workload parameters\n"
        "            <trace-file> [--block BYTES (16)]\n"
        "  sim       simulate a trace under one scheme\n"
        "            <trace-file> --scheme NAME [--cache BYTES]\n"
        "            [--assoc N] [--block BYTES]\n"
        "  validate  model vs simulation on a synthetic profile\n"
        "            --profile NAME --scheme NAME --cpus N\n"
        "            [--instructions N] [--cache BYTES] [--seed N]\n"
        "  sweep     sweep one parameter across all schemes\n"
        "            --param NAME --from X --to X [--points N]\n"
        "            [--cpus N]\n"
        "  network   compare circuit/packet/directory on a network\n"
        "            [--stages N (8)] [--switch K (2)] [--<param> v]\n"
        "  sensitivity  Table 8 sensitivity analysis\n"
        "            [--cpus N (16)] [--grid]\n"
        "\n"
        "global options:\n"
        "  --threads N  worker threads for experiment grids (default:\n"
        "            SWCC_THREADS env var, else hardware concurrency;\n"
        "            results are bit-identical for any thread count)\n"
        "  --metrics-out FILE  dump the metrics registry on exit\n"
        "            (JSON, or CSV when FILE ends in .csv)\n"
        "  --trace-json FILE  emit a Chrome trace-event file; open it\n"
        "            in https://ui.perfetto.dev (simulated time is in\n"
        "            cycles, wall time in microseconds)\n"
        "  --progress  rate/ETA progress lines on stderr for long\n"
        "            sweeps (throttled, TTY-aware)\n"
        "  --log-level LEVEL  trace|debug|info|warn|error|off\n"
        "            (default: warn, or SWCC_LOG_LEVEL env var)\n"
        "\n"
        "campaign options (sweep, sensitivity, validate):\n"
        "  --journal FILE  append each completed cell to a checksummed\n"
        "            journal; an interrupted run exits 3 and can be\n"
        "            continued with --resume, producing byte-identical\n"
        "            output\n"
        "  --resume  load the journal first and recompute only the\n"
        "            missing cells (requires --journal)\n"
        "  --csv-out FILE  also write the result table as CSV\n"
        "            (atomic: temp file + fsync + rename)\n"
        "  --task-retries N  retries per failing cell before it is\n"
        "            poisoned to NaNs (default 2)\n"
        "  --task-timeout-ms N  per-cell time budget; overruns count\n"
        "            as failures (default: unlimited)\n"
        "  --backoff-ms N  base of the exponential retry backoff\n"
        "            (default 1)\n"
        "  --fault-inject SPEC  deterministic fault injection, e.g.\n"
        "            'solver-bus:2' or 'trace-io:10%' (see also the\n"
        "            SWCC_FAULT_INJECT env var); sites: trace-io,\n"
        "            solver-bus, solver-net, task-kill, task-timeout\n"
        "  --campaign-seed N  seed for probabilistic fault injection\n"
        "            (default 1)\n";
}

int
cmdEval(const Options &options, std::ostream &out)
{
    options.requireKnown(
        withWorkload(withGlobals({"cpus", "network", "stages"})));
    const WorkloadParams params = workloadFromOptions(options);
    const unsigned cpus = options.unsignedOr("cpus", 8);

    if (options.has("network") || options.has("stages")) {
        const unsigned stages =
            options.unsignedOr("stages", stagesForProcessors(cpus));
        out << "Multistage network, " << (1u << stages)
            << " processors:\n\n";
        TextTable table({"scheme", "compute U", "cycles/instr",
                         "power"});
        for (Scheme scheme : kAllSchemes) {
            if (!schemeWorksOnNetwork(scheme)) {
                continue;
            }
            const NetworkSolution sol =
                evaluateNetwork(scheme, params, stages);
            table.addRow({std::string(schemeName(scheme)),
                          formatNumber(sol.computeFraction, 3),
                          formatNumber(sol.cyclesPerInstruction, 3),
                          formatNumber(sol.processingPower, 2)});
        }
        const NetworkSolution dir =
            evaluateDirectoryNetwork(params, stages);
        table.addRow({"Directory (ext)",
                      formatNumber(dir.computeFraction, 3),
                      formatNumber(dir.cyclesPerInstruction, 3),
                      formatNumber(dir.processingPower, 2)});
        table.print(out);
        return 0;
    }

    out << "Bus, " << cpus << " processors:\n\n";
    TextTable table({"scheme", "c", "b", "waiting", "utilization",
                     "power"});
    for (Scheme scheme : kAllSchemes) {
        const BusSolution sol = evaluateBus(scheme, params, cpus);
        table.addRow({std::string(schemeName(scheme)),
                      formatNumber(sol.cpu, 3),
                      formatNumber(sol.bus, 3),
                      formatNumber(sol.waiting, 3),
                      formatNumber(sol.processorUtilization, 3),
                      formatNumber(sol.processingPower, 2)});
    }
    table.print(out);
    return 0;
}

int
cmdGen(const Options &options, std::ostream &out)
{
    options.requireKnown(withGlobals(
        {"profile", "cpus", "instructions", "seed", "flushes", "out"}));
    const AppProfile profile =
        profileFromName(options.valueOr("profile", "pops-like"));
    const SyntheticWorkloadConfig config = profileConfig(
        profile, options.unsignedOr("cpus", 4),
        options.unsignedOr("instructions", 100'000),
        options.unsignedOr("seed", 1), options.has("flushes"));

    const TraceBuffer trace = generateTrace(config);
    const std::string path = options.valueOr("out", "trace.swcc");
    saveTrace(trace, path);
    out << "wrote " << trace.size() << " events ("
        << static_cast<unsigned>(trace.numCpus()) << " cpus) to "
        << path << '\n';
    return 0;
}

int
cmdStat(const Options &options, std::ostream &out)
{
    options.requireKnown(withGlobals({"block"}));
    if (options.positional().empty()) {
        throw std::invalid_argument("stat needs a trace file");
    }
    const TraceBuffer trace = loadTrace(options.positional().front());
    const std::size_t block = options.unsignedOr("block", 16);
    const TraceStatistics stats = analyzeTrace(trace, block);

    TextTable table({"quantity", "value"});
    table.addRow({"events", formatNumber(
        static_cast<double>(trace.size()), 0)});
    table.addRow({"cpus", formatNumber(trace.numCpus(), 0)});
    table.addRow({"instructions", formatNumber(
        static_cast<double>(stats.instructions), 0)});
    table.addRow({"ls", formatNumber(stats.ls, 4)});
    table.addRow({"shd (dynamic)", formatNumber(stats.shd, 4)});
    table.addRow({"wr", formatNumber(stats.wr, 4)});
    table.addRow({"apl", stats.apl
        ? formatNumber(*stats.apl, 2) : "n/a"});
    table.addRow({"mdshd", stats.mdshd
        ? formatNumber(*stats.mdshd, 3) : "n/a (no flushes)"});
    table.addRow({"shared blocks", formatNumber(
        static_cast<double>(stats.sharedBlocks), 0)});
    table.print(out);
    return 0;
}

int
cmdSim(const Options &options, std::ostream &out)
{
    options.requireKnown(withGlobals(
        {"scheme", "cache", "assoc", "block"}));
    if (options.positional().empty()) {
        throw std::invalid_argument("sim needs a trace file");
    }
    const Scheme scheme =
        schemeFromName(options.valueOr("scheme", "dragon"));
    const TraceBuffer trace = loadTrace(options.positional().front());

    CacheConfig cache;
    cache.sizeBytes = options.unsignedOr("cache", 64 * 1024);
    cache.blockBytes = options.unsignedOr("block", 16);
    cache.associativity = options.unsignedOr("assoc", 1);

    // No-Cache needs a shared region; the generator's fixed layout
    // marks everything above kSharedBase.
    const SharedClassifier shared = [](Addr addr) {
        return addr >= SyntheticWorkloadConfig::kSharedBase;
    };
    const SimStats stats = simulateTrace(scheme, trace, cache, shared);

    TextTable table({"quantity", "value"});
    table.addRow({"scheme", std::string(schemeName(scheme))});
    table.addRow({"makespan (cycles)",
                  formatNumber(stats.makespan, 0)});
    table.addRow({"processing power",
                  formatNumber(stats.processingPower(), 3)});
    table.addRow({"avg utilization",
                  formatNumber(stats.avgUtilization(), 3)});
    table.addRow({"bus utilization",
                  formatNumber(stats.busUtilization(), 3)});
    table.addRow({"data miss rate",
                  formatNumber(stats.dataMissRate(), 4)});
    table.addRow({"instr miss rate",
                  formatNumber(stats.instrMissRate(), 4)});
    table.addRow({"dirty miss fraction",
                  formatNumber(stats.dirtyMissFraction(), 3)});
    table.print(out);
    return 0;
}

int
cmdValidate(const Options &options, std::ostream &out)
{
    options.requireKnown(withCampaign(withGlobals(
        {"profile", "scheme", "cpus", "instructions", "cache",
         "seed"})));
    ValidationConfig config;
    config.profile =
        profileFromName(options.valueOr("profile", "pops-like"));
    config.scheme = schemeFromName(options.valueOr("scheme", "dragon"));
    config.maxCpus =
        static_cast<CpuId>(options.unsignedOr("cpus", 4));
    config.instructionsPerCpu =
        options.unsignedOr("instructions", 100'000);
    config.cacheBytes = options.unsignedOr("cache", 64 * 1024);
    config.seed = options.unsignedOr("seed", 1);

    const campaign::CampaignOptions campaign =
        campaignFromOptions(options);
    campaign::CampaignReport report;

    TextTable table({"cpus", "sim power", "model power", "error %"});
    for (const ValidationPoint &point :
         validate(config, campaign, &report)) {
        table.addRow({formatNumber(point.cpus, 0),
                      formatNumber(point.simPower, 3),
                      formatNumber(point.modelPower, 3),
                      formatNumber(point.errorPercent(), 1)});
    }
    table.print(out);
    finishCampaign(options, table, campaign, report);
    return 0;
}

int
cmdSweep(const Options &options, std::ostream &out)
{
    options.requireKnown(withWorkload(withCampaign(
        withGlobals({"param", "from", "to", "points", "cpus"}))));
    const auto param_name = options.value("param");
    if (!param_name) {
        throw std::invalid_argument("sweep needs --param");
    }
    const ParamId param = paramFromName(*param_name);
    const bool sweep_apl = *param_name == "apl";
    const double from = options.numberOr("from", sweep_apl ? 1.0 : 0.0);
    const double to = options.numberOr("to", sweep_apl ? 128.0 : 0.5);
    const std::size_t points = options.unsignedOr("points", 9);
    const unsigned cpus = options.unsignedOr("cpus", 16);

    WorkloadParams base = workloadFromOptions(options);

    const std::vector<Scheme> schemes = {
        Scheme::Base,  Scheme::Dragon, Scheme::SoftwareFlush,
        Scheme::NoCache, Scheme::Mesi, Scheme::Mesif, Scheme::Moesi,
        Scheme::Hybrid,
    };
    const campaign::CampaignOptions campaign =
        campaignFromOptions(options);
    campaign::CampaignReport report;
    const std::vector<SweepRow> rows =
        sweepPowerGrid(param, sweep_apl, linspace(from, to, points),
                       base, cpus, schemes, campaign, &report);

    TextTable table({*param_name, "Base", "Dragon", "Software-Flush",
                     "No-Cache", "MESI", "MESIF", "MOESI",
                     "Adaptive-Hybrid"});
    for (const SweepRow &grid_row : rows) {
        std::vector<std::string> row{formatNumber(grid_row.value, 4)};
        for (double power : grid_row.power) {
            row.push_back(formatNumber(power, 2));
        }
        table.addRow(std::move(row));
    }
    table.print(out);
    finishCampaign(options, table, campaign, report);
    return 0;
}

int
cmdNetwork(const Options &options, std::ostream &out)
{
    options.requireKnown(
        withWorkload(withGlobals({"stages", "switch"})));
    const WorkloadParams params = workloadFromOptions(options);
    const unsigned k = options.unsignedOr("switch", 2);
    if (k < 2) {
        throw std::invalid_argument("--switch must be >= 2");
    }
    const unsigned stages = options.unsignedOr("stages", 8);
    const unsigned processors = 1u << stages;

    out << "Network disciplines, " << processors
        << " processors (circuit: " << stages
        << " stages of 2x2):\n\n";
    TextTable table({"scheme", "circuit power", "packet power",
                     "packet/circuit"});
    for (Scheme scheme : {Scheme::Base, Scheme::SoftwareFlush,
                          Scheme::NoCache}) {
        const double circuit =
            evaluateNetwork(scheme, params, stages).processingPower;
        const double packet =
            solvePacketNetwork(scheme, params, stages).processingPower;
        table.addRow({std::string(schemeName(scheme)),
                      formatNumber(circuit, 1),
                      formatNumber(packet, 1),
                      formatNumber(packet / circuit, 2) + "x"});
    }
    const double directory =
        evaluateDirectoryNetwork(params, stages).processingPower;
    table.addRow({"Directory (ext)", formatNumber(directory, 1), "-",
                  "-"});
    table.print(out);

    if (k > 2) {
        const unsigned k_stages = stagesForProcessorsK(processors, k);
        out << "\nWith " << k << "x" << k << " switches (" << k_stages
            << " stages), compute fraction at the Software-Flush "
               "operating point:\n";
        const NetworkCostModel costs(k_stages);
        const PerInstructionCost cost = perInstructionCost(
            operationFrequencies(Scheme::SoftwareFlush, params), costs);
        const double u = solveComputeFractionK(
            1.0 / cost.thinkTime(), cost.channel, k_stages, k);
        out << "  U = " << formatNumber(u, 3) << " (2x2: "
            << formatNumber(
                   evaluateNetwork(Scheme::SoftwareFlush, params,
                                   stages).computeFraction, 3)
            << ")\n";
    }
    return 0;
}

int
cmdSensitivity(const Options &options, std::ostream &out)
{
    options.requireKnown(withCampaign(withGlobals({"cpus", "grid"})));
    SensitivityConfig config;
    config.processors = options.unsignedOr("cpus", 16);
    config.averageOverGrid = options.has("grid");

    const campaign::CampaignOptions campaign =
        campaignFromOptions(options);
    campaign::CampaignReport campaign_report;

    out << "Sensitivity (% change in execution time, low -> high, "
        << config.processors << " CPUs"
        << (config.averageOverGrid ? ", grid-averaged" : "") << "):\n\n";
    const auto table =
        sensitivityTable(config, campaign, &campaign_report);
    TextTable report({"parameter", "Software-Flush", "No-Cache",
                      "Dragon", "Base"});
    for (ParamId param : kAllParams) {
        std::vector<std::string> row{std::string(paramName(param))};
        for (Scheme scheme : {Scheme::SoftwareFlush, Scheme::NoCache,
                              Scheme::Dragon, Scheme::Base}) {
            for (const SensitivityEntry &entry : table) {
                if (entry.param == param && entry.scheme == scheme) {
                    row.push_back(
                        formatNumber(entry.percentChange, 1));
                }
            }
        }
        report.addRow(std::move(row));
    }
    report.print(out);
    finishCampaign(options, report, campaign, campaign_report);
    return 0;
}

int
run(const std::vector<std::string> &args, std::ostream &out)
{
    if (args.empty()) {
        printUsage(out);
        return 2;
    }
    const std::string &command = args.front();
    const std::vector<std::string> rest(args.begin() + 1, args.end());

    try {
        const Options options = Options::parse(rest);
        if (options.has("threads")) {
            const unsigned threads = options.unsignedOr("threads", 0);
            if (threads == 0) {
                throw std::invalid_argument(
                    "option --threads expects a positive integer");
            }
            setThreadCount(threads);
        }

        // Environment defaults first, explicit flags on top.
        obs::CliConfig obs_config = obs::envConfig();
        if (const auto path = options.value("metrics-out")) {
            obs_config.metricsOut = *path;
        }
        if (const auto path = options.value("trace-json")) {
            obs_config.traceJson = *path;
        }
        if (options.has("progress")) {
            obs_config.progress = true;
        }
        if (const auto level = options.value("log-level")) {
            obs_config.logLevel = *level;
        }
        obs::applyCli(obs_config);

        const auto dispatch = [&]() -> int {
            if (command == "eval") {
                return cmdEval(options, out);
            }
            if (command == "gen") {
                return cmdGen(options, out);
            }
            if (command == "stat") {
                return cmdStat(options, out);
            }
            if (command == "sim") {
                return cmdSim(options, out);
            }
            if (command == "validate") {
                return cmdValidate(options, out);
            }
            if (command == "sweep") {
                return cmdSweep(options, out);
            }
            if (command == "network") {
                return cmdNetwork(options, out);
            }
            if (command == "sensitivity") {
                return cmdSensitivity(options, out);
            }
            if (command == "help" || command == "--help") {
                printUsage(out);
                return 0;
            }
            out << "unknown command '" << command << "'\n\n";
            printUsage(out);
            return 2;
        };
        const int rc = dispatch();
        obs::finalize();
        return rc;
    } catch (const FatalTaskError &error) {
        // The campaign journaled every completed cell before dying,
        // so the run is resumable; still flush metrics (fault and
        // retry counters) for post-mortems.
        obs::finalize();
        out << "fatal: " << error.what() << '\n'
            << "completed cells are journaled; rerun the same command "
               "with --resume to continue\n";
        return 3;
    } catch (const std::exception &error) {
        out << "error: " << error.what() << '\n';
        return 2;
    }
}

} // namespace swcc::cli
