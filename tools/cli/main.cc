/**
 * @file
 * Entry point of the swcc command-line tool.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 1; i < argc; ++i) {
        args.emplace_back(argv[i]);
    }
    return swcc::cli::run(args, std::cout);
}
