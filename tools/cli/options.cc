#include "cli/options.hh"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace swcc::cli
{

Options
Options::parse(const std::vector<std::string> &tokens)
{
    Options options;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string &token = tokens[i];
        if (!token.starts_with("--")) {
            options.positional_.push_back(token);
            continue;
        }
        const std::string name = token.substr(2);
        if (name.empty()) {
            throw std::invalid_argument("empty option name '--'");
        }
        if (i + 1 < tokens.size() && !tokens[i + 1].starts_with("--")) {
            options.options_[name] = tokens[++i];
        } else {
            options.options_[name] = std::nullopt;
        }
    }
    return options;
}

std::optional<std::string>
Options::value(const std::string &name) const
{
    auto it = options_.find(name);
    if (it == options_.end()) {
        return std::nullopt;
    }
    return it->second;
}

std::string
Options::valueOr(const std::string &name,
                 const std::string &fallback) const
{
    const auto found = value(name);
    return found ? *found : fallback;
}

double
Options::numberOr(const std::string &name, double fallback) const
{
    const auto found = value(name);
    if (!found) {
        return fallback;
    }
    char *end = nullptr;
    const double parsed = std::strtod(found->c_str(), &end);
    if (end == found->c_str() || *end != '\0') {
        throw std::invalid_argument(
            "option --" + name + " expects a number, got '" + *found +
            "'");
    }
    return parsed;
}

unsigned
Options::unsignedOr(const std::string &name, unsigned fallback) const
{
    const double parsed =
        numberOr(name, static_cast<double>(fallback));
    // Range-check before any cast: converting a double above UINT_MAX
    // (e.g. --events 5e9) to unsigned is undefined behavior.
    if (!(parsed >= 0.0) || std::floor(parsed) != parsed) {
        throw std::invalid_argument(
            "option --" + name + " expects a non-negative integer");
    }
    constexpr double max =
        static_cast<double>(std::numeric_limits<unsigned>::max());
    if (parsed > max) {
        throw std::invalid_argument(
            "option --" + name + " is out of range (max " +
            std::to_string(std::numeric_limits<unsigned>::max()) + ")");
    }
    return static_cast<unsigned>(parsed);
}

bool
Options::has(const std::string &name) const
{
    return options_.contains(name);
}

void
Options::requireKnown(const std::vector<std::string> &known) const
{
    for (const auto &[name, _] : options_) {
        bool found = false;
        for (const std::string &candidate : known) {
            if (candidate == name) {
                found = true;
                break;
            }
        }
        if (!found) {
            throw std::invalid_argument("unknown option --" + name);
        }
    }
}

} // namespace swcc::cli
