/**
 * @file
 * trace_check: validates Chrome trace-event JSON files emitted by
 * `--trace-json` (or anything else claiming the format).
 *
 * For each file argument: parse the document, then check the
 * trace-event contract — one-character "ph", numeric pid/tid/ts,
 * non-decreasing ts per (pid, tid) stream, balanced B/E pairs, X
 * events with non-negative durations, C events carrying args. Exits 0
 * when every file passes, 1 otherwise, so a ctest fixture can gate on
 * emitted artifacts staying loadable in Perfetto.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/obs/json.hh"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: trace_check FILE.trace.json...\n";
        return 2;
    }

    bool all_ok = true;
    for (int i = 1; i < argc; ++i) {
        const std::string path = argv[i];
        std::ifstream is(path, std::ios::binary);
        if (!is) {
            std::cerr << path << ": cannot open\n";
            all_ok = false;
            continue;
        }
        std::ostringstream buffer;
        buffer << is.rdbuf();

        try {
            const swcc::obs::JsonValue doc =
                swcc::obs::parseJson(buffer.str());
            std::string error;
            if (!swcc::obs::validateChromeTrace(doc, &error)) {
                std::cerr << path << ": invalid trace: " << error
                          << '\n';
                all_ok = false;
                continue;
            }
            const swcc::obs::JsonValue *events =
                doc.find("traceEvents");
            const std::size_t count = events != nullptr
                ? events->array.size()
                : doc.array.size();
            std::cout << path << ": ok (" << count << " events)\n";
        } catch (const std::exception &error) {
            std::cerr << path << ": " << error.what() << '\n';
            all_ok = false;
        }
    }
    return all_ok ? 0 : 1;
}
