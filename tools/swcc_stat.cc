/**
 * @file
 * swcc_stat — live telemetry viewer for a running swccd.
 *
 * Connects to the daemon's unix socket, issues Scrape requests on an
 * interval, and renders either a TTY dashboard (QPS, p50/p99/p999,
 * queue depth, cache hit rate — recomputed from deltas between
 * consecutive scrapes) or a CSV time series for offline plotting.
 *
 * Usage:
 *   swcc_stat --socket PATH [--interval-ms N] [--count N] [--csv]
 *   swcc_stat --socket PATH --raw
 *
 * --raw prints one scrape verbatim after validating that it parses
 * as Prometheus text exposition (nonzero exit otherwise) — the CI
 * smoke job uses it as a format check.
 *
 * Quantiles are derived from the daemon's cumulative
 * `service_request_us_bucket{le=...}` series: the per-interval delta
 * of each cumulative bucket count is itself a histogram of just that
 * interval's requests, so the dashboard shows *current* latency, not
 * the lifetime aggregate.
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/client.hh"

namespace
{

/** One parsed scrape: scalar samples plus histogram bucket series. */
struct Sample
{
    /** name -> value for label-free samples (counters, gauges). */
    std::map<std::string, double> values;
    /** family -> (le -> cumulative count) for *_bucket series. */
    std::map<std::string, std::map<double, double>> buckets;
};

bool
parseDouble(const std::string &text, double &out)
{
    try {
        std::size_t end = 0;
        out = std::stod(text, &end);
        while (end < text.size() &&
               (text[end] == ' ' || text[end] == '\t')) {
            ++end;
        }
        return end == text.size();
    } catch (const std::exception &) {
        return false;
    }
}

/**
 * Parses Prometheus text exposition. Returns false (with @p error)
 * on any line that is neither a comment nor `name[{labels}] value`.
 */
bool
parseScrape(const std::string &text, Sample &out, std::string &error)
{
    std::size_t pos = 0;
    int lineno = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) {
            eol = text.size();
        }
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineno;
        if (line.empty() || line[0] == '#') {
            continue;
        }
        const std::size_t brace = line.find('{');
        const std::size_t space = line.find(' ');
        if (space == std::string::npos) {
            error = "line " + std::to_string(lineno) +
                ": no value: " + line;
            return false;
        }
        double value = 0.0;
        if (brace != std::string::npos && brace < space) {
            const std::size_t close = line.find('}', brace);
            if (close == std::string::npos || close + 2 > line.size() ||
                line[close + 1] != ' ') {
                error = "line " + std::to_string(lineno) +
                    ": malformed labels: " + line;
                return false;
            }
            if (!parseDouble(line.substr(close + 2), value)) {
                error = "line " + std::to_string(lineno) +
                    ": bad value: " + line;
                return false;
            }
            const std::string name = line.substr(0, brace);
            const std::string labels =
                line.substr(brace + 1, close - brace - 1);
            // The daemon only emits one label: le="...".
            if (name.ends_with("_bucket") &&
                labels.starts_with("le=\"") && labels.ends_with("\"")) {
                const std::string le =
                    labels.substr(4, labels.size() - 5);
                const double bound = le == "+Inf"
                    ? std::numeric_limits<double>::infinity()
                    : [&] {
                          double b = 0.0;
                          parseDouble(le, b);
                          return b;
                      }();
                out.buckets[name.substr(0, name.size() - 7)][bound] =
                    value;
            }
            continue;
        }
        if (!parseDouble(line.substr(space + 1), value)) {
            error = "line " + std::to_string(lineno) +
                ": bad value: " + line;
            return false;
        }
        out.values[line.substr(0, space)] = value;
    }
    return true;
}

double
valueOr(const Sample &sample, const std::string &name,
        double fallback = 0.0)
{
    const auto it = sample.values.find(name);
    return it == sample.values.end() ? fallback : it->second;
}

/** Cumulative count at @p bound in a (le -> count) step function. */
double
cumulativeAt(const std::map<double, double> &cumulative, double bound)
{
    auto it = cumulative.upper_bound(bound);
    if (it == cumulative.begin()) {
        return 0.0;
    }
    return std::prev(it)->second;
}

/**
 * Quantile of the requests recorded between @p prev and @p cur: the
 * smallest `le` whose interval delta covers the target rank.
 * Returns 0 when the interval saw no requests.
 */
double
deltaQuantile(const std::map<double, double> &cur,
              const std::map<double, double> *prev, double q)
{
    const auto delta = [&](double bound, double cumulativeCount) {
        return cumulativeCount -
            (prev != nullptr ? cumulativeAt(*prev, bound) : 0.0);
    };
    double total = 0.0;
    for (const auto &[bound, count] : cur) {
        if (std::isinf(bound)) {
            total = delta(bound, count);
        }
    }
    if (total <= 0.0) {
        return 0.0;
    }
    const double target = std::max(1.0, std::ceil(q * total));
    double last = 0.0;
    for (const auto &[bound, count] : cur) {
        last = bound;
        if (delta(bound, count) >= target) {
            return bound;
        }
    }
    return last;
}

struct Options
{
    std::string socket;
    int intervalMs = 1000;
    /** 0 = run until the daemon goes away or the user interrupts. */
    unsigned count = 0;
    bool csv = false;
    bool raw = false;
};

int
usage(std::ostream &out, int code)
{
    out << "usage: swcc_stat --socket PATH [--interval-ms N]\n"
           "                 [--count N] [--csv] [--raw]\n"
           "  --csv   emit a CSV time series instead of a dashboard\n"
           "  --raw   print one scrape verbatim after validating it\n";
    return code;
}

std::string
formatUs(double us)
{
    char buffer[32];
    if (us >= 1e6) {
        std::snprintf(buffer, sizeof buffer, "%.2fs", us / 1e6);
    } else if (us >= 1e3) {
        std::snprintf(buffer, sizeof buffer, "%.2fms", us / 1e3);
    } else {
        std::snprintf(buffer, sizeof buffer, "%.0fus", us);
    }
    return buffer;
}

void
printDashboard(double elapsed, double qps, double batchesPerSec,
               double avgBatch, double p50, double p99, double p999,
               const Sample &sample, double hitRate)
{
    // Repaint in place: clear screen, home the cursor.
    std::cout << "\x1b[2J\x1b[H";
    std::cout << "swcc_stat — swccd live telemetry (t+"
              << static_cast<long>(elapsed) << "s)\n\n";
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %-18s %12.0f\n", "QPS", qps);
    std::cout << line;
    std::snprintf(line, sizeof line, "  %-18s %12.1f (avg size %.1f)\n",
                  "batches/s", batchesPerSec, avgBatch);
    std::cout << line;
    std::cout << "  " << "p50 / p99 / p999   " << formatUs(p50)
              << " / " << formatUs(p99) << " / " << formatUs(p999)
              << "\n";
    std::snprintf(line, sizeof line, "  %-18s %12.0f\n", "queue depth",
                  valueOr(sample, "service_queue_depth"));
    std::cout << line;
    std::snprintf(line, sizeof line, "  %-18s %12.0f\n", "in-flight",
                  valueOr(sample, "service_inflight"));
    std::cout << line;
    std::snprintf(line, sizeof line, "  %-18s %12.0f\n", "connections",
                  valueOr(sample, "service_connections_active"));
    std::cout << line;
    std::snprintf(line, sizeof line, "  %-18s %11.1f%%\n",
                  "cache hit rate", hitRate * 100.0);
    std::cout << line;
    std::snprintf(line, sizeof line, "  %-18s %12.0f\n",
                  "queries total",
                  valueOr(sample, "service_queries_total"));
    std::cout << line;
    std::cout.flush();
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const std::string &flag) {
            if (i + 1 >= argc) {
                throw std::invalid_argument(flag + " needs a value");
            }
            return std::string(argv[++i]);
        };
        try {
            if (arg == "--socket") {
                options.socket = value(arg);
            } else if (arg == "--interval-ms") {
                options.intervalMs = std::stoi(value(arg));
                if (options.intervalMs < 10) {
                    options.intervalMs = 10;
                }
            } else if (arg == "--count") {
                options.count = static_cast<unsigned>(
                    std::stoul(value(arg)));
            } else if (arg == "--csv") {
                options.csv = true;
            } else if (arg == "--raw") {
                options.raw = true;
            } else if (arg == "--help" || arg == "-h") {
                return usage(std::cout, 0);
            } else {
                std::cerr << "swcc_stat: unknown flag " << arg
                          << "\n";
                return usage(std::cerr, 2);
            }
        } catch (const std::exception &e) {
            std::cerr << "swcc_stat: " << e.what() << "\n";
            return 2;
        }
    }
    if (options.socket.empty()) {
        std::cerr << "swcc_stat: --socket is required\n";
        return usage(std::cerr, 2);
    }

    swcc::service::ServiceClient client;
    try {
        client.connect(options.socket);
    } catch (const std::exception &e) {
        std::cerr << "swcc_stat: " << e.what() << "\n";
        return 1;
    }

    if (options.raw) {
        try {
            const std::string text = client.scrape();
            Sample sample;
            std::string error;
            if (!parseScrape(text, sample, error)) {
                std::cerr << "swcc_stat: scrape does not parse: "
                          << error << "\n";
                return 1;
            }
            std::cout << text;
        } catch (const std::exception &e) {
            std::cerr << "swcc_stat: " << e.what() << "\n";
            return 1;
        }
        return 0;
    }

    const bool tty = ::isatty(STDOUT_FILENO) != 0;
    const bool csv = options.csv || !tty;
    if (csv) {
        std::cout << "elapsed_s,qps,p50_us,p99_us,p999_us,"
                     "queue_depth,inflight,cache_hit_pct\n";
    }

    std::optional<Sample> prev;
    double elapsed = 0.0;
    const double interval = options.intervalMs / 1000.0;
    // Baseline scrape before the first interval: without it the first
    // row's "delta" would be the daemon's lifetime cumulative counts
    // crammed into one interval (absurd QPS against a long-running
    // daemon). Every reported row is a true interval delta.
    {
        Sample baseline;
        std::string error;
        try {
            if (!parseScrape(client.scrape(), baseline, error)) {
                std::cerr << "swcc_stat: scrape does not parse: "
                          << error << "\n";
                return 1;
            }
        } catch (const std::exception &e) {
            std::cerr << "swcc_stat: daemon gone: " << e.what()
                      << "\n";
            return 1;
        }
        prev = std::move(baseline);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.intervalMs));
    }
    for (unsigned tick = 0; options.count == 0 ||
         tick < options.count;
         ++tick) {
        Sample sample;
        try {
            std::string error;
            if (!parseScrape(client.scrape(), sample, error)) {
                std::cerr << "swcc_stat: scrape does not parse: "
                          << error << "\n";
                return 1;
            }
        } catch (const std::exception &e) {
            std::cerr << "swcc_stat: daemon gone: " << e.what()
                      << "\n";
            return tick == 0 ? 1 : 0;
        }

        const auto deltaOf = [&](const std::string &name) {
            const double now = valueOr(sample, name);
            return prev ? now - valueOr(*prev, name) : now;
        };
        const double dt = prev ? interval : std::max(interval, 1e-9);
        const double qps = deltaOf("service_queries_total") / dt;
        const double batchesPerSec =
            deltaOf("service_batches_total") / dt;
        const double avgBatch = batchesPerSec > 0.0
            ? qps / batchesPerSec
            : 0.0;

        const auto requestBuckets =
            sample.buckets.find("service_request_us");
        const std::map<double, double> empty;
        const std::map<double, double> &cur =
            requestBuckets == sample.buckets.end()
            ? empty
            : requestBuckets->second;
        const std::map<double, double> *prevBuckets = nullptr;
        if (prev) {
            const auto it = prev->buckets.find("service_request_us");
            if (it != prev->buckets.end()) {
                prevBuckets = &it->second;
            }
        }
        const double p50 = deltaQuantile(cur, prevBuckets, 0.50);
        const double p99 = deltaQuantile(cur, prevBuckets, 0.99);
        const double p999 = deltaQuantile(cur, prevBuckets, 0.999);

        const double hits = deltaOf("solver_cache_hits_total");
        const double misses = deltaOf("solver_cache_misses_total");
        const double hitRate =
            hits + misses > 0.0 ? hits / (hits + misses) : 0.0;

        if (csv) {
            char line[256];
            std::snprintf(line, sizeof line,
                          "%.1f,%.0f,%.1f,%.1f,%.1f,%.0f,%.0f,%.1f\n",
                          elapsed, qps, p50, p99, p999,
                          valueOr(sample, "service_queue_depth"),
                          valueOr(sample, "service_inflight"),
                          hitRate * 100.0);
            std::cout << line << std::flush;
        } else {
            printDashboard(elapsed, qps, batchesPerSec, avgBatch, p50,
                           p99, p999, sample, hitRate);
        }

        prev = std::move(sample);
        elapsed += interval;
        if (options.count == 0 || tick + 1 < options.count) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(options.intervalMs));
        }
    }
    return 0;
}
