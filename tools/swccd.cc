/**
 * @file
 * swccd — the model-as-a-service daemon (see src/service/daemon.hh
 * and DESIGN §10).
 *
 * Usage:
 *   swccd --socket PATH [--workers N] [--batch-max K]
 *         [--max-connections N] [--max-bus-processors N]
 *         [--max-network-stages N] [--metrics-out PATH] ...
 *
 * Loads the cost tables once, binds the unix socket, prints a ready
 * line, and serves until SIGINT/SIGTERM triggers a graceful drain.
 * On exit it prints the stats document and writes the observability
 * artifacts (--metrics-out / --trace-json), so a service run exports
 * the same solver_cache.* and service.* metrics as a CLI run.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "core/obs/obs.hh"
#include "core/solver_cache.hh"
#include "service/daemon.hh"

namespace
{

swcc::service::ServiceDaemon *g_daemon = nullptr;
int g_signal_pipe[2] = {-1, -1};

extern "C" void
handleSignal(int sig)
{
    if (sig == SIGUSR1) {
        // Flight-recorder dump request: just relay the byte; the
        // main thread does the (non-signal-safe) file write.
        const char byte = 'u';
        [[maybe_unused]] const ssize_t n =
            ::write(g_signal_pipe[1], &byte, 1);
        return;
    }
    if (g_daemon != nullptr) {
        g_daemon->requestStop();
    }
    const char byte = 's';
    [[maybe_unused]] const ssize_t n =
        ::write(g_signal_pipe[1], &byte, 1);
}

int
usage(std::ostream &out, int code)
{
    out << "usage: swccd --socket PATH [--workers N] [--batch-max K]\n"
           "             [--max-connections N] "
           "[--max-bus-processors N]\n"
           "             [--max-network-stages N] [--metrics-out "
           "PATH]\n"
           "             [--trace-json PATH] [--log-level LEVEL]\n"
           "             [--slow-query-us N] [--flight-records N]\n"
           "             [--flight-recorder-out PATH]\n"
           "\n"
           "SIGUSR1 dumps the flight recorder (last N completed\n"
           "requests) to --flight-recorder-out (default\n"
           "<socket>.flight.json) without disturbing service.\n";
    return code;
}

unsigned
parseUnsigned(const std::string &flag, const std::string &value)
{
    std::size_t end = 0;
    unsigned long parsed = 0;
    try {
        parsed = std::stoul(value, &end);
    } catch (const std::exception &) {
        end = 0;
    }
    if (end != value.size() || parsed == 0 || parsed > 1u << 20) {
        throw std::invalid_argument(flag + " needs a positive count, "
                                    "got '" + value + "'");
    }
    return static_cast<unsigned>(parsed);
}

} // namespace

int
main(int argc, char **argv)
{
    using swcc::service::DaemonConfig;
    using swcc::service::ServiceDaemon;

    try {
        swcc::obs::consumeArgs(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "swccd: " << e.what() << "\n";
        return 2;
    }

    DaemonConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const std::string &flag) {
            if (i + 1 >= argc) {
                throw std::invalid_argument(flag +
                                            " needs a value");
            }
            return std::string(argv[++i]);
        };
        try {
            if (arg == "--socket") {
                config.socketPath = value(arg);
            } else if (arg == "--workers") {
                config.workers = parseUnsigned(arg, value(arg));
            } else if (arg == "--batch-max") {
                config.batchMax = parseUnsigned(arg, value(arg));
            } else if (arg == "--max-connections") {
                config.maxConnections =
                    parseUnsigned(arg, value(arg));
            } else if (arg == "--max-bus-processors") {
                config.limits.maxBusProcessors =
                    parseUnsigned(arg, value(arg));
            } else if (arg == "--max-network-stages") {
                config.limits.maxNetworkStages =
                    parseUnsigned(arg, value(arg));
            } else if (arg == "--slow-query-us") {
                config.slowQueryUs = parseUnsigned(arg, value(arg));
            } else if (arg == "--flight-records") {
                config.flightRecords =
                    parseUnsigned(arg, value(arg));
            } else if (arg == "--flight-recorder-out") {
                config.flightRecorderPath = value(arg);
            } else if (arg == "--help" || arg == "-h") {
                return usage(std::cout, 0);
            } else {
                std::cerr << "swccd: unknown flag " << arg << "\n";
                return usage(std::cerr, 2);
            }
        } catch (const std::exception &e) {
            std::cerr << "swccd: " << e.what() << "\n";
            return 2;
        }
    }
    if (config.socketPath.empty()) {
        std::cerr << "swccd: --socket is required\n";
        return usage(std::cerr, 2);
    }

    if (::pipe(g_signal_pipe) != 0) {
        std::cerr << "swccd: cannot create signal pipe\n";
        return 1;
    }

    ServiceDaemon daemon(std::move(config));
    try {
        daemon.start();
    } catch (const std::exception &e) {
        std::cerr << "swccd: " << e.what() << "\n";
        return 1;
    }
    g_daemon = &daemon;

    struct sigaction action = {};
    action.sa_handler = handleSignal;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGUSR1, &action, nullptr);

    // The ready line tooling waits for (flushed before blocking).
    std::cout << "swccd: listening on " << daemon.config().socketPath
              << std::endl;

    // Park until a signal arrives (EINTR or a byte on the pipe).
    // SIGUSR1 ('u') dumps the flight recorder and keeps serving;
    // anything else starts the drain.
    for (;;) {
        struct pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
        const int rc = ::poll(&pfd, 1, -1);
        if (rc < 0 && errno == EINTR) {
            continue;
        }
        if (rc <= 0) {
            break;
        }
        char byte = 0;
        if (::read(g_signal_pipe[0], &byte, 1) <= 0) {
            break;
        }
        if (byte == 'u') {
            try {
                std::cout << "swccd: flight recorder dumped to "
                          << daemon.dumpFlightRecorder()
                          << std::endl;
            } catch (const std::exception &e) {
                std::cerr << "swccd: flight-recorder dump failed: "
                          << e.what() << "\n";
            }
            continue;
        }
        break;
    }

    g_daemon = nullptr;
    daemon.stop();
    std::cout << daemon.statsJson() << std::endl;
    try {
        swcc::obs::finalize();
    } catch (const std::exception &e) {
        std::cerr << "swccd: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
