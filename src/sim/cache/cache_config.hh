/**
 * @file
 * Cache geometry configuration.
 */

#ifndef SWCC_SIM_CACHE_CACHE_CONFIG_HH
#define SWCC_SIM_CACHE_CACHE_CONFIG_HH

#include <bit>
#include <cstddef>
#include <stdexcept>

namespace swcc
{

/**
 * Geometry of one per-processor cache.
 *
 * The paper simulates unified (combined instruction and data) caches of
 * 16K, 64K and 256K bytes with 16-byte blocks; associativity is
 * configurable here with a direct-mapped default, typical of the
 * period's machines.
 *
 * All sizes are powers of two (enforced by validate()), so address
 * decomposition never divides: the block offset is a shift by
 * blockShift() and the set index a mask with setMask(). The simulator
 * hot path relies on this invariant.
 */
struct CacheConfig
{
    std::size_t sizeBytes = 64 * 1024;
    std::size_t blockBytes = 16;
    std::size_t associativity = 1;

    /** Number of sets implied by the geometry. */
    std::size_t
    numSets() const
    {
        return sizeBytes / (blockBytes * associativity);
    }

    /** Total number of lines. */
    std::size_t
    numLines() const
    {
        return sizeBytes / blockBytes;
    }

    /** log2(blockBytes): shift that strips the block offset. */
    unsigned
    blockShift() const
    {
        return static_cast<unsigned>(std::countr_zero(blockBytes));
    }

    /** numSets() - 1: mask that extracts the set index. */
    std::size_t
    setMask() const
    {
        return numSets() - 1;
    }

    /**
     * Checks that sizes are powers of two and consistent.
     *
     * The power-of-two requirements are not merely conventional: the
     * cache's shift/mask address decomposition (blockShift()/setMask())
     * is only correct for power-of-two block sizes and set counts.
     *
     * @throws std::invalid_argument on a malformed geometry.
     */
    void
    validate() const
    {
        auto pow2 = [](std::size_t v) {
            return v != 0 && (v & (v - 1)) == 0;
        };
        if (!pow2(sizeBytes) || !pow2(blockBytes)) {
            throw std::invalid_argument(
                "cache size and block size must be powers of two");
        }
        if (associativity == 0) {
            throw std::invalid_argument("associativity must be positive");
        }
        if (blockBytes * associativity > sizeBytes ||
            !pow2(numSets())) {
            throw std::invalid_argument(
                "cache geometry does not yield a power-of-two set count");
        }
    }
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_CACHE_CONFIG_HH
