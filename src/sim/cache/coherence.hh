/**
 * @file
 * Coherence protocol interface for the multiprocessor simulator.
 */

#ifndef SWCC_SIM_CACHE_COHERENCE_HH
#define SWCC_SIM_CACHE_COHERENCE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "core/operation.hh"
#include "core/types.hh"
#include "sim/cache/cache.hh"
#include "sim/cache/holder_map.hh"
#include "sim/trace/trace_event.hh"

namespace swcc
{

/**
 * What one trace reference did, expressed as system-model operations.
 *
 * The timing layer prices each operation with the bus cost table; the
 * protocol layer only decides *which* operations happened. A single
 * reference produces at most three operations (e.g. a Dragon write
 * miss: a cache-supplied fetch followed by a write broadcast).
 * Instruction execution itself (the always-present 1-cycle operation)
 * is accounted by the timing layer, not reported here.
 */
struct AccessResult
{
    static constexpr std::size_t kMaxOps = 3;

    std::array<Operation, kMaxOps> ops{};
    std::uint8_t numOps = 0;

    /** Processors that lose a cycle snooping this access (Dragon). */
    std::vector<CpuId> steals;

    /** Clears the result for reuse. */
    void
    reset()
    {
        numOps = 0;
        steals.clear();
    }

    /** Appends an operation. */
    void
    addOp(Operation op)
    {
        if (numOps >= kMaxOps) {
            throw std::logic_error("too many operations for one access");
        }
        ops[numOps++] = op;
    }

    /** True if any recorded operation was a miss. */
    bool hasMiss() const;

    /** True if any recorded miss replaced a dirty block. */
    bool hasDirtyMiss() const;
};

/**
 * How a protocol locates the other caches holding a block.
 *
 * Directory is the optimized default: a block→holder-bitset
 * sharer index maintained on every fill/evict/invalidate lets snoops
 * visit only actual holders. ReferenceScan is the retained
 * pre-directory path — an O(P) probe of every other cache — kept so
 * that tests and the perf harness can assert the two produce
 * byte-identical statistics and measure the speedup.
 */
enum class SnoopPath : std::uint8_t
{
    Directory,
    ReferenceScan,
};

/**
 * A cache-coherence protocol driving all per-processor caches.
 *
 * The protocol owns the caches so that it can snoop across them, which
 * models the atomic bus of the paper's simulator: one reference
 * completes (including all state transitions in every cache) before the
 * next begins.
 *
 * Alongside the caches the base class maintains a sharer index: for
 * every resident block, a bitset of the caches holding it. Concrete
 * protocols keep it consistent by routing every line installation and
 * invalidation through fillLine()/invalidateLine()/evict(), and in
 * exchange get O(sharers) holder iteration instead of O(P) snooping.
 */
class CoherenceProtocol
{
  public:
    /** Holder bitset: bit c set means cache c holds the block. */
    using HolderMask = std::uint64_t;

    /** Largest processor count the sharer index can represent. */
    static constexpr CpuId kMaxDirectoryCpus = 64;

    /**
     * @param cache_config Geometry of every per-processor cache.
     * @param num_cpus Number of processors.
     */
    CoherenceProtocol(const CacheConfig &cache_config, CpuId num_cpus);

    virtual ~CoherenceProtocol() = default;

    CoherenceProtocol(const CoherenceProtocol &) = delete;
    CoherenceProtocol &operator=(const CoherenceProtocol &) = delete;

    /**
     * Applies one trace reference: updates cache state everywhere and
     * reports the system-model operations it triggered.
     *
     * @param cpu Issuing processor.
     * @param type Reference kind.
     * @param addr Referenced byte address.
     * @param out Result, reset() by this call.
     */
    virtual void access(CpuId cpu, RefType type, Addr addr,
                        AccessResult &out) = 0;

    /**
     * Human-readable protocol name ("Dragon", "Write-Invalidate",
     * ...). Extension protocols are not restricted to the paper's
     * four schemes.
     */
    virtual std::string_view name() const = 0;

    /** Number of processors. */
    CpuId numCpus() const { return static_cast<CpuId>(caches_.size()); }

    /** A processor's cache, for tests and invariant checks. */
    const Cache &cache(CpuId cpu) const { return caches_[cpu]; }

    /**
     * Selects the snoop path. Directory requests fall back to
     * ReferenceScan beyond kMaxDirectoryCpus processors. Must be
     * called on a cold system (before the first access).
     *
     * @throws std::logic_error if any cache already holds lines.
     */
    void setSnoopPath(SnoopPath path);

    /** The effective snoop path (after any fallback). */
    SnoopPath
    snoopPath() const
    {
        return useDirectory_ ? SnoopPath::Directory
                             : SnoopPath::ReferenceScan;
    }

    /**
     * The sharer index's holder bitset for @p block (0 when absent or
     * when the directory is inactive); for tests and invariants.
     */
    HolderMask holderMask(Addr block) const;

    /**
     * The sharer index's dirty-holder bitset for @p block — the
     * holders whose copy is in an owner (dirty) state; for tests and
     * invariants. Always a subset of holderMask().
     */
    HolderMask dirtyHolderMask(Addr block) const;

    /** Number of blocks the sharer index currently tracks. */
    std::size_t directoryBlocks() const { return directory_.size(); }

  protected:
    /**
     * Evicts @p victim if valid and reports whether a write-back was
     * needed (i.e. the victim was dirty).
     */
    bool evict(CpuId cpu, CacheLine &victim);

    /**
     * Installs @p addr's block into @p victim of @p cpu's cache and
     * records the holder in the sharer index.
     */
    void fillLine(CpuId cpu, CacheLine &victim, Addr addr,
                  LineState state);

    /**
     * Invalidates @p line of @p cpu's cache and removes the holder
     * from the sharer index.
     */
    void invalidateLine(CpuId cpu, CacheLine &line);

    /**
     * Rewrites a valid @p line's state, keeping the sharer index's
     * dirty-holder bitset in sync when the transition crosses the
     * clean/dirty boundary. Every protocol state transition on a
     * valid line must go through here (or fillLine()/
     * invalidateLine()) so that dirtyElsewhere() can answer from the
     * index alone, without probing holder caches.
     */
    void
    setLineState(CpuId cpu, CacheLine &line, LineState state)
    {
        if (useDirectory_ &&
            isDirtyState(line.state) != isDirtyState(state)) {
            directory_.setDirty(line.blockAddr, cpu,
                                isDirtyState(state));
        }
        line.state = state;
    }

    /**
     * True if another cache holds @p block dirty. On the directory
     * path this is one hash probe of the dirty-holder bitset; the
     * reference scan probes every other cache.
     */
    bool dirtyElsewhere(CpuId cpu, Addr block) const;

    /** Other caches currently holding @p block (excluding @p cpu). */
    unsigned countOtherHolders(CpuId cpu, Addr block) const;

    /**
     * Invokes fn(other, line) for every other cache holding @p block,
     * in ascending processor order (the same order as the reference
     * scan, so the two paths yield identical statistics). @p fn may
     * invalidate the line it is handed via invalidateLine().
     */
    template <typename Fn>
    void
    forEachOtherHolder(CpuId cpu, Addr block, Fn &&fn)
    {
        if (useDirectory_) {
            HolderMask mask = directory_.mask(block) & ~cpuBit(cpu);
            while (mask != 0) {
                const auto other =
                    static_cast<CpuId>(std::countr_zero(mask));
                mask &= mask - 1;
                fn(other, *caches_[other].find(block));
            }
            return;
        }
        for (CpuId other = 0; other < numCpus(); ++other) {
            if (other == cpu) {
                continue;
            }
            if (CacheLine *line = caches_[other].find(block)) {
                fn(other, *line);
            }
        }
    }

    std::vector<Cache> caches_;

  private:
    static HolderMask
    cpuBit(CpuId cpu)
    {
        return HolderMask{1} << cpu;
    }

    /** Block → bitset of holding caches; empty entries are erased. */
    HolderMap directory_;
    bool useDirectory_ = true;
};

/**
 * Checks the cross-cache single-owner/exclusivity invariants:
 *
 *  - a block Exclusive or Dirty in one cache appears in no other cache;
 *  - at most one cache holds a block in an owner (dirty) state;
 *  - SharedClean/SharedDirty states never coexist with Exclusive/Dirty
 *    for the same block;
 *  - when the sharer index is active, it lists exactly the holders the
 *    caches contain, block for block.
 *
 * @throws std::logic_error describing the first violation found.
 */
void checkCoherenceInvariants(const CoherenceProtocol &protocol);

} // namespace swcc

#endif // SWCC_SIM_CACHE_COHERENCE_HH
