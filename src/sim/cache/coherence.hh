/**
 * @file
 * Coherence protocol interface for the multiprocessor simulator.
 */

#ifndef SWCC_SIM_CACHE_COHERENCE_HH
#define SWCC_SIM_CACHE_COHERENCE_HH

#include <array>
#include <string_view>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/operation.hh"
#include "core/types.hh"
#include "sim/cache/cache.hh"
#include "sim/trace/trace_event.hh"

namespace swcc
{

/**
 * What one trace reference did, expressed as system-model operations.
 *
 * The timing layer prices each operation with the bus cost table; the
 * protocol layer only decides *which* operations happened. A single
 * reference produces at most three operations (e.g. a Dragon write
 * miss: a cache-supplied fetch followed by a write broadcast).
 * Instruction execution itself (the always-present 1-cycle operation)
 * is accounted by the timing layer, not reported here.
 */
struct AccessResult
{
    static constexpr std::size_t kMaxOps = 3;

    std::array<Operation, kMaxOps> ops{};
    std::uint8_t numOps = 0;

    /** Processors that lose a cycle snooping this access (Dragon). */
    std::vector<CpuId> steals;

    /** Clears the result for reuse. */
    void
    reset()
    {
        numOps = 0;
        steals.clear();
    }

    /** Appends an operation. */
    void
    addOp(Operation op)
    {
        if (numOps >= kMaxOps) {
            throw std::logic_error("too many operations for one access");
        }
        ops[numOps++] = op;
    }

    /** True if any recorded operation was a miss. */
    bool hasMiss() const;

    /** True if any recorded miss replaced a dirty block. */
    bool hasDirtyMiss() const;
};

/**
 * A cache-coherence protocol driving all per-processor caches.
 *
 * The protocol owns the caches so that it can snoop across them, which
 * models the atomic bus of the paper's simulator: one reference
 * completes (including all state transitions in every cache) before the
 * next begins.
 */
class CoherenceProtocol
{
  public:
    /**
     * @param cache_config Geometry of every per-processor cache.
     * @param num_cpus Number of processors.
     */
    CoherenceProtocol(const CacheConfig &cache_config, CpuId num_cpus);

    virtual ~CoherenceProtocol() = default;

    CoherenceProtocol(const CoherenceProtocol &) = delete;
    CoherenceProtocol &operator=(const CoherenceProtocol &) = delete;

    /**
     * Applies one trace reference: updates cache state everywhere and
     * reports the system-model operations it triggered.
     *
     * @param cpu Issuing processor.
     * @param type Reference kind.
     * @param addr Referenced byte address.
     * @param out Result, reset() by this call.
     */
    virtual void access(CpuId cpu, RefType type, Addr addr,
                        AccessResult &out) = 0;

    /**
     * Human-readable protocol name ("Dragon", "Write-Invalidate",
     * ...). Extension protocols are not restricted to the paper's
     * four schemes.
     */
    virtual std::string_view name() const = 0;

    /** Number of processors. */
    CpuId numCpus() const { return static_cast<CpuId>(caches_.size()); }

    /** A processor's cache, for tests and invariant checks. */
    const Cache &cache(CpuId cpu) const { return caches_[cpu]; }

  protected:
    /**
     * Evicts @p victim if valid and reports whether a write-back was
     * needed (i.e. the victim was dirty).
     */
    bool evict(CpuId cpu, CacheLine &victim);

    std::vector<Cache> caches_;
};

/**
 * Checks the cross-cache single-owner/exclusivity invariants:
 *
 *  - a block Exclusive or Dirty in one cache appears in no other cache;
 *  - at most one cache holds a block in an owner (dirty) state;
 *  - SharedClean/SharedDirty states never coexist with Exclusive/Dirty
 *    for the same block.
 *
 * @throws std::logic_error describing the first violation found.
 */
void checkCoherenceInvariants(const CoherenceProtocol &protocol);

} // namespace swcc

#endif // SWCC_SIM_CACHE_COHERENCE_HH
