#include "sim/cache/swflush_protocol.hh"

namespace swcc
{

void
SwFlushProtocol::access(CpuId cpu, RefType type, Addr addr,
                        AccessResult &out)
{
    out.reset();
    Cache &cache = caches_[cpu];

    if (type == RefType::Flush) {
        ++measured_.flushes;
        CacheLine *line = cache.find(addr);
        if (line == nullptr) {
            // Already replaced; the flush instruction still executes.
            ++measured_.missedFlushes;
            out.addOp(Operation::CleanFlush);
            return;
        }
        const bool dirty = isDirtyState(line->state);
        if (dirty) {
            ++measured_.dirtyFlushes;
        }
        invalidateLine(cpu, *line);
        out.addOp(dirty ? Operation::DirtyFlush : Operation::CleanFlush);
        return;
    }

    if (CacheLine *line = cache.find(addr)) {
        cache.touch(*line);
        if (type == RefType::Store) {
            setLineState(cpu, *line, LineState::Dirty);
        }
        return;
    }

    CacheLine &victim = cache.victimFor(addr);
    const bool dirty_victim = evict(cpu, victim);
    out.addOp(dirty_victim ? Operation::DirtyMissMem
                           : Operation::CleanMissMem);
    fillLine(cpu, victim, addr,
             type == RefType::Store ? LineState::Dirty
                                    : LineState::Exclusive);
}

} // namespace swcc
