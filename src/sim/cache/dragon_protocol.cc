#include "sim/cache/dragon_protocol.hh"

namespace swcc
{

double
DragonMeasurements::oclean(double fallback) const
{
    if (sharedMisses == 0) {
        return fallback;
    }
    return static_cast<double>(sharedMissesClean) /
        static_cast<double>(sharedMisses);
}

double
DragonMeasurements::opres(double fallback) const
{
    if (sharedWrites == 0) {
        return fallback;
    }
    return static_cast<double>(sharedWritesPresent) /
        static_cast<double>(sharedWrites);
}

double
DragonMeasurements::nshd(double fallback) const
{
    if (broadcasts == 0) {
        return fallback;
    }
    return static_cast<double>(broadcastCopies) /
        static_cast<double>(broadcasts);
}

DragonProtocol::DragonProtocol(const CacheConfig &cache_config,
                               CpuId num_cpus,
                               SharedClassifier measure_shared)
    : CoherenceProtocol(cache_config, num_cpus),
      measureShared_(std::move(measure_shared))
{
}

CacheLine &
DragonProtocol::handleMiss(CpuId cpu, Addr addr, AccessResult &out)
{
    Cache &cache = caches_[cpu];
    const Addr block = cache.blockAddr(addr);

    CacheLine &victim = cache.victimFor(addr);
    const bool dirty_victim = evict(cpu, victim);

    const bool supplied_by_cache = dirtyElsewhere(cpu, block);
    unsigned holders = 0;
    // Safe: victim was invalidated above, so the holder walk can't
    // alias it.
    forEachOtherHolder(cpu, block, [&](CpuId other, CacheLine &line) {
        ++holders;
        // Everyone sees the fill on the bus and knows the block is now
        // shared. Dirty owners keep ownership (they supplied the data).
        if (line.state == LineState::Exclusive) {
            setLineState(other, line, LineState::SharedClean);
        } else if (line.state == LineState::Dirty) {
            setLineState(other, line, LineState::SharedDirty);
        }
    });

    if (supplied_by_cache) {
        out.addOp(dirty_victim ? Operation::DirtyMissCache
                               : Operation::CleanMissCache);
    } else {
        out.addOp(dirty_victim ? Operation::DirtyMissMem
                               : Operation::CleanMissMem);
    }

    fillLine(cpu, victim, addr,
             holders > 0 ? LineState::SharedClean
                         : LineState::Exclusive);
    return victim;
}

void
DragonProtocol::broadcast(CpuId cpu, CacheLine &line, AccessResult &out)
{
    const Addr block = line.blockAddr;
    out.addOp(Operation::WriteBroadcast);
    ++measured_.broadcasts;

    unsigned holders = 0;
    forEachOtherHolder(cpu, block, [&](CpuId other, CacheLine &copy) {
        ++holders;
        // The holder's controller updates the word in place, stealing a
        // cycle from its processor; a previous owner loses ownership.
        out.steals.push_back(other);
        setLineState(other, copy, LineState::SharedClean);
    });
    measured_.broadcastCopies += holders;

    setLineState(cpu, line,
                 holders > 0 ? LineState::SharedDirty
                             : LineState::Dirty);
}

void
DragonProtocol::access(CpuId cpu, RefType type, Addr addr,
                       AccessResult &out)
{
    out.reset();
    if (type == RefType::Flush) {
        // Hardware coherence: software flushes are unnecessary no-ops.
        return;
    }

    Cache &cache = caches_[cpu];
    const Addr block = cache.blockAddr(addr);
    const bool measured = measureShared_ && isData(type) &&
        measureShared_(block);

    CacheLine *line = cache.find(addr);
    if (line != nullptr) {
        cache.touch(*line);
    } else {
        if (measured) {
            ++measured_.sharedMisses;
            if (!dirtyElsewhere(cpu, block)) {
                ++measured_.sharedMissesClean;
            }
        }
        line = &handleMiss(cpu, addr, out);
    }

    if (type != RefType::Store) {
        return;
    }

    if (measured) {
        ++measured_.sharedWrites;
        if (countOtherHolders(cpu, block) > 0) {
            ++measured_.sharedWritesPresent;
        }
    }

    switch (line->state) {
      case LineState::Exclusive:
      case LineState::Dirty:
        // Sole copy: write locally, no bus action.
        setLineState(cpu, *line, LineState::Dirty);
        return;
      case LineState::SharedClean:
      case LineState::SharedDirty:
        broadcast(cpu, *line, out);
        return;
      case LineState::Invalid:
        throw std::logic_error("store resolved to an invalid line");
    }
}

} // namespace swcc
