#include "sim/cache/mesi_family_protocol.hh"

namespace swcc
{

MesiFamilyProtocol::MesiFamilyProtocol(MesiVariant variant,
                                       const CacheConfig &cache_config,
                                       CpuId num_cpus)
    : CoherenceProtocol(cache_config, num_cpus), variant_(variant),
      lostBlocks_(num_cpus)
{
}

int
MesiFamilyProtocol::forwarderOf(Addr block) const
{
    const auto it = forwarder_.find(block);
    return it == forwarder_.end() ? -1 : static_cast<int>(it->second);
}

unsigned
MesiFamilyProtocol::invalidateRemotes(CpuId cpu, Addr block,
                                      AccessResult &out)
{
    unsigned copies = 0;
    forEachOtherHolder(cpu, block, [&](CpuId other, CacheLine &line) {
        ++copies;
        invalidateLine(other, line);
        lostBlocks_[other].insert(block);
        // The victim's controller spends a snoop cycle killing the
        // line, exactly like a Dragon update.
        out.steals.push_back(other);
    });
    measured_.copiesInvalidated += copies;
    // The writer now holds the sole (dirty) copy, so no clean
    // forwarder for the block can exist.
    if (variant_ == MesiVariant::Mesif) {
        forwarder_.erase(block);
    }
    return copies;
}

CacheLine &
MesiFamilyProtocol::handleMiss(CpuId cpu, RefType type, Addr addr,
                               AccessResult &out)
{
    Cache &cache = caches_[cpu];
    const Addr block = cache.blockAddr(addr);

    if (lostBlocks_[cpu].erase(block) > 0) {
        ++measured_.coherenceMisses;
    }

    CacheLine &victim = cache.victimFor(addr);
    const bool victim_valid = victim.state != LineState::Invalid;
    const Addr victim_block = victim.blockAddr;
    const bool dirty_victim = evict(cpu, victim);
    if (variant_ == MesiVariant::Mesif && victim_valid) {
        // An evicted forwarder copy silently drops the slot; the next
        // shared miss to the block re-seats it (or goes to memory).
        const auto it = forwarder_.find(victim_block);
        if (it != forwarder_.end() && it->second == cpu) {
            forwarder_.erase(it);
        }
    }

    bool supplied_by_owner = false;
    unsigned holders = 0;
    forEachOtherHolder(cpu, block, [&](CpuId other, CacheLine &line) {
        ++holders;
        if (isDirtyState(line.state)) {
            supplied_by_owner = true;
            if (variant_ == MesiVariant::Moesi) {
                // MOESI: the owner supplies the block and *keeps*
                // ownership (Owned); memory stays stale and the
                // write-back is deferred to the owner's eviction.
                setLineState(other, line, LineState::SharedDirty);
            } else {
                // Illinois: the owner supplies the block and memory is
                // updated in the same transaction; the owner keeps a
                // shared clean copy.
                setLineState(other, line, LineState::SharedClean);
            }
        } else if (line.state == LineState::Exclusive) {
            setLineState(other, line, LineState::SharedClean);
        }
    });

    bool supplied_by_cache = supplied_by_owner;
    if (supplied_by_owner) {
        ++measured_.ownerSupplies;
    } else if (variant_ == MesiVariant::Mesif && holders > 0 &&
               forwarder_.contains(block)) {
        // The clean forwarder supplies the block cache-to-cache.
        supplied_by_cache = true;
        ++measured_.forwardSupplies;
    }

    if (supplied_by_cache) {
        out.addOp(dirty_victim ? Operation::DirtyMissCache
                               : Operation::CleanMissCache);
    } else {
        out.addOp(dirty_victim ? Operation::DirtyMissMem
                               : Operation::CleanMissMem);
    }

    fillLine(cpu, victim, addr,
             holders > 0 ? LineState::SharedClean
                         : LineState::Exclusive);
    if (variant_ == MesiVariant::Mesif) {
        if (holders > 0) {
            // The newest sharer takes the forwarder slot (real MESIF
            // hands F to the most recent requester, keeping the slot
            // on the copy least likely to be evicted soon).
            forwarder_[block] = cpu;
        } else {
            forwarder_.erase(block);
        }
    }

    if (type == RefType::Store) {
        // Read-for-ownership: kill the other copies and write.
        if (holders > 0) {
            out.addOp(Operation::WriteBroadcast);
            ++measured_.invalidations;
            invalidateRemotes(cpu, block, out);
        }
        CacheLine *line = cache.find(addr);
        setLineState(cpu, *line, LineState::Dirty);
        return *line;
    }
    return victim;
}

void
MesiFamilyProtocol::access(CpuId cpu, RefType type, Addr addr,
                           AccessResult &out)
{
    out.reset();
    if (type == RefType::Flush) {
        // Hardware coherence: flushes are unnecessary no-ops.
        return;
    }

    Cache &cache = caches_[cpu];

    CacheLine *line = cache.find(addr);
    if (line == nullptr) {
        handleMiss(cpu, type, addr, out);
        return;
    }
    cache.touch(*line);

    if (type != RefType::Store) {
        return;
    }

    switch (line->state) {
      case LineState::Exclusive:
      case LineState::Dirty:
        setLineState(cpu, *line, LineState::Dirty);
        return;
      case LineState::SharedClean: {
        out.addOp(Operation::WriteBroadcast);
        ++measured_.invalidations;
        invalidateRemotes(cpu, cache.blockAddr(addr), out);
        setLineState(cpu, *line, LineState::Dirty);
        return;
      }
      case LineState::SharedDirty:
        if (variant_ == MesiVariant::Moesi) {
            // The owner upgrades: invalidate the other sharers and
            // return to the sole-dirty state.
            out.addOp(Operation::WriteBroadcast);
            ++measured_.invalidations;
            invalidateRemotes(cpu, cache.blockAddr(addr), out);
            setLineState(cpu, *line, LineState::Dirty);
            return;
        }
        [[fallthrough]];
      case LineState::Invalid:
        throw std::logic_error(
            "MESI-family store reached an impossible line state");
    }
}

} // namespace swcc
