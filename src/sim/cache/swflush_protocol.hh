/**
 * @file
 * Software-Flush scheme: cached shared data with explicit flushes.
 */

#ifndef SWCC_SIM_CACHE_SWFLUSH_PROTOCOL_HH
#define SWCC_SIM_CACHE_SWFLUSH_PROTOCOL_HH

#include <cstdint>

#include "sim/cache/coherence.hh"

namespace swcc
{

/** Flush-behaviour counters for analysis and tests. */
struct FlushMeasurements
{
    std::uint64_t flushes = 0;
    std::uint64_t dirtyFlushes = 0;
    /** Flushes that found the block absent (already replaced). */
    std::uint64_t missedFlushes = 0;
};

/**
 * The paper's Software-Flush scheme: shared blocks are cached normally,
 * and compiler- or programmer-inserted flush instructions remove them
 * (writing back if dirty) at consistency boundaries such as
 * critical-section exits. The trace carries the flush instructions; the
 * protocol executes them. A flush of an absent block (replaced since
 * its last use) costs the clean-flush time and does nothing.
 */
class SwFlushProtocol : public CoherenceProtocol
{
  public:
    using CoherenceProtocol::CoherenceProtocol;

    void access(CpuId cpu, RefType type, Addr addr,
                AccessResult &out) override;

    std::string_view name() const override { return "Software-Flush"; }

    const FlushMeasurements &measurements() const { return measured_; }

  private:
    FlushMeasurements measured_;
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_SWFLUSH_PROTOCOL_HH
