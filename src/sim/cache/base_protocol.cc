#include "sim/cache/base_protocol.hh"

namespace swcc
{

void
BaseProtocol::access(CpuId cpu, RefType type, Addr addr, AccessResult &out)
{
    out.reset();
    if (type == RefType::Flush) {
        // Hardware-agnostic trace may carry flushes; Base ignores them.
        return;
    }

    Cache &cache = caches_[cpu];
    if (CacheLine *line = cache.find(addr)) {
        cache.touch(*line);
        if (type == RefType::Store) {
            setLineState(cpu, *line, LineState::Dirty);
        }
        return;
    }

    CacheLine &victim = cache.victimFor(addr);
    const bool dirty_victim = evict(cpu, victim);
    out.addOp(dirty_victim ? Operation::DirtyMissMem
                           : Operation::CleanMissMem);
    fillLine(cpu, victim, addr,
             type == RefType::Store ? LineState::Dirty
                                    : LineState::Exclusive);
}

} // namespace swcc
