#include "sim/cache/coherence.hh"

#include <atomic>
#include <string>
#include <unordered_map>

#include "core/obs/log.hh"
#include "core/obs/metrics.hh"

namespace swcc
{

namespace
{

#if SWCC_OBS_ENABLED
/** Publishes the active snoop path (1 = Directory, 0 = scan). */
void
noteSnoopPath(bool directory)
{
    static obs::Gauge &path =
        obs::metrics().gauge("sim.snoop_path.directory");
    path.set(directory ? 1.0 : 0.0);
}
#endif

bool
isMissOp(Operation op)
{
    return op == Operation::CleanMissMem || op == Operation::DirtyMissMem ||
        op == Operation::CleanMissCache || op == Operation::DirtyMissCache;
}

bool
isDirtyMissOp(Operation op)
{
    return op == Operation::DirtyMissMem || op == Operation::DirtyMissCache;
}

} // namespace

bool
AccessResult::hasMiss() const
{
    for (std::uint8_t i = 0; i < numOps; ++i) {
        if (isMissOp(ops[i])) {
            return true;
        }
    }
    return false;
}

bool
AccessResult::hasDirtyMiss() const
{
    for (std::uint8_t i = 0; i < numOps; ++i) {
        if (isDirtyMissOp(ops[i])) {
            return true;
        }
    }
    return false;
}

CoherenceProtocol::CoherenceProtocol(const CacheConfig &cache_config,
                                     CpuId num_cpus)
{
    if (num_cpus == 0) {
        throw std::invalid_argument("need at least one processor");
    }
    caches_.reserve(num_cpus);
    for (CpuId i = 0; i < num_cpus; ++i) {
        caches_.emplace_back(cache_config);
    }
    useDirectory_ = num_cpus <= kMaxDirectoryCpus;
    if (useDirectory_) {
        // Worst case: every line of every cache holds a distinct
        // block. Sizing for it up front means the map never rehashes.
        directory_ = HolderMap(static_cast<std::size_t>(num_cpus) *
                               caches_.front().lines().size());
    }
#if SWCC_OBS_ENABLED
    noteSnoopPath(useDirectory_);
#endif
}

void
CoherenceProtocol::setSnoopPath(SnoopPath path)
{
    for (const Cache &cache : caches_) {
        if (cache.validLines() != 0) {
            throw std::logic_error(
                "setSnoopPath() requires a cold system");
        }
    }
    if (path == SnoopPath::Directory &&
        numCpus() > kMaxDirectoryCpus) {
        // The silent fallback here once made a 128-CPU "directory"
        // benchmark measure the scan path; say what actually runs —
        // but only once, or a >64-CPU sweep drowns the log in the
        // same warning for every constructed system.
        static std::atomic<unsigned> fallback_warnings{0};
        const std::string message =
            "snoop path Directory requested for " +
            std::to_string(numCpus()) +
            " CPUs but the sharer index holds at most " +
            std::to_string(CoherenceProtocol::kMaxDirectoryCpus) +
            "; falling back to ReferenceScan";
        if (fallback_warnings.fetch_add(
                1, std::memory_order_relaxed) == 0) {
            SWCC_LOG_WARN(message +
                          " (further fallback warnings suppressed)");
        } else {
            SWCC_LOG_DEBUG(message);
        }
    }
    useDirectory_ = path == SnoopPath::Directory &&
        numCpus() <= kMaxDirectoryCpus;
    SWCC_LOG_DEBUG(std::string("snoop path set to ") +
                   (useDirectory_ ? "Directory" : "ReferenceScan"));
#if SWCC_OBS_ENABLED
    noteSnoopPath(useDirectory_);
#endif
}

CoherenceProtocol::HolderMask
CoherenceProtocol::holderMask(Addr block) const
{
    return directory_.mask(block);
}

CoherenceProtocol::HolderMask
CoherenceProtocol::dirtyHolderMask(Addr block) const
{
    return directory_.dirtyMask(block);
}

bool
CoherenceProtocol::evict(CpuId cpu, CacheLine &victim)
{
    if (!isValidState(victim.state)) {
        return false;
    }
    const bool dirty = isDirtyState(victim.state);
    invalidateLine(cpu, victim);
    return dirty;
}

void
CoherenceProtocol::fillLine(CpuId cpu, CacheLine &victim, Addr addr,
                            LineState state)
{
    caches_[cpu].fill(victim, addr, state);
    if (useDirectory_) {
        directory_.setBit(victim.blockAddr, cpu, isDirtyState(state));
    }
}

void
CoherenceProtocol::invalidateLine(CpuId cpu, CacheLine &line)
{
    if (useDirectory_ && isValidState(line.state)) {
        directory_.clearBit(line.blockAddr, cpu);
    }
    caches_[cpu].invalidate(line);
}

bool
CoherenceProtocol::dirtyElsewhere(CpuId cpu, Addr block) const
{
    if (useDirectory_) {
        // The dirty-holder bitset is maintained by fillLine()/
        // setLineState()/invalidateLine(), so no holder cache needs
        // to be probed at all.
        return (directory_.dirtyMask(block) & ~cpuBit(cpu)) != 0;
    }
    for (CpuId other = 0; other < numCpus(); ++other) {
        if (other == cpu) {
            continue;
        }
        const CacheLine *line = caches_[other].find(block);
        if (line != nullptr && isDirtyState(line->state)) {
            return true;
        }
    }
    return false;
}

unsigned
CoherenceProtocol::countOtherHolders(CpuId cpu, Addr block) const
{
    if (useDirectory_) {
        return static_cast<unsigned>(
            std::popcount(directory_.mask(block) & ~cpuBit(cpu)));
    }
    unsigned holders = 0;
    for (CpuId other = 0; other < numCpus(); ++other) {
        if (other != cpu && caches_[other].find(block) != nullptr) {
            ++holders;
        }
    }
    return holders;
}

void
checkCoherenceInvariants(const CoherenceProtocol &protocol)
{
#if SWCC_OBS_ENABLED
    static obs::Counter &checks =
        obs::metrics().counter("sim.invariant_checks");
    checks.add(1);
#endif
    struct BlockView
    {
        unsigned holders = 0;
        unsigned owners = 0;
        unsigned exclusives = 0;
        CoherenceProtocol::HolderMask mask = 0;
        CoherenceProtocol::HolderMask dirty = 0;
    };
    std::unordered_map<Addr, BlockView> blocks;

    for (CpuId cpu = 0; cpu < protocol.numCpus(); ++cpu) {
        for (const CacheLine &line : protocol.cache(cpu).lines()) {
            if (!isValidState(line.state)) {
                continue;
            }
            BlockView &view = blocks[line.blockAddr];
            ++view.holders;
            view.mask |= CoherenceProtocol::HolderMask{1} << cpu;
            if (isDirtyState(line.state)) {
                ++view.owners;
                view.dirty |= CoherenceProtocol::HolderMask{1} << cpu;
            }
            if (line.state == LineState::Exclusive ||
                line.state == LineState::Dirty) {
                ++view.exclusives;
            }
        }
    }

    for (const auto &[addr, view] : blocks) {
        if (view.exclusives > 0 && view.holders > 1) {
            throw std::logic_error(
                "block " + std::to_string(addr) +
                " is exclusive in one cache but held by " +
                std::to_string(view.holders));
        }
        if (view.owners > 1) {
            throw std::logic_error(
                "block " + std::to_string(addr) + " has " +
                std::to_string(view.owners) + " dirty owners");
        }
    }

    if (protocol.snoopPath() == SnoopPath::Directory) {
        if (protocol.directoryBlocks() != blocks.size()) {
            throw std::logic_error(
                "sharer index tracks " +
                std::to_string(protocol.directoryBlocks()) +
                " blocks but the caches hold " +
                std::to_string(blocks.size()));
        }
        for (const auto &[addr, view] : blocks) {
            if (protocol.holderMask(addr) != view.mask) {
                throw std::logic_error(
                    "sharer index disagrees with the caches on block " +
                    std::to_string(addr));
            }
            if (protocol.dirtyHolderMask(addr) != view.dirty) {
                throw std::logic_error(
                    "sharer index dirty bitset disagrees with the "
                    "caches on block " +
                    std::to_string(addr));
            }
        }
    }
}

} // namespace swcc
