#include "sim/cache/coherence.hh"

#include <string>
#include <unordered_map>

namespace swcc
{

namespace
{

bool
isMissOp(Operation op)
{
    return op == Operation::CleanMissMem || op == Operation::DirtyMissMem ||
        op == Operation::CleanMissCache || op == Operation::DirtyMissCache;
}

bool
isDirtyMissOp(Operation op)
{
    return op == Operation::DirtyMissMem || op == Operation::DirtyMissCache;
}

} // namespace

bool
AccessResult::hasMiss() const
{
    for (std::uint8_t i = 0; i < numOps; ++i) {
        if (isMissOp(ops[i])) {
            return true;
        }
    }
    return false;
}

bool
AccessResult::hasDirtyMiss() const
{
    for (std::uint8_t i = 0; i < numOps; ++i) {
        if (isDirtyMissOp(ops[i])) {
            return true;
        }
    }
    return false;
}

CoherenceProtocol::CoherenceProtocol(const CacheConfig &cache_config,
                                     CpuId num_cpus)
{
    if (num_cpus == 0) {
        throw std::invalid_argument("need at least one processor");
    }
    caches_.reserve(num_cpus);
    for (CpuId i = 0; i < num_cpus; ++i) {
        caches_.emplace_back(cache_config);
    }
}

bool
CoherenceProtocol::evict(CpuId cpu, CacheLine &victim)
{
    if (!isValidState(victim.state)) {
        return false;
    }
    const bool dirty = isDirtyState(victim.state);
    caches_[cpu].invalidate(victim);
    return dirty;
}

void
checkCoherenceInvariants(const CoherenceProtocol &protocol)
{
    struct BlockView
    {
        unsigned holders = 0;
        unsigned owners = 0;
        unsigned exclusives = 0;
    };
    std::unordered_map<Addr, BlockView> blocks;

    for (CpuId cpu = 0; cpu < protocol.numCpus(); ++cpu) {
        for (const CacheLine &line : protocol.cache(cpu).lines()) {
            if (!isValidState(line.state)) {
                continue;
            }
            BlockView &view = blocks[line.blockAddr];
            ++view.holders;
            if (isDirtyState(line.state)) {
                ++view.owners;
            }
            if (line.state == LineState::Exclusive ||
                line.state == LineState::Dirty) {
                ++view.exclusives;
            }
        }
    }

    for (const auto &[addr, view] : blocks) {
        if (view.exclusives > 0 && view.holders > 1) {
            throw std::logic_error(
                "block " + std::to_string(addr) +
                " is exclusive in one cache but held by " +
                std::to_string(view.holders));
        }
        if (view.owners > 1) {
            throw std::logic_error(
                "block " + std::to_string(addr) + " has " +
                std::to_string(view.owners) + " dirty owners");
        }
    }
}

} // namespace swcc
