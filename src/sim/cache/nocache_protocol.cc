#include "sim/cache/nocache_protocol.hh"

namespace swcc
{

NoCacheProtocol::NoCacheProtocol(const CacheConfig &cache_config,
                                 CpuId num_cpus, SharedClassifier shared)
    : CoherenceProtocol(cache_config, num_cpus), shared_(std::move(shared))
{
    if (!shared_) {
        throw std::invalid_argument(
            "No-Cache needs a shared-region classifier");
    }
}

void
NoCacheProtocol::access(CpuId cpu, RefType type, Addr addr,
                        AccessResult &out)
{
    out.reset();
    if (type == RefType::Flush) {
        // Nothing shared is ever cached; a flush has nothing to do.
        return;
    }

    Cache &cache = caches_[cpu];
    const Addr block = cache.blockAddr(addr);

    if (isData(type) && shared_(block)) {
        out.addOp(type == RefType::Store ? Operation::WriteThrough
                                         : Operation::ReadThrough);
        return;
    }

    if (CacheLine *line = cache.find(addr)) {
        cache.touch(*line);
        if (type == RefType::Store) {
            setLineState(cpu, *line, LineState::Dirty);
        }
        return;
    }

    CacheLine &victim = cache.victimFor(addr);
    const bool dirty_victim = evict(cpu, victim);
    out.addOp(dirty_victim ? Operation::DirtyMissMem
                           : Operation::CleanMissMem);
    fillLine(cpu, victim, addr,
             type == RefType::Store ? LineState::Dirty
                                    : LineState::Exclusive);
}

} // namespace swcc
