/**
 * @file
 * Set-associative cache with LRU replacement and per-line coherence
 * state.
 */

#ifndef SWCC_SIM_CACHE_CACHE_HH
#define SWCC_SIM_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/cache/cache_config.hh"
#include "sim/trace/trace_event.hh"

namespace swcc
{

/**
 * Coherence state of a cache line.
 *
 * Base, No-Cache, and Software-Flush use only Invalid / Exclusive /
 * Dirty. Dragon adds the shared states: SharedClean copies may exist in
 * several caches; a SharedDirty line is the *owner* of a block whose
 * memory copy is stale (exactly one owner can exist per block).
 */
enum class LineState : std::uint8_t
{
    Invalid,
    /** Valid, clean, only copy (Dragon "Valid-Exclusive"). */
    Exclusive,
    /** Valid, modified, only copy. */
    Dirty,
    /** Valid, clean, possibly also in other caches. */
    SharedClean,
    /** Valid, modified, possibly shared: this cache owns the block. */
    SharedDirty,
};

/** True for states whose eviction requires a write-back. */
constexpr bool
isDirtyState(LineState state)
{
    return state == LineState::Dirty || state == LineState::SharedDirty;
}

/** True for any valid state. */
constexpr bool
isValidState(LineState state)
{
    return state != LineState::Invalid;
}

/** One cache line: the block address it holds plus coherence state. */
struct CacheLine
{
    /** Block-aligned address of the held block (valid lines only). */
    Addr blockAddr = 0;
    LineState state = LineState::Invalid;
    /** LRU timestamp (larger = more recent). */
    std::uint64_t lastUse = 0;
};

/**
 * A single processor's cache.
 *
 * Purely structural: protocols decide state transitions; the cache
 * provides lookup, LRU victim selection, and iteration for invariant
 * checking.
 *
 * Address decomposition is shift/mask only (the power-of-two geometry
 * is enforced by CacheConfig::validate()), and a dense per-set tag
 * array shadows the line array so find() is a branch-light compare
 * loop: invalid ways carry a sentinel tag that no block-aligned
 * address can equal.
 */
class Cache
{
  public:
    /**
     * @param config Validated geometry.
     * @throws std::invalid_argument via config.validate().
     */
    explicit Cache(const CacheConfig &config);

    /** Block-aligned address of @p addr. */
    Addr
    blockAddr(Addr addr) const
    {
        return addr & blockMask_;
    }

    /**
     * Finds the valid line holding @p addr's block, or nullptr.
     * Does not update LRU state; call touch() on a hit.
     */
    CacheLine *
    find(Addr addr)
    {
        const Addr tag = addr & blockMask_;
        const std::size_t base = setBase(addr);
        for (std::size_t way = 0; way < assoc_; ++way) {
            if (tags_[base + way] == tag) {
                return &lines_[base + way];
            }
        }
        return nullptr;
    }

    const CacheLine *
    find(Addr addr) const
    {
        return const_cast<Cache *>(this)->find(addr);
    }

    /** Marks a line most recently used. */
    void touch(CacheLine &line);

    /**
     * Selects the replacement victim for @p addr's set: an invalid
     * line if present, otherwise the least recently used.
     */
    CacheLine &victimFor(Addr addr);

    /**
     * Installs @p addr's block into @p victim with @p state and marks
     * it most recently used. The caller is responsible for having
     * handled the victim's write-back.
     */
    void fill(CacheLine &victim, Addr addr, LineState state);

    /** Invalidates a line. */
    void invalidate(CacheLine &line);

    /** All lines, for snooping and invariant checks. */
    const std::vector<CacheLine> &lines() const { return lines_; }

    const CacheConfig &config() const { return config_; }

    /** Number of currently valid lines. */
    std::size_t validLines() const;

  private:
    /** Tag value of invalid ways; never block-aligned for real blocks. */
    static constexpr Addr kInvalidTag = ~Addr{0};

    /** First line index of @p addr's set. */
    std::size_t
    setBase(Addr addr) const
    {
        return ((static_cast<std::size_t>(addr >> blockShift_)) &
                setMask_) * assoc_;
    }

    CacheConfig config_;
    std::vector<CacheLine> lines_;
    /** tags_[i] == lines_[i].blockAddr for valid ways, else sentinel. */
    std::vector<Addr> tags_;
    std::uint64_t useCounter_ = 0;
    Addr blockMask_ = 0;
    unsigned blockShift_ = 0;
    std::size_t setMask_ = 0;
    std::size_t assoc_ = 1;
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_CACHE_HH
