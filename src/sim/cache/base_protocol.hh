/**
 * @file
 * Base "protocol": caching with no coherence actions at all.
 */

#ifndef SWCC_SIM_CACHE_BASE_PROTOCOL_HH
#define SWCC_SIM_CACHE_BASE_PROTOCOL_HH

#include "sim/cache/coherence.hh"

namespace swcc
{

/**
 * The paper's Base scheme: every reference is cached normally and no
 * coherence traffic is ever generated. Shared blocks may therefore be
 * stale across caches — Base is a performance upper bound, not a
 * correct machine. Flush events are ignored.
 */
class BaseProtocol : public CoherenceProtocol
{
  public:
    using CoherenceProtocol::CoherenceProtocol;

    void access(CpuId cpu, RefType type, Addr addr,
                AccessResult &out) override;

    std::string_view name() const override { return "Base"; }
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_BASE_PROTOCOL_HH
