/**
 * @file
 * The invalidate-based snoopy protocol family: MESI, MESIF, MOESI.
 *
 * One driver implements all three variants, because they share the
 * Illinois skeleton — a store to a shared line broadcasts an
 * invalidation killing every remote copy; misses to a block dirty
 * elsewhere are supplied by the owning cache — and differ only in two
 * policy points:
 *
 *  - MESIF adds a clean-forwarder slot: one clean sharer per block is
 *    designated to supply shared misses cache-to-cache, so clean-shared
 *    misses no longer go to memory.
 *  - MOESI adds the Owned state (mapped onto LineState::SharedDirty):
 *    a dirty owner supplying a miss keeps ownership and memory stays
 *    stale, deferring the write-back to the owner's eviction.
 *
 * MESI itself is behaviorally identical to the standalone
 * InvalidateProtocol extension, which the tests exploit as a
 * cross-implementation oracle.
 */

#ifndef SWCC_SIM_CACHE_MESI_FAMILY_PROTOCOL_HH
#define SWCC_SIM_CACHE_MESI_FAMILY_PROTOCOL_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/cache/coherence.hh"

namespace swcc
{

/** Which member of the invalidate family a driver instance runs. */
enum class MesiVariant : std::uint8_t
{
    Mesi,
    Mesif,
    Moesi,
};

/** The Scheme a variant corresponds to. */
constexpr Scheme
mesiVariantScheme(MesiVariant variant)
{
    switch (variant) {
      case MesiVariant::Mesi:  return Scheme::Mesi;
      case MesiVariant::Mesif: return Scheme::Mesif;
      case MesiVariant::Moesi: return Scheme::Moesi;
    }
    return Scheme::Mesi;
}

/** Counters describing a MESI-family run's coherence activity. */
struct MesiFamilyMeasurements
{
    /** Invalidation bus operations issued. */
    std::uint64_t invalidations = 0;
    /** Remote copies destroyed across all invalidations. */
    std::uint64_t copiesInvalidated = 0;
    /** Misses to blocks this cache once held but lost to a remote
     *  write (coherence misses). */
    std::uint64_t coherenceMisses = 0;
    /** Misses supplied by a dirty (or Owned) remote cache. */
    std::uint64_t ownerSupplies = 0;
    /** Misses supplied by the MESIF clean forwarder. */
    std::uint64_t forwardSupplies = 0;
};

/**
 * MESI / MESIF / MOESI snooping driver.
 *
 * States: Exclusive (clean, sole copy), Dirty (modified, sole copy),
 * SharedClean, and — MOESI only — SharedDirty as the Owned state
 * (modified, shared, memory stale). A store to a shared line is costed
 * as the 1-bus-cycle word broadcast of Table 1 and destroys every
 * remote copy, each victim cache losing one snoop cycle.
 */
class MesiFamilyProtocol : public CoherenceProtocol
{
  public:
    MesiFamilyProtocol(MesiVariant variant,
                       const CacheConfig &cache_config, CpuId num_cpus);

    void access(CpuId cpu, RefType type, Addr addr,
                AccessResult &out) override;

    std::string_view name() const override
    {
        return schemeName(mesiVariantScheme(variant_));
    }

    MesiVariant variant() const { return variant_; }

    const MesiFamilyMeasurements &measurements() const
    {
        return measured_;
    }

    /**
     * The CPU currently holding @p block's clean-forwarder slot, or
     * -1 when no forwarder exists (MESIF only; for tests).
     */
    int forwarderOf(Addr block) const;

  private:
    /** Handles a miss; returns the installed line. */
    CacheLine &handleMiss(CpuId cpu, RefType type, Addr addr,
                          AccessResult &out);

    /** Invalidates every remote copy of @p block; returns the count. */
    unsigned invalidateRemotes(CpuId cpu, Addr block, AccessResult &out);

    MesiVariant variant_;
    MesiFamilyMeasurements measured_;
    /** Blocks each cache lost to a remote invalidation. */
    std::vector<std::unordered_set<Addr>> lostBlocks_;
    /** MESIF: block → CPU holding the clean-forwarder (F) slot. */
    std::unordered_map<Addr, CpuId> forwarder_;
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_MESI_FAMILY_PROTOCOL_HH
