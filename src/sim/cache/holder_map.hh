/**
 * @file
 * Flat hash map from block address to holder bitset.
 *
 * The sharer index is consulted or updated on nearly every cache
 * event, which made std::unordered_map's per-lookup pointer chase the
 * next bottleneck once snoops stopped scanning all caches. This map
 * stores its slots in one flat array with linear probing and
 * backward-shift deletion (no tombstones), sized at construction for
 * the worst case — every cache line across all processors holding a
 * distinct block — so it never rehashes and stays at most half full.
 *
 * A slot with an empty holder bitset IS an empty slot: the directory
 * erases a block exactly when its last holder drops it, so mask == 0
 * doubles as the vacancy marker and no separate key sentinel is
 * needed (block address 0 is a valid key).
 */

#ifndef SWCC_SIM_CACHE_HOLDER_MAP_HH
#define SWCC_SIM_CACHE_HOLDER_MAP_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/trace/trace_event.hh"

namespace swcc
{

/**
 * Block address → bitset of the caches holding the block, plus a
 * second bitset of the holders whose copy is dirty (an owner state:
 * Dirty or SharedDirty). The dirty bitset is always a subset of the
 * holder bitset, letting "is this block dirty in any other cache?" —
 * asked on every miss by the update-based protocols — be answered
 * with one probe instead of a find() in every holder's cache.
 */
class HolderMap
{
  public:
    using Mask = std::uint64_t;

    /** An empty map that can only answer mask() with 0. */
    HolderMap() = default;

    /**
     * @param max_blocks Most blocks ever resident at once (total cache
     *        lines across processors). Capacity is twice that, rounded
     *        to a power of two, so probes stay short and the map never
     *        rehashes.
     */
    explicit HolderMap(std::size_t max_blocks)
        : slots_(std::bit_ceil(std::max<std::size_t>(
              2 * max_blocks, 16)))
    {
        shift_ = static_cast<unsigned>(
            64 - std::countr_zero(slots_.size()));
    }

    /** Number of blocks currently holding at least one bit. */
    std::size_t size() const { return size_; }

    /** The holder bitset of @p block (0 when absent). */
    Mask
    mask(Addr block) const
    {
        if (slots_.empty()) {
            return 0;
        }
        for (std::size_t i = home(block);; i = next(i)) {
            const Slot &slot = slots_[i];
            if (slot.mask == 0 || slot.key == block) {
                return slot.mask;
            }
        }
    }

    /** The dirty-holder bitset of @p block (0 when absent). */
    Mask
    dirtyMask(Addr block) const
    {
        if (slots_.empty()) {
            return 0;
        }
        for (std::size_t i = home(block);; i = next(i)) {
            const Slot &slot = slots_[i];
            if (slot.mask == 0 || slot.key == block) {
                return slot.dirty;
            }
        }
    }

    /**
     * Sets holder bit @p cpu of @p block, inserting it if absent, and
     * records whether that holder's copy is dirty.
     */
    void
    setBit(Addr block, CpuId cpu, bool dirty = false)
    {
        for (std::size_t i = home(block);; i = next(i)) {
            Slot &slot = slots_[i];
            if (slot.mask == 0) {
                if (2 * ++size_ > slots_.size()) {
                    throw std::logic_error(
                        "HolderMap overfull: more blocks than lines");
                }
                slot.key = block;
                slot.mask = cpuBit(cpu);
                slot.dirty = dirty ? cpuBit(cpu) : 0;
                return;
            }
            if (slot.key == block) {
                slot.mask |= cpuBit(cpu);
                if (dirty) {
                    slot.dirty |= cpuBit(cpu);
                } else {
                    slot.dirty &= ~cpuBit(cpu);
                }
                return;
            }
        }
    }

    /**
     * Flips holder @p cpu's dirty bit for @p block to @p dirty.
     * A no-op when the block is absent (mirrors clearBit()).
     */
    void
    setDirty(Addr block, CpuId cpu, bool dirty)
    {
        if (slots_.empty()) {
            return;
        }
        for (std::size_t i = home(block);; i = next(i)) {
            Slot &slot = slots_[i];
            if (slot.mask == 0) {
                return;
            }
            if (slot.key == block) {
                if (dirty) {
                    // Only holders may carry a dirty bit; marking a
                    // non-holder would break the dirty-subset-of-mask
                    // invariant the snoop fast path relies on.
                    slot.dirty |= cpuBit(cpu) & slot.mask;
                } else {
                    slot.dirty &= ~cpuBit(cpu);
                }
                return;
            }
        }
    }

    /**
     * Clears holder bit @p cpu of @p block, erasing the entry when the
     * last holder goes (backward-shift deletion keeps probe chains
     * intact without tombstones). Clearing an absent block is a no-op.
     */
    void
    clearBit(Addr block, CpuId cpu)
    {
        if (slots_.empty()) {
            return;
        }
        for (std::size_t i = home(block);; i = next(i)) {
            Slot &slot = slots_[i];
            if (slot.mask == 0) {
                return;
            }
            if (slot.key == block) {
                slot.mask &= ~cpuBit(cpu);
                slot.dirty &= ~cpuBit(cpu);
                if (slot.mask == 0) {
                    --size_;
                    eraseAt(i);
                }
                return;
            }
        }
    }

  private:
    struct Slot
    {
        Addr key = 0;
        Mask mask = 0;
        /** Holders whose copy is in an owner state; subset of mask. */
        Mask dirty = 0;
    };

    static Mask
    cpuBit(CpuId cpu)
    {
        return Mask{1} << cpu;
    }

    /** Fibonacci-multiplicative hash into the slot array. */
    std::size_t
    home(Addr block) const
    {
        return static_cast<std::size_t>(
            (block * 0x9E3779B97F4A7C15ULL) >> shift_);
    }

    std::size_t
    next(std::size_t i) const
    {
        return (i + 1) & (slots_.size() - 1);
    }

    /**
     * Empties slot @p i, shifting later entries of the probe chain
     * backward: an entry at j may keep its place only if its home lies
     * in (i, j] cyclically; otherwise slot i was on its probe path and
     * it moves there.
     */
    void
    eraseAt(std::size_t i)
    {
        for (std::size_t j = i;;) {
            j = next(j);
            if (slots_[j].mask == 0) {
                break;
            }
            const std::size_t k = home(slots_[j].key);
            const bool stays =
                (i <= j) ? (k > i && k <= j) : (k > i || k <= j);
            if (!stays) {
                slots_[i] = slots_[j];
                i = j;
            }
        }
        slots_[i].mask = 0;
        slots_[i].dirty = 0;
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    unsigned shift_ = 0;
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_HOLDER_MAP_HH
