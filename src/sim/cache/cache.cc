#include "sim/cache/cache.hh"

#include <algorithm>

namespace swcc
{

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    config_.validate();
    lines_.resize(config_.numLines());
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::size_t>(
        (addr / config_.blockBytes) % config_.numSets());
}

CacheLine *
Cache::find(Addr addr)
{
    const Addr block = blockAddr(addr);
    const std::size_t set = setIndex(addr);
    const std::size_t base = set * config_.associativity;
    for (std::size_t way = 0; way < config_.associativity; ++way) {
        CacheLine &line = lines_[base + way];
        if (isValidState(line.state) && line.blockAddr == block) {
            return &line;
        }
    }
    return nullptr;
}

const CacheLine *
Cache::find(Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

void
Cache::touch(CacheLine &line)
{
    line.lastUse = ++useCounter_;
}

CacheLine &
Cache::victimFor(Addr addr)
{
    const std::size_t set = setIndex(addr);
    const std::size_t base = set * config_.associativity;
    CacheLine *victim = &lines_[base];
    for (std::size_t way = 0; way < config_.associativity; ++way) {
        CacheLine &line = lines_[base + way];
        if (!isValidState(line.state)) {
            return line;
        }
        if (line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    return *victim;
}

void
Cache::fill(CacheLine &victim, Addr addr, LineState state)
{
    victim.blockAddr = blockAddr(addr);
    victim.state = state;
    touch(victim);
}

void
Cache::invalidate(CacheLine &line)
{
    line.state = LineState::Invalid;
}

std::size_t
Cache::validLines() const
{
    return static_cast<std::size_t>(std::count_if(
        lines_.begin(), lines_.end(),
        [](const CacheLine &line) { return isValidState(line.state); }));
}

} // namespace swcc
