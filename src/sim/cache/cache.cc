#include "sim/cache/cache.hh"

#include <algorithm>

namespace swcc
{

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    config_.validate();
    lines_.resize(config_.numLines());
    tags_.assign(config_.numLines(), kInvalidTag);
    blockMask_ = ~static_cast<Addr>(config_.blockBytes - 1);
    blockShift_ = config_.blockShift();
    setMask_ = config_.setMask();
    assoc_ = config_.associativity;
}

void
Cache::touch(CacheLine &line)
{
    line.lastUse = ++useCounter_;
}

CacheLine &
Cache::victimFor(Addr addr)
{
    const std::size_t base = setBase(addr);
    CacheLine *victim = &lines_[base];
    for (std::size_t way = 0; way < assoc_; ++way) {
        if (tags_[base + way] == kInvalidTag) {
            return lines_[base + way];
        }
        CacheLine &line = lines_[base + way];
        if (line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    return *victim;
}

void
Cache::fill(CacheLine &victim, Addr addr, LineState state)
{
    victim.blockAddr = addr & blockMask_;
    victim.state = state;
    tags_[static_cast<std::size_t>(&victim - lines_.data())] =
        victim.blockAddr;
    touch(victim);
}

void
Cache::invalidate(CacheLine &line)
{
    line.state = LineState::Invalid;
    tags_[static_cast<std::size_t>(&line - lines_.data())] = kInvalidTag;
}

std::size_t
Cache::validLines() const
{
    return static_cast<std::size_t>(std::count_if(
        lines_.begin(), lines_.end(),
        [](const CacheLine &line) { return isValidState(line.state); }));
}

} // namespace swcc
