#include "sim/cache/hybrid_protocol.hh"

#include <algorithm>

namespace swcc
{

HybridProtocol::HybridProtocol(const CacheConfig &cache_config,
                               CpuId num_cpus)
    : CoherenceProtocol(cache_config, num_cpus), lostBlocks_(num_cpus)
{
}

bool
HybridProtocol::inInvalidateMode(Addr block) const
{
    const auto it = policy_.find(block);
    return it != policy_.end() && it->second.invalidateMode;
}

CacheLine &
HybridProtocol::handleMiss(CpuId cpu, RefType type, Addr addr,
                           AccessResult &out)
{
    Cache &cache = caches_[cpu];
    const Addr block = cache.blockAddr(addr);

    if (lostBlocks_[cpu].erase(block) > 0) {
        ++measured_.coherenceMisses;
        // Someone wants the block back: invalidations are costing
        // coherence misses, so decay the wasted-update evidence and
        // flip back to update mode below the threshold.
        const auto it = policy_.find(block);
        if (it != policy_.end()) {
            BlockPolicy &policy = it->second;
            policy.wasted = policy.wasted > 0
                ? static_cast<std::uint8_t>(policy.wasted - 1)
                : std::uint8_t{0};
            if (policy.invalidateMode &&
                policy.wasted < kSwitchThreshold) {
                policy.invalidateMode = false;
                ++measured_.switchesToUpdate;
            }
        }
    }

    CacheLine &victim = cache.victimFor(addr);
    const bool dirty_victim = evict(cpu, victim);

    const bool supplied_by_cache = dirtyElsewhere(cpu, block);
    unsigned holders = 0;
    forEachOtherHolder(cpu, block, [&](CpuId other, CacheLine &line) {
        ++holders;
        // Dragon-style fill snoop: dirty owners keep ownership (they
        // supplied the data), clean exclusives demote to shared.
        if (line.state == LineState::Exclusive) {
            setLineState(other, line, LineState::SharedClean);
        } else if (line.state == LineState::Dirty) {
            setLineState(other, line, LineState::SharedDirty);
        }
    });

    if (supplied_by_cache) {
        out.addOp(dirty_victim ? Operation::DirtyMissCache
                               : Operation::CleanMissCache);
    } else {
        out.addOp(dirty_victim ? Operation::DirtyMissMem
                               : Operation::CleanMissMem);
    }

    fillLine(cpu, victim, addr,
             holders > 0 ? LineState::SharedClean
                         : LineState::Exclusive);

    if (type == RefType::Store && holders > 0) {
        // The fill made the line shared; the store part falls through
        // to the shared-store path in access() via the returned line.
        return victim;
    }
    if (type == RefType::Store) {
        setLineState(cpu, victim, LineState::Dirty);
    }
    return victim;
}

void
HybridProtocol::broadcastUpdate(CpuId cpu, CacheLine &line,
                                AccessResult &out, BlockPolicy &policy)
{
    out.addOp(Operation::WriteBroadcast);
    ++measured_.updateBroadcasts;

    // Usefulness accounting: a broadcast by the same writer with no
    // intervening remote touch delivered words nobody read.
    if (!policy.remoteAccessSinceWrite && policy.lastWriter == cpu) {
        ++measured_.wastedBroadcasts;
        policy.wasted = std::min<std::uint8_t>(
            static_cast<std::uint8_t>(policy.wasted + 1), kCounterMax);
        if (!policy.invalidateMode &&
            policy.wasted >= kSwitchThreshold) {
            policy.invalidateMode = true;
            ++measured_.switchesToInvalidate;
        }
    } else if (policy.wasted > 0) {
        --policy.wasted;
    }
    policy.lastWriter = cpu;
    policy.remoteAccessSinceWrite = false;

    unsigned holders = 0;
    forEachOtherHolder(cpu, line.blockAddr,
                       [&](CpuId other, CacheLine &copy) {
        ++holders;
        // The holder's controller updates the word in place, stealing
        // a cycle from its processor; a previous owner loses ownership.
        out.steals.push_back(other);
        setLineState(other, copy, LineState::SharedClean);
    });

    setLineState(cpu, line,
                 holders > 0 ? LineState::SharedDirty
                             : LineState::Dirty);
}

void
HybridProtocol::broadcastInvalidate(CpuId cpu, CacheLine &line,
                                    AccessResult &out)
{
    const Addr block = line.blockAddr;
    out.addOp(Operation::WriteBroadcast);
    ++measured_.invalidations;

    unsigned copies = 0;
    forEachOtherHolder(cpu, block, [&](CpuId other, CacheLine &copy) {
        ++copies;
        invalidateLine(other, copy);
        lostBlocks_[other].insert(block);
        out.steals.push_back(other);
    });
    measured_.copiesInvalidated += copies;

    setLineState(cpu, line, LineState::Dirty);
}

void
HybridProtocol::access(CpuId cpu, RefType type, Addr addr,
                       AccessResult &out)
{
    out.reset();
    if (type == RefType::Flush) {
        // Hardware coherence: software flushes are unnecessary no-ops.
        return;
    }

    Cache &cache = caches_[cpu];
    const Addr block = cache.blockAddr(addr);

    // Policy bookkeeping: any touch by a processor other than the last
    // broadcaster marks the last broadcast useful. Entries only exist
    // for blocks that have broadcast at least once, so the common
    // private-block path pays one failed hash probe.
    {
        const auto it = policy_.find(block);
        if (it != policy_.end() && it->second.lastWriter != cpu) {
            it->second.remoteAccessSinceWrite = true;
        }
    }

    CacheLine *line = cache.find(addr);
    if (line != nullptr) {
        cache.touch(*line);
    } else {
        line = &handleMiss(cpu, type, addr, out);
        if (type != RefType::Store ||
            line->state != LineState::SharedClean) {
            return;
        }
        // A store miss that filled shared continues into the shared-
        // store path below, exactly like a store hit on a shared line.
    }

    if (type != RefType::Store) {
        return;
    }

    switch (line->state) {
      case LineState::Exclusive:
      case LineState::Dirty:
        // Sole copy: write locally, no bus action.
        setLineState(cpu, *line, LineState::Dirty);
        return;
      case LineState::SharedClean:
      case LineState::SharedDirty: {
        BlockPolicy &policy = policy_[block];
        if (policy.invalidateMode) {
            broadcastInvalidate(cpu, *line, out);
        } else {
            broadcastUpdate(cpu, *line, out, policy);
        }
        return;
      }
      case LineState::Invalid:
        throw std::logic_error("store resolved to an invalid line");
    }
}

} // namespace swcc
