#include "sim/cache/invalidate_protocol.hh"

namespace swcc
{

double
InvalidateMeasurements::copiesPerInvalidation(double fallback) const
{
    if (invalidations == 0) {
        return fallback;
    }
    return static_cast<double>(copiesInvalidated) /
        static_cast<double>(invalidations);
}

double
InvalidateMeasurements::rerefFraction(double fallback) const
{
    if (copiesInvalidated == 0) {
        return fallback;
    }
    return static_cast<double>(coherenceMisses) /
        static_cast<double>(copiesInvalidated);
}

InvalidateProtocol::InvalidateProtocol(const CacheConfig &cache_config,
                                       CpuId num_cpus)
    : CoherenceProtocol(cache_config, num_cpus), lostBlocks_(num_cpus)
{
}

unsigned
InvalidateProtocol::invalidateRemotes(CpuId cpu, Addr block,
                                      AccessResult &out)
{
    unsigned copies = 0;
    forEachOtherHolder(cpu, block, [&](CpuId other, CacheLine &line) {
        ++copies;
        invalidateLine(other, line);
        lostBlocks_[other].insert(block);
        // The victim's controller spends a snoop cycle killing the
        // line, exactly like a Dragon update.
        out.steals.push_back(other);
    });
    measured_.copiesInvalidated += copies;
    return copies;
}

CacheLine &
InvalidateProtocol::handleMiss(CpuId cpu, RefType type, Addr addr,
                               AccessResult &out)
{
    Cache &cache = caches_[cpu];
    const Addr block = cache.blockAddr(addr);

    if (lostBlocks_[cpu].erase(block) > 0) {
        ++measured_.coherenceMisses;
    }

    CacheLine &victim = cache.victimFor(addr);
    const bool dirty_victim = evict(cpu, victim);

    bool supplied_by_cache = false;
    unsigned holders = 0;
    forEachOtherHolder(cpu, block, [&](CpuId other, CacheLine &line) {
        ++holders;
        if (isDirtyState(line.state)) {
            // Illinois: the owner supplies the block and memory is
            // updated in the same transaction; the owner keeps a
            // shared clean copy.
            supplied_by_cache = true;
            setLineState(other, line, LineState::SharedClean);
        } else if (line.state == LineState::Exclusive) {
            setLineState(other, line, LineState::SharedClean);
        }
    });

    if (supplied_by_cache) {
        out.addOp(dirty_victim ? Operation::DirtyMissCache
                               : Operation::CleanMissCache);
    } else {
        out.addOp(dirty_victim ? Operation::DirtyMissMem
                               : Operation::CleanMissMem);
    }

    fillLine(cpu, victim, addr,
             holders > 0 ? LineState::SharedClean
                         : LineState::Exclusive);

    if (type == RefType::Store) {
        // Read-for-ownership: kill the other copies and write.
        if (holders > 0) {
            out.addOp(Operation::WriteBroadcast);
            ++measured_.invalidations;
            invalidateRemotes(cpu, block, out);
        }
        CacheLine *line = cache.find(addr);
        setLineState(cpu, *line, LineState::Dirty);
        return *line;
    }
    return victim;
}

void
InvalidateProtocol::access(CpuId cpu, RefType type, Addr addr,
                           AccessResult &out)
{
    out.reset();
    if (type == RefType::Flush) {
        // Hardware coherence: flushes are unnecessary no-ops.
        return;
    }

    Cache &cache = caches_[cpu];

    CacheLine *line = cache.find(addr);
    if (line == nullptr) {
        handleMiss(cpu, type, addr, out);
        return;
    }
    cache.touch(*line);

    if (type != RefType::Store) {
        return;
    }

    switch (line->state) {
      case LineState::Exclusive:
      case LineState::Dirty:
        setLineState(cpu, *line, LineState::Dirty);
        return;
      case LineState::SharedClean: {
        out.addOp(Operation::WriteBroadcast);
        ++measured_.invalidations;
        invalidateRemotes(cpu, cache.blockAddr(addr), out);
        setLineState(cpu, *line, LineState::Dirty);
        return;
      }
      case LineState::SharedDirty:
      case LineState::Invalid:
        throw std::logic_error(
            "write-invalidate reached an impossible line state");
    }
}

} // namespace swcc
