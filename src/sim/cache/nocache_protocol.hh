/**
 * @file
 * No-Cache software scheme: shared data is uncacheable.
 */

#ifndef SWCC_SIM_CACHE_NOCACHE_PROTOCOL_HH
#define SWCC_SIM_CACHE_NOCACHE_PROTOCOL_HH

#include "sim/cache/coherence.hh"
#include "sim/trace/trace_stats.hh"

namespace swcc
{

/**
 * The paper's No-Cache scheme: the compiler or programmer marks shared
 * variables, and references to them bypass the cache entirely — a load
 * becomes a read-through and a store a write-through, one word each,
 * straight to memory. Unshared data and instructions are cached as in
 * Base. C.mmp and the Elxsi 6400 used this approach.
 */
class NoCacheProtocol : public CoherenceProtocol
{
  public:
    /**
     * @param cache_config Geometry of each cache.
     * @param num_cpus Number of processors.
     * @param shared Marks the uncacheable shared region; must be
     *        non-null (without it the scheme degenerates to Base).
     * @throws std::invalid_argument when @p shared is null.
     */
    NoCacheProtocol(const CacheConfig &cache_config, CpuId num_cpus,
                    SharedClassifier shared);

    void access(CpuId cpu, RefType type, Addr addr,
                AccessResult &out) override;

    std::string_view name() const override { return "No-Cache"; }

  private:
    SharedClassifier shared_;
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_NOCACHE_PROTOCOL_HH
