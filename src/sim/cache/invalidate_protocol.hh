/**
 * @file
 * Write-invalidate snoopy protocol (Illinois/MESI-style) — an
 * extension beyond the paper's four schemes.
 *
 * The paper adopted Dragon because Archibald & Baer found
 * write-broadcast protocols among the best performers; this protocol
 * supplies the opposing design point so that the broadcast-vs-
 * invalidate trade-off can be reproduced on the same traces: Dragon
 * pays one word broadcast per shared write, write-invalidate pays one
 * invalidation per write *run* plus a coherence miss when an
 * invalidated copy is re-referenced.
 */

#ifndef SWCC_SIM_CACHE_INVALIDATE_PROTOCOL_HH
#define SWCC_SIM_CACHE_INVALIDATE_PROTOCOL_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/cache/coherence.hh"

namespace swcc
{

/** Counters describing the invalidate protocol's coherence activity. */
struct InvalidateMeasurements
{
    /** Invalidation bus operations issued. */
    std::uint64_t invalidations = 0;
    /** Remote copies destroyed across all invalidations. */
    std::uint64_t copiesInvalidated = 0;
    /** Misses to blocks this cache once held but lost to a remote
     *  write (coherence misses). */
    std::uint64_t coherenceMisses = 0;

    /** Mean copies destroyed per invalidation. */
    double copiesPerInvalidation(double fallback = 0.0) const;
    /** Coherence misses per destroyed copy (the model's reref). */
    double rerefFraction(double fallback = 0.0) const;
};

/**
 * Illinois/MESI-style write-invalidate snooping.
 *
 * States: Exclusive (clean, sole copy), Dirty (modified, sole copy),
 * SharedClean. A store to a shared line broadcasts an invalidation
 * (costed as the 1-bus-cycle word broadcast of Table 1) and destroys
 * every remote copy, each victim cache losing one snoop cycle; the
 * writer proceeds in Dirty. Misses to a block dirty in a remote cache
 * are supplied by that cache (which reverts to SharedClean, memory
 * updated, Illinois-style).
 */
class InvalidateProtocol : public CoherenceProtocol
{
  public:
    InvalidateProtocol(const CacheConfig &cache_config, CpuId num_cpus);

    void access(CpuId cpu, RefType type, Addr addr,
                AccessResult &out) override;

    std::string_view name() const override { return "Write-Invalidate"; }

    const InvalidateMeasurements &measurements() const
    {
        return measured_;
    }

  private:
    /** Handles a miss; returns the installed line. */
    CacheLine &handleMiss(CpuId cpu, RefType type, Addr addr,
                          AccessResult &out);

    /** Invalidates every remote copy of @p block; returns the count. */
    unsigned invalidateRemotes(CpuId cpu, Addr block, AccessResult &out);

    InvalidateMeasurements measured_;
    /** Blocks each cache lost to a remote invalidation. */
    std::vector<std::unordered_set<Addr>> lostBlocks_;
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_INVALIDATE_PROTOCOL_HH
