/**
 * @file
 * Adaptive update/invalidate hybrid snoopy protocol.
 *
 * Every block starts in *update* (Dragon) mode: stores to shared lines
 * broadcast the written word and remote copies update in place. A
 * per-block saturating counter tracks how useful those broadcasts are:
 * a broadcast is *wasted* when no other processor touched the block
 * since the same writer's previous broadcast (the classic adaptive-
 * hybrid heuristic of the gem5 MESI/Dragon hybrid). When the counter
 * saturates past the switch threshold the block flips to *invalidate*
 * (MESI) mode — the next shared store kills the remote copies instead
 * of updating them, and subsequent writes in the run are free. A
 * coherence miss (a processor re-referencing a copy it lost to an
 * invalidation) is evidence the block is actively shared again and
 * decays the counter, flipping the block back to update mode once it
 * drops below the threshold.
 */

#ifndef SWCC_SIM_CACHE_HYBRID_PROTOCOL_HH
#define SWCC_SIM_CACHE_HYBRID_PROTOCOL_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/cache/coherence.hh"

namespace swcc
{

/** Counters describing a hybrid run's policy activity. */
struct HybridMeasurements
{
    /** Word broadcasts issued while in update mode. */
    std::uint64_t updateBroadcasts = 0;
    /** ... of which no remote processor read since the writer's
     *  previous broadcast (the "wasted" signal). */
    std::uint64_t wastedBroadcasts = 0;
    /** Invalidation bus operations issued while in invalidate mode. */
    std::uint64_t invalidations = 0;
    /** Remote copies destroyed across all invalidations. */
    std::uint64_t copiesInvalidated = 0;
    /** Misses to blocks lost to a remote invalidation. */
    std::uint64_t coherenceMisses = 0;
    /** Block-policy flips update → invalidate. */
    std::uint64_t switchesToInvalidate = 0;
    /** Block-policy flips invalidate → update. */
    std::uint64_t switchesToUpdate = 0;
};

/**
 * Per-block adaptive update/invalidate protocol.
 *
 * Uses the Dragon state machine (Exclusive, Dirty, SharedClean,
 * SharedDirty ownership) for update-mode traffic and the MESI actions
 * for invalidate-mode stores; misses are always supplied by a dirty
 * owner when one exists, Dragon-style.
 */
class HybridProtocol : public CoherenceProtocol
{
  public:
    /** Saturation ceiling of the per-block wasted-broadcast counter. */
    static constexpr std::uint8_t kCounterMax = 7;
    /** Counter value at which a block flips to invalidate mode. */
    static constexpr std::uint8_t kSwitchThreshold = 4;

    HybridProtocol(const CacheConfig &cache_config, CpuId num_cpus);

    void access(CpuId cpu, RefType type, Addr addr,
                AccessResult &out) override;

    std::string_view name() const override { return "Adaptive-Hybrid"; }

    const HybridMeasurements &measurements() const { return measured_; }

    /** True if @p block is currently in invalidate mode (for tests). */
    bool inInvalidateMode(Addr block) const;

  private:
    /** Per-block adaptive policy state, created on first broadcast. */
    struct BlockPolicy
    {
        /** Saturating wasted-broadcast counter in [0, kCounterMax]. */
        std::uint8_t wasted = 0;
        /** Processor that issued the block's last broadcast. */
        CpuId lastWriter = 0;
        /** A processor other than lastWriter touched the block since
         *  the last broadcast (makes the next broadcast "useful"). */
        bool remoteAccessSinceWrite = true;
        /** Current policy: false = update (Dragon), true = MESI. */
        bool invalidateMode = false;
    };

    /** Handles a load/ifetch/store miss; returns the installed line. */
    CacheLine &handleMiss(CpuId cpu, RefType type, Addr addr,
                          AccessResult &out);

    /** Dragon-style word broadcast updating remote copies in place. */
    void broadcastUpdate(CpuId cpu, CacheLine &line, AccessResult &out,
                         BlockPolicy &policy);

    /** MESI-style invalidation of every remote copy. */
    void broadcastInvalidate(CpuId cpu, CacheLine &line,
                             AccessResult &out);

    HybridMeasurements measured_;
    /** Block → adaptive policy; entries appear on first broadcast. */
    std::unordered_map<Addr, BlockPolicy> policy_;
    /** Blocks each cache lost to a remote invalidation. */
    std::vector<std::unordered_set<Addr>> lostBlocks_;
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_HYBRID_PROTOCOL_HH
