/**
 * @file
 * Dragon write-broadcast snoopy protocol.
 */

#ifndef SWCC_SIM_CACHE_DRAGON_PROTOCOL_HH
#define SWCC_SIM_CACHE_DRAGON_PROTOCOL_HH

#include <cstdint>

#include "sim/cache/coherence.hh"
#include "sim/trace/trace_stats.hh"

namespace swcc
{

/**
 * Counters for the Dragon-specific workload parameters, gathered while
 * a trace runs (used by the parameter extractor to feed the analytical
 * model, mirroring the paper's trace measurements).
 */
struct DragonMeasurements
{
    /** Data misses to measured-shared blocks. */
    std::uint64_t sharedMisses = 0;
    /** ... of which the block was not dirty in any other cache. */
    std::uint64_t sharedMissesClean = 0;
    /** Stores to measured-shared blocks. */
    std::uint64_t sharedWrites = 0;
    /** ... of which the block was present in another cache. */
    std::uint64_t sharedWritesPresent = 0;
    /** Write broadcasts issued. */
    std::uint64_t broadcasts = 0;
    /** Total other-cache copies updated across all broadcasts. */
    std::uint64_t broadcastCopies = 0;

    /** oclean estimate; @p fallback when no shared misses occurred. */
    double oclean(double fallback = 1.0) const;
    /** opres estimate; @p fallback when no shared writes occurred. */
    double opres(double fallback = 0.0) const;
    /** nshd estimate; @p fallback when no broadcasts occurred. */
    double nshd(double fallback = 1.0) const;
};

/**
 * The Dragon protocol (Xerox PARC), the snoopy comparison point of the
 * paper: on a store to a block that other caches hold, the written word
 * is broadcast and every holder updates in place (no invalidations).
 * Misses are supplied by the owning cache when the block is dirty
 * elsewhere, otherwise by memory.
 *
 * States: Exclusive (clean, sole copy), Dirty (modified, sole copy),
 * SharedClean, SharedDirty (modified and owned; memory stale).
 * The simulator resolves each access atomically with exact knowledge
 * of other caches, standing in for the bus "shared" line.
 */
class DragonProtocol : public CoherenceProtocol
{
  public:
    /**
     * @param cache_config Geometry of each cache.
     * @param num_cpus Number of processors.
     * @param measure_shared Optional classifier for the measurement
     *        counters; when absent, no measurements are collected.
     */
    DragonProtocol(const CacheConfig &cache_config, CpuId num_cpus,
                   SharedClassifier measure_shared = nullptr);

    void access(CpuId cpu, RefType type, Addr addr,
                AccessResult &out) override;

    std::string_view name() const override { return "Dragon"; }

    const DragonMeasurements &measurements() const { return measured_; }

  private:
    /** Handles a load/ifetch/store miss; returns the installed line. */
    CacheLine &handleMiss(CpuId cpu, Addr addr, AccessResult &out);

    /** Performs the write-broadcast part of a store. */
    void broadcast(CpuId cpu, CacheLine &line, AccessResult &out);

    SharedClassifier measureShared_;
    DragonMeasurements measured_;
};

} // namespace swcc

#endif // SWCC_SIM_CACHE_DRAGON_PROTOCOL_HH
