#include "sim/net/net_source.hh"

#include <cmath>
#include <stdexcept>

namespace swcc
{

NetSource::NetSource(double mean_think, double units_mean,
                     std::uint32_t num_dests)
    : meanThink_(mean_think), unitsMean_(units_mean), numDests_(num_dests)
{
    if (mean_think < 0.0) {
        throw std::invalid_argument("mean think time must be >= 0");
    }
    if (units_mean < 1.0) {
        throw std::invalid_argument(
            "transactions need at least one unit request on average");
    }
    if (num_dests == 0) {
        throw std::invalid_argument("need at least one destination");
    }
    // Sources start mid-think with a deterministic stagger-free draw on
    // the first tick; stateLeft_ == 0 forces an immediate transition.
    state_ = State::Thinking;
    stateLeft_ = 0.0;
}

void
NetSource::beginThink(Rng &rng)
{
    state_ = State::Thinking;
    if (meanThink_ <= 0.0) {
        stateLeft_ = 0.0;
        return;
    }
    const double p = meanThink_ >= 1.0 ? 1.0 / meanThink_ : 1.0;
    stateLeft_ = static_cast<double>(rng.geometric(p));
}

void
NetSource::beginRequest(Rng &rng)
{
    state_ = State::Requesting;
    unitsDone_ = 0.0;
    // Randomised floor/ceil keeps the per-transaction mean at
    // unitsMean_ even when it is fractional.
    const double whole = std::floor(unitsMean_);
    unitsTarget_ = whole +
        (rng.chance(unitsMean_ - whole) ? 1.0 : 0.0);
    if (unitsTarget_ < 1.0) {
        unitsTarget_ = 1.0;
    }
    dest_ = static_cast<std::uint32_t>(rng.below(numDests_));
}

void
NetSource::tick(Rng &rng)
{
    switch (state_) {
      case State::Thinking:
        if (stateLeft_ <= 0.0) {
            beginRequest(rng);
            return;
        }
        stateLeft_ -= 1.0;
        if (stateLeft_ <= 0.0) {
            beginRequest(rng);
        }
        return;
      case State::Holding:
        stateLeft_ -= 1.0;
        if (stateLeft_ <= 0.0) {
            ++transactions_;
            beginThink(rng);
        }
        return;
      case State::Requesting:
        // Requests advance via unitAccepted()/startHolding().
        return;
    }
}

void
NetSource::unitAccepted(Rng &rng)
{
    if (state_ != State::Requesting) {
        throw std::logic_error("unitAccepted on a non-requesting source");
    }
    unitsDone_ += 1.0;
    if (unitsDone_ >= unitsTarget_) {
        ++transactions_;
        beginThink(rng);
    }
}

void
NetSource::startHolding(double cycles)
{
    if (state_ != State::Requesting) {
        throw std::logic_error("startHolding on a non-requesting source");
    }
    state_ = State::Holding;
    stateLeft_ = cycles;
}

void
NetSource::countCycle()
{
    switch (state_) {
      case State::Thinking:   ++thinkCycles_; return;
      case State::Requesting: ++requestCycles_; return;
      case State::Holding:    ++holdCycles_; return;
    }
}

} // namespace swcc
