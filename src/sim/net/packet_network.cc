#include "sim/net/packet_network.hh"

#include <algorithm>
#include <stdexcept>

namespace swcc
{

void
PacketNetConfig::validate() const
{
    if (stages == 0 || stages > 14) {
        throw std::invalid_argument("stages must be in [1, 14]");
    }
    if (meanThink < 0.0) {
        throw std::invalid_argument("meanThink must be >= 0");
    }
    if (requestWords == 0) {
        throw std::invalid_argument(
            "a transaction needs at least one request word");
    }
}

PacketOmegaNetwork::PacketOmegaNetwork(const PacketNetConfig &config)
    : config_(config), ports_(1u << config.stages), rng_(config.seed)
{
    config_.validate();
    for (Fabric *fabric : {&forward_, &backward_}) {
        fabric->queues.assign(
            config_.stages,
            std::vector<std::deque<Word>>(ports_));
    }
    sources_.resize(ports_);
    memories_.resize(ports_);
    for (Memory &memory : memories_) {
        memory.received.assign(ports_, 0);
    }
    // Desynchronise initial thinking.
    for (Source &source : sources_) {
        source.thinkLeft = static_cast<double>(
            rng_.below(static_cast<std::uint64_t>(
                           std::max(1.0, config_.meanThink)) + 1));
    }
}

std::uint32_t
PacketOmegaNetwork::entryPort(std::uint32_t input, std::uint32_t target,
                              unsigned stage) const
{
    const unsigned n = config_.stages;
    const std::uint32_t mask = ports_ - 1;
    const std::uint32_t shuffled = n == 1
        ? input
        : ((input << 1) | (input >> (n - 1))) & mask;
    const std::uint32_t out_bit = (target >> (n - 1 - stage)) & 1u;
    return (shuffled & ~1u) | out_bit;
}

void
PacketOmegaNetwork::deliver(const Word &word, bool toward_memory)
{
    if (toward_memory) {
        Memory &memory = memories_[word.target];
        unsigned &count = memory.received[word.source];
        if (++count == config_.requestWords) {
            count = 0;
            if (config_.responseWords > 0) {
                memory.pending.push_back(
                    {now_ + config_.memoryCycles, word.source});
            }
        }
        return;
    }

    Source &source = sources_[word.target];
    if (source.state != Source::State::WaitingResponse ||
        source.responseWordsLeft == 0) {
        throw std::logic_error("response delivered to an idle source");
    }
    if (--source.responseWordsLeft == 0) {
        ++source.transactions;
        source.latencySum = source.latencySum +
            (now_ - source.transactionStart + 1.0);
        source.state = Source::State::Thinking;
        source.thinkLeft = config_.meanThink <= 0.0
            ? 0.0
            : static_cast<double>(rng_.geometric(
                  std::min(1.0, 1.0 / config_.meanThink)));
    }
}

bool
PacketOmegaNetwork::hasRoom(const std::deque<Word> &queue) const
{
    return config_.bufferWords == 0 ||
        queue.size() < config_.bufferWords;
}

void
PacketOmegaNetwork::advanceFabric(Fabric &fabric, bool toward_memory)
{
    const unsigned n = config_.stages;
    // Serve the last stage first so a word advances one stage per
    // cycle; each output link forwards one word per cycle. With the
    // last stage served first, a full queue that drains this cycle can
    // accept this cycle's arrival, like a real flow-controlled link.
    for (unsigned stage = n; stage-- > 0;) {
        auto &row = fabric.queues[stage];
        for (std::uint32_t port = 0; port < ports_; ++port) {
            auto &queue = row[port];
            if (queue.empty()) {
                continue;
            }
            const Word word = queue.front();
            if (stage + 1 == n) {
                queue.pop_front();
                if (toward_memory) {
                    ++wordCyclesForward_;
                } else {
                    ++wordCyclesBackward_;
                }
                deliver(word, toward_memory);
                continue;
            }
            auto &next = fabric.queues[stage + 1]
                [entryPort(port, word.target, stage + 1)];
            if (!hasRoom(next)) {
                ++backpressureStalls_;
                continue;
            }
            queue.pop_front();
            if (toward_memory) {
                ++wordCyclesForward_;
            } else {
                ++wordCyclesBackward_;
            }
            next.push_back(word);
            maxQueueDepth_ = std::max(maxQueueDepth_, next.size());
        }
    }
}

void
PacketOmegaNetwork::stepCycle()
{
    advanceFabric(forward_, true);
    advanceFabric(backward_, false);

    // Memory modules inject at most one response word per cycle.
    for (std::uint32_t id = 0; id < ports_; ++id) {
        Memory &memory = memories_[id];
        if (memory.injectLeft == 0 && !memory.pending.empty() &&
            memory.pending.front().first <= now_) {
            memory.injectTarget = memory.pending.front().second;
            memory.pending.pop_front();
            memory.injectLeft = config_.responseWords;
        }
        if (memory.injectLeft > 0) {
            Word word;
            word.target = memory.injectTarget;
            word.source = id;
            word.last = memory.injectLeft == 1;
            auto &queue = backward_.queues[0]
                [entryPort(id, word.target, 0)];
            if (!hasRoom(queue)) {
                ++backpressureStalls_;
            } else {
                queue.push_back(word);
                maxQueueDepth_ =
                    std::max(maxQueueDepth_, queue.size());
                --memory.injectLeft;
            }
        }
    }

    // Sources: think, inject, or block on the response.
    for (std::uint32_t id = 0; id < ports_; ++id) {
        Source &source = sources_[id];
        switch (source.state) {
          case Source::State::Thinking:
            ++source.thinkCycles;
            source.thinkLeft -= 1.0;
            if (source.thinkLeft <= 0.0) {
                source.state = Source::State::Injecting;
                source.dest =
                    static_cast<std::uint32_t>(rng_.below(ports_));
                source.wordsToInject = config_.requestWords;
                source.responseWordsLeft = config_.responseWords;
                source.transactionStart = now_ + 1.0;
            }
            break;
          case Source::State::Injecting: {
            ++source.blockedCycles;
            Word word;
            word.target = source.dest;
            word.source = id;
            word.last = source.wordsToInject == 1;
            auto &queue = forward_.queues[0]
                [entryPort(id, source.dest, 0)];
            if (!hasRoom(queue)) {
                // Entry link busy: retry next cycle.
                ++backpressureStalls_;
                break;
            }
            queue.push_back(word);
            maxQueueDepth_ = std::max(maxQueueDepth_, queue.size());
            if (--source.wordsToInject == 0) {
                if (config_.responseWords > 0) {
                    source.state = Source::State::WaitingResponse;
                } else {
                    // Posted transaction: done once injected.
                    ++source.transactions;
                    source.latencySum +=
                        now_ + 1.0 - source.transactionStart;
                    source.state = Source::State::Thinking;
                    source.thinkLeft = config_.meanThink <= 0.0
                        ? 0.0
                        : static_cast<double>(rng_.geometric(std::min(
                              1.0, 1.0 / config_.meanThink)));
                }
            }
            break;
          }
          case Source::State::WaitingResponse:
            ++source.blockedCycles;
            break;
        }
    }

    now_ += 1.0;
}

PacketNetStats
PacketOmegaNetwork::run(std::uint64_t cycles)
{
    for (std::uint64_t c = 0; c < cycles; ++c) {
        stepCycle();
    }

    PacketNetStats stats;
    stats.cycles = cycles;
    std::uint64_t think = 0;
    std::uint64_t total = 0;
    double latency = 0.0;
    for (const Source &source : sources_) {
        think += source.thinkCycles;
        total += source.thinkCycles + source.blockedCycles;
        stats.transactions += source.transactions;
        latency += source.latencySum;
    }
    stats.computeFraction = total > 0
        ? static_cast<double>(think) / static_cast<double>(total)
        : 0.0;
    stats.meanLatency = stats.transactions > 0
        ? latency / static_cast<double>(stats.transactions)
        : 0.0;

    const double link_cycles = static_cast<double>(cycles) *
        static_cast<double>(ports_) * config_.stages;
    stats.linkLoad = std::max(
        static_cast<double>(wordCyclesForward_),
        static_cast<double>(wordCyclesBackward_)) / link_cycles;
    stats.maxQueueDepth = maxQueueDepth_;
    stats.backpressureStalls = backpressureStalls_;
    return stats;
}

} // namespace swcc
