#include "sim/net/omega_network.hh"

#include <stdexcept>

namespace swcc
{

namespace
{

std::uint32_t
portCount(const OmegaConfig &config)
{
    std::uint64_t ports = 1;
    for (unsigned i = 0; i < config.stages; ++i) {
        ports *= config.switchDim;
    }
    if (ports > (1u << 16)) {
        throw std::invalid_argument("network too large (> 64K ports)");
    }
    return static_cast<std::uint32_t>(ports);
}

} // namespace

void
OmegaConfig::validate() const
{
    if (stages == 0 || stages > 16) {
        throw std::invalid_argument("stages must be in [1, 16]");
    }
    if (switchDim < 2) {
        throw std::invalid_argument("switch dimension must be >= 2");
    }
    if (meanThink < 0.0) {
        throw std::invalid_argument("meanThink must be >= 0");
    }
    if (messageCycles < 1.0) {
        throw std::invalid_argument("messageCycles must be >= 1");
    }
    portCount(*this);
}

OmegaNetwork::OmegaNetwork(const OmegaConfig &config)
    : config_(config), ports_(portCount(config)), rng_(config.seed)
{
    config_.validate();
    sources_.reserve(ports_);
    for (std::uint32_t i = 0; i < ports_; ++i) {
        sources_.emplace_back(config_.meanThink, config_.messageCycles,
                              ports_);
    }
    if (config_.mode == NetMode::Circuit) {
        portFreeAt_.assign(config_.stages,
                           std::vector<double>(ports_, 0.0));
    }
    stageOffered_.assign(config_.stages, 0);
}

std::vector<std::uint32_t>
OmegaNetwork::route(const std::vector<std::uint32_t> &requesters)
{
    struct Attempt
    {
        std::uint32_t source;
        std::uint32_t dest;
        std::uint32_t pos;
        bool alive = true;
    };

    std::vector<Attempt> attempts;
    attempts.reserve(requesters.size());
    for (std::uint32_t src : requesters) {
        attempts.push_back({src, sources_[src].dest(), src, true});
    }

    const unsigned n = config_.stages;
    const std::uint32_t dim = config_.switchDim;
    const std::uint32_t rotate_div = ports_ / dim; // dim^(n-1)

    // winner[p] = index of the attempt currently holding output port p
    // at this stage, or -1; contenders[p] counts arrivals so that a
    // uniformly random one survives (reservoir of size one).
    std::vector<std::int32_t> winner(ports_);
    std::vector<std::uint32_t> contenders(ports_);

    for (unsigned stage = 0; stage < n; ++stage) {
        std::uint64_t offered = 0;
        std::fill(winner.begin(), winner.end(), -1);
        std::fill(contenders.begin(), contenders.end(), 0u);

        // Destination digit weight for this stage: dim^(n-1-stage).
        std::uint32_t digit_div = 1;
        for (unsigned i = 0; i + stage + 1 < n; ++i) {
            digit_div *= dim;
        }

        for (std::size_t k = 0; k < attempts.size(); ++k) {
            Attempt &att = attempts[k];
            if (!att.alive) {
                continue;
            }
            ++offered;

            // k-ary perfect shuffle into the stage (rotate the top
            // digit to the bottom), then destination-digit routing.
            const std::uint32_t shuffled = n == 1
                ? att.pos
                : (att.pos % rotate_div) * dim + att.pos / rotate_div;
            const std::uint32_t out_digit =
                (att.dest / digit_div) % dim;
            const std::uint32_t port =
                (shuffled / dim) * dim + out_digit;

            if (config_.mode == NetMode::Circuit &&
                portFreeAt_[stage][port] > now_) {
                att.alive = false;
                continue;
            }

            const std::uint32_t count = ++contenders[port];
            const std::int32_t holder = winner[port];
            if (holder < 0) {
                winner[port] = static_cast<std::int32_t>(k);
                att.pos = port;
                continue;
            }
            // Up to dim inputs of one switch may want this output: the
            // i-th contender replaces the incumbent with probability
            // 1/i, making the final survivor uniform.
            if (rng_.chance(1.0 / static_cast<double>(count))) {
                attempts[static_cast<std::size_t>(holder)].alive = false;
                winner[port] = static_cast<std::int32_t>(k);
                att.pos = port;
            } else {
                att.alive = false;
            }
        }
        stageOffered_[stage] += offered;
    }

    std::vector<std::uint32_t> accepted;
    for (const Attempt &att : attempts) {
        if (att.alive) {
            accepted.push_back(att.source);
        }
    }

    if (config_.mode == NetMode::Circuit) {
        // Winners claim every output port along their path for the
        // whole message duration.
        for (std::uint32_t src : accepted) {
            std::uint32_t pos = src;
            const std::uint32_t dest = sources_[src].dest();
            std::uint32_t digit_div = ports_ / dim; // dim^(n-1)
            for (unsigned stage = 0; stage < n; ++stage) {
                const std::uint32_t shuffled = n == 1
                    ? pos
                    : (pos % rotate_div) * dim + pos / rotate_div;
                const std::uint32_t out_digit =
                    (dest / digit_div) % dim;
                pos = (shuffled / dim) * dim + out_digit;
                portFreeAt_[stage][pos] = now_ + config_.messageCycles;
                digit_div /= dim;
            }
        }
    }
    return accepted;
}

void
OmegaNetwork::stepCycle()
{
    for (NetSource &source : sources_) {
        source.countCycle();
    }

    std::vector<std::uint32_t> requesters;
    for (std::uint32_t i = 0; i < ports_; ++i) {
        if (sources_[i].state() == NetSource::State::Requesting) {
            requesters.push_back(i);
        }
    }

    attempts_ += requesters.size();
    const std::vector<std::uint32_t> accepted = route(requesters);
    accepted_ += accepted.size();

    // A source whose transaction completes this cycle must not also
    // consume a think cycle now; its thinking starts next cycle.
    std::vector<std::uint8_t> completed(ports_, 0);
    for (std::uint32_t src : accepted) {
        if (config_.mode == NetMode::UnitRequest) {
            sources_[src].unitAccepted(rng_);
            if (sources_[src].state() == NetSource::State::Thinking) {
                completed[src] = 1;
            }
        } else {
            // The setup cycle is the first held cycle, so the new
            // holder ticks normally below.
            sources_[src].startHolding(config_.messageCycles);
        }
    }

    for (std::uint32_t i = 0; i < ports_; ++i) {
        NetSource &source = sources_[i];
        if (source.state() != NetSource::State::Requesting &&
            completed[i] == 0) {
            source.tick(rng_);
        }
    }

    now_ += 1.0;
}

OmegaStats
OmegaNetwork::run(std::uint64_t cycles)
{
    for (std::uint64_t c = 0; c < cycles; ++c) {
        stepCycle();
    }

    OmegaStats stats;
    stats.cycles = cycles;
    stats.attempts = attempts_;
    stats.accepted = accepted_;

    std::uint64_t think = 0;
    std::uint64_t total = 0;
    for (const NetSource &source : sources_) {
        think += source.thinkCycles();
        total += source.thinkCycles() + source.requestCycles() +
            source.holdCycles();
        stats.transactions += source.transactions();
    }
    stats.computeFraction = total > 0
        ? static_cast<double>(think) / static_cast<double>(total)
        : 0.0;
    stats.acceptance = attempts_ > 0
        ? static_cast<double>(accepted_) / static_cast<double>(attempts_)
        : 1.0;

    const double port_cycles =
        static_cast<double>(cycles) * static_cast<double>(ports_);
    stats.stageLoads.reserve(config_.stages + 1);
    for (unsigned stage = 0; stage < config_.stages; ++stage) {
        stats.stageLoads.push_back(
            static_cast<double>(stageOffered_[stage]) / port_cycles);
    }
    stats.stageLoads.push_back(
        static_cast<double>(accepted_) / port_cycles);
    stats.throughputPerPort =
        static_cast<double>(accepted_) / port_cycles;
    return stats;
}

} // namespace swcc
