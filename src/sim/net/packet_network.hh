/**
 * @file
 * Cycle-level simulator of a *buffered packet-switched* omega network —
 * the alternative network discipline of the paper's conclusion ("Use
 * of packet-switching would be more favorable to No-Cache"), built to
 * validate the Kruskal-Snir analytical model in
 * core/packet_network_model.hh.
 *
 * Two mirrored n-stage omega fabrics connect 2^n processors to 2^n
 * memory modules: requests route by memory id, responses by processor
 * id. Every switch output port is an output queue serving one word
 * per cycle (unbounded buffers). A memory transaction injects a
 * request train of req words; after the full train arrives the module
 * waits memoryCycles and injects a response train of resp words; the
 * processor blocks until the last response word returns (or, for
 * posted transactions with resp = 0, only for the injection).
 */

#ifndef SWCC_SIM_NET_PACKET_NETWORK_HH
#define SWCC_SIM_NET_PACKET_NETWORK_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/synth/rng.hh"

namespace swcc
{

/** Configuration of one packet-network simulation. */
struct PacketNetConfig
{
    /** Switch stages n; 2^n processors and memory modules. */
    unsigned stages = 4;
    /** Mean computing cycles between transactions. */
    double meanThink = 20.0;
    /** Words per request train (>= 1). */
    unsigned requestWords = 1;
    /** Words per response train (0 = posted transaction). */
    unsigned responseWords = 4;
    /** Memory access latency between trains. */
    unsigned memoryCycles = 2;
    /**
     * Per-port buffer capacity in words (0 = unbounded). With finite
     * buffers a full downstream queue exerts backpressure: the word
     * stays put and its link idles that cycle.
     */
    unsigned bufferWords = 0;
    std::uint64_t seed = 1;

    void validate() const;
};

/** Aggregate results of a packet-network simulation. */
struct PacketNetStats
{
    std::uint64_t cycles = 0;
    std::uint64_t transactions = 0;
    /** Fraction of source cycles spent computing. */
    double computeFraction = 0.0;
    /** Mean cycles from first request word to transaction complete. */
    double meanLatency = 0.0;
    /** Mean occupancy of the busiest direction's links (load p). */
    double linkLoad = 0.0;
    /** Largest queue length observed anywhere (buffer sizing). */
    std::size_t maxQueueDepth = 0;
    /** Cycles a word stalled because a buffer downstream was full. */
    std::uint64_t backpressureStalls = 0;
};

/**
 * The buffered packet-switched network plus its sources and memories.
 */
class PacketOmegaNetwork
{
  public:
    explicit PacketOmegaNetwork(const PacketNetConfig &config);

    /** Runs @p cycles network cycles and returns the statistics. */
    PacketNetStats run(std::uint64_t cycles);

    std::uint32_t ports() const { return ports_; }

  private:
    /** One word in flight. */
    struct Word
    {
        /** Routing target (memory id forward, processor id back). */
        std::uint32_t target = 0;
        /** Originating processor (to attribute delivery). */
        std::uint32_t source = 0;
        /** True if this is the last word of its train. */
        bool last = false;
    };

    /** One direction's fabric: per-stage, per-port output queues. */
    struct Fabric
    {
        std::vector<std::vector<std::deque<Word>>> queues;
    };

    /** A processor-side source. */
    struct Source
    {
        enum class State : std::uint8_t
        {
            Thinking,
            Injecting,
            WaitingResponse,
        };
        State state = State::Thinking;
        double thinkLeft = 0.0;
        std::uint32_t dest = 0;
        unsigned wordsToInject = 0;
        unsigned responseWordsLeft = 0;
        double transactionStart = 0.0;
        std::uint64_t thinkCycles = 0;
        std::uint64_t blockedCycles = 0;
        std::uint64_t transactions = 0;
        double latencySum = 0.0;
    };

    /** A memory module assembling trains and replying. */
    struct Memory
    {
        /** Pending replies: (ready cycle, requester). */
        std::deque<std::pair<double, std::uint32_t>> pending;
        /** Words of the current incoming train per requester. */
        std::vector<unsigned> received;
        /** Words left to inject of the active response. */
        unsigned injectLeft = 0;
        std::uint32_t injectTarget = 0;
    };

    void stepCycle();
    void advanceFabric(Fabric &fabric, bool toward_memory);
    /** True if @p queue can accept one more word. */
    bool hasRoom(const std::deque<Word> &queue) const;
    void deliver(const Word &word, bool toward_memory);
    std::uint32_t entryPort(std::uint32_t input, std::uint32_t target,
                            unsigned stage) const;

    PacketNetConfig config_;
    std::uint32_t ports_;
    Rng rng_;
    Fabric forward_;
    Fabric backward_;
    std::vector<Source> sources_;
    std::vector<Memory> memories_;
    double now_ = 0.0;
    std::uint64_t wordCyclesForward_ = 0;
    std::uint64_t wordCyclesBackward_ = 0;
    std::size_t maxQueueDepth_ = 0;
    std::uint64_t backpressureStalls_ = 0;
};

} // namespace swcc

#endif // SWCC_SIM_NET_PACKET_NETWORK_HH
