/**
 * @file
 * Cycle-level simulator of an unbuffered circuit-switched omega
 * network of 2x2 crossbars with drop-and-retry flow control — the
 * network architecture of the paper's Section 6.1, built to validate
 * the Patel analytical model (the paper's stated future work).
 */

#ifndef SWCC_SIM_NET_OMEGA_NETWORK_HH
#define SWCC_SIM_NET_OMEGA_NETWORK_HH

#include <cstdint>
#include <vector>

#include "sim/net/net_source.hh"
#include "sim/synth/rng.hh"

namespace swcc
{

/** How a memory transaction occupies the network. */
enum class NetMode : std::uint8_t
{
    /**
     * The unit-request approximation: a transaction of t cycles is t
     * independent single-cycle requests, each routed and arbitrated
     * separately. This is exactly what Patel's model analyses.
     */
    UnitRequest,
    /**
     * True circuit switching: one successful setup claims every switch
     * output port on the path and holds them for the whole message
     * duration.
     */
    Circuit,
};

/** Configuration of one network simulation. */
struct OmegaConfig
{
    /** Switch stages n; the network has switchDim^n ports. */
    unsigned stages = 4;
    /** Crossbar dimension k (the paper's "larger dimension" case). */
    unsigned switchDim = 2;
    /** Mean computing cycles between transactions (1/m). */
    double meanThink = 20.0;
    /** Total network cycles per transaction (t, including 2n transit). */
    double messageCycles = 12.0;
    NetMode mode = NetMode::UnitRequest;
    std::uint64_t seed = 1;

    void validate() const;
};

/** Aggregate results of a network simulation. */
struct OmegaStats
{
    std::uint64_t cycles = 0;
    /** Unit-request (or setup) attempts presented to stage 0. */
    std::uint64_t attempts = 0;
    /** Attempts that traversed all stages. */
    std::uint64_t accepted = 0;
    /** Completed transactions across all sources. */
    std::uint64_t transactions = 0;
    /** Mean request probability observed at each stage's inputs,
     *  stageLoads[0] being the network input (Patel's m_i). */
    std::vector<double> stageLoads;
    /** Fraction of source cycles spent computing (the model's U). */
    double computeFraction = 0.0;
    /** accepted / attempts. */
    double acceptance = 0.0;
    /** Accepted unit requests per port per cycle. */
    double throughputPerPort = 0.0;
};

/**
 * The omega network plus its request sources.
 *
 * Per cycle, every requesting source presents its request at its input
 * port; requests route by destination tag (bit n-1-i selects the
 * output port at stage i) across perfect-shuffle interconnections;
 * when two requests want the same switch output (or, in circuit mode,
 * the port is held), a random one survives and the rest are dropped,
 * to be retried by their sources next cycle.
 */
class OmegaNetwork
{
  public:
    explicit OmegaNetwork(const OmegaConfig &config);

    /** Runs @p cycles network cycles and returns the statistics. */
    OmegaStats run(std::uint64_t cycles);

    /** Number of ports (switchDim^stages). */
    std::uint32_t ports() const { return ports_; }

  private:
    /** One synchronous network cycle. */
    void stepCycle();

    /** Routes this cycle's attempts, returning accepted source ids. */
    std::vector<std::uint32_t> route(
        const std::vector<std::uint32_t> &requesters);

    OmegaConfig config_;
    std::uint32_t ports_;
    Rng rng_;
    std::vector<NetSource> sources_;

    /** Circuit mode: cycle at which each stage output port frees. */
    std::vector<std::vector<double>> portFreeAt_;
    double now_ = 0.0;

    /** Per-stage sums of offered requests, for stage loads. */
    std::vector<std::uint64_t> stageOffered_;
    std::uint64_t attempts_ = 0;
    std::uint64_t accepted_ = 0;
};

} // namespace swcc

#endif // SWCC_SIM_NET_OMEGA_NETWORK_HH
