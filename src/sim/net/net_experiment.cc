#include "sim/net/net_experiment.hh"

#include <stdexcept>

#include "core/network_model.hh"
#include "core/packet_network_model.hh"

namespace swcc
{

double
NetworkValidationPoint::computeErrorPercent() const
{
    return simCompute > 0.0
        ? 100.0 * (modelCompute - simCompute) / simCompute
        : 0.0;
}

NetworkValidationPoint
validateNetworkPoint(double rate, double size, unsigned stages,
                     NetMode mode, std::uint64_t cycles,
                     std::uint64_t seed, unsigned switch_dim)
{
    if (rate <= 0.0) {
        throw std::invalid_argument("rate must be positive");
    }

    NetworkValidationPoint point;
    point.rate = rate;
    point.size = size;
    point.stages = stages;
    point.switchDim = switch_dim;
    point.mode = mode;

    OmegaConfig config;
    config.stages = stages;
    config.switchDim = switch_dim;
    config.meanThink = 1.0 / rate;
    config.messageCycles = size;
    config.mode = mode;
    config.seed = seed;

    OmegaNetwork network(config);
    const OmegaStats stats = network.run(cycles);

    point.simCompute = stats.computeFraction;
    point.simAcceptance = stats.acceptance;
    point.simStageLoads = stats.stageLoads;

    point.modelCompute =
        solveComputeFractionK(rate, size, stages, switch_dim);
    const double m0 = 1.0 - point.modelCompute;
    auto output = [stages, switch_dim](double m) {
        for (unsigned i = 0; i < stages; ++i) {
            m = patelStageStepK(m, switch_dim);
        }
        return m;
    };
    point.modelAcceptance = m0 > 0.0 ? output(m0) / m0 : 1.0;

    // Stage-load comparison seeded with the *simulator's* input load,
    // isolating the stage recursion from the source model.
    if (!stats.stageLoads.empty()) {
        point.modelStageLoads.clear();
        double m = stats.stageLoads.front();
        point.modelStageLoads.push_back(m);
        for (unsigned i = 0; i < stages; ++i) {
            m = patelStageStepK(m, switch_dim);
            point.modelStageLoads.push_back(m);
        }
    }
    return point;
}

std::vector<NetworkValidationPoint>
networkValidationSweep(const std::vector<double> &rates, double size,
                       unsigned stages, NetMode mode,
                       std::uint64_t cycles, std::uint64_t seed)
{
    std::vector<NetworkValidationPoint> points;
    points.reserve(rates.size());
    for (double rate : rates) {
        points.push_back(validateNetworkPoint(rate, size, stages, mode,
                                              cycles, seed));
    }
    return points;
}

double
PacketValidationPoint::computeErrorPercent() const
{
    return simCompute > 0.0
        ? 100.0 * (modelCompute - simCompute) / simCompute
        : 0.0;
}

PacketValidationPoint
validatePacketPoint(double think, unsigned request_words,
                    unsigned response_words, unsigned stages,
                    std::uint64_t cycles, std::uint64_t seed)
{
    PacketValidationPoint point;
    point.think = think;
    point.requestWords = request_words;
    point.responseWords = response_words;
    point.stages = stages;

    PacketNetConfig config;
    config.stages = stages;
    config.meanThink = think;
    config.requestWords = request_words;
    config.responseWords = response_words;
    config.seed = seed;

    PacketOmegaNetwork network(config);
    const PacketNetStats stats = network.run(cycles);
    point.simCompute = stats.computeFraction;
    point.simLatency = stats.meanLatency;
    point.simLinkLoad = stats.linkLoad;

    const RawPacketSolution model = solveRawPacketPoint(
        think, request_words, response_words, stages,
        config.memoryCycles);
    point.modelCompute = model.computeFraction;
    point.modelLatency = model.latency;
    point.modelLinkLoad = model.linkLoad;
    return point;
}

} // namespace swcc
