/**
 * @file
 * Network-model validation experiments: Patel's analytical model
 * against the omega-network simulator.
 */

#ifndef SWCC_SIM_NET_NET_EXPERIMENT_HH
#define SWCC_SIM_NET_NET_EXPERIMENT_HH

#include <vector>

#include "sim/net/omega_network.hh"
#include "sim/net/packet_network.hh"

namespace swcc
{

/** One (rate, size) operating point compared model-vs-simulation. */
struct NetworkValidationPoint
{
    /** Transactions per computing cycle, m. */
    double rate = 0.0;
    /** Network cycles per transaction, t. */
    double size = 0.0;
    unsigned stages = 0;
    /** Crossbar dimension. */
    unsigned switchDim = 2;
    NetMode mode = NetMode::UnitRequest;

    /** Model fixed point (compute fraction U of Equations 4-6). */
    double modelCompute = 0.0;
    /** Simulator compute fraction. */
    double simCompute = 0.0;
    /** Model end-to-end acceptance probability. */
    double modelAcceptance = 0.0;
    /** Simulator acceptance probability. */
    double simAcceptance = 0.0;
    /** Simulator per-stage input loads m_0..m_n. */
    std::vector<double> simStageLoads;
    /** Model per-stage loads from the simulator's m_0. */
    std::vector<double> modelStageLoads;

    /** Signed (model - sim)/sim compute-fraction error, percent. */
    double computeErrorPercent() const;
};

/**
 * Runs one validation point.
 *
 * @param rate Transactions per computing cycle (m > 0).
 * @param size Network cycles per transaction (t >= 1).
 * @param stages Switch stages.
 * @param mode Unit-request (Patel's approximation, expected to match)
 *        or true circuit switching (quantifies the approximation).
 * @param cycles Simulated network cycles.
 * @param seed RNG seed.
 */
NetworkValidationPoint validateNetworkPoint(double rate, double size,
                                            unsigned stages, NetMode mode,
                                            std::uint64_t cycles = 200'000,
                                            std::uint64_t seed = 1,
                                            unsigned switch_dim = 2);

/**
 * Sweeps unit-request rates at a fixed message size, producing the
 * model-vs-simulation series of the X1 extension experiment.
 */
std::vector<NetworkValidationPoint>
networkValidationSweep(const std::vector<double> &rates, double size,
                       unsigned stages, NetMode mode,
                       std::uint64_t cycles = 200'000,
                       std::uint64_t seed = 1);

/** One packet-network operating point compared model-vs-simulation. */
struct PacketValidationPoint
{
    /** Mean computing cycles between transactions. */
    double think = 0.0;
    unsigned requestWords = 0;
    unsigned responseWords = 0;
    unsigned stages = 0;

    /** Model prediction (Kruskal-Snir fixed point). */
    double modelCompute = 0.0;
    double modelLatency = 0.0;
    double modelLinkLoad = 0.0;
    /** Simulator measurements. */
    double simCompute = 0.0;
    double simLatency = 0.0;
    double simLinkLoad = 0.0;

    /** Signed (model - sim)/sim compute-fraction error, percent. */
    double computeErrorPercent() const;
};

/**
 * Runs one buffered packet-switched validation point: the Kruskal-Snir
 * model of core/packet_network_model.hh against the cycle-level
 * packet simulator.
 */
PacketValidationPoint validatePacketPoint(double think,
                                          unsigned request_words,
                                          unsigned response_words,
                                          unsigned stages,
                                          std::uint64_t cycles = 200'000,
                                          std::uint64_t seed = 1);

} // namespace swcc

#endif // SWCC_SIM_NET_NET_EXPERIMENT_HH
