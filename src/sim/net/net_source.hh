/**
 * @file
 * Request source (processor) model for the network simulator.
 */

#ifndef SWCC_SIM_NET_NET_SOURCE_HH
#define SWCC_SIM_NET_NET_SOURCE_HH

#include <cstdint>

#include "sim/synth/rng.hh"

namespace swcc
{

/**
 * One processor-side network port.
 *
 * The source alternates between *thinking* (computing, geometric
 * duration with a configurable mean) and issuing one memory
 * transaction. Transactions are either a train of unit requests (the
 * analytical model's unit-request approximation) or a single circuit
 * held for the full message duration; the network decides which.
 * Blocked attempts are retried every cycle, as in the paper's
 * unbuffered drop-and-retry switches.
 */
class NetSource
{
  public:
    /** What the source is doing this cycle. */
    enum class State : std::uint8_t
    {
        /** Computing; no request at the port. */
        Thinking,
        /** Presenting a request at the port (possibly retrying). */
        Requesting,
        /** Holding an established circuit (circuit mode only). */
        Holding,
    };

    /**
     * @param mean_think Mean computing cycles between transactions
     *        (1/m in the model's terms); zero saturates the source.
     * @param units_mean Mean unit requests per transaction (t); each
     *        transaction draws floor/ceil randomly to hit the mean.
     * @param num_dests Number of memory modules (uniform destinations).
     */
    NetSource(double mean_think, double units_mean,
              std::uint32_t num_dests);

    State state() const { return state_; }

    /** Destination of the current request. @pre Requesting */
    std::uint32_t dest() const { return dest_; }

    /**
     * Advances one idle cycle (Thinking or Holding); may transition to
     * Requesting (drawing a destination) or back to Thinking.
     */
    void tick(Rng &rng);

    /**
     * Reports an accepted unit request; after the transaction's drawn
     * unit count the transaction completes and thinking resumes.
     */
    void unitAccepted(Rng &rng);

    /** Enters the Holding state for @p cycles (circuit established). */
    void startHolding(double cycles);

    /** Cycles spent in each state, for statistics. */
    std::uint64_t thinkCycles() const { return thinkCycles_; }
    std::uint64_t requestCycles() const { return requestCycles_; }
    std::uint64_t holdCycles() const { return holdCycles_; }

    /** Completed transactions. */
    std::uint64_t transactions() const { return transactions_; }

    /** Counts this cycle into the current state's total. */
    void countCycle();

  private:
    void beginThink(Rng &rng);
    void beginRequest(Rng &rng);

    double meanThink_;
    double unitsMean_;
    std::uint32_t numDests_;
    State state_ = State::Thinking;
    double stateLeft_ = 0.0;
    std::uint32_t dest_ = 0;
    double unitsDone_ = 0.0;
    double unitsTarget_ = 1.0;

    std::uint64_t thinkCycles_ = 0;
    std::uint64_t requestCycles_ = 0;
    std::uint64_t holdCycles_ = 0;
    std::uint64_t transactions_ = 0;
};

} // namespace swcc

#endif // SWCC_SIM_NET_NET_SOURCE_HH
