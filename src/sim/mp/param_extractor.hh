/**
 * @file
 * Workload-parameter extraction: trace + cache simulation -> the
 * analytical model's Table 2 parameters.
 *
 * This mirrors the paper's methodology: ls, shd, wr, apl and mdshd are
 * measured from the raw trace; miss rates and md come from simulating
 * the caches; oclean, opres and nshd come from a Dragon simulation that
 * observes other caches at each shared miss and write.
 */

#ifndef SWCC_SIM_MP_PARAM_EXTRACTOR_HH
#define SWCC_SIM_MP_PARAM_EXTRACTOR_HH

#include "core/workload.hh"
#include "sim/cache/cache_config.hh"
#include "sim/cache/dragon_protocol.hh"
#include "sim/mp/sim_stats.hh"
#include "sim/trace/trace_buffer.hh"
#include "sim/trace/trace_stats.hh"

namespace swcc
{

/** Extraction result: the model inputs plus their provenance. */
struct ExtractedParams
{
    /** The assembled model input. */
    WorkloadParams params;
    /** Raw-trace measurements (ls, shd, wr, apl, mdshd). */
    TraceStatistics traceStats;
    /** Base-scheme cache statistics (miss rates, md). */
    SimStats baseStats;
    /** Dragon sharing measurements (oclean, opres, nshd). */
    DragonMeasurements dragonMeasurements;
};

/**
 * Measures every Table 2 parameter of @p trace at @p cache_config.
 *
 * Defaults stand in for quantities a trace cannot expose: when the
 * trace has no flushes, mdshd falls back to the Table 7 middle value;
 * when it has no terminated write-runs, apl does likewise.
 *
 * @param trace Interleaved trace.
 * @param cache_config Cache geometry for the miss-rate simulations.
 * @param shared Shared classifier; dynamic detection when null.
 */
ExtractedParams extractParams(const TraceBuffer &trace,
                              const CacheConfig &cache_config,
                              const SharedClassifier &shared = nullptr);

} // namespace swcc

#endif // SWCC_SIM_MP_PARAM_EXTRACTOR_HH
