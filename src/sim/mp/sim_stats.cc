#include "sim/mp/sim_stats.hh"

#include <algorithm>
#include <ios>
#include <sstream>

namespace swcc
{

std::uint64_t
SimStats::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const CpuStats &cpu : perCpu) {
        total += cpu.instructions;
    }
    return total;
}

std::uint64_t
SimStats::totalUsefulInstructions() const
{
    std::uint64_t total = 0;
    for (const CpuStats &cpu : perCpu) {
        total += cpu.usefulInstructions();
    }
    return total;
}

std::uint64_t
SimStats::totalDataRefs() const
{
    std::uint64_t total = 0;
    for (const CpuStats &cpu : perCpu) {
        total += cpu.dataRefs;
    }
    return total;
}

double
SimStats::processingPower() const
{
    double power = 0.0;
    for (const CpuStats &cpu : perCpu) {
        power += cpu.utilization();
    }
    return power;
}

double
SimStats::avgUtilization() const
{
    return perCpu.empty()
        ? 0.0
        : processingPower() / static_cast<double>(perCpu.size());
}

double
SimStats::busUtilization() const
{
    return makespan > 0.0 ? busBusyCycles / makespan : 0.0;
}

double
SimStats::dataMissRate() const
{
    const std::uint64_t refs = totalDataRefs();
    return refs > 0
        ? static_cast<double>(dataMisses) / static_cast<double>(refs)
        : 0.0;
}

double
SimStats::instrMissRate() const
{
    const std::uint64_t instrs = totalInstructions();
    return instrs > 0
        ? static_cast<double>(instrMisses) / static_cast<double>(instrs)
        : 0.0;
}

double
SimStats::dirtyMissFraction() const
{
    const std::uint64_t misses = instrMisses + dataMisses;
    return misses > 0
        ? static_cast<double>(dirtyMisses) / static_cast<double>(misses)
        : 0.0;
}

std::string
SimStats::serialize() const
{
    std::ostringstream out;
    out << std::hexfloat;
    out << "protocol=" << protocolName << " scheme="
        << static_cast<unsigned>(scheme) << " cpus=" << cpus << '\n';
    out << "ops=";
    for (std::size_t i = 0; i < opCounts.size(); ++i) {
        out << (i == 0 ? "" : ",") << opCounts[i];
    }
    out << '\n';
    out << "instrMisses=" << instrMisses << " dataMisses=" << dataMisses
        << " dirtyMisses=" << dirtyMisses << '\n';
    out << "busBusy=" << busBusyCycles << " busTransactions="
        << busTransactions << " makespan=" << makespan << '\n';
    for (const CpuStats &cpu : perCpu) {
        out << "cpu instructions=" << cpu.instructions << " flushes="
            << cpu.flushes << " dataRefs=" << cpu.dataRefs
            << " finishTime=" << cpu.finishTime << " busWaiting="
            << cpu.busWaiting << " stolen=" << cpu.stolen << '\n';
    }
    return out.str();
}

} // namespace swcc
