#include "sim/mp/param_extractor.hh"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/obs/log.hh"
#include "sim/mp/system.hh"

namespace swcc
{

ExtractedParams
extractParams(const TraceBuffer &trace, const CacheConfig &cache_config,
              const SharedClassifier &shared)
{
    ExtractedParams out;

    // Raw-trace measurements. When no classifier is supplied, build the
    // dynamic one (blocks touched by more than one processor).
    out.traceStats = analyzeTrace(trace, cache_config.blockBytes, shared);

    // Cache-dependent measurements from a Base-scheme run: miss rates
    // and the dirty-victim fraction, uncontaminated by coherence
    // actions.
    const CpuId cpus = std::max<CpuId>(1, trace.numCpus());
    {
        MultiprocessorSystem base_system(Scheme::Base, cache_config, cpus);
        out.baseStats = base_system.run(trace);
    }

    // Sharing interaction measurements from a Dragon run.
    {
        SharedClassifier measure = shared;
        if (!measure) {
            // Dynamic interpretation: precompute the multi-processor
            // blocks, then classify against that set.
            auto shared_blocks =
                std::make_shared<std::unordered_set<Addr>>();
            std::unordered_map<Addr, CpuId> first;
            const Addr mask =
                ~static_cast<Addr>(cache_config.blockBytes - 1);
            for (const TraceEvent &event : trace) {
                if (!isData(event.type)) {
                    continue;
                }
                const Addr block = event.addr & mask;
                auto [it, inserted] = first.emplace(block, event.cpu);
                if (!inserted && it->second != event.cpu) {
                    shared_blocks->insert(block);
                }
            }
            measure = [shared_blocks](Addr block) {
                return shared_blocks->contains(block);
            };
        }
        MultiprocessorSystem dragon_system(Scheme::Dragon, cache_config,
                                           cpus, measure);
        dragon_system.run(trace);
        const auto &dragon =
            static_cast<const DragonProtocol &>(dragon_system.protocol());
        out.dragonMeasurements = dragon.measurements();
    }

    // Assemble the model input.
    WorkloadParams params = middleParams();
    params.ls = out.traceStats.ls;
    params.shd = out.traceStats.shd;
    params.wr = out.traceStats.wr;
    params.msdat = out.baseStats.dataMissRate();
    params.mains = out.baseStats.instrMissRate();
    params.md = out.baseStats.dirtyMissFraction();
    // These two are only measurable when the trace actually exercises
    // write runs / shared dirty misses; a short or read-only trace
    // silently inheriting the paper's middle value has misled more
    // than one experiment, so say so.
    if (!out.traceStats.apl.has_value()) {
        SWCC_LOG_WARN("trace has no write runs; apl falls back to the "
                      "paper's middle value");
    }
    if (!out.traceStats.mdshd.has_value()) {
        SWCC_LOG_WARN("trace has no shared-block misses; mdshd falls "
                      "back to the paper's middle value");
    }
    params.apl = std::max(
        1.0, out.traceStats.apl.value_or(
                 1.0 / paramLevelValue(ParamId::InvApl, Level::Middle)));
    params.mdshd = out.traceStats.mdshd.value_or(
        paramLevelValue(ParamId::Mdshd, Level::Middle));
    params.oclean = out.dragonMeasurements.oclean(
        paramLevelValue(ParamId::Oclean, Level::Middle));
    params.opres = out.dragonMeasurements.opres(
        paramLevelValue(ParamId::Opres, Level::Middle));
    params.nshd = out.dragonMeasurements.nshd(
        paramLevelValue(ParamId::Nshd, Level::Middle));
    params.validate();
    out.params = params;
    return out;
}

} // namespace swcc
