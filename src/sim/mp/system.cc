#include "sim/mp/system.hh"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/obs/metrics.hh"
#include "sim/cache/base_protocol.hh"
#include "sim/cache/dragon_protocol.hh"
#include "sim/cache/hybrid_protocol.hh"
#include "sim/cache/mesi_family_protocol.hh"
#include "sim/cache/nocache_protocol.hh"
#include "sim/cache/swflush_protocol.hh"

namespace swcc
{

namespace
{

std::unique_ptr<CoherenceProtocol>
makeProtocol(Scheme scheme, const CacheConfig &cache_config,
             CpuId num_cpus, SharedClassifier shared)
{
    switch (scheme) {
      case Scheme::Base:
        return std::make_unique<BaseProtocol>(cache_config, num_cpus);
      case Scheme::NoCache:
        return std::make_unique<NoCacheProtocol>(cache_config, num_cpus,
                                                 std::move(shared));
      case Scheme::SoftwareFlush:
        return std::make_unique<SwFlushProtocol>(cache_config, num_cpus);
      case Scheme::Dragon:
        return std::make_unique<DragonProtocol>(cache_config, num_cpus,
                                                std::move(shared));
      case Scheme::Mesi:
        return std::make_unique<MesiFamilyProtocol>(
            MesiVariant::Mesi, cache_config, num_cpus);
      case Scheme::Mesif:
        return std::make_unique<MesiFamilyProtocol>(
            MesiVariant::Mesif, cache_config, num_cpus);
      case Scheme::Moesi:
        return std::make_unique<MesiFamilyProtocol>(
            MesiVariant::Moesi, cache_config, num_cpus);
      case Scheme::Hybrid:
        return std::make_unique<HybridProtocol>(cache_config, num_cpus);
    }
    throw std::invalid_argument("unknown Scheme");
}

bool
isMissOp(Operation op)
{
    return op == Operation::CleanMissMem || op == Operation::DirtyMissMem ||
        op == Operation::CleanMissCache || op == Operation::DirtyMissCache;
}

bool
isDirtyVictimOp(Operation op)
{
    return op == Operation::DirtyMissMem || op == Operation::DirtyMissCache;
}

} // namespace

MultiprocessorSystem::MultiprocessorSystem(Scheme scheme,
                                           const CacheConfig &cache_config,
                                           CpuId num_cpus,
                                           SharedClassifier shared,
                                           const BusCostModel &costs)
    : scheme_(scheme), costs_(costs),
      protocol_(makeProtocol(scheme, cache_config, num_cpus,
                             std::move(shared)))
{
    processors_.reserve(num_cpus);
    for (CpuId i = 0; i < num_cpus; ++i) {
        processors_.emplace_back(i);
    }
    result_.steals.reserve(num_cpus);
}

MultiprocessorSystem::MultiprocessorSystem(
    std::unique_ptr<CoherenceProtocol> protocol,
    const BusCostModel &costs)
    : scheme_(Scheme::Base), costs_(costs), protocol_(std::move(protocol))
{
    if (!protocol_) {
        throw std::invalid_argument("need a protocol");
    }
    const CpuId num_cpus = protocol_->numCpus();
    processors_.reserve(num_cpus);
    for (CpuId i = 0; i < num_cpus; ++i) {
        processors_.emplace_back(i);
    }
    result_.steals.reserve(num_cpus);
}

void
MultiprocessorSystem::step(TraceProcessor &proc, SimStats &stats)
{
    const TraceEvent &event = proc.current();
    Cycles now = proc.readyAt;

    protocol_->access(event.cpu, event.type, event.addr, result_);

    switch (event.type) {
      case RefType::IFetch:
        ++proc.stats.instructions;
        // A fetched flush instruction's execution cost is the flush
        // operation itself, charged when the flush event executes.
        if (!proc.currentFetchesFlush()) {
            now += 1.0;
        }
        break;
      case RefType::Load:
      case RefType::Store:
        ++proc.stats.dataRefs;
        break;
      case RefType::Flush:
        ++proc.stats.flushes;
        break;
    }

    for (std::uint8_t i = 0; i < result_.numOps; ++i) {
        const Operation op = result_.ops[i];
        const OpCost cost = costs_.cost(op);
        ++stats.opCounts[operationIndex(op)];

        if (isMissOp(op)) {
            if (event.type == RefType::IFetch) {
                ++stats.instrMisses;
            } else {
                ++stats.dataMisses;
            }
            if (isDirtyVictimOp(op)) {
                ++stats.dirtyMisses;
            }
        }

        if (cost.channel > 0.0) {
            // Local miss handling precedes the bus transaction.
            now += cost.cpu - cost.channel;
            const Bus::Grant grant = bus_.acquire(now, cost.channel);
            proc.stats.busWaiting += grant.waited;
            now = grant.start + cost.channel;
        } else {
            now += cost.cpu;
        }
    }

    for (CpuId victim : result_.steals) {
        TraceProcessor &victim_proc = processors_[victim];
        victim_proc.stealCycle();
        if (victim_proc.done()) {
            // The victim has retired its last event, so no further
            // step() will fold the bump into its finish time; record
            // it here or the stolen cycle never reaches the makespan.
            victim_proc.stats.finishTime = victim_proc.readyAt;
        }
#if SWCC_OBS_ENABLED
        if (trc_ != nullptr) {
            trc_->recordInstant(stealName_, simPid_,
                                static_cast<std::int32_t>(victim),
                                victim_proc.readyAt);
        }
#endif
    }

#if SWCC_OBS_ENABLED
    // One branch per retire when tracing is off; purely observational
    // when on. Span start is the processor's clock at dispatch, so
    // each CPU track shows retire latency including bus waits.
    if (trc_ != nullptr) {
        const Cycles start = proc.readyAt;
        trc_->recordComplete(
            retireNames_[static_cast<std::size_t>(event.type)],
            simPid_, static_cast<std::int32_t>(event.cpu), start,
            now - start);
        if ((++retired_ & 4095) == 0) {
            const auto counterTid =
                static_cast<std::int32_t>(processors_.size()) + 1;
            trc_->recordCounter(eventsCounterName_, simPid_,
                                counterTid, start,
                                static_cast<double>(retired_));
            trc_->recordCounter(busBusyCounterName_, simPid_,
                                counterTid, start,
                                bus_.busyCycles());
        }
    }
#endif

    proc.readyAt = now;
    proc.stats.finishTime = now;
    proc.advance();

    if (invariantInterval_ > 0 &&
        ++eventCount_ % invariantInterval_ == 0) {
        checkCoherenceInvariants(*protocol_);
    }
}

void
MultiprocessorSystem::beginRunTrace()
{
#if SWCC_OBS_ENABLED
    obs::TraceRecorder &trc = obs::tracer();
    trc_ = &trc;
    simPid_ = trc.nextSimPid();
    const auto cpus = static_cast<std::int32_t>(processors_.size());
    trc.setProcessName(simPid_,
                       "sim:" + std::string(protocol_->name()) + " " +
                           std::to_string(cpus) +
                           "p (ts in cycles)");
    for (std::int32_t cpu = 0; cpu < cpus; ++cpu) {
        trc.setThreadName(simPid_, cpu,
                          "cpu " + std::to_string(cpu));
    }
    trc.setThreadName(simPid_, cpus, "bus");
    trc.setThreadName(simPid_, cpus + 1, "counters");
    retireNames_ = {trc.intern("retire.ifetch"),
                    trc.intern("retire.load"),
                    trc.intern("retire.store"),
                    trc.intern("retire.flush")};
    stealName_ = trc.intern("snoop.steal");
    eventsCounterName_ = trc.intern("sim.events_retired");
    busBusyCounterName_ = trc.intern("sim.bus_busy_cycles");
    bus_.setObserver(&trc, simPid_, cpus);
    retired_ = 0;
#endif
}

SimStats
MultiprocessorSystem::run(const TraceBuffer &trace)
{
    if (trace.numCpus() > processors_.size()) {
        throw std::invalid_argument(
            "trace uses more processors than the system has");
    }

    // Distribute the interleaved trace into program-order streams,
    // counting first so every stream is allocated exactly once.
    std::vector<std::size_t> stream_sizes(processors_.size(), 0);
    for (const TraceEvent &event : trace) {
        ++stream_sizes[event.cpu];
    }
    std::vector<std::vector<TraceEvent>> streams(processors_.size());
    for (std::size_t i = 0; i < streams.size(); ++i) {
        streams[i].reserve(stream_sizes[i]);
    }
    for (const TraceEvent &event : trace) {
        streams[event.cpu].push_back(event);
    }
    for (std::size_t i = 0; i < processors_.size(); ++i) {
        processors_[i].setEvents(std::move(streams[i]));
        processors_[i].readyAt = 0.0;
        processors_[i].stats = CpuStats{};
    }
    bus_.reset();

#if SWCC_OBS_ENABLED
    if (obs::tracer().enabled()) {
        beginRunTrace();
    } else {
        trc_ = nullptr;
        bus_.setObserver(nullptr, 0, 0);
    }
#endif

    SimStats stats;
    stats.scheme = scheme_;
    stats.protocolName = std::string(protocol_->name());
    stats.cpus = static_cast<CpuId>(processors_.size());

    // Global-time event loop: always advance the processor with the
    // smallest local clock, lowest id on ties. A tournament tree over
    // the processor clocks replays one leaf-to-root path (O(log P)
    // compares, branch-light) per event; the binary heap it replaces
    // profiled as the hottest function in the whole simulator, and
    // unlike a heap the tree re-reads clocks on every compare, so
    // clocks bumped by stolen cycles need no stale-entry repair —
    // just a refresh of the victim's path. Retired processors park at
    // +inf; ties resolve leftward, i.e. to the lowest processor id,
    // exactly as the heap's comparator ordered them.
    constexpr double kIdle = std::numeric_limits<double>::infinity();
    const std::size_t leaves = std::bit_ceil(processors_.size());
    std::vector<double> clocks(leaves, kIdle);
    std::vector<std::uint32_t> winner(2 * leaves);
    for (std::size_t i = 0; i < leaves; ++i) {
        winner[leaves + i] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = 0; i < processors_.size(); ++i) {
        if (!processors_[i].done()) {
            clocks[i] = processors_[i].readyAt;
        }
    }
    for (std::size_t n = leaves - 1; n >= 1; --n) {
        winner[n] = clocks[winner[2 * n]] <= clocks[winner[2 * n + 1]]
            ? winner[2 * n] : winner[2 * n + 1];
    }
    const auto refresh = [&](std::size_t i) {
        const TraceProcessor &proc = processors_[i];
        clocks[i] = proc.done() ? kIdle : proc.readyAt;
        for (std::size_t n = (leaves + i) >> 1; n >= 1; n >>= 1) {
            const std::uint32_t left = winner[2 * n];
            const std::uint32_t right = winner[2 * n + 1];
            winner[n] = clocks[left] <= clocks[right] ? left : right;
        }
    };

    while (clocks[winner[1]] != kIdle) {
        const std::uint32_t cpu = winner[1];
        step(processors_[cpu], stats);
        refresh(cpu);
        for (CpuId victim : result_.steals) {
            refresh(victim);
        }
    }

    stats.perCpu.reserve(processors_.size());
    for (const TraceProcessor &proc : processors_) {
        stats.perCpu.push_back(proc.stats);
        stats.makespan = std::max(stats.makespan, proc.stats.finishTime);
    }
    stats.busBusyCycles = bus_.busyCycles();
    stats.busTransactions = bus_.transactions();

#if SWCC_OBS_ENABLED
    {
        // Once per run, off the event loop: aggregate counters only.
        static obs::Counter &runs =
            obs::metrics().counter("sim.runs");
        static obs::Counter &events =
            obs::metrics().counter("sim.events");
        static obs::Counter &xacts =
            obs::metrics().counter("sim.bus.transactions");
        runs.add(1);
        events.add(trace.size());
        xacts.add(stats.busTransactions);
    }
#endif
    return stats;
}

SimStats
simulateTrace(Scheme scheme, const TraceBuffer &trace,
              const CacheConfig &cache_config,
              const SharedClassifier &shared)
{
    MultiprocessorSystem system(scheme, cache_config,
                                std::max<CpuId>(1, trace.numCpus()),
                                shared);
    return system.run(trace);
}

} // namespace swcc
