#include "sim/mp/system.hh"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "sim/cache/base_protocol.hh"
#include "sim/cache/dragon_protocol.hh"
#include "sim/cache/nocache_protocol.hh"
#include "sim/cache/swflush_protocol.hh"

namespace swcc
{

namespace
{

std::unique_ptr<CoherenceProtocol>
makeProtocol(Scheme scheme, const CacheConfig &cache_config,
             CpuId num_cpus, SharedClassifier shared)
{
    switch (scheme) {
      case Scheme::Base:
        return std::make_unique<BaseProtocol>(cache_config, num_cpus);
      case Scheme::NoCache:
        return std::make_unique<NoCacheProtocol>(cache_config, num_cpus,
                                                 std::move(shared));
      case Scheme::SoftwareFlush:
        return std::make_unique<SwFlushProtocol>(cache_config, num_cpus);
      case Scheme::Dragon:
        return std::make_unique<DragonProtocol>(cache_config, num_cpus,
                                                std::move(shared));
    }
    throw std::invalid_argument("unknown Scheme");
}

bool
isMissOp(Operation op)
{
    return op == Operation::CleanMissMem || op == Operation::DirtyMissMem ||
        op == Operation::CleanMissCache || op == Operation::DirtyMissCache;
}

bool
isDirtyVictimOp(Operation op)
{
    return op == Operation::DirtyMissMem || op == Operation::DirtyMissCache;
}

} // namespace

MultiprocessorSystem::MultiprocessorSystem(Scheme scheme,
                                           const CacheConfig &cache_config,
                                           CpuId num_cpus,
                                           SharedClassifier shared,
                                           const BusCostModel &costs)
    : scheme_(scheme), costs_(costs),
      protocol_(makeProtocol(scheme, cache_config, num_cpus,
                             std::move(shared)))
{
    processors_.reserve(num_cpus);
    for (CpuId i = 0; i < num_cpus; ++i) {
        processors_.emplace_back(i);
    }
}

MultiprocessorSystem::MultiprocessorSystem(
    std::unique_ptr<CoherenceProtocol> protocol,
    const BusCostModel &costs)
    : scheme_(Scheme::Base), costs_(costs), protocol_(std::move(protocol))
{
    if (!protocol_) {
        throw std::invalid_argument("need a protocol");
    }
    const CpuId num_cpus = protocol_->numCpus();
    processors_.reserve(num_cpus);
    for (CpuId i = 0; i < num_cpus; ++i) {
        processors_.emplace_back(i);
    }
}

void
MultiprocessorSystem::step(TraceProcessor &proc, SimStats &stats)
{
    const TraceEvent &event = proc.current();
    Cycles now = proc.readyAt;

    protocol_->access(event.cpu, event.type, event.addr, result_);

    switch (event.type) {
      case RefType::IFetch:
        ++proc.stats.instructions;
        // A fetched flush instruction's execution cost is the flush
        // operation itself, charged when the flush event executes.
        if (!proc.currentFetchesFlush()) {
            now += 1.0;
        }
        break;
      case RefType::Load:
      case RefType::Store:
        ++proc.stats.dataRefs;
        break;
      case RefType::Flush:
        ++proc.stats.flushes;
        break;
    }

    for (std::uint8_t i = 0; i < result_.numOps; ++i) {
        const Operation op = result_.ops[i];
        const OpCost cost = costs_.cost(op);
        ++stats.opCounts[operationIndex(op)];

        if (isMissOp(op)) {
            if (event.type == RefType::IFetch) {
                ++stats.instrMisses;
            } else {
                ++stats.dataMisses;
            }
            if (isDirtyVictimOp(op)) {
                ++stats.dirtyMisses;
            }
        }

        if (cost.channel > 0.0) {
            // Local miss handling precedes the bus transaction.
            now += cost.cpu - cost.channel;
            const Bus::Grant grant = bus_.acquire(now, cost.channel);
            proc.stats.busWaiting += grant.waited;
            now = grant.start + cost.channel;
        } else {
            now += cost.cpu;
        }
    }

    for (CpuId victim : result_.steals) {
        processors_[victim].stealCycle();
    }

    proc.readyAt = now;
    proc.stats.finishTime = now;
    proc.advance();

    if (invariantInterval_ > 0 &&
        ++eventCount_ % invariantInterval_ == 0) {
        checkCoherenceInvariants(*protocol_);
    }
}

SimStats
MultiprocessorSystem::run(const TraceBuffer &trace)
{
    if (trace.numCpus() > processors_.size()) {
        throw std::invalid_argument(
            "trace uses more processors than the system has");
    }

    // Distribute the interleaved trace into program-order streams.
    std::vector<std::vector<TraceEvent>> streams(processors_.size());
    for (const TraceEvent &event : trace) {
        streams[event.cpu].push_back(event);
    }
    for (std::size_t i = 0; i < processors_.size(); ++i) {
        processors_[i].setEvents(std::move(streams[i]));
        processors_[i].readyAt = 0.0;
        processors_[i].stats = CpuStats{};
    }
    bus_.reset();

    SimStats stats;
    stats.scheme = scheme_;
    stats.protocolName = std::string(protocol_->name());
    stats.cpus = static_cast<CpuId>(processors_.size());

    // Global-time event loop: always advance the processor with the
    // smallest local clock.
    using Entry = std::pair<Cycles, CpuId>;
    auto later = [](const Entry &a, const Entry &b) {
        return a.first > b.first ||
            (a.first == b.first && a.second > b.second);
    };
    std::priority_queue<Entry, std::vector<Entry>, decltype(later)>
        ready(later);
    for (const TraceProcessor &proc : processors_) {
        if (!proc.done()) {
            ready.push({proc.readyAt, proc.id()});
        }
    }

    while (!ready.empty()) {
        const auto [time, cpu] = ready.top();
        ready.pop();
        TraceProcessor &proc = processors_[cpu];
        if (proc.done()) {
            continue;
        }
        if (proc.readyAt > time) {
            // Clock moved (stolen cycles) since this entry was queued.
            ready.push({proc.readyAt, cpu});
            continue;
        }
        step(proc, stats);
        if (!proc.done()) {
            ready.push({proc.readyAt, cpu});
        }
    }

    stats.perCpu.reserve(processors_.size());
    for (const TraceProcessor &proc : processors_) {
        stats.perCpu.push_back(proc.stats);
        stats.makespan = std::max(stats.makespan, proc.stats.finishTime);
    }
    stats.busBusyCycles = bus_.busyCycles();
    stats.busTransactions = bus_.transactions();
    return stats;
}

SimStats
simulateTrace(Scheme scheme, const TraceBuffer &trace,
              const CacheConfig &cache_config,
              const SharedClassifier &shared)
{
    MultiprocessorSystem system(scheme, cache_config,
                                std::max<CpuId>(1, trace.numCpus()),
                                shared);
    return system.run(trace);
}

} // namespace swcc
