/**
 * @file
 * Whole-system trace-driven multiprocessor simulator.
 */

#ifndef SWCC_SIM_MP_SYSTEM_HH
#define SWCC_SIM_MP_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/cost_model.hh"
#include "core/obs/trace.hh"
#include "core/types.hh"
#include "sim/bus/bus.hh"
#include "sim/cache/coherence.hh"
#include "sim/mp/processor.hh"
#include "sim/mp/sim_stats.hh"
#include "sim/trace/trace_buffer.hh"
#include "sim/trace/trace_stats.hh"

namespace swcc
{

/**
 * The trace-driven multiprocessor cache and bus simulator of the
 * paper's validation section.
 *
 * Per-processor traces replay against private caches kept coherent by
 * the selected protocol; cache activity is priced with the Table 1
 * system model and serialised through a FCFS bus with deterministic
 * service times. Events are processed in global-time order (the
 * processor with the smallest local clock goes next), which both
 * orders bus grants fairly and lets processor timing — not the traced
 * machine's timing — determine the interleaving, as in the paper.
 */
class MultiprocessorSystem
{
  public:
    /**
     * @param scheme Coherence scheme to simulate.
     * @param cache_config Geometry of each private cache.
     * @param num_cpus Number of processors.
     * @param shared Shared-region classifier: required by No-Cache,
     *        used by Dragon for parameter measurement, ignored by the
     *        others.
     * @param costs Bus system model (defaults to paper Table 1).
     */
    MultiprocessorSystem(Scheme scheme, const CacheConfig &cache_config,
                         CpuId num_cpus,
                         SharedClassifier shared = nullptr,
                         const BusCostModel &costs = BusCostModel());

    /**
     * Builds a system around a caller-supplied protocol (extension
     * protocols beyond the paper's four schemes, e.g. write-
     * invalidate). Statistics carry the protocol's name(); the
     * SimStats::scheme field is meaningful only for the paper
     * protocols and defaults to Base here.
     */
    MultiprocessorSystem(std::unique_ptr<CoherenceProtocol> protocol,
                         const BusCostModel &costs = BusCostModel());

    /**
     * Replays @p trace to completion and returns the statistics.
     *
     * May be called once per system (caches stay warm otherwise);
     * construct a fresh system for an independent run.
     *
     * @throws std::invalid_argument if the trace uses more processors
     *         than the system has.
     */
    SimStats run(const TraceBuffer &trace);

    /** The protocol, for measurements and invariant checks. */
    const CoherenceProtocol &protocol() const { return *protocol_; }

    /**
     * Selects the protocol's snoop path (sharer-index directory vs
     * the retained reference scan); must be called before run().
     * See SnoopPath.
     */
    void
    setSnoopPath(SnoopPath path)
    {
        protocol_->setSnoopPath(path);
    }

    /**
     * Makes run() verify the cross-cache coherence invariants every
     * @p events references (0 disables; intended for tests).
     */
    void
    setInvariantCheckInterval(std::uint64_t events)
    {
        invariantInterval_ = events;
    }

  private:
    /** Executes one trace reference on @p proc. */
    void step(TraceProcessor &proc, SimStats &stats);

    /** Opens this run's simulated-time trace process (tracing on). */
    void beginRunTrace();

    Scheme scheme_;
    BusCostModel costs_;
    std::unique_ptr<CoherenceProtocol> protocol_;
    std::vector<TraceProcessor> processors_;
    Bus bus_;
    AccessResult result_;
    std::uint64_t invariantInterval_ = 0;
    std::uint64_t eventCount_ = 0;

    // Tracing state for the current run. trc_ stays null unless the
    // recorder is enabled when run() starts, so the per-retire cost
    // of disabled tracing is one branch on a null pointer; none of
    // this ever feeds back into simulation timing or statistics.
    obs::TraceRecorder *trc_ = nullptr;
    std::int32_t simPid_ = 0;
    /** Retire-span names indexed by RefType. */
    std::array<std::uint32_t, 4> retireNames_{};
    std::uint32_t stealName_ = 0;
    std::uint32_t eventsCounterName_ = 0;
    std::uint32_t busBusyCounterName_ = 0;
    std::uint64_t retired_ = 0;
};

/**
 * Convenience wrapper: build a system, run the trace, return stats.
 */
SimStats simulateTrace(Scheme scheme, const TraceBuffer &trace,
                       const CacheConfig &cache_config,
                       const SharedClassifier &shared = nullptr);

} // namespace swcc

#endif // SWCC_SIM_MP_SYSTEM_HH
