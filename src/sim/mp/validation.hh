/**
 * @file
 * Model-vs-simulation validation harness (paper Section 3).
 */

#ifndef SWCC_SIM_MP_VALIDATION_HH
#define SWCC_SIM_MP_VALIDATION_HH

#include <vector>

#include "core/bus_model.hh"
#include "core/campaign/campaign.hh"
#include "core/types.hh"
#include "sim/cache/cache_config.hh"
#include "sim/mp/sim_stats.hh"
#include "sim/synth/app_profiles.hh"

namespace swcc
{

/** One validated operating point. */
struct ValidationPoint
{
    AppProfile profile = AppProfile::PopsLike;
    Scheme scheme = Scheme::Base;
    CpuId cpus = 0;
    std::size_t cacheBytes = 0;

    /** Simulator measurement. */
    double simPower = 0.0;
    /** Analytical model prediction (parameters extracted from trace). */
    double modelPower = 0.0;
    /** Full model solution, for detailed reporting. */
    BusSolution model;
    /** Full simulator statistics. */
    SimStats sim;

    /** Signed (model - sim) / sim in percent. */
    double errorPercent() const;
};

/** Configuration of one validation experiment. */
struct ValidationConfig
{
    AppProfile profile = AppProfile::PopsLike;
    Scheme scheme = Scheme::Dragon;
    std::size_t cacheBytes = 64 * 1024;
    /** Evaluate 1..maxCpus processors. */
    CpuId maxCpus = 4;
    std::size_t instructionsPerCpu = 150'000;
    std::uint64_t seed = 1;
};

/**
 * Evaluates a single validation cell at @p cpus processors: generates
 * a fresh trace of the profile (seeded from config.seed + cpus, so the
 * cell is self-contained and order-independent), simulates the scheme
 * on it, extracts the Table 2 parameters from that same trace, and
 * evaluates the analytical model on them. validate() and the sweep
 * benches fan these cells out across the pool.
 */
ValidationPoint validatePoint(const ValidationConfig &config, CpuId cpus);

/**
 * Runs one model-vs-simulation validation experiment.
 *
 * For each processor count a fresh trace of the profile is generated,
 * the scheme is simulated on it, the Table 2 parameters are extracted
 * from that same trace, and the analytical model is evaluated on the
 * extracted parameters — exactly the paper's validation flow. Software
 * schemes are validated with flush-bearing traces (an extension the
 * paper's hardware-coherent traces ruled out).
 */
std::vector<ValidationPoint> validate(const ValidationConfig &config);

/**
 * validate() as a resumable campaign: one journaled cell per
 * processor count. Cells satisfied from the journal (and poisoned
 * cells, which surface as NaN powers) carry only simPower and
 * modelPower — the detailed model / sim sub-structures are populated
 * only for cells evaluated in this run. The parameterless overload
 * delegates here with journaling disabled.
 */
std::vector<ValidationPoint>
validate(const ValidationConfig &config,
         const campaign::CampaignOptions &options,
         campaign::CampaignReport *report = nullptr);

} // namespace swcc

#endif // SWCC_SIM_MP_VALIDATION_HH
