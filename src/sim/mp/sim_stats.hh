/**
 * @file
 * Statistics produced by a multiprocessor simulation run.
 */

#ifndef SWCC_SIM_MP_SIM_STATS_HH
#define SWCC_SIM_MP_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/operation.hh"
#include "core/types.hh"
#include "sim/trace/trace_event.hh"

namespace swcc
{

/** Per-processor simulation counters. */
struct CpuStats
{
    /** Instructions fetched (including flush instructions). */
    std::uint64_t instructions = 0;
    /** Flush instructions executed (coherence overhead, not work). */
    std::uint64_t flushes = 0;
    /** Loads + stores issued. */
    std::uint64_t dataRefs = 0;
    /** Cycle at which this processor finished its trace. */
    Cycles finishTime = 0.0;
    /** Cycles spent waiting for the bus. */
    Cycles busWaiting = 0.0;
    /** Cycles stolen by other processors' broadcasts. */
    Cycles stolen = 0.0;

    /** Useful (non-flush) instructions. */
    std::uint64_t
    usefulInstructions() const
    {
        return instructions - flushes;
    }

    /** Fraction of time spent on useful instruction execution. */
    double
    utilization() const
    {
        return finishTime > 0.0
            ? static_cast<double>(usefulInstructions()) / finishTime
            : 0.0;
    }
};

/** Whole-system simulation results. */
struct SimStats
{
    /** Paper scheme (Base for extension protocols). */
    Scheme scheme = Scheme::Base;
    /** Protocol name, authoritative for extension protocols. */
    std::string protocolName;
    CpuId cpus = 0;

    std::vector<CpuStats> perCpu;

    /** Occurrences of each system-model operation. */
    std::array<std::uint64_t, kNumOperations> opCounts{};

    /** Misses broken out by reference kind. */
    std::uint64_t instrMisses = 0;
    std::uint64_t dataMisses = 0;
    std::uint64_t dirtyMisses = 0;

    /** Bus aggregates. */
    Cycles busBusyCycles = 0.0;
    std::uint64_t busTransactions = 0;

    /** Largest per-processor finish time. */
    Cycles makespan = 0.0;

    /** Totals over processors. */
    std::uint64_t totalInstructions() const;
    std::uint64_t totalUsefulInstructions() const;
    std::uint64_t totalDataRefs() const;

    /** Sum of per-processor utilizations (the paper's n * U metric). */
    double processingPower() const;

    /** Mean per-processor utilization. */
    double avgUtilization() const;

    /** Fraction of the makespan the bus was held. */
    double busUtilization() const;

    /** Data misses per data reference (msdat). */
    double dataMissRate() const;

    /** Instruction misses per instruction (mains). */
    double instrMissRate() const;

    /** Fraction of misses that replaced a dirty block (md). */
    double dirtyMissFraction() const;

    /** Occurrences of @p op. */
    std::uint64_t
    opCount(Operation op) const
    {
        return opCounts[operationIndex(op)];
    }

    /**
     * Canonical, lossless text form of every counter and clock (cycle
     * values rendered as hexfloats). Two runs produced the same
     * statistics if and only if their serializations compare equal,
     * which is how the golden-stats tests and the simulator perf
     * harness assert bit-identical behaviour across snoop paths and
     * thread counts.
     */
    std::string serialize() const;
};

} // namespace swcc

#endif // SWCC_SIM_MP_SIM_STATS_HH
