/**
 * @file
 * Trace-driven processor model.
 */

#ifndef SWCC_SIM_MP_PROCESSOR_HH
#define SWCC_SIM_MP_PROCESSOR_HH

#include <cstddef>
#include <vector>

#include "sim/mp/sim_stats.hh"
#include "sim/trace/trace_event.hh"

namespace swcc
{

/**
 * One processor replaying its program-order slice of the trace.
 *
 * The processor is a timing shell: it advances its local clock by the
 * CPU cost of each reference (the system supplies bus grants) and
 * accumulates its statistics. Each IFetch costs one execution cycle —
 * except the fetch of a flush instruction, whose execution cost is the
 * flush operation itself (paper Table 1 prices "instruction execution
 * (except flush)").
 */
class TraceProcessor
{
  public:
    explicit TraceProcessor(CpuId id) : id_(id) {}

    /** Assigns this processor's program-order event stream. */
    void
    setEvents(std::vector<TraceEvent> events)
    {
        events_ = std::move(events);
        next_ = 0;
    }

    CpuId id() const { return id_; }

    bool done() const { return next_ >= events_.size(); }

    /** Next event to execute. @pre !done() */
    const TraceEvent &current() const { return events_[next_]; }

    /**
     * True if the next event after the current one is a flush by this
     * processor — i.e. the current IFetch fetches a flush instruction.
     */
    bool
    currentFetchesFlush() const
    {
        return next_ + 1 < events_.size() &&
            events_[next_ + 1].type == RefType::Flush;
    }

    /** Consumes the current event. */
    void advance() { ++next_; }

    /** Local clock: cycle at which this processor can issue next. */
    Cycles readyAt = 0.0;

    /** Accumulated statistics. */
    CpuStats stats;

    /**
     * Loses one cycle to a snooped write-broadcast (Dragon cycle
     * stealing).
     */
    void
    stealCycle()
    {
        readyAt += 1.0;
        stats.stolen += 1.0;
    }

  private:
    CpuId id_;
    std::vector<TraceEvent> events_;
    std::size_t next_ = 0;
};

} // namespace swcc

#endif // SWCC_SIM_MP_PROCESSOR_HH
