#include "sim/mp/validation.hh"

#include "core/campaign/cell_hash.hh"
#include "core/obs/progress.hh"
#include "core/parallel.hh"
#include "core/scheme_evaluator.hh"
#include "sim/mp/param_extractor.hh"
#include "sim/mp/system.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{

double
ValidationPoint::errorPercent() const
{
    return simPower > 0.0
        ? 100.0 * (modelPower - simPower) / simPower
        : 0.0;
}

ValidationPoint
validatePoint(const ValidationConfig &config, CpuId cpus)
{
    const bool software_trace = config.scheme == Scheme::SoftwareFlush;

    SyntheticWorkloadConfig workload = profileConfig(
        config.profile, cpus, config.instructionsPerCpu,
        config.seed + cpus, software_trace);
    // Lane-resident arena: batched campaign cells run many validation
    // points per pool lane, and the multi-megabyte trace buffer is the
    // dominant allocation. clear() resets length and cpu count but
    // keeps capacity, so every cell after the first on a lane
    // generates into already-warm memory. Contents are identical to a
    // fresh generateTrace() call.
    thread_local TraceBuffer trace;
    generateTrace(workload, trace);
    const SharedClassifier shared = workload.sharedClassifier();

    CacheConfig cache;
    cache.sizeBytes = config.cacheBytes;
    cache.blockBytes = workload.blockBytes;

    ValidationPoint point;
    point.profile = config.profile;
    point.scheme = config.scheme;
    point.cpus = cpus;
    point.cacheBytes = config.cacheBytes;

    MultiprocessorSystem system(config.scheme, cache, cpus, shared);
    point.sim = system.run(trace);
    point.simPower = point.sim.processingPower();

    const ExtractedParams extracted = extractParams(trace, cache, shared);
    point.model = evaluateBus(config.scheme, extracted.params, cpus);
    point.modelPower = point.model.processingPower;

    return point;
}

std::vector<ValidationPoint>
validate(const ValidationConfig &config)
{
    return validate(config, campaign::CampaignOptions{});
}

std::vector<ValidationPoint>
validate(const ValidationConfig &config,
         const campaign::CampaignOptions &options,
         campaign::CampaignReport *report)
{
    // One simulator instance per processor count, run concurrently.
    // Each cell seeds its own trace generator from the cell index
    // (seed + cpus), so the numbers are independent of evaluation
    // order and bit-identical to the serial loop.
    const std::size_t n = config.maxCpus;
    obs::ProgressReporter progress("validate", n);

    // Freshly evaluated cells keep their full model/sim detail; cells
    // satisfied from the journal fall back to the powers alone.
    // Index-addressed slots, so concurrent cells never contend.
    std::vector<ValidationPoint> details(n);
    std::vector<char> have_detail(n, 0);

    const auto results = campaign::runCells(
        n, 2,
        [&](std::size_t i) {
            return campaign::CellKey("validate")
                .add(profileName(config.profile))
                .add(schemeName(config.scheme))
                .add(static_cast<std::uint64_t>(config.cacheBytes))
                .add(static_cast<std::uint64_t>(
                    config.instructionsPerCpu))
                .add(config.seed)
                .add(static_cast<std::uint64_t>(i + 1))
                .hash();
        },
        [&](std::size_t i) {
            const ValidationPoint point =
                validatePoint(config, static_cast<CpuId>(i + 1));
            details[i] = point;
            have_detail[i] = 1;
            progress.tick();
            return std::vector<double>{point.simPower,
                                       point.modelPower};
        },
        options, report);

    std::vector<ValidationPoint> points(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (have_detail[i]) {
            points[i] = details[i];
        } else {
            points[i].profile = config.profile;
            points[i].scheme = config.scheme;
            points[i].cpus = static_cast<CpuId>(i + 1);
            points[i].cacheBytes = config.cacheBytes;
        }
        // Journal values are bit-exact round-trips, so taking them for
        // fresh cells too keeps resumed and uninterrupted runs
        // byte-identical downstream.
        points[i].simPower = results[i][0];
        points[i].modelPower = results[i][1];
    }
    return points;
}

} // namespace swcc
