#include "sim/mp/validation.hh"

#include "core/scheme_evaluator.hh"
#include "sim/mp/param_extractor.hh"
#include "sim/mp/system.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{

double
ValidationPoint::errorPercent() const
{
    return simPower > 0.0
        ? 100.0 * (modelPower - simPower) / simPower
        : 0.0;
}

std::vector<ValidationPoint>
validate(const ValidationConfig &config)
{
    std::vector<ValidationPoint> points;
    points.reserve(config.maxCpus);

    const bool software_trace = config.scheme == Scheme::SoftwareFlush;

    for (CpuId cpus = 1; cpus <= config.maxCpus; ++cpus) {
        SyntheticWorkloadConfig workload = profileConfig(
            config.profile, cpus, config.instructionsPerCpu,
            config.seed + cpus, software_trace);
        const TraceBuffer trace = generateTrace(workload);
        const SharedClassifier shared = workload.sharedClassifier();

        CacheConfig cache;
        cache.sizeBytes = config.cacheBytes;
        cache.blockBytes = workload.blockBytes;

        ValidationPoint point;
        point.profile = config.profile;
        point.scheme = config.scheme;
        point.cpus = cpus;
        point.cacheBytes = config.cacheBytes;

        MultiprocessorSystem system(config.scheme, cache, cpus, shared);
        point.sim = system.run(trace);
        point.simPower = point.sim.processingPower();

        const ExtractedParams extracted =
            extractParams(trace, cache, shared);
        point.model =
            evaluateBus(config.scheme, extracted.params, cpus);
        point.modelPower = point.model.processingPower;

        points.push_back(std::move(point));
    }
    return points;
}

} // namespace swcc
