#include "sim/mp/validation.hh"

#include "core/obs/progress.hh"
#include "core/parallel.hh"
#include "core/scheme_evaluator.hh"
#include "sim/mp/param_extractor.hh"
#include "sim/mp/system.hh"
#include "sim/synth/trace_generator.hh"

namespace swcc
{

double
ValidationPoint::errorPercent() const
{
    return simPower > 0.0
        ? 100.0 * (modelPower - simPower) / simPower
        : 0.0;
}

ValidationPoint
validatePoint(const ValidationConfig &config, CpuId cpus)
{
    const bool software_trace = config.scheme == Scheme::SoftwareFlush;

    SyntheticWorkloadConfig workload = profileConfig(
        config.profile, cpus, config.instructionsPerCpu,
        config.seed + cpus, software_trace);
    const TraceBuffer trace = generateTrace(workload);
    const SharedClassifier shared = workload.sharedClassifier();

    CacheConfig cache;
    cache.sizeBytes = config.cacheBytes;
    cache.blockBytes = workload.blockBytes;

    ValidationPoint point;
    point.profile = config.profile;
    point.scheme = config.scheme;
    point.cpus = cpus;
    point.cacheBytes = config.cacheBytes;

    MultiprocessorSystem system(config.scheme, cache, cpus, shared);
    point.sim = system.run(trace);
    point.simPower = point.sim.processingPower();

    const ExtractedParams extracted = extractParams(trace, cache, shared);
    point.model = evaluateBus(config.scheme, extracted.params, cpus);
    point.modelPower = point.model.processingPower;

    return point;
}

std::vector<ValidationPoint>
validate(const ValidationConfig &config)
{
    // One simulator instance per processor count, run concurrently.
    // Each cell seeds its own trace generator from the cell index
    // (seed + cpus), so the numbers are independent of evaluation
    // order and bit-identical to the serial loop.
    obs::ProgressReporter progress("validate", config.maxCpus);
    return parallelMap(config.maxCpus, [&](std::size_t i) {
        ValidationPoint point =
            validatePoint(config, static_cast<CpuId>(i + 1));
        progress.tick();
        return point;
    });
}

} // namespace swcc
