/**
 * @file
 * Synthetic multiprocessor trace generator.
 */

#ifndef SWCC_SIM_SYNTH_TRACE_GENERATOR_HH
#define SWCC_SIM_SYNTH_TRACE_GENERATOR_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/synth/rng.hh"
#include "sim/synth/workload_config.hh"
#include "sim/trace/trace_buffer.hh"

namespace swcc
{

/**
 * Generates interleaved multiprocessor traces from a synthetic
 * application model.
 *
 * Locality: both instruction and private-data streams follow an LRU
 * stack-distance model with a Pareto(alpha) distance distribution —
 * the reference at distance d reuses the d-th most recently used
 * block, so an L-line cache misses at roughly L^-alpha. Instruction
 * fetch additionally walks each code block sequentially (4
 * instructions per 16-byte block). New blocks are allocated in a
 * shuffled order within their segment so that hot blocks spread across
 * cache sets.
 *
 * Sharing: each processor alternates non-critical phases (private data
 * only) with critical sections over a small region of shared blocks,
 * optionally guarded by a lock block and optionally flushed on exit
 * (Software-Flush style traces). The non-critical phase length is
 * derived from the configured shd so the shared fraction of data
 * references matches it in expectation.
 *
 * The interleave picks the next processor uniformly at random,
 * modelling symmetric progress; per-processor program order is
 * preserved.
 */
class TraceGenerator
{
  public:
    /**
     * @param config Validated on construction.
     * @throws std::invalid_argument via config.validate().
     */
    explicit TraceGenerator(const SyntheticWorkloadConfig &config);

    /**
     * Generates the full trace: every processor retires
     * `instructionsPerCpu` non-flush instructions.
     */
    TraceBuffer generate();

    /**
     * Generates into @p trace, reusing its allocated capacity. The
     * buffer is cleared first; the result is identical to generate().
     * Lets batched campaign cells keep one arena per pool lane instead
     * of allocating a fresh multi-megabyte buffer per cell.
     */
    void generateInto(TraceBuffer &trace);

  private:
    /** What a processor is currently doing. */
    enum class Phase : std::uint8_t
    {
        NonCritical,
        Critical,
    };

    /**
     * An LRU stack over a segment's blocks with shuffled allocation.
     */
    struct SegmentStack
    {
        /** Move-to-front list of allocated block indices (front=MRU). */
        std::vector<std::uint32_t> stack;
        /** Shuffled allocation order of all block indices. */
        std::vector<std::uint32_t> order;
        /** Next unallocated position in @c order. */
        std::size_t allocated = 0;
    };

    /** Generator state of one processor. */
    struct CpuState
    {
        CpuId id = 0;
        /** Process currently running here (selects the segments). */
        CpuId processId = 0;
        Phase phase = Phase::NonCritical;
        /** Instructions left in the current non-critical phase. */
        std::size_t phaseInstrsLeft = 0;
        /** Shared references left in the current critical section. */
        unsigned csRefsLeft = 0;
        /** First block of the current critical-section region. */
        Addr regionBase = 0;
        /** Lock block guarding the current section (0 = none). */
        Addr lockBlock = 0;
        /** Whether the current section only reads shared data. */
        bool csReadOnly = false;
        /** Blocks touched in the current section (flushed on exit). */
        std::unordered_set<Addr> touched;
        /** Non-flush instructions retired so far. */
        std::size_t retired = 0;
        /** Pending events not yet drained into the trace. */
        std::vector<TraceEvent> pending;
        std::size_t pendingNext = 0;

        SegmentStack code;
        SegmentStack data;
        /** Current code block and next word within it. */
        Addr curCodeBlock = 0;
        unsigned codeWord = 0;
    };

    /** Refills a processor's pending queue with one instruction. */
    void refill(CpuState &cpu);

    /**
     * Emits one instruction fetch and advances the code-stack walk.
     * @param counts_as_work False for flush-instruction fetches.
     */
    void emitInstruction(CpuState &cpu, bool counts_as_work = true);

    /** Emits a private data reference via the data stack model. */
    void emitPrivateRef(CpuState &cpu);

    /** Emits a shared data reference within the active region. */
    void emitSharedRef(CpuState &cpu);

    /** Starts a non-critical phase with a freshly drawn length. */
    void startNonCritical(CpuState &cpu);

    /** Starts a critical section: region choice, lock acquire. */
    void startCritical(CpuState &cpu);

    /** Ends a critical section: lock release, optional flushes. */
    void endCritical(CpuState &cpu);

    /** Mean non-critical instructions implied by ls and shd. */
    double nonCriticalMeanInstructions() const;

    /**
     * Picks the next block index from a segment stack: Pareto reuse
     * when the distance lands in the stack, shuffled allocation while
     * unallocated blocks remain, coldest-block reuse afterwards.
     */
    std::uint32_t nextBlock(SegmentStack &seg, double alpha);

    /** Initialises a segment stack over @p num_blocks blocks. */
    void initSegment(SegmentStack &seg, std::size_t num_blocks);

    /** Swaps two processors' processes (migration event). */
    void migrate();

    SyntheticWorkloadConfig config_;
    Rng rng_;
    std::vector<CpuState> cpus_;
    /** Total retired instructions across processors. */
    std::size_t totalRetired_ = 0;
    /** Retirement count at which the next migration fires. */
    std::size_t nextMigrationAt_ = 0;
};

/**
 * Convenience: construct, generate, and return the trace.
 */
TraceBuffer generateTrace(const SyntheticWorkloadConfig &config);

/**
 * Convenience: construct and generate into @p out, reusing its
 * capacity (see TraceGenerator::generateInto()).
 */
void generateTrace(const SyntheticWorkloadConfig &config,
                   TraceBuffer &out);

} // namespace swcc

#endif // SWCC_SIM_SYNTH_TRACE_GENERATOR_HH
