#include "sim/synth/app_profiles.hh"

#include <stdexcept>

namespace swcc
{

std::string_view
profileName(AppProfile profile)
{
    switch (profile) {
      case AppProfile::PopsLike: return "pops-like";
      case AppProfile::ThorLike: return "thor-like";
      case AppProfile::PeroLike: return "pero-like";
    }
    return "unknown";
}

SyntheticWorkloadConfig
profileConfig(AppProfile profile, unsigned cpus,
              std::size_t instructions_per_cpu, std::uint64_t seed,
              bool emit_flushes)
{
    SyntheticWorkloadConfig config;
    config.numCpus = cpus;
    config.instructionsPerCpu = instructions_per_cpu;
    config.seed = seed;
    config.emitFlushes = emit_flushes;
    config.name = std::string(profileName(profile));

    switch (profile) {
      case AppProfile::PopsLike:
        // Rule system over a shared working memory: medium sharing,
        // fine-grain sections, read-mostly shared data.
        config.ls = 0.32;
        config.shd = 0.20;
        config.wrShared = 0.45;
        config.readOnlyCsFraction = 0.50;
        config.codeBytes = 64 * 1024;
        config.privateBytes = 192 * 1024;
        config.privateParetoAlpha = 0.52;
        config.codeParetoAlpha = 0.66;
        config.sharedBytes = 48 * 1024;
        config.regionBlocks = 4;
        config.csDataRefs = 24;
        config.regionZipf = 0.6;
        config.lockFraction = 0.35;
        break;
      case AppProfile::ThorLike:
        // Partitioned logic simulator: little sharing, long private
        // phases, larger private working set.
        config.ls = 0.27;
        config.shd = 0.09;
        config.wrShared = 0.40;
        config.readOnlyCsFraction = 0.55;
        config.codeBytes = 96 * 1024;
        config.privateBytes = 384 * 1024;
        config.privateParetoAlpha = 0.46;
        config.codeParetoAlpha = 0.62;
        config.sharedBytes = 32 * 1024;
        config.regionBlocks = 3;
        config.csDataRefs = 40;
        config.regionZipf = 0.3;
        config.lockFraction = 0.2;
        break;
      case AppProfile::PeroLike:
        // Shared work-list tool: heavier sharing, contended queues,
        // write-richer shared accesses.
        config.ls = 0.35;
        config.shd = 0.30;
        config.wrShared = 0.60;
        config.readOnlyCsFraction = 0.45;
        config.codeBytes = 48 * 1024;
        config.privateBytes = 128 * 1024;
        config.privateParetoAlpha = 0.56;
        config.codeParetoAlpha = 0.70;
        config.sharedBytes = 64 * 1024;
        config.regionBlocks = 6;
        config.csDataRefs = 30;
        config.regionZipf = 0.8;
        config.lockFraction = 0.45;
        break;
      default:
        throw std::invalid_argument("unknown AppProfile");
    }
    return config;
}

} // namespace swcc
