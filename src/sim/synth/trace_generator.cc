#include "sim/synth/trace_generator.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace swcc
{

TraceGenerator::TraceGenerator(const SyntheticWorkloadConfig &config)
    : config_(config), rng_(config.seed)
{
    config_.validate();
    nextMigrationAt_ = config_.migrationIntervalInstrs;
    cpus_.resize(config_.numCpus);
    for (unsigned i = 0; i < config_.numCpus; ++i) {
        CpuState &cpu = cpus_[i];
        cpu.id = static_cast<CpuId>(i);
        cpu.processId = cpu.id;
        initSegment(cpu.code, config_.codeBytes / config_.blockBytes);
        initSegment(cpu.data, config_.privateBytes / config_.blockBytes);
        cpu.curCodeBlock = config_.codeBase(cpu.processId) +
            static_cast<Addr>(nextBlock(cpu.code,
                                        config_.codeParetoAlpha)) *
            config_.blockBytes;
        startNonCritical(cpu);
        // Desynchronise the phases across processors.
        if (cpu.phaseInstrsLeft != std::numeric_limits<std::size_t>::max()) {
            cpu.phaseInstrsLeft = rng_.below(cpu.phaseInstrsLeft + 1);
        }
    }
}

void
TraceGenerator::initSegment(SegmentStack &seg, std::size_t num_blocks)
{
    seg.order.resize(num_blocks);
    for (std::size_t i = 0; i < num_blocks; ++i) {
        seg.order[i] = static_cast<std::uint32_t>(i);
    }
    // Fisher-Yates shuffle: hot blocks land on scattered cache sets.
    for (std::size_t i = num_blocks; i > 1; --i) {
        const std::size_t j = rng_.below(i);
        std::swap(seg.order[i - 1], seg.order[j]);
    }
    seg.allocated = 0;
    seg.stack.clear();
    seg.stack.reserve(num_blocks);
}

std::uint32_t
TraceGenerator::nextBlock(SegmentStack &seg, double alpha)
{
    // Pareto stack distance: P(d > x) = x^-alpha, support {1, 2, ...}.
    const double u = rng_.uniform();
    const double draw = std::pow(1.0 - u, -1.0 / alpha);
    const auto distance = draw >= 1e18
        ? std::numeric_limits<std::uint64_t>::max()
        : static_cast<std::uint64_t>(draw);

    if (distance <= seg.stack.size()) {
        // Reuse the block at that LRU depth; move it to the front.
        const std::size_t pos = static_cast<std::size_t>(distance) - 1;
        const std::uint32_t block = seg.stack[pos];
        seg.stack.erase(seg.stack.begin() +
                        static_cast<std::ptrdiff_t>(pos));
        seg.stack.insert(seg.stack.begin(), block);
        return block;
    }
    if (seg.allocated < seg.order.size()) {
        // First touch of a new block (compulsory miss downstream).
        const std::uint32_t block = seg.order[seg.allocated++];
        seg.stack.insert(seg.stack.begin(), block);
        return block;
    }
    // Segment exhausted: treat as a reference beyond every cached
    // block — reuse the coldest one.
    const std::uint32_t block = seg.stack.back();
    seg.stack.pop_back();
    seg.stack.insert(seg.stack.begin(), block);
    return block;
}

double
TraceGenerator::nonCriticalMeanInstructions() const
{
    if (config_.shd <= 0.0) {
        return 0.0; // Unused: critical sections never start.
    }
    const double shared_per_cycle = config_.csDataRefs;
    const double private_per_cycle =
        shared_per_cycle * (1.0 - config_.shd) / config_.shd;
    if (config_.ls <= 0.0) {
        return private_per_cycle; // Degenerate; avoids divide by zero.
    }
    return private_per_cycle / config_.ls;
}

void
TraceGenerator::startNonCritical(CpuState &cpu)
{
    cpu.phase = Phase::NonCritical;
    const double mean = nonCriticalMeanInstructions();
    if (config_.shd <= 0.0) {
        cpu.phaseInstrsLeft = std::numeric_limits<std::size_t>::max();
        return;
    }
    if (mean <= 0.0) {
        cpu.phaseInstrsLeft = 0;
        return;
    }
    // Geometric with the requested mean keeps phases memoryless and
    // desynchronised across processors.
    cpu.phaseInstrsLeft = rng_.geometric(std::min(1.0, 1.0 / mean));
}

void
TraceGenerator::startCritical(CpuState &cpu)
{
    cpu.phase = Phase::Critical;
    cpu.csRefsLeft = config_.csDataRefs;
    cpu.touched.clear();

    const std::size_t shared_blocks =
        config_.sharedBytes / config_.blockBytes;
    const std::size_t region_area = shared_blocks - config_.numLocks;
    const std::size_t num_regions =
        std::max<std::size_t>(1, region_area / config_.regionBlocks);
    const std::uint64_t region =
        rng_.zipf(num_regions, config_.regionZipf);
    cpu.regionBase = SyntheticWorkloadConfig::kSharedBase +
        (static_cast<Addr>(config_.numLocks) +
         region * config_.regionBlocks) * config_.blockBytes;

    cpu.csReadOnly = rng_.chance(config_.readOnlyCsFraction);

    cpu.lockBlock = 0;
    if (!cpu.csReadOnly && config_.numLocks > 0 &&
        rng_.chance(config_.lockFraction)) {
        cpu.lockBlock = SyntheticWorkloadConfig::kSharedBase +
            rng_.below(config_.numLocks) * config_.blockBytes;
        // Acquire: a read-modify-write of the lock word.
        emitInstruction(cpu);
        cpu.pending.push_back({cpu.lockBlock, cpu.id, RefType::Load});
        emitInstruction(cpu);
        cpu.pending.push_back({cpu.lockBlock, cpu.id, RefType::Store});
        cpu.touched.insert(cpu.lockBlock);
    }
}

void
TraceGenerator::endCritical(CpuState &cpu)
{
    if (cpu.lockBlock != 0) {
        // Release: a store of the lock word.
        emitInstruction(cpu);
        cpu.pending.push_back({cpu.lockBlock, cpu.id, RefType::Store});
    }
    if (config_.emitFlushes) {
        // One flush instruction per touched shared block; flush
        // instructions are fetched but are pure coherence overhead, so
        // they do not count as retired work.
        for (Addr block : cpu.touched) {
            emitInstruction(cpu, /*counts_as_work=*/false);
            cpu.pending.push_back({block, cpu.id, RefType::Flush});
        }
    }
    cpu.touched.clear();
    cpu.lockBlock = 0;
    startNonCritical(cpu);
}

void
TraceGenerator::emitInstruction(CpuState &cpu, bool counts_as_work)
{
    cpu.pending.push_back(
        {cpu.curCodeBlock + 4 * cpu.codeWord, cpu.id, RefType::IFetch});
    if (counts_as_work) {
        ++cpu.retired;
        ++totalRetired_;
    }

    const unsigned words =
        static_cast<unsigned>(config_.blockBytes / 4);
    if (++cpu.codeWord >= words) {
        cpu.codeWord = 0;
        cpu.curCodeBlock = config_.codeBase(cpu.processId) +
            static_cast<Addr>(nextBlock(cpu.code,
                                        config_.codeParetoAlpha)) *
            config_.blockBytes;
    }
}

void
TraceGenerator::emitPrivateRef(CpuState &cpu)
{
    const std::uint32_t block =
        nextBlock(cpu.data, config_.privateParetoAlpha);
    const Addr addr = config_.privateBase(cpu.processId) +
        static_cast<Addr>(block) * config_.blockBytes +
        4 * rng_.below(config_.blockBytes / 4);
    const RefType type = rng_.chance(config_.wrPrivate)
        ? RefType::Store : RefType::Load;
    cpu.pending.push_back({addr, cpu.id, type});
}

void
TraceGenerator::emitSharedRef(CpuState &cpu)
{
    const Addr block = cpu.regionBase +
        rng_.below(config_.regionBlocks) * config_.blockBytes;
    const Addr addr = block + 4 * rng_.below(config_.blockBytes / 4);
    const RefType type = !cpu.csReadOnly && rng_.chance(config_.wrShared)
        ? RefType::Store : RefType::Load;
    cpu.pending.push_back({addr, cpu.id, type});
    cpu.touched.insert(block);
}

void
TraceGenerator::refill(CpuState &cpu)
{
    cpu.pending.clear();
    cpu.pendingNext = 0;

    switch (cpu.phase) {
      case Phase::NonCritical:
        if (cpu.phaseInstrsLeft == 0) {
            startCritical(cpu);
            if (!cpu.pending.empty()) {
                return; // Lock acquire already queued instructions.
            }
            refill(cpu);
            return;
        }
        --cpu.phaseInstrsLeft;
        emitInstruction(cpu);
        if (rng_.chance(config_.ls)) {
            emitPrivateRef(cpu);
        }
        return;
      case Phase::Critical:
        emitInstruction(cpu);
        if (rng_.chance(config_.ls)) {
            emitSharedRef(cpu);
            if (cpu.csRefsLeft > 0) {
                --cpu.csRefsLeft;
            }
            if (cpu.csRefsLeft == 0) {
                endCritical(cpu);
            }
        }
        return;
    }
}

void
TraceGenerator::migrate()
{
    if (cpus_.size() < 2) {
        return;
    }
    const std::size_t a = rng_.below(cpus_.size());
    std::size_t b = rng_.below(cpus_.size() - 1);
    if (b >= a) {
        ++b;
    }
    CpuState &first = cpus_[a];
    CpuState &second = cpus_[b];

    std::swap(first.processId, second.processId);
    // Migrated processes arrive with cold locality: restart the stack
    // walks (the shuffled allocation orders stay with the processor,
    // which is fine — any order over the segment is valid).
    for (CpuState *cpu : {&first, &second}) {
        cpu->code.stack.clear();
        cpu->code.allocated = 0;
        cpu->data.stack.clear();
        cpu->data.allocated = 0;
        cpu->codeWord = 0;
        cpu->curCodeBlock = config_.codeBase(cpu->processId) +
            static_cast<Addr>(nextBlock(cpu->code,
                                        config_.codeParetoAlpha)) *
            config_.blockBytes;
    }
}

TraceBuffer
TraceGenerator::generate()
{
    TraceBuffer trace;
    generateInto(trace);
    return trace;
}

void
TraceGenerator::generateInto(TraceBuffer &trace)
{
    trace.clear();
    trace.reserve(static_cast<std::size_t>(
        static_cast<double>(config_.instructionsPerCpu) *
        config_.numCpus * (1.0 + config_.ls) * 1.1));

    std::vector<std::size_t> live;
    live.reserve(cpus_.size());
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
        live.push_back(i);
    }

    while (!live.empty()) {
        const std::size_t pick = rng_.below(live.size());
        CpuState &cpu = cpus_[live[pick]];

        if (cpu.pendingNext >= cpu.pending.size()) {
            if (cpu.retired >= config_.instructionsPerCpu) {
                // Retired its quota and drained: retire the processor.
                live[pick] = live.back();
                live.pop_back();
                continue;
            }
            if (config_.migrationIntervalInstrs > 0 &&
                totalRetired_ >= nextMigrationAt_) {
                migrate();
                nextMigrationAt_ =
                    totalRetired_ + config_.migrationIntervalInstrs;
            }
            refill(cpu);
        }
        trace.append(cpu.pending[cpu.pendingNext++]);
    }
}

TraceBuffer
generateTrace(const SyntheticWorkloadConfig &config)
{
    TraceGenerator generator(config);
    return generator.generate();
}

void
generateTrace(const SyntheticWorkloadConfig &config, TraceBuffer &out)
{
    TraceGenerator generator(config);
    generator.generateInto(out);
}

} // namespace swcc
