/**
 * @file
 * Deterministic pseudo-random number generator for the synthetic
 * workload generator and the network simulator.
 *
 * xoshiro256** seeded through SplitMix64: fast, high quality, and
 * byte-for-byte reproducible across platforms (unlike the standard
 * library distributions, whose outputs are implementation-defined).
 */

#ifndef SWCC_SIM_SYNTH_RNG_HH
#define SWCC_SIM_SYNTH_RNG_HH

#include <array>
#include <cstdint>

namespace swcc
{

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 */
class Rng
{
  public:
    /** Seeds the state deterministically from @p seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /**
     * Derived independent stream for cell @p index; the parent's state
     * is not advanced. Sibling streams (`split(0)`, `split(1)`, ...)
     * are decorrelated regardless of index spacing, which is what lets
     * parallel experiment grids seed one generator per cell and stay
     * bit-identical to a serial sweep (see core/parallel.hh).
     */
    Rng split(std::uint64_t index) const;

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) ; bound must be positive. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p);

    /**
     * Geometric number of trials until first success (support {1, 2,
     * ...}), success probability @p p in (0, 1]. Mean 1/p.
     */
    std::uint64_t geometric(double p);

    /**
     * Zipf-like rank in [0, n) with exponent @p s (s = 0 is uniform).
     * Used for skewed block popularity; implemented by inverse-CDF
     * over precomputed weights is avoided — this uses the rejection
     *-free approximation via the power of a uniform, adequate for
     * workload shaping.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace swcc

#endif // SWCC_SIM_SYNTH_RNG_HH
