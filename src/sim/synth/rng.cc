#include "sim/synth/rng.hh"

#include <cmath>
#include <stdexcept>

namespace swcc
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (std::uint64_t &word : state_) {
        word = splitMix64(sm);
    }
}

Rng
Rng::split(std::uint64_t index) const
{
    // Fold the full parent state and the cell index through SplitMix64
    // (via the seeding constructor). Adjacent indices land in unrelated
    // regions of the seed space, and the parent keeps its own stream.
    std::uint64_t mix = state_[0];
    mix ^= rotl(state_[1], 13) ^ rotl(state_[2], 29) ^ rotl(state_[3], 43);
    mix += 0x9e3779b97f4a7c15ull * (index + 1);
    return Rng(mix);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0) {
        throw std::invalid_argument("Rng::below needs a positive bound");
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t value = next();
        if (value >= threshold) {
            return value % bound;
        }
    }
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    if (hi < lo) {
        throw std::invalid_argument("Rng::between needs lo <= hi");
    }
    return lo + below(hi - lo + 1);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (!(p > 0.0 && p <= 1.0)) {
        throw std::invalid_argument(
            "geometric success probability must be in (0, 1]");
    }
    if (p == 1.0) {
        return 1;
    }
    const double u = uniform();
    const double trials =
        std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    return trials < 1.0 ? 1 : static_cast<std::uint64_t>(trials);
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    if (n == 0) {
        throw std::invalid_argument("Rng::zipf needs a positive range");
    }
    if (s <= 0.0) {
        return below(n);
    }
    // Map a uniform through x -> x^(1+s): low ranks become popular.
    const double u = uniform();
    const double skewed = std::pow(u, 1.0 + s);
    auto rank = static_cast<std::uint64_t>(
        skewed * static_cast<double>(n));
    return rank >= n ? n - 1 : rank;
}

} // namespace swcc
