/**
 * @file
 * Configuration of the synthetic multiprocessor workload generator.
 *
 * The generator stands in for the paper's ATUM-2 traces (POPS, THOR,
 * PERO): it produces interleaved per-processor reference streams with
 * controllable data-reference density, sharing level, write fraction,
 * critical-section structure (which induces the apl run lengths the
 * Software-Flush scheme depends on), and enough locality for cache size
 * to matter.
 */

#ifndef SWCC_SIM_SYNTH_WORKLOAD_CONFIG_HH
#define SWCC_SIM_SYNTH_WORKLOAD_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/trace/trace_stats.hh"

namespace swcc
{

/**
 * Parameters of a synthetic parallel application.
 *
 * Address space layout: each processor has a code segment and a private
 * data segment at fixed, widely separated bases; a single shared
 * segment is common to all processors. The shared segment's address
 * range doubles as the software schemes' "marked shared" region.
 */
struct SyntheticWorkloadConfig
{
    /** Address of the first code segment. */
    static constexpr Addr kCodeBase = 0x0100'0000;
    /** Separation between consecutive processors' code segments. */
    static constexpr Addr kCodeStride = 0x0010'0000;
    /** Address of the first private data segment. */
    static constexpr Addr kPrivateBase = 0x4000'0000;
    /** Separation between consecutive private data segments. */
    static constexpr Addr kPrivateStride = 0x0100'0000;
    /** Base of the shared data segment. */
    static constexpr Addr kSharedBase = 0x8000'0000;

    /** Label for reports ("pops-like", ...). */
    std::string name = "synthetic";

    unsigned numCpus = 4;
    /** Non-flush instructions generated per processor. */
    std::size_t instructionsPerCpu = 200'000;
    std::uint64_t seed = 1;

    /** Probability an instruction carries a data reference (ls). */
    double ls = 0.3;
    /** Target fraction of data references to the shared segment (shd). */
    double shd = 0.25;
    /** Store fraction among shared references (wr). */
    double wrShared = 0.25;
    /** Store fraction among private references. */
    double wrPrivate = 0.30;

    /**
     * Per-processor code segment size in bytes (the static code
     * footprint).
     */
    std::size_t codeBytes = 48 * 1024;
    /**
     * Pareto shape of the code-block LRU stack-distance distribution.
     * Instruction fetch walks a block (4 instructions), then jumps to
     * the block at stack distance d with P(d > x) = x^-alpha; larger
     * alpha means tighter loops and a lower instruction miss rate.
     */
    double codeParetoAlpha = 0.65;

    /** Per-processor private data segment size in bytes. */
    std::size_t privateBytes = 256 * 1024;
    /**
     * Pareto shape of the private-data stack-distance distribution;
     * the miss rate of an L-line cache is roughly L^-alpha.
     */
    double privateParetoAlpha = 0.52;

    /** Shared segment size in bytes. */
    std::size_t sharedBytes = 64 * 1024;
    /** Blocks touched per critical section. */
    unsigned regionBlocks = 4;
    /** Shared data references per critical section. */
    unsigned csDataRefs = 32;
    /** Zipf skew of critical-section region popularity. */
    double regionZipf = 0.5;
    /**
     * Fraction of critical sections that only read shared data (their
     * flushes are clean); controls the measured mdshd.
     */
    double readOnlyCsFraction = 0.5;
    /** Fraction of critical sections that also pound a lock block. */
    double lockFraction = 0.3;
    /** Number of lock blocks at the bottom of the shared segment. */
    unsigned numLocks = 4;

    /**
     * Emit flush instructions at critical-section exit (one per touched
     * shared block), producing a Software-Flush-style trace.
     */
    bool emitFlushes = false;

    /**
     * Process migration interval: one migration event per this many
     * retired instructions across the machine (0 = no migration, the
     * paper's trace regime). At each event two processors exchange
     * processes (code and private-data segments) and restart their
     * locality stacks cold, so "private" blocks become dynamically
     * multi-processor — the effect the paper's traces could not show.
     */
    std::size_t migrationIntervalInstrs = 0;

    /** Cache-block granularity used by the generator. */
    std::size_t blockBytes = 16;

    /** Code segment base for @p cpu. */
    Addr codeBase(CpuId cpu) const;
    /** Private segment base for @p cpu. */
    Addr privateBase(CpuId cpu) const;

    /**
     * Classifier marking the shared segment, the software schemes'
     * "compiler-identified shared data".
     */
    SharedClassifier sharedClassifier() const;

    /**
     * Checks structural validity (non-zero sizes, probabilities in
     * range, segments that cannot overlap).
     *
     * @throws std::invalid_argument naming the offending field.
     */
    void validate() const;
};

} // namespace swcc

#endif // SWCC_SIM_SYNTH_WORKLOAD_CONFIG_HH
