#include "sim/synth/workload_config.hh"

#include <stdexcept>
#include <string>

namespace swcc
{

namespace
{

void
checkProb(double value, const char *field)
{
    if (!(value >= 0.0 && value <= 1.0)) {
        throw std::invalid_argument(
            std::string(field) + " must lie in [0, 1]");
    }
}

void
checkPow2(std::size_t value, const char *field)
{
    if (value == 0 || (value & (value - 1)) != 0) {
        throw std::invalid_argument(
            std::string(field) + " must be a power of two");
    }
}

} // namespace

Addr
SyntheticWorkloadConfig::codeBase(CpuId cpu) const
{
    return kCodeBase + static_cast<Addr>(cpu) * kCodeStride;
}

Addr
SyntheticWorkloadConfig::privateBase(CpuId cpu) const
{
    return kPrivateBase + static_cast<Addr>(cpu) * kPrivateStride;
}

SharedClassifier
SyntheticWorkloadConfig::sharedClassifier() const
{
    const Addr base = kSharedBase;
    const Addr limit = kSharedBase + sharedBytes;
    return [base, limit](Addr block) {
        return block >= base && block < limit;
    };
}

void
SyntheticWorkloadConfig::validate() const
{
    if (numCpus == 0) {
        throw std::invalid_argument("numCpus must be positive");
    }
    if (instructionsPerCpu == 0) {
        throw std::invalid_argument("instructionsPerCpu must be positive");
    }
    checkProb(ls, "ls");
    checkProb(shd, "shd");
    checkProb(wrShared, "wrShared");
    checkProb(wrPrivate, "wrPrivate");
    checkProb(readOnlyCsFraction, "readOnlyCsFraction");
    checkProb(lockFraction, "lockFraction");
    checkPow2(blockBytes, "blockBytes");
    if (codeBytes < 64 || codeBytes > kCodeStride) {
        throw std::invalid_argument(
            "codeBytes must fit the code segment stride");
    }
    if (privateBytes < blockBytes || privateBytes > kPrivateStride) {
        throw std::invalid_argument(
            "privateBytes must fit the private segment stride");
    }
    if (sharedBytes < blockBytes) {
        throw std::invalid_argument(
            "sharedBytes must hold at least one block");
    }
    if (regionBlocks == 0) {
        throw std::invalid_argument("regionBlocks must be positive");
    }
    if (csDataRefs == 0) {
        throw std::invalid_argument("csDataRefs must be positive");
    }
    const std::size_t shared_blocks = sharedBytes / blockBytes;
    if (regionBlocks + numLocks > shared_blocks) {
        throw std::invalid_argument(
            "shared segment too small for regionBlocks + numLocks");
    }
    if (!(codeParetoAlpha > 0.0) || !(privateParetoAlpha > 0.0)) {
        throw std::invalid_argument(
            "Pareto stack-distance shapes must be positive");
    }
}

} // namespace swcc
