/**
 * @file
 * Preset application profiles standing in for the paper's traces.
 *
 * The paper validated its model with ATUM-2 traces of three parallel
 * applications on a four-CPU VAX 8350 (POPS, THOR, PERO) plus an
 * eight-CPU PERO trace. Those traces are not available; these profiles
 * are synthetic applications whose *measured* workload parameters land
 * in the same regions of the paper's Table 7 ranges:
 *
 *  - "pops-like": moderate sharing with fine-grain critical sections
 *    (parallel OPS5 rule system: shared working memory);
 *  - "thor-like": low sharing, long private phases (parallel logic
 *    simulator partitioned by circuit region);
 *  - "pero-like": higher sharing with contended queues (parallel
 *    microcode placement tool with a shared work list).
 */

#ifndef SWCC_SIM_SYNTH_APP_PROFILES_HH
#define SWCC_SIM_SYNTH_APP_PROFILES_HH

#include <string>
#include <vector>

#include "sim/synth/workload_config.hh"

namespace swcc
{

/** Identifier of a preset profile. */
enum class AppProfile : std::uint8_t
{
    PopsLike,
    ThorLike,
    PeroLike,
};

/** All profiles, for iteration. */
inline constexpr std::array<AppProfile, 3> kAllProfiles = {
    AppProfile::PopsLike, AppProfile::ThorLike, AppProfile::PeroLike,
};

/** Name of a profile ("pops-like", ...). */
std::string_view profileName(AppProfile profile);

/**
 * Builds the generator configuration for a profile.
 *
 * @param profile Which application to imitate.
 * @param cpus Number of processors.
 * @param instructions_per_cpu Trace length per processor.
 * @param seed RNG seed (different seeds give different but
 *        statistically identical traces).
 * @param emit_flushes Software-Flush style trace with flush events.
 */
SyntheticWorkloadConfig profileConfig(AppProfile profile, unsigned cpus,
                                      std::size_t instructions_per_cpu,
                                      std::uint64_t seed = 1,
                                      bool emit_flushes = false);

} // namespace swcc

#endif // SWCC_SIM_SYNTH_APP_PROFILES_HH
