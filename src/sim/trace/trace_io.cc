#include "sim/trace/trace_io.hh"

#include <array>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/campaign/atomic_file.hh"
#include "core/campaign/faults.hh"
#include "core/obs/log.hh"

namespace swcc
{

namespace
{

constexpr std::array<char, 8> kMagic = {
    'S', 'W', 'C', 'C', 'T', 'R', 'C', '1',
};

void
writeU64(std::ostream &os, std::uint64_t value)
{
    std::array<char, 8> bytes;
    for (int i = 0; i < 8; ++i) {
        bytes[static_cast<std::size_t>(i)] =
            static_cast<char>((value >> (8 * i)) & 0xffu);
    }
    os.write(bytes.data(), bytes.size());
}

std::uint64_t
readU64(std::istream &is)
{
    std::array<char, 8> bytes{};
    is.read(bytes.data(), bytes.size());
    if (!is) {
        const std::string what = "truncated trace: expected 8 bytes";
        SWCC_LOG_WARN(what);
        throw std::runtime_error(what);
    }
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
        value = (value << 8) |
            static_cast<std::uint8_t>(bytes[static_cast<std::size_t>(i)]);
    }
    return value;
}

RefType
refTypeFromChar(char c, std::size_t line_no)
{
    switch (c) {
      case 'i': return RefType::IFetch;
      case 'l': return RefType::Load;
      case 's': return RefType::Store;
      case 'f': return RefType::Flush;
      default: {
        const std::string what = "bad reference type '" +
            std::string(1, c) + "' on line " + std::to_string(line_no);
        SWCC_LOG_WARN(what);
        throw std::runtime_error(what);
      }
    }
}

/**
 * Parses a full hex address token, rejecting signs, trailing garbage,
 * and overflow — std::stoull would silently accept "1f2zz" (as 0x1f2)
 * and wrap "-1" to 2^64-1. An optional 0x/0X prefix is tolerated.
 */
Addr
parseHexAddr(const std::string &token, std::size_t line_no)
{
    const char *first = token.data();
    const char *last = token.data() + token.size();
    if (last - first > 2 && first[0] == '0' &&
        (first[1] == 'x' || first[1] == 'X')) {
        first += 2;
    }
    Addr value = 0;
    const auto [ptr, ec] = std::from_chars(first, last, value, 16);
    if (ec != std::errc{} || ptr != last || first == last) {
        const std::string what = "bad address '" + token +
            "' on line " + std::to_string(line_no) + " (expected hex)";
        SWCC_LOG_WARN(what);
        throw std::runtime_error(what);
    }
    return value;
}

char
refTypeToChar(RefType type)
{
    switch (type) {
      case RefType::IFetch: return 'i';
      case RefType::Load:   return 'l';
      case RefType::Store:  return 's';
      case RefType::Flush:  return 'f';
    }
    return '?';
}

} // namespace

void
writeBinaryTrace(const TraceBuffer &trace, std::ostream &os)
{
    os.write(kMagic.data(), kMagic.size());
    writeU64(os, trace.size());
    for (const TraceEvent &event : trace) {
        writeU64(os, event.addr);
        const std::uint64_t meta =
            static_cast<std::uint64_t>(event.cpu) |
            (static_cast<std::uint64_t>(event.type) << 16);
        writeU64(os, meta);
    }
    if (!os) {
        throw std::runtime_error("failed to write binary trace");
    }
}

TraceBuffer
readBinaryTrace(std::istream &is)
{
    std::array<char, 8> magic{};
    is.read(magic.data(), magic.size());
    if (!is || magic != kMagic) {
        const std::string what = "not a SWCC binary trace (bad magic)";
        SWCC_LOG_WARN(what);
        throw std::runtime_error(what);
    }
    const std::uint64_t count = readU64(is);

    // Bound the header count by what the stream can actually hold (16
    // bytes per event) before reserving: a corrupt or truncated file
    // must raise the truncation error, not a multi-GB allocation.
    constexpr std::uint64_t kBytesPerEvent = 16;
    std::uint64_t reservable = count;
    const auto here = is.tellg();
    if (here != std::istream::pos_type(-1)) {
        is.seekg(0, std::ios::end);
        const auto end = is.tellg();
        is.seekg(here);
        if (end != std::istream::pos_type(-1) && end >= here) {
            const auto remaining =
                static_cast<std::uint64_t>(end - here);
            if (count > remaining / kBytesPerEvent) {
                const std::string what =
                    "truncated trace: header claims " +
                    std::to_string(count) + " events but only " +
                    std::to_string(remaining) + " bytes remain";
                SWCC_LOG_WARN(what);
                throw std::runtime_error(what);
            }
        }
    } else {
        // Unseekable stream: cap the reserve; the event loop below
        // still reports truncation the moment the stream runs dry.
        is.clear();
        reservable = std::min<std::uint64_t>(count, 1u << 20);
    }
    TraceBuffer trace;
    trace.reserve(static_cast<std::size_t>(reservable));
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceEvent event;
        event.addr = readU64(is);
        const std::uint64_t meta = readU64(is);
        event.cpu = static_cast<CpuId>(meta & 0xffffu);
        const auto type_bits = static_cast<std::uint8_t>(meta >> 16);
        if (type_bits > static_cast<std::uint8_t>(RefType::Flush)) {
            const std::string what =
                "bad reference type in binary trace (event " +
                std::to_string(i) + ")";
            SWCC_LOG_WARN(what);
            throw std::runtime_error(what);
        }
        event.type = static_cast<RefType>(type_bits);
        trace.append(event);
    }
    return trace;
}

void
writeTextTrace(const TraceBuffer &trace, std::ostream &os)
{
    os << "# swcc trace: cpu type addr(hex); " << trace.size()
       << " events, " << trace.numCpus() << " cpus\n";
    for (const TraceEvent &event : trace) {
        os << event.cpu << ' ' << refTypeToChar(event.type) << ' '
           << std::hex << event.addr << std::dec << '\n';
    }
    if (!os) {
        throw std::runtime_error("failed to write text trace");
    }
}

TraceBuffer
readTextTrace(std::istream &is)
{
    TraceBuffer trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::istringstream fields(line);
        unsigned cpu = 0;
        std::string type_token;
        std::string addr_token;
        if (!(fields >> cpu >> type_token >> addr_token) ||
            type_token.size() != 1) {
            const std::string what = "malformed trace line " +
                std::to_string(line_no) + ": '" + line + "'";
            SWCC_LOG_WARN(what);
            throw std::runtime_error(what);
        }
        TraceEvent event;
        event.cpu = static_cast<CpuId>(cpu);
        event.type = refTypeFromChar(type_token[0], line_no);
        event.addr = parseHexAddr(addr_token, line_no);
        trace.append(event);
    }
    return trace;
}

void
saveTrace(const TraceBuffer &trace, const std::string &path)
{
    // Atomic (temp + fsync + rename): a run killed mid-save can never
    // leave a truncated trace that a later campaign mistakes for a
    // complete one.
    const bool binary = path.ends_with(".swcc");
    campaign::atomicWriteFile(
        path,
        [&](std::ostream &os) {
            if (binary) {
                writeBinaryTrace(trace, os);
            } else {
                writeTextTrace(trace, os);
            }
        },
        binary);
}

TraceBuffer
loadTrace(const std::string &path)
{
    campaign::checkFault(campaign::FaultSite::TraceIo);
    const bool binary = path.ends_with(".swcc");
    std::ifstream is(path, binary ? std::ios::binary : std::ios::in);
    if (!is) {
        throw std::runtime_error("cannot open " + path + " for reading");
    }
    return binary ? readBinaryTrace(is) : readTextTrace(is);
}

} // namespace swcc
