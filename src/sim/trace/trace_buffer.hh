/**
 * @file
 * In-memory container for an interleaved multiprocessor trace.
 */

#ifndef SWCC_SIM_TRACE_TRACE_BUFFER_HH
#define SWCC_SIM_TRACE_TRACE_BUFFER_HH

#include <cstddef>
#include <vector>

#include "sim/trace/trace_event.hh"

namespace swcc
{

/**
 * An interleaved multiprocessor address trace.
 *
 * Events appear in global interleave order; per-processor program order
 * is the subsequence with a given cpu id. The buffer tracks the number
 * of distinct processors for convenience.
 */
class TraceBuffer
{
  public:
    TraceBuffer() = default;

    /** Appends one event. */
    void
    append(TraceEvent event)
    {
        if (event.cpu >= numCpus_) {
            numCpus_ = static_cast<CpuId>(event.cpu + 1);
        }
        events_.push_back(event);
    }

    /** Appends with individual fields. */
    void
    append(CpuId cpu, RefType type, Addr addr)
    {
        append(TraceEvent{addr, cpu, type});
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** One more than the largest cpu id seen. */
    CpuId numCpus() const { return numCpus_; }

    const TraceEvent &operator[](std::size_t i) const { return events_[i]; }

    auto begin() const { return events_.begin(); }
    auto end() const { return events_.end(); }

    /** Removes all events. */
    void clear();

    /** Reserves capacity for @p n events. */
    void reserve(std::size_t n) { events_.reserve(n); }

    /**
     * The sub-trace containing only events of processors < @p cpus
     * (used to derive smaller-machine traces from a larger one, as when
     * plotting "four or fewer processors" from one trace).
     */
    TraceBuffer restrictedToCpus(CpuId cpus) const;

    /** Number of events with the given type. */
    std::size_t countType(RefType type) const;

  private:
    std::vector<TraceEvent> events_;
    CpuId numCpus_ = 0;
};

} // namespace swcc

#endif // SWCC_SIM_TRACE_TRACE_BUFFER_HH
