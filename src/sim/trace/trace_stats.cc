#include "sim/trace/trace_stats.hh"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace swcc
{

namespace
{

bool
isPowerOfTwo(std::size_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** State of the apl run-length measurement for one block. */
struct RunState
{
    CpuId cpu = 0;
    std::size_t length = 0;
    bool hasWrite = false;
};

/** Per-(cpu, block) dirtiness for mdshd measurement. */
struct FlushKey
{
    Addr block;
    CpuId cpu;
    bool operator==(const FlushKey &) const = default;
};

struct FlushKeyHash
{
    std::size_t
    operator()(const FlushKey &key) const
    {
        return std::hash<Addr>()(key.block * 0x9e3779b97f4a7c15ull) ^
            std::hash<CpuId>()(key.cpu);
    }
};

} // namespace

TraceStatistics
analyzeTrace(const TraceBuffer &trace, std::size_t block_bytes,
             const SharedClassifier &classifier)
{
    if (!isPowerOfTwo(block_bytes)) {
        throw std::invalid_argument("block size must be a power of two");
    }

    TraceStatistics stats;
    stats.blockBytes = block_bytes;

    const Addr block_mask = ~static_cast<Addr>(block_bytes - 1);

    // Pass 1: identify shared blocks.
    std::unordered_map<Addr, CpuId> first_toucher;
    std::unordered_set<Addr> shared_blocks;
    for (const TraceEvent &event : trace) {
        if (!isData(event.type)) {
            continue;
        }
        const Addr block = event.addr & block_mask;
        if (classifier) {
            if (classifier(block)) {
                shared_blocks.insert(block);
            }
            continue;
        }
        auto [it, inserted] = first_toucher.emplace(block, event.cpu);
        if (!inserted && it->second != event.cpu) {
            shared_blocks.insert(block);
        }
    }

    auto is_shared = [&](Addr block) {
        return shared_blocks.contains(block);
    };

    // Pass 2: counts, apl run lengths, mdshd.
    std::unordered_map<Addr, RunState> runs;
    std::unordered_map<FlushKey, bool, FlushKeyHash> dirty;
    std::unordered_set<Addr> data_blocks;
    for (const TraceEvent &event : trace) {
        const Addr block = event.addr & block_mask;
        switch (event.type) {
          case RefType::IFetch:
            ++stats.instructions;
            continue;
          case RefType::Load:
            ++stats.loads;
            break;
          case RefType::Store:
            ++stats.stores;
            break;
          case RefType::Flush:
            ++stats.flushes;
            {
                auto it = dirty.find(FlushKey{block, event.cpu});
                if (it != dirty.end() && it->second) {
                    ++stats.dirtyFlushes;
                    it->second = false;
                }
            }
            continue;
        }

        // Loads and stores only from here on.
        ++stats.dataRefs;
        data_blocks.insert(block);
        const bool shared = is_shared(block);
        const bool write = event.type == RefType::Store;
        if (shared) {
            ++stats.sharedRefs;
            if (write) {
                ++stats.sharedWrites;
            }
            if (write) {
                dirty[FlushKey{block, event.cpu}] = true;
            }

            // apl: count the run of references by one processor, at
            // least one a write, terminated by another processor.
            RunState &run = runs[block];
            if (run.length > 0 && run.cpu == event.cpu) {
                ++run.length;
                run.hasWrite = run.hasWrite || write;
            } else {
                if (run.length > 0 && run.hasWrite) {
                    ++stats.aplRuns;
                    stats.aplRunRefs += run.length;
                }
                run.cpu = event.cpu;
                run.length = 1;
                run.hasWrite = write;
            }
        }
    }

    stats.dataBlocks = data_blocks.size();
    stats.sharedBlocks = shared_blocks.size();

    if (stats.instructions > 0) {
        stats.ls = static_cast<double>(stats.dataRefs) /
            static_cast<double>(stats.instructions);
    }
    if (stats.dataRefs > 0) {
        stats.shd = static_cast<double>(stats.sharedRefs) /
            static_cast<double>(stats.dataRefs);
    }
    if (stats.sharedRefs > 0) {
        stats.wr = static_cast<double>(stats.sharedWrites) /
            static_cast<double>(stats.sharedRefs);
    }
    if (stats.aplRuns > 0) {
        stats.apl = static_cast<double>(stats.aplRunRefs) /
            static_cast<double>(stats.aplRuns);
    }
    if (stats.flushes > 0) {
        stats.mdshd = static_cast<double>(stats.dirtyFlushes) /
            static_cast<double>(stats.flushes);
        stats.aplPerFlush = static_cast<double>(stats.sharedRefs) /
            static_cast<double>(stats.flushes);
    }
    return stats;
}

} // namespace swcc
