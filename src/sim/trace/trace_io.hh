/**
 * @file
 * Trace serialization: a compact binary format and a human-readable
 * text format.
 */

#ifndef SWCC_SIM_TRACE_TRACE_IO_HH
#define SWCC_SIM_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "sim/trace/trace_buffer.hh"

namespace swcc
{

/**
 * Writes a trace in the binary format (magic "SWCCTRC1", little-endian
 * event count, then packed records).
 *
 * @throws std::runtime_error on stream failure.
 */
void writeBinaryTrace(const TraceBuffer &trace, std::ostream &os);

/**
 * Reads a trace in the binary format.
 *
 * @throws std::runtime_error on malformed input or stream failure.
 */
TraceBuffer readBinaryTrace(std::istream &is);

/**
 * Writes a trace as text: one "cpu type hex-address" triple per line,
 * with '#' comment lines permitted.
 */
void writeTextTrace(const TraceBuffer &trace, std::ostream &os);

/**
 * Reads the text format; blank lines and '#' comments are skipped.
 *
 * @throws std::runtime_error naming the offending line on parse errors.
 */
TraceBuffer readTextTrace(std::istream &is);

/** Convenience file wrappers; format chosen by extension (".swcc" binary, anything else text). */
void saveTrace(const TraceBuffer &trace, const std::string &path);
TraceBuffer loadTrace(const std::string &path);

} // namespace swcc

#endif // SWCC_SIM_TRACE_TRACE_IO_HH
