#include "sim/trace/trace_buffer.hh"

#include <algorithm>

namespace swcc
{

void
TraceBuffer::clear()
{
    events_.clear();
    numCpus_ = 0;
}

TraceBuffer
TraceBuffer::restrictedToCpus(CpuId cpus) const
{
    TraceBuffer out;
    for (const TraceEvent &event : events_) {
        if (event.cpu < cpus) {
            out.append(event);
        }
    }
    return out;
}

std::size_t
TraceBuffer::countType(RefType type) const
{
    return static_cast<std::size_t>(std::count_if(
        events_.begin(), events_.end(),
        [type](const TraceEvent &e) { return e.type == type; }));
}

} // namespace swcc
