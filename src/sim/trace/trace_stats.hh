/**
 * @file
 * Workload-parameter measurement from raw traces.
 *
 * Reproduces the measurement methodology of the paper's Section 4:
 * ls, shd and wr are counted directly; apl is estimated as the number
 * of references to a cache line by one processor (at least one of which
 * is a write) between references by another processor; mdshd is
 * measured from flush events when the trace contains them.
 */

#ifndef SWCC_SIM_TRACE_TRACE_STATS_HH
#define SWCC_SIM_TRACE_TRACE_STATS_HH

#include <cstddef>
#include <functional>
#include <optional>

#include "sim/trace/trace_buffer.hh"

namespace swcc
{

/**
 * Predicate classifying a block address as shared.
 *
 * The software schemes treat as shared whatever the compiler or
 * programmer marked (typically an address region); pass such a
 * predicate to measure the software interpretation. When absent, the
 * *dynamic* interpretation is used: a block is shared if more than one
 * processor references it anywhere in the trace (the paper's Dragon
 * interpretation).
 */
using SharedClassifier = std::function<bool(Addr block_addr)>;

/**
 * Counts and derived workload parameters measured from one trace.
 */
struct TraceStatistics
{
    /** Block size used for line-granularity statistics. */
    std::size_t blockBytes = 16;

    std::size_t instructions = 0;
    std::size_t loads = 0;
    std::size_t stores = 0;
    std::size_t flushes = 0;

    std::size_t dataRefs = 0;
    std::size_t sharedRefs = 0;
    std::size_t sharedWrites = 0;

    std::size_t dirtyFlushes = 0;

    /** Distinct data blocks observed. */
    std::size_t dataBlocks = 0;
    /** Distinct shared data blocks observed. */
    std::size_t sharedBlocks = 0;

    /** Number of uninterrupted write-runs counted for apl. */
    std::size_t aplRuns = 0;
    /** Total references across counted runs. */
    std::size_t aplRunRefs = 0;

    /** ls: data references per instruction. */
    double ls = 0.0;
    /** shd: fraction of data references touching shared blocks. */
    double shd = 0.0;
    /** wr: fraction of shared references that are stores. */
    double wr = 0.0;
    /** apl estimate (mean counted run length); nullopt if no runs. */
    std::optional<double> apl;
    /**
     * mdshd: dirty fraction of flushes; only measurable when the trace
     * carries flush events.
     */
    std::optional<double> mdshd;
    /**
     * Shared references per flush instruction — the apl actually
     * realised by the software that inserted the flushes (as opposed to
     * the optimistic run-length estimate above).
     */
    std::optional<double> aplPerFlush;
};

/**
 * Analyzes a trace at the given block granularity.
 *
 * @param trace The interleaved trace.
 * @param block_bytes Cache-block size (power of two).
 * @param classifier Optional software shared-region predicate; dynamic
 *        multi-processor detection is used when absent.
 * @throws std::invalid_argument if block_bytes is not a power of two.
 */
TraceStatistics analyzeTrace(const TraceBuffer &trace,
                             std::size_t block_bytes,
                             const SharedClassifier &classifier = nullptr);

} // namespace swcc

#endif // SWCC_SIM_TRACE_TRACE_STATS_HH
