/**
 * @file
 * Multiprocessor address-trace event format.
 *
 * The validation methodology of the paper consumes interleaved memory
 * references from all processors (the ATUM-2 format); this is our
 * equivalent in-memory representation. Flush events extend the format
 * so that Software-Flush traces can be simulated, which the paper could
 * not do with its hardware-coherent traces.
 */

#ifndef SWCC_SIM_TRACE_TRACE_EVENT_HH
#define SWCC_SIM_TRACE_TRACE_EVENT_HH

#include <cstdint>
#include <string_view>

namespace swcc
{

/** Byte address within the simulated physical address space. */
using Addr = std::uint64_t;

/** Processor identifier. */
using CpuId = std::uint16_t;

/** Kind of one trace reference. */
enum class RefType : std::uint8_t
{
    /** Instruction fetch; each fetch is one executed instruction. */
    IFetch,
    /** Data load. */
    Load,
    /** Data store. */
    Store,
    /**
     * Software flush of the block containing the address (invalidate,
     * write back if dirty). Emitted by the compiler/programmer in the
     * Software-Flush scheme; ignored by hardware schemes.
     */
    Flush,
};

/** Human-readable name of a reference type. */
constexpr std::string_view
refTypeName(RefType type)
{
    switch (type) {
      case RefType::IFetch: return "ifetch";
      case RefType::Load:   return "load";
      case RefType::Store:  return "store";
      case RefType::Flush:  return "flush";
    }
    return "unknown";
}

/** True for loads and stores (the references counted by ls). */
constexpr bool
isData(RefType type)
{
    return type == RefType::Load || type == RefType::Store;
}

/**
 * One interleaved trace record.
 */
struct TraceEvent
{
    Addr addr = 0;
    CpuId cpu = 0;
    RefType type = RefType::IFetch;

    bool operator==(const TraceEvent &) const = default;
};

} // namespace swcc

#endif // SWCC_SIM_TRACE_TRACE_EVENT_HH
