/**
 * @file
 * Cycle-level shared bus with first-come-first-served arbitration.
 */

#ifndef SWCC_SIM_BUS_BUS_HH
#define SWCC_SIM_BUS_BUS_HH

#include <cstdint>

#include "core/obs/trace.hh"
#include "core/types.hh"

namespace swcc
{

/**
 * The shared bus.
 *
 * Transactions have deterministic durations (the Table 1 bus times).
 * A request issued at time t is granted at max(t, bus-free time); the
 * simulator's global-time event ordering makes grants first-come-
 * first-served. Deterministic service is the key difference from the
 * analytical model's exponential server — the source of the model's
 * slight contention overestimate noted in the paper's validation.
 */
class Bus
{
  public:
    /** Grant outcome for one transaction. */
    struct Grant
    {
        /** Cycle at which the bus was acquired. */
        Cycles start = 0.0;
        /** Cycles spent waiting for the grant. */
        Cycles waited = 0.0;
    };

    /**
     * Requests the bus at @p now for @p duration cycles.
     *
     * @throws std::invalid_argument for a non-positive duration.
     */
    Grant acquire(Cycles now, Cycles duration);

    /** Cycle at which the bus next becomes free. */
    Cycles freeAt() const { return freeAt_; }

    /** Total cycles the bus has been held. */
    Cycles busyCycles() const { return busyCycles_; }

    /** Number of transactions served. */
    std::uint64_t transactions() const { return transactions_; }

    /** Total cycles requesters spent waiting. */
    Cycles totalWaited() const { return totalWaited_; }

    /** Resets all state and statistics (the observer is kept). */
    void reset();

    /**
     * Routes per-grant spans to @p recorder as X events on
     * (@p pid, @p tid) in simulated time, so emitted timelines show
     * bus occupancy and arbitration gaps directly; null (the default)
     * disables at the cost of one branch per grant. Purely
     * observational — grant timing is unchanged.
     */
    void setObserver(obs::TraceRecorder *recorder, std::int32_t pid,
                     std::int32_t tid);

  private:
    Cycles freeAt_ = 0.0;
    Cycles busyCycles_ = 0.0;
    Cycles totalWaited_ = 0.0;
    std::uint64_t transactions_ = 0;

    obs::TraceRecorder *observer_ = nullptr;
    std::int32_t observerPid_ = 0;
    std::int32_t observerTid_ = 0;
    std::uint32_t grantName_ = 0;
};

} // namespace swcc

#endif // SWCC_SIM_BUS_BUS_HH
