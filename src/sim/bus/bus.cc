#include "sim/bus/bus.hh"

#include <algorithm>
#include <stdexcept>

namespace swcc
{

Bus::Grant
Bus::acquire(Cycles now, Cycles duration)
{
    if (duration <= 0.0) {
        throw std::invalid_argument(
            "bus transactions must have positive duration");
    }
    Grant grant;
    grant.start = std::max(now, freeAt_);
    grant.waited = grant.start - now;
    freeAt_ = grant.start + duration;
    busyCycles_ += duration;
    totalWaited_ += grant.waited;
    ++transactions_;
#if SWCC_OBS_ENABLED
    if (observer_ != nullptr) {
        observer_->recordComplete(grantName_, observerPid_,
                                  observerTid_, grant.start, duration);
    }
#endif
    return grant;
}

void
Bus::setObserver(obs::TraceRecorder *recorder, std::int32_t pid,
                 std::int32_t tid)
{
    observer_ = recorder;
    observerPid_ = pid;
    observerTid_ = tid;
    if (recorder != nullptr) {
        grantName_ = recorder->intern("bus.grant");
    }
}

void
Bus::reset()
{
    freeAt_ = 0.0;
    busyCycles_ = 0.0;
    totalWaited_ = 0.0;
    transactions_ = 0;
}

} // namespace swcc
