#include "core/frequency_model.hh"

#include <algorithm>
#include <stdexcept>

#include "core/per_instruction.hh"

namespace swcc
{

double
FrequencyVector::totalMisses() const
{
    return of(Operation::CleanMissMem) + of(Operation::DirtyMissMem) +
        of(Operation::CleanMissCache) + of(Operation::DirtyMissCache);
}

double
FrequencyVector::totalChannelOperations() const
{
    double total = 0.0;
    for (Operation op : kAllOperations) {
        if (op != Operation::InstrExec && op != Operation::CycleSteal) {
            total += of(op);
        }
    }
    return total;
}

double
flushFrequency(const WorkloadParams &params)
{
    return params.ls * params.shd / params.apl;
}

namespace
{

/** Paper Table 3: the coherence-free Base scheme. */
FrequencyVector
baseFrequencies(const WorkloadParams &p)
{
    FrequencyVector freqs;
    const double miss = p.ls * p.msdat + p.mains;
    freqs.set(Operation::InstrExec, 1.0);
    freqs.set(Operation::CleanMissMem, miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissMem, miss * p.md);
    return freqs;
}

/** Paper Table 4: shared data is uncacheable. */
FrequencyVector
noCacheFrequencies(const WorkloadParams &p)
{
    FrequencyVector freqs;
    const double miss = p.ls * p.msdat * (1.0 - p.shd) + p.mains;
    freqs.set(Operation::InstrExec, 1.0);
    freqs.set(Operation::CleanMissMem, miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissMem, miss * p.md);
    freqs.set(Operation::ReadThrough, p.ls * p.shd * (1.0 - p.wr));
    freqs.set(Operation::WriteThrough, p.ls * p.shd * p.wr);
    return freqs;
}

/**
 * Paper Table 5: software-controlled flushing.
 *
 * Flush instructions appear once per apl shared references, i.e. with
 * frequency f = ls*shd/apl per non-flush instruction. Three effects:
 * the flush operation itself (dirty with probability mdshd), one clean
 * refetch miss per flush (the flush frees the block's frame, so the
 * refetch does not evict a dirty victim), and an instruction-miss
 * inflation factor of (1 + f) because flush instructions are fetched
 * too.
 */
FrequencyVector
softwareFlushFrequencies(const WorkloadParams &p)
{
    FrequencyVector freqs;
    const double f = flushFrequency(p);
    const double miss =
        p.ls * p.msdat * (1.0 - p.shd) + p.mains * (1.0 + f);
    freqs.set(Operation::InstrExec, 1.0);
    freqs.set(Operation::CleanMissMem, miss * (1.0 - p.md) + f);
    freqs.set(Operation::DirtyMissMem, miss * p.md);
    freqs.set(Operation::CleanFlush, f * (1.0 - p.mdshd));
    freqs.set(Operation::DirtyFlush, f * p.mdshd);
    return freqs;
}

/** Paper Table 6: the Dragon write-broadcast snoopy protocol. */
FrequencyVector
dragonFrequencies(const WorkloadParams &p)
{
    FrequencyVector freqs;
    const double from_cache = p.shd * (1.0 - p.oclean);
    const double mem_miss = p.ls * p.msdat * (1.0 - from_cache) + p.mains;
    const double cache_miss = p.ls * p.msdat * from_cache;
    const double broadcast = p.ls * p.shd * p.wr * p.opres;
    freqs.set(Operation::InstrExec, 1.0);
    freqs.set(Operation::CleanMissMem, mem_miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissMem, mem_miss * p.md);
    freqs.set(Operation::WriteBroadcast, broadcast);
    freqs.set(Operation::CleanMissCache, cache_miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissCache, cache_miss * p.md);
    freqs.set(Operation::CycleSteal, broadcast * p.nshd);
    return freqs;
}

/**
 * Fraction of shared writes that open a write run. A run of apl shared
 * references contains about wr*apl writes; only the first one finds
 * remote copies to kill (the rest hit a line the invalidation made
 * exclusive), so invalidations fire at 1/(wr*apl) per shared write,
 * capped at one.
 */
double
firstWriteFraction(const WorkloadParams &p)
{
    const double writes_per_run = p.wr * p.apl;
    return writes_per_run <= 1.0 ? 1.0 : 1.0 / writes_per_run;
}

/**
 * Invalidate-family frequency table (MESI and variants).
 *
 * Derivation, in the formalism of Table 6, from the eleven Table 2
 * parameters alone:
 *
 *  - Invalidations: the first write of each run that finds remote
 *    copies present broadcasts an invalidation (priced as the
 *    1-bus-cycle word broadcast), frequency
 *    ls*shd*wr*opres*firstWrite. Each destroys nshd remote copies,
 *    stealing one snoop cycle per copy, exactly like a Dragon update.
 *
 *  - Coherence misses: a destroyed copy whose owner would have been
 *    present at the writer's next write (probability opres, the same
 *    steady-state presence that made the invalidation fire) is
 *    re-referenced and misses again. The writer holds the block dirty,
 *    so coherence misses are cache-supplied:
 *    coherence = invalidations * nshd * opres.
 *
 *  - Ordinary misses split exactly as Dragon's Table 6: a fraction
 *    from_cache of shared-data misses finds the block dirty in another
 *    cache and is cache-supplied (the owner supplies and memory is
 *    updated, Illinois-style).
 *
 * @param from_cache Fraction of shared-data misses that are
 *        cache-supplied (the MESIF forwarder raises this over MESI).
 * @param md Dirty-victim fraction to use for the miss split (MOESI's
 *        deferred Owned write-backs raise it over the measured md).
 */
FrequencyVector
invalidateFamilyFrequencies(const WorkloadParams &p, double from_cache,
                            double md)
{
    FrequencyVector freqs;
    const double inval =
        p.ls * p.shd * p.wr * p.opres * firstWriteFraction(p);
    const double coherence = inval * p.nshd * p.opres;
    const double mem_miss = p.ls * p.msdat * (1.0 - from_cache) + p.mains;
    const double cache_miss = p.ls * p.msdat * from_cache + coherence;
    freqs.set(Operation::InstrExec, 1.0);
    freqs.set(Operation::CleanMissMem, mem_miss * (1.0 - md));
    freqs.set(Operation::DirtyMissMem, mem_miss * md);
    freqs.set(Operation::CleanMissCache, cache_miss * (1.0 - md));
    freqs.set(Operation::DirtyMissCache, cache_miss * md);
    freqs.set(Operation::WriteBroadcast, inval);
    freqs.set(Operation::CycleSteal, inval * p.nshd);
    return freqs;
}

/** MESI: the plain invalidate table (dirty-owner cache supply only). */
FrequencyVector
mesiFrequencies(const WorkloadParams &p)
{
    return invalidateFamilyFrequencies(p, p.shd * (1.0 - p.oclean),
                                       p.md);
}

/**
 * MESIF: one clean holder is the designated forwarder, so clean-shared
 * misses whose block is still present in some cache (probability
 * opres, the steady-state presence) are cache-supplied too:
 * from_cache = shd * ((1 - oclean) + oclean*opres).
 */
FrequencyVector
mesifFrequencies(const WorkloadParams &p)
{
    const double from_cache =
        p.shd * ((1.0 - p.oclean) + p.oclean * p.opres);
    return invalidateFamilyFrequencies(p, from_cache, p.md);
}

/**
 * MOESI: a dirty owner supplying a miss keeps ownership (Owned) and
 * memory stays stale, so the write-back the Illinois supply performed
 * eagerly is deferred to the owner's eviction instead. Every
 * cache-supplied miss (all of which an owner serves in MOESI) leaves
 * one extra dirty line to evict later, raising the dirty-victim
 * fraction from md to md + (1 - md) * cache_miss / total_miss. With
 * ls = 0 no misses are cache-supplied and the table collapses to
 * Base, preserving the paper's "schemes coincide" property.
 */
FrequencyVector
moesiFrequencies(const WorkloadParams &p)
{
    const double from_cache = p.shd * (1.0 - p.oclean);
    const double inval =
        p.ls * p.shd * p.wr * p.opres * firstWriteFraction(p);
    const double coherence = inval * p.nshd * p.opres;
    const double mem_miss =
        p.ls * p.msdat * (1.0 - from_cache) + p.mains;
    const double cache_miss = p.ls * p.msdat * from_cache + coherence;
    const double total_miss = mem_miss + cache_miss;
    const double md = total_miss > 0.0
        ? p.md + (1.0 - p.md) * cache_miss / total_miss
        : p.md;
    return invalidateFamilyFrequencies(p, from_cache, md);
}

/**
 * Adaptive hybrid: the per-block saturating counter of the simulator
 * protocol converges, in the aggregate, on whichever pure policy moves
 * the workload cheaper — so the table is the cheaper of Dragon
 * (update) and MESI (invalidate) by uncontended cycles per instruction
 * under the Table 1 costs, with the update table winning ties (the
 * protocol starts every block in update mode).
 */
FrequencyVector
hybridFrequencies(const WorkloadParams &p)
{
    const FrequencyVector update = dragonFrequencies(p);
    const FrequencyVector invalidate = mesiFrequencies(p);
    const BusCostModel costs;
    const double update_cycles = perInstructionCost(update, costs).cpu;
    const double invalidate_cycles =
        perInstructionCost(invalidate, costs).cpu;
    return invalidate_cycles < update_cycles ? invalidate : update;
}

} // namespace

FrequencyVector
operationFrequencies(Scheme scheme, const WorkloadParams &params)
{
    params.validate();
    switch (scheme) {
      case Scheme::Base:          return baseFrequencies(params);
      case Scheme::NoCache:       return noCacheFrequencies(params);
      case Scheme::SoftwareFlush: return softwareFlushFrequencies(params);
      case Scheme::Dragon:        return dragonFrequencies(params);
      case Scheme::Mesi:          return mesiFrequencies(params);
      case Scheme::Mesif:         return mesifFrequencies(params);
      case Scheme::Moesi:         return moesiFrequencies(params);
      case Scheme::Hybrid:        return hybridFrequencies(params);
    }
    throw std::invalid_argument("unknown Scheme");
}

} // namespace swcc
