#include "core/frequency_model.hh"

#include <stdexcept>

namespace swcc
{

double
FrequencyVector::totalMisses() const
{
    return of(Operation::CleanMissMem) + of(Operation::DirtyMissMem) +
        of(Operation::CleanMissCache) + of(Operation::DirtyMissCache);
}

double
FrequencyVector::totalChannelOperations() const
{
    double total = 0.0;
    for (Operation op : kAllOperations) {
        if (op != Operation::InstrExec && op != Operation::CycleSteal) {
            total += of(op);
        }
    }
    return total;
}

double
flushFrequency(const WorkloadParams &params)
{
    return params.ls * params.shd / params.apl;
}

namespace
{

/** Paper Table 3: the coherence-free Base scheme. */
FrequencyVector
baseFrequencies(const WorkloadParams &p)
{
    FrequencyVector freqs;
    const double miss = p.ls * p.msdat + p.mains;
    freqs.set(Operation::InstrExec, 1.0);
    freqs.set(Operation::CleanMissMem, miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissMem, miss * p.md);
    return freqs;
}

/** Paper Table 4: shared data is uncacheable. */
FrequencyVector
noCacheFrequencies(const WorkloadParams &p)
{
    FrequencyVector freqs;
    const double miss = p.ls * p.msdat * (1.0 - p.shd) + p.mains;
    freqs.set(Operation::InstrExec, 1.0);
    freqs.set(Operation::CleanMissMem, miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissMem, miss * p.md);
    freqs.set(Operation::ReadThrough, p.ls * p.shd * (1.0 - p.wr));
    freqs.set(Operation::WriteThrough, p.ls * p.shd * p.wr);
    return freqs;
}

/**
 * Paper Table 5: software-controlled flushing.
 *
 * Flush instructions appear once per apl shared references, i.e. with
 * frequency f = ls*shd/apl per non-flush instruction. Three effects:
 * the flush operation itself (dirty with probability mdshd), one clean
 * refetch miss per flush (the flush frees the block's frame, so the
 * refetch does not evict a dirty victim), and an instruction-miss
 * inflation factor of (1 + f) because flush instructions are fetched
 * too.
 */
FrequencyVector
softwareFlushFrequencies(const WorkloadParams &p)
{
    FrequencyVector freqs;
    const double f = flushFrequency(p);
    const double miss =
        p.ls * p.msdat * (1.0 - p.shd) + p.mains * (1.0 + f);
    freqs.set(Operation::InstrExec, 1.0);
    freqs.set(Operation::CleanMissMem, miss * (1.0 - p.md) + f);
    freqs.set(Operation::DirtyMissMem, miss * p.md);
    freqs.set(Operation::CleanFlush, f * (1.0 - p.mdshd));
    freqs.set(Operation::DirtyFlush, f * p.mdshd);
    return freqs;
}

/** Paper Table 6: the Dragon write-broadcast snoopy protocol. */
FrequencyVector
dragonFrequencies(const WorkloadParams &p)
{
    FrequencyVector freqs;
    const double from_cache = p.shd * (1.0 - p.oclean);
    const double mem_miss = p.ls * p.msdat * (1.0 - from_cache) + p.mains;
    const double cache_miss = p.ls * p.msdat * from_cache;
    const double broadcast = p.ls * p.shd * p.wr * p.opres;
    freqs.set(Operation::InstrExec, 1.0);
    freqs.set(Operation::CleanMissMem, mem_miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissMem, mem_miss * p.md);
    freqs.set(Operation::WriteBroadcast, broadcast);
    freqs.set(Operation::CleanMissCache, cache_miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissCache, cache_miss * p.md);
    freqs.set(Operation::CycleSteal, broadcast * p.nshd);
    return freqs;
}

} // namespace

FrequencyVector
operationFrequencies(Scheme scheme, const WorkloadParams &params)
{
    params.validate();
    switch (scheme) {
      case Scheme::Base:          return baseFrequencies(params);
      case Scheme::NoCache:       return noCacheFrequencies(params);
      case Scheme::SoftwareFlush: return softwareFlushFrequencies(params);
      case Scheme::Dragon:        return dragonFrequencies(params);
    }
    throw std::invalid_argument("unknown Scheme");
}

} // namespace swcc
