#include "core/operation.hh"

namespace swcc
{

std::string_view
operationName(Operation op)
{
    switch (op) {
      case Operation::InstrExec:      return "Instruction execution";
      case Operation::CleanMissMem:   return "Clean miss (mem)";
      case Operation::DirtyMissMem:   return "Dirty miss (mem)";
      case Operation::ReadThrough:    return "Read through";
      case Operation::WriteThrough:   return "Write through";
      case Operation::CleanFlush:     return "Clean flush";
      case Operation::DirtyFlush:     return "Dirty flush";
      case Operation::WriteBroadcast: return "Write broadcast";
      case Operation::CleanMissCache: return "Clean miss (cache)";
      case Operation::DirtyMissCache: return "Dirty miss (cache)";
      case Operation::CycleSteal:     return "Cycle stealing";
    }
    return "unknown";
}

} // namespace swcc
