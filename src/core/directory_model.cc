#include "core/directory_model.hh"

#include <stdexcept>

#include "core/cost_model.hh"
#include "core/per_instruction.hh"

namespace swcc
{

void
DirectoryModelConfig::validate() const
{
    if (!(rerefFraction >= 0.0 && rerefFraction <= 1.0)) {
        throw std::invalid_argument(
            "rerefFraction must lie in [0, 1]");
    }
}

FrequencyVector
directoryFrequencies(const WorkloadParams &p,
                     const DirectoryModelConfig &config)
{
    p.validate();
    config.validate();

    FrequencyVector freqs;
    freqs.set(Operation::InstrExec, 1.0);

    // Ownership/invalidation rounds: writes to blocks with remote
    // sharers, as in Dragon's broadcast frequency.
    const double ownership = p.ls * p.shd * p.wr * p.opres;

    // Coherence misses: invalidated remote copies re-referenced.
    const double coherence_misses =
        ownership * p.nshd * config.rerefFraction;

    const double miss =
        p.ls * p.msdat + p.mains + coherence_misses;
    freqs.set(Operation::CleanMissMem, miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissMem, miss * p.md);

    // Dirty-remote retrieval penalty: the directory forwards/collects
    // the owner's copy before satisfying the miss. Shared misses only.
    const double shared_miss =
        p.ls * p.msdat * p.shd + coherence_misses;
    freqs.set(Operation::ReadThrough,
              shared_miss * (1.0 - p.oclean));

    // One short round trip per ownership request.
    freqs.set(Operation::WriteThrough, ownership);
    return freqs;
}

NetworkSolution
evaluateDirectoryNetwork(const WorkloadParams &params, unsigned stages,
                         const DirectoryModelConfig &config)
{
    const NetworkCostModel costs(stages);
    const FrequencyVector freqs = directoryFrequencies(params, config);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    return solveNetwork(cost, stages);
}

} // namespace swcc
