/**
 * @file
 * Workload model parameters (paper Table 2) and their studied ranges
 * (paper Table 7).
 */

#ifndef SWCC_CORE_WORKLOAD_HH
#define SWCC_CORE_WORKLOAD_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace swcc
{

/**
 * The eleven workload parameters of the paper's Table 2.
 *
 * "Shared data" means data *treated* as shared by the coherence
 * algorithm (compiler/programmer marking) in the software schemes, and
 * data *actually* referenced by more than one processor in Dragon; the
 * paper argues these interpretations should not diverge widely.
 */
struct WorkloadParams
{
    /** Probability an instruction is a load or store (ls). */
    double ls = 0.3;
    /** Data miss rate (msdat). */
    double msdat = 0.014;
    /** Instruction miss rate (mains). */
    double mains = 0.0022;
    /** Probability a miss replaces a dirty block (md). */
    double md = 0.20;
    /** Probability a load/store refers to shared data (shd). */
    double shd = 0.25;
    /** Probability a shared reference is a store rather than a load (wr). */
    double wr = 0.25;
    /** References to a shared block before it is flushed (apl >= 1). */
    double apl = 1.0 / 0.13;
    /** Probability a shared block is modified before it is flushed. */
    double mdshd = 0.25;
    /**
     * On a miss to a shared block, probability it is *not* dirty in
     * another cache (oclean).
     */
    double oclean = 0.84;
    /**
     * On a (write) reference to a shared block, probability it is
     * present in another cache (opres).
     */
    double opres = 0.79;
    /** On a write broadcast, number of other caches holding the block. */
    double nshd = 1.0;

    /**
     * Checks every parameter against its domain.
     *
     * Probabilities must lie in [0, 1], @c apl must be >= 1 (a block is
     * referenced at least once before being flushed), and @c nshd must
     * be non-negative.
     *
     * @throws std::invalid_argument naming the offending parameter.
     */
    void validate() const;

    bool operator==(const WorkloadParams &) const = default;
};

/**
 * Identifier for one workload parameter, used by the sensitivity
 * analysis and the sweep utilities.
 *
 * @c InvApl varies 1/apl, matching the paper's Table 7, which tabulates
 * the flush *rate* rather than the run length.
 */
enum class ParamId : std::uint8_t
{
    Ls, Msdat, Mains, Md, Shd, Wr, InvApl, Mdshd, Oclean, Opres, Nshd,
};

/** Number of workload parameters. */
inline constexpr std::size_t kNumParams = 11;

/** All parameter ids, in Table 2 order. */
inline constexpr std::array<ParamId, kNumParams> kAllParams = {
    ParamId::Ls, ParamId::Msdat, ParamId::Mains, ParamId::Md,
    ParamId::Shd, ParamId::Wr, ParamId::InvApl, ParamId::Mdshd,
    ParamId::Oclean, ParamId::Opres, ParamId::Nshd,
};

/** Short name of a parameter (paper notation, e.g. "shd", "1/apl"). */
std::string_view paramName(ParamId id);

/** One-line description of a parameter (paper Table 2 wording). */
std::string_view paramDescription(ParamId id);

/**
 * Reads a parameter from a parameter set.
 *
 * @c InvApl reads 1/apl.
 */
double getParam(const WorkloadParams &params, ParamId id);

/**
 * Writes a parameter into a parameter set.
 *
 * @c InvApl sets apl = 1/value.
 */
void setParam(WorkloadParams &params, ParamId id, double value);

/** Position within a parameter's studied range. */
enum class Level : std::uint8_t { Low, Middle, High };

/** All levels, for iteration. */
inline constexpr std::array<Level, 3> kAllLevels = {
    Level::Low, Level::Middle, Level::High,
};

/** Name of a level ("low"/"middle"/"high"). */
std::string_view levelName(Level level);

/**
 * Low/middle/high studied values for one parameter (paper Table 7).
 *
 * The ranges derive from the paper's trace measurements with three
 * documented adjustments: 1/apl's high value is 1.0 (the maximum
 * possible), md's high value is 0.5 (following Smith's measurements;
 * the traces were too short to fill large caches), and ls reflects RISC
 * rather than the traced CISC machine.
 */
double paramLevelValue(ParamId id, Level level);

/**
 * A full parameter set with every parameter at the given level.
 */
WorkloadParams paramsAtLevel(Level level);

/**
 * The paper's default operating point: every parameter at its middle
 * value (used for Figures 5, 7 and the sensitivity analysis baseline).
 */
WorkloadParams middleParams();

/**
 * Parameter set for the low/medium/high *sharing* scenarios of
 * Figures 4-6: @c ls and @c shd at the given level, everything else at
 * middle values.
 */
WorkloadParams sharingScenario(Level level);

} // namespace swcc

#endif // SWCC_CORE_WORKLOAD_HH
