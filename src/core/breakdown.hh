/**
 * @file
 * Per-operation cost breakdown: where a scheme's CPU and channel
 * cycles actually go. Turns the model's aggregate c and b into the
 * itemised accounting a designer needs to attack the right overhead.
 */

#ifndef SWCC_CORE_BREAKDOWN_HH
#define SWCC_CORE_BREAKDOWN_HH

#include <iosfwd>
#include <vector>

#include "core/cost_model.hh"
#include "core/frequency_model.hh"
#include "core/types.hh"
#include "core/workload.hh"

namespace swcc
{

/** One operation's contribution to the per-instruction cost. */
struct CostContribution
{
    Operation op = Operation::InstrExec;
    /** Occurrences per instruction. */
    double frequency = 0.0;
    /** CPU cycles per instruction spent on this operation. */
    Cycles cpuCycles = 0.0;
    /** Channel (bus/network) cycles per instruction. */
    Cycles channelCycles = 0.0;
    /** Fraction of total CPU cycles. */
    double cpuShare = 0.0;
    /** Fraction of total channel cycles (0 when b is 0). */
    double channelShare = 0.0;
};

/** Itemised per-instruction cost. */
struct CostBreakdown
{
    /** Non-zero contributions, sorted by descending CPU cycles. */
    std::vector<CostContribution> items;
    /** Totals: c and b of Equations 1-2. */
    Cycles totalCpu = 0.0;
    Cycles totalChannel = 0.0;

    /** Contribution of @p op (zeros if absent). */
    CostContribution of(Operation op) const;

    /** Fraction of CPU cycles that is pure instruction execution. */
    double usefulShare() const;
};

/**
 * Breaks down a frequency vector against a cost table.
 *
 * @throws std::invalid_argument if @p freqs uses an operation that
 *         @p costs does not support.
 */
CostBreakdown costBreakdown(const FrequencyVector &freqs,
                            const CostModel &costs);

/** Convenience: breakdown for one of the paper's schemes on a bus. */
CostBreakdown costBreakdown(Scheme scheme, const WorkloadParams &params);

/** Renders a breakdown as an aligned table. */
void printBreakdown(const CostBreakdown &breakdown, std::ostream &os);

} // namespace swcc

#endif // SWCC_CORE_BREAKDOWN_HH
