#include "core/sensitivity.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/campaign/cell_hash.hh"
#include "core/obs/progress.hh"
#include "core/parallel.hh"
#include "core/scheme_evaluator.hh"

namespace swcc
{

namespace
{

/** Execution time (cycles/instruction with contention) at one point. */
Cycles
executionTime(Scheme scheme, const WorkloadParams &params,
              unsigned processors)
{
    return evaluateBus(scheme, params, processors).cyclesPerInstruction();
}

/** Low->high percent change with companions fixed in @p base. */
SensitivityEntry
pinnedSensitivity(Scheme scheme, ParamId param,
                  const WorkloadParams &base, unsigned processors)
{
    SensitivityEntry entry;
    entry.scheme = scheme;
    entry.param = param;

    WorkloadParams low = base;
    setParam(low, param, paramLevelValue(param, Level::Low));
    WorkloadParams high = base;
    setParam(high, param, paramLevelValue(param, Level::High));

    entry.timeLow = executionTime(scheme, low, processors);
    entry.timeHigh = executionTime(scheme, high, processors);
    entry.percentChange =
        100.0 * (entry.timeHigh - entry.timeLow) / entry.timeLow;
    return entry;
}

} // namespace

SensitivityEntry
parameterSensitivity(Scheme scheme, ParamId param,
                     const SensitivityConfig &config)
{
    if (!config.averageOverGrid) {
        return pinnedSensitivity(scheme, param, middleParams(),
                                 config.processors);
    }

    // Average the low->high change over a small companion grid of the
    // parameters the paper singles out as load-bearing.
    constexpr std::array<ParamId, 3> companions = {
        ParamId::Msdat, ParamId::Shd, ParamId::InvApl,
    };

    SensitivityEntry total;
    total.scheme = scheme;
    total.param = param;
    unsigned count = 0;
    for (Level a : kAllLevels) {
        for (Level b : kAllLevels) {
            for (Level c : kAllLevels) {
                WorkloadParams base = middleParams();
                const std::array<Level, 3> levels = {a, b, c};
                bool skip = false;
                for (std::size_t i = 0; i < companions.size(); ++i) {
                    if (companions[i] == param) {
                        // The varied parameter is not a companion.
                        skip = levels[i] != Level::Middle;
                    } else {
                        setParam(base, companions[i],
                                 paramLevelValue(companions[i], levels[i]));
                    }
                }
                if (skip) {
                    continue;
                }
                const SensitivityEntry entry = pinnedSensitivity(
                    scheme, param, base, config.processors);
                total.timeLow += entry.timeLow;
                total.timeHigh += entry.timeHigh;
                total.percentChange += entry.percentChange;
                ++count;
            }
        }
    }
    total.timeLow /= count;
    total.timeHigh /= count;
    total.percentChange /= count;
    return total;
}

std::vector<SensitivityEntry>
sensitivityTable(const SensitivityConfig &config)
{
    return sensitivityTable(config, campaign::CampaignOptions{});
}

std::vector<SensitivityEntry>
sensitivityTable(const SensitivityConfig &config,
                 const campaign::CampaignOptions &options,
                 campaign::CampaignReport *report)
{
    // Table 8 column order: the paper's four schemes only — the
    // extension family is not part of the Table 8 reproduction.
    constexpr std::array<Scheme, kNumPaperSchemes> column_order = {
        Scheme::SoftwareFlush, Scheme::NoCache, Scheme::Dragon,
        Scheme::Base,
    };

    // Each (parameter, scheme) cell — including its 27-point companion
    // grid in grid mode — is an independent evaluation; run the cells
    // across the pool, each writing its own pre-assigned slot so the
    // table is bit-identical to the serial loop.
    struct Cell
    {
        ParamId param;
        Scheme scheme;
    };
    std::vector<Cell> cells;
    cells.reserve(kNumParams * column_order.size());
    for (ParamId param : kAllParams) {
        for (Scheme scheme : column_order) {
            cells.push_back({param, scheme});
        }
    }
    obs::ProgressReporter progress("sensitivity", cells.size());
    const auto results = campaign::runCells(
        cells.size(), 3,
        [&](std::size_t i) {
            return campaign::CellKey("sensitivity")
                .add(paramName(cells[i].param))
                .add(schemeName(cells[i].scheme))
                .add(static_cast<std::uint64_t>(config.processors))
                .add(static_cast<std::uint64_t>(
                    config.averageOverGrid ? 1 : 0))
                .hash();
        },
        [&](std::size_t i) {
            const SensitivityEntry entry = parameterSensitivity(
                cells[i].scheme, cells[i].param, config);
            progress.tick();
            return std::vector<double>{
                entry.timeLow, entry.timeHigh, entry.percentChange};
        },
        options, report);

    std::vector<SensitivityEntry> table(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        table[i].param = cells[i].param;
        table[i].scheme = cells[i].scheme;
        table[i].timeLow = results[i][0];
        table[i].timeHigh = results[i][1];
        table[i].percentChange = results[i][2];
    }
    return table;
}

std::vector<SensitivityEntry>
rankedSensitivities(const std::vector<SensitivityEntry> &table,
                    Scheme scheme)
{
    std::vector<SensitivityEntry> ranked;
    for (const SensitivityEntry &entry : table) {
        if (entry.scheme == scheme) {
            ranked.push_back(entry);
        }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const SensitivityEntry &a, const SensitivityEntry &b) {
                  return std::abs(a.percentChange) >
                      std::abs(b.percentChange);
              });
    return ranked;
}

} // namespace swcc
