#include "core/scheme_evaluator.hh"

#include <stdexcept>

#include "core/obs/trace.hh"
#include "core/parallel.hh"
#include "core/per_instruction.hh"

namespace swcc
{

namespace
{

#if SWCC_OBS_ENABLED
/** Interns a span name once; safe to call on every evaluation. */
std::uint32_t
spanName(const char *name)
{
    return obs::tracer().intern(name);
}
#endif

} // namespace

BusSolution
evaluateBus(Scheme scheme, const WorkloadParams &params,
            unsigned processors)
{
    const BusCostModel costs;
    return evaluateBus(scheme, params, processors, costs);
}

BusSolution
evaluateBus(Scheme scheme, const WorkloadParams &params,
            unsigned processors, const BusCostModel &costs)
{
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    return solveBus(cost, processors);
}

NetworkSolution
evaluateNetwork(Scheme scheme, const WorkloadParams &params,
                unsigned stages)
{
    if (!schemeWorksOnNetwork(scheme)) {
        throw std::invalid_argument(
            "snoopy schemes need a broadcast bus; they cannot run on a "
            "multistage network");
    }
    const NetworkCostModel costs(stages);
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    return solveNetwork(cost, stages);
}

std::vector<BusSolution>
busPowerCurve(Scheme scheme, const WorkloadParams &params,
              unsigned max_processors)
{
#if SWCC_OBS_ENABLED
    static const std::uint32_t span = spanName("busPowerCurve");
    obs::ScopedSpan scoped(span);
#endif
    // Every processor count is an independent solve; slot i holds the
    // (i+1)-processor solution whatever the thread count.
    return parallelMap(max_processors, [&](std::size_t i) {
        return evaluateBus(scheme, params,
                           static_cast<unsigned>(i) + 1);
    });
}

std::vector<NetworkSolution>
networkPowerCurve(Scheme scheme, const WorkloadParams &params,
                  unsigned max_stages)
{
#if SWCC_OBS_ENABLED
    static const std::uint32_t span = spanName("networkPowerCurve");
    obs::ScopedSpan scoped(span);
#endif
    return parallelMap(max_stages, [&](std::size_t i) {
        return evaluateNetwork(scheme, params,
                               static_cast<unsigned>(i) + 1);
    });
}

} // namespace swcc
