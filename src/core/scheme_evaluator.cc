#include "core/scheme_evaluator.hh"

#include <cstdint>
#include <stdexcept>

#include "core/campaign/faults.hh"
#include "core/obs/trace.hh"
#include "core/per_instruction.hh"
#include "core/solver_cache.hh"

namespace swcc
{

namespace
{

#if SWCC_OBS_ENABLED
/** Interns a span name once; safe to call on every evaluation. */
std::uint32_t
spanName(const char *name)
{
    return obs::tracer().intern(name);
}
#endif

SolverMemo<BusSolution> &
busMemo()
{
    static SolverMemo<BusSolution> memo;
    return memo;
}

SolverMemo<std::vector<BusSolution>> &
busCurveMemo()
{
    static SolverMemo<std::vector<BusSolution>> memo;
    return memo;
}

SolverMemo<NetworkSolution> &
networkMemo()
{
    static SolverMemo<NetworkSolution> memo;
    return memo;
}

SolverMemo<std::vector<NetworkSolution>> &
networkCurveMemo()
{
    static SolverMemo<std::vector<NetworkSolution>> memo;
    return memo;
}

[[maybe_unused]] const bool memo_clearers_registered = [] {
    registerSolverCacheClearer(+[] { busMemo().clear(); });
    registerSolverCacheClearer(+[] { busCurveMemo().clear(); });
    registerSolverCacheClearer(+[] { networkMemo().clear(); });
    registerSolverCacheClearer(+[] { networkCurveMemo().clear(); });
    return true;
}();

/**
 * True when results may be served from / stored into the memo. Fault
 * injection must reach the solvers' checkFault() sites, so an armed
 * fault plan bypasses the cache entirely.
 */
bool
memoUsable()
{
    return solverCacheEnabled() && !campaign::faultsActive();
}

SolverCacheKey
busPointKey(Scheme scheme, const WorkloadParams &params,
            unsigned processors, const BusCostModel &costs)
{
    return SolverKeyBuilder("bus")
        .add(schemeName(scheme))
        .add(params)
        .add(std::uint64_t{processors})
        .add(costs)
        .key();
}

SolverCacheKey
networkPointKey(Scheme scheme, const WorkloadParams &params,
                unsigned stages)
{
    // The cost table is NetworkCostModel(stages), fully determined by
    // the stage count already in the key.
    return SolverKeyBuilder("network")
        .add(schemeName(scheme))
        .add(params)
        .add(std::uint64_t{stages})
        .key();
}

} // namespace

BusSolution
evaluateBus(Scheme scheme, const WorkloadParams &params,
            unsigned processors)
{
    const BusCostModel costs;
    return evaluateBus(scheme, params, processors, costs);
}

BusSolution
evaluateBus(Scheme scheme, const WorkloadParams &params,
            unsigned processors, const BusCostModel &costs)
{
    const bool memo = memoUsable();
    BusSolution sol;
    SolverCacheKey key;
    if (memo) {
        key = busPointKey(scheme, params, processors, costs);
        if (busMemo().lookup(key, sol)) {
            return sol;
        }
    }
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    sol = solveBus(cost, processors);
    if (memo) {
        busMemo().insert(key, sol);
    }
    return sol;
}

NetworkSolution
evaluateNetwork(Scheme scheme, const WorkloadParams &params,
                unsigned stages)
{
    if (!schemeWorksOnNetwork(scheme)) {
        throw std::invalid_argument(
            "snoopy schemes need a broadcast bus; they cannot run on a "
            "multistage network");
    }
    const bool memo = memoUsable();
    NetworkSolution sol;
    SolverCacheKey key;
    if (memo) {
        key = networkPointKey(scheme, params, stages);
        if (networkMemo().lookup(key, sol)) {
            return sol;
        }
    }
    const NetworkCostModel costs(stages);
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    sol = solveNetwork(cost, stages);
    if (memo) {
        networkMemo().insert(key, sol);
    }
    return sol;
}

std::vector<BusSolution>
evaluateBusCurve(Scheme scheme, const WorkloadParams &params,
                 unsigned max_processors)
{
    const BusCostModel costs;
    return evaluateBusCurve(scheme, params, max_processors, costs);
}

std::vector<BusSolution>
evaluateBusCurve(Scheme scheme, const WorkloadParams &params,
                 unsigned max_processors, const BusCostModel &costs)
{
    const bool memo = memoUsable();
    std::vector<BusSolution> curve;
    SolverCacheKey key;
    if (memo) {
        key = SolverKeyBuilder("bus-curve")
                  .add(schemeName(scheme))
                  .add(params)
                  .add(std::uint64_t{max_processors})
                  .add(costs)
                  .key();
        if (busCurveMemo().lookup(key, curve)) {
            return curve;
        }
    }
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    curve = solveBusCurve(cost, max_processors);
    if (memo) {
        busCurveMemo().insert(key, curve);
        // Seed the per-point memo too: the curve's element i is the
        // bitwise i+1-processor solution, so later single-point
        // evaluations of the same workload hit without solving.
        for (std::size_t i = 0; i < curve.size(); ++i) {
            busMemo().insert(
                busPointKey(scheme, params,
                            static_cast<unsigned>(i) + 1, costs),
                curve[i]);
        }
    }
    return curve;
}

std::vector<NetworkSolution>
evaluateNetworkCurve(Scheme scheme, const WorkloadParams &params,
                     unsigned max_stages)
{
    if (!schemeWorksOnNetwork(scheme)) {
        throw std::invalid_argument(
            "snoopy schemes need a broadcast bus; they cannot run on a "
            "multistage network");
    }
    const bool memo = memoUsable();
    std::vector<NetworkSolution> curve;
    SolverCacheKey key;
    if (memo) {
        key = SolverKeyBuilder("network-curve")
                  .add(schemeName(scheme))
                  .add(params)
                  .add(std::uint64_t{max_stages})
                  .key();
        if (networkCurveMemo().lookup(key, curve)) {
            return curve;
        }
    }
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    std::vector<PerInstructionCost> costs;
    costs.reserve(max_stages);
    for (unsigned stages = 1; stages <= max_stages; ++stages) {
        const NetworkCostModel model(stages);
        costs.push_back(perInstructionCost(freqs, model));
    }
    curve = solveNetworkCurve(costs, 1);
    if (memo) {
        networkCurveMemo().insert(key, curve);
        for (std::size_t i = 0; i < curve.size(); ++i) {
            networkMemo().insert(
                networkPointKey(scheme, params,
                                static_cast<unsigned>(i) + 1),
                curve[i]);
        }
    }
    return curve;
}

std::vector<BusSolution>
busPowerCurve(Scheme scheme, const WorkloadParams &params,
              unsigned max_processors)
{
#if SWCC_OBS_ENABLED
    static const std::uint32_t span = spanName("busPowerCurve");
    obs::ScopedSpan scoped(span);
#endif
    // One O(N) recursion replaces the old N independent solves; slot i
    // holds the (i+1)-processor solution whatever the thread count.
    return evaluateBusCurve(scheme, params, max_processors);
}

std::vector<NetworkSolution>
networkPowerCurve(Scheme scheme, const WorkloadParams &params,
                  unsigned max_stages)
{
#if SWCC_OBS_ENABLED
    static const std::uint32_t span = spanName("networkPowerCurve");
    obs::ScopedSpan scoped(span);
#endif
    return evaluateNetworkCurve(scheme, params, max_stages);
}

} // namespace swcc
