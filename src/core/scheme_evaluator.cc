#include "core/scheme_evaluator.hh"

#include <stdexcept>

#include "core/per_instruction.hh"

namespace swcc
{

BusSolution
evaluateBus(Scheme scheme, const WorkloadParams &params,
            unsigned processors)
{
    const BusCostModel costs;
    return evaluateBus(scheme, params, processors, costs);
}

BusSolution
evaluateBus(Scheme scheme, const WorkloadParams &params,
            unsigned processors, const BusCostModel &costs)
{
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    return solveBus(cost, processors);
}

NetworkSolution
evaluateNetwork(Scheme scheme, const WorkloadParams &params,
                unsigned stages)
{
    if (!schemeWorksOnNetwork(scheme)) {
        throw std::invalid_argument(
            "snoopy schemes need a broadcast bus; they cannot run on a "
            "multistage network");
    }
    const NetworkCostModel costs(stages);
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    return solveNetwork(cost, stages);
}

std::vector<BusSolution>
busPowerCurve(Scheme scheme, const WorkloadParams &params,
              unsigned max_processors)
{
    std::vector<BusSolution> curve;
    curve.reserve(max_processors);
    for (unsigned n = 1; n <= max_processors; ++n) {
        curve.push_back(evaluateBus(scheme, params, n));
    }
    return curve;
}

std::vector<NetworkSolution>
networkPowerCurve(Scheme scheme, const WorkloadParams &params,
                  unsigned max_stages)
{
    std::vector<NetworkSolution> curve;
    curve.reserve(max_stages);
    for (unsigned s = 1; s <= max_stages; ++s) {
        curve.push_back(evaluateNetwork(scheme, params, s));
    }
    return curve;
}

} // namespace swcc
