#include "core/scheme_evaluator.hh"

#include <stdexcept>

#include "core/parallel.hh"
#include "core/per_instruction.hh"

namespace swcc
{

BusSolution
evaluateBus(Scheme scheme, const WorkloadParams &params,
            unsigned processors)
{
    const BusCostModel costs;
    return evaluateBus(scheme, params, processors, costs);
}

BusSolution
evaluateBus(Scheme scheme, const WorkloadParams &params,
            unsigned processors, const BusCostModel &costs)
{
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    return solveBus(cost, processors);
}

NetworkSolution
evaluateNetwork(Scheme scheme, const WorkloadParams &params,
                unsigned stages)
{
    if (!schemeWorksOnNetwork(scheme)) {
        throw std::invalid_argument(
            "snoopy schemes need a broadcast bus; they cannot run on a "
            "multistage network");
    }
    const NetworkCostModel costs(stages);
    const FrequencyVector freqs = operationFrequencies(scheme, params);
    const PerInstructionCost cost = perInstructionCost(freqs, costs);
    return solveNetwork(cost, stages);
}

std::vector<BusSolution>
busPowerCurve(Scheme scheme, const WorkloadParams &params,
              unsigned max_processors)
{
    // Every processor count is an independent solve; slot i holds the
    // (i+1)-processor solution whatever the thread count.
    return parallelMap(max_processors, [&](std::size_t i) {
        return evaluateBus(scheme, params,
                           static_cast<unsigned>(i) + 1);
    });
}

std::vector<NetworkSolution>
networkPowerCurve(Scheme scheme, const WorkloadParams &params,
                  unsigned max_stages)
{
    return parallelMap(max_stages, [&](std::size_t i) {
        return evaluateNetwork(scheme, params,
                               static_cast<unsigned>(i) + 1);
    });
}

} // namespace swcc
