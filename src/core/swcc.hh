/**
 * @file
 * Umbrella header for the Owicki-Agarwal software cache coherence
 * performance library.
 *
 * Quick start:
 * @code
 * #include "core/swcc.hh"
 *
 * swcc::WorkloadParams params = swcc::middleParams();
 * swcc::BusSolution sol =
 *     swcc::evaluateBus(swcc::Scheme::SoftwareFlush, params, 16);
 * std::cout << sol.processingPower << '\n';
 * @endcode
 */

#ifndef SWCC_CORE_SWCC_HH
#define SWCC_CORE_SWCC_HH

#include "core/breakdown.hh"
#include "core/bus_model.hh"
#include "core/cost_model.hh"
#include "core/frequency_model.hh"
#include "core/directory_model.hh"
#include "core/invalidate_model.hh"
#include "core/network_model.hh"
#include "core/packet_network_model.hh"
#include "core/operation.hh"
#include "core/parallel.hh"
#include "core/per_instruction.hh"
#include "core/report.hh"
#include "core/scheme_evaluator.hh"
#include "core/sensitivity.hh"
#include "core/solver_cache.hh"
#include "core/sweep.hh"
#include "core/types.hh"
#include "core/workload.hh"

#endif // SWCC_CORE_SWCC_HH
