/**
 * @file
 * Parameter sweep utilities producing the data series behind the
 * paper's figures.
 */

#ifndef SWCC_CORE_SWEEP_HH
#define SWCC_CORE_SWEEP_HH

#include <string>
#include <vector>

#include "core/types.hh"
#include "core/workload.hh"

namespace swcc
{

/** One (x, y) sample of a figure series. */
struct SeriesPoint
{
    double x = 0.0;
    double y = 0.0;
};

/** A labelled data series (one curve of a figure). */
struct Series
{
    std::string label;
    std::vector<SeriesPoint> points;

    /** Largest y value in the series (0 if empty). */
    double maxY() const;
    /** y at the largest x (0 if empty). */
    double finalY() const;
};

/** @p count evenly spaced values from @p lo to @p hi inclusive. */
std::vector<double> linspace(double lo, double hi, std::size_t count);

/** @p count log-spaced values from @p lo to @p hi inclusive (lo > 0). */
std::vector<double> logspace(double lo, double hi, std::size_t count);

/**
 * Bus processing power vs number of processors (Figures 4-6 curves).
 */
Series busPowerSeries(Scheme scheme, const WorkloadParams &params,
                      unsigned max_processors);

/**
 * The dotted "theoretical upper bound" line of the paper's figures:
 * processing power n for n processors.
 */
Series idealPowerSeries(unsigned max_processors);

/**
 * Bus processing power vs apl at a fixed machine size (Figures 8-9).
 *
 * @param apl_values Values of apl to sweep (each >= 1).
 */
Series aplPowerSeries(Scheme scheme, WorkloadParams params,
                      const std::vector<double> &apl_values,
                      unsigned processors);

/**
 * Network processing power vs processors 2^1..2^max_stages (Figure 10).
 */
Series networkPowerSeries(Scheme scheme, const WorkloadParams &params,
                          unsigned max_stages);

/**
 * Network compute-fraction U vs transaction rate for a fixed message
 * size (one curve of Figure 11).
 *
 * @param message_words Message size in words; network time per message
 *        is message_words + 2 * stages.
 * @param rates Transactions per CPU-busy cycle to sweep.
 */
Series networkUtilizationSeries(unsigned stages, double message_words,
                                const std::vector<double> &rates);

} // namespace swcc

#endif // SWCC_CORE_SWEEP_HH
