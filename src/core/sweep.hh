/**
 * @file
 * Parameter sweep utilities producing the data series behind the
 * paper's figures.
 */

#ifndef SWCC_CORE_SWEEP_HH
#define SWCC_CORE_SWEEP_HH

#include <string>
#include <vector>

#include "core/campaign/campaign.hh"
#include "core/types.hh"
#include "core/workload.hh"

namespace swcc
{

/** One (x, y) sample of a figure series. */
struct SeriesPoint
{
    double x = 0.0;
    double y = 0.0;
};

/** A labelled data series (one curve of a figure). */
struct Series
{
    std::string label;
    std::vector<SeriesPoint> points;

    /** Largest y value in the series (0 if empty). */
    double maxY() const;
    /** y at the largest x (0 if empty). */
    double finalY() const;
};

/** @p count evenly spaced values from @p lo to @p hi inclusive. */
std::vector<double> linspace(double lo, double hi, std::size_t count);

/** @p count log-spaced values from @p lo to @p hi inclusive (lo > 0). */
std::vector<double> logspace(double lo, double hi, std::size_t count);

/**
 * Bus processing power vs number of processors (Figures 4-6 curves).
 */
Series busPowerSeries(Scheme scheme, const WorkloadParams &params,
                      unsigned max_processors);

/**
 * The dotted "theoretical upper bound" line of the paper's figures:
 * processing power n for n processors.
 */
Series idealPowerSeries(unsigned max_processors);

/**
 * Bus processing power vs apl at a fixed machine size (Figures 8-9).
 *
 * @param apl_values Values of apl to sweep (each >= 1).
 */
Series aplPowerSeries(Scheme scheme, WorkloadParams params,
                      const std::vector<double> &apl_values,
                      unsigned processors);

/**
 * Network processing power vs processors 2^1..2^max_stages (Figure 10).
 */
Series networkPowerSeries(Scheme scheme, const WorkloadParams &params,
                          unsigned max_stages);

/**
 * Network compute-fraction U vs transaction rate for a fixed message
 * size (one curve of Figure 11).
 *
 * @param message_words Message size in words; network time per message
 *        is message_words + 2 * stages.
 * @param rates Transactions per CPU-busy cycle to sweep.
 */
Series networkUtilizationSeries(unsigned stages, double message_words,
                                const std::vector<double> &rates);

/** One row of a campaign sweep grid: x plus one power per scheme. */
struct SweepRow
{
    double value = 0.0;
    /** Bus processing power, parallel to the schemes argument. */
    std::vector<double> power;
};

/**
 * The `swcc sweep` grid as a resumable campaign: one journaled cell
 * per swept value, each evaluating every scheme in @p schemes.
 *
 * @param param     Parameter to sweep (ignored when @p sweep_apl).
 * @param sweep_apl Sweep apl directly instead of a Table 2 parameter.
 * @param values    Swept parameter values, one cell per value.
 * @param base      Remaining workload parameters.
 * @param processors Bus system size.
 * @param schemes   Schemes evaluated per cell (row width).
 * @param options   Journal / resume / retry policy (campaign.hh).
 * @param report    Campaign accounting when non-null.
 */
std::vector<SweepRow>
sweepPowerGrid(ParamId param, bool sweep_apl,
               const std::vector<double> &values,
               const WorkloadParams &base, unsigned processors,
               const std::vector<Scheme> &schemes,
               const campaign::CampaignOptions &options,
               campaign::CampaignReport *report = nullptr);

} // namespace swcc

#endif // SWCC_CORE_SWEEP_HH
