#include "core/invalidate_model.hh"

#include <algorithm>
#include <stdexcept>

#include "core/cost_model.hh"
#include "core/per_instruction.hh"

namespace swcc
{

void
InvalidateModelConfig::validate() const
{
    if (!(rerefFraction >= 0.0 && rerefFraction <= 1.0)) {
        throw std::invalid_argument("rerefFraction must lie in [0, 1]");
    }
    if (!(firstWriteFraction >= 0.0 && firstWriteFraction <= 1.0)) {
        throw std::invalid_argument(
            "firstWriteFraction must lie in [0, 1]");
    }
}

double
InvalidateModelConfig::firstWriteFromRun(const WorkloadParams &params)
{
    const double writes_per_run = params.wr * params.apl;
    if (writes_per_run <= 1.0) {
        return 1.0;
    }
    return 1.0 / writes_per_run;
}

FrequencyVector
invalidateFrequencies(const WorkloadParams &p,
                      const InvalidateModelConfig &config)
{
    p.validate();
    config.validate();

    FrequencyVector freqs;
    freqs.set(Operation::InstrExec, 1.0);

    // Invalidation broadcasts: the first write of each run that finds
    // remote sharers.
    const double invalidations =
        p.ls * p.shd * p.wr * p.opres * config.firstWriteFraction;

    // Coherence misses from destroyed copies; the writer holds the
    // block dirty, so they are cache-supplied.
    const double coherence =
        invalidations * p.nshd * config.rerefFraction;

    const double from_cache = p.shd * (1.0 - p.oclean);
    const double mem_miss = p.ls * p.msdat * (1.0 - from_cache) +
        p.mains;
    const double cache_miss = p.ls * p.msdat * from_cache + coherence;

    freqs.set(Operation::CleanMissMem, mem_miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissMem, mem_miss * p.md);
    freqs.set(Operation::CleanMissCache, cache_miss * (1.0 - p.md));
    freqs.set(Operation::DirtyMissCache, cache_miss * p.md);
    freqs.set(Operation::WriteBroadcast, invalidations);
    freqs.set(Operation::CycleSteal, invalidations * p.nshd);
    return freqs;
}

BusSolution
evaluateInvalidateBus(const WorkloadParams &params, unsigned processors,
                      const InvalidateModelConfig &config)
{
    const BusCostModel costs;
    const PerInstructionCost cost =
        perInstructionCost(invalidateFrequencies(params, config), costs);
    return solveBus(cost, processors);
}

} // namespace swcc
