#include "core/parallel.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace swcc
{

namespace
{

/**
 * True while this thread is executing inside a parallel loop (worker
 * or participating caller); nested loops then run inline.
 */
thread_local bool tls_in_parallel = false;

struct InParallelScope
{
    InParallelScope() { tls_in_parallel = true; }
    ~InParallelScope() { tls_in_parallel = false; }
};

std::atomic<unsigned> thread_override{0};

/** SWCC_THREADS as a lane count; 0 when unset or not a positive int. */
unsigned
envThreads()
{
    const char *env = std::getenv("SWCC_THREADS");
    if (env == nullptr || *env == '\0') {
        return 0;
    }
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || parsed == 0 || parsed > 4096) {
        return 0; // Nonsense values fall back to the default.
    }
    return static_cast<unsigned>(parsed);
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned lanes = std::max(1u, threads);
    workers_.reserve(lanes - 1);
    for (unsigned i = 1; i < lanes; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::workerLoop()
{
    InParallelScope scope;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [&] {
            return stop_ || (jobFn_ != nullptr && jobSeq_ != seen);
        });
        if (stop_) {
            return;
        }
        seen = jobSeq_;
        const auto *fn = jobFn_;
        ++workersBusy_;
        lock.unlock();
        drainJob(*fn);
        lock.lock();
        if (--workersBusy_ == 0) {
            done_.notify_all();
        }
    }
}

void
ThreadPool::drainJob(const std::function<void(std::size_t)> &fn)
{
    const std::size_t n = jobSize_;
    const std::size_t chunk = jobChunk_;
    for (;;) {
        const std::size_t begin =
            cursor_.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) {
            return;
        }
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
            if (failed_.load(std::memory_order_relaxed)) {
                return;
            }
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_) {
                    error_ = std::current_exception();
                }
                failed_.store(true, std::memory_order_relaxed);
                return;
            }
        }
    }
}

void
ThreadPool::forEach(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0) {
        return;
    }
    if (workers_.empty() || n == 1 || tls_in_parallel) {
        // Serial path: identical iteration order, no scheduling at all.
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }
    std::lock_guard<std::mutex> job_lock(jobMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobFn_ = &fn;
        jobSize_ = n;
        // Aim for ~8 steals per lane so uneven cells rebalance without
        // the cursor becoming contended.
        jobChunk_ = std::max<std::size_t>(
            1, n / (static_cast<std::size_t>(size()) * 8));
        cursor_.store(0, std::memory_order_relaxed);
        failed_.store(false, std::memory_order_relaxed);
        error_ = nullptr;
        ++jobSeq_;
    }
    wake_.notify_all();
    {
        InParallelScope scope;
        drainJob(fn);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return workersBusy_ == 0; });
    // Late-waking workers see a null job and keep sleeping; nothing may
    // touch fn once forEach returns.
    jobFn_ = nullptr;
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

unsigned
hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
setThreadCount(unsigned threads)
{
    thread_override.store(threads, std::memory_order_relaxed);
}

unsigned
configuredThreads()
{
    const unsigned forced = thread_override.load(std::memory_order_relaxed);
    if (forced != 0) {
        return forced;
    }
    const unsigned env = envThreads();
    if (env != 0) {
        return env;
    }
    return hardwareThreads();
}

ThreadPool &
globalPool()
{
    static std::mutex pool_mutex;
    static std::unique_ptr<ThreadPool> pool;
    std::lock_guard<std::mutex> lock(pool_mutex);
    const unsigned want = configuredThreads();
    if (!pool || pool->size() != want) {
        pool.reset(); // Join the old workers before spawning anew.
        pool = std::make_unique<ThreadPool>(want);
    }
    return *pool;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n <= 1 || tls_in_parallel || configuredThreads() <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }
    globalPool().forEach(n, fn);
}

} // namespace swcc
