#include "core/parallel.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/obs/obs.hh"

namespace swcc
{

namespace
{

std::uint64_t
elapsedNs(std::chrono::steady_clock::time_point since)
{
    const auto delta = std::chrono::steady_clock::now() - since;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(delta)
            .count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

} // namespace

WorkerStats
PoolStats::totals() const
{
    WorkerStats sum;
    for (const WorkerStats &lane : lanes) {
        sum.tasksExecuted += lane.tasksExecuted;
        sum.chunksStolen += lane.chunksStolen;
        sum.idleNs += lane.idleNs;
    }
    return sum;
}

namespace
{

/**
 * True while this thread is executing inside a parallel loop (worker
 * or participating caller); nested loops then run inline.
 */
thread_local bool tls_in_parallel = false;

struct InParallelScope
{
    InParallelScope() { tls_in_parallel = true; }
    ~InParallelScope() { tls_in_parallel = false; }
};

std::atomic<unsigned> thread_override{0};

/** SWCC_THREADS as a lane count; 0 when unset or not a positive int. */
unsigned
envThreads()
{
    const char *env = std::getenv("SWCC_THREADS");
    if (env == nullptr || *env == '\0') {
        return 0;
    }
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || parsed == 0 || parsed > 4096) {
        return 0; // Nonsense values fall back to the default.
    }
    return static_cast<unsigned>(parsed);
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned lanes = std::max(1u, threads);
    laneCounters_ = std::make_unique<LaneCounters[]>(lanes);
    workers_.reserve(lanes - 1);
    for (unsigned i = 1; i < lanes; ++i) {
        workers_.emplace_back([this, i] { workerLoop(i); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::workerLoop(unsigned lane)
{
    InParallelScope scope;
    LaneCounters &counters = laneCounters_[lane];
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const auto idleStart = std::chrono::steady_clock::now();
        wake_.wait(lock, [&] {
            return stop_ || (jobFn_ != nullptr && jobSeq_ != seen);
        });
        counters.idleNs.fetch_add(elapsedNs(idleStart),
                                  std::memory_order_relaxed);
        if (stop_) {
            return;
        }
        seen = jobSeq_;
        const auto *fn = jobFn_;
        ++workersBusy_;
        lock.unlock();
        drainJob(lane, *fn);
        lock.lock();
        if (--workersBusy_ == 0) {
            done_.notify_all();
        }
    }
}

void
ThreadPool::drainJob(unsigned lane,
                     const std::function<void(std::size_t)> &fn)
{
    const std::size_t n = jobSize_;
    const std::size_t chunk = jobChunk_;
    LaneCounters &counters = laneCounters_[lane];

#if SWCC_OBS_ENABLED
    obs::TraceRecorder &trc = obs::tracer();
    const bool tracing = trc.enabled();
    std::uint32_t chunkName = 0;
    std::uint32_t stealName = 0;
    if (tracing) {
        thread_local bool named = false;
        if (!named) {
            named = true;
            trc.setThreadName(
                obs::TraceRecorder::kWallPid, trc.callerTid(),
                lane == 0 ? std::string("caller")
                          : "pool-worker-" + std::to_string(lane));
        }
        chunkName = trc.intern("pool.chunk");
        stealName = trc.intern("pool.steal");
    }
#endif

    for (;;) {
        const std::size_t begin =
            cursor_.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) {
            return;
        }
        const std::size_t end = std::min(n, begin + chunk);
        counters.chunks.fetch_add(1, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
        double chunkStart = 0.0;
        if (tracing) {
            chunkStart = trc.nowUs();
            trc.recordInstant(stealName, obs::TraceRecorder::kWallPid,
                              trc.callerTid(), chunkStart);
        }
#endif
        std::size_t executed = 0;
        for (std::size_t i = begin; i < end; ++i) {
            if (failed_.load(std::memory_order_relaxed)) {
                break;
            }
            try {
                fn(i);
                ++executed;
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_) {
                    error_ = std::current_exception();
                }
                failed_.store(true, std::memory_order_relaxed);
                break;
            }
        }
        counters.tasks.fetch_add(executed, std::memory_order_relaxed);
#if SWCC_OBS_ENABLED
        if (tracing) {
            trc.recordComplete(chunkName, obs::TraceRecorder::kWallPid,
                               trc.callerTid(), chunkStart,
                               trc.nowUs() - chunkStart);
        }
#endif
        if (failed_.load(std::memory_order_relaxed)) {
            return;
        }
    }
}

void
ThreadPool::forEach(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0) {
        return;
    }
    if (workers_.empty() || n == 1 || tls_in_parallel) {
        // Serial path: identical iteration order, no scheduling at all.
        jobs_.fetch_add(1, std::memory_order_relaxed);
        std::size_t executed = 0;
        try {
            for (std::size_t i = 0; i < n; ++i) {
                fn(i);
                ++executed;
            }
        } catch (...) {
            laneCounters_[0].tasks.fetch_add(
                executed, std::memory_order_relaxed);
            throw;
        }
        laneCounters_[0].tasks.fetch_add(executed,
                                         std::memory_order_relaxed);
        return;
    }
    jobs_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> job_lock(jobMutex_);

    // Min-work-per-lane threshold: run a serial prefix on the caller
    // until ~1 ms of work has accumulated. A job that finishes inside
    // the budget never wakes a worker, so sub-millisecond jobs (the
    // 0.4 ms Table 8 grid) cost exactly the serial path instead of a
    // round of wakes and steals for a 1.0x "speedup".
    constexpr std::chrono::nanoseconds kInlineBudget{1'000'000};
    std::size_t next = 0;
    {
        InParallelScope scope;
        LaneCounters &counters = laneCounters_[0];
        // The prefix is one cursor claim by lane 0 for accounting.
        counters.chunks.fetch_add(1, std::memory_order_relaxed);
        const auto start = std::chrono::steady_clock::now();
        std::size_t executed = 0;
        try {
            while (next < n) {
                fn(next);
                ++next;
                ++executed;
                if (std::chrono::steady_clock::now() - start >=
                    kInlineBudget) {
                    break;
                }
            }
        } catch (...) {
            counters.tasks.fetch_add(executed,
                                     std::memory_order_relaxed);
            throw;
        }
        counters.tasks.fetch_add(executed, std::memory_order_relaxed);
    }
    if (next >= n) {
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobFn_ = &fn;
        jobSize_ = n;
        // Aim for ~8 steals per lane so uneven cells rebalance without
        // the cursor becoming contended.
        jobChunk_ = std::max<std::size_t>(
            1, (n - next) / (static_cast<std::size_t>(size()) * 8));
        cursor_.store(next, std::memory_order_relaxed);
        failed_.store(false, std::memory_order_relaxed);
        error_ = nullptr;
        ++jobSeq_;
    }
    wake_.notify_all();
    {
        InParallelScope scope;
        drainJob(0, fn);
    }
    const auto idleStart = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return workersBusy_ == 0; });
    laneCounters_[0].idleNs.fetch_add(elapsedNs(idleStart),
                                      std::memory_order_relaxed);
    // Late-waking workers see a null job and keep sleeping; nothing may
    // touch fn once forEach returns.
    jobFn_ = nullptr;
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

PoolStats
ThreadPool::stats() const
{
    PoolStats out;
    out.jobs = jobs_.load(std::memory_order_relaxed);
    out.lanes.resize(size());
    for (unsigned lane = 0; lane < size(); ++lane) {
        const LaneCounters &counters = laneCounters_[lane];
        out.lanes[lane].tasksExecuted =
            counters.tasks.load(std::memory_order_relaxed);
        out.lanes[lane].chunksStolen =
            counters.chunks.load(std::memory_order_relaxed);
        out.lanes[lane].idleNs =
            counters.idleNs.load(std::memory_order_relaxed);
    }
    return out;
}

unsigned
hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
setThreadCount(unsigned threads)
{
    thread_override.store(threads, std::memory_order_relaxed);
}

unsigned
configuredThreads()
{
    const unsigned forced = thread_override.load(std::memory_order_relaxed);
    if (forced != 0) {
        return forced;
    }
    const unsigned env = envThreads();
    if (env != 0) {
        return env;
    }
    return hardwareThreads();
}

namespace
{

std::mutex pool_mutex;
std::unique_ptr<ThreadPool> global_pool;

} // namespace

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(pool_mutex);
    const unsigned want = configuredThreads();
    if (!global_pool || global_pool->size() != want) {
        // Join the old workers before spawning anew.
        global_pool.reset();
        global_pool = std::make_unique<ThreadPool>(want);
        // First pool: make `--metrics-out` dumps include pool.* gauges
        // without the entry points having to know about the pool.
        static bool hook_registered = false;
        if (!hook_registered) {
            hook_registered = true;
            obs::addFinalizeHook(recordPoolMetrics);
        }
    }
    return *global_pool;
}

void
recordPoolMetrics()
{
    PoolStats stats;
    unsigned lanes = 0;
    {
        std::lock_guard<std::mutex> lock(pool_mutex);
        if (!global_pool) {
            return;
        }
        stats = global_pool->stats();
        lanes = global_pool->size();
    }
    const WorkerStats totals = stats.totals();
    obs::MetricsRegistry &registry = obs::metrics();
    registry.gauge("pool.lanes").set(static_cast<double>(lanes));
    registry.gauge("pool.jobs").set(static_cast<double>(stats.jobs));
    registry.gauge("pool.tasks_executed")
        .set(static_cast<double>(totals.tasksExecuted));
    registry.gauge("pool.chunks_stolen")
        .set(static_cast<double>(totals.chunksStolen));
    registry.gauge("pool.idle_seconds")
        .set(static_cast<double>(totals.idleNs) / 1e9);
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n <= 1 || tls_in_parallel || configuredThreads() <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }
    globalPool().forEach(n, fn);
}

namespace
{

/** One deferred re-attempt of a failed index. */
struct PendingRetry
{
    std::size_t index;
    unsigned attempt; ///< Attempt number about to run (1-based).
    std::chrono::steady_clock::time_point due;
};

} // namespace

ResilienceStats
parallelForResilient(std::size_t n,
                     const std::function<void(std::size_t)> &fn,
                     const TaskPolicy &policy,
                     std::vector<TaskOutcome> *outcomes,
                     std::size_t grain)
{
    if (outcomes != nullptr) {
        outcomes->assign(n, TaskOutcome::Done);
    }
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> poisoned{0};
    std::atomic<std::uint64_t> timeouts{0};

    std::mutex retry_mutex;
    std::vector<PendingRetry> retry_queue;

    const auto backoffDelayMs = [&policy](unsigned attempt) {
        std::uint64_t delay = policy.backoffBaseMs;
        for (unsigned d = 0; d < attempt; ++d) {
            delay = std::min(delay * 2, policy.backoffCapMs);
        }
        return std::min(delay, policy.backoffCapMs);
    };

    // One attempt of one index. On a retryable failure the index is
    // requeued with a backoff deadline instead of sleeping here — a
    // pool lane must never park while holding a slice of the job.
    const auto attemptIndex = [&](std::size_t i, unsigned attempt) {
        bool failed = false;
        const bool timed = policy.timeoutMs > 0;
        std::chrono::steady_clock::time_point start;
        if (timed) {
            start = std::chrono::steady_clock::now();
        }
        try {
            fn(i);
        } catch (const FatalTaskError &) {
            throw; // Job-fatal: the pool rethrows to the caller.
        } catch (const TaskTimeoutError &) {
            timeouts.fetch_add(1, std::memory_order_relaxed);
            failed = true;
        } catch (...) {
            failed = true;
        }
        if (!failed && timed) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (static_cast<std::uint64_t>(elapsed > 0 ? elapsed : 0) >
                policy.timeoutMs) {
                // Over budget: the attempt's result is distrusted —
                // a hung-then-finished cell and a failed cell get the
                // same degradation path.
                timeouts.fetch_add(1, std::memory_order_relaxed);
                failed = true;
            }
        }
        if (!failed) {
            return;
        }
        if (attempt >= policy.maxRetries) {
            poisoned.fetch_add(1, std::memory_order_relaxed);
            if (outcomes != nullptr) {
                (*outcomes)[i] = TaskOutcome::Poisoned;
            }
            return;
        }
        retries.fetch_add(1, std::memory_order_relaxed);
        const auto due = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(backoffDelayMs(attempt));
        std::lock_guard<std::mutex> lock(retry_mutex);
        retry_queue.push_back({i, attempt + 1, due});
    };

    // Wave 0: every index attempted once, scheduled in batches of
    // `grain` consecutive indices so cheap cells amortise the steal.
    const std::size_t batch = std::max<std::size_t>(1, grain);
    const std::size_t batches = (n + batch - 1) / batch;
    parallelFor(batches, [&](std::size_t b) {
        const std::size_t lo = b * batch;
        const std::size_t hi = std::min(n, lo + batch);
        for (std::size_t i = lo; i < hi; ++i) {
            attemptIndex(i, 0);
        }
    });

    // Retry waves: the caller sleeps out the earliest deadline, then
    // re-runs every due index across the pool. Pool lanes stay busy
    // with real attempts the whole time.
    for (;;) {
        std::vector<PendingRetry> due_wave;
        {
            std::unique_lock<std::mutex> lock(retry_mutex);
            if (retry_queue.empty()) {
                break;
            }
            auto earliest = retry_queue.front().due;
            for (const PendingRetry &r : retry_queue) {
                earliest = std::min(earliest, r.due);
            }
            lock.unlock();
            std::this_thread::sleep_until(earliest);
            lock.lock();
            const auto now = std::chrono::steady_clock::now();
            std::vector<PendingRetry> later;
            for (PendingRetry &r : retry_queue) {
                (r.due <= now ? due_wave : later).push_back(r);
            }
            retry_queue.swap(later);
        }
        parallelFor(due_wave.size(), [&](std::size_t k) {
            attemptIndex(due_wave[k].index, due_wave[k].attempt);
        });
    }

    ResilienceStats stats;
    stats.retries = retries.load(std::memory_order_relaxed);
    stats.poisoned = poisoned.load(std::memory_order_relaxed);
    stats.timeouts = timeouts.load(std::memory_order_relaxed);
    return stats;
}

} // namespace swcc
