#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/campaign/atomic_file.hh"

namespace swcc
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty()) {
        throw std::invalid_argument("a table needs at least one column");
    }
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument(
            "row has " + std::to_string(cells.size()) +
            " cells, table has " + std::to_string(headers_.size()) +
            " columns");
    }
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        widths[i] = headers_[i].size();
    }
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size()) {
                os << std::string(widths[i] - row[i].size() + 2, ' ');
            }
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
        total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        print_row(row);
    }
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size()) {
                os << ',';
            }
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto &row : rows_) {
        print_row(row);
    }
}

std::string
formatNumber(double value, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << value;
    std::string text = oss.str();
    if (text.find('.') != std::string::npos) {
        while (!text.empty() && text.back() == '0') {
            text.pop_back();
        }
        if (!text.empty() && text.back() == '.') {
            text.pop_back();
        }
    }
    if (text == "-0") {
        text = "0";
    }
    return text;
}

std::string
exportCsv(const TextTable &table, const std::string &name,
          const std::string &directory)
{
    std::filesystem::create_directories(directory);
    const std::string path = directory + "/" + name + ".csv";
    // Atomic: an interrupted bench must not leave a truncated CSV
    // that parses as a complete (but short) result set.
    campaign::atomicWriteFile(
        path, [&](std::ostream &os) { table.printCsv(os); });
    return path;
}

AsciiChart::AsciiChart(unsigned width, unsigned height)
    : width_(std::max(16u, width)), height_(std::max(4u, height))
{
}

void
AsciiChart::addSeries(const Series &series)
{
    series_.push_back(series);
}

void
AsciiChart::setAxisTitles(std::string x_title, std::string y_title)
{
    xTitle_ = std::move(x_title);
    yTitle_ = std::move(y_title);
}

void
AsciiChart::setYRange(double lo, double hi)
{
    if (hi <= lo) {
        throw std::invalid_argument("y range must be non-empty");
    }
    hasYRange_ = true;
    yLo_ = lo;
    yHi_ = hi;
}

void
AsciiChart::print(std::ostream &os) const
{
    double x_lo = 0.0, x_hi = 1.0, y_lo = 0.0, y_hi = 1.0;
    bool first = true;
    for (const Series &series : series_) {
        for (const SeriesPoint &p : series.points) {
            if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
                continue; // Poisoned campaign cells plot as gaps.
            }
            if (first) {
                x_lo = x_hi = p.x;
                y_hi = p.y;
                first = false;
            } else {
                x_lo = std::min(x_lo, p.x);
                x_hi = std::max(x_hi, p.x);
                y_hi = std::max(y_hi, p.y);
            }
        }
    }
    if (first) {
        os << "(empty chart)\n";
        return;
    }
    if (hasYRange_) {
        y_lo = yLo_;
        y_hi = yHi_;
    }
    if (x_hi == x_lo) {
        x_hi = x_lo + 1.0;
    }
    if (y_hi == y_lo) {
        y_hi = y_lo + 1.0;
    }

    std::vector<std::string> grid(
        height_, std::string(width_, ' '));

    auto marker_for = [this](std::size_t index) {
        const std::string &label = series_[index].label;
        char candidate = label.empty()
            ? static_cast<char>('a' + index) : label.front();
        // Fall back to letters when two labels share an initial.
        for (std::size_t j = 0; j < index; ++j) {
            if (!series_[j].label.empty() &&
                series_[j].label.front() == candidate) {
                return static_cast<char>('1' + index);
            }
        }
        return candidate;
    };

    for (std::size_t s = 0; s < series_.size(); ++s) {
        const char marker = marker_for(s);
        for (const SeriesPoint &p : series_[s].points) {
            if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
                continue;
            }
            const double fx = (p.x - x_lo) / (x_hi - x_lo);
            const double fy = (p.y - y_lo) / (y_hi - y_lo);
            if (fy < 0.0 || fy > 1.0) {
                continue;
            }
            const auto col = static_cast<std::size_t>(
                std::lround(fx * (width_ - 1)));
            const auto row = static_cast<std::size_t>(
                std::lround((1.0 - fy) * (height_ - 1)));
            grid[row][col] = marker;
        }
    }

    if (!yTitle_.empty()) {
        os << yTitle_ << '\n';
    }
    for (unsigned r = 0; r < height_; ++r) {
        const double y_val = y_hi -
            (y_hi - y_lo) * static_cast<double>(r) /
            static_cast<double>(height_ - 1);
        std::string label = formatNumber(y_val, 1);
        if (label.size() < 8) {
            label = std::string(8 - label.size(), ' ') + label;
        }
        os << label << " |" << grid[r] << '\n';
    }
    os << std::string(8, ' ') << " +" << std::string(width_, '-') << '\n';
    os << std::string(8, ' ') << "  " << formatNumber(x_lo, 2)
       << std::string(width_ > 24 ? width_ - 16 : 4, ' ')
       << formatNumber(x_hi, 2) << '\n';
    if (!xTitle_.empty()) {
        os << std::string(10 + width_ / 2 - xTitle_.size() / 2, ' ')
           << xTitle_ << '\n';
    }
    os << "  legend:";
    for (std::size_t s = 0; s < series_.size(); ++s) {
        os << "  " << marker_for(s) << " = " << series_[s].label;
    }
    os << '\n';
}

} // namespace swcc
